// Horizontal-sharding benchmark: a 24-trace batch workload scored by two
// single-core worker processes versus one single-core in-process run. Both
// sides are pinned to one scoring core per process (workers get
// GOMAXPROCS=1, the baseline a 1-slot CPU gate), so on a machine with two
// or more cores the ratio isolates the fan-out win: near-2x minus process
// spawn, snapshot load, and per-worker program compilation. On a
// single-core machine the two workers timeshare the same core and the
// ratio instead measures sharding overhead (expect ~1x or a modest
// slowdown) — check the cores/op metric before reading the comparison as
// a speedup claim. The sharded per-trace results are pinned identical to
// corpus.Run's by internal/shard's equality tests.
package repro

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestMain lets this test binary serve as its own shard worker fleet (the
// sharded benchmark re-execs it with the join environment set).
func TestMain(m *testing.M) {
	shard.MaybeRunWorker()
	os.Exit(m.Run())
}

// benchShardOpts is benchBatchOpts with a handler budget big enough that
// scoring dominates the sharded side's fixed costs (process spawn and
// snapshot load are a constant regardless of workload; the speedup claim
// is about scoring throughput, not about amortizing a tiny run's setup).
func benchShardOpts() core.Options {
	o := benchBatchOpts()
	o.MaxHandlers = 12000
	return o
}

// benchShardJobs triples the batch benchmark's 8-trace workload by varying
// the simulation seed: 24 traces, enough scoring work that each worker's
// one-time fixed cost (spawn, snapshot load, compiling its own program
// cache) is a small fraction of its share.
func benchShardJobs(b *testing.B) []corpus.Job {
	b.Helper()
	var jobs []corpus.Job
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			res, err := sim.Run(sim.Config{
				CCA:       "reno",
				Bandwidth: float64(5+i) * 1e6 / 8,
				RTT:       time.Duration(25+10*i) * time.Millisecond,
				Duration:  12 * time.Second,
				Seed:      int64(8*round + i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			tr, err := trace.AnalyzeRecords(res.Records)
			if err != nil {
				b.Fatal(err)
			}
			segs := tr.Split(16)
			if len(segs) == 0 {
				b.Fatal("trace produced no segments")
			}
			jobs = append(jobs, corpus.Job{
				Name:     fmt.Sprintf("reno-r%d-%d", round, i),
				Segments: segs,
			})
		}
	}
	return jobs
}

// benchShardSnapshots prewarms a shared snapshot dir (outside the timer)
// so per-iteration worker start-up is a snapshot load, not enumeration.
func benchShardSnapshots(b *testing.B) string {
	b.Helper()
	dir := b.TempDir()
	o := benchShardOpts()
	reg := corpus.NewRegistry(dir, obs.New())
	defer reg.Close()
	if _, err := reg.Prewarm(context.Background(), corpus.Options{
		DSL:        o.DSL,
		BucketCap:  o.BucketCap,
		ScanBudget: o.ScanBudget,
	}, 0); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkShardedSynthesize compares the batch workload on one in-process
// core ("baseline") against two spawned single-core workers ("workers=2").
func BenchmarkShardedSynthesize(b *testing.B) {
	jobs := benchShardJobs(b)

	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := corpus.Run(context.Background(), jobs, corpus.RunOptions{
				Jobs:  1,
				Procs: 1,
				Core:  benchShardOpts(),
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, tr := range res.Traces {
				if tr.Err != nil {
					b.Fatal(tr.Err)
				}
			}
		}
		b.ReportMetric(float64(len(jobs)), "traces/op")
		b.ReportMetric(float64(runtime.NumCPU()), "cores")
	})

	b.Run("workers=2", func(b *testing.B) {
		dir := benchShardSnapshots(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, rep, err := shard.Run(context.Background(), jobs, shard.Options{
				Workers:     2,
				WorkerProcs: 1,
				SnapshotDir: dir,
				Core:        benchShardOpts(),
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, tr := range res.Traces {
				if tr.Err != nil {
					b.Fatal(tr.Err)
				}
			}
			b.ReportMetric(float64(rep.Counters["shard.leases_issued"]), "leases/op")
		}
		b.ReportMetric(float64(len(jobs)), "traces/op")
		b.ReportMetric(float64(runtime.NumCPU()), "cores")
	})
}
