package replay

import (
	"math"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// renoSegments builds real trace segments from a Reno simulation.
func renoSegments(t *testing.T) []*trace.Segment {
	t.Helper()
	res, err := sim.Run(sim.Config{
		CCA:       "reno",
		Bandwidth: 10e6 / 8,
		RTT:       40 * time.Millisecond,
		Duration:  30 * time.Second,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.AnalyzeRecords(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	segs := tr.Split(16)
	if len(segs) < 2 {
		t.Fatalf("only %d segments", len(segs))
	}
	return segs
}

func TestSynthesizeRenoHandlerTracksTrace(t *testing.T) {
	segs := renoSegments(t)
	h := dsl.MustParse("cwnd + reno-inc")
	sc := NewScorer(segs, dist.DTW{})
	// The true-family handler should be close; an absurd handler far.
	good, _ := sc.Score(h, math.Inf(1))
	bad, _ := sc.Score(dsl.MustParse("mss"), math.Inf(1))
	if !(good < bad) {
		t.Errorf("reno handler distance %.2f not below constant-window distance %.2f", good, bad)
	}
	crazy, _ := sc.Score(dsl.MustParse("cwnd + cwnd"), math.Inf(1))
	if !(good < crazy) {
		t.Errorf("reno handler distance %.2f not below doubling handler %.2f", good, crazy)
	}
}

func TestSynthesizeSeriesShape(t *testing.T) {
	segs := renoSegments(t)
	h := dsl.MustParse("cwnd + 0.7*reno-inc")
	s, err := Synthesize(h, segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(segs[0].Samples) {
		t.Fatalf("series length %d != %d samples", s.Len(), len(segs[0].Samples))
	}
	// Reno-style growth: values non-decreasing within a loss-free segment.
	for i := 1; i < s.Len(); i++ {
		if s.Values[i] < s.Values[i-1]-1e-9 {
			t.Fatalf("reno replay decreased at %d: %v -> %v", i, s.Values[i-1], s.Values[i])
		}
	}
}

func TestSynthesizeStartsFromObservedWindow(t *testing.T) {
	segs := renoSegments(t)
	h := dsl.MustParse("cwnd") // identity handler holds the initial window
	s, err := Synthesize(h, segs[0])
	if err != nil {
		t.Fatal(err)
	}
	want := segs[0].Samples[0].Cwnd / segs[0].MSS
	for _, v := range s.Values {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("identity handler drifted: %v vs %v", v, want)
		}
	}
}

func TestDivergingHandler(t *testing.T) {
	segs := renoSegments(t)
	// acked - acked = 0 in the denominator: immediate division blowup.
	h := dsl.MustParse("cwnd/(acked - acked)")
	if _, err := Synthesize(h, segs[0]); err == nil {
		t.Error("divide-by-zero handler did not diverge")
	}
	sc := NewScorer(segs, dist.DTW{})
	if d, _ := sc.SegmentScore(h, 0, math.Inf(1)); !math.IsInf(d, 1) {
		t.Errorf("diverging handler distance = %v, want +Inf", d)
	}
	if d, _ := sc.Score(h, math.Inf(1)); !math.IsInf(d, 1) {
		t.Errorf("diverging handler total = %v, want +Inf", d)
	}
}

func TestClampPreventsExplosion(t *testing.T) {
	segs := renoSegments(t)
	h := dsl.MustParse("cwnd*cwnd/mss") // super-exponential growth
	s, err := Synthesize(h, segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Values {
		if v > maxCwndPkts || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("clamp failed: %v", v)
		}
	}
}

func TestEnvsFallBackRTT(t *testing.T) {
	seg := &trace.Segment{MSS: 1448, Samples: []trace.Sample{
		{Time: 0, Cwnd: 2 * 1448, Acked: 1448, MinRTT: 40 * time.Millisecond},
	}}
	envs := Envs(seg)
	if envs[0].RTT != 0.040 {
		t.Errorf("zero RTT not backfilled from MinRTT: %v", envs[0].RTT)
	}
}

// TestEnvsFallBackSegmentMinRTT: on the first samples of a capture even
// MinRTT can still be zero; the fallback chain must reach the segment-wide
// minimum so rtts-since-loss does not divide by zero and spuriously
// diverge a handler.
func TestEnvsFallBackSegmentMinRTT(t *testing.T) {
	seg := &trace.Segment{MSS: 1448, Samples: []trace.Sample{
		{Time: 0, Cwnd: 2 * 1448, Acked: 1448, TimeSinceLoss: time.Second},
		{Time: time.Millisecond, Cwnd: 2 * 1448, Acked: 1448, RTT: 50 * time.Millisecond,
			MinRTT: 40 * time.Millisecond, TimeSinceLoss: time.Second},
	}}
	envs := Envs(seg)
	if envs[0].RTT != 0.040 {
		t.Errorf("RTT-less first sample = %v, want segment minimum 0.040", envs[0].RTT)
	}
	h := dsl.MustParse("cwnd + mss*rtts-since-loss")
	if _, err := Synthesize(h, seg); err != nil {
		t.Errorf("rtts-since-loss diverged on RTT-less first sample: %v", err)
	}
	// The columnar layout must see the same fallback.
	cols := NewCols(seg)
	for i := range seg.Samples {
		if cols.Sig[dsl.SigRTT][i] != envs[i].RTT {
			t.Errorf("cols RTT[%d] = %v != env RTT %v", i, cols.Sig[dsl.SigRTT][i], envs[i].RTT)
		}
	}
}

func TestSynthesizeEnvsMismatch(t *testing.T) {
	segs := renoSegments(t)
	if _, err := SynthesizeEnvs(dsl.Cwnd(), segs[0], nil); err == nil {
		t.Error("mismatched envs accepted")
	}
}

func TestBetterConstantScoresBetter(t *testing.T) {
	// On a Reno trace, the handler with Reno's true increment (1.0x)
	// should beat a far-off constant (0.1x) — the property Figure 3's
	// constant-error sweep relies on.
	segs := renoSegments(t)
	sc := NewScorer(segs, dist.DTW{})
	right, _ := sc.Score(dsl.MustParse("cwnd + reno-inc"), math.Inf(1))
	wrong, _ := sc.Score(dsl.MustParse("cwnd + 0.1*reno-inc"), math.Inf(1))
	if !(right < wrong) {
		t.Errorf("true constant %.2f not better than 0.1x %.2f", right, wrong)
	}
}

func TestClosedLoopRenoTracksTrace(t *testing.T) {
	segs := renoSegments(t)
	m := dist.DTW{}
	good := ClosedLoopTotalDistance(dsl.MustParse("cwnd + reno-inc"), segs, m)
	bad := ClosedLoopTotalDistance(dsl.MustParse("cwnd + cwnd"), segs, m)
	if !(good < bad) {
		t.Errorf("closed-loop reno %.2f not better than doubling %.2f", good, bad)
	}
}

func TestClosedLoopAckClocking(t *testing.T) {
	// A handler holding a window half the observed one must see roughly
	// half the acked bytes per step under closed-loop replay; its Reno
	// growth is therefore slower than under open-loop replay.
	segs := renoSegments(t)
	seg := segs[0]
	h := dsl.MustParse("cwnd + 2*reno-inc")
	open, err := Synthesize(h, seg)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := SynthesizeClosedLoop(h, seg)
	if err != nil {
		t.Fatal(err)
	}
	if open.Len() != closed.Len() {
		t.Fatal("length mismatch")
	}
	// Both replays start at the same window.
	if open.Values[0] != closed.Values[0] {
		t.Errorf("starting windows differ: %v vs %v", open.Values[0], closed.Values[0])
	}
}

func TestClosedLoopDivergenceHandling(t *testing.T) {
	segs := renoSegments(t)
	h := dsl.MustParse("cwnd/(acked - acked)")
	if d := ClosedLoopDistance(h, segs[0], dist.DTW{}); !math.IsInf(d, 1) {
		t.Errorf("diverging handler closed-loop distance = %v", d)
	}
}

func TestClosedLoopIdentityHolds(t *testing.T) {
	segs := renoSegments(t)
	s, err := SynthesizeClosedLoop(dsl.Cwnd(), segs[0])
	if err != nil {
		t.Fatal(err)
	}
	want := s.Values[0]
	for _, v := range s.Values {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("identity handler drifted under closed loop")
		}
	}
}

func TestClosedLoopCannotOutpaceBottleneck(t *testing.T) {
	// Even an aggressive handler's ack-clocked deliveries are bounded by
	// the observed per-step acked bytes; its window growth per step is
	// therefore bounded by the open-loop replay of the same handler.
	segs := renoSegments(t)
	seg := segs[0]
	h := dsl.MustParse("cwnd + 2*reno-inc")
	open, _ := Synthesize(h, seg)
	closed, _ := SynthesizeClosedLoop(h, seg)
	for i := range open.Values {
		if closed.Values[i] > open.Values[i]+1e-9 {
			t.Fatalf("closed-loop exceeded open-loop at %d: %v > %v", i, closed.Values[i], open.Values[i])
		}
	}
}
