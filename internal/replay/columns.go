package replay

import (
	"repro/internal/dsl"
	"repro/internal/trace"
)

// NewCols lays a segment's per-ACK signals out as structure-of-arrays
// columns for the register VM: one []float64 per Signal (MSS broadcast),
// with the same values — including the effectiveRTT fallback chain — as
// Envs, so the columnar and Env-based replay paths see identical inputs.
func NewCols(seg *trace.Segment) *dsl.Cols {
	n := len(seg.Samples)
	c := &dsl.Cols{N: n}
	for s := range c.Sig {
		c.Sig[s] = make([]float64, n)
	}
	segMin := segmentMinRTT(seg)
	for i := range seg.Samples {
		smp := &seg.Samples[i]
		c.Sig[dsl.SigMSS][i] = seg.MSS
		c.Sig[dsl.SigAcked][i] = smp.Acked
		c.Sig[dsl.SigTimeSinceLoss][i] = smp.TimeSinceLoss.Seconds()
		c.Sig[dsl.SigRTT][i] = effectiveRTT(smp, segMin)
		c.Sig[dsl.SigMinRTT][i] = smp.MinRTT.Seconds()
		c.Sig[dsl.SigMaxRTT][i] = smp.MaxRTT.Seconds()
		c.Sig[dsl.SigAckRate][i] = smp.AckRate
		c.Sig[dsl.SigRTTGradient][i] = smp.RTTGradient
		c.Sig[dsl.SigWMax][i] = smp.WMax
	}
	return c
}
