//go:build race

package replay

// raceEnabled reports whether the race detector is compiled in; some
// contracts (zero-alloc steady states backed by sync.Pool) are not
// observable under it.
const raceEnabled = true
