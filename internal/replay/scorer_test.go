package replay

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/dsl"
)

var scorerHandlers = []string{
	"cwnd + reno-inc",
	"cwnd + 0.5*reno-inc",
	"mss",
	"cwnd + cwnd",
	"cwnd/(acked - acked)", // diverges
	"cwnd",
}

// TestScorerMatchesTotalDistance: with no cutoff, Score must reproduce the
// deprecated TotalDistance bit for bit for every metric — the wrappers now
// route through Scorer, so also cross-check against a hand-summed loop over
// Distance on single-segment scorers.
func TestScorerMatchesTotalDistance(t *testing.T) {
	segs := renoSegments(t)
	for _, m := range dist.Metrics() {
		sc := NewScorer(segs, m)
		for _, src := range scorerHandlers {
			h := dsl.MustParse(src)
			got, exact := sc.Score(h, math.Inf(1))
			if !exact {
				t.Fatalf("%s %q: Score(+Inf) not exact", m.Name(), src)
			}
			if want := TotalDistance(h, segs, m); got != want {
				t.Errorf("%s %q: Score %v != TotalDistance %v", m.Name(), src, got, want)
			}
		}
	}
}

// TestSegmentScoreMatchesDistance checks the per-segment entry point against
// the deprecated per-segment wrapper.
func TestSegmentScoreMatchesDistance(t *testing.T) {
	segs := renoSegments(t)
	m := dist.DTW{}
	sc := NewScorer(segs, m)
	h := dsl.MustParse("cwnd + reno-inc")
	for i, seg := range segs {
		got, exact := sc.SegmentScore(h, i, math.Inf(1))
		if !exact {
			t.Fatalf("segment %d: not exact at +Inf", i)
		}
		if want := Distance(h, seg, m); got != want {
			t.Errorf("segment %d: SegmentScore %v != Distance %v", i, got, want)
		}
	}
}

// TestScorerCutoffContract sweeps cutoffs around each handler's exact total:
// exact=true results must equal the full sum, and inexact results must be
// lower bounds on it.
func TestScorerCutoffContract(t *testing.T) {
	segs := renoSegments(t)
	sc := NewScorer(segs, dist.DTW{})
	for _, src := range scorerHandlers {
		h := dsl.MustParse(src)
		want, _ := sc.Score(h, math.Inf(1))
		for _, frac := range []float64{0, 0.3, 0.9, 0.9999, 1.0001, 2} {
			cutoff := want * frac
			d, exact := sc.Score(h, cutoff)
			if exact && d != want {
				t.Fatalf("%q cutoff=%v: exact result %v != full sum %v", src, cutoff, d, want)
			}
			if !exact && !(d <= want) {
				t.Fatalf("%q cutoff=%v: abandoned result %v exceeds full sum %v", src, cutoff, d, want)
			}
		}
		// A cutoff just above the exact sum must come back exact.
		if !math.IsInf(want, 1) {
			above := math.Nextafter(want, math.Inf(1))
			if d, exact := sc.Score(h, above*1.01); !exact || d != want {
				t.Fatalf("%q: cutoff above sum gave (%v, %v), want (%v, true)", src, d, exact, want)
			}
		}
	}
}

// TestScorerConcurrent hammers one scorer from many goroutines; results must
// match the serial values (the pool must not leak state between scores).
func TestScorerConcurrent(t *testing.T) {
	segs := renoSegments(t)
	sc := NewScorer(segs, dist.DTW{})
	want := make([]float64, len(scorerHandlers))
	for i, src := range scorerHandlers {
		want[i], _ = sc.Score(dsl.MustParse(src), math.Inf(1))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, src := range scorerHandlers {
					d, exact := sc.Score(dsl.MustParse(src), math.Inf(1))
					if !exact || d != want[i] {
						t.Errorf("concurrent %q: (%v, %v), want (%v, true)", src, d, exact, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestScorerNilMetricDefaultsDTW mirrors core's default.
func TestScorerNilMetricDefaultsDTW(t *testing.T) {
	segs := renoSegments(t)
	h := dsl.MustParse("cwnd + reno-inc")
	got, _ := NewScorer(segs, nil).Score(h, math.Inf(1))
	want, _ := NewScorer(segs, dist.DTW{}).Score(h, math.Inf(1))
	if got != want {
		t.Errorf("nil metric %v != DTW %v", got, want)
	}
}
