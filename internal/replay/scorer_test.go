package replay

import (
	"math"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/trace"
)

var scorerHandlers = []string{
	"cwnd + reno-inc",
	"cwnd + 0.5*reno-inc",
	"mss",
	"cwnd + cwnd",
	"cwnd/(acked - acked)", // diverges
	"cwnd",
}

// closureTotal is the pre-VM reference path: replay via the Compile
// closure (SynthesizeEnvs) and measure with the metric's plain Distance.
// The register-VM Scorer must reproduce it bit for bit.
func closureTotal(h *dsl.Node, segs []*trace.Segment, m dist.Metric) float64 {
	var total float64
	for _, seg := range segs {
		synth, err := SynthesizeEnvs(h, seg, Envs(seg))
		if err != nil {
			return math.Inf(1)
		}
		total += m.Distance(seg.Series(), synth)
		if math.IsInf(total, 1) {
			return total
		}
	}
	return total
}

// TestScorerMatchesClosurePath: with no cutoff, the VM-backed Score must
// reproduce the closure replay path bit for bit for every metric on real
// traces — the end-to-end form of the FuzzProgramVsEval exactness promise.
func TestScorerMatchesClosurePath(t *testing.T) {
	segs := renoSegments(t)
	for _, m := range dist.Metrics() {
		sc := NewScorer(segs, m)
		for _, src := range scorerHandlers {
			h := dsl.MustParse(src)
			got, exact := sc.Score(h, math.Inf(1))
			if !exact {
				t.Fatalf("%s %q: Score(+Inf) not exact", m.Name(), src)
			}
			if want := closureTotal(h, segs, m); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s %q: Score %v != closure path %v", m.Name(), src, got, want)
			}
		}
	}
}

// TestSegmentScoreMatchesClosurePath checks the per-segment entry point
// against the closure replay of that segment alone.
func TestSegmentScoreMatchesClosurePath(t *testing.T) {
	segs := renoSegments(t)
	m := dist.DTW{}
	sc := NewScorer(segs, m)
	h := dsl.MustParse("cwnd + reno-inc")
	for i := range segs {
		got, exact := sc.SegmentScore(h, i, math.Inf(1))
		if !exact {
			t.Fatalf("segment %d: not exact at +Inf", i)
		}
		if want := closureTotal(h, segs[i:i+1], m); got != want {
			t.Errorf("segment %d: SegmentScore %v != closure %v", i, got, want)
		}
	}
}

// TestScorerCompilesOncePerSketch pins the satellite fix: repeated Score /
// SegmentScore calls with the same canonical expression must hit the
// scorer's program cache instead of recompiling per call.
func TestScorerCompilesOncePerSketch(t *testing.T) {
	segs := renoSegments(t)
	reg := obs.New()
	dsl.Observe(reg)
	defer dsl.Observe(nil)
	sc := NewScorer(segs, dist.DTW{})
	h := dsl.MustParse("cwnd + 0.7*reno-inc")
	for i := 0; i < 5; i++ {
		sc.Score(h, math.Inf(1))
		for j := range segs {
			sc.SegmentScore(h, j, math.Inf(1))
		}
	}
	if got := reg.Report().Counters["dsl.progs_compiled"]; got != 1 {
		t.Errorf("dsl.progs_compiled = %d across repeated scoring, want 1", got)
	}
}

// TestPrologueCacheAcrossCompletions is the tentpole's correctness test:
// scoring many completions of one sketch through CompileSketch — sharing
// one program and its cached per-segment prologue columns — must
// bit-match binding each completion and scoring it on a fresh Scorer, and
// the prologue cache must actually get hits.
func TestPrologueCacheAcrossCompletions(t *testing.T) {
	segs := renoSegments(t)
	reg := obs.New()
	Observe(reg)
	defer Observe(nil)
	sketches := []string{
		"cwnd + c1*reno-inc",
		"cwnd + ({vegas-diff < c1} ? c2*reno-inc : 0)",
		"c1*mss + c2*time-since-loss*ack-rate",
	}
	valSets := [][]float64{{0.5, 1}, {0.7, 2}, {1, 0.1}, {2, 8}, {0, 0}}
	sc := NewScorer(segs, dist.DTW{})
	for _, src := range sketches {
		sk := dsl.MustParse(src)
		cs := sc.CompileSketch(sk)
		for _, vals := range valSets {
			vals = vals[:sk.Holes()]
			got, exact := cs.Score(vals, math.Inf(1))
			if !exact {
				t.Fatalf("%q %v: not exact at +Inf", src, vals)
			}
			bound, err := sk.Bind(vals)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := NewScorer(segs, dist.DTW{}).Score(bound, math.Inf(1))
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%q %v: shared-prologue score %v != fresh-scorer score %v", src, vals, got, want)
			}
			gotSeg, _ := cs.SegmentScore(vals, 0, math.Inf(1))
			wantSeg, _ := NewScorer(segs[:1], dist.DTW{}).Score(bound, math.Inf(1))
			if math.Float64bits(gotSeg) != math.Float64bits(wantSeg) {
				t.Errorf("%q %v: segment 0 %v != fresh %v", src, vals, gotSeg, wantSeg)
			}
		}
	}
	rep := reg.Report()
	if rep.Counters["replay.prologue_hits"] == 0 {
		t.Error("no prologue-cache hits across completions of one sketch")
	}
	if rep.Counters["replay.prologue_misses"] == 0 {
		t.Error("no prologue-cache misses recorded")
	}
	if rep.Counters["replay.instrs_executed"] == 0 {
		t.Error("no VM instructions recorded")
	}
}

// TestScorerCutoffContract sweeps cutoffs around each handler's exact total:
// exact=true results must equal the full sum, and inexact results must be
// lower bounds on it.
func TestScorerCutoffContract(t *testing.T) {
	segs := renoSegments(t)
	sc := NewScorer(segs, dist.DTW{})
	for _, src := range scorerHandlers {
		h := dsl.MustParse(src)
		want, _ := sc.Score(h, math.Inf(1))
		for _, frac := range []float64{0, 0.3, 0.9, 0.9999, 1.0001, 2} {
			cutoff := want * frac
			d, exact := sc.Score(h, cutoff)
			if exact && d != want {
				t.Fatalf("%q cutoff=%v: exact result %v != full sum %v", src, cutoff, d, want)
			}
			if !exact && !(d <= want) {
				t.Fatalf("%q cutoff=%v: abandoned result %v exceeds full sum %v", src, cutoff, d, want)
			}
		}
		// A cutoff just above the exact sum must come back exact.
		if !math.IsInf(want, 1) {
			above := math.Nextafter(want, math.Inf(1))
			if d, exact := sc.Score(h, above*1.01); !exact || d != want {
				t.Fatalf("%q: cutoff above sum gave (%v, %v), want (%v, true)", src, d, exact, want)
			}
		}
	}
}

// TestScorerConcurrent hammers one scorer from many goroutines; results must
// match the serial values (the pool must not leak state between scores).
func TestScorerConcurrent(t *testing.T) {
	segs := renoSegments(t)
	sc := NewScorer(segs, dist.DTW{})
	want := make([]float64, len(scorerHandlers))
	for i, src := range scorerHandlers {
		want[i], _ = sc.Score(dsl.MustParse(src), math.Inf(1))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, src := range scorerHandlers {
					d, exact := sc.Score(dsl.MustParse(src), math.Inf(1))
					if !exact || d != want[i] {
						t.Errorf("concurrent %q: (%v, %v), want (%v, true)", src, d, exact, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestScorerNilMetricDefaultsDTW mirrors core's default.
func TestScorerNilMetricDefaultsDTW(t *testing.T) {
	segs := renoSegments(t)
	h := dsl.MustParse("cwnd + reno-inc")
	got, _ := NewScorer(segs, nil).Score(h, math.Inf(1))
	want, _ := NewScorer(segs, dist.DTW{}).Score(h, math.Inf(1))
	if got != want {
		t.Errorf("nil metric %v != DTW %v", got, want)
	}
}

// TestScoreDetailOutcome pins the candidate-outcome plumbing: an uncut
// score settles fully with one outcome per segment, a tight cutoff settles
// inexactly at a pruning stage, and a diverging handler is flagged.
func TestScoreDetailOutcome(t *testing.T) {
	segs := renoSegments(t)
	sc := NewScorer(segs, dist.DTW{})

	var co CandidateOutcome
	h := dsl.MustParse("cwnd + reno-inc")
	cs := sc.CompileSketch(h)
	d, exact := cs.ScoreDetail(nil, math.Inf(1), &co)
	if !exact || !co.Exact || co.Diverged {
		t.Fatalf("uncut score: exact=%v co=%+v", exact, co)
	}
	if co.Distance != d || co.Stage != dist.StageFull {
		t.Errorf("outcome (%v, %v), want (%v, full)", co.Distance, co.Stage, d)
	}
	if len(co.Segments) != len(segs) {
		t.Errorf("outcome has %d segment entries, want %d", len(co.Segments), len(segs))
	}
	if co.Cells == 0 {
		t.Error("full score attributed no cells")
	}
	for i, o := range co.Segments {
		if o.Stage != dist.StageFull {
			t.Errorf("segment %d stage = %v, want full", i, o.Stage)
		}
	}

	// Reuse the same scratch outcome: a tight cutoff settles inexactly and
	// the reset leaves no stale segments behind.
	far := dsl.MustParse("cwnd + cwnd")
	csFar := sc.CompileSketch(far)
	d2, exact2 := csFar.ScoreDetail(nil, d*1e-6, &co)
	if exact2 {
		t.Fatalf("tight cutoff still exact: %v", d2)
	}
	if co.Exact || co.Stage == dist.StageFull {
		t.Errorf("inexact settle with full-stage outcome: %+v", co)
	}
	if co.Segment >= len(segs) || len(co.Segments) > len(segs) {
		t.Errorf("stale segment data after reuse: %+v", co)
	}

	div := dsl.MustParse("cwnd/(acked - acked)")
	csDiv := sc.CompileSketch(div)
	if _, _ = csDiv.ScoreDetail(nil, math.Inf(1), &co); !co.Diverged {
		t.Errorf("diverging handler not flagged: %+v", co)
	}
	if !math.IsInf(co.Distance, 1) {
		t.Errorf("diverged distance = %v, want +Inf", co.Distance)
	}
}

// TestScoreDetailNilOutcome: the nil-outcome path is the plain Score and
// stays bit-identical to the detailed one.
func TestScoreDetailNilOutcome(t *testing.T) {
	segs := renoSegments(t)
	sc := NewScorer(segs, dist.DTW{})
	h := dsl.MustParse("cwnd + 0.5*reno-inc")
	cs := sc.CompileSketch(h)
	var co CandidateOutcome
	for _, cutoff := range []float64{math.Inf(1), 100, 1} {
		d1, e1 := cs.ScoreDetail(nil, cutoff, nil)
		d2, e2 := cs.ScoreDetail(nil, cutoff, &co)
		if math.Float64bits(d1) != math.Float64bits(d2) || e1 != e2 {
			t.Errorf("cutoff %v: nil-outcome (%v,%v) != outcome (%v,%v)", cutoff, d1, e1, d2, e2)
		}
	}
}
