//go:build !race

package replay

const raceEnabled = false
