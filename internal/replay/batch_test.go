package replay

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/obs"
)

// batchLaneCases is a lane mix covering every settle path: the true
// handler family (exact full score), slow/fast constants (abandon at
// different stages under tight cutoffs), zero and negative factors, and a
// NaN constant (diverges on the first row).
var batchLaneCases = [][]float64{
	{1}, {0.5}, {0.1}, {0}, {-4}, {math.NaN()}, {8}, {0.25}, {1e6}, {2},
}

// TestScoreBatchDetailMatchesScalar is the scorer-level oracle: for every
// metric, lane width, and cutoff regime, each lane of ScoreBatchDetail —
// value, exactness flag, and full CandidateOutcome — must equal a scalar
// ScoreDetail of the same completion bit for bit.
func TestScoreBatchDetailMatchesScalar(t *testing.T) {
	segs := renoSegments(t)
	sk := dsl.MustParse("cwnd + c1*reno-inc")
	for _, m := range dist.Metrics() {
		sc := NewScorer(segs, m)
		cs := sc.CompileSketch(sk)
		exact, _ := cs.Score([]float64{1}, math.Inf(1))
		for _, k := range []int{1, 3, Lanes, len(batchLaneCases)} {
			valsK := batchLaneCases[:k]
			for _, cutoff := range []float64{math.Inf(1), exact * 4, exact * 1.0001, exact, exact / 2, 0} {
				cutoffs := make([]float64, k)
				for l := range cutoffs {
					// Stagger per-lane cutoffs so lanes settle on different
					// segments within one batch.
					cutoffs[l] = cutoff * (1 + 0.3*float64(l%3))
				}
				ds := make([]float64, k)
				exacts := make([]bool, k)
				outs := make([]CandidateOutcome, k)
				cs.ScoreBatchDetail(valsK, cutoffs, ds, exacts, outs)
				var want CandidateOutcome
				for l := 0; l < k; l++ {
					wd, we := cs.ScoreDetail(valsK[l], cutoffs[l], &want)
					if math.Float64bits(ds[l]) != math.Float64bits(wd) || exacts[l] != we {
						t.Fatalf("%s k=%d cutoff=%v lane %d: batch (%v,%v) != scalar (%v,%v)",
							m.Name(), k, cutoffs[l], l, ds[l], exacts[l], wd, we)
					}
					if !reflect.DeepEqual(outs[l], want) {
						t.Fatalf("%s k=%d cutoff=%v lane %d: outcome\nbatch  %+v\nscalar %+v",
							m.Name(), k, cutoffs[l], l, outs[l], want)
					}
				}
			}
		}
	}
}

// TestScoreBatchNilOutcomes: the provenance-free entry point returns the
// same values as the detailed one.
func TestScoreBatchNilOutcomes(t *testing.T) {
	segs := renoSegments(t)
	cs := NewScorer(segs, dist.DTW{}).CompileSketch(dsl.MustParse("cwnd + c1*reno-inc"))
	k := Lanes
	cutoffs := make([]float64, k)
	for l := range cutoffs {
		cutoffs[l] = math.Inf(1)
	}
	ds1 := make([]float64, k)
	ex1 := make([]bool, k)
	cs.ScoreBatch(batchLaneCases[:k], cutoffs, ds1, ex1)
	ds2 := make([]float64, k)
	ex2 := make([]bool, k)
	outs := make([]CandidateOutcome, k)
	cs.ScoreBatchDetail(batchLaneCases[:k], cutoffs, ds2, ex2, outs)
	for l := 0; l < k; l++ {
		if math.Float64bits(ds1[l]) != math.Float64bits(ds2[l]) || ex1[l] != ex2[l] {
			t.Fatalf("lane %d: ScoreBatch (%v,%v) != ScoreBatchDetail (%v,%v)", l, ds1[l], ex1[l], ds2[l], ex2[l])
		}
	}
}

// TestScoreBatchLedgerMatchesScalar: a ledger fed by batched scoring must
// dump byte-identical JSONL to one fed by scalar scoring of the same
// candidates — the sample is a pure function of the candidate set.
func TestScoreBatchLedgerMatchesScalar(t *testing.T) {
	segs := renoSegments(t)
	sk := dsl.MustParse("cwnd + c1*reno-inc")
	// No NaN lane here: a NaN constant cannot be rendered in the JSONL
	// Consts field (and the search never emits one from its finite pools).
	laneCases := [][]float64{{1}, {0.5}, {0.1}, {0}, {-4}, {8}, {0.25}, {1e6}, {2}}
	dump := func(batch bool) []byte {
		led := NewLedger(64, 7)
		sc := NewScorer(segs, dist.DTW{}).WithLedger(led, 99)
		cs := sc.CompileSketch(sk)
		k := len(laneCases)
		cutoffs := make([]float64, k)
		for l := range cutoffs {
			cutoffs[l] = 50
		}
		if batch {
			ds := make([]float64, k)
			exacts := make([]bool, k)
			outs := make([]CandidateOutcome, k)
			cs.ScoreBatchDetail(laneCases, cutoffs, ds, exacts, outs)
		} else {
			var co CandidateOutcome
			for l := 0; l < k; l++ {
				cs.ScoreDetail(laneCases[l], cutoffs[l], &co)
			}
		}
		var buf bytes.Buffer
		if err := led.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	scalar, batched := dump(false), dump(true)
	if len(scalar) == 0 {
		t.Fatal("scalar ledger dump is empty")
	}
	if !bytes.Equal(scalar, batched) {
		t.Errorf("ledger dumps differ:\nscalar:\n%s\nbatch:\n%s", scalar, batched)
	}
}

// TestScoreBatchCounters pins the occupancy instruments: one batch call
// with k lanes is one batches_executed and k lanes_filled.
func TestScoreBatchCounters(t *testing.T) {
	segs := renoSegments(t)
	reg := obs.New()
	Observe(reg)
	defer Observe(nil)
	cs := NewScorer(segs, dist.DTW{}).CompileSketch(dsl.MustParse("cwnd + c1*reno-inc"))
	cutoffs := []float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	ds := make([]float64, 3)
	exacts := make([]bool, 3)
	cs.ScoreBatchDetail(batchLaneCases[:3], cutoffs, ds, exacts, nil)
	cs.ScoreBatchDetail(batchLaneCases[:2], cutoffs[:2], ds[:2], exacts[:2], nil)
	rep := reg.Report()
	if got := rep.Counters["replay.batches_executed"]; got != 2 {
		t.Errorf("batches_executed = %d, want 2", got)
	}
	if got := rep.Counters["replay.lanes_filled"]; got != 5 {
		t.Errorf("lanes_filled = %d, want 5", got)
	}
}

// TestScoreBatchSteadyStateAllocs: after warmup, batched scoring must not
// allocate — the slab-reuse promise of the pooled batch scratch.
func TestScoreBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector makes sync.Pool bypass its caches, so the zero-alloc steady state is not observable")
	}
	segs := renoSegments(t)
	cs := NewScorer(segs, dist.DTW{}).CompileSketch(dsl.MustParse("cwnd + c1*reno-inc"))
	k := Lanes
	valsK := batchLaneCases[:k]
	cutoffs := make([]float64, k)
	for l := range cutoffs {
		cutoffs[l] = math.Inf(1)
	}
	ds := make([]float64, k)
	exacts := make([]bool, k)
	outs := make([]CandidateOutcome, k)
	cs.ScoreBatchDetail(valsK, cutoffs, ds, exacts, outs) // warm the scratch pool
	avg := testing.AllocsPerRun(20, func() {
		cs.ScoreBatchDetail(valsK, cutoffs, ds, exacts, outs)
	})
	if avg > 0 {
		t.Errorf("steady-state ScoreBatchDetail allocates %.1f/op, want 0", avg)
	}
}
