package replay

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// ledgerOffers builds a synthetic candidate population: n distinct keys
// with distinct constant vectors.
type fakeCandidate struct {
	key  string
	vals []float64
}

func fakeCandidates(n int) []fakeCandidate {
	out := make([]fakeCandidate, n)
	for i := range out {
		out[i] = fakeCandidate{
			key:  fmt.Sprintf("sketch-%d", i%17),
			vals: []float64{float64(i), float64(i % 5)},
		}
	}
	return out
}

// offerAll pushes the population through the ledger in the given order.
func offerAll(l *Ledger, cands []fakeCandidate, order []int) {
	for _, i := range order {
		c := cands[i]
		pri := l.priority(42, c.key, c.vals)
		entry := LedgerEntry{Sketch: c.key, Handler: c.key, Consts: c.vals, Stage: "full"}
		l.offer(pri, func() LedgerEntry { return entry })
	}
}

// TestLedgerOrderIndependent: the sample is a pure function of the
// candidate set — any offer order (including concurrent) yields identical
// entries in identical order.
func TestLedgerOrderIndependent(t *testing.T) {
	cands := fakeCandidates(1000)
	forward := make([]int, len(cands))
	for i := range forward {
		forward[i] = i
	}
	shuffled := append([]int(nil), forward...)
	rand.New(rand.NewSource(9)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	a := NewLedger(64, 1)
	offerAll(a, cands, forward)
	b := NewLedger(64, 1)
	offerAll(b, cands, shuffled)
	if !reflect.DeepEqual(a.Entries(), b.Entries()) {
		t.Error("shuffled offer order changed the sample")
	}

	// Concurrent offers from several goroutines.
	c := NewLedger(64, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(cands); i += 8 {
				offerAll(c, cands, []int{i})
			}
		}(w)
	}
	wg.Wait()
	if !reflect.DeepEqual(a.Entries(), c.Entries()) {
		t.Error("concurrent offers changed the sample")
	}
}

// TestLedgerSeedChangesSample: a different seed keys a different hash, so
// the sampled subset moves.
func TestLedgerSeedChangesSample(t *testing.T) {
	cands := fakeCandidates(1000)
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	a := NewLedger(64, 1)
	offerAll(a, cands, order)
	b := NewLedger(64, 2)
	offerAll(b, cands, order)
	if reflect.DeepEqual(a.Entries(), b.Entries()) {
		t.Error("different seeds produced the identical sample")
	}
}

// TestLedgerBounded: the sample never exceeds its capacity; a small
// population is kept in full.
func TestLedgerBounded(t *testing.T) {
	cands := fakeCandidates(1000)
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	l := NewLedger(64, 1)
	offerAll(l, cands, order)
	if got := l.Len(); got != 64 {
		t.Errorf("Len = %d, want 64", got)
	}
	small := NewLedger(64, 1)
	offerAll(small, cands[:10], order[:10])
	if got := small.Len(); got != 10 {
		t.Errorf("small population Len = %d, want 10", got)
	}
}

// TestLedgerNilSafe: a nil ledger absorbs everything quietly.
func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.offer(1, func() LedgerEntry { t.Fatal("build called on nil ledger"); return LedgerEntry{} })
	if l.Len() != 0 || l.Entries() != nil {
		t.Error("nil ledger not empty")
	}
}

// TestLedgerLazyBuild: rejected candidates never pay for entry rendering.
func TestLedgerLazyBuild(t *testing.T) {
	l := NewLedger(4, 1)
	builds := 0
	mk := func() LedgerEntry { builds++; return LedgerEntry{} }
	// Fill to capacity, then offer a guaranteed loser (max priority).
	for i := uint64(0); i < 4; i++ {
		l.offer(i, mk)
	}
	l.offer(math.MaxUint64, mk)
	if builds != 4 {
		t.Errorf("build called %d times, want 4 (loser must not render)", builds)
	}
}

// TestLedgerWriteJSONL: the dump is one valid JSON object per line with
// non-finite distances rendered as null.
func TestLedgerWriteJSONL(t *testing.T) {
	l := NewLedger(8, 1)
	l.offer(1, func() LedgerEntry {
		return LedgerEntry{Sketch: "a", Handler: "a", Distance: jsonFloat(1.5), Stage: "full", Segments: []string{"full"}}
	})
	l.offer(2, func() LedgerEntry {
		return LedgerEntry{Sketch: "b", Handler: "b", Distance: jsonFloat(math.Inf(1)), Diverged: true, Stage: "diverged"}
	})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines, err)
		}
		if e["sketch"] == "b" && e["distance"] != nil {
			t.Errorf("non-finite distance rendered as %v, want null", e["distance"])
		}
	}
	if lines != 2 {
		t.Errorf("dump has %d lines, want 2", lines)
	}
}
