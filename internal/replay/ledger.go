package replay

import (
	"bytes"
	"container/heap"
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Ledger is a deterministic bottom-k sample of scored candidates: each
// candidate gets a priority from a keyed hash of its identity (sketch
// canonical key, completion constants, round tag, ledger seed), and the
// ledger keeps the k smallest priorities seen. Unlike a classic reservoir,
// the sample is a pure function of the candidate set — independent of
// scoring order and worker count — so two runs of the same seed dump
// byte-identical ledgers no matter how the scheduler interleaved them.
// (Priority ties between distinct candidates are first-come; with a 64-bit
// hash they are vanishingly unlikely.)
//
// Offer is cheap enough for scoring hot paths: one hash plus an atomic
// threshold check; the lock is only taken for candidates that actually
// enter the sample.
type Ledger struct {
	cap  int
	seed int64
	salt uint64

	// threshold caches the current max kept priority (valid once full) so
	// losing candidates are rejected without the lock.
	threshold atomic.Uint64
	full      atomic.Bool

	mu    sync.Mutex
	items ledgerHeap
}

// NewLedger returns a ledger keeping the capacity lowest-priority
// candidates (default 256 when capacity <= 0). seed keys the priority hash:
// the same seed samples the same candidates.
func NewLedger(capacity int, seed int64) *Ledger {
	if capacity <= 0 {
		capacity = 256
	}
	l := &Ledger{cap: capacity, seed: seed, salt: uint64(seed) * 0x9e3779b97f4a7c15}
	l.threshold.Store(math.MaxUint64)
	return l
}

// Config returns the capacity and seed the ledger was built with, so a
// sharded worker can construct a compatible ledger: equal seeds assign
// equal priorities, which is what makes Absorb a well-defined union.
func (l *Ledger) Config() (capacity int, seed int64) { return l.cap, l.seed }

// LedgerEntry is one sampled candidate as it appears in the JSONL dump.
type LedgerEntry struct {
	// Sketch is the canonical sketch expression; Handler is the bound
	// completion (equal to Sketch when there were no holes).
	Sketch  string    `json:"sketch"`
	Handler string    `json:"handler"`
	Consts  []float64 `json:"consts,omitempty"`
	// Distance is the candidate's score (null when non-finite) and Exact
	// whether it is the full sum or a pruned lower bound.
	Distance jsonFloat `json:"distance"`
	Exact    bool      `json:"exact"`
	Diverged bool      `json:"diverged,omitempty"`
	// Stage is the cascade rung that settled the candidate; Segment/Row
	// locate where. Segments holds the per-segment stage outcomes in
	// scoring order ("full", "lb_kim", "lb_keogh", "abandon").
	Stage      string   `json:"stage"`
	Segment    int      `json:"segment"`
	Row        int      `json:"row,omitempty"`
	Cells      int      `json:"cells"`
	CellsSaved int      `json:"cells_saved"`
	Segments   []string `json:"segments"`
}

// jsonFloat marshals non-finite values as null (a diverged candidate's
// distance is +Inf, which encoding/json rejects).
type jsonFloat float64

// MarshalJSON renders NaN/±Inf as null and everything else as a number.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// ledgerItem pairs an entry with its sample priority.
type ledgerItem struct {
	pri   uint64
	entry LedgerEntry
}

// ledgerHeap is a max-heap on priority: the root is the first candidate to
// evict when a lower priority arrives.
type ledgerHeap []ledgerItem

func (h ledgerHeap) Len() int           { return len(h) }
func (h ledgerHeap) Less(i, j int) bool { return h[i].pri > h[j].pri }
func (h ledgerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *ledgerHeap) Push(x any)        { *h = append(*h, x.(ledgerItem)) }
func (h *ledgerHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h ledgerHeap) root() uint64       { return h[0].pri }
func (h ledgerHeap) sorted() []ledgerItem {
	out := append([]ledgerItem(nil), h...)
	sort.Slice(out, func(i, j int) bool { return out[i].pri < out[j].pri })
	return out
}

// priority hashes a candidate's identity under the ledger's salt.
func (l *Ledger) priority(tag uint64, key string, vals []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], l.salt)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], tag)
	h.Write(buf[:])
	io.WriteString(h, key)
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// offer decides whether the candidate enters the sample; build is only
// invoked on acceptance, so rejected candidates never pay for rendering
// expression strings.
//
// Priorities key candidate identity, so a re-offer of a sampled candidate
// (the same completion settling again in a later pass) updates its row
// instead of duplicating it, keeping the lexicographically smaller JSON
// encoding — the same rule Absorb applies across shards, so a sample is a
// deterministic function of the offered candidate set either way.
func (l *Ledger) offer(pri uint64, build func() LedgerEntry) {
	if l == nil {
		return
	}
	if l.full.Load() && pri > l.threshold.Load() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.items {
		if l.items[i].pri != pri {
			continue
		}
		e := build()
		cur, err1 := json.Marshal(l.items[i].entry)
		inc, err2 := json.Marshal(e)
		if err1 == nil && err2 == nil && bytes.Compare(inc, cur) < 0 {
			l.items[i].entry = e
		}
		return
	}
	if len(l.items) >= l.cap {
		if pri >= l.items.root() {
			return
		}
		l.items[0] = ledgerItem{pri: pri, entry: build()}
		heap.Fix(&l.items, 0)
	} else {
		heap.Push(&l.items, ledgerItem{pri: pri, entry: build()})
	}
	if len(l.items) >= l.cap {
		l.threshold.Store(l.items.root())
		l.full.Store(true)
	}
}

// Len returns the number of sampled candidates.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.items)
}

// Entries returns the sampled candidates in priority order (the dump
// order) — deterministic for a fixed seed and candidate set.
func (l *Ledger) Entries() []LedgerEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	items := l.items.sorted()
	l.mu.Unlock()
	out := make([]LedgerEntry, len(items))
	for i, it := range items {
		out[i] = it.entry
	}
	return out
}

// LedgerItem is one sampled candidate with its priority — the wire shape
// sharded workers ship so a coordinator can merge samples exactly.
type LedgerItem struct {
	Pri   uint64
	Entry LedgerEntry
}

// Export returns the sample with priorities, in priority order.
func (l *Ledger) Export() []LedgerItem {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	items := l.items.sorted()
	l.mu.Unlock()
	out := make([]LedgerItem, len(items))
	for i, it := range items {
		out[i] = LedgerItem{Pri: it.pri, Entry: it.entry}
	}
	return out
}

// Absorb merges another shard's exported sample in: the result is the
// bottom-cap of the union, deduplicated by priority. Priorities key
// candidate identity, so the same candidate offered by two workers (one
// worker re-scored what another's memo cache would have settled) collapses
// to one row; when the duplicates' rendered entries differ — cross-worker
// cache effects can change the settling stage — the lexicographically
// smaller JSON encoding is kept, so the merged sample is a deterministic
// function of the union regardless of which worker shipped first. Absorb
// is how a sharded run's merged ledger stays byte-stable per seed.
func (l *Ledger) Absorb(items []LedgerItem) {
	if l == nil || len(items) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	byPri := make(map[uint64]int, len(l.items))
	for i := range l.items {
		byPri[l.items[i].pri] = i
	}
	for _, it := range items {
		if i, ok := byPri[it.Pri]; ok {
			cur, err1 := json.Marshal(l.items[i].entry)
			inc, err2 := json.Marshal(it.Entry)
			if err1 == nil && err2 == nil && bytes.Compare(inc, cur) < 0 {
				l.items[i].entry = it.Entry
			}
			continue
		}
		if len(l.items) >= l.cap {
			if it.Pri >= l.items.root() {
				continue
			}
			delete(byPri, l.items[0].pri)
			l.items[0] = ledgerItem{pri: it.Pri, entry: it.Entry}
			heap.Fix(&l.items, 0)
			// Fix may have moved several items; rebuilding the index lazily
			// would complicate the loop, so re-scan (cap is small).
			for i := range l.items {
				byPri[l.items[i].pri] = i
			}
		} else {
			heap.Push(&l.items, ledgerItem{pri: it.Pri, entry: it.Entry})
			for i := range l.items {
				byPri[l.items[i].pri] = i
			}
		}
	}
	if len(l.items) >= l.cap {
		l.threshold.Store(l.items.root())
		l.full.Store(true)
	}
}

// WriteJSONL dumps the sample as one JSON object per line, in priority
// order.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Entries() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// offer routes a settled candidate outcome to the scorer's ledger.
func (cs *CompiledSketch) offer(vals []float64, out *CandidateOutcome) {
	l := cs.s.ledger
	if l == nil {
		return
	}
	pri := l.priority(cs.s.ledgerTag, cs.e.key, vals)
	l.offer(pri, func() LedgerEntry { return newLedgerEntry(cs, vals, out) })
}

// newLedgerEntry renders an accepted candidate. Strings are built here, on
// the rare acceptance path, not per offer.
func newLedgerEntry(cs *CompiledSketch, vals []float64, out *CandidateOutcome) LedgerEntry {
	sketch := cs.e.src.String()
	handler := sketch
	if len(vals) > 0 {
		if bound, err := cs.e.src.Bind(vals); err == nil {
			handler = bound.String()
		}
	}
	e := LedgerEntry{
		Sketch:     sketch,
		Handler:    handler,
		Consts:     append([]float64(nil), vals...),
		Distance:   jsonFloat(out.Distance),
		Exact:      out.Exact,
		Diverged:   out.Diverged,
		Stage:      stageLabel(out),
		Segment:    out.Segment,
		Row:        out.Row,
		Cells:      out.Cells,
		CellsSaved: out.Saved,
		Segments:   make([]string, len(out.Segments)),
	}
	for i, o := range out.Segments {
		e.Segments[i] = o.Stage.String()
	}
	return e
}

// stageLabel names the candidate-level settling stage, folding replay
// divergence in (a diverged candidate's metric outcome is vacuous).
func stageLabel(out *CandidateOutcome) string {
	if out.Diverged {
		return "diverged"
	}
	return out.Stage.String()
}
