package replay

import (
	"math"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/trace"
)

// Closed-loop replay. §3.1 of the paper describes the simulation as: "for
// each packet received in the collected trace, we execute the candidate
// handler function, and, based on resulting CWND value, decide whether to
// send the next packet." The open-loop Synthesize feeds the handler the
// trace's observed acked-bytes stream regardless of the handler's own
// window; this variant closes the loop: the bytes acknowledged at each
// step are ack-clocked from the handler's *own* window, so a handler that
// grows a larger window sees proportionally more returning ACKs — exactly
// what would happen if it were driving the connection.
//
// The approximation: over the inter-ACK gap dt, a window of W bytes on a
// path with round-trip time rtt delivers ~W*dt/rtt bytes, capped by the
// observed bottleneck rate (the path cannot deliver faster than the trace
// shows it delivering).

// SynthesizeClosedLoop replays the handler with ack-clocked feedback and
// returns the synthesized CWND series (MSS units).
func SynthesizeClosedLoop(h *dsl.Node, seg *trace.Segment) (dist.Series, error) {
	envs := Envs(seg)
	s := dist.Series{
		Times:  make([]float64, len(envs)),
		Values: make([]float64, len(envs)),
	}
	if len(envs) == 0 {
		return s, nil
	}
	cwnd := seg.Samples[0].Cwnd
	if cwnd < seg.MSS {
		cwnd = seg.MSS
	}
	mss := seg.MSS
	prevT := seg.Samples[0].Time.Seconds()
	for i := range envs {
		env := envs[i]
		t := seg.Samples[i].Time.Seconds()
		dt := t - prevT
		prevT = t

		// Ack-clock the delivery: the handler's window drives how much
		// data returns in this step, bounded by the path's observed
		// delivery (acked bytes recorded in the trace represent the
		// bottleneck's capacity over the same interval).
		if i > 0 && env.RTT > 0 && dt > 0 {
			selfAcked := cwnd * dt / env.RTT
			if selfAcked > env.Acked && env.Acked > 0 {
				selfAcked = env.Acked // cannot outpace the bottleneck
			}
			if selfAcked < 0 {
				selfAcked = 0
			}
			env.Acked = selfAcked
			// The delivery-rate signal follows the handler's own
			// throughput, again bounded by the observed rate.
			if env.AckRate > 0 {
				selfRate := cwnd / env.RTT
				if selfRate < env.AckRate {
					env.AckRate = selfRate
				}
			}
		}
		env.Cwnd = cwnd
		v, err := h.Eval(&env)
		if err != nil {
			return dist.Series{}, ErrDiverged
		}
		cwnd = clamp(v, minCwndPkts*mss, maxCwndPkts*mss)
		s.Times[i] = t
		s.Values[i] = cwnd / mss
	}
	return s, nil
}

// ClosedLoopDistance scores a handler against a segment under closed-loop
// replay.
func ClosedLoopDistance(h *dsl.Node, seg *trace.Segment, m dist.Metric) float64 {
	synth, err := SynthesizeClosedLoop(h, seg)
	if err != nil {
		return math.Inf(1)
	}
	return m.Distance(seg.Series(), synth)
}

// ClosedLoopTotalDistance sums closed-loop distances across segments.
func ClosedLoopTotalDistance(h *dsl.Node, segs []*trace.Segment, m dist.Metric) float64 {
	var total float64
	for _, seg := range segs {
		d := ClosedLoopDistance(h, seg, m)
		if math.IsInf(d, 1) {
			return d
		}
		total += d
	}
	return total
}
