package replay

import (
	"math"
	"sync"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/trace"
)

// Scorer scores candidate handlers against a fixed segment set. It is
// built once per segment set and owns everything that is invariant across
// candidates: the segments' signals as structure-of-arrays columns, the
// sample time grids, the observed series resampled onto the metric grid,
// and (for DTW) the LB_Keogh envelopes. Handlers execute on the register
// VM (dsl.CompileProgram): programs are cached keyed on the expression's
// canonical form, and each program's window-free prologue columns are
// computed once per (sketch, segment) and reused by every completion —
// see CompileSketch. Per-candidate buffers come from a sync.Pool, so
// concurrent scoring workers neither allocate per call nor contend.
//
// Score is threshold-aware: segments accumulate into a running total and
// both the per-segment metric kernels and the cross-segment sum abandon
// once the total is provably >= the cutoff. The exactness flag — not a
// comparison against cutoff — tells the caller which case occurred.
type Scorer struct {
	metric   dist.Metric
	segs     []*trace.Segment
	cols     []*dsl.Cols
	times    [][]float64
	cwnd0    []float64
	mss      []float64
	prepared []*dist.PreparedSeries
	res      []*dist.Resampler // per-segment grid schedules (nil: Series path)
	pool     sync.Pool
	bpool    sync.Pool // batchScratch for the lane-batched path

	mu    sync.Mutex
	progs map[string]*compiledEntry

	// progSrc, when set, supplies compiled programs shared beyond this
	// scorer's lifetime (a batch corpus); see WithPrograms.
	progSrc ProgramSource

	// ledger, when set, samples candidates scored through ScoreDetail;
	// ledgerTag salts the sample priority (core passes the segment-set
	// fingerprint so the same candidate re-scored in a later iteration is
	// a distinct ledger event). See WithLedger.
	ledger    *Ledger
	ledgerTag uint64
}

// ProgramSource supplies compiled register programs keyed by the
// expression's canonical form. A source shared across scorers (and across
// synthesis runs — corpus.SketchCorpus implements this) amortizes
// compilation over a whole trace batch; implementations must be safe for
// concurrent use and must return a program equivalent to
// dsl.CompileProgram(sk).
type ProgramSource interface {
	Program(key string, sk *dsl.Node) *dsl.Program
}

// progCacheCap bounds the compiled-program cache. A synthesis iteration
// scores a few hundred sketches; one cached entry holds a program plus its
// per-segment prologue columns, so the cap keeps the worst case small
// while still covering every live sketch of an iteration.
const progCacheCap = 512

// compiledEntry is one cached program with its lazily-filled per-segment
// prologues. Entries are never mutated after eviction, so a CompiledSketch
// holding one stays valid even if the cache drops it. key and src identify
// the sketch for ledger sampling (the key doubles as the priority-hash
// input; src renders the entry lazily on acceptance).
type compiledEntry struct {
	prog *dsl.Program
	key  string
	src  *dsl.Node
	mu   sync.Mutex
	pros []*dsl.Prologue
}

// scorerScratch is one worker's reusable buffers.
type scorerScratch struct {
	values []float64
	grid   []float64 // candidate resampled onto the metric grid
	dist   *dist.Scratch
	exec   *dsl.Exec
}

// NewScorer prepares a scorer for the segment set under the metric (nil
// means DTW, matching core's default).
func NewScorer(segs []*trace.Segment, m dist.Metric) *Scorer {
	if m == nil {
		m = dist.DTW{}
	}
	s := &Scorer{
		metric:   m,
		segs:     segs,
		cols:     make([]*dsl.Cols, len(segs)),
		times:    make([][]float64, len(segs)),
		cwnd0:    make([]float64, len(segs)),
		mss:      make([]float64, len(segs)),
		prepared: make([]*dist.PreparedSeries, len(segs)),
		res:      make([]*dist.Resampler, len(segs)),
		progs:    make(map[string]*compiledEntry),
	}
	// The grid fast path hands pre-resampled candidates straight to the
	// built-in metric kernels; other metrics keep the validating Series path.
	gridOK := false
	switch m.(type) {
	case dist.DTW, dist.Euclidean, dist.Manhattan, dist.Frechet:
		gridOK = true
	}
	for i, seg := range segs {
		s.cols[i] = NewCols(seg)
		times := make([]float64, len(seg.Samples))
		for j := range seg.Samples {
			times[j] = seg.Samples[j].Time.Seconds()
		}
		s.times[i] = times
		if len(seg.Samples) > 0 {
			s.cwnd0[i] = math.Max(seg.Samples[0].Cwnd, seg.MSS)
		}
		s.mss[i] = seg.MSS
		s.prepared[i] = dist.Prepare(m, seg.Series())
		if gridOK && len(times) > 0 {
			s.res[i] = dist.NewResampler(times) // nil when times are unsorted
		}
	}
	s.pool.New = func() any {
		return &scorerScratch{
			grid: make([]float64, dist.ResampleN),
			dist: dist.NewScratch(),
			exec: dsl.NewExec(),
		}
	}
	s.bpool.New = func() any { return newBatchScratch() }
	return s
}

// WithPrograms routes CompileSketch through a shared program source; the
// scorer still keeps its own per-segment prologue state, which is what
// makes cross-trace program sharing safe (prologues depend on the segment
// set). A nil source is a no-op. Returns the scorer for chaining.
func (s *Scorer) WithPrograms(ps ProgramSource) *Scorer {
	s.progSrc = ps
	return s
}

// WithLedger attaches a candidate ledger: every completion scored through
// ScoreDetail with a non-nil CandidateOutcome is offered to it under the
// ledger's deterministic sampling policy. tag salts the sample priority —
// callers scoring the same candidates in distinct rounds (core's
// refinement iterations) pass a round fingerprint so rounds sample
// independently. A nil ledger is a no-op. Returns the scorer for chaining.
func (s *Scorer) WithLedger(l *Ledger, tag uint64) *Scorer {
	s.ledger = l
	s.ledgerTag = tag
	return s
}

// Metric returns the metric the scorer was built with.
func (s *Scorer) Metric() dist.Metric { return s.metric }

// Segments returns the segment set the scorer was built over.
func (s *Scorer) Segments() []*trace.Segment { return s.segs }

// CompiledSketch is a sketch (or bound handler) compiled against one
// Scorer: the register program plus the scorer's cached per-segment
// prologue columns. Completions of the sketch are scored by patching their
// constants into the program's pool — no recompilation, no redundant
// window-free arithmetic. Safe for concurrent use.
type CompiledSketch struct {
	s *Scorer
	e *compiledEntry
}

// CompileSketch compiles the expression for this scorer's segment set,
// reusing a cached program when the same canonical form was seen before.
// vals passed to Score/SegmentScore later fill the sketch's holes in Bind
// order (nil for a fully bound expression).
func (s *Scorer) CompileSketch(sk *dsl.Node) *CompiledSketch {
	key := sk.Key()
	s.mu.Lock()
	e, ok := s.progs[key]
	if !ok {
		if len(s.progs) >= progCacheCap {
			for k := range s.progs { // drop an arbitrary entry
				delete(s.progs, k)
				break
			}
		}
		prog := (*dsl.Program)(nil)
		if s.progSrc != nil {
			prog = s.progSrc.Program(key, sk)
		}
		if prog == nil {
			prog = dsl.CompileProgram(sk)
		}
		e = &compiledEntry{
			prog: prog,
			key:  key,
			src:  sk,
			pros: make([]*dsl.Prologue, len(s.segs)),
		}
		s.progs[key] = e
	}
	s.mu.Unlock()
	return &CompiledSketch{s: s, e: e}
}

// Score sums the handler's per-segment distances — the same value as the
// deprecated TotalDistance — abandoning once the running total is provably
// >= cutoff. The second result reports exactness: true means the value is
// exactly the full sum; false means the computation stopped early and the
// value is a lower bound on the full sum (and, up to one rounding ulp, >=
// cutoff — rely on the flag, not a comparison). Score is safe for
// concurrent use.
func (s *Scorer) Score(h *dsl.Node, cutoff float64) (float64, bool) {
	return s.CompileSketch(h).Score(nil, cutoff)
}

// SegmentScore scores the handler against segment i alone, under the same
// contract as Score. Callers needing per-segment distances (Figure 4's
// per-segment breakdown) use this instead of re-preparing the segment.
// The compiled program is cached, so repeated calls with the same handler
// do not recompile.
func (s *Scorer) SegmentScore(h *dsl.Node, i int, cutoff float64) (float64, bool) {
	return s.CompileSketch(h).SegmentScore(nil, i, cutoff)
}

// CandidateOutcome is the provenance of one scored candidate: how each
// segment settled, which stage ended the computation, and the total DP cell
// cost. A caller-owned value is reused across candidates (Segments keeps
// its capacity); it is only valid until the next ScoreDetail call with the
// same value.
type CandidateOutcome struct {
	// Distance and Exact restate ScoreDetail's return values.
	Distance float64
	Exact    bool
	// Diverged reports the replay aborted on a non-finite window (the
	// distance is +Inf, exactly).
	Diverged bool
	// Stage is the cascade rung that settled the candidate: StageFull for
	// an exact score, the pruning stage otherwise. A candidate abandoned
	// because the cross-segment running total reached the cutoff reports
	// StageAbandon with Row 0.
	Stage dist.Stage
	// Segment is the index of the segment on which the candidate settled
	// (the last segment scored); Row is the DP row within it (see
	// dist.Outcome.Row).
	Segment int
	Row     int
	// Cells and Saved total the DP cell cost over all segments scored.
	Cells int
	Saved int
	// Segments holds the per-segment stage outcomes, one per segment
	// scored before settling.
	Segments []dist.Outcome
}

// reset clears the outcome for a new candidate, keeping Segments capacity.
func (co *CandidateOutcome) reset() {
	*co = CandidateOutcome{Segments: co.Segments[:0]}
}

// settle records the final value once scoring stops.
func (co *CandidateOutcome) settle(d float64, exact bool, stage dist.Stage, seg, row int) {
	co.Distance = d
	co.Exact = exact
	co.Stage = stage
	co.Segment = seg
	co.Row = row
}

// Score scores one completion of the sketch (vals in Bind order; nil for a
// bound expression) under the Scorer.Score contract.
func (cs *CompiledSketch) Score(vals []float64, cutoff float64) (float64, bool) {
	return cs.ScoreDetail(vals, cutoff, nil)
}

// ScoreDetail is Score with per-candidate provenance: when out is non-nil
// it is reset and filled with the candidate's stage outcomes, and the
// candidate is offered to the scorer's ledger (when one is attached).
// Passing a nil out is exactly Score — no provenance, no ledger traffic.
func (cs *CompiledSketch) ScoreDetail(vals []float64, cutoff float64, out *CandidateOutcome) (float64, bool) {
	s := cs.s
	sc := s.pool.Get().(*scorerScratch)
	defer s.pool.Put(sc)
	if out != nil {
		out.reset()
	}
	var total float64
	last := len(s.segs) - 1
	for i := range s.segs {
		// The sub-cutoff over-approximates cutoff-total by a ulp so a
		// segment is never abandoned when the true total is < cutoff.
		segCut := math.Nextafter(cutoff-total, math.Inf(1))
		d, o, diverged := cs.segmentScore(vals, i, segCut, sc)
		if out != nil {
			out.Segments = append(out.Segments, o)
			out.Cells += o.Cells
			out.Saved += o.Saved
			out.Diverged = out.Diverged || diverged
		}
		if !o.Exact() {
			total += d
			if out != nil {
				out.settle(total, false, o.Stage, i, o.Row)
				cs.offer(vals, out)
			}
			return total, false
		}
		total += d
		if math.IsInf(total, 1) {
			if out != nil {
				out.settle(total, true, dist.StageFull, i, 0)
				cs.offer(vals, out)
			}
			return total, true
		}
		if total >= cutoff && i < last {
			// Cross-segment abandon: the running sum of exact segment
			// distances already reaches the cutoff.
			if out != nil {
				out.settle(total, false, dist.StageAbandon, i, 0)
				cs.offer(vals, out)
			}
			return total, false
		}
	}
	if out != nil {
		out.settle(total, true, dist.StageFull, last, 0)
		cs.offer(vals, out)
	}
	return total, true
}

// SegmentScore scores one completion against segment i alone, under the
// same contract as Score.
func (cs *CompiledSketch) SegmentScore(vals []float64, i int, cutoff float64) (float64, bool) {
	s := cs.s
	sc := s.pool.Get().(*scorerScratch)
	defer s.pool.Put(sc)
	d, o, _ := cs.segmentScore(vals, i, cutoff, sc)
	return d, o.Exact()
}

// prologue returns segment i's hoisted output columns, computing them on
// first use. The hit/miss counters are the PR's headline instrument: every
// hit is a (sketch, segment) replay whose window-free arithmetic was
// skipped entirely.
func (cs *CompiledSketch) prologue(i int) *dsl.Prologue {
	e := cs.e
	e.mu.Lock()
	p := e.pros[i]
	if p == nil {
		p = e.prog.RunPrologue(cs.s.cols[i])
		e.pros[i] = p
		e.mu.Unlock()
		cProMisses.Load().Inc()
		cInstrs.Load().Add(int64(e.prog.PrologueLen()) * int64(cs.s.cols[i].N))
		return p
	}
	e.mu.Unlock()
	cProHits.Load().Inc()
	return p
}

// segmentScore replays the program over segment i into sc's buffers and
// measures the synthesized series against the prepared observed one.
// Mirrors SynthesizeEnvs exactly (same clamping, same divergence
// accounting) so Scorer scores match the closure path bit for bit. The
// third result reports replay divergence (the +Inf is exact but came from
// the VM, not the metric).
func (cs *CompiledSketch) segmentScore(vals []float64, i int, cutoff float64, sc *scorerScratch) (float64, dist.Outcome, bool) {
	s := cs.s
	n := s.cols[i].N
	if n == 0 {
		d, o := dist.PreparedDistanceDetail(s.metric, s.prepared[i], dist.Series{}, cutoff, sc.dist)
		return d, o, false
	}
	cReplays.Load().Inc()
	if cap(sc.values) < n {
		sc.values = make([]float64, n)
	}
	values := sc.values[:n]
	prog := cs.e.prog
	rows, ok := prog.EvalSeries(s.cols[i], cs.prologue(i), vals,
		s.cwnd0[i], minCwndPkts*s.mss[i], maxCwndPkts*s.mss[i], s.mss[i], values, sc.exec)
	cInstrs.Load().Add(int64(rows) * int64(prog.SuffixLen()))
	if !ok {
		cDiverged.Load().Inc()
		return math.Inf(1), dist.Outcome{}, true
	}
	if r := s.res[i]; r != nil {
		// The segment's time vector is fixed, so the interpolation schedule
		// was precomputed in NewScorer: resampling a candidate is a weighted
		// gather instead of a validate + merge per call. Values are identical
		// to the Series path's, so scores stay bit-for-bit equal.
		r.Into(values, sc.grid)
		d, o := dist.PreparedDistanceDetailGrid(s.metric, s.prepared[i], sc.grid, cutoff, sc.dist)
		return d, o, false
	}
	synth := dist.Series{Times: s.times[i], Values: values}
	d, o := dist.PreparedDistanceDetail(s.metric, s.prepared[i], synth, cutoff, sc.dist)
	return d, o, false
}
