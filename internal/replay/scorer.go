package replay

import (
	"math"
	"sync"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/trace"
)

// Scorer scores candidate handlers against a fixed segment set. It is
// built once per segment set and owns everything that is invariant across
// candidates: the per-ACK evaluation environments, the observed series
// resampled onto the metric grid, and (for DTW) the LB_Keogh envelopes.
// Per-candidate buffers — the synthesized series and the metric DP rows —
// come from a sync.Pool, so concurrent scoring workers neither allocate
// per call nor contend.
//
// Score is threshold-aware: segments accumulate into a running total and
// both the per-segment metric kernels and the cross-segment sum abandon
// once the total is provably >= the cutoff. The exactness flag — not a
// comparison against cutoff — tells the caller which case occurred.
type Scorer struct {
	metric   dist.Metric
	segs     []*trace.Segment
	envs     [][]dsl.Env
	prepared []*dist.PreparedSeries
	pool     sync.Pool
}

// scorerScratch is one worker's reusable buffers.
type scorerScratch struct {
	times  []float64
	values []float64
	dist   *dist.Scratch
}

// NewScorer prepares a scorer for the segment set under the metric (nil
// means DTW, matching core's default).
func NewScorer(segs []*trace.Segment, m dist.Metric) *Scorer {
	if m == nil {
		m = dist.DTW{}
	}
	s := &Scorer{
		metric:   m,
		segs:     segs,
		envs:     make([][]dsl.Env, len(segs)),
		prepared: make([]*dist.PreparedSeries, len(segs)),
	}
	for i, seg := range segs {
		s.envs[i] = Envs(seg)
		s.prepared[i] = dist.Prepare(m, seg.Series())
	}
	s.pool.New = func() any { return &scorerScratch{dist: dist.NewScratch()} }
	return s
}

// Metric returns the metric the scorer was built with.
func (s *Scorer) Metric() dist.Metric { return s.metric }

// Segments returns the segment set the scorer was built over.
func (s *Scorer) Segments() []*trace.Segment { return s.segs }

// Score sums the handler's per-segment distances — the same value as the
// deprecated TotalDistance — abandoning once the running total is provably
// >= cutoff. The second result reports exactness: true means the value is
// exactly the full sum; false means the computation stopped early and the
// value is a lower bound on the full sum (and, up to one rounding ulp, >=
// cutoff — rely on the flag, not a comparison). Score is safe for
// concurrent use.
func (s *Scorer) Score(h *dsl.Node, cutoff float64) (float64, bool) {
	sc := s.pool.Get().(*scorerScratch)
	defer s.pool.Put(sc)
	fn := dsl.Compile(h)
	var total float64
	last := len(s.segs) - 1
	for i := range s.segs {
		// The sub-cutoff over-approximates cutoff-total by a ulp so a
		// segment is never abandoned when the true total is < cutoff.
		segCut := math.Nextafter(cutoff-total, math.Inf(1))
		d, exact := s.segmentScore(fn, i, segCut, sc)
		if !exact {
			return total + d, false
		}
		total += d
		if math.IsInf(total, 1) {
			return total, true
		}
		if total >= cutoff && i < last {
			return total, false
		}
	}
	return total, true
}

// SegmentScore scores the handler against segment i alone, under the same
// contract as Score. Callers needing per-segment distances (Figure 4's
// per-segment breakdown) use this instead of re-preparing the segment.
func (s *Scorer) SegmentScore(h *dsl.Node, i int, cutoff float64) (float64, bool) {
	sc := s.pool.Get().(*scorerScratch)
	defer s.pool.Put(sc)
	return s.segmentScore(dsl.Compile(h), i, cutoff, sc)
}

func (s *Scorer) segmentScore(fn dsl.EvalFunc, i int, cutoff float64, sc *scorerScratch) (float64, bool) {
	synth, ok := s.synthesize(fn, i, sc)
	if !ok {
		return math.Inf(1), true
	}
	return dist.PreparedDistanceWithin(s.metric, s.prepared[i], synth, cutoff, sc.dist)
}

// synthesize replays the compiled handler over segment i into sc's
// buffers; the returned series aliases the scratch and is only valid until
// the scratch's next use. Mirrors SynthesizeEnvs exactly (same clamping,
// same divergence accounting) so Scorer scores match the deprecated
// wrappers bit for bit.
func (s *Scorer) synthesize(fn dsl.EvalFunc, i int, sc *scorerScratch) (dist.Series, bool) {
	seg := s.segs[i]
	envs := s.envs[i]
	n := len(envs)
	if n == 0 {
		return dist.Series{}, true
	}
	cReplays.Load().Inc()
	if cap(sc.times) < n {
		sc.times = make([]float64, n)
		sc.values = make([]float64, n)
	}
	times := sc.times[:n]
	values := sc.values[:n]
	cwnd := seg.Samples[0].Cwnd
	if cwnd < seg.MSS {
		cwnd = seg.MSS
	}
	mss := seg.MSS
	// env is hoisted out of the loop: fn takes it by pointer, so a
	// loop-local would escape and heap-allocate once per ACK sample.
	var env dsl.Env
	for j := range envs {
		env = envs[j]
		env.Cwnd = cwnd
		v, ok := fn(&env)
		if !ok {
			cDiverged.Load().Inc()
			return dist.Series{}, false
		}
		cwnd = clamp(v, minCwndPkts*mss, maxCwndPkts*mss)
		times[j] = seg.Samples[j].Time.Seconds()
		values[j] = cwnd / mss
	}
	return dist.Series{Times: times, Values: values}, true
}
