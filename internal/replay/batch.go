package replay

import (
	"math"

	"repro/internal/dist"
	"repro/internal/dsl"
)

// Lanes is the batch width of the lane-batched scoring path: how many
// constant-pool completions of one sketch ScoreBatchDetail executes per
// call through the K-wide VM (dsl.EvalSeriesBatch) and the multi-series
// distance kernel (dist.PreparedDistanceWithinGridBatch). A build-time
// constant so the lane loops compile with a fixed upper bound; the
// occupancy counters (replay.batches_executed, replay.lanes_filled)
// report how full the lanes run in practice.
const Lanes = 8

// batchScratch is one worker's reusable buffers for ScoreBatchDetail:
// lane-major value and grid slabs plus the compacted per-segment lane
// lists. Everything is slab-reused across calls — the steady state
// allocates nothing.
type batchScratch struct {
	values   []float64 // live-lane replay outputs, n values per lane
	grids    []float64 // live-lane resampled candidates, ResampleN per lane
	laneVals [][]float64
	laneGrid [][]float64
	valsC    [][]float64 // compacted constant vectors for the VM
	cutsC    []float64   // compacted per-lane segment cutoffs
	rows     []int
	oks      []bool
	segDs    []float64
	segOuts  []dist.Outcome
	segCuts  []float64
	totals   []float64
	live     []int
	live2    []int
	bex      *dsl.BatchExec
	exec     *dsl.Exec // scalar VM fallback for single-lane batches
	bdist    *dist.BatchScratch
	dist     *dist.Scratch // scalar fallback (empty segments, Series path)
}

func newBatchScratch() *batchScratch {
	return &batchScratch{
		bex:   dsl.NewBatchExec(),
		exec:  dsl.NewExec(),
		bdist: dist.NewBatchScratch(),
		dist:  dist.NewScratch(),
	}
}

// ScoreBatch scores K = len(valsK) completions of the sketch in one
// lane-batched pass, without provenance. See ScoreBatchDetail.
func (cs *CompiledSketch) ScoreBatch(valsK [][]float64, cutoffs []float64, ds []float64, exacts []bool) {
	cs.ScoreBatchDetail(valsK, cutoffs, ds, exacts, nil)
}

// ScoreBatchDetail scores K = len(valsK) completions of the sketch in one
// lane-batched pass: every segment is replayed K lanes wide on the VM and
// the synthesized series are measured against the prepared segment by the
// multi-series distance kernel, under per-lane cutoffs. Lane l's results
// (ds[l], exacts[l], and outs[l] when outs is non-nil — including its
// ledger offer) are bit-identical to a scalar
// ScoreDetail(valsK[l], cutoffs[l], &outs[l]) call: the same per-segment
// sub-cutoffs, the same divergence and cross-segment-abandon rules, the
// same stage attribution. A lane that settles (pruned, diverged, or
// cross-segment abandoned) leaves the live set and stops paying for
// replay and DP work on later segments. cutoffs, ds, and exacts must have
// at least K entries; outs may be nil (no provenance, no ledger traffic)
// or have at least K entries.
func (cs *CompiledSketch) ScoreBatchDetail(valsK [][]float64, cutoffs []float64, ds []float64, exacts []bool, outs []CandidateOutcome) {
	k := len(valsK)
	if k == 0 {
		return
	}
	cBatches.Load().Inc()
	cLanes.Load().Add(int64(k))
	s := cs.s
	sc := s.bpool.Get().(*batchScratch)
	defer s.bpool.Put(sc)

	totals := grow(&sc.totals, k)
	segCuts := grow(&sc.segCuts, k)
	live := sc.live[:0]
	for l := 0; l < k; l++ {
		totals[l] = 0
		live = append(live, l)
		if outs != nil {
			outs[l].reset()
		}
	}
	last := len(s.segs) - 1

	// applySeg folds one segment outcome into lane l — the exact epilogue
	// of ScoreDetail's segment loop. It reports whether the lane settled.
	applySeg := func(l int, d float64, o dist.Outcome, diverged bool, i int) bool {
		if outs != nil {
			out := &outs[l]
			out.Segments = append(out.Segments, o)
			out.Cells += o.Cells
			out.Saved += o.Saved
			out.Diverged = out.Diverged || diverged
		}
		if !o.Exact() {
			totals[l] += d
			ds[l], exacts[l] = totals[l], false
			if outs != nil {
				outs[l].settle(totals[l], false, o.Stage, i, o.Row)
				cs.offer(valsK[l], &outs[l])
			}
			return true
		}
		totals[l] += d
		if math.IsInf(totals[l], 1) {
			ds[l], exacts[l] = totals[l], true
			if outs != nil {
				outs[l].settle(totals[l], true, dist.StageFull, i, 0)
				cs.offer(valsK[l], &outs[l])
			}
			return true
		}
		if totals[l] >= cutoffs[l] && i < last {
			ds[l], exacts[l] = totals[l], false
			if outs != nil {
				outs[l].settle(totals[l], false, dist.StageAbandon, i, 0)
				cs.offer(valsK[l], &outs[l])
			}
			return true
		}
		return false
	}

	for i := range s.segs {
		if len(live) == 0 {
			break
		}
		for _, l := range live {
			segCuts[l] = math.Nextafter(cutoffs[l]-totals[l], math.Inf(1))
		}
		n := s.cols[i].N
		newLive := sc.live2[:0]
		if n == 0 {
			// Empty segments take the scalar path per lane: for the built-in
			// metrics it settles to +Inf immediately, and a generic metric's
			// fallback sees the same call sequence as ScoreDetail.
			for _, l := range live {
				d, o := dist.PreparedDistanceDetail(s.metric, s.prepared[i], dist.Series{}, segCuts[l], sc.dist)
				if !applySeg(l, d, o, false, i) {
					newLive = append(newLive, l)
				}
			}
			sc.live2 = live
			live = newLive
			continue
		}

		nl := len(live)
		cReplays.Load().Add(int64(nl))
		if nl > 1 {
			// prologue below books one hit or miss for the call; the other
			// nl-1 lanes of this batch reuse the same hoisted columns, so
			// the per-replay hit accounting matches the scalar path.
			cProHits.Load().Add(int64(nl - 1))
		}
		if cap(sc.values) < nl*n {
			sc.values = make([]float64, nl*n)
		}
		laneVals := sc.laneVals[:0]
		valsC := sc.valsC[:0]
		for j, l := range live {
			laneVals = append(laneVals, sc.values[j*n:(j+1)*n])
			valsC = append(valsC, valsK[l])
		}
		sc.laneVals, sc.valsC = laneVals, valsC
		rows := grow(&sc.rows, nl)
		oks := grow(&sc.oks, nl)
		prog := cs.e.prog
		if nl == 1 {
			// Single live lane: the scalar VM is the K=1 fallback — the
			// lane-major kernel's per-op lane loops cost more than they
			// amortize at width 1, and bit-identity between the two is
			// pinned, so the switch is invisible.
			rows[0], oks[0] = prog.EvalSeries(s.cols[i], cs.prologue(i), valsC[0],
				s.cwnd0[i], minCwndPkts*s.mss[i], maxCwndPkts*s.mss[i], s.mss[i], laneVals[0], sc.exec)
		} else {
			prog.EvalSeriesBatch(s.cols[i], cs.prologue(i), valsC,
				s.cwnd0[i], minCwndPkts*s.mss[i], maxCwndPkts*s.mss[i], s.mss[i], laneVals, rows, oks, sc.bex)
		}
		var instrs int64
		for j := 0; j < nl; j++ {
			instrs += int64(rows[j])
		}
		cInstrs.Load().Add(instrs * int64(prog.SuffixLen()))

		r := s.res[i]
		var segDs []float64
		var segOuts []dist.Outcome
		if r != nil {
			// Grid fast path: gather the surviving lanes onto the common
			// resample grid and hand them to the multi-series kernel at once.
			if cap(sc.grids) < nl*dist.ResampleN {
				sc.grids = make([]float64, nl*dist.ResampleN)
			}
			laneGrid := sc.laneGrid[:0]
			cutsC := sc.cutsC[:0]
			ns := 0
			for j, l := range live {
				if !oks[j] {
					continue
				}
				g := sc.grids[ns*dist.ResampleN : (ns+1)*dist.ResampleN]
				ns++
				r.Into(laneVals[j], g)
				laneGrid = append(laneGrid, g)
				cutsC = append(cutsC, segCuts[l])
			}
			sc.laneGrid, sc.cutsC = laneGrid, cutsC
			segDs = grow(&sc.segDs, ns)
			segOuts = growOutcomes(&sc.segOuts, ns)
			if ns == 1 {
				// Same K=1 fallback on the metric side.
				segDs[0], segOuts[0] = dist.PreparedDistanceDetailGrid(s.metric, s.prepared[i], laneGrid[0], cutsC[0], sc.dist)
			} else {
				dist.PreparedDistanceWithinGridBatch(s.metric, s.prepared[i], laneGrid, cutsC, segDs, segOuts, sc.bdist)
			}
		}

		jj := 0 // cursor over the surviving lanes' batch results
		for j, l := range live {
			var d float64
			var o dist.Outcome
			diverged := false
			switch {
			case !oks[j]:
				cDiverged.Load().Inc()
				d, o, diverged = math.Inf(1), dist.Outcome{}, true
			case r != nil:
				d, o = segDs[jj], segOuts[jj]
				jj++
			default:
				// Unsorted time grids (or future non-grid metrics) keep the
				// validating Series path, lane by lane.
				synth := dist.Series{Times: s.times[i], Values: laneVals[j]}
				d, o = dist.PreparedDistanceDetail(s.metric, s.prepared[i], synth, segCuts[l], sc.dist)
			}
			if !applySeg(l, d, o, diverged, i) {
				newLive = append(newLive, l)
			}
		}
		sc.live2 = live
		live = newLive
	}
	for _, l := range live {
		ds[l], exacts[l] = totals[l], true
		if outs != nil {
			outs[l].settle(totals[l], true, dist.StageFull, last, 0)
			cs.offer(valsK[l], &outs[l])
		}
	}
	sc.live = live
}

// grow resizes *buf to n entries, reusing its backing array.
func grow[T int | bool | float64](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growOutcomes is grow for dist.Outcome slices.
func growOutcomes(buf *[]dist.Outcome, n int) []dist.Outcome {
	if cap(*buf) < n {
		*buf = make([]dist.Outcome, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
