// Package replay executes candidate cwnd-on-ACK handlers against the event
// stream of a collected trace segment (§3.1 of the paper): for every ACK in
// the segment, the handler receives the observed congestion signals plus
// its own evolving window state, and produces the next window. The
// resulting synthesized CWND series is what the distance metric compares
// with the observed series.
package replay

import (
	"errors"
	"math"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Package-level observability hooks. Replay sits below core's Options
// plumbing (metrics are free functions), so instruments are installed
// process-wide; the atomic pointers make installation safe against
// concurrent replays, and a nil counter (no registry installed) no-ops.
var (
	cReplays   atomic.Pointer[obs.Counter]
	cDiverged  atomic.Pointer[obs.Counter]
	cProHits   atomic.Pointer[obs.Counter]
	cProMisses atomic.Pointer[obs.Counter]
	cInstrs    atomic.Pointer[obs.Counter]
	cBatches   atomic.Pointer[obs.Counter]
	cLanes     atomic.Pointer[obs.Counter]
)

// Observe routes the package's instruments to the registry:
//
//	counters  replay.replays (handler replays executed),
//	          replay.diverged (replays aborted on non-finite windows),
//	          replay.prologue_hits / replay.prologue_misses (reuse of
//	          hoisted per-(sketch, segment) prologue columns),
//	          replay.instrs_executed (VM instructions run by EvalSeries),
//	          replay.batches_executed / replay.lanes_filled (lane-batched
//	          scoring calls and the candidates they carried — occupancy is
//	          lanes_filled / (batches_executed * Lanes))
//
// Passing nil uninstalls them. Process-wide; call once at tool startup.
func Observe(r *obs.Registry) {
	cReplays.Store(r.Counter("replay.replays"))
	cDiverged.Store(r.Counter("replay.diverged"))
	cProHits.Store(r.Counter("replay.prologue_hits"))
	cProMisses.Store(r.Counter("replay.prologue_misses"))
	cInstrs.Store(r.Counter("replay.instrs_executed"))
	cBatches.Store(r.Counter("replay.batches_executed"))
	cLanes.Store(r.Counter("replay.lanes_filled"))
}

// Window guards: a handler may compute nonsense transiently; the replay
// clamps rather than aborts so that near-miss candidates stay comparable,
// and only aborts on non-finite values.
const (
	minCwndPkts = 1.0
	maxCwndPkts = 1 << 20
)

// ErrDiverged reports that the handler produced a non-finite window.
var ErrDiverged = errors.New("replay: handler diverged (non-finite window)")

// Envs precomputes the per-ACK evaluation environments of a segment. The
// Cwnd field is a placeholder — Synthesize overwrites it with the
// handler's own evolving state at each step.
func Envs(seg *trace.Segment) []dsl.Env {
	envs := make([]dsl.Env, len(seg.Samples))
	segMin := segmentMinRTT(seg)
	for i, s := range seg.Samples {
		envs[i] = dsl.Env{
			MSS:           seg.MSS,
			Acked:         s.Acked,
			TimeSinceLoss: s.TimeSinceLoss.Seconds(),
			RTT:           effectiveRTT(&s, segMin),
			MinRTT:        s.MinRTT.Seconds(),
			MaxRTT:        s.MaxRTT.Seconds(),
			AckRate:       s.AckRate,
			RTTGradient:   s.RTTGradient,
			WMax:          s.WMax,
		}
	}
	return envs
}

// effectiveRTT returns the RTT a handler sees at one sample. Not every ACK
// carries a fresh RTT measurement, and on the first samples of a capture
// even the running minimum may still be zero; the chain RTT → MinRTT →
// segment-wide minimum keeps `rtt` (and so rtts-since-loss) from dividing
// by zero and spuriously diverging a handler with Inf.
func effectiveRTT(s *trace.Sample, segMin float64) float64 {
	if rtt := s.RTT.Seconds(); rtt != 0 {
		return rtt
	}
	if min := s.MinRTT.Seconds(); min != 0 {
		return min
	}
	return segMin
}

// segmentMinRTT is the last resort of the effectiveRTT chain: the smallest
// positive RTT (or, failing that, MinRTT) anywhere in the segment. Zero
// only when the segment carries no RTT information at all.
func segmentMinRTT(seg *trace.Segment) float64 {
	min := 0.0
	for i := range seg.Samples {
		for _, v := range [2]float64{seg.Samples[i].RTT.Seconds(), seg.Samples[i].MinRTT.Seconds()} {
			if v > 0 && (min == 0 || v < min) {
				min = v
			}
		}
	}
	return min
}

// Synthesize replays the handler over the segment and returns the
// synthesized CWND series in MSS units on the segment's time grid. The
// handler must be fully bound (no holes).
func Synthesize(h *dsl.Node, seg *trace.Segment) (dist.Series, error) {
	return SynthesizeEnvs(h, seg, Envs(seg))
}

// SynthesizeEnvs is Synthesize with pre-computed environments, for callers
// scoring many handlers against one segment.
func SynthesizeEnvs(h *dsl.Node, seg *trace.Segment, envs []dsl.Env) (dist.Series, error) {
	if len(envs) != len(seg.Samples) {
		return dist.Series{}, errors.New("replay: environment count mismatch")
	}
	cReplays.Load().Inc()
	s := dist.Series{
		Times:  make([]float64, len(envs)),
		Values: make([]float64, len(envs)),
	}
	// The handler starts from the first observed window, like the paper's
	// simulation which continues from the trace's state. The expression is
	// compiled once: it will be evaluated per ACK sample.
	cwnd := seg.Samples[0].Cwnd
	if cwnd < seg.MSS {
		cwnd = seg.MSS
	}
	mss := seg.MSS
	fn := dsl.Compile(h)
	for i := range envs {
		env := envs[i]
		env.Cwnd = cwnd
		v, ok := fn(&env)
		if !ok {
			cDiverged.Load().Inc()
			return dist.Series{}, ErrDiverged
		}
		cwnd = clamp(v, minCwndPkts*mss, maxCwndPkts*mss)
		s.Times[i] = seg.Samples[i].Time.Seconds()
		s.Values[i] = cwnd / mss
	}
	return s, nil
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}
