package dsl

import (
	"math"
	"testing"
)

// batchCols builds a synthetic segment spanning the regimes that matter
// for divergence and clamping (zero ack-rate rows poison divisions).
func batchCols(rows int) *Cols {
	const mss = 1448.0
	cols := &Cols{N: rows}
	for s := range cols.Sig {
		cols.Sig[s] = make([]float64, rows)
	}
	for i := 0; i < rows; i++ {
		e := env()
		e.Acked = mss * float64(1+i%3)
		e.RTT = 0.040 + 0.001*float64(i)
		e.TimeSinceLoss = 0.1 * float64(i)
		if i%17 == 11 {
			e.AckRate = 0
		}
		for s := SigMSS; s <= SigWMax; s++ {
			cols.Sig[s][i] = e.signal(s)
		}
	}
	return cols
}

// checkBatchVsScalar runs EvalSeriesBatch on valsK and EvalSeries per lane
// and requires bit-identical rows, ok flags, and output prefixes.
func checkBatchVsScalar(t *testing.T, p *Program, cols *Cols, valsK [][]float64, label string) {
	t.Helper()
	const mss = 1448.0
	lo, hi := mss, float64(1<<20)*mss
	k := len(valsK)
	pro := p.RunPrologue(cols)

	outs := make([][]float64, k)
	rows := make([]int, k)
	oks := make([]bool, k)
	for l := range outs {
		outs[l] = make([]float64, cols.N)
	}
	p.EvalSeriesBatch(cols, pro, valsK, 20*mss, lo, hi, mss, outs, rows, oks, NewBatchExec())

	ex := NewExec()
	want := make([]float64, cols.N)
	for l := 0; l < k; l++ {
		for i := range want {
			want[i] = 0
		}
		wr, wok := p.EvalSeries(cols, pro, valsK[l], 20*mss, lo, hi, mss, want, ex)
		if rows[l] != wr || oks[l] != wok {
			t.Fatalf("%s lane %d/%d: batch = (%d,%v), scalar = (%d,%v)", label, l, k, rows[l], oks[l], wr, wok)
		}
		for i := 0; i < wr; i++ {
			if math.Float64bits(outs[l][i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s lane %d/%d row %d: batch %x != scalar %x",
					label, l, k, i, math.Float64bits(outs[l][i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestEvalSeriesBatchMatchesScalar pins the lane-batched VM against
// EvalSeries for the Table 2 handlers, diverging handlers, and sketches
// with per-lane constants, across lane widths including partial batches.
func TestEvalSeriesBatchMatchesScalar(t *testing.T) {
	cols := batchCols(40)
	exprs := append([]string{}, table2Exprs...)
	exprs = append(exprs, "cwnd - 2*mss", "cwnd/0", "cwnd + rtt-gradient*ack-rate")
	for _, src := range exprs {
		p := CompileProgram(MustParse(src))
		for _, k := range []int{1, 2, 8, 16} {
			valsK := make([][]float64, k)
			checkBatchVsScalar(t, p, cols, valsK, src)
		}
	}

	// Sketch with one hole: lanes carry different constants, including ones
	// that diverge at different rows (negative factors drive cwnd to the lo
	// clamp; huge ones to hi; NaN poisons immediately).
	sk := CompileProgram(MustParse("cwnd + c1*reno-inc"))
	valsK := [][]float64{{1}, {0.5}, {-10}, {math.NaN()}, {1e300}, {0}, {math.Inf(1)}, {2}}
	for _, k := range []int{1, 3, 8} {
		checkBatchVsScalar(t, sk, cols, valsK[:k], "cwnd + c1*reno-inc")
	}

	// Two-hole conditional sketch.
	sk2 := CompileProgram(MustParse("cwnd + ({vegas-diff < c1} ? c2*reno-inc : 0)"))
	vals2 := [][]float64{{0, 1}, {1e-3, 0.5}, {math.Inf(-1), 2}, {5, math.NaN()}}
	checkBatchVsScalar(t, sk2, cols, vals2, "cond sketch")
}

// TestEvalSeriesBatchZeroLanes: a zero-width batch is a no-op.
func TestEvalSeriesBatchZeroLanes(t *testing.T) {
	cols := batchCols(8)
	p := CompileProgram(MustParse("cwnd + reno-inc"))
	p.EvalSeriesBatch(cols, nil, nil, 20*1448, 1448, 1448*(1<<20), 1448, nil, nil, nil, nil)
}

// FuzzEvalSeriesBatchVsScalar is the batch path's exactness oracle: for
// arbitrary programs, lane widths, and per-lane constants, every lane of
// EvalSeriesBatch must bit-match a scalar EvalSeries of the same
// completion — rows completed, divergence flag, and output series.
func FuzzEvalSeriesBatchVsScalar(f *testing.F) {
	f.Add([]byte("reno"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{6, 2, 1, 0, 3, 1, 2, 255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 0, 0, 0})
	f.Add([]byte{8, 3, 200, 100, 50, 25, 12, 6, 3, 1, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	cols := batchCols(24)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &fz{data: data}
		n := genNode(fr, 0)
		p := CompileProgram(n)
		k := 1 + int(fr.byte()%16)
		valsK := make([][]float64, k)
		for l := range valsK {
			vals := make([]float64, n.Holes())
			for i := range vals {
				vals[i] = fr.f64()
			}
			valsK[l] = vals
		}
		checkBatchVsScalar(t, p, cols, valsK, n.String())
	})
}
