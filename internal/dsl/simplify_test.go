package dsl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplifyCases(t *testing.T) {
	cases := map[string]string{
		// constant folding
		"2*3*mss":               "6*mss",
		"cwnd + 0*mss":          "cwnd",
		"1*cwnd + 0.5*2*mss":    "cwnd + mss",
		"cwnd/1":                "cwnd",
		"cwnd - 0*acked":        "cwnd",
		"cwnd/0.5":              "2*cwnd",
		"2*(3*reno-inc) + cwnd": "cwnd + 6*reno-inc", // note: operand order preserved per input
		"cube(cbrt(cwnd))":      "cwnd",
		"cbrt(cube(acked))":     "acked",
		"cube(2)":               "8",
		// decidable conditionals (the student #5 situation)
		"{2 < 1} ? mss : cwnd":         "cwnd",
		"{1 < 2} ? mss : cwnd":         "mss",
		"{4 % 2 = 0} ? mss : cwnd":     "mss",
		"{5 % 2 = 0} ? mss : cwnd":     "cwnd",
		"{cwnd < mss} ? acked : acked": "acked",
	}
	e := env()
	for src, wantSrc := range cases {
		in := MustParse(src)
		got := Simplify(in)
		want := MustParse(wantSrc)
		// Compare semantically: equal values over the reference env.
		gv, gerr := got.Eval(e)
		wv, werr := want.Eval(e)
		if gerr != nil || werr != nil {
			t.Errorf("%q: eval errors %v/%v", src, gerr, werr)
			continue
		}
		if math.Abs(gv-wv) > 1e-9 {
			t.Errorf("Simplify(%q) = %q (%.3f), want %q (%.3f)", src, got, gv, want, wv)
		}
		if got.Size() > want.Size() {
			t.Errorf("Simplify(%q) = %q (size %d) larger than %q (size %d)",
				src, got, got.Size(), want, want.Size())
		}
	}
}

func TestSimplifyLeavesIrreducible(t *testing.T) {
	for _, src := range []string{
		"cwnd + 0.7*reno-inc",
		"min-rtt*ack-rate*({rtts-since-loss % 8 = 0} ? 2.6 : 2.05)",
		"cwnd + reno-inc*({vegas-diff < 0.7} ? 0.35 : 0.16)",
	} {
		in := MustParse(src)
		got := Simplify(in)
		if !got.Equal(in) {
			t.Errorf("Simplify changed irreducible %q -> %q", src, got)
		}
	}
}

func TestSimplifyPreservesSketches(t *testing.T) {
	sk := MustParse("cwnd + c1*reno-inc")
	got := Simplify(sk)
	if !got.Equal(sk) {
		t.Errorf("Simplify altered a sketch: %q", got)
	}
	if got == sk {
		t.Error("Simplify returned the input node, not a copy")
	}
}

func TestSimplifyDoesNotMutateInput(t *testing.T) {
	in := MustParse("2*3*mss")
	before := in.String()
	Simplify(in)
	if in.String() != before {
		t.Error("Simplify mutated its input")
	}
}

// Property: simplification preserves semantics on random environments and
// never grows the expression.
func TestQuickSimplifySemantics(t *testing.T) {
	exprs := []*Node{
		MustParse("2*0.5*cwnd + 0*mss"),
		MustParse("cwnd/0.25 - acked + 3*(2*mss)"),
		MustParse("{3 < 2} ? cwnd + mss : cwnd + 2*acked"),
		MustParse("cube(cbrt(cwnd + 4*mss))"),
		MustParse("cwnd + reno-inc*({vegas-diff < 1} ? 2*0.35 : 0.16/2)"),
		MustParse("(cwnd + 150*mss)/delay-gradient"),
	}
	simplified := make([]*Node, len(exprs))
	for i, e := range exprs {
		simplified[i] = Simplify(e)
		if simplified[i].Size() > e.Size() {
			t.Fatalf("Simplify grew %q -> %q", e, simplified[i])
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := &Env{
			Cwnd:          1448 * (1 + rng.Float64()*50),
			MSS:           1448,
			Acked:         1448 * rng.Float64() * 3,
			TimeSinceLoss: rng.Float64() * 10,
			RTT:           0.02 + rng.Float64()*0.2,
			MinRTT:        0.02,
			MaxRTT:        0.3,
			AckRate:       1e5 + rng.Float64()*2e6,
			RTTGradient:   rng.Float64(),
			WMax:          1448 * (1 + rng.Float64()*60),
		}
		for i := range exprs {
			v1, err1 := exprs[i].Eval(e)
			v2, err2 := simplified[i].Eval(e)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 == nil && math.Abs(v1-v2) > 1e-6*(1+math.Abs(v1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
