package dsl

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// env returns a plausible ACK-time environment: cwnd 20 pkts of 1448B,
// RTT 50ms over a 40ms floor, 1 MB/s delivery.
func env() *Env {
	return &Env{
		Cwnd:          20 * 1448,
		MSS:           1448,
		Acked:         1448,
		TimeSinceLoss: 3.0,
		RTT:           0.050,
		MinRTT:        0.040,
		MaxRTT:        0.080,
		AckRate:       1e6,
		RTTGradient:   0.01,
		WMax:          25 * 1448,
	}
}

// Table 2 expressions: every synthesized and fine-tuned handler in the
// paper must parse.
var table2Exprs = []string{
	"2*ack-rate*min-rtt + ({cwnd % 2.7 = 0} ? 2.05*cwnd : mss)",
	"min-rtt*ack-rate*({rtts-since-loss % 8 = 0} ? 2.6 : 2.05)",
	"cwnd + 0.7*reno-inc",
	"cwnd + reno-inc",
	"cwnd + 0.68*reno-inc",
	"cwnd + 0.37*reno-inc",
	"cwnd*({htcp-diff > 0.5} ? 0.5 : 1) + 0.68*reno-inc",
	"cwnd + 8*rtt*reno-inc",
	"cwnd + reno-inc*({htcp-diff < 0.25} ? 1 : 0.2)",
	"cwnd + 1.3*reno-inc",
	"cwnd + 0.3*reno-inc + 5*reno-inc*htcp-diff",
	"cwnd + ({vegas-diff < 1} ? 0.7*reno-inc : 0)",
	"cwnd + ({vegas-diff < 1} ? 0.7*reno-inc : {vegas-diff > 5} ? -0.7*reno-inc : 0)",
	"cwnd + reno-inc*({vegas-diff < 0.7} ? 0.35 : 0.16)",
	"cwnd + reno-inc*({vegas-diff > 5} ? 0.3 : 1)",
	"cwnd + cube(time-since-loss)",
	"wmax + cube(8*time-since-loss - cbrt(24*wmax))",
	"{vegas-diff/min-rtt < 5} ? cwnd + mss : mss",
	"0.8*acked/min-rtt",
	"mss",
	"2*mss",
	"(cwnd + 150*mss)/delay-gradient",
	"cwnd + 2*acked/rtt",
}

func TestParseTable2Expressions(t *testing.T) {
	for _, src := range table2Exprs {
		n, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if n.Holes() != 0 {
			t.Errorf("Parse(%q) produced %d holes", src, n.Holes())
		}
		if _, err := n.Eval(env()); err != nil {
			t.Errorf("Eval(%q): %v", src, err)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, src := range table2Exprs {
		n := MustParse(src)
		back, err := Parse(n.String())
		if err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", src, n.String(), err)
			continue
		}
		if !n.Equal(back) {
			t.Errorf("round trip changed %q: %q vs %q", src, n, back)
		}
	}
}

func TestEvalRenoHandler(t *testing.T) {
	n := MustParse("cwnd + 0.7*reno-inc")
	e := env()
	got, err := n.Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Cwnd + 0.7*e.Acked*e.MSS/e.Cwnd
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Eval = %v, want %v", got, want)
	}
}

func TestEvalMacros(t *testing.T) {
	e := env()
	cases := map[string]float64{
		"reno-inc":        e.Acked * e.MSS / e.Cwnd,
		"vegas-diff":      (e.RTT - e.MinRTT) * e.AckRate / e.MSS,
		"htcp-diff":       (e.RTT - e.MinRTT) / e.MaxRTT,
		"rtts-since-loss": e.TimeSinceLoss / e.RTT,
	}
	for src, want := range cases {
		got, err := MustParse(src).Eval(e)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalConditional(t *testing.T) {
	n := MustParse("{vegas-diff < 1} ? 10 : 20")
	e := env() // vegas-diff = 0.01*1e6/1448 ~ 6.9 -> else branch
	got, _ := n.Eval(e)
	if got != 20 {
		t.Errorf("cond = %v, want 20", got)
	}
	e.RTT = e.MinRTT // vegas-diff = 0 -> then branch
	got, _ = n.Eval(e)
	if got != 10 {
		t.Errorf("cond = %v, want 10", got)
	}
}

func TestEvalModEq(t *testing.T) {
	n := MustParse("{cwnd % 2 = 0} ? 1 : 0")
	e := env()
	e.Cwnd = 8
	if got, _ := n.Eval(e); got != 1 {
		t.Errorf("8 %% 2 = 0 should hold, got %v", got)
	}
	e.Cwnd = 9
	if got, _ := n.Eval(e); got != 0 {
		t.Errorf("9 %% 2 = 0 should not hold, got %v", got)
	}
	// Tolerance: within 10% of a multiple counts.
	e.Cwnd = 8.1
	if got, _ := n.Eval(e); got != 1 {
		t.Errorf("8.1 %% 2 ~= 0 should hold (10%% tolerance), got %v", got)
	}
}

func TestEvalGuards(t *testing.T) {
	e := env()
	e.Cwnd = 0 // division by zero inside reno-inc
	if _, err := MustParse("cwnd + reno-inc").Eval(e); err == nil {
		t.Error("division by zero did not error")
	}
	// Unbound hole.
	if _, err := MustParse("c1*mss").Eval(env()); err == nil {
		t.Error("evaluating a sketch with holes did not error")
	}
	// Modulo by zero.
	bad := MustParse("{cwnd % 0 = 0} ? 1 : 2")
	if _, err := bad.Eval(env()); err == nil {
		t.Error("modulo by zero did not error")
	}
}

func TestEvalCubeCbrt(t *testing.T) {
	e := env()
	e.TimeSinceLoss = 2
	got, _ := MustParse("cube(time-since-loss)").Eval(e)
	if got != 8 {
		t.Errorf("cube(2) = %v", got)
	}
	got, _ = MustParse("cbrt(cube(time-since-loss))").Eval(e)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("cbrt(cube(2)) = %v", got)
	}
}

func TestHolesAndBind(t *testing.T) {
	sketch := MustParse("cwnd + c1*reno-inc")
	if sketch.Holes() != 1 {
		t.Fatalf("holes = %d, want 1", sketch.Holes())
	}
	h, err := sketch.Bind([]float64{0.7})
	if err != nil {
		t.Fatal(err)
	}
	if h.Holes() != 0 {
		t.Error("bound handler still has holes")
	}
	want := MustParse("cwnd + 0.7*reno-inc")
	if !h.Equal(want) {
		t.Errorf("bound = %q, want %q", h, want)
	}
	// Binding must not mutate the sketch.
	if sketch.Holes() != 1 {
		t.Error("Bind mutated the sketch")
	}
	if _, err := sketch.Bind([]float64{1, 2}); err == nil {
		t.Error("Bind accepted wrong arity")
	}
}

func TestDepthAndSize(t *testing.T) {
	n := MustParse("cwnd + 0.7*reno-inc")
	if n.Depth() != 3 {
		t.Errorf("depth = %d, want 3 (macro counts as a leaf)", n.Depth())
	}
	if n.Size() != 5 {
		t.Errorf("size = %d, want 5", n.Size())
	}
	if Cwnd().Depth() != 1 {
		t.Error("leaf depth != 1")
	}
}

func TestOpsSet(t *testing.T) {
	n := MustParse("cwnd + reno-inc*({vegas-diff < 0.7} ? 0.35 : 0.16)")
	s := n.Ops()
	for _, op := range []Op{OpAdd, OpMul, OpCond, OpLt} {
		if !s.Has(op) {
			t.Errorf("ops missing %v: %v", op, s)
		}
	}
	if s.Has(OpDiv) || s.Has(OpSub) {
		t.Errorf("ops has extras: %v", s)
	}
	// Gt folds into Lt.
	g := MustParse("{vegas-diff > 5} ? mss : cwnd")
	if !g.Ops().Has(OpLt) || g.Ops().Has(OpGt) {
		t.Errorf("Gt did not fold into Lt: %v", g.Ops())
	}
}

func TestOpSetSubset(t *testing.T) {
	var a, b OpSet
	a = a.With(OpAdd).With(OpMul)
	b = b.With(OpAdd).With(OpMul).With(OpCond)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf misbehaves")
	}
	if got := a.String(); got != "{+,*}" {
		t.Errorf("OpSet string = %q", got)
	}
}

func TestUnits(t *testing.T) {
	good := []string{
		"cwnd + 0.7*reno-inc",
		"min-rtt*ack-rate*({rtts-since-loss % 8 = 0} ? 2.6 : 2.05)",
		"cwnd + reno-inc*({vegas-diff < 0.7} ? 0.35 : 0.16)",
		"mss",
		"(cwnd + 150*mss)/delay-gradient",
		"0.8*acked/min-rtt*rtt", // bytes/sec*sec = bytes
		"0.8*acked/min-rtt",     // the constant absorbs the sec^-1 (poly units)
		"cwnd + ({vegas-diff < 1} ? 0.7*reno-inc : 0)", // 0 unifies with bytes
	}
	for _, src := range good {
		if err := CheckHandlerUnits(MustParse(src)); err != nil {
			t.Errorf("units rejected %q: %v", src, err)
		}
	}
	bad := []string{
		"cwnd + rtt",                   // bytes + seconds
		"rtt",                          // handler must be bytes
		"cwnd + vegas-diff",            // bytes + dimensionless
		"cwnd + cube(time-since-loss)", // bytes + sec^3 (the Cubic limitation)
		"cbrt(cwnd)",                   // bytes^(1/3) unrepresentable
		"acked/min-rtt",                // bytes/sec with no constant to absorb it
	}
	for _, src := range bad {
		if err := CheckHandlerUnits(MustParse(src)); err == nil {
			t.Errorf("units accepted %q", src)
		}
	}
}

func TestUnitOfDims(t *testing.T) {
	cases := map[string]Dim{
		"rtt":             {Secs: 1},
		"ack-rate":        {Bytes: 1, Secs: -1},
		"ack-rate*rtt":    {Bytes: 1},
		"vegas-diff":      {},
		"cube(rtt)":       {Secs: 3},
		"cwnd/mss":        {},
		"cbrt(cube(rtt))": {Secs: 1},
	}
	for src, want := range cases {
		u, err := UnitOf(MustParse(src))
		if err != nil {
			t.Errorf("UnitOf(%q): %v", src, err)
			continue
		}
		if u.Poly || u.D != want {
			t.Errorf("UnitOf(%q) = %v, want %v", src, u, want)
		}
	}
	// Constants are unit-polymorphic.
	for _, src := range []string{"0.7", "2*mss*ack-rate", "c1*rtt"} {
		u, err := UnitOf(MustParse(src))
		if err != nil || !u.Poly {
			t.Errorf("UnitOf(%q) = %v, %v; want poly", src, u, err)
		}
	}
}

func TestUnitsComparisonsAllowCalibrationConstants(t *testing.T) {
	// cwnd % 2.7 = 0 compares bytes against a dimensionless constant:
	// allowed (thresholds are calibration values).
	if err := CheckHandlerUnits(MustParse("{cwnd % 2.7 = 0} ? cwnd : mss")); err != nil {
		t.Errorf("calibration-constant comparison rejected: %v", err)
	}
	// Comparing bytes with seconds is rejected.
	if err := CheckHandlerUnits(MustParse("{cwnd < rtt} ? cwnd : mss")); err == nil {
		t.Error("bytes<seconds comparison accepted")
	}
}

func TestCanonicalAccepts(t *testing.T) {
	good := []string{
		"cwnd + c1*reno-inc",
		"cwnd + reno-inc*({vegas-diff < c1} ? c2 : c3)",
		"c1*mss",
		"cwnd",
	}
	for _, src := range good {
		if !IsCanonical(MustParse(src)) {
			t.Errorf("canonical form rejected: %q", src)
		}
	}
}

func TestCanonicalRejects(t *testing.T) {
	bad := map[string]*Node{
		"x - x":         Sub(Cwnd(), Cwnd()),
		"x / x":         Div(Cwnd(), Cwnd()),
		"x + x":         Add(Cwnd(), Cwnd()),
		"c + c":         Add(Hole(), Hole()),
		"x + c":         Add(Cwnd(), Hole()),
		"x - c":         Sub(Cwnd(), Hole()),
		"x / c":         Div(Cwnd(), Hole()),
		"x * c":         Mul(Cwnd(), Hole()), // const must lead
		"c * c":         Mul(Hole(), Hole()),
		"cube(cbrt(x))": Cube(Cbrt(Cwnd())),
		"cbrt(cube(x))": Cbrt(Cube(Cwnd())),
		"cube(c)":       Cube(Hole()),
		"same-branches": Cond(Lt(Cwnd(), Sig(SigMSS)), Cwnd(), Cwnd()),
		"x < x":         Cond(Lt(Cwnd(), Cwnd()), Cwnd(), Sig(SigMSS)),
		"gt":            Cond(Gt(Cwnd(), Sig(SigMSS)), Cwnd(), Sig(SigMSS)),
		"right-add":     Add(Cwnd(), Add(Sig(SigMSS), Sig(SigAcked))),
		"right-mul":     Mul(Cwnd(), Mul(Sig(SigMSS), Sig(SigAcked))),
		"c % x":         Cond(ModEq(Hole(), Cwnd()), Cwnd(), Sig(SigMSS)),
	}
	for name, n := range bad {
		if IsCanonical(n) {
			t.Errorf("non-canonical form accepted: %s (%q)", name, n)
		}
	}
}

func TestCanonicalCommutativeOrder(t *testing.T) {
	a, b := Cwnd(), Sig(SigMSS)
	// Exactly one of the two orders is canonical.
	n1, n2 := Add(a.Clone(), b.Clone()), Add(b.Clone(), a.Clone())
	if IsCanonical(n1) == IsCanonical(n2) {
		t.Errorf("both/neither of %q and %q canonical", n1, n2)
	}
	m1, m2 := Mul(a.Clone(), b.Clone()), Mul(b.Clone(), a.Clone())
	if IsCanonical(m1) == IsCanonical(m2) {
		t.Errorf("both/neither of %q and %q canonical", m1, m2)
	}
}

func TestSubDSLs(t *testing.T) {
	for _, name := range DSLNames() {
		d, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if d.Name != name {
			t.Errorf("Named(%q).Name = %q", name, d.Name)
		}
		if d.Elements() < 8 {
			t.Errorf("%s-DSL has only %d elements", name, d.Elements())
		}
		if len(d.Constants) == 0 {
			t.Errorf("%s-DSL has no constant pool", name)
		}
	}
	if _, err := Named("quic"); err == nil {
		t.Error("Named accepted unknown DSL")
	}
}

func TestDSLAdmits(t *testing.T) {
	reno := Reno()
	if err := reno.Admits(MustParse("cwnd + c1*reno-inc")); err != nil {
		t.Errorf("reno-DSL rejected its own sketch: %v", err)
	}
	// vegas-diff is not in the Reno DSL.
	if err := reno.Admits(MustParse("cwnd + vegas-diff*mss")); err == nil {
		t.Error("reno-DSL admitted a vegas macro")
	}
	// rtt signal is not in the Reno DSL.
	if err := reno.Admits(MustParse("cwnd + rtt*acked/min-rtt")); err == nil {
		t.Error("reno-DSL admitted delay signals")
	}
	// cube is only in the cubic DSL.
	if err := reno.Admits(MustParse("cwnd + cube(time-since-loss)")); err == nil {
		t.Error("reno-DSL admitted cube")
	}
	if err := Cubic().Admits(MustParse("wmax + cube(8*time-since-loss - cbrt(24*wmax))")); err != nil {
		t.Errorf("cubic-DSL rejected the fine-tuned Cubic handler: %v", err)
	}
	// Depth bound.
	deep := MustParse("cwnd + mss*(acked/(mss + acked/(cwnd + mss)))")
	if err := reno.Admits(deep); err == nil {
		t.Error("reno-DSL admitted depth > 3")
	}
	// Gt admitted where Lt is (mirrored predicate).
	if err := Vegas().Admits(MustParse("cwnd + reno-inc*({vegas-diff > 5} ? 0.3 : 1)")); err != nil {
		t.Errorf("vegas-DSL rejected Gt: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"cwnd +",
		"foo",
		"cwnd + (mss",
		"{cwnd < mss} ? 1",         // missing else
		"cwnd ? 1 : 2",             // non-predicate condition
		"{cwnd % mss = 3} ? 1 : 2", // modulo must compare to 0
		"1.2.3",
		"cwnd @ mss",
		"cwnd < mss", // predicate is not a handler
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestParseHyphenIdentifiers(t *testing.T) {
	// min-rtt is one identifier; subtraction needs spaces.
	n := MustParse("rtt - min-rtt")
	if n.Op != OpSub {
		t.Fatalf("parsed %q", n)
	}
	if n.Kids[1].Op != OpSignal || n.Kids[1].Sig != SigMinRTT {
		t.Errorf("rhs = %q", n.Kids[1])
	}
}

func TestParseUnaryMinus(t *testing.T) {
	n := MustParse("cwnd + -0.7*reno-inc")
	e := env()
	got, _ := n.Eval(e)
	want := e.Cwnd - 0.7*e.Acked*e.MSS/e.Cwnd
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("unary minus eval = %v, want %v", got, want)
	}
	m := MustParse("-cwnd + mss*2")
	if _, err := m.Eval(e); err != nil {
		t.Errorf("-cwnd eval: %v", err)
	}
}

func TestStringRendering(t *testing.T) {
	n := MustParse("cwnd + 0.7*reno-inc")
	if got := n.String(); got != "cwnd + 0.7*reno-inc" {
		t.Errorf("String = %q", got)
	}
	c := MustParse("{vegas-diff < 1} ? mss : cwnd")
	if !strings.Contains(c.String(), "?") || !strings.Contains(c.String(), "vegas-diff < 1") {
		t.Errorf("cond String = %q", c.String())
	}
	if s := Hole().String(); s != "c1" {
		t.Errorf("hole String = %q", s)
	}
}

// Property: Bind never changes structure, only fills holes, and the result
// always evaluates when the sketch's shape is division-safe.
func TestQuickBindPreservesShape(t *testing.T) {
	sketch := MustParse("cwnd + c1*reno-inc + c2*mss*({vegas-diff < c3} ? c4 : c5)")
	f := func(a, b, c, d, e float64) bool {
		vals := []float64{a, b, c, d, e}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 1
			}
		}
		h, err := sketch.Bind(vals)
		if err != nil {
			return false
		}
		return h.Depth() == sketch.Depth() && h.Size() == sketch.Size() && h.Holes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: String/Parse round-trips preserve structural equality for
// randomly generated canonical expressions.
func TestQuickRenderParseRoundTrip(t *testing.T) {
	exprs := []string{
		"cwnd + c1*reno-inc",
		"c1*min-rtt*ack-rate",
		"{vegas-diff < c1} ? cwnd + mss : cwnd - mss",
		"cwnd/(c1*rtt*ack-rate)*mss",
		"wmax + cube(c1*time-since-loss)",
	}
	for _, src := range exprs {
		n := MustParse(src)
		back, err := Parse(n.String())
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if !n.Equal(back) {
			t.Errorf("%q: round trip %q != %q", src, n, back)
		}
	}
}
