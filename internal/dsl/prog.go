package dsl

// Register-machine handler programs. Compile (compile.go) removes Eval's
// per-node switch but still pays one indirect call per AST node per ACK and
// rebuilds the whole closure tree for every constant completion of a
// sketch. CompileProgram instead flattens the tree into a linear
// instruction slice over a register file with a constant pool:
//
//   - common subexpressions are value-numbered away (macros expand into
//     ordinary arithmetic, so `reno-inc` and a hand-written
//     `acked*mss/cwnd` share instructions);
//   - unbound holes become addressable pool slots, so the hundreds of
//     completions of one sketch re-execute the same Program with patched
//     constants instead of recompiling;
//   - instructions are partitioned into a *prologue* that depends on
//     neither the evolving window nor any hole — evaluable once per
//     (sketch, segment) as whole columns — and a *suffix* re-executed per
//     ACK with the window feedback (see EvalSeries / RunPrologue).
//
// Semantics are bit-identical to Node.Eval and the Compile closure path:
// the same IEEE operations in the same per-element order, NaN poisoning
// through comparisons and conditionals, and the same final non-finite
// check (FuzzProgramVsEval pins all three against each other).

import (
	"math"
	"sync/atomic"

	"repro/internal/obs"
)

// cProgs counts compiled programs; see Observe.
var cProgs atomic.Pointer[obs.Counter]

// Observe routes the package's instruments to the registry:
//
//	counters  dsl.progs_compiled (register-VM programs built)
//
// Passing nil uninstalls them. Process-wide; call once at tool startup.
func Observe(r *obs.Registry) {
	cProgs.Store(r.Counter("dsl.progs_compiled"))
}

// progOp is a VM opcode.
type progOp uint8

const (
	pCwnd  progOp = iota // dst = current window
	pCol                 // dst = signal column a at the current row
	pConst               // dst = pool[a]
	pAdd                 // dst = r[a] + r[b]
	pSub                 // dst = r[a] - r[b]
	pMul                 // dst = r[a] * r[b]
	pDiv                 // dst = r[a] / r[b]
	pCube                // dst = r[a]^3
	pCbrt                // dst = cbrt(r[a])
	pLt                  // dst = r[a] < r[b] as 1/0, NaN-poisoned
	pGt                  // dst = r[a] > r[b] as 1/0, NaN-poisoned
	pModEq               // dst = r[a] % r[b] == 0 as 1/0, NaN-poisoned
	pSel                 // dst = r[a] poisoned ? NaN : r[a] != 0 ? r[b] : r[c]

	// Fused pairs (see fuseSuffix): dst = r[a] <op1> (r[b] <op2> r[c]),
	// computed as the same two individually rounded IEEE operations the
	// unfused pair performed — one dispatch instead of two in the per-ACK
	// suffix loop.
	pAddRMul // dst = r[a] + (r[b] * r[c])
	pAddRDiv // dst = r[a] + (r[b] / r[c])
	pSubRMul // dst = r[a] - (r[b] * r[c])
	pSubRDiv // dst = r[a] - (r[b] / r[c])
	pMulRMul // dst = r[a] * (r[b] * r[c])
	pMulRDiv // dst = r[a] * (r[b] / r[c])
	pDivRMul // dst = r[a] / (r[b] * r[c])
	pDivRDiv // dst = r[a] / (r[b] / r[c])
)

// inst is one three-address instruction. For pConst, a is a pool slot; for
// pCol, a is a Signal; otherwise a/b/c are registers.
type inst struct {
	op           progOp
	dst, a, b, c uint16
}

// numSignals sizes the Cols array; signals are dense from SigMSS.
const numSignals = int(SigWMax) + 1

// Cols is the structure-of-arrays layout of a segment's per-ACK signals:
// one column per Signal, each of length N. Replay code builds one Cols per
// segment (replacing a slice of 80-byte Env structs) so the VM touches
// only the columns a program actually reads.
type Cols struct {
	N   int
	Sig [numSignals][]float64
}

// Program is a compiled handler or sketch. Instructions are laid out as
// [consts | prologue | suffix]: constant loads first (executed once per
// series evaluation, after patching), then the cwnd/hole-independent
// prologue (evaluated columnar, once per segment, by RunPrologue), then
// the cwnd/hole-dependent suffix (re-executed per ACK by EvalSeries).
// Register r is written by instruction r exactly once; programs are
// immutable and safe for concurrent use.
type Program struct {
	insts  []inst
	nConst int // insts[:nConst] are pConst loads
	nPro   int // insts[nConst:nPro] are the columnar prologue
	pool   []float64
	holes  []uint16 // pool slots of unbound holes, in Bind (left-to-right) order
	liveIn []uint16 // prologue registers the suffix (or the result) reads
	out    uint16   // register holding the handler's value
}

// Prologue holds the cached per-segment output columns of a program's
// prologue registers (one column per liveIn entry). A Prologue is only
// valid for the Cols it was computed from; it is immutable after
// RunPrologue and safe for concurrent use.
type Prologue struct {
	cols [][]float64
}

// Holes returns the number of patchable constant slots (the sketch's
// unbound holes, in Bind order).
func (p *Program) Holes() int { return len(p.holes) }

// NumInsts returns the total instruction count.
func (p *Program) NumInsts() int { return len(p.insts) }

// PrologueLen returns the number of columnar prologue instructions — the
// per-row work RunPrologue performs once per (sketch, segment).
func (p *Program) PrologueLen() int { return p.nPro - p.nConst }

// SuffixLen returns the number of per-ACK suffix instructions — the only
// work EvalSeries repeats for every completion of the sketch.
func (p *Program) SuffixLen() int { return len(p.insts) - p.nPro }

// Exec is reusable per-call scratch for Eval/EvalSeries: the register file
// and the patched copy of the constant pool. An Exec must not be used
// concurrently but may be shared across programs (buffers grow on demand).
type Exec struct {
	regs []float64
	pool []float64
}

// NewExec returns empty scratch; buffers are sized on first use.
func NewExec() *Exec { return &Exec{} }

// patchedPool copies the template pool into ex and fills the hole slots
// with vals (left-to-right). A nil vals leaves holes NaN, so evaluating an
// unpatched sketch reports ok=false — mirroring Eval/Compile on a sketch.
func (p *Program) patchedPool(vals []float64, ex *Exec) []float64 {
	if cap(ex.pool) < len(p.pool) {
		ex.pool = make([]float64, len(p.pool))
	}
	pool := ex.pool[:len(p.pool)]
	copy(pool, p.pool)
	for i, slot := range p.holes {
		if i < len(vals) {
			pool[slot] = vals[i]
		}
	}
	return pool
}

// progCompiler builds the flat instruction list with value numbering.
type progCompiler struct {
	insts   []inst
	varying []bool // register depends on cwnd or on a hole
	pool    []float64
	holes   []uint16
	memo    map[inst]uint16   // (op, operands) -> register, dst zeroed
	consts  map[uint64]uint16 // Float64bits -> pool slot
}

// CompileProgram flattens a (bound or sketch) expression into a Program.
func CompileProgram(n *Node) *Program {
	c := &progCompiler{
		memo:   make(map[inst]uint16),
		consts: make(map[uint64]uint16),
	}
	out := c.num(n)
	cProgs.Load().Inc()
	return c.finalize(out)
}

// emit appends (or value-numbers away) one instruction whose register
// dependence is v.
func (c *progCompiler) emit(in inst, v bool) uint16 {
	if r, ok := c.memo[in]; ok {
		return r
	}
	r := uint16(len(c.insts))
	c.memo[in] = r
	in.dst = r
	c.insts = append(c.insts, in)
	c.varying = append(c.varying, v)
	return r
}

// constReg returns the register of a bound constant, sharing pool slots
// between equal values (keyed by bits, so -0 and NaN stay distinct).
func (c *progCompiler) constReg(v float64) uint16 {
	bits := math.Float64bits(v)
	slot, ok := c.consts[bits]
	if !ok {
		slot = uint16(len(c.pool))
		c.pool = append(c.pool, v)
		c.consts[bits] = slot
	}
	return c.emit(inst{op: pConst, a: slot}, false)
}

// holeReg allocates a fresh patchable pool slot (holes never share).
func (c *progCompiler) holeReg() uint16 {
	slot := uint16(len(c.pool))
	c.pool = append(c.pool, math.NaN())
	c.holes = append(c.holes, slot)
	// Bypass the memo: every hole is distinct even though the instruction
	// bytes repeat.
	r := uint16(len(c.insts))
	c.insts = append(c.insts, inst{op: pConst, dst: r, a: slot})
	c.varying = append(c.varying, true)
	return r
}

func (c *progCompiler) col(s Signal) uint16 {
	return c.emit(inst{op: pCol, a: uint16(s)}, false)
}

func (c *progCompiler) bin(op progOp, a, b uint16) uint16 {
	return c.emit(inst{op: op, a: a, b: b}, c.varying[a] || c.varying[b])
}

func (c *progCompiler) un(op progOp, a uint16) uint16 {
	return c.emit(inst{op: op, a: a}, c.varying[a])
}

// num compiles a numeric expression, mirroring compileNum: anything the
// closure path maps to a constant NaN (invalid ops, bool ops in numeric
// position, unknown signals/macros) becomes a NaN constant here.
func (c *progCompiler) num(n *Node) uint16 {
	switch n.Op {
	case OpCwnd:
		return c.emit(inst{op: pCwnd}, true)
	case OpSignal:
		if int(n.Sig) < 0 || int(n.Sig) >= numSignals {
			return c.constReg(math.NaN())
		}
		return c.col(n.Sig)
	case OpMacro:
		// Macros expand to the exact arithmetic of Env.macro (same
		// operations, same association), so they CSE against spelled-out
		// equivalents and their cwnd-free parts hoist into the prologue.
		switch n.Mac {
		case MacroRenoInc:
			return c.bin(pDiv, c.bin(pMul, c.col(SigAcked), c.col(SigMSS)), c.emit(inst{op: pCwnd}, true))
		case MacroVegasDiff:
			diff := c.bin(pSub, c.col(SigRTT), c.col(SigMinRTT))
			return c.bin(pDiv, c.bin(pMul, diff, c.col(SigAckRate)), c.col(SigMSS))
		case MacroHTCPDiff:
			diff := c.bin(pSub, c.col(SigRTT), c.col(SigMinRTT))
			return c.bin(pDiv, diff, c.col(SigMaxRTT))
		case MacroRTTsSinceLoss:
			return c.bin(pDiv, c.col(SigTimeSinceLoss), c.col(SigRTT))
		}
		return c.constReg(math.NaN())
	case OpConst:
		if !n.Bound {
			return c.holeReg()
		}
		return c.constReg(n.Value)
	case OpAdd:
		return c.bin(pAdd, c.num(n.Kids[0]), c.num(n.Kids[1]))
	case OpSub:
		return c.bin(pSub, c.num(n.Kids[0]), c.num(n.Kids[1]))
	case OpMul:
		return c.bin(pMul, c.num(n.Kids[0]), c.num(n.Kids[1]))
	case OpDiv:
		return c.bin(pDiv, c.num(n.Kids[0]), c.num(n.Kids[1]))
	case OpCond:
		cond := n.Kids[0]
		var cr uint16
		if cond.Op.IsBool() {
			var op progOp
			switch cond.Op {
			case OpLt:
				op = pLt
			case OpGt:
				op = pGt
			default:
				op = pModEq
			}
			cr = c.bin(op, c.num(cond.Kids[0]), c.num(cond.Kids[1]))
		} else {
			// A non-boolean predicate always fails evaluation in the
			// closure path (compileBool's default); poison the select.
			cr = c.constReg(math.NaN())
		}
		t, f := c.num(n.Kids[1]), c.num(n.Kids[2])
		in := inst{op: pSel, a: cr, b: t, c: f}
		return c.emit(in, c.varying[cr] || c.varying[t] || c.varying[f])
	case OpCube:
		return c.un(pCube, c.num(n.Kids[0]))
	case OpCbrt:
		return c.un(pCbrt, c.num(n.Kids[0]))
	default:
		// OpInvalid and bool operators in numeric position: compileNum
		// yields NaN.
		return c.constReg(math.NaN())
	}
}

// regOperands reports which of a/b/c are register references for op.
func regOperands(op progOp) int {
	switch op {
	case pCwnd, pCol, pConst:
		return 0
	case pCube, pCbrt:
		return 1
	case pSel, pAddRMul, pAddRDiv, pSubRMul, pSubRDiv, pMulRMul, pMulRDiv, pDivRMul, pDivRDiv:
		return 3
	default:
		return 2
	}
}

// fuseOp maps an (outer, inner) arithmetic pair to its fused opcode.
func fuseOp(outer, inner progOp) (progOp, bool) {
	switch outer {
	case pAdd:
		switch inner {
		case pMul:
			return pAddRMul, true
		case pDiv:
			return pAddRDiv, true
		}
	case pSub:
		switch inner {
		case pMul:
			return pSubRMul, true
		case pDiv:
			return pSubRDiv, true
		}
	case pMul:
		switch inner {
		case pMul:
			return pMulRMul, true
		case pDiv:
			return pMulRDiv, true
		}
	case pDiv:
		switch inner {
		case pMul:
			return pDivRMul, true
		case pDiv:
			return pDivRDiv, true
		}
	}
	return 0, false
}

// finalize reorders the instruction list into [consts | prologue | suffix]
// and computes the live-in set. The emitted list is topologically ordered;
// constants have no operands and prologue instructions only consume
// constants or other prologue registers (a hole's consumers are varying by
// construction), so the stable three-way partition preserves validity.
func (c *progCompiler) finalize(out uint16) *Program {
	n := len(c.insts)
	remap := make([]uint16, n)
	order := make([]uint16, 0, n)
	for i, in := range c.insts {
		if in.op == pConst {
			remap[i] = uint16(len(order))
			order = append(order, uint16(i))
		}
	}
	nConst := len(order)
	for i := range c.insts {
		if c.insts[i].op != pConst && !c.varying[i] {
			remap[i] = uint16(len(order))
			order = append(order, uint16(i))
		}
	}
	nPro := len(order)
	// The (unique, CSE'd) pCwnd leads the suffix so EvalSeries can hoist
	// the window store out of the dispatch loop; it has no operands, so
	// moving it ahead of its partition peers preserves topological order.
	for i := range c.insts {
		if c.insts[i].op == pCwnd {
			remap[i] = uint16(len(order))
			order = append(order, uint16(i))
		}
	}
	for i := range c.insts {
		if c.insts[i].op != pConst && c.insts[i].op != pCwnd && c.varying[i] {
			remap[i] = uint16(len(order))
			order = append(order, uint16(i))
		}
	}
	insts := make([]inst, n)
	for newIdx, oldIdx := range order {
		in := c.insts[oldIdx]
		in.dst = uint16(newIdx)
		switch regOperands(in.op) {
		case 3:
			in.c = remap[in.c]
			fallthrough
		case 2:
			in.b = remap[in.b]
			fallthrough
		case 1:
			in.a = remap[in.a]
		}
		insts[newIdx] = in
	}
	insts, outReg := fuseSuffix(insts, nPro, remap[out])
	p := &Program{
		insts:  insts,
		nConst: nConst,
		nPro:   nPro,
		pool:   c.pool,
		holes:  c.holes,
		out:    outReg,
	}
	// Live-in: prologue registers read by the suffix, plus the result when
	// the whole computation lives in the prologue.
	seen := make(map[uint16]bool)
	addLive := func(r uint16) {
		if int(r) >= nConst && int(r) < nPro && !seen[r] {
			seen[r] = true
			p.liveIn = append(p.liveIn, r)
		}
	}
	for _, in := range insts[nPro:] {
		switch regOperands(in.op) {
		case 3:
			addLive(in.c)
			fallthrough
		case 2:
			addLive(in.b)
			fallthrough
		case 1:
			addLive(in.a)
		}
	}
	addLive(p.out)
	return p
}

// fuseSuffix peepholes the per-ACK suffix: a pMul/pDiv whose result is
// consumed exactly once, as the right operand of another suffix arithmetic
// instruction, collapses into that consumer as a fused opcode. The fused
// instruction performs the identical two IEEE operations (each individually
// rounded — see the float64 conversions in the interpreters, which forbid
// FMA contraction), so results stay bit-identical while the dominant
// `cwnd + c*inc` handler shapes halve their dispatch count. Registers are
// renumbered to restore the reg==index invariant; insts before nPro are
// never touched, so nConst/nPro remain valid.
func fuseSuffix(insts []inst, nPro int, out uint16) ([]inst, uint16) {
	n := len(insts)
	use := make([]int, n)
	for _, in := range insts {
		switch regOperands(in.op) {
		case 3:
			use[in.c]++
			fallthrough
		case 2:
			use[in.b]++
			fallthrough
		case 1:
			use[in.a]++
		}
	}
	use[out]++
	dead := make([]bool, n)
	fusedAny := false
	for y := nPro; y < n; y++ {
		in := insts[y]
		if regOperands(in.op) != 2 {
			continue
		}
		xb := int(in.b)
		if xb < nPro || use[xb] != 1 || uint16(xb) == out {
			continue
		}
		fop, ok := fuseOp(in.op, insts[xb].op)
		if !ok {
			continue
		}
		x := insts[xb]
		insts[y] = inst{op: fop, dst: in.dst, a: in.a, b: x.a, c: x.b}
		dead[xb] = true
		fusedAny = true
	}
	if !fusedAny {
		return insts, out
	}
	remap := make([]uint16, n)
	packed := insts[:0]
	for i, in := range insts {
		if dead[i] {
			continue
		}
		r := uint16(len(packed))
		remap[i] = r
		in.dst = r
		packed = append(packed, in)
	}
	for i := range packed {
		in := &packed[i]
		switch regOperands(in.op) {
		case 3:
			in.c = remap[in.c]
			fallthrough
		case 2:
			in.b = remap[in.b]
			fallthrough
		case 1:
			in.a = remap[in.a]
		}
	}
	return packed, remap[out]
}

// RunPrologue evaluates the prologue columnar over a segment's columns and
// returns the live-in output columns — the part of the program every
// completion of the sketch shares. Columns that are plain signal loads
// alias cols (no copy); constants referenced by the prologue broadcast
// from the template pool (holes can never reach the prologue).
func (p *Program) RunPrologue(cols *Cols) *Prologue {
	n := cols.N
	bufs := make([][]float64, p.nPro)
	// getCol materializes a constant register's broadcast column on first
	// use; prologue registers are filled in instruction order below.
	getCol := func(r uint16) []float64 {
		if bufs[r] == nil {
			col := make([]float64, n)
			v := p.pool[p.insts[r].a]
			for i := range col {
				col[i] = v
			}
			bufs[r] = col
		}
		return bufs[r]
	}
	for idx := p.nConst; idx < p.nPro; idx++ {
		in := p.insts[idx]
		if in.op == pCol {
			bufs[idx] = cols.Sig[in.a]
			continue
		}
		dst := make([]float64, n)
		switch in.op {
		case pAdd:
			a, b := getCol(in.a), getCol(in.b)
			for i := range dst {
				dst[i] = a[i] + b[i]
			}
		case pSub:
			a, b := getCol(in.a), getCol(in.b)
			for i := range dst {
				dst[i] = a[i] - b[i]
			}
		case pMul:
			a, b := getCol(in.a), getCol(in.b)
			for i := range dst {
				dst[i] = a[i] * b[i]
			}
		case pDiv:
			a, b := getCol(in.a), getCol(in.b)
			for i := range dst {
				dst[i] = a[i] / b[i]
			}
		case pCube:
			a := getCol(in.a)
			for i := range dst {
				v := a[i]
				dst[i] = v * v * v
			}
		case pCbrt:
			a := getCol(in.a)
			for i := range dst {
				dst[i] = math.Cbrt(a[i])
			}
		case pLt:
			a, b := getCol(in.a), getCol(in.b)
			for i := range dst {
				dst[i] = ltStep(a[i], b[i])
			}
		case pGt:
			a, b := getCol(in.a), getCol(in.b)
			for i := range dst {
				dst[i] = gtStep(a[i], b[i])
			}
		case pModEq:
			a, b := getCol(in.a), getCol(in.b)
			for i := range dst {
				dst[i] = modEqStep(a[i], b[i])
			}
		case pSel:
			cond, t, f := getCol(in.a), getCol(in.b), getCol(in.c)
			for i := range dst {
				dst[i] = selStep(cond[i], t[i], f[i])
			}
		}
		bufs[idx] = dst
	}
	pro := &Prologue{cols: make([][]float64, len(p.liveIn))}
	for k, r := range p.liveIn {
		pro.cols[k] = getCol(r)
	}
	return pro
}

// Boolean steps encode the NaN-poisoned predicates as 1/0/NaN, matching
// compileBool: a poisoned predicate (NaN operand, zero modulus) makes the
// enclosing conditional evaluate to NaN.

func ltStep(x, y float64) float64 {
	if x != x || y != y {
		return nan
	}
	if x < y {
		return 1
	}
	return 0
}

func gtStep(x, y float64) float64 {
	if x != x || y != y {
		return nan
	}
	if x > y {
		return 1
	}
	return 0
}

func modEqStep(x, y float64) float64 {
	if x != x || y != y || y == 0 {
		return nan
	}
	r := math.Abs(math.Mod(x, y))
	ay := math.Abs(y)
	if r <= modEqTolerance*ay || r >= (1-modEqTolerance)*ay {
		return 1
	}
	return 0
}

func selStep(c, t, f float64) float64 {
	if c != c {
		return nan
	}
	if c != 0 {
		return t
	}
	return f
}

// EvalSeries replays the program over every row of a segment with window
// feedback, writing the synthesized window (divided by mss, the series
// unit) into out[:cols.N]. vals patches the sketch's holes (nil for a
// fully bound program); pro must come from RunPrologue on the same cols
// (computed on the fly when nil); cwnd0 seeds the window and lo/hi are the
// replay clamp bounds. It returns the number of rows completed and
// ok=false when the handler produced a non-finite window — the same
// divergence rule, clamp arithmetic, and evaluation order as the closure
// replay path, inlined into one dispatch loop.
func (p *Program) EvalSeries(cols *Cols, pro *Prologue, vals []float64, cwnd0, lo, hi, mss float64, out []float64, ex *Exec) (int, bool) {
	if ex == nil {
		ex = NewExec()
	}
	if pro == nil {
		pro = p.RunPrologue(cols)
	}
	// One spare slot past the register file gives the per-row window store
	// an unconditional target even when the program never reads cwnd.
	if cap(ex.regs) < len(p.insts)+1 {
		ex.regs = make([]float64, len(p.insts)+1)
	}
	regs := ex.regs[:len(p.insts)+1]
	pool := p.patchedPool(vals, ex)
	for _, in := range p.insts[:p.nConst] {
		regs[in.dst] = pool[in.a]
	}
	n := cols.N
	body := p.insts[p.nPro:]
	cwndReg := len(p.insts) // the spare slot
	if len(body) > 0 && body[0].op == pCwnd {
		// finalize orders the (unique) pCwnd first in the suffix; write its
		// register directly each row instead of dispatching on it.
		cwndReg = int(body[0].dst)
		body = body[1:]
	}
	live := p.liveIn
	proCols := pro.cols
	cwnd := cwnd0
	for i := 0; i < n; i++ {
		regs[cwndReg] = cwnd
		for k, r := range live {
			regs[r] = proCols[k][i]
		}
		for _, in := range body {
			switch in.op {
			case pAdd:
				regs[in.dst] = regs[in.a] + regs[in.b]
			case pSub:
				regs[in.dst] = regs[in.a] - regs[in.b]
			case pMul:
				regs[in.dst] = regs[in.a] * regs[in.b]
			case pDiv:
				regs[in.dst] = regs[in.a] / regs[in.b]
			case pAddRMul:
				// float64() rounds the inner product explicitly, keeping the
				// compiler from contracting a + b*c into an FMA.
				regs[in.dst] = regs[in.a] + float64(regs[in.b]*regs[in.c])
			case pAddRDiv:
				regs[in.dst] = regs[in.a] + regs[in.b]/regs[in.c]
			case pSubRMul:
				regs[in.dst] = regs[in.a] - float64(regs[in.b]*regs[in.c])
			case pSubRDiv:
				regs[in.dst] = regs[in.a] - regs[in.b]/regs[in.c]
			case pMulRMul:
				regs[in.dst] = regs[in.a] * (regs[in.b] * regs[in.c])
			case pMulRDiv:
				regs[in.dst] = regs[in.a] * (regs[in.b] / regs[in.c])
			case pDivRMul:
				regs[in.dst] = regs[in.a] / (regs[in.b] * regs[in.c])
			case pDivRDiv:
				regs[in.dst] = regs[in.a] / (regs[in.b] / regs[in.c])
			case pCube:
				v := regs[in.a]
				regs[in.dst] = v * v * v
			case pCbrt:
				regs[in.dst] = math.Cbrt(regs[in.a])
			case pLt:
				regs[in.dst] = ltStep(regs[in.a], regs[in.b])
			case pGt:
				regs[in.dst] = gtStep(regs[in.a], regs[in.b])
			case pModEq:
				regs[in.dst] = modEqStep(regs[in.a], regs[in.b])
			case pSel:
				regs[in.dst] = selStep(regs[in.a], regs[in.b], regs[in.c])
			case pCwnd:
				regs[in.dst] = cwnd
			case pCol:
				regs[in.dst] = cols.Sig[in.a][i]
			case pConst:
				regs[in.dst] = pool[in.a]
			}
		}
		v := regs[p.out]
		// v-v is zero exactly when v is finite (NaN and ±Inf both yield NaN),
		// folding the IsNaN/IsInf pair into one test.
		if v-v != 0 {
			return i, false
		}
		// Same clamp as replay — Min(Max(v, lo), hi) — in branch form, which
		// is bit-identical for finite v and positive finite lo <= hi (replay's
		// bounds) without the math.Min/Max call overhead.
		if v < lo {
			v = lo
		} else if v > hi {
			v = hi
		}
		cwnd = v
		out[i] = cwnd / mss
	}
	return n, true
}

// Eval evaluates the program at a single environment, with vals patching
// the holes — the scalar entry point the differential tests pin against
// Node.Eval and the Compile closure. It allocates; series scoring goes
// through EvalSeries.
func (p *Program) Eval(env *Env, vals []float64) (float64, bool) {
	ex := NewExec()
	regs := make([]float64, len(p.insts))
	pool := p.patchedPool(vals, ex)
	for _, in := range p.insts {
		switch in.op {
		case pCwnd:
			regs[in.dst] = env.Cwnd
		case pCol:
			regs[in.dst] = env.signal(Signal(in.a))
		case pConst:
			regs[in.dst] = pool[in.a]
		case pAdd:
			regs[in.dst] = regs[in.a] + regs[in.b]
		case pSub:
			regs[in.dst] = regs[in.a] - regs[in.b]
		case pMul:
			regs[in.dst] = regs[in.a] * regs[in.b]
		case pDiv:
			regs[in.dst] = regs[in.a] / regs[in.b]
		case pAddRMul:
			regs[in.dst] = regs[in.a] + float64(regs[in.b]*regs[in.c])
		case pAddRDiv:
			regs[in.dst] = regs[in.a] + regs[in.b]/regs[in.c]
		case pSubRMul:
			regs[in.dst] = regs[in.a] - float64(regs[in.b]*regs[in.c])
		case pSubRDiv:
			regs[in.dst] = regs[in.a] - regs[in.b]/regs[in.c]
		case pMulRMul:
			regs[in.dst] = regs[in.a] * (regs[in.b] * regs[in.c])
		case pMulRDiv:
			regs[in.dst] = regs[in.a] * (regs[in.b] / regs[in.c])
		case pDivRMul:
			regs[in.dst] = regs[in.a] / (regs[in.b] * regs[in.c])
		case pDivRDiv:
			regs[in.dst] = regs[in.a] / (regs[in.b] / regs[in.c])
		case pCube:
			v := regs[in.a]
			regs[in.dst] = v * v * v
		case pCbrt:
			regs[in.dst] = math.Cbrt(regs[in.a])
		case pLt:
			regs[in.dst] = ltStep(regs[in.a], regs[in.b])
		case pGt:
			regs[in.dst] = gtStep(regs[in.a], regs[in.b])
		case pModEq:
			regs[in.dst] = modEqStep(regs[in.a], regs[in.b])
		case pSel:
			regs[in.dst] = selStep(regs[in.a], regs[in.b], regs[in.c])
		}
	}
	v := regs[p.out]
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}
