package dsl

import "math"

// Lane-batched VM execution. EvalSeries replays one constant-pool
// completion per call; when the search scores K completions of the same
// sketch, the per-ACK dispatch loop (opcode switch, prologue broadcast,
// divergence check) repeats K times over identical instructions.
// EvalSeriesBatch amortizes it: the register file becomes lane-major
// ([reg][lane] structure-of-arrays, regs[r*K+l]), each instruction
// dispatches once per row and executes as a plain K-wide Go loop the
// compiler can vectorize, and the shared prologue columns broadcast once
// into all lanes. Divergence and clamping are per-lane: a lane that
// produces a non-finite window is masked out (its row/ok result records
// where, exactly like EvalSeries' early return) while the surviving lanes
// keep running. Per lane the arithmetic is the same IEEE operations in
// the same order as EvalSeries, so results are bit-identical lane by lane
// (FuzzEvalSeriesBatchVsScalar pins this).

// BatchExec is reusable scratch for EvalSeriesBatch: the lane-major
// register file, the K patched constant pools, and the per-lane liveness
// mask. A BatchExec must not be used concurrently but may be shared
// across programs and lane widths (buffers grow on demand).
type BatchExec struct {
	regs  []float64 // (len(insts)+1) * K, lane-major: register r, lane l at [r*K+l]
	pool  []float64 // len(pool) * K, lane-major
	alive []bool
}

// NewBatchExec returns empty scratch; buffers are sized on first use.
func NewBatchExec() *BatchExec { return &BatchExec{} }

// patchedPoolBatch builds the lane-major patched pool: slot s of lane l at
// pool[s*K+l]. Template values broadcast across lanes; each lane's vals
// fill its hole slots (a short or nil vals leaves NaN, as in patchedPool).
func (p *Program) patchedPoolBatch(valsK [][]float64, ex *BatchExec) []float64 {
	k := len(valsK)
	need := len(p.pool) * k
	if cap(ex.pool) < need {
		ex.pool = make([]float64, need)
	}
	pool := ex.pool[:need]
	for s, v := range p.pool {
		row := pool[s*k : s*k+k]
		for l := range row {
			row[l] = v
		}
	}
	for i, slot := range p.holes {
		row := pool[int(slot)*k : int(slot)*k+k]
		for l, vals := range valsK {
			if i < len(vals) {
				row[l] = vals[i]
			}
		}
	}
	return pool
}

// EvalSeriesBatch replays the program over every row of a segment for
// K = len(valsK) lanes at once, each lane being one constant-pool
// completion with its own window feedback. Lane l's synthesized window
// (divided by mss) lands in outs[l][:rows[l]]; rows[l] and oks[l] report
// exactly what EvalSeries(cols, pro, valsK[l], ...) would have returned —
// rows completed and whether the lane stayed finite. outs, rows, and oks
// must each have at least K entries; pro must come from RunPrologue on
// the same cols (computed on the fly when nil). A lane that diverges at
// row i leaves outs[l][i:] untouched and stops paying for further rows;
// the batch returns as soon as every lane is dead.
func (p *Program) EvalSeriesBatch(cols *Cols, pro *Prologue, valsK [][]float64, cwnd0, lo, hi, mss float64, outs [][]float64, rows []int, oks []bool, ex *BatchExec) {
	k := len(valsK)
	if k == 0 {
		return
	}
	if ex == nil {
		ex = NewBatchExec()
	}
	if pro == nil {
		pro = p.RunPrologue(cols)
	}
	// As in EvalSeries, one spare register row past the file gives the
	// per-row window store an unconditional target even when the program
	// never reads cwnd.
	need := (len(p.insts) + 1) * k
	if cap(ex.regs) < need {
		ex.regs = make([]float64, need)
	}
	regs := ex.regs[:need]
	pool := p.patchedPoolBatch(valsK, ex)
	for _, in := range p.insts[:p.nConst] {
		copy(regs[int(in.dst)*k:int(in.dst)*k+k], pool[int(in.a)*k:int(in.a)*k+k])
	}
	if cap(ex.alive) < k {
		ex.alive = make([]bool, k)
	}
	alive := ex.alive[:k]
	for l := range alive {
		alive[l] = true
	}
	nAlive := k
	n := cols.N
	body := p.insts[p.nPro:]
	cwndReg := len(p.insts) // the spare row
	if len(body) > 0 && body[0].op == pCwnd {
		cwndReg = int(body[0].dst)
		body = body[1:]
	}
	cw := regs[cwndReg*k : cwndReg*k+k]
	for l := range cw {
		cw[l] = cwnd0
	}
	live := p.liveIn
	proCols := pro.cols
	for i := 0; i < n; i++ {
		for c, r := range live {
			v := proCols[c][i]
			row := regs[int(r)*k : int(r)*k+k]
			for l := range row {
				row[l] = v
			}
		}
		for _, in := range body {
			dst := regs[int(in.dst)*k : int(in.dst)*k+k]
			switch in.op {
			case pAdd:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] + b[l]
				}
			case pSub:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] - b[l]
				}
			case pMul:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] * b[l]
				}
			case pDiv:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] / b[l]
				}
			case pAddRMul:
				// float64() rounds the inner product explicitly, keeping the
				// compiler from contracting a + b*c into an FMA (same rule as
				// the scalar interpreters).
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				c := regs[int(in.c)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] + float64(b[l]*c[l])
				}
			case pAddRDiv:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				c := regs[int(in.c)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] + b[l]/c[l]
				}
			case pSubRMul:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				c := regs[int(in.c)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] - float64(b[l]*c[l])
				}
			case pSubRDiv:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				c := regs[int(in.c)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] - b[l]/c[l]
				}
			case pMulRMul:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				c := regs[int(in.c)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] * (b[l] * c[l])
				}
			case pMulRDiv:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				c := regs[int(in.c)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] * (b[l] / c[l])
				}
			case pDivRMul:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				c := regs[int(in.c)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] / (b[l] * c[l])
				}
			case pDivRDiv:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				c := regs[int(in.c)*k:][:len(dst)]
				for l := range dst {
					dst[l] = a[l] / (b[l] / c[l])
				}
			case pCube:
				a := regs[int(in.a)*k:][:len(dst)]
				for l := range dst {
					v := a[l]
					dst[l] = v * v * v
				}
			case pCbrt:
				a := regs[int(in.a)*k:][:len(dst)]
				for l := range dst {
					dst[l] = math.Cbrt(a[l])
				}
			case pLt:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				for l := range dst {
					dst[l] = ltStep(a[l], b[l])
				}
			case pGt:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				for l := range dst {
					dst[l] = gtStep(a[l], b[l])
				}
			case pModEq:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				for l := range dst {
					dst[l] = modEqStep(a[l], b[l])
				}
			case pSel:
				a := regs[int(in.a)*k:][:len(dst)]
				b := regs[int(in.b)*k:][:len(dst)]
				c := regs[int(in.c)*k:][:len(dst)]
				for l := range dst {
					dst[l] = selStep(a[l], b[l], c[l])
				}
			case pCwnd:
				copy(dst, cw)
			case pCol:
				v := cols.Sig[in.a][i]
				for l := range dst {
					dst[l] = v
				}
			case pConst:
				copy(dst, pool[int(in.a)*k:int(in.a)*k+k])
			}
		}
		outRow := regs[int(p.out)*k : int(p.out)*k+k]
		for l := 0; l < k; l++ {
			if !alive[l] {
				continue
			}
			v := outRow[l]
			// v-v is zero exactly when v is finite, as in EvalSeries. Dead
			// lanes keep computing harmlessly (IEEE arithmetic never traps);
			// only the finalize step is masked.
			if v-v != 0 {
				alive[l] = false
				rows[l] = i
				oks[l] = false
				nAlive--
				continue
			}
			if v < lo {
				v = lo
			} else if v > hi {
				v = hi
			}
			cw[l] = v
			outs[l][i] = v / mss
		}
		if nAlive == 0 {
			return
		}
	}
	for l := 0; l < k; l++ {
		if alive[l] {
			rows[l] = n
			oks[l] = true
		}
	}
}
