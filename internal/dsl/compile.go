package dsl

import "math"

// EvalFunc is a compiled handler: it computes the new window for an
// environment, reporting ok=false where Eval would return ErrEval
// (non-finite result anywhere in the tree).
type EvalFunc func(*Env) (float64, bool)

// Compile translates a fully-bound expression into a closure tree,
// removing the per-node switch dispatch of Eval. Scoring a candidate
// handler evaluates it once per ACK sample across many segments — the
// pipeline's hottest loop — and compiled handlers evaluate several times
// faster. Compiling a sketch (unbound holes) yields an evaluator that
// always reports ok=false, mirroring Eval.
func Compile(n *Node) EvalFunc {
	f := compileNum(n)
	return func(e *Env) (float64, bool) {
		v := f(e)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, false
		}
		return v, true
	}
}

// numFunc computes a (possibly non-finite) value.
type numFunc func(*Env) float64

// boolFunc computes a predicate; NaN operands surface as NaN poisoning via
// the second return.
type boolFunc func(*Env) (bool, bool)

var nan = math.NaN()

func compileNum(n *Node) numFunc {
	switch n.Op {
	case OpCwnd:
		return func(e *Env) float64 { return e.Cwnd }
	case OpSignal:
		switch n.Sig {
		case SigMSS:
			return func(e *Env) float64 { return e.MSS }
		case SigAcked:
			return func(e *Env) float64 { return e.Acked }
		case SigTimeSinceLoss:
			return func(e *Env) float64 { return e.TimeSinceLoss }
		case SigRTT:
			return func(e *Env) float64 { return e.RTT }
		case SigMinRTT:
			return func(e *Env) float64 { return e.MinRTT }
		case SigMaxRTT:
			return func(e *Env) float64 { return e.MaxRTT }
		case SigAckRate:
			return func(e *Env) float64 { return e.AckRate }
		case SigRTTGradient:
			return func(e *Env) float64 { return e.RTTGradient }
		case SigWMax:
			return func(e *Env) float64 { return e.WMax }
		}
		return func(*Env) float64 { return nan }
	case OpMacro:
		switch n.Mac {
		case MacroRenoInc:
			return func(e *Env) float64 { return e.Acked * e.MSS / e.Cwnd }
		case MacroVegasDiff:
			return func(e *Env) float64 { return (e.RTT - e.MinRTT) * e.AckRate / e.MSS }
		case MacroHTCPDiff:
			return func(e *Env) float64 { return (e.RTT - e.MinRTT) / e.MaxRTT }
		case MacroRTTsSinceLoss:
			return func(e *Env) float64 { return e.TimeSinceLoss / e.RTT }
		}
		return func(*Env) float64 { return nan }
	case OpConst:
		if !n.Bound {
			return func(*Env) float64 { return nan }
		}
		v := n.Value
		return func(*Env) float64 { return v }
	case OpAdd:
		a, b := compileNum(n.Kids[0]), compileNum(n.Kids[1])
		return func(e *Env) float64 { return a(e) + b(e) }
	case OpSub:
		a, b := compileNum(n.Kids[0]), compileNum(n.Kids[1])
		return func(e *Env) float64 { return a(e) - b(e) }
	case OpMul:
		a, b := compileNum(n.Kids[0]), compileNum(n.Kids[1])
		return func(e *Env) float64 { return a(e) * b(e) }
	case OpDiv:
		a, b := compileNum(n.Kids[0]), compileNum(n.Kids[1])
		return func(e *Env) float64 { return a(e) / b(e) }
	case OpCond:
		c := compileBool(n.Kids[0])
		t, f := compileNum(n.Kids[1]), compileNum(n.Kids[2])
		return func(e *Env) float64 {
			v, ok := c(e)
			if !ok {
				return nan
			}
			if v {
				return t(e)
			}
			return f(e)
		}
	case OpCube:
		k := compileNum(n.Kids[0])
		return func(e *Env) float64 {
			v := k(e)
			return v * v * v
		}
	case OpCbrt:
		k := compileNum(n.Kids[0])
		return func(e *Env) float64 { return math.Cbrt(k(e)) }
	default:
		return func(*Env) float64 { return nan }
	}
}

func compileBool(n *Node) boolFunc {
	a, b := compileNum(n.Kids[0]), compileNum(n.Kids[1])
	switch n.Op {
	case OpLt:
		return func(e *Env) (bool, bool) {
			x, y := a(e), b(e)
			if math.IsNaN(x) || math.IsNaN(y) {
				return false, false
			}
			return x < y, true
		}
	case OpGt:
		return func(e *Env) (bool, bool) {
			x, y := a(e), b(e)
			if math.IsNaN(x) || math.IsNaN(y) {
				return false, false
			}
			return x > y, true
		}
	case OpModEq:
		return func(e *Env) (bool, bool) {
			x, y := a(e), b(e)
			if math.IsNaN(x) || math.IsNaN(y) || y == 0 {
				return false, false
			}
			r := math.Abs(math.Mod(x, y))
			ay := math.Abs(y)
			return r <= modEqTolerance*ay || r >= (1-modEqTolerance)*ay, true
		}
	default:
		return func(*Env) (bool, bool) { return false, false }
	}
}
