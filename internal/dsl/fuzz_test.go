package dsl

import "testing"

// FuzzParse feeds arbitrary strings to the expression parser: it must
// never panic, and anything it accepts must render and re-parse to a
// structurally identical tree.
func FuzzParse(f *testing.F) {
	for _, src := range table2Exprs {
		f.Add(src)
	}
	f.Add("c1*mss + c2")
	f.Add("((((")
	f.Add("cwnd ? 1 : 2")
	f.Add("-{x}")
	f.Add("1e309")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		rendered := n.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted %q -> %q does not re-parse: %v", src, rendered, err)
		}
		if !n.Equal(back) {
			t.Fatalf("round trip changed %q: %q vs %q", src, n, back)
		}
		// Simplify must not panic on any accepted expression and must not
		// grow it.
		s := Simplify(n)
		if s.Size() > n.Size() {
			t.Fatalf("Simplify grew %q -> %q", n, s)
		}
	})
}
