package dsl

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/obs"
)

// progEnvs is a grid of evaluation environments spanning the regimes that
// matter for bit-exactness: the nominal env, zeros that poison divisions,
// RTT == MinRTT (vegas-diff 0), and non-finite signals.
func progEnvs() []*Env {
	nominal := env()
	zeroCwnd := env()
	zeroCwnd.Cwnd = 0
	zeroRTT := env()
	zeroRTT.RTT, zeroRTT.MinRTT, zeroRTT.MaxRTT = 0, 0, 0
	flatRTT := env()
	flatRTT.RTT = flatRTT.MinRTT
	nanSig := env()
	nanSig.AckRate = math.NaN()
	infSig := env()
	infSig.WMax = math.Inf(1)
	tiny := &Env{Cwnd: 1, MSS: 1, Acked: 1, RTT: 1e-9, MinRTT: 1e-9, MaxRTT: 1e-9, AckRate: 1}
	return []*Env{nominal, zeroCwnd, zeroRTT, flatRTT, nanSig, infSig, tiny}
}

// agree checks the three evaluators — Node.Eval, the Compile closure, and
// the register VM — produce bit-identical (value, ok) at one env.
func agree(t *testing.T, n *Node, e *Env, label string) {
	t.Helper()
	ev, errEv := n.Eval(e)
	okEv := errEv == nil
	cv, okC := Compile(n)(e)
	p := CompileProgram(n)
	pv, okP := p.Eval(e, nil)
	if okEv != okC || okC != okP {
		t.Fatalf("%s: ok mismatch: Eval %v, Compile %v, Program %v", label, okEv, okC, okP)
	}
	if !okEv {
		return
	}
	if math.Float64bits(ev) != math.Float64bits(cv) || math.Float64bits(cv) != math.Float64bits(pv) {
		t.Fatalf("%s: value mismatch: Eval %x, Compile %x, Program %x",
			label, math.Float64bits(ev), math.Float64bits(cv), math.Float64bits(pv))
	}
}

func TestProgramMatchesEvalOnTable2(t *testing.T) {
	for _, src := range table2Exprs {
		n := MustParse(src)
		for i, e := range progEnvs() {
			agree(t, n, e, src+" env#"+string(rune('0'+i)))
		}
	}
}

// TestProgramHolePatching: evaluating a sketch's program with patched
// constants must bit-match compiling the Bind-bound tree — the property
// that lets the Scorer reuse one program across all completions.
func TestProgramHolePatching(t *testing.T) {
	sketches := []string{
		"cwnd + c1*reno-inc",
		"cwnd + ({vegas-diff < c1} ? c2*reno-inc : 0)",
		"c1*mss + c2*mss",
		"{rtts-since-loss % c1 = 0} ? c2*cwnd : mss",
	}
	valSets := [][]float64{{0.7, 2}, {1, 0.5}, {0, 0}, {-3, 8}, {math.Pi, 1e-3}}
	for _, src := range sketches {
		sk := MustParse(src)
		ps := CompileProgram(sk)
		for _, vals := range valSets {
			vals := vals[:sk.Holes()]
			bound, err := sk.Bind(vals)
			if err != nil {
				t.Fatalf("Bind(%q, %v): %v", src, vals, err)
			}
			pb := CompileProgram(bound)
			for _, e := range progEnvs() {
				agree(t, bound, e, src)
				v1, ok1 := ps.Eval(e, vals)
				v2, ok2 := pb.Eval(e, nil)
				if ok1 != ok2 || (ok1 && math.Float64bits(v1) != math.Float64bits(v2)) {
					t.Fatalf("%q vals %v: patched (%v,%v) != bound (%v,%v)", src, vals, v1, ok1, v2, ok2)
				}
			}
		}
		// An unpatched sketch must fail evaluation, like Eval/Compile.
		if _, ok := ps.Eval(env(), nil); ok {
			t.Errorf("%q: unpatched sketch evaluated ok", src)
		}
	}
}

// TestProgramHoisting sanity-checks the partition: in `cwnd + c1*reno-inc`
// the acked*mss product is window-free but reno-inc's division is not, so
// both the prologue and the suffix must be non-empty, and the hole count
// must match the sketch's.
func TestProgramHoisting(t *testing.T) {
	p := CompileProgram(MustParse("cwnd + c1*reno-inc"))
	if p.Holes() != 1 {
		t.Errorf("Holes = %d, want 1", p.Holes())
	}
	if p.PrologueLen() == 0 {
		t.Errorf("no instructions hoisted into the prologue")
	}
	if p.SuffixLen() == 0 {
		t.Errorf("empty per-ACK suffix")
	}
	if p.PrologueLen()+p.SuffixLen() >= p.NumInsts() {
		t.Errorf("constant section empty: prologue %d + suffix %d vs total %d",
			p.PrologueLen(), p.SuffixLen(), p.NumInsts())
	}

	// A window-free handler hoists everything: the suffix is empty and the
	// result is a prologue (or constant) register.
	flat := CompileProgram(MustParse("2*mss"))
	if flat.SuffixLen() != 0 {
		t.Errorf("window-free handler has %d suffix instructions", flat.SuffixLen())
	}
}

// TestProgramEvalSeries replays programs over a synthetic segment and
// compares against a reference loop built on the Compile closure with the
// same clamp and divergence rules.
func TestProgramEvalSeries(t *testing.T) {
	const mss = 1448.0
	lo, hi := mss, float64(1<<20)*mss
	envs := make([]*Env, 40)
	for i := range envs {
		e := env()
		e.Acked = mss * float64(1+i%3)
		e.RTT = 0.040 + 0.001*float64(i)
		e.TimeSinceLoss = 0.1 * float64(i)
		if i == 25 {
			e.AckRate = 0 // exercises divisions by zero downstream
		}
		envs[i] = e
	}
	cols := &Cols{N: len(envs)}
	for s := range cols.Sig {
		cols.Sig[s] = make([]float64, len(envs))
	}
	for i, e := range envs {
		for s := SigMSS; s <= SigWMax; s++ {
			cols.Sig[s][i] = e.signal(s)
		}
	}
	exprs := append([]string{}, table2Exprs...)
	exprs = append(exprs, "cwnd - 2*mss", "cwnd/0", "cwnd + rtt-gradient*ack-rate")
	for _, src := range exprs {
		n := MustParse(src)
		fn := Compile(n)
		wantOut := make([]float64, len(envs))
		wantRows, wantOK := len(envs), true
		cwnd := 20 * mss
		for i := range envs {
			e := *envs[i]
			e.Cwnd = cwnd
			v, ok := fn(&e)
			if !ok {
				wantRows, wantOK = i, false
				break
			}
			cwnd = math.Min(math.Max(v, lo), hi)
			wantOut[i] = cwnd / mss
		}

		p := CompileProgram(n)
		gotOut := make([]float64, len(envs))
		pro := p.RunPrologue(cols)
		gotRows, gotOK := p.EvalSeries(cols, pro, nil, 20*mss, lo, hi, mss, gotOut, NewExec())
		if gotRows != wantRows || gotOK != wantOK {
			t.Errorf("%q: EvalSeries = (%d,%v), want (%d,%v)", src, gotRows, gotOK, wantRows, wantOK)
			continue
		}
		for i := 0; i < wantRows; i++ {
			if math.Float64bits(gotOut[i]) != math.Float64bits(wantOut[i]) {
				t.Errorf("%q row %d: VM %v != closure %v", src, i, gotOut[i], wantOut[i])
				break
			}
		}
		// nil prologue and nil Exec must behave identically.
		gotOut2 := make([]float64, len(envs))
		r2, ok2 := p.EvalSeries(cols, nil, nil, 20*mss, lo, hi, mss, gotOut2, nil)
		if r2 != wantRows || ok2 != wantOK {
			t.Errorf("%q: EvalSeries(nil pro) = (%d,%v), want (%d,%v)", src, r2, ok2, wantRows, wantOK)
		}
	}
}

func TestObserveProgsCompiled(t *testing.T) {
	reg := obs.New()
	Observe(reg)
	defer Observe(nil)
	CompileProgram(MustParse("cwnd + reno-inc"))
	CompileProgram(MustParse("mss"))
	if got := reg.Report().Counters["dsl.progs_compiled"]; got != 2 {
		t.Errorf("dsl.progs_compiled = %d, want 2", got)
	}
}

// fz drains fuzz bytes; exhausted input yields zeros so every prefix is a
// valid program description.
type fz struct {
	data []byte
	i    int
}

func (f *fz) byte() byte {
	if f.i >= len(f.data) {
		return 0
	}
	b := f.data[f.i]
	f.i++
	return b
}

func (f *fz) f64() float64 {
	switch f.byte() % 4 {
	case 0: // small non-negative halves, including 0
		return float64(f.byte()%16) / 2
	case 1: // small negatives
		return -float64(f.byte() % 8)
	case 2: // raw bits: subnormals, NaN, Inf all possible
		var buf [8]byte
		for i := range buf {
			buf[i] = f.byte()
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	default: // byte-ish magnitudes scaled to MSS units
		return float64(f.byte()) * 1448
	}
}

// genNode builds a structurally valid expression (booleans only in
// conditional predicates, as Parse guarantees).
func genNode(f *fz, depth int) *Node {
	leaf := func() *Node {
		switch f.byte() % 5 {
		case 0:
			return Cwnd()
		case 1:
			return Sig(Signal(f.byte() % 9))
		case 2:
			return Mac(Macro(f.byte() % 4))
		case 3:
			return Hole()
		default:
			return Lit(f.f64())
		}
	}
	if depth >= 4 {
		return leaf()
	}
	switch f.byte() % 9 {
	case 0:
		return Add(genNode(f, depth+1), genNode(f, depth+1))
	case 1:
		return Sub(genNode(f, depth+1), genNode(f, depth+1))
	case 2:
		return Mul(genNode(f, depth+1), genNode(f, depth+1))
	case 3:
		return Div(genNode(f, depth+1), genNode(f, depth+1))
	case 4:
		return Cube(genNode(f, depth+1))
	case 5:
		return Cbrt(genNode(f, depth+1))
	case 6, 7:
		var pred *Node
		a, b := genNode(f, depth+1), genNode(f, depth+1)
		switch f.byte() % 3 {
		case 0:
			pred = Lt(a, b)
		case 1:
			pred = Gt(a, b)
		default:
			pred = ModEq(a, b)
		}
		return Cond(pred, genNode(f, depth+1), genNode(f, depth+1))
	default:
		return leaf()
	}
}

// FuzzProgramVsEval is the PR's exactness oracle: for arbitrary
// expressions and environments, the register VM must bit-match Node.Eval
// and the Compile closure — value, ok flag, and NaN propagation — both
// directly and through the sketch-patching path.
func FuzzProgramVsEval(f *testing.F) {
	f.Add([]byte("reno"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{6, 2, 1, 0, 3, 1, 2, 255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 0, 0, 0})
	f.Add([]byte{8, 3, 200, 100, 50, 25, 12, 6, 3, 1, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &fz{data: data}
		n := genNode(fr, 0)
		e := &Env{
			Cwnd:          fr.f64(),
			MSS:           fr.f64(),
			Acked:         fr.f64(),
			TimeSinceLoss: fr.f64(),
			RTT:           fr.f64(),
			MinRTT:        fr.f64(),
			MaxRTT:        fr.f64(),
			AckRate:       fr.f64(),
			RTTGradient:   fr.f64(),
			WMax:          fr.f64(),
		}
		agree(t, n, e, n.String())
		if h := n.Holes(); h > 0 {
			vals := make([]float64, h)
			for i := range vals {
				vals[i] = fr.f64()
			}
			bound, err := n.Bind(vals)
			if err != nil {
				t.Fatalf("Bind: %v", err)
			}
			agree(t, bound, e, bound.String())
			v1, ok1 := CompileProgram(n).Eval(e, vals)
			v2, ok2 := CompileProgram(bound).Eval(e, nil)
			if ok1 != ok2 || (ok1 && math.Float64bits(v1) != math.Float64bits(v2)) {
				t.Fatalf("%s: patched (%v,%v) != bound (%v,%v)", n, v1, ok1, v2, ok2)
			}
		}
	})
}
