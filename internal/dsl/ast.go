// Package dsl defines Abagnale's domain-specific language of classical
// congestion control handlers (Listing 1 of the paper): expression trees
// over congestion signals, arithmetic, conditionals, cube/cube-root, and
// the pre-defined macros of Table 1. A tree with unbound constants is a
// *sketch*; binding every constant yields a concrete *handler* that maps an
// ACK-time environment to a new congestion window in bytes.
package dsl

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Op is an AST node kind.
type Op int

// Node kinds. Leaves first, then numeric operators, then boolean operators.
const (
	OpInvalid Op = iota
	OpCwnd       // the current congestion window (state)
	OpSignal     // a congestion signal leaf
	OpConst      // a constant: a hole when unbound, a literal when bound
	OpMacro      // a Table 1 macro leaf

	OpAdd
	OpSub
	OpMul
	OpDiv
	OpCond // bool ? num : num
	OpCube // num^3
	OpCbrt // cube root

	OpLt    // num < num
	OpGt    // num > num
	OpModEq // num % num == 0
)

// String returns the operator's DSL spelling.
func (o Op) String() string {
	switch o {
	case OpCwnd:
		return "cwnd"
	case OpSignal:
		return "signal"
	case OpConst:
		return "const"
	case OpMacro:
		return "macro"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpCond:
		return "?:"
	case OpCube:
		return "cube"
	case OpCbrt:
		return "cbrt"
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpModEq:
		return "%="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// IsBool reports whether the operator produces a boolean.
func (o Op) IsBool() bool { return o == OpLt || o == OpGt || o == OpModEq }

// IsLeaf reports whether the operator is a leaf node kind.
func (o Op) IsLeaf() bool {
	return o == OpCwnd || o == OpSignal || o == OpConst || o == OpMacro
}

// Signal identifies a congestion signal available to handlers.
type Signal int

// Congestion signals (Listing 1). The base set is mss/acked-bytes/
// time-since-loss; rtt through rtt-gradient are the rate/delay extensions;
// wmax (window at last loss) is a Cubic-DSL extension.
const (
	SigMSS Signal = iota
	SigAcked
	SigTimeSinceLoss
	SigRTT
	SigMinRTT
	SigMaxRTT
	SigAckRate
	SigRTTGradient
	SigWMax
)

// signalNames spells signals the way the paper does.
var signalNames = map[Signal]string{
	SigMSS:           "mss",
	SigAcked:         "acked",
	SigTimeSinceLoss: "time-since-loss",
	SigRTT:           "rtt",
	SigMinRTT:        "min-rtt",
	SigMaxRTT:        "max-rtt",
	SigAckRate:       "ack-rate",
	SigRTTGradient:   "rtt-gradient",
	SigWMax:          "wmax",
}

// String returns the signal's DSL spelling.
func (s Signal) String() string {
	if n, ok := signalNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Signal(%d)", int(s))
}

// Macro identifies one of the pre-defined macros of Table 1.
type Macro int

// Table 1 macros.
const (
	// MacroRenoInc is reno-inc = ACKed x MSS / CWND: Reno's increment of
	// one MSS per window per RTT.
	MacroRenoInc Macro = iota
	// MacroVegasDiff is vegas-diff = (RTT - minRTT) x ack-rate / MSS:
	// Vegas's estimate of packets queued at the bottleneck.
	MacroVegasDiff
	// MacroHTCPDiff is htcp-diff = (RTT - minRTT) / maxRTT: H-TCP's
	// normalized RTT variation.
	MacroHTCPDiff
	// MacroRTTsSinceLoss is rtts-since-loss = time-since-loss / RTT: the
	// loss age in RTT units, as used by BBR.
	MacroRTTsSinceLoss
)

// macroNames spells macros the way the paper does.
var macroNames = map[Macro]string{
	MacroRenoInc:       "reno-inc",
	MacroVegasDiff:     "vegas-diff",
	MacroHTCPDiff:      "htcp-diff",
	MacroRTTsSinceLoss: "rtts-since-loss",
}

// String returns the macro's DSL spelling.
func (m Macro) String() string {
	if n, ok := macroNames[m]; ok {
		return n
	}
	return fmt.Sprintf("Macro(%d)", int(m))
}

// Node is one expression-tree node. Sketches and handlers share this
// representation; a sketch has at least one unbound OpConst.
type Node struct {
	Op Op
	// Sig is valid when Op == OpSignal.
	Sig Signal
	// Mac is valid when Op == OpMacro.
	Mac Macro
	// Bound and Value describe OpConst nodes: a bound node is a literal;
	// an unbound node is a hole to be filled during concretization.
	Bound bool
	Value float64
	// Kids are the children: 1 for cube/cbrt, 2 for binary operators and
	// comparisons, 3 for cond (bool, then, else).
	Kids []*Node

	// keyCache memoizes Key(); cleared by Clone so that post-clone
	// mutations (Bind) cannot observe a stale key.
	keyCache string
}

// Convenience constructors.

// Cwnd returns a congestion-window leaf.
func Cwnd() *Node { return &Node{Op: OpCwnd} }

// Sig returns a signal leaf.
func Sig(s Signal) *Node { return &Node{Op: OpSignal, Sig: s} }

// Mac returns a macro leaf.
func Mac(m Macro) *Node { return &Node{Op: OpMacro, Mac: m} }

// Hole returns an unbound constant.
func Hole() *Node { return &Node{Op: OpConst} }

// Lit returns a bound constant.
func Lit(v float64) *Node { return &Node{Op: OpConst, Bound: true, Value: v} }

// Add returns a + b.
func Add(a, b *Node) *Node { return &Node{Op: OpAdd, Kids: []*Node{a, b}} }

// Sub returns a - b.
func Sub(a, b *Node) *Node { return &Node{Op: OpSub, Kids: []*Node{a, b}} }

// Mul returns a * b.
func Mul(a, b *Node) *Node { return &Node{Op: OpMul, Kids: []*Node{a, b}} }

// Div returns a / b.
func Div(a, b *Node) *Node { return &Node{Op: OpDiv, Kids: []*Node{a, b}} }

// Cond returns cond ? then : els.
func Cond(cond, then, els *Node) *Node {
	return &Node{Op: OpCond, Kids: []*Node{cond, then, els}}
}

// Cube returns a^3.
func Cube(a *Node) *Node { return &Node{Op: OpCube, Kids: []*Node{a}} }

// Cbrt returns the cube root of a.
func Cbrt(a *Node) *Node { return &Node{Op: OpCbrt, Kids: []*Node{a}} }

// Lt returns a < b.
func Lt(a, b *Node) *Node { return &Node{Op: OpLt, Kids: []*Node{a, b}} }

// Gt returns a > b.
func Gt(a, b *Node) *Node { return &Node{Op: OpGt, Kids: []*Node{a, b}} }

// ModEq returns (a % b == 0).
func ModEq(a, b *Node) *Node { return &Node{Op: OpModEq, Kids: []*Node{a, b}} }

// Clone deep-copies the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.keyCache = ""
	if len(n.Kids) > 0 {
		c.Kids = make([]*Node, len(n.Kids))
		for i, k := range n.Kids {
			c.Kids[i] = k.Clone()
		}
	}
	return &c
}

// Depth returns the tree depth (a leaf has depth 1). Macros count as
// depth-1 leaves, per the paper.
func (n *Node) Depth() int {
	if len(n.Kids) == 0 {
		return 1
	}
	max := 0
	for _, k := range n.Kids {
		if d := k.Depth(); d > max {
			max = d
		}
	}
	return 1 + max
}

// Size returns the number of nodes in the tree.
func (n *Node) Size() int {
	s := 1
	for _, k := range n.Kids {
		s += k.Size()
	}
	return s
}

// Holes returns the number of unbound constants, counted left-to-right.
func (n *Node) Holes() int {
	count := 0
	n.Walk(func(m *Node) {
		if m.Op == OpConst && !m.Bound {
			count++
		}
	})
	return count
}

// Walk visits every node in preorder.
func (n *Node) Walk(fn func(*Node)) {
	fn(n)
	for _, k := range n.Kids {
		k.Walk(fn)
	}
}

// Bind returns a copy of the sketch with holes filled left-to-right from
// vals. It fails if the count does not match.
func (n *Node) Bind(vals []float64) (*Node, error) {
	if got := n.Holes(); got != len(vals) {
		return nil, fmt.Errorf("dsl: sketch has %d holes, got %d values", got, len(vals))
	}
	c := n.Clone()
	i := 0
	c.Walk(func(m *Node) {
		if m.Op == OpConst && !m.Bound {
			m.Bound = true
			m.Value = vals[i]
			i++
		}
	})
	return c, nil
}

// OpSet is a bit set of operator kinds, the bucket discriminator of §4.4.
type OpSet uint32

// With returns the set including op.
func (s OpSet) With(op Op) OpSet { return s | 1<<uint(op) }

// Has reports membership.
func (s OpSet) Has(op Op) bool { return s&(1<<uint(op)) != 0 }

// SubsetOf reports whether every member of s is in t.
func (s OpSet) SubsetOf(t OpSet) bool { return s&^t == 0 }

// String lists the member operators.
func (s OpSet) String() string {
	var parts []string
	for op := OpAdd; op <= OpModEq; op++ {
		if s.Has(op) {
			parts = append(parts, op.String())
		}
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Ops returns the set of non-leaf operators used by the tree. Lt and Gt
// are folded together (they express the same ordering predicate with the
// operands swapped), so fine-tuned handlers written with ">" land in the
// same bucket as enumerator output written with "<".
func (n *Node) Ops() OpSet {
	var s OpSet
	n.Walk(func(m *Node) {
		if m.Op.IsLeaf() {
			return
		}
		op := m.Op
		if op == OpGt {
			op = OpLt
		}
		s = s.With(op)
	})
	return s
}

// Equal reports structural equality (including constant binding state).
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Op != o.Op || n.Sig != o.Sig || n.Mac != o.Mac ||
		n.Bound != o.Bound || (n.Bound && n.Value != o.Value) ||
		len(n.Kids) != len(o.Kids) {
		return false
	}
	for i := range n.Kids {
		if !n.Kids[i].Equal(o.Kids[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical serialization used for ordering commutative
// operands and for deduplication. Keys are memoized: the enumerator
// compares them constantly while checking canonical operand order.
func (n *Node) Key() string {
	if n.keyCache != "" {
		return n.keyCache
	}
	var b strings.Builder
	switch n.Op {
	case OpCwnd:
		b.WriteString("w")
	case OpSignal:
		b.WriteString("s")
		b.WriteString(strconv.Itoa(int(n.Sig)))
	case OpMacro:
		b.WriteString("m")
		b.WriteString(strconv.Itoa(int(n.Mac)))
	case OpConst:
		if n.Bound {
			b.WriteString("k")
			b.WriteString(strconv.FormatFloat(n.Value, 'g', -1, 64))
		} else {
			b.WriteString("c")
		}
	default:
		b.WriteString("(")
		b.WriteString(n.Op.String())
		for _, k := range n.Kids {
			b.WriteString(" ")
			b.WriteString(k.Key())
		}
		b.WriteString(")")
	}
	n.keyCache = b.String()
	return n.keyCache
}

// String renders the expression in the paper's notation, e.g.
// "cwnd + 0.7*reno-inc" or "{vegas-diff < 1} ? 0.7*reno-inc : 0". Unbound
// holes render as c1, c2, ... in order of appearance, so sketches
// round-trip through Parse.
func (n *Node) String() string {
	r := &renderer{}
	return r.render(n, 0)
}

// renderer numbers holes as it prints.
type renderer struct {
	holes int
}

// precedence levels for rendering.
func (o Op) prec() int {
	switch o {
	case OpCond:
		return 1
	case OpLt, OpGt, OpModEq:
		return 2
	case OpAdd, OpSub:
		return 3
	case OpMul, OpDiv:
		return 4
	default:
		return 5
	}
}

func (r *renderer) render(n *Node, parent int) string {
	var s string
	switch n.Op {
	case OpCwnd:
		return "cwnd"
	case OpSignal:
		return n.Sig.String()
	case OpMacro:
		return n.Mac.String()
	case OpConst:
		if !n.Bound {
			r.holes++
			return "c" + strconv.Itoa(r.holes)
		}
		return strconv.FormatFloat(n.Value, 'g', 6, 64)
	case OpAdd:
		s = r.render(n.Kids[0], 3) + " + " + r.render(n.Kids[1], 4)
	case OpSub:
		s = r.render(n.Kids[0], 3) + " - " + r.render(n.Kids[1], 4)
	case OpMul:
		s = r.render(n.Kids[0], 4) + "*" + r.render(n.Kids[1], 5)
	case OpDiv:
		s = r.render(n.Kids[0], 4) + "/" + r.render(n.Kids[1], 5)
	case OpCond:
		s = "{" + r.render(n.Kids[0], 0) + "} ? " + r.render(n.Kids[1], 2) + " : " + r.render(n.Kids[2], 1)
	case OpCube:
		return "cube(" + r.render(n.Kids[0], 0) + ")"
	case OpCbrt:
		return "cbrt(" + r.render(n.Kids[0], 0) + ")"
	case OpLt:
		s = r.render(n.Kids[0], 3) + " < " + r.render(n.Kids[1], 3)
	case OpGt:
		s = r.render(n.Kids[0], 3) + " > " + r.render(n.Kids[1], 3)
	case OpModEq:
		s = r.render(n.Kids[0], 4) + " % " + r.render(n.Kids[1], 4) + " = 0"
	default:
		return "<invalid>"
	}
	if n.Op.prec() < parent {
		return "(" + s + ")"
	}
	return s
}

// Env is the per-ACK evaluation environment: the observable congestion
// signals at one trace sample plus the handler's own window state. Times
// are seconds, sizes bytes, rates bytes/second.
type Env struct {
	Cwnd          float64
	MSS           float64
	Acked         float64
	TimeSinceLoss float64
	RTT           float64
	MinRTT        float64
	MaxRTT        float64
	AckRate       float64
	RTTGradient   float64
	WMax          float64
}

// signal returns the value of a signal in this environment.
func (e *Env) signal(s Signal) float64 {
	switch s {
	case SigMSS:
		return e.MSS
	case SigAcked:
		return e.Acked
	case SigTimeSinceLoss:
		return e.TimeSinceLoss
	case SigRTT:
		return e.RTT
	case SigMinRTT:
		return e.MinRTT
	case SigMaxRTT:
		return e.MaxRTT
	case SigAckRate:
		return e.AckRate
	case SigRTTGradient:
		return e.RTTGradient
	case SigWMax:
		return e.WMax
	default:
		return math.NaN()
	}
}

// macro evaluates a Table 1 macro in this environment.
func (e *Env) macro(m Macro) float64 {
	switch m {
	case MacroRenoInc:
		return e.Acked * e.MSS / e.Cwnd
	case MacroVegasDiff:
		return (e.RTT - e.MinRTT) * e.AckRate / e.MSS
	case MacroHTCPDiff:
		return (e.RTT - e.MinRTT) / e.MaxRTT
	case MacroRTTsSinceLoss:
		return e.TimeSinceLoss / e.RTT
	default:
		return math.NaN()
	}
}

// modEqTolerance is the relative tolerance for the `a % b = 0` predicate:
// floating-point arithmetic rarely lands exactly on a multiple, so the
// predicate holds when the remainder is within 10% of 0 or of b.
const modEqTolerance = 0.10

// EvalErr reports why evaluation failed.
var ErrEval = fmt.Errorf("dsl: evaluation produced a non-finite value")

// Eval evaluates a fully-bound numeric expression. It returns ErrEval when
// any sub-expression is non-finite (division by ~zero, NaN signals, ...).
// Evaluating a sketch with unbound holes is an error.
func (n *Node) Eval(env *Env) (float64, error) {
	v := n.eval(env)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, ErrEval
	}
	return v, nil
}

func (n *Node) eval(env *Env) float64 {
	switch n.Op {
	case OpCwnd:
		return env.Cwnd
	case OpSignal:
		return env.signal(n.Sig)
	case OpMacro:
		return env.macro(n.Mac)
	case OpConst:
		if !n.Bound {
			return math.NaN()
		}
		return n.Value
	case OpAdd:
		return n.Kids[0].eval(env) + n.Kids[1].eval(env)
	case OpSub:
		return n.Kids[0].eval(env) - n.Kids[1].eval(env)
	case OpMul:
		return n.Kids[0].eval(env) * n.Kids[1].eval(env)
	case OpDiv:
		return n.Kids[0].eval(env) / n.Kids[1].eval(env)
	case OpCond:
		b, ok := n.Kids[0].evalBool(env)
		if !ok {
			return math.NaN()
		}
		if b {
			return n.Kids[1].eval(env)
		}
		return n.Kids[2].eval(env)
	case OpCube:
		v := n.Kids[0].eval(env)
		return v * v * v
	case OpCbrt:
		return math.Cbrt(n.Kids[0].eval(env))
	default:
		return math.NaN()
	}
}

// evalBool evaluates a boolean node.
func (n *Node) evalBool(env *Env) (val, ok bool) {
	a := n.Kids[0].eval(env)
	b := n.Kids[1].eval(env)
	if math.IsNaN(a) || math.IsNaN(b) {
		return false, false
	}
	switch n.Op {
	case OpLt:
		return a < b, true
	case OpGt:
		return a > b, true
	case OpModEq:
		if b == 0 {
			return false, false
		}
		r := math.Abs(math.Mod(a, b))
		ab := math.Abs(b)
		return r <= modEqTolerance*ab || r >= (1-modEqTolerance)*ab, true
	default:
		return false, false
	}
}
