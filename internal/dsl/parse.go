package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads an expression in the paper's notation, e.g.
//
//	cwnd + 0.7*reno-inc
//	{vegas-diff < 1} ? cwnd + 0.7*reno-inc : cwnd
//	min-rtt*ack-rate*({rtts-since-loss % 8 = 0} ? 2.6 : 2.05)
//
// Identifiers may contain hyphens (min-rtt); a binary minus between two
// identifiers therefore needs surrounding spaces ("cwnd - mss"). The
// identifiers c1..c99 denote unbound constant holes.
func Parse(src string) (*Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("dsl: unexpected trailing input %q", p.peek().text)
	}
	if n.Op.IsBool() {
		return nil, fmt.Errorf("dsl: expression is a predicate, not a number")
	}
	return n, nil
}

// MustParse is Parse for statically-known expressions (tests, tables).
func MustParse(src string) *Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokSym // single-rune symbol
)

type token struct {
	kind tokKind
	text string
	val  float64
}

// lex splits the source into tokens. Hyphens glue identifier parts when
// they sit directly between letters ("min-rtt"); otherwise '-' is a symbol.
func lex(src string) ([]token, error) {
	var toks []token
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsDigit(r) || r == '.':
			j := i
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.' || rs[j] == 'e' ||
				(j > i && (rs[j] == '+' || rs[j] == '-') && (rs[j-1] == 'e'))) {
				j++
			}
			v, err := strconv.ParseFloat(string(rs[i:j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dsl: bad number %q", string(rs[i:j]))
			}
			toks = append(toks, token{kind: tokNum, text: string(rs[i:j]), val: v})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) {
				r := rs[j]
				if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
					j++
					continue
				}
				// A hyphen joins identifier parts when followed by a letter.
				if r == '-' && j+1 < len(rs) && unicode.IsLetter(rs[j+1]) {
					j += 2
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokIdent, text: strings.ToLower(string(rs[i:j]))})
			i = j
		case strings.ContainsRune("+-*/(){}?:<>%=,", r):
			toks = append(toks, token{kind: tokSym, text: string(r)})
			i++
		default:
			return nil, fmt.Errorf("dsl: unexpected character %q", string(r))
		}
	}
	toks = append(toks, token{kind: tokEOF})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) eof() bool { return p.peek().kind == tokEOF }

// accept consumes the symbol when it matches.
func (p *parser) accept(sym string) bool {
	if t := p.peek(); t.kind == tokSym && t.text == sym {
		p.pos++
		return true
	}
	return false
}

// expect consumes the symbol or fails.
func (p *parser) expect(sym string) error {
	if !p.accept(sym) {
		return fmt.Errorf("dsl: expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

// parseTernary := cmp [ '?' ternary ':' ternary ]
func (p *parser) parseTernary() (*Node, error) {
	cond, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	if !cond.Op.IsBool() {
		return nil, fmt.Errorf("dsl: conditional needs a predicate before '?'")
	}
	then, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return Cond(cond, then, els), nil
}

// parseCmp := addsub [ '<' addsub | '>' addsub | '%' addsub '=' '0' ]
func (p *parser) parseCmp() (*Node, error) {
	a, err := p.parseAddSub()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept("<"):
		b, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		return Lt(a, b), nil
	case p.accept(">"):
		b, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		return Gt(a, b), nil
	case p.accept("%"):
		b, err := p.parseAddSub()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		// Accept "= 0" and "== 0".
		p.accept("=")
		z := p.next()
		if z.kind != tokNum || z.val != 0 {
			return nil, fmt.Errorf("dsl: modulo predicate must compare to 0")
		}
		return ModEq(a, b), nil
	}
	return a, nil
}

// parseAddSub := muldiv { ('+'|'-') muldiv }
func (p *parser) parseAddSub() (*Node, error) {
	a, err := p.parseMulDiv()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			b, err := p.parseMulDiv()
			if err != nil {
				return nil, err
			}
			a = Add(a, b)
		case p.accept("-"):
			b, err := p.parseMulDiv()
			if err != nil {
				return nil, err
			}
			a = Sub(a, b)
		default:
			return a, nil
		}
	}
}

// parseMulDiv := primary { ('*'|'/') primary }
func (p *parser) parseMulDiv() (*Node, error) {
	a, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			b, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			a = Mul(a, b)
		case p.accept("/"):
			b, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			a = Div(a, b)
		default:
			return a, nil
		}
	}
}

// identNodes maps identifier spellings (including common aliases) to leaf
// constructors.
var identNodes = map[string]func() *Node{
	"cwnd":            Cwnd,
	"mss":             func() *Node { return Sig(SigMSS) },
	"acked":           func() *Node { return Sig(SigAcked) },
	"acked-bytes":     func() *Node { return Sig(SigAcked) },
	"time-since-loss": func() *Node { return Sig(SigTimeSinceLoss) },
	"rtt":             func() *Node { return Sig(SigRTT) },
	"min-rtt":         func() *Node { return Sig(SigMinRTT) },
	"minrtt":          func() *Node { return Sig(SigMinRTT) },
	"max-rtt":         func() *Node { return Sig(SigMaxRTT) },
	"maxrtt":          func() *Node { return Sig(SigMaxRTT) },
	"ack-rate":        func() *Node { return Sig(SigAckRate) },
	"rtt-gradient":    func() *Node { return Sig(SigRTTGradient) },
	"delay-gradient":  func() *Node { return Sig(SigRTTGradient) },
	"wmax":            func() *Node { return Sig(SigWMax) },
	"reno-inc":        func() *Node { return Mac(MacroRenoInc) },
	"vegas-diff":      func() *Node { return Mac(MacroVegasDiff) },
	"htcp-diff":       func() *Node { return Mac(MacroHTCPDiff) },
	"rtts-since-loss": func() *Node { return Mac(MacroRTTsSinceLoss) },
	"rtt-since-loss":  func() *Node { return Mac(MacroRTTsSinceLoss) },
}

// parsePrimary := number | ident | hole | cube(...) | cbrt(...) | (...) | {...}
func (p *parser) parsePrimary() (*Node, error) {
	t := p.peek()
	switch {
	case t.kind == tokNum:
		p.next()
		return Lit(t.val), nil
	case t.kind == tokIdent:
		p.next()
		switch t.text {
		case "cube", "cbrt":
			if err := p.expect("("); err != nil {
				return nil, err
			}
			arg, err := p.parseTernary()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if t.text == "cube" {
				return Cube(arg), nil
			}
			return Cbrt(arg), nil
		}
		if mk, ok := identNodes[t.text]; ok {
			return mk(), nil
		}
		// c1..c99 are sketch holes.
		if len(t.text) >= 2 && t.text[0] == 'c' {
			if _, err := strconv.Atoi(t.text[1:]); err == nil {
				return Hole(), nil
			}
		}
		return nil, fmt.Errorf("dsl: unknown identifier %q", t.text)
	case p.accept("("):
		n, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return n, nil
	case p.accept("{"):
		n, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return n, nil
	case p.accept("-"):
		// Unary minus: -x parses as (0-1)*x notationally; represent as
		// Mul(Lit(-1), x) to stay within the grammar.
		n, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if n.Op == OpConst && n.Bound {
			n.Value = -n.Value
			return n, nil
		}
		return Mul(Lit(-1), n), nil
	default:
		return nil, fmt.Errorf("dsl: unexpected token %q", t.text)
	}
}
