package dsl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// compileCorpus exercises every operator, signal and macro.
var compileCorpus = []string{
	"cwnd",
	"mss",
	"acked",
	"time-since-loss",
	"rtt",
	"min-rtt",
	"max-rtt",
	"ack-rate",
	"rtt-gradient",
	"wmax",
	"reno-inc",
	"vegas-diff",
	"htcp-diff",
	"rtts-since-loss",
	"cwnd + 0.7*reno-inc",
	"cwnd - mss",
	"cwnd/rtt*min-rtt",
	"cube(time-since-loss) + cbrt(wmax)",
	"{vegas-diff < 1} ? cwnd + mss : cwnd - mss",
	"{vegas-diff > 5} ? mss : cwnd",
	"min-rtt*ack-rate*({rtts-since-loss % 8 = 0} ? 2.6 : 2.05)",
	"wmax + cube(11*time-since-loss - cbrt(0.3*wmax))",
	"{cwnd % 2.7 = 0} ? 2.05*cwnd : mss",
}

// randEnv builds a random but physically-plausible environment.
func randEnv(rng *rand.Rand) *Env {
	minRTT := 0.01 + rng.Float64()*0.1
	return &Env{
		Cwnd:          1448 * (1 + rng.Float64()*100),
		MSS:           1448,
		Acked:         1448 * rng.Float64() * 4,
		TimeSinceLoss: rng.Float64() * 20,
		RTT:           minRTT + rng.Float64()*0.1,
		MinRTT:        minRTT,
		MaxRTT:        minRTT + 0.1 + rng.Float64()*0.1,
		AckRate:       1e4 + rng.Float64()*3e6,
		RTTGradient:   (rng.Float64() - 0.5) * 2,
		WMax:          1448 * (1 + rng.Float64()*100),
	}
}

// Property: Compile agrees exactly with Eval on every corpus expression
// over random environments — both value and error behavior.
func TestQuickCompileMatchesEval(t *testing.T) {
	type compiled struct {
		node *Node
		fn   EvalFunc
	}
	var cs []compiled
	for _, src := range compileCorpus {
		n := MustParse(src)
		cs = append(cs, compiled{node: n, fn: Compile(n)})
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := randEnv(rng)
		for _, c := range cs {
			ev, everr := c.node.Eval(env)
			cv, ok := c.fn(env)
			if (everr == nil) != ok {
				return false
			}
			if everr == nil && ev != cv {
				// Identical operation order: must match bit-for-bit.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompileSketchAlwaysFails(t *testing.T) {
	fn := Compile(MustParse("c1*mss"))
	if _, ok := fn(env()); ok {
		t.Error("compiled sketch evaluated successfully")
	}
}

func TestCompileGuards(t *testing.T) {
	e := env()
	e.Cwnd = 0
	if _, ok := Compile(MustParse("cwnd + reno-inc"))(e); ok {
		t.Error("compiled division by zero not caught")
	}
	if _, ok := Compile(MustParse("{cwnd % 0 = 0} ? 1 : 2"))(env()); ok {
		t.Error("compiled modulo by zero not caught")
	}
}

func BenchmarkEvalInterpreted(b *testing.B) {
	n := MustParse("cwnd + reno-inc*({vegas-diff < 0.7} ? 0.35 : 0.16)")
	e := env()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Eval(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCompiled(b *testing.B) {
	fn := Compile(MustParse("cwnd + reno-inc*({vegas-diff < 0.7} ? 0.35 : 0.16)"))
	e := env()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := fn(e); !ok {
			b.Fatal("eval failed")
		}
	}
}

func TestCompileNonFinitePropagation(t *testing.T) {
	// Inner NaN must poison the whole expression, same as Eval.
	e := env()
	e.RTT = math.NaN()
	n := MustParse("cwnd + rtt*ack-rate")
	_, everr := n.Eval(e)
	_, ok := Compile(n)(e)
	if (everr == nil) != ok {
		t.Errorf("NaN propagation differs: eval err=%v compiled ok=%v", everr, ok)
	}
}
