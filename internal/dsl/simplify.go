package dsl

import "math"

// Simplify rewrites a fully-bound handler into an arithmetically simpler
// equivalent for presentation — the role sympy plays in the paper's Table 2
// ("we arithmetically simplify the expressions where possible for
// readability"). The rewrite is semantics-preserving over all environments:
//
//   - constant subexpressions fold (2*3*mss -> 6*mss);
//   - neutral elements vanish (x+0, 1*x, x/1, x-0);
//   - annihilators collapse (0*x -> 0);
//   - nested constant factors merge (2*(3*x) -> 6*x);
//   - x/c rewrites to (1/c)*x, c/(d*x) to (c/d)/x;
//   - cube(cbrt(x)) and cbrt(cube(x)) cancel;
//   - conditionals with identical arms drop the predicate, and
//     statically-decidable constant predicates pick their arm (the paper's
//     student #5 case — a trivially-false comparison — simplifies away).
//
// Sketches (with unbound holes) are returned structurally cloned but
// otherwise untouched: holes cannot be folded.
func Simplify(n *Node) *Node {
	if n.Holes() > 0 {
		return n.Clone()
	}
	return simplify(n.Clone())
}

// simplify rewrites bottom-up until a fixed point (single pass per node is
// enough because children are simplified first and each local rule either
// returns a leaf or strictly smaller tree).
func simplify(n *Node) *Node {
	for i, k := range n.Kids {
		n.Kids[i] = simplify(k)
	}
	switch n.Op {
	case OpAdd, OpSub, OpMul, OpDiv:
		return simplifyArith(n)
	case OpCube, OpCbrt:
		return simplifyPow(n)
	case OpCond:
		return simplifyCond(n)
	default:
		return n
	}
}

// litVal extracts a bound constant's value.
func litVal(n *Node) (float64, bool) {
	if n.Op == OpConst && n.Bound {
		return n.Value, true
	}
	return 0, false
}

// simplifyArith applies the binary-operator rules.
func simplifyArith(n *Node) *Node {
	a, b := n.Kids[0], n.Kids[1]
	av, aConst := litVal(a)
	bv, bConst := litVal(b)

	// Full constant folding.
	if aConst && bConst {
		switch n.Op {
		case OpAdd:
			return Lit(av + bv)
		case OpSub:
			return Lit(av - bv)
		case OpMul:
			return Lit(av * bv)
		case OpDiv:
			if bv != 0 {
				return Lit(av / bv)
			}
		}
	}

	switch n.Op {
	case OpAdd:
		if aConst && av == 0 {
			return b
		}
		if bConst && bv == 0 {
			return a
		}
	case OpSub:
		if bConst && bv == 0 {
			return a
		}
		if a.Equal(b) {
			return Lit(0)
		}
	case OpMul:
		switch {
		case aConst && av == 0, bConst && bv == 0:
			return Lit(0)
		case aConst && av == 1:
			return b
		case bConst && bv == 1:
			return a
		}
		// Merge nested constant factors: c*(d*x) -> (c*d)*x and
		// (c*x)*y -> c*(x*y) canonically folded when both sides carry
		// constants.
		if aConst && b.Op == OpMul {
			if dv, ok := litVal(b.Kids[0]); ok {
				return simplifyArith(Mul(Lit(av*dv), b.Kids[1]))
			}
		}
		if bConst && a.Op == OpMul {
			if dv, ok := litVal(a.Kids[0]); ok {
				return simplifyArith(Mul(Lit(bv*dv), a.Kids[1]))
			}
		}
	case OpDiv:
		if bConst && bv == 1 {
			return a
		}
		if bConst && bv != 0 {
			// x/c == (1/c)*x; re-simplify to merge with nested factors.
			return simplifyArith(Mul(Lit(1/bv), a))
		}
		if a.Equal(b) {
			return Lit(1)
		}
		if aConst && av == 0 {
			return Lit(0)
		}
	}
	return n
}

// simplifyPow cancels cube/cbrt pairs and folds constants.
func simplifyPow(n *Node) *Node {
	k := n.Kids[0]
	if v, ok := litVal(k); ok {
		if n.Op == OpCube {
			return Lit(v * v * v)
		}
		return Lit(math.Cbrt(v))
	}
	if n.Op == OpCube && k.Op == OpCbrt {
		return k.Kids[0]
	}
	if n.Op == OpCbrt && k.Op == OpCube {
		return k.Kids[0]
	}
	return n
}

// simplifyCond drops decidable or degenerate conditionals.
func simplifyCond(n *Node) *Node {
	cond, then, els := n.Kids[0], n.Kids[1], n.Kids[2]
	if then.Equal(els) {
		return then
	}
	// Statically-decidable predicates: both comparison operands constant.
	a, aConst := litVal(cond.Kids[0])
	b, bConst := litVal(cond.Kids[1])
	if aConst && bConst {
		var take bool
		var decidable bool
		switch cond.Op {
		case OpLt:
			take, decidable = a < b, true
		case OpGt:
			take, decidable = a > b, true
		case OpModEq:
			if b != 0 {
				r := math.Abs(math.Mod(a, b))
				ab := math.Abs(b)
				take = r <= modEqTolerance*ab || r >= (1-modEqTolerance)*ab
				decidable = true
			}
		}
		if decidable {
			if take {
				return then
			}
			return els
		}
	}
	return n
}
