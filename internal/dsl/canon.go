package dsl

// Canonicality: the enumerator must not emit two sketches that an algebra
// system (the paper uses sympy) would simplify to the same expression, nor
// sketches that are trivially rewritable to smaller ones. IsCanonical
// encodes those rules structurally:
//
//   - no operator applies to two constants (constant folding);
//   - x - x, x / x and x + x are out (they fold to 0, 1, 2x);
//   - a constant may appear in a product only as the leftmost factor of
//     the (left-associated) chain, and never in a sum, difference
//     denominator or dividend position where it could be folded into a
//     neighboring constant (x - c = x + c', x/c = c'*x);
//   - + and * chains are left-associated with operands in canonical key
//     order (commutativity dedup);
//   - cube(cbrt(x)) and cbrt(cube(x)) cancel; cube/cbrt of a constant is a
//     constant;
//   - a conditional's branches must differ and its predicate's operands
//     must differ;
//   - the enumerator expresses all ordering predicates with < (a > b is
//     the mirror of b < a); Gt nodes exist for parsing fine-tuned
//     handlers but are never canonical.
func IsCanonical(n *Node) bool {
	if !canonicalNode(n) {
		return false
	}
	for _, k := range n.Kids {
		if !IsCanonical(k) {
			return false
		}
	}
	return true
}

// isConst reports whether the node is a constant leaf (bound or hole).
func isConst(n *Node) bool { return n.Op == OpConst }

// rank orders nodes for commutative canonicalization: simple state/signal
// leaves first, then macros and constants, then compound expressions — so
// the canonical spelling of a sum reads "cwnd + 0.7*reno-inc", matching
// the paper's notation.
func rank(n *Node) int {
	switch n.Op {
	case OpCwnd:
		return 0
	case OpSignal:
		return 1
	case OpMacro:
		return 2
	case OpConst:
		return 3
	default:
		return 4
	}
}

// nodeLE reports a <= b in canonical operand order.
func nodeLE(a, b *Node) bool {
	ra, rb := rank(a), rank(b)
	if ra != rb {
		return ra < rb
	}
	return a.Key() <= b.Key()
}

// canonicalNode checks the local rules at one node.
func canonicalNode(n *Node) bool {
	switch n.Op {
	case OpCwnd, OpSignal, OpMacro, OpConst:
		return true
	case OpAdd:
		a, b := n.Kids[0], n.Kids[1]
		if isConst(a) || isConst(b) {
			// Sums never contain bare constants: scaling runs through
			// products (c*x), and x + c either fails unit checking or
			// folds with another constant.
			return false
		}
		// Left-associated chain with ordered operands.
		if b.Op == OpAdd {
			return false
		}
		if a.Op != OpAdd && !nodeLE(a, b) {
			return false
		}
		if a.Op == OpAdd && !nodeLE(a.Kids[1], b) {
			return false
		}
		return !a.Equal(b)
	case OpSub:
		a, b := n.Kids[0], n.Kids[1]
		if isConst(b) || (isConst(a) && isConst(b)) {
			return false // x - c == x + c'
		}
		if isConst(a) {
			return false // c - x: out of the classical shape, folds badly
		}
		return !a.Equal(b)
	case OpMul:
		a, b := n.Kids[0], n.Kids[1]
		if isConst(a) && isConst(b) {
			return false
		}
		if isConst(b) {
			return false // constants lead: c*x, never x*c
		}
		// Left-associated chain with ordered non-const operands.
		if b.Op == OpMul {
			return false
		}
		if a.Op == OpMul {
			// Chain tail must stay ordered; a's leftmost may be const.
			return nodeLE(a.Kids[1], b)
		}
		if !isConst(a) && !nodeLE(a, b) {
			return false
		}
		return true
	case OpDiv:
		a, b := n.Kids[0], n.Kids[1]
		if isConst(b) {
			return false // x/c == c'*x
		}
		if isConst(a) && isConst(b) {
			return false
		}
		return !a.Equal(b)
	case OpCond:
		cond, then, els := n.Kids[0], n.Kids[1], n.Kids[2]
		if !cond.Op.IsBool() {
			return false
		}
		// Two unbound holes are structurally equal but concretize to
		// different values ("? 2.6 : 2.05"), so they count as distinct.
		if isConst(then) && !then.Bound && isConst(els) && !els.Bound {
			return true
		}
		return !then.Equal(els)
	case OpCube:
		k := n.Kids[0]
		return k.Op != OpCbrt && !isConst(k)
	case OpCbrt:
		k := n.Kids[0]
		return k.Op != OpCube && !isConst(k)
	case OpLt:
		a, b := n.Kids[0], n.Kids[1]
		if isConst(a) && isConst(b) {
			return false
		}
		return !a.Equal(b)
	case OpGt:
		// Mirror of Lt: parse-only, never canonical.
		return false
	case OpModEq:
		a, b := n.Kids[0], n.Kids[1]
		if isConst(a) {
			return false // c % x is not a classical predicate shape
		}
		return !a.Equal(b)
	default:
		return false
	}
}

// CanonicalAt checks the local canonicality rules at a single node whose
// children are already known to be canonical — the incremental form the
// enumerator uses while building trees bottom-up.
func CanonicalAt(n *Node) bool { return canonicalNode(n) }
