package dsl

import (
	"fmt"
	"sort"
)

// DSL is one curated sub-language of the full grammar (§3.3): the signals,
// macros and operators a synthesis run may draw from, plus its structural
// budget. Abagnale is pointed at one sub-DSL per run, chosen from a CCA
// classifier's hint about the trace's family.
type DSL struct {
	// Name identifies the sub-DSL ("reno", "cubic", "delay", "vegas").
	Name string
	// Signals are the congestion-signal leaves available.
	Signals []Signal
	// Macros are the Table 1 macro leaves available.
	Macros []Macro
	// NumOps are the numeric operators available (OpAdd..OpCbrt).
	NumOps []Op
	// BoolOps are the predicate operators available (OpLt, OpModEq; the
	// enumerator expresses > as mirrored <).
	BoolOps []Op
	// MaxDepth bounds the sketch tree depth (a leaf is depth 1).
	MaxDepth int
	// MaxNodes bounds the sketch size; 0 means unlimited.
	MaxNodes int
	// UnitCheck enables dimensional analysis during enumeration. The
	// Cubic DSL disables it: cube roots cannot be unit-checked with
	// integer exponents (§5.5).
	UnitCheck bool
	// Constants is the pool of concrete values used to fill sketch holes
	// (§4.2): values observed in known CCAs.
	Constants []float64
}

// DefaultConstants is the concretization pool: constant values observed in
// the classical CCAs (Reno/Westwood betas, BBR gains, Vegas thresholds,
// Hybla's rho, ...) as described in §4.2/§6.1.
func DefaultConstants() []float64 {
	return []float64{
		0.16, 0.2, 0.25, 0.3, 0.35, 0.37, 0.5, 0.68, 0.7, 0.8,
		1, 1.3, 2, 2.05, 2.15, 2.6, 2.7, 3, 5, 8, 150,
	}
}

// baseSignals is the Reno-DSL signal set (non-colored in Listing 1).
func baseSignals() []Signal {
	return []Signal{SigMSS, SigAcked, SigTimeSinceLoss}
}

// delaySignals extends the base with the rate/delay signals (olive in
// Listing 1).
func delaySignals() []Signal {
	return append(baseSignals(), SigRTT, SigMinRTT, SigMaxRTT, SigAckRate, SigRTTGradient)
}

// arithOps is the operator core every useful DSL includes.
func arithOps() []Op { return []Op{OpAdd, OpSub, OpMul, OpDiv, OpCond} }

// Reno returns the base Reno-family DSL: Reno, Westwood, Scalable, LP,
// Hybla, HTCP and Illinois all synthesize within it.
func Reno() *DSL {
	return &DSL{
		Name:      "reno",
		Signals:   baseSignals(),
		Macros:    []Macro{MacroRenoInc},
		NumOps:    arithOps(),
		BoolOps:   []Op{OpLt, OpModEq},
		MaxDepth:  3,
		UnitCheck: true,
		Constants: DefaultConstants(),
	}
}

// Cubic returns the Cubic-family DSL: Reno plus cube/cube-root and the
// window-at-last-loss signal, with unit checking disabled (teal in
// Listing 1).
func Cubic() *DSL {
	d := Reno()
	d.Name = "cubic"
	d.Signals = append(d.Signals, SigWMax)
	d.NumOps = append(d.NumOps, OpCube, OpCbrt)
	d.MaxDepth = 6
	d.MaxNodes = 11
	d.UnitCheck = false
	return d
}

// Delay returns the rate/delay DSL: RTT and rate signals for BBR-like and
// delay-reactive CCAs (olive in Listing 1), without the Vegas macro.
func Delay() *DSL {
	return &DSL{
		Name:      "delay",
		Signals:   delaySignals(),
		Macros:    []Macro{MacroRenoInc, MacroRTTsSinceLoss},
		NumOps:    arithOps(),
		BoolOps:   []Op{OpLt, OpModEq},
		MaxDepth:  4,
		MaxNodes:  11,
		UnitCheck: true,
		Constants: DefaultConstants(),
	}
}

// Vegas returns the Vegas-family DSL: the delay DSL plus the vegas-diff
// and htcp-diff macros, which free up nodes for the conditional structure
// Vegas variants need (§6.3).
func Vegas() *DSL {
	d := Delay()
	d.Name = "vegas"
	d.Macros = append(d.Macros, MacroVegasDiff, MacroHTCPDiff)
	d.MaxDepth = 5
	// Table 2's Vegas-family fine-tuned handlers nest two conditionals
	// (17 nodes); the tighter 11-node variant ("Vegas-11") is built for
	// the Figure 6 experiments via explicit overrides.
	d.MaxNodes = 17
	return d
}

// Named returns a predefined sub-DSL by name.
func Named(name string) (*DSL, error) {
	switch name {
	case "reno":
		return Reno(), nil
	case "cubic":
		return Cubic(), nil
	case "delay":
		return Delay(), nil
	case "vegas":
		return Vegas(), nil
	default:
		return nil, fmt.Errorf("dsl: unknown sub-DSL %q (have reno, cubic, delay, vegas)", name)
	}
}

// DSLNames lists the predefined sub-DSLs.
func DSLNames() []string {
	names := []string{"reno", "cubic", "delay", "vegas"}
	sort.Strings(names)
	return names
}

// Elements counts the DSL's components (leaves + operators), the measure
// the paper sizes search spaces by.
func (d *DSL) Elements() int {
	return 1 /* cwnd */ + 1 /* const */ + len(d.Signals) + len(d.Macros) +
		len(d.NumOps) + len(d.BoolOps)
}

// Admits reports whether an expression stays within the DSL: every leaf
// and operator it uses must be available, and depth/size must fit. Gt
// counts as Lt availability (mirrored predicate).
func (d *DSL) Admits(n *Node) error {
	if dep := n.Depth(); dep > d.MaxDepth {
		return fmt.Errorf("dsl: depth %d exceeds %s-DSL bound %d", dep, d.Name, d.MaxDepth)
	}
	if d.MaxNodes > 0 && n.Size() > d.MaxNodes {
		return fmt.Errorf("dsl: %d nodes exceeds %s-DSL bound %d", n.Size(), d.Name, d.MaxNodes)
	}
	sigOK := map[Signal]bool{}
	for _, s := range d.Signals {
		sigOK[s] = true
	}
	macOK := map[Macro]bool{}
	for _, m := range d.Macros {
		macOK[m] = true
	}
	opOK := map[Op]bool{OpCwnd: true, OpConst: true, OpSignal: true, OpMacro: true}
	for _, o := range d.NumOps {
		opOK[o] = true
	}
	for _, o := range d.BoolOps {
		opOK[o] = true
		if o == OpLt {
			opOK[OpGt] = true
		}
	}
	var err error
	n.Walk(func(m *Node) {
		if err != nil {
			return
		}
		if !opOK[m.Op] {
			err = fmt.Errorf("dsl: operator %q not in %s-DSL", m.Op, d.Name)
			return
		}
		if m.Op == OpSignal && !sigOK[m.Sig] {
			err = fmt.Errorf("dsl: signal %q not in %s-DSL", m.Sig, d.Name)
		}
		if m.Op == OpMacro && !macOK[m.Mac] {
			err = fmt.Errorf("dsl: macro %q not in %s-DSL", m.Mac, d.Name)
		}
	})
	return err
}
