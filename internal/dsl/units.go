package dsl

import "fmt"

// Dim is a dimension vector over (bytes, seconds) with integer exponents —
// the quantifier-free finite-domain encoding the paper chose for its unit
// constraints (§4.1): ack-rate is bytes^1 * sec^-1, RTT is sec^1, and a
// handler's output must be bytes^1.
type Dim struct {
	Bytes int
	Secs  int
}

// Dimensionless is the zero dimension.
var Dimensionless = Dim{}

// DimBytes is the dimension of window sizes.
var DimBytes = Dim{Bytes: 1}

// String renders e.g. "bytes^1*sec^-1".
func (d Dim) String() string {
	switch {
	case d == Dimensionless:
		return "1"
	case d.Secs == 0:
		return fmt.Sprintf("bytes^%d", d.Bytes)
	case d.Bytes == 0:
		return fmt.Sprintf("sec^%d", d.Secs)
	default:
		return fmt.Sprintf("bytes^%d*sec^%d", d.Bytes, d.Secs)
	}
}

// Unit is the result of dimensional analysis: either a concrete dimension
// or polymorphic ("Poly"). Constants are unit-polymorphic — in the paper's
// SMT encoding every constant carries a free unit variable, which is what
// lets Cubic's C absorb packets/sec^3 and lets a conditional arm hold a
// bare 0. Any expression containing a free constant factor is polymorphic.
type Unit struct {
	D    Dim
	Poly bool
}

// String implements fmt.Stringer.
func (u Unit) String() string {
	if u.Poly {
		return "poly"
	}
	return u.D.String()
}

// maxExponent bounds dimension exponents during checking; expressions that
// exceed it are rejected as physically meaningless.
const maxExponent = 3

// inRange reports whether the dimension's exponents are within bounds.
func (d Dim) inRange() bool {
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	return abs(d.Bytes) <= maxExponent && abs(d.Secs) <= maxExponent
}

// signalDims gives each signal its physical dimension.
var signalDims = map[Signal]Dim{
	SigMSS:           DimBytes,
	SigAcked:         DimBytes,
	SigTimeSinceLoss: {Secs: 1},
	SigRTT:           {Secs: 1},
	SigMinRTT:        {Secs: 1},
	SigMaxRTT:        {Secs: 1},
	SigAckRate:       {Bytes: 1, Secs: -1},
	SigRTTGradient:   Dimensionless,
	SigWMax:          DimBytes,
}

// macroDims gives each macro its physical dimension (derivable from its
// definition; pre-computed for clarity).
var macroDims = map[Macro]Dim{
	MacroRenoInc:       DimBytes,      // acked*mss/cwnd
	MacroVegasDiff:     Dimensionless, // sec * bytes/sec / bytes
	MacroHTCPDiff:      Dimensionless, // sec / sec
	MacroRTTsSinceLoss: Dimensionless, // sec / sec
}

// ErrUnits is returned when an expression fails dimensional analysis.
type ErrUnits struct {
	Node   *Node
	Reason string
}

// Error implements error.
func (e *ErrUnits) Error() string {
	return fmt.Sprintf("dsl: unit error at %q: %s", e.Node, e.Reason)
}

// UnitOf computes the expression's unit. Cube triples exponents; cube root
// requires all exponents divisible by 3 — with integer exponents,
// bytes^(1/3) is not representable, which is exactly the paper's stated
// limitation for Cubic (§5.5).
func UnitOf(n *Node) (Unit, error) {
	switch n.Op {
	case OpCwnd:
		return Unit{D: DimBytes}, nil
	case OpSignal:
		return Unit{D: signalDims[n.Sig]}, nil
	case OpMacro:
		return Unit{D: macroDims[n.Mac]}, nil
	case OpConst:
		return Unit{Poly: true}, nil
	case OpAdd, OpSub:
		a, err := UnitOf(n.Kids[0])
		if err != nil {
			return Unit{}, err
		}
		b, err := UnitOf(n.Kids[1])
		if err != nil {
			return Unit{}, err
		}
		return joinEqual(n, a, b, "adding")
	case OpMul, OpDiv:
		a, err := UnitOf(n.Kids[0])
		if err != nil {
			return Unit{}, err
		}
		b, err := UnitOf(n.Kids[1])
		if err != nil {
			return Unit{}, err
		}
		if a.Poly || b.Poly {
			// A free constant factor can shift the product to any
			// dimension.
			return Unit{Poly: true}, nil
		}
		var d Dim
		if n.Op == OpMul {
			d = Dim{Bytes: a.D.Bytes + b.D.Bytes, Secs: a.D.Secs + b.D.Secs}
		} else {
			d = Dim{Bytes: a.D.Bytes - b.D.Bytes, Secs: a.D.Secs - b.D.Secs}
		}
		if !d.inRange() {
			return Unit{}, &ErrUnits{Node: n, Reason: "exponent out of range"}
		}
		return Unit{D: d}, nil
	case OpCond:
		if err := checkBoolUnits(n.Kids[0]); err != nil {
			return Unit{}, err
		}
		a, err := UnitOf(n.Kids[1])
		if err != nil {
			return Unit{}, err
		}
		b, err := UnitOf(n.Kids[2])
		if err != nil {
			return Unit{}, err
		}
		return joinEqual(n, a, b, "branches")
	case OpCube:
		a, err := UnitOf(n.Kids[0])
		if err != nil {
			return Unit{}, err
		}
		if a.Poly {
			return a, nil
		}
		d := Dim{Bytes: 3 * a.D.Bytes, Secs: 3 * a.D.Secs}
		if !d.inRange() {
			return Unit{}, &ErrUnits{Node: n, Reason: "cube exponent out of range"}
		}
		return Unit{D: d}, nil
	case OpCbrt:
		a, err := UnitOf(n.Kids[0])
		if err != nil {
			return Unit{}, err
		}
		if a.Poly {
			return a, nil
		}
		if a.D.Bytes%3 != 0 || a.D.Secs%3 != 0 {
			return Unit{}, &ErrUnits{Node: n, Reason: "cube root of non-cubic dimension"}
		}
		return Unit{D: Dim{Bytes: a.D.Bytes / 3, Secs: a.D.Secs / 3}}, nil
	default:
		return Unit{}, &ErrUnits{Node: n, Reason: "boolean where number expected"}
	}
}

// joinEqual unifies two units that must agree (sum operands, conditional
// branches): a polymorphic side adopts the other side's dimension.
func joinEqual(n *Node, a, b Unit, what string) (Unit, error) {
	switch {
	case a.Poly && b.Poly:
		return Unit{Poly: true}, nil
	case a.Poly:
		return b, nil
	case b.Poly:
		return a, nil
	case a.D != b.D:
		return Unit{}, &ErrUnits{Node: n, Reason: fmt.Sprintf("%s %s and %s", what, a.D, b.D)}
	default:
		return a, nil
	}
}

// checkBoolUnits validates a comparison: both operands must share a
// dimension, with polymorphic sides (calibration constants like
// "cwnd % 2.7") unifying freely.
func checkBoolUnits(n *Node) error {
	if !n.Op.IsBool() {
		return &ErrUnits{Node: n, Reason: "number where boolean expected"}
	}
	a, err := UnitOf(n.Kids[0])
	if err != nil {
		return err
	}
	b, err := UnitOf(n.Kids[1])
	if err != nil {
		return err
	}
	_, err = joinEqual(n, a, b, "comparing")
	return err
}

// CheckHandlerUnits verifies the whole-expression contract: a cwnd-on-ACK
// handler must produce bytes (or be polymorphic — a free constant can
// always be assigned bytes-valued units).
func CheckHandlerUnits(n *Node) error {
	u, err := UnitOf(n)
	if err != nil {
		return err
	}
	if !u.Poly && u.D != DimBytes {
		return &ErrUnits{Node: n, Reason: fmt.Sprintf("handler produces %s, want bytes", u.D)}
	}
	return nil
}
