// Package plot renders time series as ASCII charts — enough to eyeball the
// CWND trajectories behind the paper's figures (the observed trace vs the
// synthesized and fine-tuned handlers' replays) directly in a terminal.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dist"
)

// glyphs assigns each series a drawing character, in registration order.
var glyphs = []byte{'*', '+', 'o', 'x', '#'}

// Chart is a fixed-size ASCII canvas with labeled axes.
type Chart struct {
	// Width and Height are the plot area dimensions in characters.
	Width, Height int
	// Title is printed above the canvas.
	Title string
	// YLabel names the value axis (default "cwnd (MSS)").
	YLabel string

	names  []string
	series []dist.Series
}

// New returns a chart with sensible terminal dimensions.
func New(title string) *Chart {
	return &Chart{Width: 72, Height: 18, Title: title, YLabel: "cwnd (MSS)"}
}

// Add registers a named series. At most five series are drawable.
func (c *Chart) Add(name string, s dist.Series) {
	c.names = append(c.names, name)
	c.series = append(c.series, s)
}

// Render draws the chart.
func (c *Chart) Render() string {
	if len(c.series) == 0 {
		return c.Title + "\n(no series)\n"
	}
	w, h := c.Width, c.Height
	if w < 16 {
		w = 16
	}
	if h < 4 {
		h = 4
	}

	// Global ranges.
	tMin, tMax := math.Inf(1), math.Inf(-1)
	vMin, vMax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.Times {
			tMin = math.Min(tMin, s.Times[i])
			tMax = math.Max(tMax, s.Times[i])
			vMin = math.Min(vMin, s.Values[i])
			vMax = math.Max(vMax, s.Values[i])
		}
	}
	if !isFinite(tMin, tMax, vMin, vMax) {
		return c.Title + "\n(non-finite series)\n"
	}
	if tMax <= tMin {
		tMax = tMin + 1
	}
	if vMax <= vMin {
		vMax = vMin + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.series {
		g := glyphs[si%len(glyphs)]
		for i := range s.Times {
			x := int(float64(w-1) * (s.Times[i] - tMin) / (tMax - tMin))
			y := int(float64(h-1) * (s.Values[i] - vMin) / (vMax - vMin))
			row := h - 1 - y
			if row >= 0 && row < h && x >= 0 && x < w {
				if grid[row][x] == ' ' || grid[row][x] == g {
					grid[row][x] = g
				} else {
					grid[row][x] = '@' // overlap marker
				}
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, row := range grid {
		switch i {
		case 0:
			fmt.Fprintf(&b, "%8.1f |%s|\n", vMax, row)
		case h - 1:
			fmt.Fprintf(&b, "%8.1f |%s|\n", vMin, row)
		default:
			fmt.Fprintf(&b, "%8s |%s|\n", "", row)
		}
	}
	fmt.Fprintf(&b, "%8s  %-10.2fs%*s%.2fs\n", "", tMin, w-12, "", tMax)
	// Legend.
	var legend []string
	for i, n := range c.names {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[i%len(glyphs)], n))
	}
	sort.Strings(legend)
	fmt.Fprintf(&b, "%8s  %s   [@ overlap, y: %s]\n", "", strings.Join(legend, "   "), c.YLabel)
	return b.String()
}

func isFinite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
