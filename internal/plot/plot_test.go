package plot

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
)

func ramp(n int, slope float64) dist.Series {
	s := dist.Series{Times: make([]float64, n), Values: make([]float64, n)}
	for i := 0; i < n; i++ {
		s.Times[i] = float64(i)
		s.Values[i] = slope * float64(i)
	}
	return s
}

func TestRenderBasics(t *testing.T) {
	c := New("sawtooth")
	c.Add("observed", ramp(100, 1))
	out := c.Render()
	if !strings.Contains(out, "sawtooth") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no glyphs drawn")
	}
	if !strings.Contains(out, "observed") {
		t.Error("legend missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + time axis + legend
	if len(lines) != 1+18+2 {
		t.Errorf("rendered %d lines", len(lines))
	}
}

func TestRenderMultipleSeries(t *testing.T) {
	c := New("two")
	c.Add("a", ramp(50, 1))
	c.Add("b", ramp(50, 2))
	out := c.Render()
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("glyphs missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	c := New("empty")
	out := c.Render()
	if !strings.Contains(out, "no series") {
		t.Errorf("empty chart rendered %q", out)
	}
}

func TestRenderNonFinite(t *testing.T) {
	c := New("nan")
	s := ramp(10, 1)
	s.Values[3] = math.NaN()
	c.Add("bad", s)
	if out := c.Render(); !strings.Contains(out, "non-finite") {
		t.Errorf("NaN series rendered %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := New("flat")
	s := dist.Series{Times: []float64{0, 1, 2}, Values: []float64{5, 5, 5}}
	c.Add("flat", s)
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not drawn:\n%s", out)
	}
}

func TestRenderTinyDimensionsClamped(t *testing.T) {
	c := New("tiny")
	c.Width, c.Height = 1, 1
	c.Add("a", ramp(5, 1))
	out := c.Render()
	if len(out) == 0 {
		t.Error("tiny chart rendered nothing")
	}
}
