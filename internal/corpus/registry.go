package corpus

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// Registry keeps one warm SketchCorpus per DSL configuration, keyed by
// Options.ConfigHash — the daemon's corpus pool. Get serves repeat
// configurations from memory, restores evicted ones from the snapshot
// directory when one is configured, and builds cold ones last. Save
// persists every live corpus so the next process starts warm.
//
// Observability (on the registry's obs.Registry):
//
//	counters  corpus.registry_hits (warm in-memory serves),
//	          corpus.registry_snapshot_loads (restored from disk),
//	          corpus.registry_builds (cold enumerations),
//	          corpus.snapshot_saves
//	gauges    corpus.registry_corpora
type Registry struct {
	mu      sync.Mutex
	dir     string // snapshot directory; "" disables persistence
	obsv    *obs.Registry
	corpora map[string]*SketchCorpus
}

// NewRegistry returns a corpus registry persisting snapshots under dir
// ("" keeps everything in memory only). The obs registry receives every
// corpus's instruments.
func NewRegistry(dir string, obsv *obs.Registry) *Registry {
	return &Registry{dir: dir, obsv: obsv, corpora: map[string]*SketchCorpus{}}
}

// snapshotPath names a config's snapshot file: DSL name for the humans,
// config hash for the machines.
func (r *Registry) snapshotPath(opts Options) string {
	return filepath.Join(r.dir, fmt.Sprintf("%s-%s.snapshot", opts.DSL.Name, opts.ConfigHash()))
}

// Get returns the corpus for opts, building or restoring it on first use.
// opts.Obs is overridden with the registry's own obs registry so every
// corpus reports into one place.
func (r *Registry) Get(opts Options) (*SketchCorpus, error) {
	if opts.DSL == nil {
		return nil, fmt.Errorf("corpus: registry Get with nil DSL")
	}
	opts.Obs = r.obsv
	key := opts.ConfigHash()
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.corpora[key]; ok {
		r.obsv.Counter("corpus.registry_hits").Inc()
		return c, nil
	}
	var c *SketchCorpus
	if r.dir != "" {
		if loaded, err := LoadSnapshotFile(r.snapshotPath(opts), opts); err == nil {
			c = loaded
			r.obsv.Counter("corpus.registry_snapshot_loads").Inc()
		} else if !os.IsNotExist(err) {
			// A torn, stale-version or mismatched snapshot is not fatal —
			// fall back to enumeration — but leave a trace of why.
			r.obsv.Flight().Note("corpus", "snapshot_load_failed", 1)
		}
	}
	if c == nil {
		built, err := New(opts)
		if err != nil {
			return nil, err
		}
		c = built
		r.obsv.Counter("corpus.registry_builds").Inc()
	}
	r.corpora[key] = c
	r.obsv.Gauge("corpus.registry_corpora").Set(float64(len(r.corpora)))
	return c, nil
}

// Prewarm materializes a config's full sketch space (Get + Prewarm) so
// later jobs are pure cache reads, and persists it immediately when a
// snapshot directory is configured.
func (r *Registry) Prewarm(ctx context.Context, opts Options, workers int) (*SketchCorpus, error) {
	c, err := r.Get(opts)
	if err != nil {
		return nil, err
	}
	c.Prewarm(ctx, workers)
	if r.dir != "" && ctx.Err() == nil {
		if err := c.SaveSnapshot(r.snapshotPathFor(c)); err != nil {
			return nil, err
		}
		r.obsv.Counter("corpus.snapshot_saves").Inc()
	}
	return c, nil
}

// snapshotPathFor names a live corpus's snapshot file.
func (r *Registry) snapshotPathFor(c *SketchCorpus) string {
	return filepath.Join(r.dir, fmt.Sprintf("%s-%s.snapshot", c.d.Name, c.cfgHash))
}

// Save persists every live corpus to the snapshot directory (no-op
// without one). Safe during jobs: WriteSnapshot copies under the bucket
// locks.
func (r *Registry) Save() error {
	r.mu.Lock()
	corpora := make([]*SketchCorpus, 0, len(r.corpora))
	for _, c := range r.corpora {
		corpora = append(corpora, c)
	}
	r.mu.Unlock()
	if r.dir == "" {
		return nil
	}
	var first error
	for _, c := range corpora {
		if err := c.SaveSnapshot(r.snapshotPathFor(c)); err != nil && first == nil {
			first = err
			continue
		}
		r.obsv.Counter("corpus.snapshot_saves").Inc()
	}
	return first
}

// Close stops every corpus's enumerators. Get after Close still works
// (the daemon only calls it on shutdown).
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.corpora {
		c.Close()
	}
}
