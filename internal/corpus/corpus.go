// Package corpus implements batch synthesis over a fleet of traces: a
// SketchCorpus holds everything about the search space that is independent
// of any particular trace — the enumerated, canonicalized sketches of every
// bucket and their compiled register programs — and a batch engine (Run)
// schedules per-trace synthesis jobs that all share it. The paper runs
// Abagnale over 16 CCAs × many network settings (§5); sharing the
// trace-independent work is what makes that corpus-scale use affordable in
// one process.
//
// Observability (on the registry the corpus was built with):
//
//	counters  corpus.sketches_shared, corpus.sketches_enumerated,
//	          corpus.program_cache_hits, corpus.program_cache_misses
//	gauges    corpus.buckets
//
// sketches_shared counts sketches served from the already-materialized
// cache — enumeration work some earlier Take (this trace's or another's)
// already paid for — while sketches_enumerated counts fresh pulls.
package corpus

import (
	"context"
	"errors"
	"hash/fnv"
	"iter"
	"sync"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/enum"
	"repro/internal/obs"
)

// Options configures a corpus build. Zero values match core's defaults, so
// a corpus built with only the DSL set is exactly equivalent to the
// per-run enumeration of a zero-value core.Options run.
type Options struct {
	// DSL is the sub-DSL whose sketch space the corpus holds (required).
	DSL *dsl.DSL
	// BucketCap bounds sketches materialized per bucket. Default
	// core.DefaultBucketCap.
	BucketCap int
	// ScanBudget bounds candidate constructions per bucket enumerator
	// over the corpus's lifetime. Default core.DefaultScanBudget.
	ScanBudget int
	// Obs receives the corpus counters (including enum.* for the
	// enumeration work the corpus absorbs on behalf of its runs).
	Obs *obs.Registry
}

// progShards is the number of lock stripes of the program cache; keys are
// spread by FNV-32a hash so concurrent trace jobs compiling different
// sketches rarely contend.
const progShards = 16

// progShardCap bounds one stripe of the program cache (random eviction,
// like replay's per-scorer cache). 16 shards × 2048 entries ≈ 32k
// programs, a few hundred bytes each — the corpus's compiled memory stays
// in the tens of megabytes even for DSLs whose sketch space overflows it.
const progShardCap = 2048

// SketchCorpus is the immutable-from-the-outside shared sketch space: per
// bucket, a lazily-extended cache of canonical sketches in enumeration
// order; across buckets, a sharded compiled-program cache keyed by
// canonical form. It implements core.SketchSource and
// replay.ProgramSource, and is safe for concurrent use by many synthesis
// runs.
//
// Sharing is sound because everything handed out is effectively immutable:
// sketch nodes have their canonical key memoized before publication and
// are only read afterwards (completions Bind clones), and compiled
// Programs never mutate after CompileProgram — per-candidate constants are
// patched into each worker's private Exec scratch.
type SketchCorpus struct {
	d          *dsl.DSL
	bucketCap  int
	scanBudget int
	cfgHash    string
	obsv       *obs.Registry

	keys    []dsl.OpSet
	buckets map[dsl.OpSet]*corpusBucket

	progs [progShards]progShard

	cShared     *obs.Counter
	cEnumerated *obs.Counter
	cProgHits   *obs.Counter
	cProgMisses *obs.Counter
}

// corpusBucket is one bucket's shared enumeration state. The mutex
// serializes cache extension across trace jobs; readers of the returned
// prefix need no lock because entries are never mutated once appended.
type corpusBucket struct {
	mu        sync.Mutex
	ops       dsl.OpSet
	cache     []*dsl.Node
	next      func() (*dsl.Node, bool)
	stop      func()
	exhausted bool
	// loaded counts cache entries restored from a snapshot. A fresh
	// enumerator (started only if a Take outgrows the restored prefix)
	// must discard that many yields before appending: enumeration order
	// is deterministic, so the discard replays exactly the constructions
	// that produced the restored prefix, leaving the enumerator — scan
	// budget included — in the same state as an unbroken run.
	loaded int
}

// progShard is one lock stripe of the compiled-program cache.
type progShard struct {
	mu sync.Mutex
	m  map[string]*dsl.Program
}

// New builds a corpus for the DSL. Bucket keys are computed eagerly;
// sketches materialize on demand (call Prewarm to force the whole space).
func New(opts Options) (*SketchCorpus, error) {
	if opts.DSL == nil {
		return nil, errors.New("corpus: Options.DSL is required")
	}
	if opts.BucketCap == 0 {
		opts.BucketCap = core.DefaultBucketCap
	}
	if opts.ScanBudget == 0 {
		opts.ScanBudget = core.DefaultScanBudget
	}
	e := enum.New(opts.DSL)
	e.Obs = opts.Obs
	c := &SketchCorpus{
		d:           opts.DSL,
		bucketCap:   opts.BucketCap,
		scanBudget:  opts.ScanBudget,
		cfgHash:     opts.ConfigHash(),
		obsv:        opts.Obs,
		keys:        e.Buckets(),
		cShared:     opts.Obs.Counter("corpus.sketches_shared"),
		cEnumerated: opts.Obs.Counter("corpus.sketches_enumerated"),
		cProgHits:   opts.Obs.Counter("corpus.program_cache_hits"),
		cProgMisses: opts.Obs.Counter("corpus.program_cache_misses"),
	}
	c.buckets = make(map[dsl.OpSet]*corpusBucket, len(c.keys))
	for _, ops := range c.keys {
		c.buckets[ops] = &corpusBucket{ops: ops}
	}
	for i := range c.progs {
		c.progs[i].m = make(map[string]*dsl.Program)
	}
	opts.Obs.Gauge("corpus.buckets").Set(float64(len(c.keys)))
	return c, nil
}

// Buckets implements core.SketchSource.
func (c *SketchCorpus) Buckets() []dsl.OpSet { return c.keys }

// Take implements core.SketchSource: the first n sketches of the bucket in
// enumeration order. The corpus's own BucketCap/ScanBudget bound the
// materialization (together with the caller's capN, whichever is tighter),
// so every run sees the same prefix regardless of which run forced the
// enumeration.
func (c *SketchCorpus) Take(ops dsl.OpSet, n, capN, _ int) ([]*dsl.Node, bool) {
	b := c.buckets[ops]
	if b == nil {
		return nil, true
	}
	if capN > c.bucketCap || capN <= 0 {
		capN = c.bucketCap
	}
	if n > capN {
		n = capN
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cached := len(b.cache)
	if b.next == nil && !b.exhausted && len(b.cache) < n {
		e := enum.New(c.d)
		e.Obs = c.obsv
		b.next, b.stop = iter.Pull(e.BucketLimited(b.ops, c.scanBudget))
		for i := 0; i < b.loaded && !b.exhausted; i++ {
			if _, ok := b.next(); !ok {
				b.exhausted = true
				b.stop()
			}
		}
	}
	for len(b.cache) < n && !b.exhausted {
		sk, ok := b.next()
		if !ok {
			b.exhausted = true
			b.stop()
			break
		}
		// Memoize the canonical key (recursively, so every subtree's cache
		// fills too) before the sketch becomes visible to other runs: Key
		// is lazily cached and must never be computed concurrently.
		sk.Key()
		b.cache = append(b.cache, sk)
		if len(b.cache) >= capN {
			b.exhausted = true
			b.stop()
		}
	}
	if n > len(b.cache) {
		n = len(b.cache)
	}
	if n <= cached {
		c.cShared.Add(int64(n))
	} else {
		c.cShared.Add(int64(cached))
		c.cEnumerated.Add(int64(n - cached))
	}
	// Exhaustion is per call, not the bucket's global state: another run
	// (or Prewarm) may have extended the cache far past this caller's n,
	// and reporting the bucket exhausted on a short prefix would end the
	// caller's refinement early — batch results must match standalone runs.
	exhausted := n >= capN || (b.exhausted && n >= len(b.cache))
	return b.cache[:n], exhausted
}

// Release implements core.SketchSource. It is a no-op: a bucket one trace
// prunes may still be live for another, and the corpus may outlive the
// batch. Use Close to stop the enumerators.
func (c *SketchCorpus) Release(dsl.OpSet) {}

// Close stops every live enumerator. Sketches already materialized stay
// valid; further Takes return only what is cached.
func (c *SketchCorpus) Close() {
	for _, ops := range c.keys {
		b := c.buckets[ops]
		b.mu.Lock()
		if b.next != nil && !b.exhausted {
			b.stop()
			b.exhausted = true
		}
		b.next = nil
		b.mu.Unlock()
	}
}

// Prewarm materializes every bucket up to the corpus's cap, fanning the
// buckets out over at most workers goroutines. It makes a subsequent batch
// pure cache reads — useful when the batch is large enough that lazy
// first-toucher enumeration would serialize jobs on the bucket locks.
func (c *SketchCorpus) Prewarm(ctx context.Context, workers int) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, ops := range c.keys {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(ops dsl.OpSet) {
			defer wg.Done()
			defer func() { <-sem }()
			c.Take(ops, c.bucketCap, c.bucketCap, c.scanBudget)
		}(ops)
	}
	wg.Wait()
}

// Program implements replay.ProgramSource: the compiled register program
// for the expression's canonical form, compiling and caching on first use.
func (c *SketchCorpus) Program(key string, sk *dsl.Node) *dsl.Program {
	h := fnv.New32a()
	h.Write([]byte(key))
	sh := &c.progs[h.Sum32()%progShards]
	sh.mu.Lock()
	if p, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		c.cProgHits.Inc()
		return p
	}
	// Compile inside the lock: compilation is microseconds, and holding the
	// stripe prevents duplicate work when jobs hit the same sketch at once.
	p := dsl.CompileProgram(sk)
	if len(sh.m) >= progShardCap {
		for k := range sh.m { // drop an arbitrary entry
			delete(sh.m, k)
			break
		}
	}
	sh.m[key] = p
	sh.mu.Unlock()
	c.cProgMisses.Inc()
	return p
}

// Counters snapshots the corpus.* counters of the registry the corpus was
// built with — the cache-efficiency section of the batch report.
func (c *SketchCorpus) Counters() map[string]int64 {
	return c.obsv.CounterValues("corpus.")
}
