package corpus

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// jobsFor simulates n reno traces under varied network settings and
// returns them as batch jobs. Cached: simulation dominates test time.
var jobCache sync.Map

func jobsFor(t *testing.T, n int) []Job {
	t.Helper()
	if v, ok := jobCache.Load(n); ok {
		return v.([]Job)
	}
	var jobs []Job
	for i := 0; i < n; i++ {
		cfg := sim.Config{
			CCA:       "reno",
			Bandwidth: float64(6+2*i) * 1e6 / 8,
			RTT:       time.Duration(30+15*i) * time.Millisecond,
			Duration:  12 * time.Second,
			Seed:      int64(i + 1),
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.AnalyzeRecords(res.Records)
		if err != nil {
			t.Fatal(err)
		}
		segs := tr.Split(16)
		if len(segs) == 0 {
			t.Fatalf("trace %d produced no segments", i)
		}
		jobs = append(jobs, Job{Name: fmt.Sprintf("reno-%d", i), Segments: segs})
	}
	jobCache.Store(n, jobs)
	return jobs
}

// quickOpts keeps per-trace synthesis fast enough for unit tests.
func quickOpts() core.Options {
	return core.Options{
		DSL:            dsl.Reno(),
		InitialSamples: 8,
		MaxHandlers:    3000,
		MaxCompletions: 12,
		ScanBudget:     20000,
		Seed:           1,
	}
}

// TestBatchMatchesSequential pins the engine's determinism guarantee: a
// concurrent batch over a shared corpus returns, for every trace, exactly
// the answer a standalone core.Synthesize returns — same handler, same
// distance, same iteration count — regardless of scheduling. Running under
// -race this doubles as the corpus race exercise (J>1, 4 traces, shared
// bucket caches and program cache).
func TestBatchMatchesSequential(t *testing.T) {
	jobs := jobsFor(t, 4)

	var want []core.Result
	for _, j := range jobs {
		r, err := core.Synthesize(context.Background(), j.Segments, quickOpts())
		if err != nil {
			t.Fatalf("%s: sequential: %v", j.Name, err)
		}
		want = append(want, *r)
	}

	res, err := Run(context.Background(), jobs, RunOptions{
		Jobs: 2,
		Core: quickOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != len(jobs) {
		t.Fatalf("got %d trace results, want %d", len(res.Traces), len(jobs))
	}
	for i, tr := range res.Traces {
		if tr.Err != nil {
			t.Fatalf("%s: batch: %v", tr.Name, tr.Err)
		}
		if tr.Handler != want[i].Handler.String() {
			t.Errorf("%s: batch handler %q != sequential %q", tr.Name, tr.Handler, want[i].Handler)
		}
		if tr.Distance != want[i].Distance {
			t.Errorf("%s: batch distance %v != sequential %v", tr.Name, tr.Distance, want[i].Distance)
		}
		if len(tr.Stats.Iterations) != len(want[i].Stats.Iterations) {
			t.Errorf("%s: batch ran %d iterations, sequential %d",
				tr.Name, len(tr.Stats.Iterations), len(want[i].Stats.Iterations))
		}
	}
}

// TestBatchCounters asserts the report's cache instruments are live on a
// small batch: two identical-DSL traces must share enumerated sketches and
// hit the compiled-program cache.
func TestBatchCounters(t *testing.T) {
	jobs := jobsFor(t, 4)[:2]
	reg := obs.New()
	res, err := Run(context.Background(), jobs, RunOptions{
		Jobs: 2,
		Core: quickOpts(),
		Obs:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"corpus.sketches_shared",
		"corpus.sketches_enumerated",
		"corpus.program_cache_hits",
		"corpus.program_cache_misses",
	} {
		if res.Corpus[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0 (have: %v)", name, res.Corpus[name], res.Corpus)
		}
	}
	rep := res.Report(2)
	if rep.Jobs != 2 || len(rep.Traces) != 2 {
		t.Fatalf("report shape wrong: jobs=%d traces=%d", rep.Jobs, len(rep.Traces))
	}
	for _, tr := range rep.Traces {
		if tr.Handler == "" || tr.Error != "" {
			t.Errorf("%s: handler=%q error=%q", tr.Name, tr.Handler, tr.Error)
		}
		if tr.HandlersScored <= 0 || tr.Iterations <= 0 {
			t.Errorf("%s: empty stats in report: %+v", tr.Name, tr)
		}
	}
	// Every job ran as its own board entry and its own corpus.job span —
	// the live view /runs and trace-event exports are built from.
	snaps := reg.Board().Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("board has %d runs, want 2: %+v", len(snaps), snaps)
	}
	for i, s := range snaps {
		if s.Name != jobs[i].Name {
			t.Errorf("board run %d = %q, want %q", i, s.Name, jobs[i].Name)
		}
		if !s.Done || s.Phase != "done" || s.BestDistance == nil {
			t.Errorf("%s: board entry not finished: %+v", s.Name, s)
		}
	}
	if ph := reg.Report().Phases["corpus.job"]; ph.Count != 2 {
		t.Errorf("corpus.job span count = %d, want 2", ph.Count)
	}
}

// TestCorpusSkipsReenumeration is the regression test for the tentpole's
// enumeration sharing: a run given a prewarmed corpus must do zero
// candidate enumeration of its own — enum.candidates on the run's registry
// stays 0 across all refinement iterations — while a control run without
// the corpus enumerates as before.
func TestCorpusSkipsReenumeration(t *testing.T) {
	jobs := jobsFor(t, 4)[:1]
	opts := quickOpts()

	corpusReg := obs.New()
	c, err := New(Options{
		DSL:        opts.DSL,
		BucketCap:  core.DefaultBucketCap,
		ScanBudget: opts.ScanBudget,
		Obs:        corpusReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Prewarm(context.Background(), 4)
	if corpusReg.CounterValues("enum.")["enum.candidates"] == 0 {
		t.Fatal("prewarm did not enumerate (enum.candidates == 0 on corpus registry)")
	}

	runReg := obs.New()
	o := opts
	o.Sketches = c
	o.Programs = c
	o.Obs = runReg
	r, err := core.Synthesize(context.Background(), jobs[0].Segments, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stats.Iterations) < 2 {
		t.Fatalf("run finished in %d iterations; need >= 2 to observe re-enumeration", len(r.Stats.Iterations))
	}
	if got := runReg.CounterValues("enum.")["enum.candidates"]; got != 0 {
		t.Errorf("corpus-backed run enumerated %d candidates itself, want 0", got)
	}

	ctrlReg := obs.New()
	o2 := opts
	o2.Obs = ctrlReg
	if _, err := core.Synthesize(context.Background(), jobs[0].Segments, o2); err != nil {
		t.Fatal(err)
	}
	if got := ctrlReg.CounterValues("enum.")["enum.candidates"]; got == 0 {
		t.Error("control run without corpus reported no enumeration; counter is dead")
	}
}

// TestBatchCancellation checks that cancelling the context stops the batch
// and surfaces Interrupted rather than hanging on the shared gate.
func TestBatchCancellation(t *testing.T) {
	jobs := jobsFor(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts: hardest case for the gate
	res, err := Run(ctx, jobs, RunOptions{Jobs: 2, Core: quickOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Error("cancelled batch not marked Interrupted")
	}
}

// TestTakeDeterministicPrefix checks the corpus's core sharing contract:
// concurrent Takes of growing sizes on the same bucket always observe
// prefixes of one canonical enumeration order.
func TestTakeDeterministicPrefix(t *testing.T) {
	c, err := New(Options{DSL: dsl.Reno(), ScanBudget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buckets := c.Buckets()
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	ref, _ := c.Take(buckets[0], 64, core.DefaultBucketCap, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 8 * (w + 1)
			got, _ := c.Take(buckets[0], n, core.DefaultBucketCap, 0)
			if len(got) > len(ref) {
				t.Errorf("worker %d: got %d sketches, ref has %d", w, len(got), len(ref))
				return
			}
			for i := range got {
				if got[i].Key() != ref[i].Key() {
					t.Errorf("worker %d: sketch %d diverges from canonical order", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
