package corpus

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dsl"
)

// Corpus snapshots persist the enumerated, canonicalized sketch space to
// disk so a daemon restart is a load, not a re-enumeration: a warm start
// from a snapshot performs zero candidate constructions (enum.candidates
// stays 0) and serves byte-identical Take prefixes, so a job repeated
// across a restart returns the identical handler and distance.
//
// Format: a gob stream of snapshotFile — a version tag, the DSL-config
// hash the corpus was built under, and per bucket the materialized sketch
// prefix plus its exhaustion flag. Sketch trees gob-encode directly
// (dsl.Node has only exported fields; the unexported canonical-key memo is
// recomputed at load). Compiled register programs are NOT serialized:
// dsl.CompileProgram is deterministic and microseconds per sketch, so the
// loader recompiles the persisted sketches into the program cache, which
// is both smaller on disk and immune to VM-encoding drift across builds.
//
// Versioning rules: SnapshotVersion bumps whenever the gob shape, the
// enumeration order, canonicalization, or anything else that decides which
// sketches exist (or their order) changes; a snapshot with a different
// version or a different config hash is rejected at load and the caller
// falls back to enumeration. Snapshots are written atomically
// (temp + rename), so a crashed writer never leaves a torn file behind.

// SnapshotVersion tags the on-disk format. Bump on any change to the gob
// shape or to enumeration/canonicalization order.
const SnapshotVersion = 1

// snapshotFile is the gob-encoded snapshot shape.
type snapshotFile struct {
	Version int
	Config  string
	DSLName string
	Buckets []snapshotBucket
}

// snapshotBucket is one bucket's persisted enumeration state.
type snapshotBucket struct {
	Ops       dsl.OpSet
	Sketches  []*dsl.Node
	Exhausted bool
}

// ConfigHash fingerprints everything that decides which sketch space a
// corpus holds: the full DSL definition (name alone is not enough — tests
// and ablations override depth/node budgets) and the corpus's
// materialization bounds. Two Options with equal hashes produce corpora
// that serve identical Take prefixes; snapshots are keyed by this hash.
func (o Options) ConfigHash() string {
	if o.BucketCap == 0 {
		o.BucketCap = core.DefaultBucketCap
	}
	if o.ScanBudget == 0 {
		o.ScanBudget = core.DefaultScanBudget
	}
	d := o.DSL
	h := fnv.New64a()
	fmt.Fprintf(h, "dsl=%s|depth=%d|nodes=%d|unit=%t|", d.Name, d.MaxDepth, d.MaxNodes, d.UnitCheck)
	for _, s := range d.Signals {
		fmt.Fprintf(h, "s%d,", int(s))
	}
	for _, m := range d.Macros {
		fmt.Fprintf(h, "m%d,", int(m))
	}
	for _, op := range d.NumOps {
		fmt.Fprintf(h, "n%d,", int(op))
	}
	for _, op := range d.BoolOps {
		fmt.Fprintf(h, "b%d,", int(op))
	}
	for _, c := range d.Constants {
		fmt.Fprintf(h, "k%g,", c)
	}
	fmt.Fprintf(h, "|cap=%d|scan=%d", o.BucketCap, o.ScanBudget)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ConfigHash returns the hash of the configuration the corpus was built
// with — the snapshot key.
func (c *SketchCorpus) ConfigHash() string { return c.cfgHash }

// WriteSnapshot serializes the corpus's materialized sketch space to w.
// Safe to call while jobs are running: each bucket is copied under its
// lock, so the snapshot is a consistent per-bucket prefix (entries are
// immutable once published).
func (c *SketchCorpus) WriteSnapshot(w io.Writer) error {
	sf := snapshotFile{
		Version: SnapshotVersion,
		Config:  c.cfgHash,
		DSLName: c.d.Name,
	}
	for _, ops := range c.keys {
		b := c.buckets[ops]
		b.mu.Lock()
		sketches := append([]*dsl.Node(nil), b.cache...)
		exhausted := b.exhausted
		b.mu.Unlock()
		if len(sketches) == 0 && !exhausted {
			continue // never touched; nothing to restore
		}
		sf.Buckets = append(sf.Buckets, snapshotBucket{
			Ops:       ops,
			Sketches:  sketches,
			Exhausted: exhausted,
		})
	}
	sort.Slice(sf.Buckets, func(i, j int) bool { return sf.Buckets[i].Ops < sf.Buckets[j].Ops })
	return gob.NewEncoder(w).Encode(&sf)
}

// SaveSnapshot writes the snapshot to path atomically and durably: a temp
// file in the same directory, fsync'd before the rename and with the
// directory fsync'd after, so a process killed at any instant — SIGKILL'd
// shard workers included — leaves either the old snapshot or the complete
// new one, never a torn gob, even across a host crash that drops dirty
// page-cache state. Parent directories are created as needed, and stale
// temp files abandoned by crashed writers are swept (age-gated, so a
// concurrent writer's in-flight temp in a shared snapshot dir is never
// touched).
func (c *SketchCorpus) SaveSnapshot(path string) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sweepStaleTemps(dir)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	if err := c.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Durability of the rename itself: fsync the directory so the new
	// entry survives a crash. Best-effort — some filesystems reject
	// directory fsync, and the rename already guarantees atomicity.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// staleTempAge is how old an abandoned .snapshot-* temp must be before the
// sweeper removes it. Generous enough that no live writer — even one
// serializing a huge corpus on a loaded host — holds a temp this long.
const staleTempAge = time.Hour

// sweepStaleTemps garbage-collects temp files left behind by writers that
// died between CreateTemp and Rename. Shared snapshot dirs can have
// several concurrent writers (shard workers, a daemon), so only temps
// older than staleTempAge are removed; a freshly created temp always
// belongs to someone.
func sweepStaleTemps(dir string) {
	matches, err := filepath.Glob(filepath.Join(dir, ".snapshot-*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		if fi, err := os.Stat(m); err == nil && time.Since(fi.ModTime()) > staleTempAge {
			os.Remove(m)
		}
	}
}

// LoadSnapshot builds a corpus for opts and restores the sketch space from
// the gob stream. The snapshot must carry the current SnapshotVersion and
// the exact ConfigHash of opts; anything else is an error (callers fall
// back to a cold New). Restored sketches have their canonical keys
// memoized and their register programs compiled into the program cache, so
// a subsequent run performs zero enumeration (a bucket saved
// non-exhausted resumes its enumerator only if a Take outgrows the
// restored prefix).
func LoadSnapshot(r io.Reader, opts Options) (*SketchCorpus, error) {
	var sf snapshotFile
	if err := gob.NewDecoder(r).Decode(&sf); err != nil {
		return nil, fmt.Errorf("corpus: decoding snapshot: %w", err)
	}
	if sf.Version != SnapshotVersion {
		return nil, fmt.Errorf("corpus: snapshot version %d, want %d", sf.Version, SnapshotVersion)
	}
	c, err := New(opts)
	if err != nil {
		return nil, err
	}
	if sf.Config != c.cfgHash {
		return nil, fmt.Errorf("corpus: snapshot config %s does not match %s (DSL %s)",
			sf.Config, c.cfgHash, opts.DSL.Name)
	}
	loaded := 0
	for _, sb := range sf.Buckets {
		b := c.buckets[sb.Ops]
		if b == nil {
			return nil, fmt.Errorf("corpus: snapshot bucket %s not in the %s DSL's space", sb.Ops, opts.DSL.Name)
		}
		for _, sk := range sb.Sketches {
			// Recompute the canonical key (the unexported memo does not
			// survive gob) before publication, exactly like Take, and warm
			// the compiled-program cache from it.
			c.Program(sk.Key(), sk)
		}
		b.cache = sb.Sketches
		b.loaded = len(sb.Sketches)
		b.exhausted = sb.Exhausted
		loaded += len(sb.Sketches)
	}
	c.obsv.Counter("corpus.snapshot_sketches_loaded").Add(int64(loaded))
	return c, nil
}

// LoadSnapshotFile is LoadSnapshot over a file.
func LoadSnapshotFile(path string, opts Options) (*SketchCorpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(f, opts)
}
