package corpus

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Job is one trace to synthesize a handler for.
type Job struct {
	// Name identifies the trace in the batch report (typically the pcap
	// path or the CCA label).
	Name string
	// Segments is the trace's segment set, as produced by trace.Analyze
	// and optionally thinned by trace.SelectDiverse.
	Segments []*trace.Segment
}

// RunOptions configures a batch run.
type RunOptions struct {
	// Jobs is the number of traces synthesized concurrently (default
	// GOMAXPROCS). Total CPU is bounded separately by the shared gate, so
	// raising Jobs above it only overlaps scheduling, not work.
	Jobs int
	// Core is the per-trace synthesis configuration. Sketches, Programs,
	// Gate and Obs are overwritten by the engine; every other field
	// (budgets, metric, seed) applies to each trace identically — the
	// batch answer for a trace matches a standalone core.Synthesize with
	// these options.
	Core core.Options
	// Corpus, when set, is the shared sketch space; it must have been
	// built with the same DSL, BucketCap and ScanBudget as Core (after
	// defaulting). When nil the engine builds one from Core.
	Corpus *SketchCorpus
	// Procs caps the batch's total scoring concurrency (the shared CPU
	// gate). Default GOMAXPROCS. Benchmarks pin it to compare a
	// single-core in-process baseline against sharded workers honestly.
	Procs int
	// Obs receives engine and corpus instruments and is passed to every
	// trace job. Default: Core.Obs, else a private registry (the report
	// needs the corpus counters).
	Obs *obs.Registry
}

// TraceResult is one trace's synthesis outcome, in input order.
type TraceResult struct {
	Name     string
	Handler  string
	Sketch   string
	Distance float64
	Stats    core.SearchStats
	Duration time.Duration
	// Err is the trace's own failure (empty sketch space, cancellation);
	// it does not abort the rest of the batch.
	Err error
}

// BatchResult aggregates a batch run.
type BatchResult struct {
	Traces []TraceResult
	// Wall is the whole batch's wall-clock time.
	Wall time.Duration
	// Corpus snapshots the corpus.* counters at the end of the run.
	Corpus map[string]int64
	// Interrupted reports that the context was cancelled; per-trace rows
	// carry whatever best-so-far their runs salvaged.
	Interrupted bool
}

// Run synthesizes a handler for every job, sharing one sketch corpus and
// one CPU gate across all of them: at most opts.Jobs traces are in flight,
// and across those, at most GOMAXPROCS scoring workers execute at once —
// two-level scheduling with no oversubscription. Cancelling ctx stops the
// batch promptly; finished and in-flight traces report their best-so-far.
//
// Results are deterministic and independent of scheduling: every trace
// sees the same enumeration prefixes (the corpus serves identical Take
// prefixes no matter which job forces them) and runs with the same seed,
// so a batch answer equals the standalone single-trace answer.
func Run(ctx context.Context, jobs []Job, opts RunOptions) (*BatchResult, error) {
	if opts.Jobs < 1 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}
	reg := opts.Obs
	if reg == nil {
		reg = opts.Core.Obs
	}
	if reg == nil {
		reg = obs.New()
	}
	base := opts.Core
	base.Obs = reg
	if base.BucketCap <= 0 {
		base.BucketCap = core.DefaultBucketCap
	}
	if base.ScanBudget <= 0 {
		base.ScanBudget = core.DefaultScanBudget
	}
	c := opts.Corpus
	if c == nil {
		var err error
		c, err = New(Options{
			DSL:        base.DSL,
			BucketCap:  base.BucketCap,
			ScanBudget: base.ScanBudget,
			Obs:        reg,
		})
		if err != nil {
			return nil, err
		}
		defer c.Close()
	}
	base.Sketches = c
	base.Programs = c

	procs := opts.Procs
	if procs < 1 {
		procs = runtime.GOMAXPROCS(0)
	}
	gate := core.NewGate(procs)
	jsem := make(chan struct{}, opts.Jobs)

	// Register every job on the live board up front so /runs shows the
	// whole batch — queued jobs included — from the first request.
	for _, job := range jobs {
		reg.Board().Start(job.Name, int64(base.MaxHandlers)).SetPhase("queued")
	}

	start := time.Now()
	res := &BatchResult{Traces: make([]TraceResult, len(jobs))}
	var wg sync.WaitGroup
	for i, job := range jobs {
		if ctx.Err() != nil {
			res.Traces[i] = TraceResult{Name: job.Name, Err: ctx.Err()}
			reg.Board().Start(job.Name, 0).Finish(ctx.Err())
			continue
		}
		jsem <- struct{}{}
		wg.Add(1)
		go func(i int, job Job) {
			defer wg.Done()
			defer func() { <-jsem }()
			o := base
			o.Gate = gate
			o.RunName = job.Name
			jsp := reg.StartSpan("corpus.job").SetAttr("trace", job.Name)
			t0 := time.Now()
			r, err := core.Synthesize(ctx, job.Segments, o)
			jsp.End()
			tr := TraceResult{Name: job.Name, Duration: time.Since(t0), Err: err}
			if r != nil {
				tr.Handler = r.Handler.String()
				tr.Sketch = r.Sketch.String()
				tr.Distance = r.Distance
				tr.Stats = r.Stats
			}
			res.Traces[i] = tr
		}(i, job)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	res.Corpus = c.Counters()
	res.Interrupted = ctx.Err() != nil
	for i := range res.Traces {
		res.Interrupted = res.Interrupted || res.Traces[i].Stats.Interrupted
	}
	return res, nil
}

// Report is the JSON shape of a batch run, emitted by cmd/abagnale's batch
// mode.
type Report struct {
	Jobs        int              `json:"jobs"`
	WallSec     float64          `json:"wall_sec"`
	Interrupted bool             `json:"interrupted,omitempty"`
	Corpus      map[string]int64 `json:"corpus"`
	// Shard carries the shard.Report of a sharded batch (any to avoid an
	// import cycle: internal/shard imports corpus). Omitted when the batch
	// ran in-process.
	Shard  any           `json:"shard,omitempty"`
	Traces []TraceReport `json:"traces"`
}

// TraceReport is one trace's row in the batch report.
type TraceReport struct {
	Name           string           `json:"name"`
	Handler        string           `json:"handler,omitempty"`
	Sketch         string           `json:"sketch,omitempty"`
	Distance       core.ReportFloat `json:"distance"`
	Iterations     int              `json:"iterations"`
	HandlersScored int              `json:"handlers_scored"`
	Interrupted    bool             `json:"interrupted,omitempty"`
	DurationSec    float64          `json:"duration_sec"`
	Error          string           `json:"error,omitempty"`
}

// Report converts the batch result into its JSON form. jobs is the
// concurrency the batch ran with (recorded for reproducibility).
func (b *BatchResult) Report(jobs int) *Report {
	rep := &Report{
		Jobs:        jobs,
		WallSec:     b.Wall.Seconds(),
		Interrupted: b.Interrupted,
		Corpus:      b.Corpus,
		Traces:      make([]TraceReport, len(b.Traces)),
	}
	for i, t := range b.Traces {
		tr := TraceReport{
			Name:           t.Name,
			Handler:        t.Handler,
			Sketch:         t.Sketch,
			Distance:       core.ReportFloat(t.Distance),
			Iterations:     len(t.Stats.Iterations),
			HandlersScored: t.Stats.HandlersScored,
			Interrupted:    t.Stats.Interrupted,
			DurationSec:    t.Duration.Seconds(),
		}
		if t.Err != nil {
			tr.Error = t.Err.Error()
		}
		rep.Traces[i] = tr
	}
	return rep
}
