package corpus

import (
	"bytes"
	"context"
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dsl"
	"repro/internal/obs"
)

// snapOpts is a corpus config small enough to prewarm in a unit test.
func snapOpts(obsv *obs.Registry) Options {
	return Options{DSL: dsl.Reno(), BucketCap: 64, ScanBudget: 20000, Obs: obsv}
}

// TestSnapshotRoundTrip pins the warm-start property at the corpus layer:
// a corpus restored from a snapshot serves byte-identical Take prefixes
// for every bucket while performing zero candidate enumeration of its own.
func TestSnapshotRoundTrip(t *testing.T) {
	cold, err := New(snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	cold.Prewarm(context.Background(), 4)

	var buf bytes.Buffer
	if err := cold.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	warmReg := obs.New()
	warm, err := LoadSnapshot(&buf, snapOpts(warmReg))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()

	if warm.ConfigHash() != cold.ConfigHash() {
		t.Fatalf("config hash drifted on load: %s != %s", warm.ConfigHash(), cold.ConfigHash())
	}
	for _, ops := range cold.Buckets() {
		want, wantEx := cold.Take(ops, 64, 0, 0)
		got, gotEx := warm.Take(ops, 64, 0, 0)
		if len(got) != len(want) || gotEx != wantEx {
			t.Fatalf("bucket %s: warm Take %d sketches (exhausted %t), cold %d (%t)",
				ops, len(got), gotEx, len(want), wantEx)
		}
		for i := range got {
			if got[i].Key() != want[i].Key() {
				t.Fatalf("bucket %s: warm sketch %d = %s, cold %s", ops, i, got[i].Key(), want[i].Key())
			}
		}
	}
	if got := warmReg.CounterValues("enum.")["enum.candidates"]; got != 0 {
		t.Errorf("warm corpus enumerated %d candidates, want 0", got)
	}
	if got := warmReg.CounterValues("corpus.")["corpus.snapshot_sketches_loaded"]; got == 0 {
		t.Error("corpus.snapshot_sketches_loaded not counted")
	}
}

// TestSnapshotResumeBeyondPrefix checks a snapshot taken before the space
// was fully materialized: a warm Take larger than the restored prefix
// resumes the deterministic enumerator and still matches a cold corpus.
func TestSnapshotResumeBeyondPrefix(t *testing.T) {
	opts := snapOpts(nil)
	partial, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer partial.Close()
	buckets := partial.Buckets()
	// Materialize a short prefix of every bucket, then snapshot mid-way.
	for _, ops := range buckets {
		partial.Take(ops, 8, 0, 0)
	}
	var buf bytes.Buffer
	if err := partial.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	warm, err := LoadSnapshot(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	cold, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	for _, ops := range buckets {
		want, wantEx := cold.Take(ops, 32, 0, 0)
		got, gotEx := warm.Take(ops, 32, 0, 0)
		if len(got) != len(want) || gotEx != wantEx {
			t.Fatalf("bucket %s: resumed Take %d (exhausted %t), cold %d (%t)",
				ops, len(got), gotEx, len(want), wantEx)
		}
		for i := range got {
			if got[i].Key() != want[i].Key() {
				t.Fatalf("bucket %s: resumed sketch %d diverges from cold enumeration", ops, i)
			}
		}
	}
}

// TestSnapshotRejectsMismatch pins the versioning rules: a wrong format
// version or a different DSL config must be rejected at load.
func TestSnapshotRejectsMismatch(t *testing.T) {
	c, err := New(snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Take(c.Buckets()[0], 4, 0, 0)
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// Different DSL → config hash mismatch.
	other := snapOpts(nil)
	other.DSL = dsl.Cubic()
	if _, err := LoadSnapshot(bytes.NewReader(snap), other); err == nil ||
		!strings.Contains(err.Error(), "config") {
		t.Errorf("config mismatch not rejected: %v", err)
	}
	// Different bounds → config hash mismatch too.
	widened := snapOpts(nil)
	widened.BucketCap = 128
	if _, err := LoadSnapshot(bytes.NewReader(snap), widened); err == nil {
		t.Error("bucket-cap mismatch not rejected")
	}
	// Wrong format version.
	var vbuf bytes.Buffer
	if err := gob.NewEncoder(&vbuf).Encode(&snapshotFile{Version: SnapshotVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(&vbuf, snapOpts(nil)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch not rejected: %v", err)
	}
}

// TestRegistryWarmStart exercises the registry tiering: build + save on
// the first process, snapshot load (zero enumeration) on the second,
// in-memory hit within one process.
func TestRegistryWarmStart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DSL: dsl.Reno(), BucketCap: 64, ScanBudget: 20000}

	reg1 := obs.New()
	r1 := NewRegistry(dir, reg1)
	c1, err := r1.Prewarm(context.Background(), opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reg1.CounterValues("corpus.")["corpus.registry_builds"] != 1 {
		t.Error("first Get did not build")
	}
	again, err := r1.Get(opts)
	if err != nil {
		t.Fatal(err)
	}
	if again != c1 {
		t.Error("second Get did not serve the warm in-memory corpus")
	}
	if reg1.CounterValues("corpus.")["corpus.registry_hits"] != 1 {
		t.Error("registry hit not counted")
	}
	files, err := filepath.Glob(filepath.Join(dir, "reno-*.snapshot"))
	if err != nil || len(files) != 1 {
		t.Fatalf("snapshot file not written: %v %v", files, err)
	}
	if fi, err := os.Stat(files[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot file empty: %v", err)
	}
	r1.Close()

	// "Restart": a fresh registry over the same directory loads instead of
	// enumerating.
	reg2 := obs.New()
	r2 := NewRegistry(dir, reg2)
	defer r2.Close()
	c2, err := r2.Get(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.CounterValues("corpus.")["corpus.registry_snapshot_loads"]; got != 1 {
		t.Errorf("registry_snapshot_loads = %d, want 1", got)
	}
	for _, ops := range c2.Buckets() {
		c2.Take(ops, 64, 0, 0)
	}
	if got := reg2.CounterValues("enum.")["enum.candidates"]; got != 0 {
		t.Errorf("warm-started registry enumerated %d candidates, want 0", got)
	}
}

// TestSaveSnapshotCrashSafe pins the atomic-save contract: a save never
// leaves its own temp file behind, an abandoned temp from a crashed writer
// is swept once it ages out, and a concurrent writer's fresh temp in a
// shared snapshot dir is left alone.
func TestSaveSnapshotCrashSafe(t *testing.T) {
	c, err := New(snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Prewarm(context.Background(), 4)

	dir := t.TempDir()
	// A crashed writer's abandoned temp (aged out) and a live concurrent
	// writer's fresh one.
	stale := filepath.Join(dir, ".snapshot-stale")
	fresh := filepath.Join(dir, ".snapshot-fresh")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "reno-test.snapshot")
	if err := c.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp not swept")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp of a concurrent writer was removed")
	}
	os.Remove(fresh)
	temps, err := filepath.Glob(filepath.Join(dir, ".snapshot-*"))
	if err != nil || len(temps) != 0 {
		t.Errorf("save left temps behind: %v", temps)
	}

	// The saved file is a complete, loadable snapshot serving the same
	// space.
	warm, err := LoadSnapshotFile(path, snapOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if warm.ConfigHash() != c.ConfigHash() {
		t.Errorf("loaded snapshot hash %s, want %s", warm.ConfigHash(), c.ConfigHash())
	}

	// Saving over an existing snapshot replaces it atomically (same
	// content, no error, still loadable).
	if err := c.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(path, snapOpts(nil)); err != nil {
		t.Fatal(err)
	}
}
