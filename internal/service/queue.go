package service

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by Enqueue when admission would exceed the
// queue's global capacity. The HTTP layer translates it into 429 Too
// Many Requests with a Retry-After header — backpressure is explicit,
// never an unbounded in-memory backlog.
var ErrQueueFull = errors.New("service: job queue full")

// jobQueue is a bounded multi-tenant queue. Admission counts jobs
// globally (one capacity shared by everyone), but dequeue order is
// round-robin across tenants' FIFOs: a tenant that submits a hundred
// jobs cannot starve one that submits a single job — the single job
// waits behind at most one job per other tenant, not behind the whole
// backlog.
type jobQueue struct {
	mu     sync.Mutex
	cap    int
	size   int
	closed bool
	fifos  map[string][]*job
	// ring holds tenant names in first-seen order; rr is the next ring
	// slot Dequeue inspects. Empty FIFOs stay in the ring (tenant churn
	// is low) and are skipped.
	ring []string
	rr   int
	// ready carries one token per queued job so Dequeue can block on a
	// channel (and therefore also on ctx) without spinning.
	ready chan struct{}
}

func newJobQueue(capacity int) *jobQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &jobQueue{
		cap:   capacity,
		fifos: map[string][]*job{},
		ready: make(chan struct{}, capacity),
	}
}

// Enqueue admits j under its tenant's FIFO, or fails fast with
// ErrQueueFull.
func (q *jobQueue) Enqueue(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("service: queue closed")
	}
	if q.size >= q.cap {
		return ErrQueueFull
	}
	if _, ok := q.fifos[j.tenant]; !ok {
		q.ring = append(q.ring, j.tenant)
	}
	q.fifos[j.tenant] = append(q.fifos[j.tenant], j)
	q.size++
	q.ready <- struct{}{}
	return nil
}

// Dequeue blocks until a job is available (round-robin across tenants)
// or ctx is cancelled / the queue closed, reporting ok=false for both.
func (q *jobQueue) Dequeue(ctx context.Context) (*job, bool) {
	select {
	case _, ok := <-q.ready:
		if !ok {
			return nil, false
		}
	case <-ctx.Done():
		return nil, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	// A token guarantees at least one non-empty FIFO; scan the ring from
	// the round-robin cursor.
	for i := 0; i < len(q.ring); i++ {
		t := q.ring[(q.rr+i)%len(q.ring)]
		fifo := q.fifos[t]
		if len(fifo) == 0 {
			continue
		}
		j := fifo[0]
		q.fifos[t] = fifo[1:]
		q.size--
		q.rr = (q.rr + i + 1) % len(q.ring)
		return j, true
	}
	return nil, false // unreachable unless closed raced the token
}

// Close wakes every blocked Dequeue with ok=false. Queued jobs are left
// in place (the daemon reports them as still queued at shutdown).
func (q *jobQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	close(q.ready)
}

// Len reports the number of queued jobs.
func (q *jobQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Position reports j's 1-based position within its tenant's FIFO, or 0
// when j is no longer queued.
func (q *jobQueue) Position(j *job) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, queued := range q.fifos[j.tenant] {
		if queued == j {
			return i + 1
		}
	}
	return 0
}
