package service

import (
	"context"
	"encoding/base64"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config sizes the synthesis service.
type Config struct {
	// QueueDepth bounds admitted-but-unstarted jobs across all tenants
	// (default 64). A full queue rejects with ErrQueueFull / HTTP 429.
	QueueDepth int
	// Workers is the number of jobs run concurrently (default 2). Total
	// scoring CPU is bounded separately by one shared core.Gate sized to
	// GOMAXPROCS, so workers contend for cores, never oversubscribe them.
	Workers int
	// SnapshotDir persists the per-config sketch corpora across restarts
	// ("" keeps them in memory only — every cold start re-enumerates).
	SnapshotDir string
	// Obs receives all service, corpus, and search instruments. Default:
	// a private registry.
	Obs *obs.Registry
}

// job is the service's mutable record of one submitted JobSpec.
type job struct {
	id     string
	tenant string
	spec   JobSpec // defaults resolved; TraceB64 cleared after decode
	pcap   []byte  // decoded upload (nil for trace_path jobs)

	mu        sync.Mutex
	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       error
	result    *JobResult
}

// Service accepts, queues, and runs synthesis jobs over a pool of warm
// sketch corpora. One Service is one daemon; tests drive it directly and
// cmd/abagnaled wraps it in a process.
type Service struct {
	cfg     Config
	reg     *obs.Registry
	corpora *corpus.Registry
	queue   *jobQueue
	gate    core.Gate

	mu   sync.Mutex
	jobs map[string]*job
	seq  int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	gQueue  *obs.Gauge
	gActive *obs.Gauge
}

// New assembles a Service; Start launches its workers.
func New(cfg Config) *Service {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		reg:     cfg.Obs,
		corpora: corpus.NewRegistry(cfg.SnapshotDir, cfg.Obs),
		queue:   newJobQueue(cfg.QueueDepth),
		gate:    core.NewGate(runtime.GOMAXPROCS(0)),
		jobs:    map[string]*job{},
		ctx:     ctx,
		cancel:  cancel,
		gQueue:  cfg.Obs.Gauge("service.queue_depth"),
		gActive: cfg.Obs.Gauge("service.active_jobs"),
	}
	return s
}

// Obs returns the registry all service instruments report into.
func (s *Service) Obs() *obs.Registry { return s.reg }

// Start launches the worker pool. It returns immediately.
func (s *Service) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.queue.Dequeue(s.ctx)
				if !ok {
					return
				}
				s.gQueue.Set(float64(s.queue.Len()))
				s.runJob(j)
			}
		}()
	}
}

// Close stops accepting work, cancels running jobs, waits for the
// workers, and persists the corpus pool (warm restarts).
func (s *Service) Close() error {
	s.cancel()
	s.queue.Close()
	s.wg.Wait()
	err := s.corpora.Save()
	s.corpora.Close()
	return err
}

// SaveSnapshots persists every live corpus now (also done on Close).
func (s *Service) SaveSnapshots() error { return s.corpora.Save() }

// Prewarm materializes (or restores) the corpus for the named sub-DSL
// and persists it, so the first job of that config is a cache read.
func (s *Service) Prewarm(ctx context.Context, dslName string) error {
	d, err := dsl.Named(dslName)
	if err != nil {
		return err
	}
	_, err = s.corpora.Prewarm(ctx, corpus.Options{
		DSL:        d,
		BucketCap:  core.DefaultBucketCap,
		ScanBudget: core.DefaultScanBudget,
	}, runtime.GOMAXPROCS(0))
	return err
}

// Submit validates and admits a job. A full queue returns ErrQueueFull
// (HTTP 429); an invalid spec returns a plain error (HTTP 400).
func (s *Service) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.validate(); err != nil {
		return JobStatus{}, err
	}
	spec = spec.withDefaults()
	// Resolve the search config now: a bad DSL name, metric, or trace
	// encoding is the submitter's error, not a failed job.
	if _, _, _, err := pickSearch(spec); err != nil {
		return JobStatus{}, err
	}
	var pcap []byte
	if spec.TraceB64 != "" {
		b, err := base64.StdEncoding.DecodeString(spec.TraceB64)
		if err != nil {
			return JobStatus{}, fmt.Errorf("trace_b64 is not valid base64: %w", err)
		}
		pcap = b
		spec.TraceB64 = "" // never echo megabytes back
	}

	s.mu.Lock()
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.seq),
		tenant:    spec.Tenant,
		spec:      spec,
		pcap:      pcap,
		state:     JobQueued,
		submitted: time.Now(),
	}
	if j.spec.Name == "" {
		j.spec.Name = j.id
	}
	s.jobs[j.id] = j
	s.mu.Unlock()

	if err := s.queue.Enqueue(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		s.reg.Counter("service.jobs_rejected").Inc()
		return JobStatus{}, err
	}
	s.gQueue.Set(float64(s.queue.Len()))
	s.reg.Counter("service.jobs_submitted").Inc()
	s.reg.Counter("service.tenant_submitted." + sanitizeTenant(spec.Tenant)).Inc()
	// Show the job on the live Board immediately; core adopts the same
	// run when it starts, so /runs tracks queued → searching → done.
	s.reg.Board().Start(j.id, int64(spec.Budget)).SetPhase("queued")
	return s.statusOf(j), nil
}

// Status reports one job.
func (s *Service) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return s.statusOf(j), true
}

// Jobs lists every job, newest first.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	sort.Slice(all, func(a, b int) bool { return all[a].id > all[b].id })
	out := make([]JobStatus, len(all))
	for i, j := range all {
		out[i] = s.statusOf(j)
	}
	return out
}

// Result returns a finished job's result. ok=false means unknown ID;
// a nil result with ok=true means the job has not finished (or failed —
// check Status).
func (s *Service) Result(id string) (*JobResult, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, true
}

// statusOf renders a job's wire status.
func (s *Service) statusOf(j *job) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		APIVersion:  APIVersion,
		State:       j.state,
		Tenant:      j.tenant,
		Spec:        j.spec,
		SubmittedAt: j.submitted,
	}
	if j.state == JobQueued {
		st.QueuePosition = s.queue.Position(j)
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// pickSearch resolves a spec's sub-DSL and metric exactly like the CLI's
// pickDSL: explicit dsl, else hint_cca's family, else vegas.
func pickSearch(spec JobSpec) (string, *dsl.DSL, dist.Metric, error) {
	name := spec.DSL
	if name == "" {
		if spec.HintCCA != "" {
			name = expr.DSLHint(spec.HintCCA)
		} else {
			name = "vegas"
		}
	}
	d, err := dsl.Named(name)
	if err != nil {
		return "", nil, nil, err
	}
	m, err := dist.ByName(spec.Metric)
	if err != nil {
		return "", nil, nil, err
	}
	return name, d, m, nil
}

// runJob executes one job start to finish on a worker goroutine.
func (s *Service) runJob(j *job) {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.gActive.Set(s.countActive())

	res, err := s.synthesize(j)

	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.err = err
	} else {
		j.state = JobDone
		j.result = res
	}
	j.mu.Unlock()
	s.gActive.Set(s.countActive())
	if err != nil {
		s.reg.Counter("service.jobs_failed").Inc()
		// core only finishes Board runs it started; analysis-stage
		// failures must close the queued entry themselves.
		s.reg.Board().Start(j.id, 0).Finish(err)
	} else {
		s.reg.Counter("service.jobs_completed").Inc()
	}
}

// synthesize is the job body: analyze the trace, fetch the warm corpus,
// run the search.
func (s *Service) synthesize(j *job) (*JobResult, error) {
	sp := s.reg.StartSpan("service.job").SetAttr("job", j.id).SetAttr("tenant", j.tenant)
	defer sp.End()

	_, d, m, err := pickSearch(j.spec)
	if err != nil {
		return nil, err
	}
	pcap := j.pcap
	if pcap == nil {
		pcap, err = os.ReadFile(j.spec.TracePath)
		if err != nil {
			return nil, err
		}
	}
	tr, err := trace.AnalyzeBytes(pcap)
	if err != nil {
		return nil, err
	}
	segs := tr.Split(j.spec.MinSegment)
	if len(segs) == 0 {
		return nil, fmt.Errorf("no usable trace segments (min_segment %d too high for %d samples?)",
			j.spec.MinSegment, len(tr.Samples))
	}

	c, err := s.corpora.Get(corpus.Options{
		DSL:        d,
		BucketCap:  core.DefaultBucketCap,
		ScanBudget: core.DefaultScanBudget,
	})
	if err != nil {
		return nil, err
	}

	start := time.Now()
	res, err := core.Synthesize(core.WithRunName(s.ctx, j.id), segs, core.Options{
		DSL:         d,
		Metric:      m,
		MaxHandlers: j.spec.Budget,
		Seed:        j.spec.Seed,
		Sketches:    c,
		Programs:    c,
		Gate:        s.gate,
		Obs:         s.reg,
	})
	if err != nil {
		return nil, err
	}
	handler := dsl.Simplify(res.Handler)
	return &JobResult{
		ID:         j.id,
		APIVersion: APIVersion,
		Name:       j.spec.Name,
		Synthesis: Synthesis{
			Handler:        handler.String(),
			Sketch:         res.Sketch.String(),
			Distance:       core.ReportFloat(res.Distance),
			Segments:       len(segs),
			Iterations:     len(res.Stats.Iterations),
			HandlersScored: res.Stats.HandlersScored,
			Interrupted:    res.Stats.Interrupted,
		},
		DurationSec: time.Since(start).Seconds(),
	}, nil
}

// countActive reports jobs currently running.
func (s *Service) countActive() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n float64
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == JobRunning {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// sanitizeTenant maps a tenant name onto the metric-name alphabet.
func sanitizeTenant(t string) string {
	out := []byte(t)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
