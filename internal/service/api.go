// Package service turns the batch synthesis engine into a long-running,
// multi-tenant daemon: trace-synthesis jobs arrive over HTTP, are admitted
// through a bounded queue with per-tenant round-robin fairness, and run
// against warm per-DSL-config sketch corpora (corpus.Registry) that
// persist across restarts as versioned snapshots. The paper offloads this
// search to a Ray cluster; here the cluster substrate is one process that
// never throws its enumeration work away.
//
// The job API is versioned: every wire type in this file is part of the
// /api/v1 contract. Backward-incompatible changes (removing or renaming a
// JSON field, changing a state string) require a new prefix; purely
// additive fields may ship within v1. The sharding coordinator planned in
// the ROADMAP reuses these types unchanged — JobSpec is the unit of work
// it will scatter, JobResult the unit it will gather.
package service

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

// APIVersion and APIPrefix name the current job-API contract. Handlers
// are mounted under APIPrefix on the shared observability mux.
const (
	APIVersion = "v1"
	APIPrefix  = "/api/v1"
)

// Job-parameter defaults, identical to cmd/abagnale's flag defaults so a
// spec that sets nothing but a trace gets the same answer through the
// daemon as through the CLI (daemon-vs-CLI determinism is test-pinned).
const (
	// DefaultBudget matches abagnale -budget.
	DefaultBudget = 120000
	// DefaultMinSegment matches abagnale -min-segment.
	DefaultMinSegment = 16
	// DefaultSeed matches abagnale -seed.
	DefaultSeed = 1
	// DefaultMetric matches abagnale -metric.
	DefaultMetric = "dtw"
	// DefaultTenant is the fairness key of specs that declare none.
	DefaultTenant = "anonymous"
)

// JobSpec is a trace-synthesis request — the POST /api/v1/jobs body.
// Exactly one of TraceB64 and TracePath must be set. Zero values select
// the documented defaults, which match the abagnale CLI flag defaults.
type JobSpec struct {
	// DSL is the sub-DSL to search (reno|cubic|delay|vegas). Empty defers
	// to HintCCA's family, then to "vegas" (the broadest), like the CLI.
	DSL string `json:"dsl,omitempty"`
	// HintCCA picks the sub-DSL from this CCA's family when DSL is empty.
	HintCCA string `json:"hint_cca,omitempty"`
	// Metric is the distance metric (dtw|euclidean|manhattan|frechet).
	Metric string `json:"metric,omitempty"`
	// Budget bounds the concrete handlers scored (abagnale -budget).
	Budget int `json:"budget,omitempty"`
	// MinSegment is the minimum ACK samples per trace segment.
	MinSegment int `json:"min_segment,omitempty"`
	// Seed drives all sampling; jobs are reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Tenant is the fairness key: queued jobs are dequeued round-robin
	// across tenants, so one tenant's backlog cannot starve another's.
	// The X-Abagnale-Tenant request header overrides an empty field.
	Tenant string `json:"tenant,omitempty"`
	// TraceB64 is the pcap capture, base64-encoded (standard encoding) —
	// the upload path. Elided from status echoes.
	TraceB64 string `json:"trace_b64,omitempty"`
	// TracePath is a daemon-readable pcap path — the reference path for
	// co-located clients and tests.
	TracePath string `json:"trace_path,omitempty"`
	// Name labels the job on the live Board (/runs) and in the result.
	// Empty defaults to the trace path, then the job ID.
	Name string `json:"name,omitempty"`
}

// withDefaults resolves the spec's zero values to the documented
// defaults.
func (s JobSpec) withDefaults() JobSpec {
	if s.Metric == "" {
		s.Metric = DefaultMetric
	}
	if s.Budget == 0 {
		s.Budget = DefaultBudget
	}
	if s.MinSegment == 0 {
		s.MinSegment = DefaultMinSegment
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if s.Tenant == "" {
		s.Tenant = DefaultTenant
	}
	if s.Name == "" {
		s.Name = s.TracePath
	}
	return s
}

// validate rejects specs that cannot run. Parameter errors surface as
// HTTP 400 at submission, never as a failed job.
func (s JobSpec) validate() error {
	if s.TraceB64 == "" && s.TracePath == "" {
		return errors.New("one of trace_b64 or trace_path is required")
	}
	if s.TraceB64 != "" && s.TracePath != "" {
		return errors.New("trace_b64 and trace_path are mutually exclusive")
	}
	if s.Budget < 0 {
		return fmt.Errorf("budget is negative (%d)", s.Budget)
	}
	if s.MinSegment < 0 {
		return fmt.Errorf("min_segment is negative (%d)", s.MinSegment)
	}
	return nil
}

// JobState is a job's lifecycle stage.
type JobState string

// Job lifecycle: queued → running → done | failed. These strings are part
// of the v1 contract.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobStatus is the GET /api/v1/jobs/{id} body (and the 202 body of a
// successful submission).
type JobStatus struct {
	// ID is the daemon-assigned job identifier.
	ID string `json:"id"`
	// APIVersion tags the contract this status was rendered under.
	APIVersion string `json:"api_version"`
	// State is the lifecycle stage.
	State JobState `json:"state"`
	// Tenant is the fairness key the job was admitted under.
	Tenant string `json:"tenant"`
	// QueuePosition is the job's 1-based position within its tenant's
	// FIFO while queued (0 once it leaves the queue).
	QueuePosition int `json:"queue_position,omitempty"`
	// Spec echoes the submitted spec with trace_b64 elided (it may be
	// megabytes).
	Spec JobSpec `json:"spec"`
	// SubmittedAt/StartedAt/FinishedAt trace the job's lifecycle.
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Error is the failure, when State is failed.
	Error string `json:"error,omitempty"`
}

// Synthesis is the deterministic portion of a job's outcome: for a fixed
// spec and trace it is identical across daemon restarts, warm or cold
// corpus, and between the daemon and the CLI — the property the
// warm-start and determinism tests pin byte-for-byte.
type Synthesis struct {
	// Handler is the synthesized cwnd-on-ACK expression (simplified).
	Handler string `json:"handler"`
	// Sketch is the sketch the handler was concretized from.
	Sketch string `json:"sketch"`
	// Distance is the handler's summed distance over all segments.
	Distance core.ReportFloat `json:"distance"`
	// Segments is how many trace segments the search scored against.
	Segments int `json:"segments"`
	// Iterations, HandlersScored and Interrupted summarize the search.
	Iterations     int  `json:"iterations"`
	HandlersScored int  `json:"handlers_scored"`
	Interrupted    bool `json:"interrupted,omitempty"`
}

// JobResult is the GET /api/v1/jobs/{id}/result body of a completed job.
type JobResult struct {
	// ID and Name identify the job; APIVersion tags the contract.
	ID         string `json:"id"`
	APIVersion string `json:"api_version"`
	Name       string `json:"name,omitempty"`
	// Synthesis is the deterministic outcome.
	Synthesis Synthesis `json:"synthesis"`
	// DurationSec is the job's wall-clock run time (excluded from
	// Synthesis so determinism stays byte-comparable).
	DurationSec float64 `json:"duration_sec"`
}

// APIIndex is the GET /api/v1/ body: a self-describing endpoint list.
type APIIndex struct {
	Version   string            `json:"version"`
	Endpoints map[string]string `json:"endpoints"`
}
