package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// TenantHeader lets a client set its fairness key without touching the
// spec body; a non-empty spec.Tenant wins.
const TenantHeader = "X-Abagnale-Tenant"

// Handler serves the versioned job API:
//
//	GET  /api/v1/            API index (versions, endpoints)
//	POST /api/v1/jobs        submit a JobSpec → 202 JobStatus | 400 | 429
//	GET  /api/v1/jobs        list jobs (JobStatus array, newest first)
//	GET  /api/v1/jobs/{id}   one job's JobStatus | 404
//	GET  /api/v1/jobs/{id}/result
//	                         finished job's JobResult | 202 while
//	                         queued/running | 500 when failed | 404
//	POST /api/v1/snapshot    persist the corpus pool now → {"saved":true}
//
// The handler expects to be mounted at APIPrefix on the observability
// mux (see Mounts), which also carries /runs and /events for streaming
// progress of the same job IDs.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(APIPrefix+"/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != APIPrefix+"/" && req.URL.Path != APIPrefix {
			http.NotFound(w, req)
			return
		}
		writeJSON(w, http.StatusOK, APIIndex{
			Version: APIVersion,
			Endpoints: map[string]string{
				"POST " + APIPrefix + "/jobs":              "submit a job (JobSpec body)",
				"GET " + APIPrefix + "/jobs":               "list jobs",
				"GET " + APIPrefix + "/jobs/{id}":          "job status",
				"GET " + APIPrefix + "/jobs/{id}/result":   "job result (202 until done)",
				"POST " + APIPrefix + "/snapshot":          "persist corpus snapshots",
				"GET /runs, /runs/{id}, /events, /metrics": "live progress (observability mux)",
			},
		})
	})
	mux.HandleFunc(APIPrefix+"/jobs", s.handleJobs)
	mux.HandleFunc(APIPrefix+"/jobs/", s.handleJob)
	mux.HandleFunc(APIPrefix+"/snapshot", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if err := s.SaveSnapshots(); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"saved": true})
	})
	return mux
}

// handleJobs is POST (submit) and GET (list) on the jobs collection.
func (s *Service) handleJobs(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Jobs())
	case http.MethodPost:
		var spec JobSpec
		dec := json.NewDecoder(req.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "bad JobSpec: "+err.Error())
			return
		}
		if spec.Tenant == "" {
			spec.Tenant = req.Header.Get(TenantHeader)
		}
		st, err := s.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			// Explicit backpressure: the queue is a fixed-size admission
			// buffer, not an elastic backlog. One second is the polling
			// granularity, not a promise of capacity.
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
		case err != nil:
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			writeJSON(w, http.StatusAccepted, st)
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}

// handleJob is GET /jobs/{id} and GET /jobs/{id}/result.
func (s *Service) handleJob(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(req.URL.Path, APIPrefix+"/jobs/")
	id, wantResult := rest, false
	if cut, ok := strings.CutSuffix(rest, "/result"); ok {
		id, wantResult = cut, true
	}
	st, ok := s.Status(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	if !wantResult {
		writeJSON(w, http.StatusOK, st)
		return
	}
	switch st.State {
	case JobDone:
		res, _ := s.Result(id)
		writeJSON(w, http.StatusOK, res)
	case JobFailed:
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("job %s failed: %s", id, st.Error))
	default:
		// Not finished yet: 202 with the status body, so one poll loop
		// serves both phases.
		writeJSON(w, http.StatusAccepted, st)
	}
}

// Mounts adapts the service for the observability mux: one subtree under
// APIPrefix, passed to obs.Serve / Registry.Handler.
func (s *Service) Mounts() []obs.Mount {
	return []obs.Mount{{Pattern: APIPrefix + "/", Handler: s.Handler()}}
}

// writeJSON renders v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError renders a JSON error body.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
