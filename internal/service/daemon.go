package service

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/replay"
)

// DefaultListen is the daemon's default bind address.
const DefaultListen = ":8080"

// DaemonOptions configures RunDaemon beyond the service sizing.
type DaemonOptions struct {
	// Listen is the HTTP bind address (default DefaultListen; ":0" picks
	// a free port, printed to Log).
	Listen string
	// Prewarm names sub-DSLs whose corpora are materialized (or restored
	// from snapshots) and persisted before the first job.
	Prewarm []string
	// Verbose attaches a live progress sink on Log.
	Verbose bool
	// Log receives startup lines and progress (default os.Stderr).
	Log io.Writer
	// Ready, when non-nil, receives the bound address once the server is
	// accepting — how tests and the CI smoke script learn a ":0" port.
	Ready chan<- string
}

// RunDaemon is the daemon run loop shared by cmd/abagnaled and abagnale
// -daemon: it builds the observability registry and event hub, mounts
// the service's /api/v1 next to /metrics, /runs and /events on one
// server, optionally prewarms corpora, and serves until ctx is
// cancelled. Shutdown persists the corpus pool so the next start is
// warm.
func RunDaemon(ctx context.Context, cfg Config, opts DaemonOptions) error {
	log := opts.Log
	if log == nil {
		log = os.Stderr
	}
	if opts.Listen == "" {
		opts.Listen = DefaultListen
	}

	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	reg.EnableFlight(obs.DefaultFlightEvents)
	if opts.Verbose {
		reg.Attach(obs.NewProgressSink(log))
	}
	hub := obs.NewEventHub()
	reg.Attach(hub)
	// Route the process-wide replay/metric/VM instruments to this
	// registry, like the CLIs do.
	replay.Observe(reg)
	dist.Observe(reg)
	dsl.Observe(reg)

	cfg.Obs = reg
	svc := New(cfg)

	srv, err := obs.Serve(opts.Listen, reg, hub, svc.Mounts()...)
	if err != nil {
		return err
	}
	fmt.Fprintf(log, "abagnaled: job API on http://%s%s/ (obs: /metrics /runs /events /flight)\n",
		srv.Addr(), APIPrefix)
	if cfg.SnapshotDir != "" {
		fmt.Fprintf(log, "abagnaled: corpus snapshots in %s\n", cfg.SnapshotDir)
	}
	if opts.Ready != nil {
		opts.Ready <- srv.Addr()
	}

	for _, name := range opts.Prewarm {
		if err := svc.Prewarm(ctx, name); err != nil {
			srv.Close()
			return fmt.Errorf("prewarm %s: %w", name, err)
		}
		fmt.Fprintf(log, "abagnaled: corpus %s warm\n", name)
	}
	svc.Start()

	<-ctx.Done()
	fmt.Fprintf(log, "abagnaled: shutting down (%s queued)\n", plural(svc.queue.Len(), "job"))
	closeErr := srv.Close()
	if err := svc.Close(); err != nil {
		return fmt.Errorf("persisting corpora on shutdown: %w", err)
	}
	if err := reg.Close(); err != nil && closeErr == nil {
		closeErr = err
	}
	return closeErr
}

// plural renders "1 job" / "3 jobs".
func plural(n int, noun string) string {
	if n == 1 {
		return fmt.Sprintf("1 %s", noun)
	}
	return fmt.Sprintf("%d %ss", n, noun)
}

// ParsePrewarm splits a comma-separated -prewarm flag value.
func ParsePrewarm(v string) []string {
	if v == "" {
		return nil
	}
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
