package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// renoPcap simulates one reno trace and renders it as pcap bytes — the
// job payload every test submits. Cached: simulation dominates test time.
var (
	pcapOnce  sync.Once
	pcapBytes []byte
)

func renoPcap(t *testing.T) []byte {
	t.Helper()
	pcapOnce.Do(func() {
		res, err := sim.Run(sim.Config{
			CCA:       "reno",
			Bandwidth: 10e6 / 8,
			RTT:       40 * time.Millisecond,
			Duration:  12 * time.Second,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		pcapBytes, err = res.WritePcap()
		if err != nil {
			t.Fatal(err)
		}
	})
	if pcapBytes == nil {
		t.Skip("pcap fixture failed in an earlier test")
	}
	return pcapBytes
}

// quickSpec is a job small enough for a unit test: the tiny budget is the
// only divergence from the documented defaults.
func quickSpec() JobSpec {
	return JobSpec{DSL: "reno", Budget: 3000}
}

// waitJob polls until the job leaves the queue/running states.
func waitJob(t *testing.T, s *Service, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestQueueFairness pins the admission contract: dequeue order is
// round-robin across tenants, so an uneven backlog (A floods, B submits
// one) still serves B's job second, not fifth.
func TestQueueFairness(t *testing.T) {
	q := newJobQueue(16)
	mk := func(tenant, id string) *job { return &job{id: id, tenant: tenant} }
	for _, j := range []*job{
		mk("alpha", "a1"), mk("alpha", "a2"), mk("alpha", "a3"), mk("alpha", "a4"),
		mk("beta", "b1"), mk("beta", "b2"),
	} {
		if err := q.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"a1", "b1", "a2", "b2", "a3", "a4"}
	for i, w := range want {
		j, ok := q.Dequeue(context.Background())
		if !ok {
			t.Fatalf("dequeue %d: queue closed early", i)
		}
		if j.id != w {
			t.Fatalf("dequeue %d = %s, want %s (round-robin violated)", i, j.id, w)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d left", q.Len())
	}
}

// TestQueueBounded pins the backpressure contract at the queue layer.
func TestQueueBounded(t *testing.T) {
	q := newJobQueue(2)
	if err := q.Enqueue(&job{id: "1", tenant: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(&job{id: "2", tenant: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(&job{id: "3", tenant: "t"}); err != ErrQueueFull {
		t.Fatalf("third enqueue: got %v, want ErrQueueFull", err)
	}
	// Draining one slot reopens admission.
	if _, ok := q.Dequeue(context.Background()); !ok {
		t.Fatal("dequeue failed")
	}
	if err := q.Enqueue(&job{id: "4", tenant: "t"}); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
	// A cancelled Dequeue returns promptly instead of blocking forever.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	empty := newJobQueue(1)
	if _, ok := empty.Dequeue(ctx); ok {
		t.Error("cancelled Dequeue reported a job")
	}
}

// TestHTTPAdmission drives the wire surface without running any jobs
// (workers never started, so everything stays queued): submission status
// codes, 429 + Retry-After backpressure, status/list/result phases, and
// input rejection.
func TestHTTPAdmission(t *testing.T) {
	reg := obs.New()
	svc := New(Config{QueueDepth: 2, Workers: 1, Obs: reg})
	defer func() {
		svc.cancel() // workers never started; just unblock Close's queue drain
		svc.queue.Close()
	}()
	ts := httptest.NewServer(reg.Handler(nil, svc.Mounts()...))
	defer ts.Close()

	b64 := base64.StdEncoding.EncodeToString(renoPcap(t))
	post := func(spec JobSpec, tenant string) *http.Response {
		body, _ := json.Marshal(spec)
		req, _ := http.NewRequest("POST", ts.URL+APIPrefix+"/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	decode := func(resp *http.Response, v any) {
		t.Helper()
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}

	spec := quickSpec()
	spec.TraceB64 = b64

	var first JobStatus
	resp := post(spec, "alice")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %s", resp.Status)
	}
	decode(resp, &first)
	if first.State != JobQueued || first.Tenant != "alice" || first.APIVersion != APIVersion {
		t.Fatalf("first status: %+v", first)
	}
	if first.Spec.TraceB64 != "" {
		t.Error("status echoed the trace upload")
	}
	if first.Spec.Budget != 3000 || first.Spec.Metric != DefaultMetric || first.Spec.Seed != DefaultSeed {
		t.Errorf("defaults not resolved in echo: %+v", first.Spec)
	}

	resp = post(spec, "bob")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %s", resp.Status)
	}
	resp.Body.Close()

	// Queue (depth 2) is full: explicit 429 backpressure with Retry-After.
	resp = post(spec, "carol")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()
	if got := reg.CounterValues("service.")["service.jobs_rejected"]; got != 1 {
		t.Errorf("jobs_rejected = %d, want 1", got)
	}

	// Status, list, and the not-finished result phase.
	var st JobStatus
	r, err := http.Get(ts.URL + APIPrefix + "/jobs/" + first.ID)
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("status GET: %v %v", err, r.Status)
	}
	decode(r, &st)
	if st.QueuePosition != 1 {
		t.Errorf("queue_position = %d, want 1 (first in alice's FIFO)", st.QueuePosition)
	}
	var list []JobStatus
	r, err = http.Get(ts.URL + APIPrefix + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decode(r, &list)
	if len(list) != 2 {
		t.Fatalf("job list has %d entries, want 2", len(list))
	}
	r, err = http.Get(ts.URL + APIPrefix + "/jobs/" + first.ID + "/result")
	if err != nil || r.StatusCode != http.StatusAccepted {
		t.Fatalf("queued result GET: %v %v, want 202", err, r.Status)
	}
	r.Body.Close()
	r, err = http.Get(ts.URL + APIPrefix + "/jobs/nope/result")
	if err != nil || r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v %v, want 404", err, r.Status)
	}
	r.Body.Close()

	// Input rejection is a 400, never an accepted-then-failed job.
	for name, bad := range map[string]JobSpec{
		"no trace":        {DSL: "reno"},
		"both traces":     {DSL: "reno", TraceB64: b64, TracePath: "/x.pcap"},
		"bad dsl":         {DSL: "nope", TraceB64: b64},
		"bad metric":      {DSL: "reno", Metric: "nope", TraceB64: b64},
		"negative budget": {DSL: "reno", Budget: -1, TraceB64: b64},
		"bad base64":      {DSL: "reno", TraceB64: "!!!"},
	} {
		resp := post(bad, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %s, want 400", name, resp.Status)
		}
		resp.Body.Close()
	}
}

// TestServiceMatchesCLI pins daemon-vs-CLI determinism: a job through the
// full service path (upload, queue, warm corpus, gate) returns the same
// handler and distance as a direct core.Synthesize with the CLI's
// options over the same trace.
func TestServiceMatchesCLI(t *testing.T) {
	pcap := renoPcap(t)

	// The CLI path: analyze, split, synthesize with defaults.
	tr, err := trace.AnalyzeBytes(pcap)
	if err != nil {
		t.Fatal(err)
	}
	segs := tr.Split(DefaultMinSegment)
	res, err := core.Synthesize(context.Background(), segs, core.Options{
		DSL:         dsl.Reno(),
		MaxHandlers: 3000,
		Seed:        DefaultSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantHandler := dsl.Simplify(res.Handler).String()

	// The daemon path.
	svc := New(Config{QueueDepth: 4, Workers: 1, Obs: obs.New()})
	svc.Start()
	defer svc.Close()
	spec := quickSpec()
	spec.TraceB64 = base64.StdEncoding.EncodeToString(pcap)
	st, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, svc, st.ID)
	if fin.State != JobDone {
		t.Fatalf("job failed: %s", fin.Error)
	}
	jr, ok := svc.Result(st.ID)
	if !ok || jr == nil {
		t.Fatal("no result for done job")
	}
	if jr.Synthesis.Handler != wantHandler {
		t.Errorf("daemon handler %q != CLI handler %q", jr.Synthesis.Handler, wantHandler)
	}
	if float64(jr.Synthesis.Distance) != res.Distance {
		t.Errorf("daemon distance %v != CLI distance %v", jr.Synthesis.Distance, res.Distance)
	}
	if jr.Synthesis.Segments != len(segs) {
		t.Errorf("daemon scored %d segments, CLI %d", jr.Synthesis.Segments, len(segs))
	}
}

// TestWarmRestartByteIdentical is the tentpole acceptance pin: stop a
// daemon, start a new one over the same snapshot directory, submit the
// same job — the warm process performs zero candidate enumeration
// (enum.candidates == 0) and returns a byte-identical Synthesis.
func TestWarmRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	pcapPath := filepath.Join(dir, "reno.pcap")
	if err := os.WriteFile(pcapPath, renoPcap(t), 0o644); err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(dir, "corpora")
	spec := quickSpec()
	spec.TracePath = pcapPath

	runOnce := func(reg *obs.Registry) []byte {
		t.Helper()
		svc := New(Config{QueueDepth: 4, Workers: 1, SnapshotDir: snapDir, Obs: reg})
		svc.Start()
		st, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		fin := waitJob(t, svc, st.ID)
		if fin.State != JobDone {
			t.Fatalf("job failed: %s", fin.Error)
		}
		jr, _ := svc.Result(st.ID)
		b, err := json.Marshal(jr.Synthesis)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Close(); err != nil {
			t.Fatalf("close (snapshot save): %v", err)
		}
		return b
	}

	cold := runOnce(obs.New())
	warmReg := obs.New()
	warm := runOnce(warmReg)

	if !bytes.Equal(cold, warm) {
		t.Errorf("restart changed the result:\ncold %s\nwarm %s", cold, warm)
	}
	if got := warmReg.CounterValues("corpus.")["corpus.registry_snapshot_loads"]; got != 1 {
		t.Errorf("registry_snapshot_loads = %d, want 1", got)
	}
	if got := warmReg.CounterValues("enum.")["enum.candidates"]; got != 0 {
		t.Errorf("warm daemon enumerated %d candidates, want 0", got)
	}
}
