// Package enum enumerates the sketch search space (§4.1 of the paper): all
// canonical, type-correct and (optionally) unit-correct expression trees of
// a sub-DSL up to a depth and size bound. It stands in for the paper's
// Z3-based enumerator — where the paper iteratively queries an SMT solver
// and blocks previous solutions, this package generates the identical set
// directly, lazily, and in a deterministic order.
//
// The search space is partitioned into buckets keyed by the exact set of
// operators a sketch uses — the bucket discriminator the paper found to
// best preserve behavioral similarity (§4.4, option 2).
package enum

import (
	"iter"
	"sort"

	"repro/internal/dsl"
	"repro/internal/obs"
)

// Enumerator generates the sketch space of one sub-DSL.
type Enumerator struct {
	// D is the sub-DSL whose space is enumerated.
	D *dsl.DSL
	// Obs, when set, receives the enumerator's instruments:
	//
	//	counters  enum.candidates (every candidate root constructed —
	//	          the scan-budget currency), enum.sketches (admissible
	//	          sketches yielded), enum.scan_budget_exhausted
	//	          (enumerations cut short by their scan budget)
	//
	// Nil disables instrumentation.
	Obs *obs.Registry
}

// New returns an enumerator for the sub-DSL.
func New(d *dsl.DSL) *Enumerator { return &Enumerator{D: d} }

// All yields every admissible sketch: canonical per dsl.IsCanonical,
// within the DSL's depth/size budget, and producing bytes under the unit
// checker when the DSL enables it.
func (e *Enumerator) All() iter.Seq[*dsl.Node] {
	return func(yield func(*dsl.Node) bool) {
		e.enumerate(fullOpSet(e.D), nil, yield)
	}
}

// Bucket yields the sketches whose operator set is exactly ops.
func (e *Enumerator) Bucket(ops dsl.OpSet) iter.Seq[*dsl.Node] {
	return e.BucketLimited(ops, 0)
}

// BucketLimited is Bucket with a scan budget: enumeration gives up after
// scanLimit admissible candidates have been generated (whether or not they
// belong to the bucket). A zero limit scans exhaustively. The limit is the
// in-process analogue of the paper's per-run wall-clock timeout: highly
// selective buckets deep in a large DSL stop consuming time once their
// budget is spent.
func (e *Enumerator) BucketLimited(ops dsl.OpSet, scanLimit int) iter.Seq[*dsl.Node] {
	return func(yield func(*dsl.Node) bool) {
		e.enumerateLimited(ops, scanLimit, func(n *dsl.Node) verdict {
			if n.Ops() != ops {
				return skip
			}
			return keep
		}, yield)
	}
}

// verdict is a filter decision during enumeration.
type verdict int

const (
	keep verdict = iota
	skip
	stopEnum
)

// enumerate runs the generator with ops as the allowed operator superset
// and an optional final filter. Generation proceeds by iterative deepening
// — all depth-1 sketches, then depth-2, ... — so samples drawn from a
// bucket's prefix are the simplest members of that bucket, mirroring the
// small-model-first order of the paper's SMT enumeration.
func (e *Enumerator) enumerate(allowed dsl.OpSet, filter func(*dsl.Node) verdict, yield func(*dsl.Node) bool) {
	e.enumerateLimited(allowed, 0, filter, yield)
}

// enumerateLimited is enumerate with a scan budget tied to the actual
// generation work: every candidate root the generator constructs counts,
// including ones a later stage re-emits or the unit checker rejects —
// otherwise a deep DSL stage could grind indefinitely without ever
// consuming budget.
func (e *Enumerator) enumerateLimited(allowed dsl.OpSet, scanLimit int, filter func(*dsl.Node) verdict, yield func(*dsl.Node) bool) {
	budget := e.D.MaxNodes
	if budget <= 0 {
		budget = 1 << 20
	}
	cSketches := e.Obs.Counter("enum.sketches")
	g := &gen{
		dsl: e.D, allowed: allowed, limit: scanLimit,
		candidates: e.Obs.Counter("enum.candidates"),
	}
	defer func() {
		if g.budgetHit {
			e.Obs.Counter("enum.scan_budget_exhausted").Inc()
		}
	}()
	for depth := 1; depth <= e.D.MaxDepth; depth++ {
		want := depth
		ok := g.genNum(depth, budget, func(n *dsl.Node) bool {
			if n.Depth() != want {
				return true // emitted at an earlier stage
			}
			if e.D.UnitCheck {
				if dsl.CheckHandlerUnits(n) != nil {
					return true // skip, keep enumerating
				}
			}
			if filter != nil {
				switch filter(n) {
				case skip:
					return true
				case stopEnum:
					return false
				}
			}
			cSketches.Inc()
			return yield(n.Clone())
		})
		if !ok {
			return
		}
	}
}

// Count exhaustively counts the admissible sketch space (§6.1 reports this
// for the Reno DSL at depth 3).
func (e *Enumerator) Count() int {
	n := 0
	for range e.All() {
		n++
	}
	return n
}

// fullOpSet returns the DSL's operator universe (Gt folded into Lt).
func fullOpSet(d *dsl.DSL) dsl.OpSet {
	var s dsl.OpSet
	for _, op := range d.NumOps {
		s = s.With(op)
	}
	for _, op := range d.BoolOps {
		if op == dsl.OpGt {
			op = dsl.OpLt
		}
		s = s.With(op)
	}
	return s
}

// Buckets returns every feasible bucket key: subsets of the operator
// universe in which conditionals and predicates appear together (a bool
// operator only ever occurs under a cond, and a cond requires a predicate).
// The empty set (single-leaf sketches) is included. Keys are returned in a
// deterministic order.
func (e *Enumerator) Buckets() []dsl.OpSet {
	universe := []dsl.Op{}
	for _, op := range e.D.NumOps {
		universe = append(universe, op)
	}
	boolOps := []dsl.Op{}
	for _, op := range e.D.BoolOps {
		if op == dsl.OpGt {
			op = dsl.OpLt
		}
		boolOps = append(boolOps, op)
	}
	// Split cond out of the numeric universe: its presence is tied to the
	// bool ops.
	numOps := []dsl.Op{}
	hasCond := false
	for _, op := range universe {
		if op == dsl.OpCond {
			hasCond = true
			continue
		}
		numOps = append(numOps, op)
	}

	var keys []dsl.OpSet
	for mask := 0; mask < 1<<len(numOps); mask++ {
		var base dsl.OpSet
		for i, op := range numOps {
			if mask&(1<<i) != 0 {
				base = base.With(op)
			}
		}
		keys = append(keys, base)
		if !hasCond {
			continue
		}
		for bmask := 1; bmask < 1<<len(boolOps); bmask++ {
			s := base.With(dsl.OpCond)
			for i, op := range boolOps {
				if bmask&(1<<i) != 0 {
					s = s.With(op)
				}
			}
			keys = append(keys, s)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// gen is the recursive generator. Children are canonical by construction,
// so each candidate node needs only the local canonicality check. When
// limit > 0, every constructed candidate — canonical or not — counts
// against it, so the budget bounds the generator's actual work; spent
// reports how much has been used.
type gen struct {
	dsl        *dsl.DSL
	allowed    dsl.OpSet
	limit      int
	spent      int
	candidates *obs.Counter // nil no-op when unobserved
	budgetHit  bool
}

// charge consumes budget for one constructed candidate; it reports false
// when the budget is exhausted.
func (g *gen) charge() bool {
	g.candidates.Inc()
	if g.limit <= 0 {
		return true
	}
	g.spent++
	if g.spent > g.limit {
		g.budgetHit = true
		return false
	}
	return true
}

// hasOp reports whether the operator may be used.
func (g *gen) hasOp(op dsl.Op) bool {
	// The DSL must contain it and the bucket superset must allow it.
	in := false
	for _, o := range g.dsl.NumOps {
		if o == op {
			in = true
		}
	}
	for _, o := range g.dsl.BoolOps {
		if o == op {
			in = true
		}
	}
	return in && g.allowed.Has(opKeyOf(op))
}

// opKeyOf folds Gt into Lt for bucket membership.
func opKeyOf(op dsl.Op) dsl.Op {
	if op == dsl.OpGt {
		return dsl.OpLt
	}
	return op
}

// genNum yields all canonical numeric trees with depth <= d and size <=
// budget. Each structurally distinct tree is produced exactly once. The
// callback returns false to stop enumeration; genNum propagates the stop.
func (g *gen) genNum(d, budget int, yield func(*dsl.Node) bool) bool {
	if d < 1 || budget < 1 {
		return true
	}
	// Leaves.
	if !yield(dsl.Cwnd()) {
		return false
	}
	for _, s := range g.dsl.Signals {
		if !yield(dsl.Sig(s)) {
			return false
		}
	}
	for _, m := range g.dsl.Macros {
		if !yield(dsl.Mac(m)) {
			return false
		}
	}
	if !yield(dsl.Hole()) {
		return false
	}
	if d < 2 || budget < 2 {
		return true
	}

	// Unary operators.
	for _, op := range []dsl.Op{dsl.OpCube, dsl.OpCbrt} {
		if !g.hasOp(op) {
			continue
		}
		ok := g.genNum(d-1, budget-1, func(k *dsl.Node) bool {
			if !g.charge() {
				return false
			}
			n := &dsl.Node{Op: op, Kids: []*dsl.Node{k}}
			if !dsl.CanonicalAt(n) {
				return true
			}
			return yield(n)
		})
		if !ok {
			return false
		}
	}

	if budget < 3 {
		return true
	}
	// Binary operators.
	for _, op := range []dsl.Op{dsl.OpAdd, dsl.OpSub, dsl.OpMul, dsl.OpDiv} {
		if !g.hasOp(op) {
			continue
		}
		o := op
		ok := g.genNum(d-1, budget-2, func(a *dsl.Node) bool {
			return g.genNum(d-1, budget-1-a.Size(), func(b *dsl.Node) bool {
				if !g.charge() {
					return false
				}
				n := &dsl.Node{Op: o, Kids: []*dsl.Node{a, b}}
				if !dsl.CanonicalAt(n) {
					return true
				}
				return yield(n)
			})
		})
		if !ok {
			return false
		}
	}

	// Conditionals.
	if g.hasOp(dsl.OpCond) && d >= 3 && budget >= 5 {
		ok := g.genBool(d-1, budget-3, func(cond *dsl.Node) bool {
			return g.genNum(d-1, budget-1-cond.Size()-1, func(then *dsl.Node) bool {
				return g.genNum(d-1, budget-1-cond.Size()-then.Size(), func(els *dsl.Node) bool {
					if !g.charge() {
						return false
					}
					n := &dsl.Node{Op: dsl.OpCond, Kids: []*dsl.Node{cond, then, els}}
					if !dsl.CanonicalAt(n) {
						return true
					}
					return yield(n)
				})
			})
		})
		if !ok {
			return false
		}
	}
	return true
}

// genBool yields all canonical predicates with depth <= d, size <= budget.
func (g *gen) genBool(d, budget int, yield func(*dsl.Node) bool) bool {
	if d < 2 || budget < 3 {
		return true
	}
	for _, op := range []dsl.Op{dsl.OpLt, dsl.OpModEq} {
		if !g.hasOp(op) {
			continue
		}
		o := op
		ok := g.genNum(d-1, budget-2, func(a *dsl.Node) bool {
			return g.genNum(d-1, budget-1-a.Size(), func(b *dsl.Node) bool {
				if !g.charge() {
					return false
				}
				n := &dsl.Node{Op: o, Kids: []*dsl.Node{a, b}}
				if !dsl.CanonicalAt(n) {
					return true
				}
				return yield(n)
			})
		})
		if !ok {
			return false
		}
	}
	return true
}
