package enum

import (
	"testing"

	"repro/internal/dsl"
)

func TestRenoSpaceIsFiniteAndClean(t *testing.T) {
	e := New(dsl.Reno())
	seen := map[string]bool{}
	n := 0
	for sk := range e.All() {
		n++
		key := sk.Key()
		if seen[key] {
			t.Fatalf("duplicate sketch %q", sk)
		}
		seen[key] = true
		if !dsl.IsCanonical(sk) {
			t.Fatalf("non-canonical sketch emitted: %q", sk)
		}
		if err := dsl.CheckHandlerUnits(sk); err != nil {
			t.Fatalf("unit-violating sketch emitted: %q (%v)", sk, err)
		}
		if err := e.D.Admits(sk); err != nil {
			t.Fatalf("out-of-DSL sketch emitted: %q (%v)", sk, err)
		}
		if n > 2_000_000 {
			t.Fatal("runaway enumeration")
		}
	}
	// The paper prunes the Reno-DSL depth-3 space to 1,617 sketches; our
	// canonicalization differs in detail, but the space must be the same
	// order of magnitude.
	if n < 100 || n > 100000 {
		t.Errorf("Reno depth-3 space = %d sketches, out of plausible range", n)
	}
	t.Logf("Reno-DSL depth-3 viable sketches: %d", n)
}

func TestCountMatchesAll(t *testing.T) {
	e := New(dsl.Reno())
	n := 0
	for range e.All() {
		n++
	}
	if got := e.Count(); got != n {
		t.Errorf("Count() = %d, iteration = %d", got, n)
	}
}

func TestEnumerationIsDeterministic(t *testing.T) {
	e := New(dsl.Reno())
	var first, second []string
	i := 0
	for sk := range e.All() {
		first = append(first, sk.String())
		if i++; i >= 500 {
			break
		}
	}
	i = 0
	for sk := range e.All() {
		second = append(second, sk.String())
		if i++; i >= 500 {
			break
		}
	}
	for j := range first {
		if first[j] != second[j] {
			t.Fatalf("order differs at %d: %q vs %q", j, first[j], second[j])
		}
	}
}

func TestBucketsPartitionTheSpace(t *testing.T) {
	e := New(dsl.Reno())
	total := e.Count()
	keys := e.Buckets()
	if len(keys) < 10 {
		t.Fatalf("only %d buckets", len(keys))
	}
	sum := 0
	for _, key := range keys {
		for sk := range e.Bucket(key) {
			if sk.Ops() != key {
				t.Fatalf("sketch %q (ops %v) in bucket %v", sk, sk.Ops(), key)
			}
			sum++
		}
	}
	if sum != total {
		t.Errorf("buckets sum to %d sketches, space has %d", sum, total)
	}
	t.Logf("Reno-DSL: %d sketches across %d bucket keys", total, len(keys))
}

func TestBucketKeysUniqueAndFeasible(t *testing.T) {
	e := New(dsl.Vegas())
	keys := e.Buckets()
	seen := map[dsl.OpSet]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate bucket key %v", k)
		}
		seen[k] = true
		// Cond and predicates come together.
		hasBool := k.Has(dsl.OpLt) || k.Has(dsl.OpModEq)
		if k.Has(dsl.OpCond) != hasBool {
			t.Errorf("infeasible bucket key %v", k)
		}
	}
}

func TestEmptyBucketHoldsLeaves(t *testing.T) {
	e := New(dsl.Reno())
	var leaves []*dsl.Node
	for sk := range e.Bucket(dsl.OpSet(0)) {
		leaves = append(leaves, sk)
		if sk.Size() != 1 {
			t.Errorf("empty bucket contains compound %q", sk)
		}
	}
	// cwnd is the only unit-correct leaf (bytes); mss and acked too.
	if len(leaves) < 2 {
		t.Errorf("empty bucket has %d sketches", len(leaves))
	}
}

func TestRenoSketchIsEnumerated(t *testing.T) {
	// The canonical Reno sketch cwnd + c*reno-inc must be in the space.
	want := dsl.MustParse("cwnd + c1*reno-inc")
	e := New(dsl.Reno())
	found := false
	for sk := range e.All() {
		if sk.Equal(want) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("space does not contain %q", want)
	}
}

func TestBucketOfRenoSketch(t *testing.T) {
	want := dsl.MustParse("cwnd + c1*reno-inc")
	e := New(dsl.Reno())
	found := false
	for sk := range e.Bucket(want.Ops()) {
		if sk.Equal(want) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("bucket %v does not contain %q", want.Ops(), want)
	}
}

func TestEarlyStop(t *testing.T) {
	e := New(dsl.Vegas())
	n := 0
	for range e.All() {
		n++
		if n >= 10 {
			break
		}
	}
	if n != 10 {
		t.Errorf("early stop yielded %d", n)
	}
}

func TestCubicDSLSkipsUnitCheck(t *testing.T) {
	// cwnd + cube(time-since-loss) violates units but the cubic DSL
	// disables the checker, so the shape must appear.
	want := dsl.MustParse("cwnd + cube(time-since-loss)")
	e := New(dsl.Cubic())
	found := false
	n := 0
	for sk := range e.All() {
		if sk.Equal(want) {
			found = true
			break
		}
		if n++; n > 3_000_000 {
			break
		}
	}
	if !found {
		t.Errorf("cubic space does not contain %q", want)
	}
}

func TestVegasSketchReachable(t *testing.T) {
	want := dsl.MustParse("cwnd + ({vegas-diff < c1} ? c2*reno-inc : c3)")
	e := New(dsl.Vegas())
	if err := e.D.Admits(want); err != nil {
		t.Fatalf("vegas DSL rejects target: %v", err)
	}
	found := false
	n := 0
	for sk := range e.Bucket(want.Ops()) {
		if sk.Equal(want) {
			found = true
			break
		}
		if n++; n > 5_000_000 {
			t.Log("bucket larger than probe budget; giving up search")
			break
		}
	}
	if !found {
		t.Errorf("vegas bucket %v does not contain %q within budget", want.Ops(), want)
	}
}

func TestMaxNodesBudgetRespected(t *testing.T) {
	d := dsl.Reno()
	d.MaxNodes = 5
	e := New(d)
	for sk := range e.All() {
		if sk.Size() > 5 {
			t.Fatalf("sketch %q exceeds node budget", sk)
		}
	}
}

func BenchmarkEnumerateReno(b *testing.B) {
	e := New(dsl.Reno())
	for i := 0; i < b.N; i++ {
		n := 0
		for range e.All() {
			n++
		}
	}
}
