package experiments

import (
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/expr"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Plot-ready artifacts: the figures in the paper are curves; the format
// functions print summaries, and these helpers dump the underlying series
// as CSV so any plotting tool can regenerate the visuals.

// Fig3CSV renders the full error sweep: one row per (metric, error factor)
// with per-handler distances and the correctness flag.
func Fig3CSV(points []Fig3Point) []byte {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{"metric", "error", "bbr", "cubic", "reno", "vegas", "correct"})
	for _, p := range points {
		_ = w.Write([]string{
			p.Metric,
			fmt.Sprintf("%.4f", p.Error),
			f64(p.Distances["bbr"]),
			f64(p.Distances["cubic"]),
			f64(p.Distances["reno"]),
			f64(p.Distances["vegas"]),
			strconv.FormatBool(p.Correct),
		})
	}
	w.Flush()
	return []byte(b.String())
}

func f64(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.4f", v)
}

// SegmentReplayCSV renders an observed segment alongside one or more
// handlers' replayed CWND series — the raw material of Figures 4 and 5.
// Column 1 is time (s), column 2 the observed window (MSS units), then one
// column per handler.
func SegmentReplayCSV(seg *trace.Segment, handlers map[string]*dsl.Node) ([]byte, error) {
	obs := seg.Series()
	names := make([]string, 0, len(handlers))
	for n := range handlers {
		names = append(names, n)
	}
	// Stable column order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	series := map[string]dist.Series{}
	for _, n := range names {
		s, err := replay.Synthesize(handlers[n], seg)
		if err != nil {
			return nil, fmt.Errorf("experiments: replaying %q: %w", n, err)
		}
		series[n] = s
	}
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := append([]string{"time_s", "observed_mss"}, names...)
	_ = w.Write(header)
	for i := range obs.Times {
		row := []string{
			fmt.Sprintf("%.4f", obs.Times[i]),
			fmt.Sprintf("%.3f", obs.Values[i]),
		}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.3f", series[n].Values[i]))
		}
		_ = w.Write(row)
	}
	w.Flush()
	return []byte(b.String()), nil
}

// WriteFigureArtifacts regenerates the plottable data behind Figures 3-5
// into dir: fig3.csv (the sweep), fig4-segment-*.csv (BBR segments with
// both handlers replayed) and fig5-segment.csv (an HTCP segment with the
// Reno-variant handler).
func WriteFigureArtifacts(dir string, s Scale) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Figure 3.
	points, err := Fig3(s)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "fig3.csv"), Fig3CSV(points), 0o644); err != nil {
		return err
	}

	// Figure 4: first two scoreable BBR segments with both handlers.
	bbr, err := Collect("bbr", s)
	if err != nil {
		return err
	}
	fine, err := expr.Lookup("bbr")
	if err != nil {
		return err
	}
	handlers := map[string]*dsl.Node{
		"synthesized": dsl.MustParse(Fig4SynthesizedBBR),
		"fine_tuned":  fine.Handler(),
	}
	written := 0
	for i, seg := range bbr.Segments {
		data, err := SegmentReplayCSV(seg, handlers)
		if err != nil {
			continue // diverging segment; skip
		}
		name := fmt.Sprintf("fig4-segment-%d.csv", i)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
		if written++; written >= 2 {
			break
		}
	}

	// Figure 5: the first HTCP segment with the plain Reno handler.
	htcp, err := Collect("htcp", s)
	if err != nil {
		return err
	}
	if len(htcp.Segments) > 0 {
		data, err := SegmentReplayCSV(htcp.Segments[0], map[string]*dsl.Node{
			"reno_variant": dsl.MustParse("cwnd + reno-inc"),
		})
		if err == nil {
			if err := os.WriteFile(filepath.Join(dir, "fig5-segment.csv"), data, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
