package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/expr"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Fig3Point is one (metric, error-factor) cell of Figure 3: the distances
// of each expert handler to the BBR traces after multiplying every
// constant by the error factor, and whether BBR's handler remained the
// closest.
type Fig3Point struct {
	// Metric is the distance metric's name.
	Metric string
	// Error is the multiplicative factor applied to every constant.
	Error float64
	// Distances maps handler CCA name to its distance under the metric.
	Distances map[string]float64
	// Correct is true when the BBR handler stayed strictly closest.
	Correct bool
}

// Fig3Handlers are the expert in-DSL expressions the paper compares: BBR,
// Cubic, Reno and Vegas.
func Fig3Handlers() map[string]*dsl.Node {
	out := map[string]*dsl.Node{}
	for _, name := range []string{"bbr", "cubic", "reno", "vegas"} {
		f, err := expr.Lookup(name)
		if err != nil {
			panic(err)
		}
		out[name] = f.Handler()
	}
	return out
}

// ScaleConstants returns a copy of the handler with every bound constant
// multiplied by f — the error-injection of Figure 3.
func ScaleConstants(h *dsl.Node, f float64) *dsl.Node {
	c := h.Clone()
	c.Walk(func(n *dsl.Node) {
		if n.Op == dsl.OpConst && n.Bound {
			n.Value *= f
		}
	})
	return c
}

// Fig3ErrorFactors is the paper's log-scale sweep from 0.1x to 10x, with
// finer sampling near 1.0x where the metrics' tolerance bands end.
func Fig3ErrorFactors() []float64 {
	var out []float64
	for e := -1.0; e <= 1.0001; e += 0.0625 {
		out = append(out, math.Pow(10, e))
	}
	return out
}

// Fig3 sweeps constant error over all four metrics on BBR traces. Two
// methodological notes: the random-loss noise knob is dropped for this
// dataset (the paper's BBR traces cruise in PROBE_BW between rare losses),
// and only steady-state segments — those starting at least five seconds
// into a flow — are scored. BBR's startup and PROBE_RTT transients are
// driven by hidden state no closed-form handler can see (§5.2), and they
// would otherwise dominate the sum for every handler equally.
func Fig3(s Scale) ([]Fig3Point, error) {
	s.LossRate = 0
	if s.Duration < 20e9 {
		s.Duration = 20e9 // 20s: several pulse cycles per segment
	}
	ds, err := Collect("bbr", s)
	if err != nil {
		return nil, err
	}
	var steady []*trace.Segment
	for _, seg := range ds.Segments {
		if seg.Samples[0].Time > 5*time.Second {
			steady = append(steady, seg)
		}
	}
	if len(steady) == 0 {
		steady = ds.Segments
	}
	handlers := Fig3Handlers()
	var points []Fig3Point
	for _, m := range dist.Metrics() {
		// One scorer per metric: the steady-segment envs, resampled
		// observed series and (for DTW) LB envelopes are shared across the
		// whole error sweep instead of being rebuilt per cell.
		scorer := replay.NewScorer(steady, m)
		for _, f := range Fig3ErrorFactors() {
			p := Fig3Point{Metric: m.Name(), Error: f, Distances: map[string]float64{}}
			for name, h := range handlers {
				p.Distances[name], _ = scorer.Score(ScaleConstants(h, f), math.Inf(1))
			}
			bbrD := p.Distances["bbr"]
			p.Correct = true
			for name, d := range p.Distances {
				if name != "bbr" && d <= bbrD {
					p.Correct = false
				}
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// Fig3Summary reports, per metric, the widest contiguous error band around
// 1.0x in which the true CCA stayed closest — the quantity Figure 3
// visualizes with red shading.
type Fig3Summary struct {
	Metric   string
	LowOK    float64 // smallest error factor in the contiguous correct band
	HighOK   float64 // largest error factor in the contiguous correct band
	CorrectN int     // correct cells out of TotalN
	TotalN   int
}

// SummarizeFig3 folds the sweep into per-metric bands.
func SummarizeFig3(points []Fig3Point) []Fig3Summary {
	byMetric := map[string][]Fig3Point{}
	var order []string
	for _, p := range points {
		if _, ok := byMetric[p.Metric]; !ok {
			order = append(order, p.Metric)
		}
		byMetric[p.Metric] = append(byMetric[p.Metric], p)
	}
	var out []Fig3Summary
	for _, m := range order {
		ps := byMetric[m]
		s := Fig3Summary{Metric: m, LowOK: math.NaN(), HighOK: math.NaN(), TotalN: len(ps)}
		// Find the index closest to error 1.0 and expand outwards while
		// correct.
		center := 0
		for i, p := range ps {
			if math.Abs(math.Log10(p.Error)) < math.Abs(math.Log10(ps[center].Error)) {
				center = i
			}
			if p.Correct {
				s.CorrectN++
			}
		}
		if ps[center].Correct {
			lo, hi := center, center
			for lo-1 >= 0 && ps[lo-1].Correct {
				lo--
			}
			for hi+1 < len(ps) && ps[hi+1].Correct {
				hi++
			}
			s.LowOK, s.HighOK = ps[lo].Error, ps[hi].Error
		}
		out = append(out, s)
	}
	return out
}

// FormatFig3 renders the per-metric tolerance bands.
func FormatFig3(sums []Fig3Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-22s %s\n", "metric", "correct band (xerror)", "correct cells")
	for _, s := range sums {
		band := "none at 1.0x"
		if !math.IsNaN(s.LowOK) {
			band = fmt.Sprintf("[%.2fx, %.2fx]", s.LowOK, s.HighOK)
		}
		fmt.Fprintf(&b, "%-10s %-22s %d/%d\n", s.Metric, band, s.CorrectN, s.TotalN)
	}
	return b.String()
}
