package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cca"
	"repro/internal/classify"
)

// Table3Row is one CCA's classification verdict, mirroring the paper's
// Table 3.
type Table3Row struct {
	// CCA is the ground truth.
	CCA string
	// Output is the classifier's label ("Unknown" possible).
	Output string
	// Nearest lists the closest known CCAs (reported for Unknowns, as
	// CCAnalyzer does).
	Nearest []string
	// Correct is true when Output == CCA.
	Correct bool
}

// Table3 classifies one probe trace per CCA against the reference library.
func Table3(s Scale, cls *classify.Classifier) ([]Table3Row, error) {
	if cls == nil {
		var err error
		cls, err = BuildClassifier(s)
		if err != nil {
			return nil, err
		}
	}
	names := append(append([]string{}, cca.KernelNames()...), cca.StudentNames()...)
	var rows []Table3Row
	for _, name := range names {
		ds, err := Collect(name, s)
		if err != nil {
			return rows, err
		}
		key := classify.ConfigKey(int(ds.Configs[0].RTT/time.Millisecond), ds.Configs[0].Bandwidth)
		res, err := cls.Classify(key, ds.Traces[0])
		if err != nil {
			return rows, err
		}
		row := Table3Row{CCA: name, Output: res.Label, Correct: res.Label == name}
		for i, m := range res.Nearest {
			if i >= 2 {
				break
			}
			row.Nearest = append(row.Nearest, m.Label)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable3 renders the classification table.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %-9s %s\n", "CCA", "Classifier", "Correct", "Nearest")
	for _, r := range rows {
		mark := ""
		if r.Correct {
			mark = "yes"
		}
		fmt.Fprintf(&b, "%-10s %-12s %-9s %s\n", r.CCA, r.Output, mark, strings.Join(r.Nearest, ", "))
	}
	return b.String()
}
