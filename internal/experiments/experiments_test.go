package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dsl"
)

func TestCollectDataset(t *testing.T) {
	ds, err := Collect("reno", QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Traces) != 2 || len(ds.Configs) != 2 {
		t.Fatalf("traces/configs = %d/%d, want 2/2", len(ds.Traces), len(ds.Configs))
	}
	if len(ds.Segments) < 2 {
		t.Fatalf("segments = %d", len(ds.Segments))
	}
	// Cached: second call returns the same pointer.
	ds2, err := Collect("reno", QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if ds2 != ds {
		t.Error("dataset cache missed")
	}
}

func TestTable2QuickReno(t *testing.T) {
	rows, err := Table2([]string{"reno"}, QuickScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Err != nil {
		t.Fatalf("synthesis failed: %v", r.Err)
	}
	if r.DSLName != "reno" {
		t.Errorf("DSL hint = %q", r.DSLName)
	}
	if r.Synthesized == "" || math.IsInf(r.SynthDistance, 1) {
		t.Errorf("bad synthesized result: %q / %v", r.Synthesized, r.SynthDistance)
	}
	if r.FineTuned == "" || math.IsNaN(r.FineDistance) {
		t.Errorf("missing fine-tuned comparison: %q / %v", r.FineTuned, r.FineDistance)
	}
	// Key Table 2 property for the Reno family: the synthesized handler's
	// distance is close to (or better than) the fine-tuned handler's.
	if r.SynthDistance > 3*r.FineDistance+10 {
		t.Errorf("synthesized %.1f much worse than fine-tuned %.1f", r.SynthDistance, r.FineDistance)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "reno") {
		t.Error("FormatTable2 lost the row")
	}
	t.Logf("\n%s", out)
}

func TestTable2CCAList(t *testing.T) {
	ccas := Table2CCAs()
	if len(ccas) != 21 {
		t.Errorf("Table2CCAs = %d entries, want 21 (16 kernel - cdg - highspeed + 7 students)", len(ccas))
	}
	for _, c := range ccas {
		if c == "cdg" || c == "highspeed" {
			t.Errorf("out-of-scope CCA %q in Table 2 list", c)
		}
	}
}

func TestFig3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	points, err := Fig3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	sums := SummarizeFig3(points)
	if len(sums) != 4 {
		t.Fatalf("metrics = %d, want 4", len(sums))
	}
	var dtw, euc Fig3Summary
	for _, s := range sums {
		if s.TotalN == 0 {
			t.Errorf("%s: empty sweep", s.Metric)
		}
		switch s.Metric {
		case "dtw":
			dtw = s
		case "euclidean":
			euc = s
		}
	}
	// The paper's Figure 3 finding: DTW stays correct over at least as
	// wide an error band as Euclidean.
	if dtw.CorrectN < euc.CorrectN {
		t.Errorf("DTW correct cells (%d) below Euclidean (%d)", dtw.CorrectN, euc.CorrectN)
	}
	t.Logf("\n%s", FormatFig3(sums))
}

func TestScaleConstants(t *testing.T) {
	h := Fig3Handlers()["reno"]
	scaled := ScaleConstants(h, 2)
	if h.Equal(scaled) {
		t.Error("scaling changed nothing")
	}
	if !h.Equal(ScaleConstants(h, 1)) {
		t.Error("scaling by 1 is not identity")
	}
}

func TestFig4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("case study")
	}
	r, err := Fig4(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.SynthWins+r.FineWins == 0 {
		t.Fatal("no comparable segments")
	}
	t.Logf("\n%s", FormatFig4(r))
}

func TestFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("case study")
	}
	r, err := Fig5(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(r.RenoDistance, 1) || math.IsInf(r.FineDistance, 1) {
		t.Fatal("handler diverged on HTCP traces")
	}
	// Figure 5's point: the plain Reno handler is a close match on HTCP
	// traces (within ~50% of the fine-tuned distance in the paper; allow
	// slack for our substrate).
	if r.RenoDistance > 3*r.FineDistance {
		t.Errorf("reno handler (%.1f) not a near match to fine-tuned (%.1f)",
			r.RenoDistance, r.FineDistance)
	}
	t.Logf("\n%s", FormatFig5(r))
}

func TestFig6DSLVariants(t *testing.T) {
	for _, label := range Fig6Labels() {
		d := fig6DSL(label)
		if d.MaxNodes != 7 && d.MaxNodes != 11 {
			t.Errorf("%s: nodes = %d", label, d.MaxNodes)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown label did not panic")
		}
	}()
	fig6DSL("nope")
}

func TestEfficiencyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis run")
	}
	r, err := Efficiency(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.SpaceSketches < 100 {
		t.Errorf("space = %d", r.SpaceSketches)
	}
	if r.Buckets < 5 {
		t.Errorf("buckets = %d", r.Buckets)
	}
	if r.FractionExplored <= 0 {
		t.Errorf("fraction explored = %v", r.FractionExplored)
	}
	t.Logf("\n%s", FormatEfficiency(r))
}

func TestGridSeedsDistinct(t *testing.T) {
	s := FullScale()
	seen := map[int64]bool{}
	for _, cfg := range s.Grid("reno") {
		if seen[cfg.Seed] {
			t.Fatal("duplicate grid seed")
		}
		seen[cfg.Seed] = true
	}
	if len(seen) != 9 {
		t.Errorf("full grid = %d scenarios, want 9", len(seen))
	}
}

func TestFormatTable4(t *testing.T) {
	out := FormatTable4([]Table4Row{
		{CCA: "bbr", Rank1: 4, Total1: 127, Rank2: 3, Total2: 5},
		{CCA: "cubic", Rank1: 7, Total1: 27},
	})
	if !strings.Contains(out, "4/127") || !strings.Contains(out, "7/27") {
		t.Errorf("format lost ranks:\n%s", out)
	}
}

func TestAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("five synthesis runs")
	}
	s := QuickScale()
	s.MaxHandlers = 3000 // keep the five variants quick
	rows, err := Ablation("reno", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("variants = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Variant, r.Err)
			continue
		}
		if math.IsInf(r.Distance, 1) || r.Handler == "" {
			t.Errorf("%s: unusable result %q/%v", r.Variant, r.Handler, r.Distance)
		}
	}
	t.Logf("\n%s", FormatAblation("reno", rows))
}

func TestWriteFigureArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	dir := t.TempDir()
	if err := WriteFigureArtifacts(dir, QuickScale()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 || !strings.HasPrefix(lines[0], "metric,error,") {
		t.Errorf("fig3.csv malformed: %d lines, header %q", len(lines), lines[0])
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4-segment-0.csv")); err != nil {
		t.Errorf("fig4 artifact missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig5-segment.csv")); err != nil {
		t.Errorf("fig5 artifact missing: %v", err)
	}
}

func TestSegmentReplayCSV(t *testing.T) {
	ds, err := Collect("reno", QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	data, err := SegmentReplayCSV(ds.Segments[0], map[string]*dsl.Node{
		"reno": dsl.MustParse("cwnd + reno-inc"),
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "time_s,observed_mss,reno" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != len(ds.Segments[0].Samples)+1 {
		t.Errorf("rows = %d, want %d", len(lines)-1, len(ds.Segments[0].Samples))
	}
}
