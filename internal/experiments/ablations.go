package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/expr"
	"repro/internal/replay"
)

// Ablations quantify the design choices DESIGN.md calls out: the search
// metric (DTW vs Euclidean, §4.3), the bucket refinement loop (§4.4),
// diverse trace-segment selection (§3.2), and the size of the constant
// pool (§4.2). Each variant runs the same synthesis task under an equal
// handler budget; lower final distance at equal budget is better.

// AblationRow is one variant's outcome.
type AblationRow struct {
	// Variant names the configuration.
	Variant string
	// Handler is the (simplified) synthesized expression.
	Handler string
	// Distance is the final summed DTW distance over all segments — the
	// common yardstick, regardless of the metric used during search.
	Distance float64
	// HandlersScored is the search effort actually spent.
	HandlersScored int
	Err            error
}

// ablationVariants builds the option sets, all derived from the same base.
func ablationVariants(base core.Options) []struct {
	name string
	opts core.Options
} {
	euclid := base
	euclid.Metric = dist.Euclidean{}

	noPrune := base
	noPrune.NoBucketPruning = true

	randSeg := base
	randSeg.RandomSegments = true

	smallPool := base
	d := *base.DSL
	d.Constants = []float64{0.5, 1, 2}
	smallPool.DSL = &d

	return []struct {
		name string
		opts core.Options
	}{
		{"baseline (DTW, buckets, diverse)", base},
		{"euclidean search metric", euclid},
		{"no bucket pruning", noPrune},
		{"random segment selection", randSeg},
		{"constant pool {0.5,1,2}", smallPool},
	}
}

// Ablation runs every variant on one CCA's traces.
func Ablation(ccaName string, s Scale) ([]AblationRow, error) {
	ds, err := Collect(ccaName, s)
	if err != nil {
		return nil, err
	}
	d, err := dsl.Named(expr.DSLHint(ccaName))
	if err != nil {
		return nil, err
	}
	base := core.Options{
		DSL:         d,
		MaxHandlers: s.MaxHandlers,
		ScanBudget:  s.ScanBudget,
		Seed:        s.Seed,
		Obs:         s.Obs,
	}
	var rows []AblationRow
	for _, v := range ablationVariants(base) {
		res, err := core.Synthesize(s.context(), ds.Segments, v.opts)
		row := AblationRow{Variant: v.name}
		if err != nil {
			row.Err = err
			rows = append(rows, row)
			continue
		}
		row.Handler = dsl.Simplify(res.Handler).String()
		// Re-score every variant under DTW over all segments so the
		// comparison is apples-to-apples.
		row.Distance = res.Distance
		if _, isDTW := v.opts.Metric.(dist.DTW); v.opts.Metric != nil && !isDTW {
			row.Distance = rescoreDTW(res, ds)
		}
		row.HandlersScored = res.Stats.HandlersScored
		rows = append(rows, row)
	}
	return rows, nil
}

// rescoreDTW re-evaluates a result under the common DTW yardstick.
func rescoreDTW(res *core.Result, ds *Dataset) float64 {
	d, _ := replay.NewScorer(ds.Segments, dist.DTW{}).Score(res.Handler, math.Inf(1))
	return d
}

// FormatAblation renders the comparison.
func FormatAblation(cca string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ablation on %s traces (equal handler budget; DTW yardstick)\n", cca)
	fmt.Fprintf(&b, "%-34s %10s %10s  %s\n", "variant", "DTW dist", "handlers", "handler")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-34s failed: %v\n", r.Variant, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-34s %10.2f %10d  %s\n", r.Variant, r.Distance, r.HandlersScored, r.Handler)
	}
	return b.String()
}
