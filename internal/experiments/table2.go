package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/cca"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/expr"
	"repro/internal/replay"
)

// Table2Row is one CCA's synthesis outcome, mirroring a row of the paper's
// Table 2.
type Table2Row struct {
	// CCA is the ground-truth algorithm the traces came from.
	CCA string
	// DSLName is the sub-DSL searched (classifier hint).
	DSLName string
	// Synthesized is Abagnale's output handler and SynthDistance its
	// summed DTW distance over the trace segments.
	Synthesized   string
	SynthDistance float64
	// FineTuned is the expert handler for the CCA (empty if none exists)
	// and FineDistance its summed distance over the same segments.
	FineTuned    string
	FineDistance float64
	// Segments is how many trace segments the distances sum over.
	Segments int
	// Err records a failed synthesis (e.g. out-of-scope CCAs).
	Err error
}

// Table2CCAs lists the algorithms the paper runs Abagnale on: the kernel
// CCAs minus CDG (randomized, out of DSL) and HighSpeed (log-table, out of
// DSL), plus the seven student CCAs (§5.1, §5.5).
func Table2CCAs() []string {
	var out []string
	for _, n := range cca.KernelNames() {
		if n == "cdg" || n == "highspeed" {
			continue
		}
		out = append(out, n)
	}
	return append(out, cca.StudentNames()...)
}

// Table2 synthesizes every requested CCA and scores the fine-tuned
// handlers over the same segments. A nil classifier skips the hint step
// and uses the static per-CCA DSL mapping.
func Table2(ccas []string, s Scale, cls *classify.Classifier) ([]Table2Row, error) {
	if ccas == nil {
		ccas = Table2CCAs()
	}
	var rows []Table2Row
	for _, name := range ccas {
		row, err := table2Row(name, s, cls)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// table2Row runs the full pipeline for one CCA.
func table2Row(name string, s Scale, cls *classify.Classifier) (Table2Row, error) {
	ds, err := Collect(name, s)
	if err != nil {
		return Table2Row{}, err
	}
	dslName := expr.DSLHint(name)
	if cls != nil {
		// Classify the first trace to pick the sub-DSL, as §3.3 does.
		key := classify.ConfigKey(int(ds.Configs[0].RTT/time.Millisecond), ds.Configs[0].Bandwidth)
		if res, err := cls.Classify(key, ds.Traces[0]); err == nil {
			dslName = res.HintDSL()
		}
	}
	d, err := dsl.Named(dslName)
	if err != nil {
		return Table2Row{}, err
	}
	s.Obs.Progressf("table2 %s: synthesizing over %d segments (%s DSL)", name, len(ds.Segments), dslName)
	res, err := core.Synthesize(s.context(), ds.Segments, core.Options{
		DSL:         d,
		MaxHandlers: s.MaxHandlers,
		ScanBudget:  s.ScanBudget,
		Seed:        s.Seed,
		Obs:         s.Obs,
		RunName:     "table2/" + name,
	})
	row := Table2Row{CCA: name, DSLName: dslName, Segments: len(ds.Segments)}
	if err != nil {
		row.Err = err
		return row, nil
	}
	// The paper arithmetically simplifies synthesized expressions for
	// readability before printing them (§5.1).
	row.Synthesized = dsl.Simplify(res.Handler).String()
	row.SynthDistance = res.Distance
	if f, err := expr.Lookup(name); err == nil {
		row.FineTuned = f.Source
		row.FineDistance, _ = replay.NewScorer(ds.Segments, dist.DTW{}).Score(f.Handler(), math.Inf(1))
	} else {
		row.FineDistance = math.NaN()
	}
	return row, nil
}

// FormatTable2 renders rows the way the paper prints Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %-58s %10s  %-58s %10s\n",
		"CCA", "DSL", "Synthesized cwnd-ack handler", "DTW dist", "Fine-tuned cwnd-ack handler", "DTW dist")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-10s %-6s synthesis failed: %v\n", r.CCA, r.DSLName, r.Err)
			continue
		}
		fine, fd := "-", "-"
		if r.FineTuned != "" {
			fine = r.FineTuned
			fd = fmt.Sprintf("%.2f", r.FineDistance)
		}
		fmt.Fprintf(&b, "%-10s %-6s %-58s %10.2f  %-58s %10s\n",
			r.CCA, r.DSLName, clip(r.Synthesized, 58), r.SynthDistance, clip(fine, 58), fd)
	}
	return b.String()
}

// clip shortens long expressions for the fixed-width rendering.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
