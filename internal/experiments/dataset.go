// Package experiments regenerates every table and figure of the paper's
// evaluation (§5-§6): trace collection over the testbed grid, synthesis per
// CCA (Table 2), classification (Table 3), search accuracy (Table 4),
// distance-metric error tolerance (Figure 3), the BBR pulse case study
// (Figure 4), the HTCP inflection case study (Figure 5), DSL-input impact
// on the student CCAs (Figure 6), and the search-efficiency accounting of
// §6.1. Both cmd/experiments and the repository's benchmark harness drive
// these entry points.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cca"
	"repro/internal/classify"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scale tunes how much work the experiments do. Full reproduces the
// evaluation at paper-like trace volume; Quick shrinks runs for benchmarks
// and smoke tests while keeping every code path identical.
type Scale struct {
	// Duration of each simulated flow.
	Duration time.Duration
	// RTTs and Bandwidths form the testbed grid (§3.2: 10-100ms,
	// 5-15 Mbit/s).
	RTTs       []time.Duration
	Bandwidths []float64
	// Jitter and LossRate are the measurement-noise knobs.
	Jitter   time.Duration
	LossRate float64
	// MaxHandlers bounds each synthesis run.
	MaxHandlers int
	// ScanBudget bounds per-bucket enumeration effort in each synthesis
	// run (0 uses core's default).
	ScanBudget int
	// MinSegment is the minimum samples per trace segment.
	MinSegment int
	// Seed drives everything.
	Seed int64
	// Ctx, when set, is threaded into every synthesis run so SIGINT (or
	// any cancellation) winds experiments down gracefully; nil means
	// context.Background().
	Ctx context.Context
	// Obs, when set, is threaded into every simulation and synthesis run
	// the experiment performs (metrics, spans, progress). Nil disables
	// instrumentation.
	Obs *obs.Registry
}

// FullScale is the paper-like configuration.
func FullScale() Scale {
	return Scale{
		Duration:    30 * time.Second,
		RTTs:        []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 100 * time.Millisecond},
		Bandwidths:  []float64{5e6 / 8, 10e6 / 8, 15e6 / 8},
		Jitter:      time.Millisecond,
		LossRate:    0.0005,
		MaxHandlers: 120000,
		ScanBudget:  150000,
		MinSegment:  16,
		Seed:        1,
	}
}

// QuickScale is a reduced configuration for benchmarks: one short scenario
// per RTT/bandwidth pair and a small search budget.
func QuickScale() Scale {
	return Scale{
		Duration:    12 * time.Second,
		RTTs:        []time.Duration{40 * time.Millisecond, 100 * time.Millisecond},
		Bandwidths:  []float64{10e6 / 8},
		Jitter:      500 * time.Microsecond,
		LossRate:    0.0005,
		MaxHandlers: 8000,
		ScanBudget:  30000,
		MinSegment:  16,
		Seed:        1,
	}
}

// context returns the scale's context, defaulting to Background.
func (s Scale) context() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// Grid expands the scale into simulator scenarios for one CCA.
func (s Scale) Grid(ccaName string) []sim.Config {
	var cfgs []sim.Config
	i := int64(0)
	for _, rtt := range s.RTTs {
		for _, bw := range s.Bandwidths {
			i++
			cfgs = append(cfgs, sim.Config{
				CCA:       ccaName,
				Bandwidth: bw,
				RTT:       rtt,
				Duration:  s.Duration,
				Jitter:    s.Jitter,
				LossRate:  s.LossRate,
				Seed:      s.Seed*1000 + i,
				Obs:       s.Obs,
			})
		}
	}
	return cfgs
}

// Dataset is the analyzed trace collection for one CCA.
type Dataset struct {
	// CCA is the ground-truth algorithm.
	CCA string
	// Traces holds one analyzed trace per scenario.
	Traces []*trace.Trace
	// Configs aligns 1:1 with Traces.
	Configs []sim.Config
	// Segments is the concatenated between-loss segmentation.
	Segments []*trace.Segment
}

// datasetCache avoids re-simulating the same (cca, scale-ish) inputs
// within one process; keyed by cca + seed + duration.
var datasetCache sync.Map

type datasetKey struct {
	cca  string
	seed int64
	dur  time.Duration
	n    int
}

// Collect simulates the grid for a CCA and analyzes every capture.
func Collect(ccaName string, s Scale) (*Dataset, error) {
	key := datasetKey{cca: ccaName, seed: s.Seed, dur: s.Duration, n: len(s.RTTs) * len(s.Bandwidths)}
	if v, ok := datasetCache.Load(key); ok {
		return v.(*Dataset), nil
	}
	ds := &Dataset{CCA: ccaName}
	for _, cfg := range s.Grid(ccaName) {
		s.Obs.Progressf("collect %s: rtt=%v bw=%.1fMbit/s", ccaName, cfg.RTT, cfg.Bandwidth*8/1e6)
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: simulating %s: %w", ccaName, err)
		}
		tr, err := trace.AnalyzeRecords(res.Records)
		if err != nil {
			return nil, fmt.Errorf("experiments: analyzing %s: %w", ccaName, err)
		}
		tr.Label = ccaName
		ds.Traces = append(ds.Traces, tr)
		ds.Configs = append(ds.Configs, cfg)
		ds.Segments = append(ds.Segments, tr.Split(s.MinSegment)...)
	}
	if len(ds.Segments) == 0 {
		// Near-lossless CCAs (Vegas at large buffers) may produce a
		// single unsegmented trace; fall back to whole traces.
		for _, tr := range ds.Traces {
			ds.Segments = append(ds.Segments, &trace.Segment{
				Samples: tr.Samples, MSS: tr.MSS, Label: tr.Label,
			})
		}
	}
	datasetCache.Store(key, ds)
	return ds, nil
}

// BuildClassifier assembles the reference library over the kernel CCAs
// (two noisy runs per scenario per CCA) and calibrates its Unknown
// threshold — the Gordon/CCAnalyzer stand-in used for Table 3 and the
// sub-DSL hints.
func BuildClassifier(s Scale) (*classify.Classifier, error) {
	c := classify.New(nil)
	for _, name := range cca.KernelNames() {
		s.Obs.Progressf("classifier library: simulating %s", name)
		for _, cfg := range s.Grid(name) {
			for rep := int64(0); rep < 2; rep++ {
				run := cfg
				run.Seed = cfg.Seed + 7000 + rep // distinct from probe seeds
				res, err := sim.Run(run)
				if err != nil {
					return nil, err
				}
				tr, err := trace.AnalyzeRecords(res.Records)
				if err != nil {
					return nil, err
				}
				key := classify.ConfigKey(int(cfg.RTT/time.Millisecond), cfg.Bandwidth)
				c.Add(key, name, tr)
			}
		}
	}
	c.Calibrate(1.5)
	return c, nil
}
