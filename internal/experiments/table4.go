package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/expr"
)

// Table4Row reports where the refinement loop ranked the fine-tuned
// handler's bucket after iterations 1 and 2 (§6.2) — how close the search
// came to the expert answer before committing elsewhere.
type Table4Row struct {
	// CCA is the algorithm under synthesis.
	CCA string
	// Rank1/Total1 is the fine-tuned bucket's position after iteration 1
	// (e.g. the paper's "4/127" for BBR). Rank1 == 0 means the bucket was
	// empty or absent.
	Rank1, Total1 int
	// Rank2/Total2 is the position after iteration 2; Total2 == 0 when
	// the loop finished in one iteration.
	Rank2, Total2 int
	// Survived1 reports whether the bucket advanced past iteration 1.
	Survived1 bool
}

// Table4 runs an instrumented synthesis per CCA and extracts the
// fine-tuned handler's bucket trajectory.
func Table4(ccas []string, s Scale) ([]Table4Row, error) {
	if ccas == nil {
		ccas = expr.Names()
	}
	var rows []Table4Row
	for _, name := range ccas {
		f, err := expr.Lookup(name)
		if err != nil {
			continue // no fine-tuned handler for this CCA
		}
		ds, err := Collect(name, s)
		if err != nil {
			return rows, err
		}
		d, err := dsl.Named(f.DSLName)
		if err != nil {
			return rows, err
		}
		res, err := core.Synthesize(s.context(), ds.Segments, core.Options{
			DSL:         d,
			MaxHandlers: s.MaxHandlers,
			Seed:        s.Seed,
			Obs:         s.Obs,
		})
		if err != nil {
			return rows, err
		}
		ops := f.Handler().Ops()
		row := Table4Row{CCA: name}
		its := res.Stats.Iterations
		if len(its) >= 1 {
			row.Rank1 = its[0].RankOf(ops)
			row.Total1 = len(its[0].Ranking)
			row.Survived1 = row.Rank1 > 0 && row.Rank1 <= its[0].Kept
		}
		if len(its) >= 2 {
			row.Rank2 = its[1].RankOf(ops)
			row.Total2 = len(its[1].Ranking)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders the ranks like the paper ("4/127", "3/5").
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-18s %-18s\n", "CCA", "pos. after iter 1", "pos. after iter 2")
	for _, r := range rows {
		p1 := "-"
		if r.Rank1 > 0 {
			p1 = fmt.Sprintf("%d/%d", r.Rank1, r.Total1)
		}
		p2 := "-"
		if r.Rank2 > 0 {
			p2 = fmt.Sprintf("%d/%d", r.Rank2, r.Total2)
		}
		fmt.Fprintf(&b, "%-10s %-18s %-18s\n", r.CCA, p1, p2)
	}
	return b.String()
}
