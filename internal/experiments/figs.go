package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/enum"
	"repro/internal/expr"
	"repro/internal/replay"
)

// Fig4Result reproduces the BBR pulse case study (§5.2, Figure 4): the
// synthesized and fine-tuned BBR handlers scored per trace segment. The
// paper's observation is that neither dominates — the fine-tuned handler's
// aligned pulses win on some traces while DTW's shift-tolerance lets the
// synthesized handler win on others.
type Fig4Result struct {
	// Synth and Fine are the two handlers compared.
	Synth, Fine string
	// SynthWins / FineWins count segments each handler scored lower on.
	SynthWins, FineWins int
	// BestSynthSegment is a segment where the synthesized handler beat
	// the fine-tuned one hardest (Figure 4b), and BestFineSegment the
	// converse (Figure 4a). Distances are (synth, fine) pairs.
	BestSynthSegment [2]float64
	BestFineSegment  [2]float64
}

// Fig4SynthesizedBBR is the paper's synthesized BBR handler (Table 2):
// cwnd-parity pulses on top of a 2x BDP baseline. Constants are as
// published; the windows in this reproduction are bytes, so the parity
// test uses the window in MSS units via cwnd % (2.7*mss).
const Fig4SynthesizedBBR = "2*ack-rate*min-rtt + ({cwnd % 2.7*mss = 0} ? 2.05*cwnd : mss)"

// Fig4 scores both BBR handlers on every BBR trace segment.
func Fig4(s Scale) (*Fig4Result, error) {
	ds, err := Collect("bbr", s)
	if err != nil {
		return nil, err
	}
	fine, err := expr.Lookup("bbr")
	if err != nil {
		return nil, err
	}
	synthH := dsl.MustParse(Fig4SynthesizedBBR)
	fineH := fine.Handler()
	m := dist.DTW{}
	res := &Fig4Result{Synth: Fig4SynthesizedBBR, Fine: fine.Source}
	bestSynthGap, bestFineGap := math.Inf(-1), math.Inf(-1)
	scorer := replay.NewScorer(ds.Segments, m)
	for i := range ds.Segments {
		sd, _ := scorer.SegmentScore(synthH, i, math.Inf(1))
		fd, _ := scorer.SegmentScore(fineH, i, math.Inf(1))
		if math.IsInf(sd, 1) || math.IsInf(fd, 1) {
			continue
		}
		if sd < fd {
			res.SynthWins++
			if fd-sd > bestSynthGap {
				bestSynthGap = fd - sd
				res.BestSynthSegment = [2]float64{sd, fd}
			}
		} else {
			res.FineWins++
			if sd-fd > bestFineGap {
				bestFineGap = sd - fd
				res.BestFineSegment = [2]float64{sd, fd}
			}
		}
	}
	return res, nil
}

// FormatFig4 renders the case study.
func FormatFig4(r *Fig4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "synthesized: %s\nfine-tuned : %s\n", r.Synth, r.Fine)
	fmt.Fprintf(&b, "segments won — synthesized: %d, fine-tuned: %d\n", r.SynthWins, r.FineWins)
	if r.FineWins > 0 {
		fmt.Fprintf(&b, "fig 4a (fine-tuned wins): synth %.2f vs fine %.2f\n",
			r.BestFineSegment[0], r.BestFineSegment[1])
	}
	if r.SynthWins > 0 {
		fmt.Fprintf(&b, "fig 4b (synthesized wins): synth %.2f vs fine %.2f\n",
			r.BestSynthSegment[0], r.BestSynthSegment[1])
	}
	return b.String()
}

// Fig5Result reproduces the HTCP case study (Figure 5): a plain
// Reno-variant handler achieves a low distance on HTCP traces despite the
// inflection point in the window growth, which is why Abagnale does not
// explore more complex handlers for HTCP.
type Fig5Result struct {
	// RenoDistance is "cwnd + reno-inc" scored over the HTCP segments.
	RenoDistance float64
	// FineDistance is the fine-tuned HTCP handler over the same segments.
	FineDistance float64
	// Segments is the segment count.
	Segments int
	// GapPercent is how much worse (positive) or better the plain Reno
	// handler is, in percent of the fine-tuned distance.
	GapPercent float64
}

// Fig5 scores the two handlers over HTCP traces.
func Fig5(s Scale) (*Fig5Result, error) {
	ds, err := Collect("htcp", s)
	if err != nil {
		return nil, err
	}
	fine, err := expr.Lookup("htcp")
	if err != nil {
		return nil, err
	}
	scorer := replay.NewScorer(ds.Segments, dist.DTW{})
	reno, _ := scorer.Score(dsl.MustParse("cwnd + reno-inc"), math.Inf(1))
	fd, _ := scorer.Score(fine.Handler(), math.Inf(1))
	return &Fig5Result{
		RenoDistance: reno,
		FineDistance: fd,
		Segments:     len(ds.Segments),
		GapPercent:   100 * (reno - fd) / fd,
	}, nil
}

// FormatFig5 renders the case study.
func FormatFig5(r *Fig5Result) string {
	return fmt.Sprintf(
		"reno-variant handler distance: %.2f\nfine-tuned HTCP distance:      %.2f\ngap: %+.1f%% over %d segments\n",
		r.RenoDistance, r.FineDistance, r.GapPercent, r.Segments)
}

// Fig6Row is one (student CCA, DSL variant) synthesis outcome (§6.3).
type Fig6Row struct {
	CCA      string
	DSLLabel string
	Handler  string
	Distance float64
	Err      error
}

// fig6DSL builds the Figure 6 DSL variants: Delay-7 and Delay-11 (depth 4,
// 7 or 11 nodes, no vegas macro) and Vegas-11 (depth 5, 11 nodes, with the
// vegas-diff macro).
func fig6DSL(label string) *dsl.DSL {
	switch label {
	case "Delay-7":
		d := dsl.Delay()
		d.MaxNodes = 7
		return d
	case "Delay-11":
		d := dsl.Delay()
		d.MaxNodes = 11
		return d
	case "Vegas-11":
		d := dsl.Vegas()
		d.MaxDepth = 5
		d.MaxNodes = 11
		return d
	default:
		panic("unknown fig6 DSL " + label)
	}
}

// Fig6Labels lists the DSL variants in presentation order.
func Fig6Labels() []string { return []string{"Delay-7", "Delay-11", "Vegas-11"} }

// Fig6 synthesizes the two student CCAs the paper examines under each DSL
// variant, with equal search budgets — reproducing the effect that a
// richer DSL helps when its extra components matter (student 1) and hurts
// when they only enlarge the space (student 3).
func Fig6(s Scale, students []string) ([]Fig6Row, error) {
	if students == nil {
		students = []string{"student1", "student3"}
	}
	var rows []Fig6Row
	for _, st := range students {
		ds, err := Collect(st, s)
		if err != nil {
			return rows, err
		}
		for _, label := range Fig6Labels() {
			res, err := core.Synthesize(s.context(), ds.Segments, core.Options{
				DSL:         fig6DSL(label),
				MaxHandlers: s.MaxHandlers,
				ScanBudget:  s.ScanBudget,
				Seed:        s.Seed,
				Obs:         s.Obs,
			})
			row := Fig6Row{CCA: st, DSLLabel: label}
			if err != nil {
				row.Err = err
			} else {
				row.Handler = res.Handler.String()
				row.Distance = res.Distance
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFig6 renders the DSL-impact table.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-9s %10s  %s\n", "CCA", "DSL", "DTW dist", "handler")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-10s %-9s failed: %v\n", r.CCA, r.DSLLabel, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-10s %-9s %10.2f  %s\n", r.CCA, r.DSLLabel, r.Distance, r.Handler)
	}
	return b.String()
}

// EfficiencyResult reproduces §6.1's search-efficiency accounting for the
// Reno DSL.
type EfficiencyResult struct {
	// SpaceSketches is the viable depth-3 Reno-DSL sketch count after all
	// enumeration pruning (the paper reports 1,617; our canonicalizer
	// differs in detail).
	SpaceSketches int
	// Buckets is the number of non-empty buckets.
	Buckets int
	// Iterations summarizes the refinement loop.
	Iterations []core.IterationStats
	// HandlersScored is the total concrete handlers evaluated.
	HandlersScored int
	// SketchesSampled is the number of sketches drawn across iterations.
	SketchesSampled int
	// FractionExplored is SketchesSampled / SpaceSketches.
	FractionExplored float64
	// Handler is the returned expression.
	Handler string
}

// Efficiency runs the instrumented Reno synthesis of §6.1.
func Efficiency(s Scale) (*EfficiencyResult, error) {
	ds, err := Collect("reno", s)
	if err != nil {
		return nil, err
	}
	d := dsl.Reno()
	space := enum.New(d).Count()
	res, err := core.Synthesize(s.context(), ds.Segments, core.Options{
		DSL:         d,
		MaxHandlers: s.MaxHandlers,
		ScanBudget:  s.ScanBudget,
		Seed:        s.Seed,
		Obs:         s.Obs,
	})
	if err != nil {
		return nil, err
	}
	out := &EfficiencyResult{
		SpaceSketches:    space,
		Buckets:          res.Stats.SpaceBuckets,
		Iterations:       res.Stats.Iterations,
		HandlersScored:   res.Stats.HandlersScored,
		SketchesSampled:  res.Stats.SketchesScored,
		Handler:          res.Handler.String(),
		FractionExplored: float64(res.Stats.SketchesScored) / float64(space),
	}
	return out, nil
}

// FormatEfficiency renders the §6.1 narrative numbers.
func FormatEfficiency(r *EfficiencyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reno-DSL viable sketches (depth 3): %d across %d non-empty buckets\n",
		r.SpaceSketches, r.Buckets)
	for _, it := range r.Iterations {
		fmt.Fprintf(&b, "iteration %d: N=%d, %d segments, %d handlers scored, %d buckets kept\n",
			it.Index, it.SamplesPerBucket, it.Segments, it.HandlersScored, it.Kept)
	}
	fmt.Fprintf(&b, "total: %d handlers from %d sketches (%.1f%% of the viable space)\n",
		r.HandlersScored, r.SketchesSampled, 100*r.FractionExplored)
	fmt.Fprintf(&b, "returned handler: %s\n", r.Handler)
	return b.String()
}
