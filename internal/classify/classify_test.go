package classify

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/trace"
)

// traceFor simulates one scenario and analyzes its capture.
var traceCache sync.Map

type cacheKey struct {
	cca  string
	seed int64
}

func traceFor(t *testing.T, cca string, seed int64) *trace.Trace {
	t.Helper()
	if v, ok := traceCache.Load(cacheKey{cca, seed}); ok {
		return v.(*trace.Trace)
	}
	res, err := sim.Run(sim.Config{
		CCA:       cca,
		Bandwidth: 10e6 / 8,
		RTT:       40 * time.Millisecond,
		Duration:  15 * time.Second,
		Jitter:    500 * time.Microsecond, // make seeds matter
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.AnalyzeRecords(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	tr.Label = cca
	traceCache.Store(cacheKey{cca, seed}, tr)
	return tr
}

const testKey = "rtt=40ms,bw=1250000"

// buildClassifier registers two reference runs for a few contrasting CCAs.
func buildClassifier(t *testing.T) *Classifier {
	t.Helper()
	c := New(nil)
	for _, cca := range []string{"reno", "cubic", "vegas", "bbr"} {
		c.Add(testKey, cca, traceFor(t, cca, 100))
		c.Add(testKey, cca, traceFor(t, cca, 101))
	}
	return c
}

func TestClassifyKnownCCAs(t *testing.T) {
	c := buildClassifier(t)
	for _, cca := range []string{"reno", "vegas", "bbr"} {
		probe := traceFor(t, cca, 77) // unseen seed
		res, err := c.Classify(testKey, probe)
		if err != nil {
			t.Fatal(err)
		}
		if res.Label != cca {
			t.Errorf("%s classified as %q (nearest %v)", cca, res.Label, res.Nearest[:2])
		}
	}
}

func TestClassifyUnknownWithThreshold(t *testing.T) {
	c := buildClassifier(t)
	c.Calibrate(1.2) // tight margin
	// A constant-window student CCA resembles none of the references.
	probe := traceFor(t, "student4", 77)
	res, err := c.Classify(testKey, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unknown {
		t.Errorf("student4 classified as %q, want Unknown", res.Label)
	}
	if len(res.Nearest) == 0 {
		t.Fatal("Unknown verdict lost the nearest-match list")
	}
	if res.HintDSL() == "" {
		t.Error("Unknown result produced no DSL hint")
	}
}

func TestClassifyNoReferences(t *testing.T) {
	c := New(nil)
	if _, err := c.Classify("nope", traceFor(t, "reno", 1)); err == nil {
		t.Error("classification without references succeeded")
	}
}

func TestNearestSorted(t *testing.T) {
	c := buildClassifier(t)
	res, err := c.Classify(testKey, traceFor(t, "cubic", 55))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Nearest); i++ {
		if res.Nearest[i].Distance < res.Nearest[i-1].Distance {
			t.Fatal("nearest list not sorted")
		}
	}
	if len(res.Nearest) != 4 {
		t.Errorf("nearest has %d labels, want 4", len(res.Nearest))
	}
}

func TestCalibrateSetsFiniteThreshold(t *testing.T) {
	c := buildClassifier(t)
	if !math.IsInf(c.Threshold, 1) {
		t.Fatal("threshold not infinite before calibration")
	}
	c.Calibrate(0)
	if math.IsInf(c.Threshold, 1) || c.Threshold <= 0 {
		t.Errorf("calibrated threshold = %v", c.Threshold)
	}
}

func TestHintDSLKnown(t *testing.T) {
	r := Result{Label: "reno"}
	if r.HintDSL() != "reno" {
		t.Errorf("hint = %q", r.HintDSL())
	}
	r = Result{Label: Unknown, Unknown: true, Nearest: []Match{{Label: "vegas"}}}
	if r.HintDSL() != "vegas" {
		t.Errorf("unknown hint = %q", r.HintDSL())
	}
}

func TestConfigKey(t *testing.T) {
	if got := ConfigKey(40, 1.25e6); got != testKey {
		t.Errorf("ConfigKey = %q, want %q", got, testKey)
	}
}

func TestClassifierWithEuclidean(t *testing.T) {
	c := New(dist.Euclidean{})
	c.Add(testKey, "reno", traceFor(t, "reno", 100))
	c.Add(testKey, "vegas", traceFor(t, "vegas", 100))
	res, err := c.Classify(testKey, traceFor(t, "reno", 77))
	if err != nil {
		t.Fatal(err)
	}
	if res.Label != "reno" {
		t.Errorf("euclidean classifier labeled reno as %q", res.Label)
	}
}
