package classify

import (
	"math"
	"testing"
)

func TestExtractFeaturesContrasts(t *testing.T) {
	reno := ExtractFeatures(traceFor(t, "reno", 300))
	vegas := ExtractFeatures(traceFor(t, "vegas", 300))
	bbr := ExtractFeatures(traceFor(t, "bbr", 300))
	scalable := ExtractFeatures(traceFor(t, "scalable", 300))

	// Vegas holds a near-flat window; Reno saws.
	if !(vegas.Flatness > reno.Flatness) {
		t.Errorf("vegas flatness %.3f not above reno %.3f", vegas.Flatness, reno.Flatness)
	}
	// BBR pulses more than Reno.
	if !(bbr.PulseScore > reno.PulseScore) {
		t.Errorf("bbr pulse score %.3f not above reno %.3f", bbr.PulseScore, reno.PulseScore)
	}
	// Scalable backs off less than Reno on loss.
	if scalable.DecreaseRatio <= reno.DecreaseRatio {
		t.Errorf("scalable decrease %.2f not gentler than reno %.2f",
			scalable.DecreaseRatio, reno.DecreaseRatio)
	}
	// Reno's queue-filling growth correlates window with RTT.
	if reno.DelayCorr < 0.2 {
		t.Errorf("reno delay correlation %.2f unexpectedly low", reno.DelayCorr)
	}
}

func TestFeatureVectorStable(t *testing.T) {
	f1 := ExtractFeatures(traceFor(t, "reno", 300))
	f2 := ExtractFeatures(traceFor(t, "reno", 300))
	v1, v2 := f1.Vector(), f2.Vector()
	if len(v1) != 6 {
		t.Fatalf("vector length %d", len(v1))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("features not deterministic for identical traces")
		}
		if math.IsNaN(v1[i]) || math.IsInf(v1[i], 0) {
			t.Fatalf("feature %d not finite: %v", i, v1[i])
		}
	}
}

func TestFeatureClassifierLabelsKnownCCAs(t *testing.T) {
	c := NewFeatureClassifier()
	for _, cca := range []string{"reno", "vegas", "bbr", "scalable"} {
		c.Add(cca, traceFor(t, cca, 100))
		c.Add(cca, traceFor(t, cca, 101))
	}
	correct := 0
	for _, cca := range []string{"reno", "vegas", "bbr", "scalable"} {
		res, err := c.Classify(traceFor(t, cca, 77))
		if err != nil {
			t.Fatal(err)
		}
		if res.Label == cca {
			correct++
		} else {
			t.Logf("%s classified as %s", cca, res.Label)
		}
	}
	// Feature classification is coarser than curve distance; require a
	// strong majority rather than perfection.
	if correct < 3 {
		t.Errorf("feature classifier got %d/4 correct", correct)
	}
}

func TestFeatureClassifierEmpty(t *testing.T) {
	c := NewFeatureClassifier()
	if _, err := c.Classify(traceFor(t, "reno", 1)); err == nil {
		t.Error("empty feature classifier classified")
	}
}

func TestFeatureClassifierUnknownThreshold(t *testing.T) {
	c := NewFeatureClassifier()
	c.Add("reno", traceFor(t, "reno", 100))
	c.Add("reno", traceFor(t, "reno", 101))
	c.Threshold = 1e-12 // everything is Unknown under a zero threshold
	res, err := c.Classify(traceFor(t, "vegas", 77))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unknown {
		t.Errorf("tight threshold still labeled %q", res.Label)
	}
}

func TestStatHelpers(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("empty median = %v", m)
	}
	if c := correlation([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8}); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", c)
	}
	if c := correlation([]float64{1, 2, 3, 4}, []float64{8, 6, 4, 2}); math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", c)
	}
	if c := correlation([]float64{1, 1, 1}, []float64{1, 2, 3}); c != 0 {
		t.Errorf("degenerate correlation = %v", c)
	}
}
