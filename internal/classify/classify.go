// Package classify implements a CCA classifier in the style of CCAnalyzer
// [Ware et al., SIGCOMM '24]: it compares a connection's observed CWND
// time series against a library of reference traces from known CCAs
// collected under the same network conditions, labels the connection with
// the nearest reference, and reports "Unknown" when nothing is close
// enough. Abagnale uses the classifier's output only as a hint for which
// sub-DSL to search (§3.3, Table 3).
package classify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/expr"
	"repro/internal/trace"
)

// reference is one labeled CWND series under one network configuration.
type reference struct {
	label  string
	series dist.Series
}

// Classifier is a nearest-reference-trace CCA classifier.
type Classifier struct {
	metric dist.Metric
	// refs groups references by network-configuration key: traces are
	// only compared against references from matching conditions.
	refs map[string][]reference
	// Threshold is the distance above which a connection is Unknown;
	// +Inf (the default) disables the Unknown verdict. Calibrate sets it
	// from the reference library itself.
	Threshold float64
	// perLabel holds per-label thresholds from Calibrate: a label is only
	// assigned when the probe sits within margin x that label's own
	// intra-reference spread; otherwise the verdict is Unknown.
	perLabel map[string]float64
}

// New builds an empty classifier; nil metric means DTW.
func New(metric dist.Metric) *Classifier {
	if metric == nil {
		metric = dist.DTW{}
	}
	return &Classifier{
		metric:    metric,
		refs:      map[string][]reference{},
		Threshold: math.Inf(1),
	}
}

// ConfigKey builds a canonical key for a network configuration, so that
// references and probes from the same testbed scenario compare against
// each other.
func ConfigKey(rttMillis int, bandwidthBps float64) string {
	return fmt.Sprintf("rtt=%dms,bw=%.0f", rttMillis, bandwidthBps)
}

// Add registers a reference trace for a known CCA under a configuration.
func (c *Classifier) Add(configKey, label string, t *trace.Trace) {
	c.refs[configKey] = append(c.refs[configKey], reference{label: label, series: t.Series()})
}

// Match is one candidate label with its distance.
type Match struct {
	Label    string
	Distance float64
}

// Result is a classification verdict.
type Result struct {
	// Label is the chosen CCA, or "Unknown".
	Label string
	// Unknown reports whether no reference was within the threshold.
	Unknown bool
	// Nearest lists per-label best distances, closest first — the
	// "closest known algorithms" CCAnalyzer reports even for Unknowns.
	Nearest []Match
}

// Unknown label constant.
const Unknown = "Unknown"

// Classify labels a trace measured under the given configuration.
func (c *Classifier) Classify(configKey string, t *trace.Trace) (Result, error) {
	refs := c.refs[configKey]
	if len(refs) == 0 {
		return Result{}, fmt.Errorf("classify: no references for configuration %q", configKey)
	}
	s := t.Series()
	best := map[string]float64{}
	for _, r := range refs {
		d := c.metric.Distance(s, r.series)
		if prev, ok := best[r.label]; !ok || d < prev {
			best[r.label] = d
		}
	}
	var matches []Match
	for label, d := range best {
		matches = append(matches, Match{Label: label, Distance: d})
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Distance != matches[j].Distance {
			return matches[i].Distance < matches[j].Distance
		}
		return matches[i].Label < matches[j].Label
	})
	res := Result{Nearest: matches}
	limit := c.Threshold
	if t, ok := c.perLabel[matches[0].Label]; ok && t < limit {
		limit = t
	}
	if matches[0].Distance > limit {
		res.Label = Unknown
		res.Unknown = true
	} else {
		res.Label = matches[0].Label
	}
	return res, nil
}

// Calibrate sets the Unknown thresholds from the reference library: for
// every label with at least two references under one configuration, the
// label's threshold is margin times its own worst intra-label distance —
// a probe is only assigned a label it resembles as closely as that
// label's runs resemble each other. The global Threshold becomes margin
// times the worst spread overall (a fallback for labels with a single
// reference). With margin <= 0 a default of 3 is used.
func (c *Classifier) Calibrate(margin float64) {
	if margin <= 0 {
		margin = 3
	}
	worst := 0.0
	perLabel := map[string]float64{}
	for _, refs := range c.refs {
		for i := range refs {
			for j := i + 1; j < len(refs); j++ {
				if refs[i].label != refs[j].label {
					continue
				}
				d := c.metric.Distance(refs[i].series, refs[j].series)
				if math.IsInf(d, 0) {
					continue
				}
				if d > worst {
					worst = d
				}
				if d > perLabel[refs[i].label] {
					perLabel[refs[i].label] = d
				}
			}
		}
	}
	if worst > 0 {
		c.Threshold = margin * worst
	}
	c.perLabel = map[string]float64{}
	for label, d := range perLabel {
		if d > 0 {
			c.perLabel[label] = margin * d
		}
	}
}

// HintDSL maps a classification result to the sub-DSL Abagnale should
// search: the labeled CCA's family DSL, or — for Unknowns, as the paper
// does with CCAnalyzer's closest-match output — the family of the nearest
// known CCA.
func (r Result) HintDSL() string {
	label := r.Label
	if r.Unknown && len(r.Nearest) > 0 {
		label = r.Nearest[0].Label
	}
	return expr.DSLHint(label)
}
