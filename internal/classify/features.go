package classify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Feature-based classification in the style of Gordon [Mishra et al.,
// SIGMETRICS '20]: instead of comparing whole CWND curves, extract a small
// vector of behavioral features — growth rate, loss reaction, flatness,
// pulse periodicity, delay sensitivity, growth-curve shape — and label a
// trace by its nearest reference in (z-normalized) feature space. This
// complements the trace-distance classifier: features are robust to
// temporal misalignment but blur fine structure; curve distance is the
// opposite trade.

// Features is the behavioral fingerprint of one trace.
type Features struct {
	// GrowthRate is the median within-segment window growth in MSS per
	// RTT — Reno ~1, Scalable/HTCP higher, Vegas ~0.
	GrowthRate float64
	// DecreaseRatio is the mean post/pre-loss window ratio (Reno ~0.5,
	// Cubic ~0.7, Scalable ~0.875; 1.0 when no losses).
	DecreaseRatio float64
	// Flatness is the inverse normalized within-segment window spread:
	// 1 for a constant window (Vegas/student4), ~0 for a deep sawtooth.
	Flatness float64
	// PulseScore measures short-period oscillation (BBR's PROBE_BW
	// pulses): the relative amplitude of sign flips in the window
	// derivative.
	PulseScore float64
	// DelayCorr is the correlation between window and RTT samples:
	// positive for queue-filling CCAs, near zero for delay-based ones
	// that hold the queue short.
	DelayCorr float64
	// Concavity is the sign-weighted second derivative of the
	// within-segment growth: negative for concave (BIC's binary search),
	// positive for convex (Cubic's late probing), ~0 for linear (Reno).
	Concavity float64
}

// Vector returns the feature values in a fixed order.
func (f Features) Vector() []float64 {
	return []float64{
		f.GrowthRate, f.DecreaseRatio, f.Flatness,
		f.PulseScore, f.DelayCorr, f.Concavity,
	}
}

// ExtractFeatures computes the fingerprint of a trace.
func ExtractFeatures(tr *trace.Trace) Features {
	var f Features
	segs := tr.Split(8)
	if len(segs) == 0 {
		segs = []*trace.Segment{{Samples: tr.Samples, MSS: tr.MSS}}
	}

	f.GrowthRate = medianGrowthRate(segs)
	f.DecreaseRatio = decreaseRatio(tr)
	f.Flatness = flatness(segs)
	f.PulseScore = pulseScore(segs)
	f.DelayCorr = delayCorrelation(tr)
	f.Concavity = concavity(segs)
	return f
}

// medianGrowthRate measures window growth in MSS per RTT within segments.
func medianGrowthRate(segs []*trace.Segment) float64 {
	var rates []float64
	for _, g := range segs {
		n := len(g.Samples)
		if n < 8 {
			continue
		}
		first, last := g.Samples[0], g.Samples[n-1]
		dt := (last.Time - first.Time).Seconds()
		rtt := last.MinRTT.Seconds()
		if dt <= 0 || rtt <= 0 {
			continue
		}
		growthMSS := (last.Cwnd - first.Cwnd) / g.MSS
		rates = append(rates, growthMSS/(dt/rtt))
	}
	return median(rates)
}

// decreaseRatio is the mean post/pre window ratio across inferred losses.
func decreaseRatio(tr *trace.Trace) float64 {
	if len(tr.Losses) == 0 {
		return 1
	}
	var ratios []float64
	for _, lt := range tr.Losses {
		var before float64
		after := math.Inf(1)
		for i := range tr.Samples {
			s := &tr.Samples[i]
			if s.Time < lt {
				before = s.Cwnd
				continue
			}
			if s.Time > lt+3*s.MinRTT {
				break
			}
			if s.Cwnd > 0 && s.Cwnd < after {
				after = s.Cwnd
			}
		}
		if before > 0 && !math.IsInf(after, 1) {
			ratios = append(ratios, math.Min(after/before, 1.5))
		}
	}
	if len(ratios) == 0 {
		return 1
	}
	return mean(ratios)
}

// flatness is 1/(1+cv) of the window within segments, averaged.
func flatness(segs []*trace.Segment) float64 {
	var vals []float64
	for _, g := range segs {
		if len(g.Samples) < 8 {
			continue
		}
		var xs []float64
		for i := range g.Samples {
			xs = append(xs, g.Samples[i].Cwnd)
		}
		m := mean(xs)
		if m <= 0 {
			continue
		}
		vals = append(vals, 1/(1+stddev(xs)/m*10))
	}
	if len(vals) == 0 {
		return 0
	}
	return mean(vals)
}

// pulseScore measures repeated up/down swings within segments.
func pulseScore(segs []*trace.Segment) float64 {
	var scores []float64
	for _, g := range segs {
		n := len(g.Samples)
		if n < 16 {
			continue
		}
		var flips int
		var amp float64
		prevSign := 0
		m := mean(cwnds(g))
		if m <= 0 {
			continue
		}
		for i := 1; i < n; i++ {
			d := g.Samples[i].Cwnd - g.Samples[i-1].Cwnd
			sign := 0
			if d > 0 {
				sign = 1
			} else if d < 0 {
				sign = -1
			}
			if sign != 0 && prevSign != 0 && sign != prevSign {
				flips++
				amp += math.Abs(d) / m
			}
			if sign != 0 {
				prevSign = sign
			}
		}
		dur := (g.Samples[n-1].Time - g.Samples[0].Time).Seconds()
		if dur > 0 {
			scores = append(scores, amp/dur)
		}
	}
	if len(scores) == 0 {
		return 0
	}
	return median(scores)
}

// delayCorrelation is Pearson correlation between window and RTT.
func delayCorrelation(tr *trace.Trace) float64 {
	var ws, rs []float64
	for i := range tr.Samples {
		s := &tr.Samples[i]
		if s.RTT > 0 {
			ws = append(ws, s.Cwnd)
			rs = append(rs, s.RTT.Seconds())
		}
	}
	return correlation(ws, rs)
}

// concavity compares growth in the first and second halves of segments:
// positive when growth accelerates (convex), negative when it decelerates.
func concavity(segs []*trace.Segment) float64 {
	var vals []float64
	for _, g := range segs {
		n := len(g.Samples)
		if n < 16 {
			continue
		}
		mid := n / 2
		g1 := g.Samples[mid].Cwnd - g.Samples[0].Cwnd
		g2 := g.Samples[n-1].Cwnd - g.Samples[mid].Cwnd
		scale := math.Abs(g1) + math.Abs(g2)
		if scale == 0 {
			vals = append(vals, 0)
			continue
		}
		vals = append(vals, (g2-g1)/scale)
	}
	if len(vals) == 0 {
		return 0
	}
	return median(vals)
}

func cwnds(g *trace.Segment) []float64 {
	out := make([]float64, len(g.Samples))
	for i := range g.Samples {
		out[i] = g.Samples[i].Cwnd
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64{}, xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

func correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 3 {
		return 0
	}
	mx, my := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// FeatureClassifier labels traces by nearest reference in z-normalized
// feature space.
type FeatureClassifier struct {
	refs []featureRef
	// Threshold is the normalized feature distance above which a trace
	// is Unknown; +Inf disables the verdict.
	Threshold float64

	// normalization state, rebuilt lazily
	dirty bool
	means []float64
	stds  []float64
}

type featureRef struct {
	label string
	vec   []float64
}

// NewFeatureClassifier builds an empty feature classifier.
func NewFeatureClassifier() *FeatureClassifier {
	return &FeatureClassifier{Threshold: math.Inf(1)}
}

// Add registers a reference trace.
func (c *FeatureClassifier) Add(label string, tr *trace.Trace) {
	c.refs = append(c.refs, featureRef{label: label, vec: ExtractFeatures(tr).Vector()})
	c.dirty = true
}

// normalize (re)computes per-dimension statistics.
func (c *FeatureClassifier) normalize() {
	if !c.dirty {
		return
	}
	c.dirty = false
	if len(c.refs) == 0 {
		return
	}
	dims := len(c.refs[0].vec)
	c.means = make([]float64, dims)
	c.stds = make([]float64, dims)
	for d := 0; d < dims; d++ {
		var col []float64
		for _, r := range c.refs {
			col = append(col, r.vec[d])
		}
		c.means[d] = mean(col)
		c.stds[d] = stddev(col)
		if c.stds[d] == 0 {
			c.stds[d] = 1
		}
	}
}

// distance is the z-normalized Euclidean feature distance.
func (c *FeatureClassifier) distance(a, b []float64) float64 {
	var s float64
	for d := range a {
		da := (a[d] - c.means[d]) / c.stds[d]
		db := (b[d] - c.means[d]) / c.stds[d]
		s += (da - db) * (da - db)
	}
	return math.Sqrt(s)
}

// Classify labels a trace by its nearest feature-space reference.
func (c *FeatureClassifier) Classify(tr *trace.Trace) (Result, error) {
	if len(c.refs) == 0 {
		return Result{}, fmt.Errorf("classify: feature classifier has no references")
	}
	c.normalize()
	vec := ExtractFeatures(tr).Vector()
	best := map[string]float64{}
	for _, r := range c.refs {
		d := c.distance(vec, r.vec)
		if prev, ok := best[r.label]; !ok || d < prev {
			best[r.label] = d
		}
	}
	var matches []Match
	for label, d := range best {
		matches = append(matches, Match{Label: label, Distance: d})
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Distance != matches[j].Distance {
			return matches[i].Distance < matches[j].Distance
		}
		return matches[i].Label < matches[j].Label
	})
	res := Result{Nearest: matches}
	if matches[0].Distance > c.Threshold {
		res.Label = Unknown
		res.Unknown = true
	} else {
		res.Label = matches[0].Label
	}
	return res, nil
}
