// Package sim is a deterministic discrete-event network simulator: a single
// bulk TCP flow crossing a bottleneck link with a droptail queue. It stands
// in for the paper's netem/namespace testbed (RTT 10-100ms, bandwidth
// 5-15 Mbit/s) and produces the packet traces — real pcap bytes captured at
// the sender's vantage point — that the Abagnale pipeline consumes.
package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cca"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config describes one testbed scenario.
type Config struct {
	// CCA is the registered name of the congestion control algorithm.
	CCA string
	// Algorithm optionally supplies a pre-built instance (overrides CCA),
	// e.g. a CDG with a specific seed.
	Algorithm cca.Algorithm

	// Bandwidth is the bottleneck rate in bytes per second.
	Bandwidth float64
	// RTT is the two-way propagation delay (excluding queueing).
	RTT time.Duration
	// QueueBDP sizes the droptail queue as a multiple of the
	// bandwidth-delay product; 0 means 2 BDP.
	QueueBDP float64
	// MSS is the payload bytes per segment; 0 means 1448.
	MSS int
	// Duration is how long the flow runs; 0 means 30 seconds.
	Duration time.Duration
	// LossRate adds i.i.d. random loss on the forward path (noise).
	LossRate float64
	// Jitter adds uniform [0, Jitter) propagation jitter per packet
	// (noise).
	Jitter time.Duration
	// CrossFlows adds competing background TCP flows (Reno unless
	// CrossCCA is set) through the same bottleneck — realistic trace
	// noise: the foreground flow's share of the queue varies over time.
	CrossFlows int
	// CrossCCA names the algorithm the background flows run.
	CrossCCA string
	// Seed drives all simulator randomness; runs are reproducible.
	Seed int64
	// Obs, when set, receives the run's instruments:
	//
	//	counters  sim.events (scheduler events processed),
	//	          sim.drops (packets lost at either link),
	//	          sim.packets_captured (pcap records written)
	//	gauges    sim.max_queue_bytes (peak bottleneck queue depth)
	//
	// Nil disables instrumentation; it never changes simulation behavior.
	Obs *obs.Registry
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1448
	}
	if c.Duration == 0 {
		c.Duration = 30 * time.Second
	}
	if c.QueueBDP == 0 {
		c.QueueBDP = 2
	}
	if c.CrossCCA == "" {
		c.CrossCCA = "reno"
	}
	return c
}

// TruthPoint is a ground-truth sample of the sender's congestion window,
// used only by tests and validation (never by the synthesis pipeline).
type TruthPoint struct {
	Time time.Duration
	Cwnd float64
}

// Stats summarizes one run.
type Stats struct {
	// AckedBytes is total data cumulatively acknowledged.
	AckedBytes int64
	// Drops counts packets lost at the bottleneck (overflow + random).
	Drops int
	// FastRetransmits and Timeouts count loss-recovery episodes.
	FastRetransmits int
	Timeouts        int
	// Throughput is acked bytes / duration, bytes per second.
	Throughput float64
}

// Result is a completed simulation: the pcap capture plus ground truth.
type Result struct {
	Config Config
	// Records is the sender-side capture: outgoing data segments and
	// incoming ACKs, as raw IPv4/TCP packets.
	Records []wire.PcapRecord
	// Truth is the ground-truth cwnd trajectory.
	Truth []TruthPoint
	Stats Stats
}

// WritePcap serializes the capture as a pcap file.
func (r *Result) WritePcap() ([]byte, error) {
	var buf bytes.Buffer
	w := wire.NewPcapWriter(&buf)
	for _, rec := range r.Records {
		if err := w.WritePacket(rec.Time, rec.Data); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// Simulator runs one scenario.
type Simulator struct {
	cfg   Config
	now   time.Duration
	queue eventQueue
	snd   *sender
	rcv   *receiver
	fwd   *link // shared bottleneck: all senders -> receivers
	rev   *link // shared ack path

	// cross holds the background flows' senders (their traffic shares
	// the bottleneck but is not captured).
	cross []*sender

	records []wire.PcapRecord
	truth   []TruthPoint

	senderIP, receiverIP [4]byte
	ipID                 uint16

	// Observability handles (nil no-ops when Config.Obs is unset).
	cEvents  *obs.Counter
	cDrops   *obs.Counter
	cCapture *obs.Counter
	gQueue   *obs.Gauge
}

// Run simulates the scenario and returns its capture.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("sim: bandwidth must be positive")
	}
	if cfg.RTT <= 0 {
		return nil, fmt.Errorf("sim: RTT must be positive")
	}
	alg := cfg.Algorithm
	if alg == nil {
		var err error
		alg, err = cca.New(cfg.CCA)
		if err != nil {
			return nil, err
		}
	}

	s := &Simulator{
		cfg:        cfg,
		senderIP:   [4]byte{10, 0, 0, 1},
		receiverIP: [4]byte{10, 0, 0, 2},
		cEvents:    cfg.Obs.Counter("sim.events"),
		cDrops:     cfg.Obs.Counter("sim.drops"),
		cCapture:   cfg.Obs.Counter("sim.packets_captured"),
		gQueue:     cfg.Obs.Gauge("sim.max_queue_bytes"),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	bdp := cfg.Bandwidth * cfg.RTT.Seconds()
	queueCap := int(cfg.QueueBDP * bdp)
	if queueCap < 4*(cfg.MSS+52) {
		queueCap = 4 * (cfg.MSS + 52)
	}

	s.fwd = &link{
		sim: s, rate: cfg.Bandwidth, propDelay: cfg.RTT / 2,
		queueCap: queueCap, lossRate: cfg.LossRate, jitter: cfg.Jitter, rng: rng,
	}
	s.rev = &link{sim: s, propDelay: cfg.RTT / 2, jitter: cfg.Jitter, rng: rng}

	s.rcv = &receiver{sim: s, pending: map[uint32]int{}}
	s.snd = &sender{sim: s, alg: alg, st: initState(cfg.MSS), mss: cfg.MSS}

	// Wire the topology. Segments carry a flow id so the shared links can
	// demultiplex; the capture tap sits at the foreground sender (flow 0):
	// it sees every data segment as it is handed to the forward link
	// (pre-queue) and every ACK as it arrives back.
	receivers := []*receiver{s.rcv}
	senders := []*sender{s.snd}
	s.snd.xmit = func(p *segment) {
		p.flow = 0
		s.capture(p)
		s.fwd.send(p)
	}
	s.rcv.sendAck = func(p *segment) {
		p.flow = 0
		s.rev.send(p)
	}

	// Background cross-traffic flows.
	for i := 0; i < cfg.CrossFlows; i++ {
		calg, err := cca.New(cfg.CrossCCA)
		if err != nil {
			return nil, err
		}
		flow := i + 1
		crcv := &receiver{sim: s, pending: map[uint32]int{}}
		csnd := &sender{sim: s, alg: calg, st: initState(cfg.MSS), mss: cfg.MSS}
		csnd.xmit = func(p *segment) {
			p.flow = flow
			s.fwd.send(p)
		}
		crcv.sendAck = func(p *segment) {
			p.flow = flow
			s.rev.send(p)
		}
		receivers = append(receivers, crcv)
		senders = append(senders, csnd)
		s.cross = append(s.cross, csnd)
	}

	s.fwd.deliver = func(p *segment) { receivers[p.flow].onData(p) }
	s.rev.deliver = func(p *segment) {
		if p.flow == 0 {
			s.capture(p)
		}
		senders[p.flow].onAck(p)
	}

	// Stagger cross-flow starts by half an RTT each so their slow starts
	// do not synchronize.
	for i, cs := range s.cross {
		cs := cs
		s.queue.schedule(time.Duration(i+1)*cfg.RTT/2, func() { cs.start() })
	}
	s.snd.start()
	s.recordTruth()

	for {
		ev, ok := s.queue.next()
		if !ok || ev.at > cfg.Duration {
			break
		}
		s.now = ev.at
		s.cEvents.Inc()
		ev.fn()
	}

	res := &Result{
		Config:  cfg,
		Records: s.records,
		Truth:   s.truth,
		Stats: Stats{
			AckedBytes:      int64(s.snd.sndUna),
			Drops:           s.fwd.Drops + s.rev.Drops,
			FastRetransmits: s.snd.fastRetransmits,
			Timeouts:        s.snd.timeouts,
			Throughput:      float64(s.snd.sndUna) / cfg.Duration.Seconds(),
		},
	}
	return res, nil
}

// schedule enqueues fn after delay d.
func (s *Simulator) schedule(d time.Duration, fn func()) {
	s.queue.schedule(s.now+d, fn)
}

// nowMicros returns the simulation clock in microseconds (TCP timestamp
// resolution).
func (s *Simulator) nowMicros() uint32 {
	return uint32(s.now / time.Microsecond)
}

// recordTruth appends a ground-truth cwnd sample.
func (s *Simulator) recordTruth() {
	s.truth = append(s.truth, TruthPoint{Time: s.now, Cwnd: s.snd.st.Cwnd})
}

// capture serializes a segment into the pcap record stream.
func (s *Simulator) capture(p *segment) {
	s.ipID++
	ip := &wire.IPv4{TTL: 64, ID: s.ipID}
	tcp := &wire.TCP{
		Seq: p.seq, Ack: p.ack, Window: 65535,
		HasTimestamps: true, TSVal: p.tsVal, TSEcr: p.tsEcr,
	}
	var payload []byte
	if p.isAck {
		ip.SrcIP, ip.DstIP = s.receiverIP, s.senderIP
		tcp.SrcPort, tcp.DstPort = 80, 33000
		tcp.Flags = wire.FlagACK
		tcp.SACKBlocks = p.sack
	} else {
		ip.SrcIP, ip.DstIP = s.senderIP, s.receiverIP
		tcp.SrcPort, tcp.DstPort = 33000, 80
		tcp.Flags = wire.FlagACK | wire.FlagPSH
		payload = zeroPayload(p.length)
	}
	raw, err := wire.EncodePacket(ip, tcp, payload)
	if err != nil {
		// Encoding our own well-formed segments cannot fail; a failure
		// here is a programming error.
		panic("sim: encode: " + err.Error())
	}
	s.cCapture.Inc()
	s.records = append(s.records, wire.PcapRecord{Time: s.now, Data: raw})
}

// zeroPayloadBuf backs zeroPayload to avoid re-allocating per packet.
var zeroPayloadBuf = make([]byte, 9000)

// zeroPayload returns an n-byte all-zero payload.
func zeroPayload(n int) []byte {
	if n <= len(zeroPayloadBuf) {
		return zeroPayloadBuf[:n]
	}
	return make([]byte, n)
}

// DefaultGrid returns the paper's testbed sweep: RTTs from 10 to 100 ms and
// bottleneck bandwidths from 5 to 15 Mbit/s (§3.2).
func DefaultGrid(ccaName string, seed int64) []Config {
	var cfgs []Config
	rtts := []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 100 * time.Millisecond}
	bws := []float64{5e6 / 8, 10e6 / 8, 15e6 / 8} // bytes/sec
	i := int64(0)
	for _, rtt := range rtts {
		for _, bw := range bws {
			i++
			cfgs = append(cfgs, Config{
				CCA:       ccaName,
				Bandwidth: bw,
				RTT:       rtt,
				Seed:      seed + i,
			})
		}
	}
	return cfgs
}
