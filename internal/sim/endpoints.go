package sim

import (
	"math"
	"sort"
	"time"

	"repro/internal/cca"
)

// receiver models the data sink: it acknowledges every arriving segment
// with a cumulative ACK carrying SACK blocks for out-of-order data.
type receiver struct {
	sim     *Simulator
	rcvNxt  uint32
	pending map[uint32]int // out-of-order segments: seq -> length
	sendAck func(*segment)
}

// onData processes an arriving data segment and emits an ACK.
func (r *receiver) onData(p *segment) {
	if p.seq >= r.rcvNxt {
		r.pending[p.seq] = p.length
	}
	// Advance over contiguous data.
	for {
		l, ok := r.pending[r.rcvNxt]
		if !ok {
			break
		}
		delete(r.pending, r.rcvNxt)
		r.rcvNxt += uint32(l)
	}
	r.sendAck(&segment{
		isAck: true,
		ack:   r.rcvNxt,
		sack:  r.sackBlocks(p.seq),
		tsVal: r.sim.nowMicros(),
		tsEcr: p.tsVal,
	})
}

// sackBlocks merges the out-of-order buffer into SACK ranges and reports up
// to 3, with the block containing the segment that just arrived first — the
// RFC 2018 rule that guarantees the sender learns about every arrival even
// when there are more holes than option space.
func (r *receiver) sackBlocks(latest uint32) [][2]uint32 {
	if len(r.pending) == 0 {
		return nil
	}
	seqs := make([]uint32, 0, len(r.pending))
	for s := range r.pending {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var blocks [][2]uint32
	latestIdx := -1
	for _, s := range seqs {
		end := s + uint32(r.pending[s])
		if n := len(blocks); n > 0 && blocks[n-1][1] == s {
			blocks[n-1][1] = end
		} else {
			blocks = append(blocks, [2]uint32{s, end})
		}
		if s <= latest && latest < end {
			latestIdx = len(blocks) - 1
		}
	}
	if len(blocks) <= 3 {
		return blocks
	}
	// Rotate so the most recent block comes first, then take 3.
	if latestIdx > 0 {
		rotated := make([][2]uint32, 0, len(blocks))
		rotated = append(rotated, blocks[latestIdx:]...)
		rotated = append(rotated, blocks[:latestIdx]...)
		blocks = rotated
	}
	return blocks[:3]
}

// rateEstimator tracks delivered bytes over a sliding time window to
// estimate the ACK (delivery) rate in bytes/second. Two guards keep it
// robust to loss-recovery artifacts: cumulative-ACK jumps are capped per
// sample (the bytes were delivered over several RTTs, not instantaneously),
// and the averaging span is floored at half the window so a burst of
// closely-spaced samples cannot fake an enormous rate.
type rateEstimator struct {
	samples []rateSample
	window  time.Duration
	// sampleCap bounds the bytes credited to one sample; 0 means no cap.
	sampleCap float64
}

type rateSample struct {
	t     time.Duration
	bytes float64
}

// add records newly delivered bytes at time t and returns the current rate.
func (e *rateEstimator) add(t time.Duration, bytes float64) float64 {
	if e.sampleCap > 0 && bytes > e.sampleCap {
		bytes = e.sampleCap
	}
	e.samples = append(e.samples, rateSample{t: t, bytes: bytes})
	cutoff := t - e.window
	i := 0
	for i < len(e.samples) && e.samples[i].t < cutoff {
		i++
	}
	e.samples = e.samples[i:]
	return e.rate(t)
}

// rate returns delivered bytes per second over the window ending at t.
func (e *rateEstimator) rate(t time.Duration) float64 {
	if len(e.samples) < 2 {
		return 0
	}
	span := (t - e.samples[0].t).Seconds()
	if floor := e.window.Seconds() / 2; span < floor {
		span = floor
	}
	var total float64
	for _, s := range e.samples {
		total += s.bytes
	}
	return total / span
}

// segMark is the sender's per-segment scoreboard state (RFC 6675-style).
type segMark struct {
	sacked    bool
	retrans   bool          // retransmitted during the current recovery episode
	retransAt time.Duration // when the retransmission was sent
}

// sender models a bulk TCP sender: window-clocked transmission, RFC 6298
// RTT estimation and RTO, SACK-based loss recovery with pipe accounting
// (RFC 6675, simplified), all driven by the pluggable congestion control
// algorithm.
type sender struct {
	sim  *Simulator
	alg  cca.Algorithm
	st   *cca.State
	mss  int
	xmit func(*segment)

	sndUna uint32
	sndNxt uint32

	score      map[uint32]*segMark // seq -> marks, for [sndUna, sndNxt)
	inRecovery bool
	recover    uint32
	// recoveryCap bounds in-network bytes during recovery to what was in
	// flight at entry (packet conservation). This matters for CCAs that do
	// not decrease on loss (BBR): without it they would keep blasting into
	// an already-overflowing queue and drop their own retransmissions.
	recoveryCap float64

	srtt, rttvar time.Duration
	rto          time.Duration
	rtoBackoff   int
	rtoEpoch     uint64 // invalidates stale timer events

	rateEst rateEstimator

	// Stats
	fastRetransmits int
	timeouts        int
	retransBytes    int
}

// rto bounds per RFC 6298 (lower bound relaxed for small-RTT simulations).
const (
	minRTO = 200 * time.Millisecond
	maxRTO = 60 * time.Second
)

// start primes the connection and sends the initial window.
func (s *sender) start() {
	s.st.InSlowStart = true
	s.rto = time.Second
	s.score = map[uint32]*segMark{}
	s.alg.Reset(s.st)
	s.trySend()
	s.armTimer()
}

// mark returns (creating if needed) the scoreboard entry for seq.
func (s *sender) mark(seq uint32) *segMark {
	m, ok := s.score[seq]
	if !ok {
		m = &segMark{}
		s.score[seq] = m
	}
	return m
}

// highestSacked returns the top edge of SACKed data, or sndUna when none.
func (s *sender) highestSacked() uint32 {
	top := s.sndUna
	for seq, m := range s.score {
		if m.sacked && seq+uint32(s.mss) > top {
			top = seq + uint32(s.mss)
		}
	}
	return top
}

// isLost reports whether an unSACKed segment should be considered lost:
// at least dupThresh segments of SACKed data lie above it.
func (s *sender) isLost(seq uint32, highest uint32) bool {
	const dupThresh = 3
	return seq+uint32(dupThresh*s.mss) <= highest
}

// pipe estimates bytes actually in the network: outstanding segments that
// are neither SACKed nor deemed lost, plus retransmissions in flight.
func (s *sender) pipe() float64 {
	highest := s.highestSacked()
	var p float64
	for seq := s.sndUna; seq < s.sndNxt; seq += uint32(s.mss) {
		m := s.score[seq]
		sacked := m != nil && m.sacked
		retrans := m != nil && m.retrans
		if !sacked && !s.isLost(seq, highest) {
			p += float64(s.mss)
		}
		if retrans {
			p += float64(s.mss)
		}
	}
	return p
}

// trySend transmits segments while the window allows. Outside recovery this
// is plain window clocking on bytes outstanding; inside recovery it uses
// SACK pipe accounting and prioritizes retransmission of lost holes.
func (s *sender) trySend() {
	if !s.inRecovery {
		for float64(s.sndNxt-s.sndUna)+float64(s.mss) <= s.st.Cwnd {
			s.sendSegment(s.sndNxt, false)
			s.sndNxt += uint32(s.mss)
		}
		return
	}
	highest := s.highestSacked()
	pipe := s.pipe()
	cwnd := math.Min(s.st.Cwnd, s.recoveryCap)
	for pipe+float64(s.mss) <= cwnd {
		if seq, ok := s.nextHole(highest); ok {
			m := s.mark(seq)
			m.retrans = true
			m.retransAt = s.sim.now
			s.sendSegment(seq, true)
		} else {
			s.sendSegment(s.sndNxt, false)
			s.sndNxt += uint32(s.mss)
		}
		pipe += float64(s.mss)
	}
}

// nextHole returns the lowest lost segment eligible for (re)transmission. A
// segment already retransmitted becomes eligible again once a full smoothed
// RTT has passed without it being SACKed — its retransmission was lost too.
func (s *sender) nextHole(highest uint32) (uint32, bool) {
	for seq := s.sndUna; seq < s.sndNxt && seq < highest; seq += uint32(s.mss) {
		m := s.score[seq]
		if m != nil && m.sacked {
			continue
		}
		if m != nil && m.retrans && s.sim.now-m.retransAt < s.srtt+10*time.Millisecond {
			continue
		}
		if s.isLost(seq, highest) {
			return seq, true
		}
	}
	return 0, false
}

// sendSegment emits one MSS-sized segment starting at seq.
func (s *sender) sendSegment(seq uint32, retrans bool) {
	p := &segment{
		seq:     seq,
		length:  s.mss,
		tsVal:   s.sim.nowMicros(),
		retrans: retrans,
	}
	if retrans {
		s.retransBytes += s.mss
	}
	s.xmit(p)
}

// onAck processes an arriving cumulative ACK with SACK blocks.
func (s *sender) onAck(p *segment) {
	now := s.sim.now
	s.st.Now = now

	// Fold SACK blocks into the scoreboard.
	newlySacked := false
	for _, blk := range p.sack {
		for seq := blk[0]; seq < blk[1]; seq += uint32(s.mss) {
			m := s.mark(seq)
			if !m.sacked {
				m.sacked = true
				newlySacked = true
			}
		}
	}

	if p.ack > s.sndUna {
		acked := float64(p.ack - s.sndUna)
		for seq := s.sndUna; seq < p.ack; seq += uint32(s.mss) {
			delete(s.score, seq)
		}
		s.sndUna = p.ack
		s.rtoBackoff = 0
		s.measureRTT(p, now)
		s.st.AckRate = s.rateEst.add(now, acked)
		s.st.InFlight = float64(s.sndNxt - s.sndUna)
		if s.inRecovery && p.ack >= s.recover {
			// Recovery complete: clear retransmission marks.
			s.inRecovery = false
			for _, m := range s.score {
				m.retrans = false
			}
		}
		if !s.inRecovery {
			s.hystart()
			s.st.InSlowStart = s.st.Cwnd < s.st.Ssthresh
			s.alg.OnAck(s.st, acked)
			s.sim.recordTruth()
		}
		s.armTimer()
	}

	// Loss detection: enough SACKed data above a hole.
	if newlySacked && !s.inRecovery {
		if _, lost := s.nextHole(s.highestSacked()); lost {
			s.lossEvent(false)
			s.recover = s.sndNxt
			s.inRecovery = true
			s.recoveryCap = math.Max(s.pipe()+float64(s.mss), 2*float64(s.mss))
			s.fastRetransmits++
			s.armTimer()
		}
	}
	s.trySend()
}

// lossEvent informs the CCA of a loss and stamps the loss time.
func (s *sender) lossEvent(timeout bool) {
	now := s.sim.now
	s.st.Now = now
	s.st.InFlight = float64(s.sndNxt - s.sndUna)
	s.alg.OnLoss(s.st, timeout)
	s.st.LastLoss = now
	s.st.LossCount++
	s.st.InSlowStart = s.st.Cwnd < s.st.Ssthresh
	s.sim.recordTruth()
}

// hystart exits the initial slow start when the RTT has risen markedly
// above its floor, before the first loss — a simplified HyStart (as in
// Linux) that avoids catastrophic first-overshoot loss bursts.
func (s *sender) hystart() {
	st := s.st
	if st.LossCount > 0 || !st.InSlowStart || st.MinRTT == 0 || st.Cwnd >= st.Ssthresh {
		return
	}
	thresh := st.MinRTT / 8
	if thresh < 4*time.Millisecond {
		thresh = 4 * time.Millisecond
	}
	if thresh > 16*time.Millisecond {
		thresh = 16 * time.Millisecond
	}
	if st.LastRTT >= st.MinRTT+thresh {
		st.Ssthresh = st.Cwnd
	}
}

// measureRTT updates the RTT estimators from a timestamp echo.
func (s *sender) measureRTT(p *segment, now time.Duration) {
	if p.tsEcr == 0 {
		return
	}
	sample := now - time.Duration(p.tsEcr)*time.Microsecond
	if sample <= 0 {
		return
	}
	if s.srtt == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
	} else {
		diff := s.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < minRTO {
		s.rto = minRTO
	}
	st := s.st
	st.LastRTT = sample
	st.SRTT = s.srtt
	if st.MinRTT == 0 || sample < st.MinRTT {
		st.MinRTT = sample
	}
	if sample > st.MaxRTT {
		st.MaxRTT = sample
	}
	// Size the delivery-rate window to two smoothed RTTs and bound
	// recovery-time cumulative-ACK jumps to one window's worth of MSS.
	s.rateEst.window = 2 * s.srtt
	if s.rateEst.window < 10*time.Millisecond {
		s.rateEst.window = 10 * time.Millisecond
	}
	s.rateEst.sampleCap = 8 * float64(s.mss)
}

// armTimer (re)schedules the retransmission timeout.
func (s *sender) armTimer() {
	s.rtoEpoch++
	epoch := s.rtoEpoch
	rto := s.rto << uint(s.rtoBackoff)
	if rto > maxRTO {
		rto = maxRTO
	}
	s.sim.schedule(rto, func() {
		if epoch != s.rtoEpoch || s.sndNxt == s.sndUna {
			return
		}
		s.onTimeout()
	})
}

// onTimeout handles an expired retransmission timer: all scoreboard state
// is suspect, so it is cleared and the connection restarts from sndUna.
func (s *sender) onTimeout() {
	s.timeouts++
	s.inRecovery = false
	for _, m := range s.score {
		m.retrans = false
	}
	s.lossEvent(true)
	s.st.InSlowStart = s.st.Cwnd < s.st.Ssthresh
	s.sendSegment(s.sndUna, true)
	if s.rtoBackoff < 6 {
		s.rtoBackoff++
	}
	s.armTimer()
}

// initState builds the initial congestion control state.
func initState(mss int) *cca.State {
	return &cca.State{
		Cwnd:     float64(4 * mss),
		Ssthresh: math.Inf(1),
		MSS:      float64(mss),
	}
}
