package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled callback in the simulation.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker for deterministic ordering
	fn  func()
}

// eventQueue is a min-heap of events ordered by (time, insertion sequence).
type eventQueue struct {
	events []event
	nextSq uint64
}

func (q *eventQueue) Len() int { return len(q.events) }

func (q *eventQueue) Less(i, j int) bool {
	if q.events[i].at != q.events[j].at {
		return q.events[i].at < q.events[j].at
	}
	return q.events[i].seq < q.events[j].seq
}

func (q *eventQueue) Swap(i, j int) { q.events[i], q.events[j] = q.events[j], q.events[i] }

func (q *eventQueue) Push(x any) { q.events = append(q.events, x.(event)) }

func (q *eventQueue) Pop() any {
	old := q.events
	n := len(old)
	e := old[n-1]
	q.events = old[:n-1]
	return e
}

// schedule enqueues fn to run at time at.
func (q *eventQueue) schedule(at time.Duration, fn func()) {
	q.nextSq++
	heap.Push(q, event{at: at, seq: q.nextSq, fn: fn})
}

// next pops the earliest event; ok is false when the queue is empty.
func (q *eventQueue) next() (event, bool) {
	if q.Len() == 0 {
		return event{}, false
	}
	return heap.Pop(q).(event), true
}
