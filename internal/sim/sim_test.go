package sim

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

func testConfig(ccaName string) Config {
	return Config{
		CCA:       ccaName,
		Bandwidth: 10e6 / 8, // 10 Mbit/s
		RTT:       40 * time.Millisecond,
		Duration:  10 * time.Second,
		Seed:      1,
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{CCA: "reno", RTT: time.Millisecond}); err == nil {
		t.Error("Run accepted zero bandwidth")
	}
	if _, err := Run(Config{CCA: "reno", Bandwidth: 1e6}); err == nil {
		t.Error("Run accepted zero RTT")
	}
	if _, err := Run(Config{CCA: "no-such-cca", Bandwidth: 1e6, RTT: time.Millisecond}); err == nil {
		t.Error("Run accepted unknown CCA")
	}
}

func TestRenoAchievesHighUtilization(t *testing.T) {
	res, err := Run(testConfig("reno"))
	if err != nil {
		t.Fatal(err)
	}
	util := res.Stats.Throughput / res.Config.Bandwidth
	if util < 0.7 || util > 1.01 {
		t.Errorf("Reno utilization = %.2f, want within [0.7, 1.01]", util)
	}
}

func TestRenoExperiencesPeriodicLoss(t *testing.T) {
	cfg := testConfig("reno")
	cfg.Duration = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FastRetransmits < 3 {
		t.Errorf("fast retransmits = %d, want >= 3 (AIMD sawtooth)", res.Stats.FastRetransmits)
	}
	if res.Stats.Drops == 0 {
		t.Error("no drops at a droptail bottleneck under a loss-based CCA")
	}
}

func TestRenoSawtoothShape(t *testing.T) {
	cfg := testConfig("reno")
	cfg.Duration = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After slow start (skip first 2s), the cwnd trajectory should rise
	// and fall repeatedly: count decreases of >= 25%.
	var drops int
	var prev float64
	for _, tp := range res.Truth {
		if tp.Time < 2*time.Second {
			continue
		}
		if prev > 0 && tp.Cwnd < prev*0.75 {
			drops++
		}
		prev = tp.Cwnd
	}
	if drops < 2 {
		t.Errorf("cwnd multiplicative drops = %d, want >= 2", drops)
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1, err := Run(testConfig("cubic"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testConfig("cubic"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Records) != len(r2.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(r1.Records), len(r2.Records))
	}
	for i := range r1.Records {
		if r1.Records[i].Time != r2.Records[i].Time || !bytes.Equal(r1.Records[i].Data, r2.Records[i].Data) {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}

func TestCaptureDecodes(t *testing.T) {
	res, err := Run(testConfig("reno"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no packets captured")
	}
	var data, acks int
	for _, rec := range res.Records {
		pkt, err := wire.DecodePacket(rec.Data)
		if err != nil {
			t.Fatalf("captured packet does not decode: %v", err)
		}
		if pkt.PayloadLen() > 0 {
			data++
			if !pkt.TCP.HasTimestamps {
				t.Fatal("data segment missing timestamps option")
			}
		} else {
			acks++
		}
	}
	if data == 0 || acks == 0 {
		t.Errorf("capture has %d data, %d acks; want both > 0", data, acks)
	}
}

func TestWritePcapRoundTrip(t *testing.T) {
	cfg := testConfig("reno")
	cfg.Duration = 2 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := res.WritePcap()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := wire.NewPcapReader(bytes.NewReader(raw)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(res.Records) {
		t.Errorf("pcap has %d records, want %d", len(recs), len(res.Records))
	}
}

func TestTimestampsAreMonotonic(t *testing.T) {
	res, err := Run(testConfig("vegas"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Time < res.Records[i-1].Time {
			t.Fatalf("capture timestamps not monotonic at %d", i)
		}
	}
}

func TestVegasAvoidsLoss(t *testing.T) {
	// Delay-based Vegas should keep the queue short and suffer far fewer
	// losses than Reno in the same scenario.
	reno, err := Run(testConfig("reno"))
	if err != nil {
		t.Fatal(err)
	}
	vegas, err := Run(testConfig("vegas"))
	if err != nil {
		t.Fatal(err)
	}
	if vegas.Stats.FastRetransmits+vegas.Stats.Timeouts >= reno.Stats.FastRetransmits {
		t.Errorf("vegas losses (%d) not fewer than reno fast-retransmits (%d)",
			vegas.Stats.FastRetransmits+vegas.Stats.Timeouts, reno.Stats.FastRetransmits)
	}
}

func TestBBRKeepsQueueBounded(t *testing.T) {
	res, err := Run(testConfig("bbr"))
	if err != nil {
		t.Fatal(err)
	}
	util := res.Stats.Throughput / res.Config.Bandwidth
	if util < 0.6 {
		t.Errorf("BBR utilization = %.2f, want >= 0.6", util)
	}
	// BBR's window should hover near a small multiple of the BDP, not
	// grow without bound.
	bdp := res.Config.Bandwidth * res.Config.RTT.Seconds()
	var maxW float64
	for _, tp := range res.Truth {
		if tp.Time > 5*time.Second && tp.Cwnd > maxW {
			maxW = tp.Cwnd
		}
	}
	if maxW > 5*bdp {
		t.Errorf("BBR max cwnd = %.0f (%.1f BDP), want <= 5 BDP", maxW, maxW/bdp)
	}
}

func TestRandomLossInjection(t *testing.T) {
	cfg := testConfig("reno")
	cfg.LossRate = 0.05
	cfg.Duration = 5 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := testConfig("reno")
	clean.Duration = 5 * time.Second
	resClean, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Throughput >= resClean.Stats.Throughput {
		t.Errorf("5%% random loss did not reduce throughput: %.0f vs %.0f",
			res.Stats.Throughput, resClean.Stats.Throughput)
	}
}

func TestJitterStillProgresses(t *testing.T) {
	cfg := testConfig("cubic")
	cfg.Jitter = 5 * time.Millisecond
	cfg.Duration = 5 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AckedBytes < int64(res.Config.Bandwidth) {
		t.Errorf("acked only %d bytes in 5s under jitter", res.Stats.AckedBytes)
	}
}

func TestAllRegisteredCCAsComplete(t *testing.T) {
	for _, name := range []string{
		"reno", "cubic", "bic", "bbr", "vegas", "veno", "nv", "westwood",
		"scalable", "lp", "hybla", "htcp", "illinois", "yeah", "highspeed",
		"cdg", "student1", "student2", "student3", "student4", "student5",
		"student6", "student7",
	} {
		cfg := testConfig(name)
		cfg.Duration = 3 * time.Second
		res, err := Run(cfg)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Stats.AckedBytes <= 0 {
			t.Errorf("%s: no progress (acked %d bytes)", name, res.Stats.AckedBytes)
		}
		for _, tp := range res.Truth {
			if math.IsNaN(tp.Cwnd) || tp.Cwnd <= 0 {
				t.Errorf("%s: invalid cwnd %v at %v", name, tp.Cwnd, tp.Time)
				break
			}
		}
	}
}

func TestHigherBandwidthMoreThroughput(t *testing.T) {
	lo := testConfig("cubic")
	lo.Bandwidth = 5e6 / 8
	hi := testConfig("cubic")
	hi.Bandwidth = 15e6 / 8
	rLo, err := Run(lo)
	if err != nil {
		t.Fatal(err)
	}
	rHi, err := Run(hi)
	if err != nil {
		t.Fatal(err)
	}
	if rHi.Stats.Throughput <= rLo.Stats.Throughput*1.5 {
		t.Errorf("3x bandwidth gave %.0f vs %.0f B/s", rHi.Stats.Throughput, rLo.Stats.Throughput)
	}
}

func TestDefaultGrid(t *testing.T) {
	grid := DefaultGrid("reno", 0)
	if len(grid) != 9 {
		t.Fatalf("grid size = %d, want 9", len(grid))
	}
	seen := map[int64]bool{}
	for _, cfg := range grid {
		if cfg.CCA != "reno" {
			t.Errorf("grid cfg CCA = %q", cfg.CCA)
		}
		if seen[cfg.Seed] {
			t.Errorf("duplicate seed %d in grid", cfg.Seed)
		}
		seen[cfg.Seed] = true
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	var got []int
	q.schedule(3*time.Second, func() { got = append(got, 3) })
	q.schedule(time.Second, func() { got = append(got, 1) })
	q.schedule(2*time.Second, func() { got = append(got, 2) })
	q.schedule(time.Second, func() { got = append(got, 11) }) // same time: FIFO
	for {
		ev, ok := q.next()
		if !ok {
			break
		}
		ev.fn()
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
}

func TestRateEstimator(t *testing.T) {
	e := rateEstimator{window: time.Second}
	// 1000 bytes every 10ms -> 100 KB/s.
	var rate float64
	for i := 1; i <= 200; i++ {
		rate = e.add(time.Duration(i)*10*time.Millisecond, 1000)
	}
	if math.Abs(rate-100e3)/100e3 > 0.05 {
		t.Errorf("rate = %.0f, want ~100000", rate)
	}
}

func TestRateEstimatorEmpty(t *testing.T) {
	e := rateEstimator{window: time.Second}
	if r := e.add(time.Second, 100); r != 0 {
		t.Errorf("single-sample rate = %v, want 0", r)
	}
}

func TestCrossTrafficSharesBottleneck(t *testing.T) {
	solo := testConfig("reno")
	solo.Duration = 15 * time.Second
	rSolo, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	shared := solo
	shared.CrossFlows = 2
	rShared, err := Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	// With two competitors the foreground flow gets a substantially
	// smaller share than when alone.
	if rShared.Stats.Throughput > 0.75*rSolo.Stats.Throughput {
		t.Errorf("cross traffic barely reduced throughput: %.0f vs %.0f",
			rShared.Stats.Throughput, rSolo.Stats.Throughput)
	}
	if rShared.Stats.Throughput < 0.1*rSolo.Stats.Throughput {
		t.Errorf("foreground flow starved: %.0f vs %.0f",
			rShared.Stats.Throughput, rSolo.Stats.Throughput)
	}
}

func TestCrossTrafficCaptureOnlyForeground(t *testing.T) {
	cfg := testConfig("reno")
	cfg.Duration = 5 * time.Second
	cfg.CrossFlows = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All captured packets belong to the single foreground 5-tuple.
	for _, rec := range res.Records {
		pkt, err := wire.DecodePacket(rec.Data)
		if err != nil {
			t.Fatal(err)
		}
		sp, dp := pkt.TCP.SrcPort, pkt.TCP.DstPort
		if !(sp == 33000 && dp == 80) && !(sp == 80 && dp == 33000) {
			t.Fatalf("captured foreign flow %d->%d", sp, dp)
		}
	}
}

func TestCrossTrafficDeterministic(t *testing.T) {
	cfg := testConfig("cubic")
	cfg.Duration = 5 * time.Second
	cfg.CrossFlows = 1
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Records) != len(r2.Records) {
		t.Fatalf("cross-traffic runs differ: %d vs %d records", len(r1.Records), len(r2.Records))
	}
}

func TestCrossTrafficUnknownCCA(t *testing.T) {
	cfg := testConfig("reno")
	cfg.CrossFlows = 1
	cfg.CrossCCA = "warp-speed"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown cross CCA accepted")
	}
}

// Property: conservation — cumulative acknowledged bytes never exceed
// bytes sent, acked data is monotone, and both are consistent with the
// drop count, across CCAs and noise settings.
func TestQuickConservation(t *testing.T) {
	f := func(ccaIdx, rttMs, seed uint8) bool {
		names := []string{"reno", "cubic", "bbr", "vegas", "student2"}
		cfg := Config{
			CCA:       names[int(ccaIdx)%len(names)],
			Bandwidth: 10e6 / 8,
			RTT:       time.Duration(10+int(rttMs)%90) * time.Millisecond,
			Duration:  3 * time.Second,
			LossRate:  0.001,
			Jitter:    time.Millisecond,
			Seed:      int64(seed),
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		// Parse the capture and verify the ACK stream is monotone and
		// bounded by what was sent.
		var maxSeq, maxAck uint32
		for _, rec := range res.Records {
			pkt, err := wire.DecodePacket(rec.Data)
			if err != nil {
				return false
			}
			if pkt.PayloadLen() > 0 {
				if end := pkt.TCP.Seq + uint32(pkt.PayloadLen()); end > maxSeq {
					maxSeq = end
				}
			} else {
				if pkt.TCP.Ack < maxAck && maxAck-pkt.TCP.Ack > 1<<30 {
					return false // wrapped backwards
				}
				if pkt.TCP.Ack > maxAck {
					maxAck = pkt.TCP.Ack
				}
			}
		}
		return maxAck <= maxSeq && int64(maxAck) == res.Stats.AckedBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
