package sim

import (
	"math/rand"
	"time"
)

// segment is a packet inside the simulator. Data segments flow
// sender->receiver; ACK segments flow back.
type segment struct {
	seq     uint32      // first payload byte (data) — absolute sequence number
	length  int         // payload bytes (0 for pure ACKs)
	ack     uint32      // cumulative ACK (valid on ACK segments)
	sack    [][2]uint32 // selective-ACK ranges (valid on ACK segments)
	isAck   bool
	tsVal   uint32 // sender clock at transmit, microseconds
	tsEcr   uint32 // echoed timestamp
	retrans bool   // retransmission (for stats)
	flow    int    // flow index: 0 = captured foreground flow
}

// wireSize returns the on-the-wire size of the segment in bytes (IPv4
// header + TCP header with timestamps + payload).
func (p *segment) wireSize() int { return 20 + 32 + p.length }

// link models a one-way path: a droptail queue feeding a fixed-rate
// serializer followed by a propagation delay. Random loss and uniform delay
// jitter model measurement noise (§2.2 of the paper).
type link struct {
	sim *Simulator

	rate       float64 // bytes per second; 0 means infinite (no queueing)
	propDelay  time.Duration
	queueCap   int // bytes; only meaningful when rate > 0
	lossRate   float64
	jitter     time.Duration
	rng        *rand.Rand
	deliver    func(*segment)
	onDrop     func(*segment)
	queue      []*segment
	queueBytes int
	busy       bool

	// Drops counts packets lost on this link (queue overflow + random).
	Drops int
}

// send places a segment on the link at the current simulation time.
func (l *link) send(p *segment) {
	if l.lossRate > 0 && l.rng.Float64() < l.lossRate {
		l.drop(p)
		return
	}
	if l.rate <= 0 {
		// Infinite-rate link: pure propagation.
		l.sim.schedule(l.delay(), func() { l.deliver(p) })
		return
	}
	if l.queueBytes+p.wireSize() > l.queueCap {
		l.drop(p)
		return
	}
	l.queue = append(l.queue, p)
	l.queueBytes += p.wireSize()
	l.sim.gQueue.Max(float64(l.queueBytes))
	if !l.busy {
		l.busy = true
		l.transmitHead()
	}
}

// transmitHead serializes the head-of-line segment; on completion it
// schedules delivery after the propagation delay and starts the next
// transmission.
func (l *link) transmitHead() {
	p := l.queue[0]
	txTime := time.Duration(float64(p.wireSize()) / l.rate * float64(time.Second))
	l.sim.schedule(txTime, func() {
		l.queue = l.queue[1:]
		l.queueBytes -= p.wireSize()
		l.sim.schedule(l.delay(), func() { l.deliver(p) })
		if len(l.queue) > 0 {
			l.transmitHead()
		} else {
			l.busy = false
		}
	})
}

// delay returns the propagation delay with jitter applied.
func (l *link) delay() time.Duration {
	if l.jitter <= 0 {
		return l.propDelay
	}
	return l.propDelay + time.Duration(l.rng.Int63n(int64(l.jitter)))
}

// drop records a lost segment.
func (l *link) drop(p *segment) {
	l.Drops++
	l.sim.cDrops.Inc()
	if l.onDrop != nil {
		l.onDrop(p)
	}
}
