// Threshold-aware ("bounded") variants of the four metrics. The search in
// internal/core only cares whether a candidate beats the best distance seen
// so far; once a computation can prove its result is >= that cutoff, the
// rest of the work is wasted. This file implements the classic time-series
// pruning toolkit — cascading lower bounds (LB_Kim endpoints, LB_Keogh
// envelopes) and early abandoning — behind a small extension interface, so
// scoring loops can hand their best-so-far down into the metric kernels.
//
// Exactness contract: every bounded computation returns either the exact
// distance, or a value that is both >= cutoff and a lower bound on the
// exact distance. Callers that receive a value < cutoff may rely on it
// bit-for-bit equaling Metric.Distance; the plain Distance methods share
// these kernels (with cutoff=+Inf) so the two paths cannot drift apart.
package dist

import "math"

// BoundedMetric extends Metric with a threshold-aware distance: once the
// true distance is provably >= cutoff the computation may stop early and
// return any lower bound of the true distance that is >= cutoff. A result
// < cutoff is the exact distance. All four built-in metrics implement it.
type BoundedMetric interface {
	Metric
	// DistanceWithin computes Distance(a, b), but may abandon early with
	// a value >= cutoff once the result is provably >= cutoff.
	DistanceWithin(a, b Series, cutoff float64) float64
}

// DistanceWithin dispatches to m's bounded implementation when it has one,
// falling back to the full Distance for plain metrics. The result obeys
// the BoundedMetric contract either way.
func DistanceWithin(m Metric, a, b Series, cutoff float64) float64 {
	if bm, ok := m.(BoundedMetric); ok {
		return bm.DistanceWithin(a, b, cutoff)
	}
	return m.Distance(a, b)
}

// DistanceWithin implements BoundedMetric.
func (d DTW) DistanceWithin(a, b Series, cutoff float64) float64 {
	v, _ := PreparedDistanceWithin(d, Prepare(d, a), b, cutoff, NewScratch())
	return v
}

// DistanceWithin implements BoundedMetric.
func (e Euclidean) DistanceWithin(a, b Series, cutoff float64) float64 {
	v, _ := PreparedDistanceWithin(e, Prepare(e, a), b, cutoff, NewScratch())
	return v
}

// DistanceWithin implements BoundedMetric.
func (mn Manhattan) DistanceWithin(a, b Series, cutoff float64) float64 {
	v, _ := PreparedDistanceWithin(mn, Prepare(mn, a), b, cutoff, NewScratch())
	return v
}

// DistanceWithin implements BoundedMetric.
func (f Frechet) DistanceWithin(a, b Series, cutoff float64) float64 {
	v, _ := PreparedDistanceWithin(f, Prepare(f, a), b, cutoff, NewScratch())
	return v
}

// Envelope is the running min/max of a grid over a sliding +-band window —
// the LB_Keogh envelope. Any banded warping path matches grid point j of
// the other series against some point of this series within the window, so
// sum_j max(y[j]-Upper[j], Lower[j]-y[j], 0) lower-bounds the raw DTW cost.
type Envelope struct {
	Lower []float64
	Upper []float64
}

// NewEnvelope computes the +-band sliding-window envelope of xs in O(n)
// using monotonic index deques.
func NewEnvelope(xs []float64, band int) *Envelope {
	n := len(xs)
	if band < 0 {
		band = 0
	}
	e := &Envelope{Lower: make([]float64, n), Upper: make([]float64, n)}
	up := make([]int, 0, n) // indices of decreasing values (front = window max)
	lo := make([]int, 0, n) // indices of increasing values (front = window min)
	j := 0
	for i := 0; i < n; i++ {
		hi := i + band
		if hi > n-1 {
			hi = n - 1
		}
		for ; j <= hi; j++ {
			for len(up) > 0 && xs[up[len(up)-1]] <= xs[j] {
				up = up[:len(up)-1]
			}
			up = append(up, j)
			for len(lo) > 0 && xs[lo[len(lo)-1]] >= xs[j] {
				lo = lo[:len(lo)-1]
			}
			lo = append(lo, j)
		}
		low := i - band
		for up[0] < low {
			up = up[1:]
		}
		for lo[0] < low {
			lo = lo[1:]
		}
		e.Upper[i] = xs[up[0]]
		e.Lower[i] = xs[lo[0]]
	}
	return e
}

// PreparedSeries is one side of a distance computation, resampled (and for
// DTW, enveloped) once so it can be scored against many candidates.
type PreparedSeries struct {
	src  Series
	grid []float64
	env  *Envelope
	band int
	ok   bool
	// fullCells is the banded DP cell count of a full pass against a
	// ResampleN-point candidate (DTW only) — the baseline Outcome.Saved is
	// measured against.
	fullCells int
}

// Grid exposes the resampled grid (nil when the series was unusable).
func (p *PreparedSeries) Grid() []float64 { return p.grid }

// Prepare validates and resamples s onto the common grid. When m is DTW it
// additionally precomputes the LB_Keogh envelope for m's band. A malformed
// or non-finite series yields a PreparedSeries that scores +Inf against
// everything, mirroring Metric.Distance.
func Prepare(m Metric, s Series) *PreparedSeries {
	p := &PreparedSeries{src: s}
	if s.validate() != nil || s.Len() == 0 {
		return p
	}
	p.grid = Resample(s, ResampleN)
	if !finite(p.grid) {
		p.grid = nil
		return p
	}
	p.ok = true
	if d, isDTW := m.(DTW); isDTW {
		p.band = d.Band
		if p.band <= 0 {
			p.band = ResampleN / 10
		}
		p.env = NewEnvelope(p.grid, p.band)
		p.fullCells = bandCells(len(p.grid), ResampleN, p.band)
	}
	return p
}

// Scratch holds the per-computation buffers (candidate resample grid, DP
// rows) so scoring loops can reuse them across calls instead of allocating.
// A Scratch must not be used concurrently.
type Scratch struct {
	grid []float64
	prev []float64
	cur  []float64
}

// NewScratch returns buffers sized for the common resample grid.
func NewScratch() *Scratch {
	return &Scratch{
		grid: make([]float64, ResampleN),
		prev: make([]float64, ResampleN+1),
		cur:  make([]float64, ResampleN+1),
	}
}

func (sc *Scratch) rows(n int) (prev, cur []float64) {
	if cap(sc.prev) < n {
		sc.prev = make([]float64, n)
		sc.cur = make([]float64, n)
	}
	return sc.prev[:n], sc.cur[:n]
}

// PreparedDistanceWithin scores candidate b against a prepared series under
// the BoundedMetric contract, reusing sc's buffers. The second result
// reports exactness: true means the value is exactly m.Distance(a, b);
// false means it is a lower bound that is >= cutoff. Unknown metric types
// fall back to their own Distance/DistanceWithin on the original series.
func PreparedDistanceWithin(m Metric, p *PreparedSeries, b Series, cutoff float64, sc *Scratch) (float64, bool) {
	v, o := PreparedDistanceDetail(m, p, b, cutoff, sc)
	return v, o.Exact()
}

// PreparedDistanceDetail is PreparedDistanceWithin returning the structured
// Outcome instead of a bare exactness flag: which cascade stage settled the
// computation and its cell cost. Outcome.Exact() equals the boolean the
// Within form returns.
func PreparedDistanceDetail(m Metric, p *PreparedSeries, b Series, cutoff float64, sc *Scratch) (float64, Outcome) {
	switch m.(type) {
	case DTW, Euclidean, Manhattan, Frechet:
	default:
		if bm, ok := m.(BoundedMetric); ok {
			v := bm.DistanceWithin(p.src, b, cutoff)
			if v < cutoff {
				return v, Outcome{Stage: StageFull}
			}
			return v, Outcome{Stage: StageAbandon}
		}
		return m.Distance(p.src, b), Outcome{}
	}
	if !p.ok || b.validate() != nil || b.Len() == 0 {
		return math.Inf(1), Outcome{}
	}
	if sc == nil {
		sc = NewScratch()
	}
	y := sc.grid[:ResampleN]
	resampleInto(b, y)
	return gridDistanceWithin(m, p, y, cutoff, sc)
}

// PreparedDistanceWithinGrid is PreparedDistanceWithin for a candidate that
// is already on the common resample grid (via Resampler.Into), skipping the
// per-call time-vector validation and interpolation merge. It supports only
// the four built-in metrics (the generic fallback needs the original
// series) and obeys the same exactness contract.
func PreparedDistanceWithinGrid(m Metric, p *PreparedSeries, y []float64, cutoff float64, sc *Scratch) (float64, bool) {
	v, o := PreparedDistanceDetailGrid(m, p, y, cutoff, sc)
	return v, o.Exact()
}

// PreparedDistanceDetailGrid is PreparedDistanceWithinGrid with the
// structured Outcome, under the PreparedDistanceDetail contract.
func PreparedDistanceDetailGrid(m Metric, p *PreparedSeries, y []float64, cutoff float64, sc *Scratch) (float64, Outcome) {
	switch m.(type) {
	case DTW, Euclidean, Manhattan, Frechet:
	default:
		panic("dist: PreparedDistanceWithinGrid requires a built-in metric")
	}
	if !p.ok || len(y) != ResampleN {
		return math.Inf(1), Outcome{}
	}
	if sc == nil {
		sc = NewScratch()
	}
	return gridDistanceWithin(m, p, y, cutoff, sc)
}

// gridDistanceWithin dispatches a resampled candidate to the metric kernels.
func gridDistanceWithin(m Metric, p *PreparedSeries, y []float64, cutoff float64, sc *Scratch) (float64, Outcome) {
	if !finite(y) {
		return math.Inf(1), Outcome{}
	}
	x := p.grid
	switch m := m.(type) {
	case DTW:
		band := p.band
		if band <= 0 {
			band = m.Band
		}
		prev, cur := sc.rows(len(y) + 1)
		return dtwWithin(x, y, p.env, band, cutoff, prev, cur, p.fullCells)
	case Euclidean:
		return euclideanWithin(x, y, cutoff)
	case Manhattan:
		return manhattanWithin(x, y, cutoff)
	default: // Frechet
		prev, cur := sc.rows(len(y) + 1)
		return frechetWithin(x, y, cutoff, prev[:len(y)], cur[:len(y)])
	}
}

// lbKeoghSafety deflates the LB_Keogh sum by a hair before comparing it to
// the cutoff. The envelope bound is exact in real arithmetic but its
// floating-point sum is accumulated in a different order than the DTW DP's;
// the 1e-12 relative margin dwarfs the ~n*eps worst-case discrepancy and
// keeps a 1-ulp rounding difference from ever pruning a candidate whose
// true distance is a hair under the cutoff.
const lbKeoghSafety = 1 - 1e-12

// dtwWithin is the banded DTW kernel shared by DTW.Distance (cutoff=+Inf)
// and the bounded path. With a finite cutoff it first tries the LB_Kim
// endpoint bound, then the LB_Keogh envelope bound (when env covers y's
// grid), then runs the DP with per-row early abandoning: every banded
// warping path crosses every row, so the row minimum lower-bounds the final
// accumulated cost. Returns the value plus the Outcome that settled it;
// fullCells (a full pass's DP cell count, 0 when unknown) prices the
// Outcome's Saved field without an extra loop here.
func dtwWithin(x, y []float64, env *Envelope, band int, cutoff float64, prev, cur []float64, fullCells int) (float64, Outcome) {
	n, m := len(x), len(y)
	norm := float64(n + m)
	cDTWCalls.Load().Inc()
	if cutoff <= 0 {
		// Distances are non-negative: 0 is a lower bound >= cutoff.
		return 0, Outcome{Stage: StageAbandon, Saved: fullCells}
	}
	if band <= 0 {
		band = ResampleN / 10
	}
	abandon := !math.IsInf(cutoff, 1)
	if abandon && n > 0 && m > 0 {
		// LB_Kim: the first and last grid points are matched by every
		// warping path (once each when the path has more than one cell).
		var lbKim float64
		if n+m > 2 {
			lbKim = math.Abs(x[0]-y[0]) + math.Abs(x[n-1]-y[m-1])
		} else {
			lbKim = math.Abs(x[0] - y[0])
		}
		if lbKim/norm >= cutoff {
			cLBPrunes.Load().Inc()
			return lbKim / norm, Outcome{Stage: StageLBKim, Saved: fullCells}
		}
		if env != nil && n == m && len(env.Lower) == m {
			var s float64
			for j := 0; j < m; j++ {
				v := y[j]
				if v > env.Upper[j] {
					s += v - env.Upper[j]
				} else if v < env.Lower[j] {
					s += env.Lower[j] - v
				}
			}
			lbk := s * lbKeoghSafety
			if lbk/norm >= cutoff {
				cLBPrunes.Load().Inc()
				return lbk / norm, Outcome{Stage: StageLBKeogh, Saved: fullCells}
			}
		}
	}
	inf := math.Inf(1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	cells := 0
	for i := 1; i <= n; i++ {
		lo, hi := i-band, i+band
		if lo < 1 {
			lo = 1
		}
		if hi > m {
			hi = m
		}
		cells += hi - lo + 1
		// Each row writes only its band [lo, hi], and rows i and i+1 read at
		// most one cell either side of it, so clearing the two edge slots
		// stands in for wiping the whole row.
		cur[lo-1] = inf
		if hi < m {
			cur[hi+1] = inf
		}
		rowMin := inf
		xv := x[i-1]
		pj1 := prev[lo-1] // prev[j-1], carried across iterations
		cj1 := inf        // cur[j-1], likewise (cur[lo-1] == inf)
		// Equal-length band views let the compiler drop the bounds checks.
		cc := cur[lo : hi+1]
		py := prev[lo : hi+1][:len(cc)]
		yy := y[lo-1 : hi][:len(cc)]
		for k := range cc {
			pj := py[k]
			best := pj // insertion
			if pj1 < best {
				best = pj1 // match
			}
			if cj1 < best {
				best = cj1 // deletion
			}
			v := math.Abs(xv-yy[k]) + best
			cc[k] = v
			cj1 = v
			pj1 = pj
			if v < rowMin {
				rowMin = v
			}
		}
		if abandon && rowMin/norm >= cutoff {
			cDTWCells.Load().Add(int64(cells))
			cEarlyAbandons.Load().Inc()
			saved := fullCells - cells
			if saved < 0 {
				saved = 0
			}
			return rowMin / norm, Outcome{Stage: StageAbandon, Row: i, Cells: cells, Saved: saved}
		}
		prev, cur = cur, prev
	}
	cDTWCells.Load().Add(int64(cells))
	return prev[m] / norm, Outcome{Stage: StageFull, Cells: cells}
}

// euclideanWithin accumulates squared differences with running-sum
// abandoning. The raw-units threshold is only a cheap filter; the
// authoritative comparison happens in final (normalized, sqrt'd) units so
// unit conversion can never flip an exact result into a pruned one.
func euclideanWithin(x, y []float64, cutoff float64) (float64, Outcome) {
	n := len(x)
	if cutoff <= 0 {
		return 0, Outcome{Stage: StageAbandon, Saved: n}
	}
	raw := cutoff * cutoff * float64(n)
	var sum float64
	last := n - 1
	for i := 0; i < n; i++ {
		d := x[i] - y[i]
		sum += d * d
		if sum >= raw && i < last {
			part := math.Sqrt(sum / float64(n))
			if part >= cutoff {
				cEarlyAbandons.Load().Inc()
				return part, Outcome{Stage: StageAbandon, Row: i + 1, Cells: i + 1, Saved: n - i - 1}
			}
		}
	}
	return math.Sqrt(sum / float64(n)), Outcome{Stage: StageFull, Cells: n}
}

// manhattanWithin accumulates absolute differences with running-sum
// abandoning, confirming in final units like euclideanWithin.
func manhattanWithin(x, y []float64, cutoff float64) (float64, Outcome) {
	n := len(x)
	if cutoff <= 0 {
		return 0, Outcome{Stage: StageAbandon, Saved: n}
	}
	raw := cutoff * float64(n)
	var sum float64
	last := n - 1
	for i := 0; i < n; i++ {
		sum += math.Abs(x[i] - y[i])
		if sum >= raw && i < last {
			part := sum / float64(n)
			if part >= cutoff {
				cEarlyAbandons.Load().Inc()
				return part, Outcome{Stage: StageAbandon, Row: i + 1, Cells: i + 1, Saved: n - i - 1}
			}
		}
	}
	return sum / float64(n), Outcome{Stage: StageFull, Cells: n}
}

// frechetWithin is the discrete Fréchet kernel shared by Frechet.Distance
// (cutoff=+Inf) and the bounded path. The DP value at any cell on the
// optimal traversal is <= the final minimax value and every traversal
// crosses every row, so the row minimum is a valid lower bound; the
// endpoint costs are as well (minimax includes both ends).
func frechetWithin(x, y []float64, cutoff float64, prev, cur []float64) (float64, Outcome) {
	n, m := len(x), len(y)
	if cutoff <= 0 {
		return 0, Outcome{Stage: StageAbandon, Saved: n * m}
	}
	abandon := !math.IsInf(cutoff, 1)
	if abandon && n > 0 && m > 0 {
		lb := math.Abs(x[0] - y[0])
		if e := math.Abs(x[n-1] - y[m-1]); e > lb {
			lb = e
		}
		if lb >= cutoff {
			cLBPrunes.Load().Inc()
			return lb, Outcome{Stage: StageLBKim, Saved: n * m}
		}
	}
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		rowMin := inf
		for j := 0; j < m; j++ {
			d := math.Abs(x[i] - y[j])
			switch {
			case i == 0 && j == 0:
				cur[j] = d
			case i == 0:
				cur[j] = math.Max(cur[j-1], d)
			case j == 0:
				cur[j] = math.Max(prev[j], d)
			default:
				cur[j] = math.Max(math.Min(math.Min(prev[j], prev[j-1]), cur[j-1]), d)
			}
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if abandon && rowMin >= cutoff {
			cEarlyAbandons.Load().Inc()
			return rowMin, Outcome{Stage: StageAbandon, Row: i + 1, Cells: (i + 1) * m, Saved: (n - i - 1) * m}
		}
		prev, cur = cur, prev
	}
	return prev[m-1], Outcome{Stage: StageFull, Cells: n * m}
}
