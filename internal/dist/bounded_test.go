package dist

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// randomSeries builds a well-formed series from a seeded rng: a noisy
// AIMD-ish curve so distances land in interesting ranges.
func randomSeries(rng *rand.Rand, n int) Series {
	s := Series{Times: make([]float64, n), Values: make([]float64, n)}
	v := 5 + 20*rng.Float64()
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.Float64() * 0.1
		s.Times[i] = t
		if rng.Float64() < 0.05 {
			v /= 2
		} else {
			v += rng.Float64()
		}
		s.Values[i] = v
	}
	return s
}

// TestDistanceWithinInfMatchesDistance is the differential identity the
// fast path rests on: with no cutoff, the bounded kernels must reproduce
// Distance bit for bit, for every metric.
func TestDistanceWithinInfMatchesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		a := randomSeries(rng, 50+rng.Intn(300))
		b := randomSeries(rng, 50+rng.Intn(300))
		for _, m := range Metrics() {
			bm := m.(BoundedMetric)
			want := m.Distance(a, b)
			got := bm.DistanceWithin(a, b, math.Inf(1))
			if got != want {
				t.Fatalf("trial %d: %s.DistanceWithin(+Inf) = %v, Distance = %v",
					trial, m.Name(), got, want)
			}
			if got2 := DistanceWithin(m, a, b, math.Inf(1)); got2 != want {
				t.Fatalf("trial %d: package DistanceWithin(%s) = %v, Distance = %v",
					trial, m.Name(), got2, want)
			}
		}
	}
}

// TestDistanceWithinContract checks the BoundedMetric contract across a
// sweep of cutoffs: the result is always a lower bound on the exact
// distance, and any result < cutoff equals the exact distance bit for bit.
func TestDistanceWithinContract(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		a := randomSeries(rng, 100+rng.Intn(200))
		b := randomSeries(rng, 100+rng.Intn(200))
		for _, m := range Metrics() {
			bm := m.(BoundedMetric)
			exact := m.Distance(a, b)
			for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.999, 1.0, 1.001, 2, 100} {
				cutoff := exact * frac
				got := bm.DistanceWithin(a, b, cutoff)
				if got > exact {
					t.Fatalf("%s cutoff=%v: result %v exceeds exact %v (not a lower bound)",
						m.Name(), cutoff, got, exact)
				}
				if got < cutoff && got != exact {
					t.Fatalf("%s cutoff=%v: result %v < cutoff but != exact %v",
						m.Name(), cutoff, got, exact)
				}
			}
		}
	}
}

// TestPreparedDistanceWithinExactFlag checks the richer prepared API: the
// exact flag must be authoritative in both directions.
func TestPreparedDistanceWithinExactFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		a := randomSeries(rng, 150)
		b := randomSeries(rng, 150)
		for _, m := range Metrics() {
			p := Prepare(m, a)
			sc := NewScratch()
			exactD := m.Distance(a, b)
			for _, frac := range []float64{0.2, 0.9, 1.1, math.Inf(1)} {
				d, exact := PreparedDistanceWithin(m, p, b, exactD*frac, sc)
				if exact && d != exactD {
					t.Fatalf("%s: flagged exact but %v != %v", m.Name(), d, exactD)
				}
				if !exact && d > exactD {
					t.Fatalf("%s: inexact result %v exceeds exact %v", m.Name(), d, exactD)
				}
			}
		}
	}
}

// TestPreparedMalformedSeries mirrors Distance's +Inf behavior for
// malformed input through the prepared path.
func TestPreparedMalformedSeries(t *testing.T) {
	good := ramp(100, 1, 0)
	bad := Series{Times: []float64{0, 1}, Values: []float64{1, math.NaN()}}
	for _, m := range Metrics() {
		d, exact := PreparedDistanceWithin(m, Prepare(m, good), bad, 0.5, NewScratch())
		if !math.IsInf(d, 1) || !exact {
			t.Errorf("%s vs NaN series: (%v, %v), want (+Inf, true)", m.Name(), d, exact)
		}
		d, exact = PreparedDistanceWithin(m, Prepare(m, bad), good, 0.5, NewScratch())
		if !math.IsInf(d, 1) || !exact {
			t.Errorf("%s with NaN prepared: (%v, %v), want (+Inf, true)", m.Name(), d, exact)
		}
	}
}

// TestEnvelope brute-forces the sliding-window min/max against the deque
// implementation.
func TestEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, band := range []int{0, 1, 3, 17, 500} {
		xs := make([]float64, 120)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		env := NewEnvelope(xs, band)
		for i := range xs {
			lo, hi := math.Inf(1), math.Inf(-1)
			for j := i - band; j <= i+band; j++ {
				if j < 0 || j >= len(xs) {
					continue
				}
				lo = math.Min(lo, xs[j])
				hi = math.Max(hi, xs[j])
			}
			if env.Lower[i] != lo || env.Upper[i] != hi {
				t.Fatalf("band %d idx %d: envelope (%v,%v), brute (%v,%v)",
					band, i, env.Lower[i], env.Upper[i], lo, hi)
			}
		}
	}
}

// TestBoundedCounters checks that aggressive cutoffs actually travel the
// pruning paths and bump the new instruments.
func TestBoundedCounters(t *testing.T) {
	reg := obs.New()
	Observe(reg)
	defer Observe(nil)
	a := sawtooth(300, 2, 0)
	b := ramp(300, 3, 40) // far away: tiny cutoffs prune immediately
	for _, m := range Metrics() {
		bm := m.(BoundedMetric)
		exact := m.Distance(a, b)
		bm.DistanceWithin(a, b, exact/1e6)
	}
	rep := reg.Report()
	if rep.Counters["dist.lb_prunes"]+rep.Counters["dist.early_abandons"] == 0 {
		t.Errorf("no prunes/abandons recorded: %+v", rep.Counters)
	}
}

// FuzzDistanceWithin fuzzes the differential identity: whatever the series
// shapes, DistanceWithin with +Inf cutoff equals Distance, and a finite
// cutoff never yields more than the exact distance.
func FuzzDistanceWithin(f *testing.F) {
	f.Add(int64(1), 50, 60, 0.5)
	f.Add(int64(42), 3, 400, 1.5)
	f.Add(int64(-7), 1, 1, 0.0)
	f.Add(int64(99), 200, 200, 100.0)
	f.Fuzz(func(t *testing.T, seed int64, na, nb int, cutFrac float64) {
		if na < 1 || na > 600 || nb < 1 || nb > 600 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		a := randomSeries(rng, na)
		b := randomSeries(rng, nb)
		for _, m := range Metrics() {
			bm := m.(BoundedMetric)
			exact := m.Distance(a, b)
			if got := bm.DistanceWithin(a, b, math.Inf(1)); got != exact {
				t.Fatalf("%s: DistanceWithin(+Inf)=%v != Distance=%v", m.Name(), got, exact)
			}
			if math.IsNaN(cutFrac) || math.IsInf(cutFrac, 0) || cutFrac < 0 {
				continue
			}
			got := bm.DistanceWithin(a, b, exact*cutFrac)
			if got > exact {
				t.Fatalf("%s: bounded result %v exceeds exact %v", m.Name(), got, exact)
			}
		}
	})
}
