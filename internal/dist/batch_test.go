package dist

import (
	"math"
	"math/rand"
	"testing"
)

// TestPreparedDistanceWithinGridBatchMatchesScalar is the batch kernel's
// exactness oracle: for every built-in metric, random candidates, and a
// sweep of per-lane cutoffs (loose, tight, zero, +Inf), each lane's value
// and Outcome must bit-match the scalar grid path.
func TestPreparedDistanceWithinGridBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, m := range Metrics() {
		p := Prepare(m, randomSeries(rng, 240))
		sc := NewScratch()
		bsc := NewBatchScratch()
		for trial := 0; trial < 12; trial++ {
			k := 1 + rng.Intn(12)
			ys := make([][]float64, k)
			cutoffs := make([]float64, k)
			for l := range ys {
				b := randomSeries(rng, 80+rng.Intn(200))
				ys[l] = Resample(b, ResampleN)
				switch rng.Intn(5) {
				case 0:
					cutoffs[l] = math.Inf(1)
				case 1:
					cutoffs[l] = 0
				case 2: // below any plausible distance: prunes immediately
					cutoffs[l] = 1e-6
				case 3: // near the true distance: exercises the DP abandon race
					cutoffs[l] = m.Distance(p.src, b) * (0.9 + 0.2*rng.Float64())
				default: // loose: full pass
					cutoffs[l] = m.Distance(p.src, b) * 10
				}
			}
			// An occasional malformed lane must settle to +Inf without
			// disturbing its neighbours.
			if k > 2 && trial%3 == 0 {
				ys[1] = ys[1][:ResampleN-1]
				ys[k-1] = append([]float64{math.NaN()}, ys[k-1][1:]...)
			}
			ds := make([]float64, k)
			outs := make([]Outcome, k)
			PreparedDistanceWithinGridBatch(m, p, ys, cutoffs, ds, outs, bsc)
			for l := 0; l < k; l++ {
				wd, wo := PreparedDistanceDetailGrid(m, p, ys[l], cutoffs[l], sc)
				if math.Float64bits(ds[l]) != math.Float64bits(wd) || outs[l] != wo {
					t.Fatalf("%s trial %d lane %d/%d (cutoff %v): batch (%v, %+v) != scalar (%v, %+v)",
						m.Name(), trial, l, k, cutoffs[l], ds[l], outs[l], wd, wo)
				}
			}
		}
	}
}

// TestPreparedDistanceWithinGridBatchUnusablePrepared: every lane of a
// batch against an unusable prepared series scores +Inf, like the scalar
// path.
func TestPreparedDistanceWithinGridBatchUnusablePrepared(t *testing.T) {
	p := Prepare(DTW{}, Series{})
	ys := [][]float64{make([]float64, ResampleN), make([]float64, ResampleN)}
	ds := make([]float64, 2)
	outs := []Outcome{{Stage: StageAbandon}, {Stage: StageAbandon}}
	PreparedDistanceWithinGridBatch(DTW{}, p, ys, []float64{1, 1}, ds, outs, nil)
	for l, d := range ds {
		if !math.IsInf(d, 1) || outs[l] != (Outcome{}) {
			t.Fatalf("lane %d: got (%v, %+v), want (+Inf, zero Outcome)", l, d, outs[l])
		}
	}
}

// TestPreparedDistanceWithinGridBatchPanicsOnUnknownMetric mirrors the
// scalar grid entry point's contract.
func TestPreparedDistanceWithinGridBatchPanicsOnUnknownMetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-built-in metric")
		}
	}()
	var m fakeMetric
	PreparedDistanceWithinGridBatch(m, &PreparedSeries{}, [][]float64{nil}, []float64{1}, make([]float64, 1), make([]Outcome, 1), nil)
}

type fakeMetric struct{}

func (fakeMetric) Name() string                 { return "fake" }
func (fakeMetric) Distance(a, b Series) float64 { return 0 }
