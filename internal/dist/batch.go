// Lane-batched bounded distances. The scoring loops in internal/replay
// score K constant-pool completions of one sketch against the same
// prepared trace segment; calling PreparedDistanceDetailGrid K times
// repeats the per-call setup and walks the trace grid K times. The batch
// entry point here shares one pass over the cascade instead: LB_Kim and
// LB_Keogh run lane-by-lane against the one prepared envelope (hot in
// cache across lanes), and the surviving lanes enter a single banded DP
// whose row loop is shared — each row's band bounds and x value are
// computed once, every live lane fills its own DP row, and a lane that
// early-abandons drops out of the live set so it stops paying for cells.
// Per lane the arithmetic is exactly the scalar kernel's (same operations,
// same order), so values and Outcomes are bit-identical lane by lane to
// PreparedDistanceDetailGrid; the batch-vs-scalar tests pin this.
package dist

import "math"

// BatchScratch holds the per-lane DP rows and live-lane index lists for
// batched distance computations. Buffers grow on demand and are retained
// across calls; a BatchScratch must not be used concurrently.
type BatchScratch struct {
	rows  []float64 // 2*K*(m+1) slab backing the per-lane DP rows
	prevs [][]float64
	curs  [][]float64
	idx   []int
	live  []int
}

// NewBatchScratch returns empty scratch; buffers are sized on first use.
func NewBatchScratch() *BatchScratch { return &BatchScratch{} }

// laneRows returns per-lane (prev, cur) DP rows of length n, all carved
// from one reused slab.
func (sc *BatchScratch) laneRows(k, n int) (prevs, curs [][]float64) {
	if need := 2 * k * n; cap(sc.rows) < need {
		sc.rows = make([]float64, need)
	}
	slab := sc.rows[:2*k*n]
	if cap(sc.prevs) < k {
		sc.prevs = make([][]float64, k)
		sc.curs = make([][]float64, k)
	}
	prevs, curs = sc.prevs[:k], sc.curs[:k]
	for l := 0; l < k; l++ {
		prevs[l] = slab[2*l*n : (2*l+1)*n]
		curs[l] = slab[(2*l+1)*n : (2*l+2)*n]
	}
	return prevs, curs
}

// PreparedDistanceWithinGridBatch scores K candidates — each already on
// the common resample grid — against one prepared series with per-lane
// cutoffs, writing the per-lane value into ds and the cascade Outcome
// into outs (both must have at least len(ys) entries). Lane l's results
// are bit-identical to PreparedDistanceDetailGrid(m, p, ys[l],
// cutoffs[l], ...): the same exactness contract, the same stage
// attribution, the same cell accounting. Like the scalar grid entry
// point it supports only the four built-in metrics and panics otherwise.
func PreparedDistanceWithinGridBatch(m Metric, p *PreparedSeries, ys [][]float64, cutoffs []float64, ds []float64, outs []Outcome, sc *BatchScratch) {
	switch m.(type) {
	case DTW, Euclidean, Manhattan, Frechet:
	default:
		panic("dist: PreparedDistanceWithinGridBatch requires a built-in metric")
	}
	k := len(ys)
	if k == 0 {
		return
	}
	if sc == nil {
		sc = NewBatchScratch()
	}
	if !p.ok {
		for l := 0; l < k; l++ {
			ds[l], outs[l] = math.Inf(1), Outcome{}
		}
		return
	}
	idx := sc.idx[:0]
	for l := 0; l < k; l++ {
		if len(ys[l]) != ResampleN || !finite(ys[l]) {
			ds[l], outs[l] = math.Inf(1), Outcome{}
			continue
		}
		idx = append(idx, l)
	}
	sc.idx = idx
	if len(idx) == 0 {
		return
	}
	x := p.grid
	switch m := m.(type) {
	case DTW:
		band := p.band
		if band <= 0 {
			band = m.Band
		}
		dtwWithinGridBatch(x, ys, p.env, band, cutoffs, p.fullCells, idx, ds, outs, sc)
	case Euclidean:
		for _, l := range idx {
			ds[l], outs[l] = euclideanWithin(x, ys[l], cutoffs[l])
		}
	case Manhattan:
		for _, l := range idx {
			ds[l], outs[l] = manhattanWithin(x, ys[l], cutoffs[l])
		}
	default: // Frechet
		prevs, curs := sc.laneRows(1, ResampleN+1)
		for _, l := range idx {
			m := len(ys[l])
			ds[l], outs[l] = frechetWithin(x, ys[l], cutoffs[l], prevs[0][:m], curs[0][:m])
		}
	}
}

// dtwWithinGridBatch is the lane-batched form of dtwWithin for candidates
// on the common grid (all ys[lanes] have equal length, so every lane
// shares the same band geometry). The LB cascade runs per lane; survivors
// enter one row-major DP where abandoned lanes leave the live set.
func dtwWithinGridBatch(x []float64, ys [][]float64, env *Envelope, band int, cutoffs []float64, fullCells int, lanes []int, ds []float64, outs []Outcome, sc *BatchScratch) {
	n := len(x)
	if band <= 0 {
		band = ResampleN / 10
	}
	cDTWCalls.Load().Add(int64(len(lanes)))
	live := sc.live[:0]
	for _, l := range lanes {
		y := ys[l]
		m := len(y)
		norm := float64(n + m)
		cutoff := cutoffs[l]
		if cutoff <= 0 {
			// Distances are non-negative: 0 is a lower bound >= cutoff.
			ds[l], outs[l] = 0, Outcome{Stage: StageAbandon, Saved: fullCells}
			continue
		}
		if !math.IsInf(cutoff, 1) && n > 0 && m > 0 {
			var lbKim float64
			if n+m > 2 {
				lbKim = math.Abs(x[0]-y[0]) + math.Abs(x[n-1]-y[m-1])
			} else {
				lbKim = math.Abs(x[0] - y[0])
			}
			if lbKim/norm >= cutoff {
				cLBPrunes.Load().Inc()
				ds[l], outs[l] = lbKim/norm, Outcome{Stage: StageLBKim, Saved: fullCells}
				continue
			}
			if env != nil && n == m && len(env.Lower) == m {
				var s float64
				for j := 0; j < m; j++ {
					v := y[j]
					if v > env.Upper[j] {
						s += v - env.Upper[j]
					} else if v < env.Lower[j] {
						s += env.Lower[j] - v
					}
				}
				lbk := s * lbKeoghSafety
				if lbk/norm >= cutoff {
					cLBPrunes.Load().Inc()
					ds[l], outs[l] = lbk/norm, Outcome{Stage: StageLBKeogh, Saved: fullCells}
					continue
				}
			}
		}
		live = append(live, l)
	}
	sc.live = live
	if len(live) == 0 {
		return
	}
	m := len(ys[live[0]])
	norm := float64(n + m)
	prevs, curs := sc.laneRows(len(ys), m+1)
	inf := math.Inf(1)
	for _, l := range live {
		prev := prevs[l]
		for j := range prev {
			prev[j] = inf
		}
		prev[0] = 0
	}
	cells := 0
	for i := 1; i <= n && len(live) > 0; i++ {
		lo, hi := i-band, i+band
		if lo < 1 {
			lo = 1
		}
		if hi > m {
			hi = m
		}
		// Every live lane pays the same band this row, so one running count
		// prices each lane's abandonment exactly as the scalar kernel does.
		cells += hi - lo + 1
		xv := x[i-1]
		nl := live[:0]
		for _, l := range live {
			prev, cur := prevs[l], curs[l]
			cur[lo-1] = inf
			if hi < m {
				cur[hi+1] = inf
			}
			rowMin := inf
			pj1 := prev[lo-1]
			cj1 := inf
			cc := cur[lo : hi+1]
			py := prev[lo : hi+1][:len(cc)]
			yy := ys[l][lo-1 : hi][:len(cc)]
			for j := range cc {
				pj := py[j]
				best := pj
				if pj1 < best {
					best = pj1
				}
				if cj1 < best {
					best = cj1
				}
				v := math.Abs(xv-yy[j]) + best
				cc[j] = v
				cj1 = v
				pj1 = pj
				if v < rowMin {
					rowMin = v
				}
			}
			if cutoff := cutoffs[l]; !math.IsInf(cutoff, 1) && rowMin/norm >= cutoff {
				cDTWCells.Load().Add(int64(cells))
				cEarlyAbandons.Load().Inc()
				saved := fullCells - cells
				if saved < 0 {
					saved = 0
				}
				ds[l] = rowMin / norm
				outs[l] = Outcome{Stage: StageAbandon, Row: i, Cells: cells, Saved: saved}
				continue
			}
			prevs[l], curs[l] = cur, prev
			nl = append(nl, l)
		}
		live = nl
	}
	for _, l := range live {
		cDTWCells.Load().Add(int64(cells))
		ds[l] = prevs[l][m] / norm
		outs[l] = Outcome{Stage: StageFull, Cells: cells}
	}
}
