package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ramp builds a series v(t) = slope*t + off over [0, 10) with n points.
func ramp(n int, slope, off float64) Series {
	s := Series{Times: make([]float64, n), Values: make([]float64, n)}
	for i := 0; i < n; i++ {
		t := 10 * float64(i) / float64(n)
		s.Times[i] = t
		s.Values[i] = slope*t + off
	}
	return s
}

// sawtooth builds an AIMD-like pattern with the given phase offset.
func sawtooth(n int, period, phase float64) Series {
	s := Series{Times: make([]float64, n), Values: make([]float64, n)}
	for i := 0; i < n; i++ {
		t := 10 * float64(i) / float64(n)
		s.Times[i] = t
		frac := math.Mod(t+phase, period) / period
		s.Values[i] = 10 + 10*frac
	}
	return s
}

func TestIdentityDistanceIsZero(t *testing.T) {
	s := sawtooth(300, 2, 0)
	for _, m := range Metrics() {
		if d := m.Distance(s, s); d != 0 {
			t.Errorf("%s(s, s) = %v, want 0", m.Name(), d)
		}
	}
}

func TestSymmetry(t *testing.T) {
	a, b := sawtooth(300, 2, 0), ramp(250, 1.5, 3)
	for _, m := range Metrics() {
		d1, d2 := m.Distance(a, b), m.Distance(b, a)
		if math.Abs(d1-d2) > 1e-9 {
			t.Errorf("%s not symmetric: %v vs %v", m.Name(), d1, d2)
		}
	}
}

func TestDistanceGrowsWithSeparation(t *testing.T) {
	base := ramp(200, 1, 0)
	for _, m := range Metrics() {
		d1 := m.Distance(base, ramp(200, 1, 1))
		d5 := m.Distance(base, ramp(200, 1, 5))
		if !(d5 > d1) {
			t.Errorf("%s: offset-5 (%v) not further than offset-1 (%v)", m.Name(), d5, d1)
		}
	}
}

func TestDTWToleratesPhaseShiftBetterThanEuclidean(t *testing.T) {
	// Identical sawtooths, quarter-period out of phase: DTW can re-align,
	// Euclidean cannot.
	a := sawtooth(400, 2, 0)
	b := sawtooth(400, 2, 0.5)
	dtwD := DTW{}.Distance(a, b)
	eucD := Euclidean{}.Distance(a, b)
	if !(dtwD < eucD/2) {
		t.Errorf("DTW (%v) not clearly smaller than Euclidean (%v) under phase shift", dtwD, eucD)
	}
}

func TestDTWBandWideningNeverIncreasesDistance(t *testing.T) {
	a := sawtooth(300, 2, 0)
	b := sawtooth(300, 3, 0.7)
	prev := math.Inf(1)
	for _, band := range []int{5, 20, 60, 200} {
		d := DTW{Band: band}.Distance(a, b)
		if d > prev+1e-9 {
			t.Errorf("band %d distance %v > narrower band %v", band, d, prev)
		}
		prev = d
	}
}

func TestResample(t *testing.T) {
	s := Series{Times: []float64{0, 1, 2}, Values: []float64{0, 10, 20}}
	out := Resample(s, 5)
	want := []float64{0, 5, 10, 15, 20}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Fatalf("Resample = %v, want %v", out, want)
		}
	}
}

func TestResampleDegenerate(t *testing.T) {
	if out := Resample(Series{}, 4); out[0] != 0 || len(out) != 4 {
		t.Errorf("empty series resample = %v", out)
	}
	one := Series{Times: []float64{3}, Values: []float64{7}}
	for _, v := range Resample(one, 4) {
		if v != 7 {
			t.Errorf("single-point resample produced %v", v)
		}
	}
	same := Series{Times: []float64{1, 1}, Values: []float64{4, 9}}
	out := Resample(same, 3)
	for _, v := range out {
		if v != 4 {
			t.Errorf("zero-span resample = %v, want all 4", out)
		}
	}
}

// TestResamplerMatchesResampleInto pins the precomputed-schedule fast path:
// for any sorted time vector, Resampler.Into must reproduce resampleInto
// bit for bit — including zero-span intervals and degenerate vectors — and
// the grid-input distance entry point must match the Series one exactly.
func TestResamplerMatchesResampleInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	timeSets := [][]float64{
		{},
		{3},
		{1, 1},
		{0, 1, 2, 3, 4},
		{0, 0, 0.5, 0.5, 2, 2, 2, 7},
	}
	jitter := make([]float64, 300)
	tv := 0.0
	for i := range jitter {
		tv += rng.Float64()
		if rng.Intn(5) == 0 && i > 0 {
			tv = jitter[i-1] // repeated timestamps
		}
		jitter[i] = tv
	}
	timeSets = append(timeSets, jitter)
	ref := Prepare(DTW{}, ramp(100, 1.2, 3))
	for ti, times := range timeSets {
		r := NewResampler(times)
		if r == nil {
			t.Fatalf("times[%d]: NewResampler returned nil for sorted times", ti)
		}
		values := make([]float64, len(times))
		for i := range values {
			values[i] = rng.Float64()*50 - 10
		}
		s := Series{Times: times, Values: values}
		want := make([]float64, ResampleN)
		resampleInto(s, want)
		got := make([]float64, ResampleN)
		r.Into(values, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("times[%d] grid[%d]: Into %v != resampleInto %v", ti, i, got[i], want[i])
			}
		}
		if len(times) == 0 {
			continue
		}
		for _, m := range Metrics() {
			for _, cutoff := range []float64{math.Inf(1), 5, 0.5} {
				dS, eS := PreparedDistanceWithin(m, ref, s, cutoff, nil)
				dG, eG := PreparedDistanceWithinGrid(m, ref, got, cutoff, nil)
				if math.Float64bits(dS) != math.Float64bits(dG) || eS != eG {
					t.Errorf("times[%d] %s cutoff %v: series (%v,%v) != grid (%v,%v)",
						ti, m.Name(), cutoff, dS, eS, dG, eG)
				}
			}
		}
	}
	if r := NewResampler([]float64{2, 1}); r != nil {
		t.Error("NewResampler accepted unsorted times")
	}
}

func TestMalformedSeriesGivesInf(t *testing.T) {
	good := ramp(100, 1, 0)
	bad := Series{Times: []float64{1, 0}, Values: []float64{1, 2}} // unsorted
	mismatch := Series{Times: []float64{1}, Values: []float64{1, 2}}
	var empty Series
	nan := Series{Times: []float64{0, 1}, Values: []float64{1, math.NaN()}}
	for _, m := range Metrics() {
		for name, s := range map[string]Series{"unsorted": bad, "mismatch": mismatch, "empty": empty, "nan": nan} {
			if d := m.Distance(good, s); !math.IsInf(d, 1) {
				t.Errorf("%s(%s) = %v, want +Inf", m.Name(), name, d)
			}
		}
	}
}

func TestFrechetIsMaxNorm(t *testing.T) {
	// Constant curves at distance 3 everywhere: Fréchet = 3, Manhattan = 3.
	a := ramp(50, 0, 0)
	b := ramp(50, 0, 3)
	if d := (Frechet{}).Distance(a, b); math.Abs(d-3) > 1e-9 {
		t.Errorf("Frechet = %v, want 3", d)
	}
	// One spike: Fréchet sees the max, Manhattan averages it away.
	spiky := ramp(50, 0, 0)
	spiky.Values[25] = 50
	f := (Frechet{}).Distance(a, spiky)
	man := (Manhattan{}).Distance(a, spiky)
	if !(f > 10*man) {
		t.Errorf("Frechet (%v) should dwarf Manhattan (%v) on a spike", f, man)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"dtw", "euclidean", "manhattan", "frechet"} {
		m, err := ByName(name)
		if err != nil || m.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("cosine"); err == nil {
		t.Error("ByName accepted unknown metric")
	}
	if len(Names()) != 4 {
		t.Errorf("Names() = %v", Names())
	}
}

// Property: all metrics are non-negative and zero on identical inputs, for
// random well-formed series.
func TestQuickMetricAxioms(t *testing.T) {
	f := func(seed int64, n1, n2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) Series {
			s := Series{Times: make([]float64, n), Values: make([]float64, n)}
			tv := 0.0
			for i := 0; i < n; i++ {
				tv += rng.Float64()
				s.Times[i] = tv
				s.Values[i] = rng.Float64() * 100
			}
			return s
		}
		a := mk(int(n1%50) + 2)
		b := mk(int(n2%50) + 2)
		for _, m := range Metrics() {
			if d := m.Distance(a, b); d < 0 || math.IsNaN(d) {
				return false
			}
			if d := m.Distance(a, a); d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: DTW is upper-bounded by the Manhattan distance (the diagonal
// path is one admissible warping).
func TestQuickDTWUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Series {
			n := 30 + rng.Intn(100)
			s := Series{Times: make([]float64, n), Values: make([]float64, n)}
			tv := 0.0
			for i := 0; i < n; i++ {
				tv += 0.1 + rng.Float64()
				s.Times[i] = tv
				s.Values[i] = rng.Float64() * 40
			}
			return s
		}
		a, b := mk(), mk()
		dtw := DTW{Band: ResampleN}.Distance(a, b)
		man := Manhattan{}.Distance(a, b)
		// DTW normalizes by len(x)+len(y) = 2n, Manhattan by n; the
		// diagonal path costs exactly n*man, so dtw <= man/2 + eps.
		return dtw <= man/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
