package dist

import (
	"math"
	"math/rand"
	"testing"
)

// TestOutcomeStageConsistency sweeps cutoffs across every metric and pins
// the Outcome contract: the exact flag mirrors StageFull, a full compute
// matches Distance bit for bit, and inexact outcomes carry a saved-cell
// attribution.
func TestOutcomeStageConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		a := randomSeries(rng, 150)
		b := randomSeries(rng, 150)
		for _, m := range Metrics() {
			p := Prepare(m, a)
			sc := NewScratch()
			exactD := m.Distance(a, b)
			for _, frac := range []float64{0.2, 0.9, 1.1, math.Inf(1)} {
				d, o := PreparedDistanceDetail(m, p, b, exactD*frac, sc)
				if o.Exact() != (o.Stage == StageFull) {
					t.Fatalf("%s: Exact()=%v but stage %v", m.Name(), o.Exact(), o.Stage)
				}
				if o.Exact() && d != exactD {
					t.Fatalf("%s: full compute %v != exact %v", m.Name(), d, exactD)
				}
				if o.Saved < 0 || o.Cells < 0 {
					t.Fatalf("%s: negative cell attribution: %+v", m.Name(), o)
				}
				if !o.Exact() && (o.Stage == StageLBKim || o.Stage == StageLBKeogh) && o.Saved <= 0 {
					t.Fatalf("%s: lower bound at %v saved %d cells", m.Name(), o.Stage, o.Saved)
				}
				// The wrapper must agree with the detailed call.
				dw, exw := PreparedDistanceWithin(m, p, b, exactD*frac, sc)
				if dw != d || exw != o.Exact() {
					t.Fatalf("%s: Within (%v,%v) disagrees with Detail (%v,%v)",
						m.Name(), dw, exw, d, o.Exact())
				}
			}
		}
	}
}

// TestOutcomeCellAccounting: a full DTW pass computes exactly the band's
// cell count; an abandon's computed+saved cells sum to it.
func TestOutcomeCellAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randomSeries(rng, 200)
	b := randomSeries(rng, 200)
	m := DTW{}
	p := Prepare(m, a)
	sc := NewScratch()
	exactD := m.Distance(a, b)

	d, full := PreparedDistanceDetail(m, p, b, math.Inf(1), sc)
	if d != exactD || full.Stage != StageFull {
		t.Fatalf("uncut pass: (%v, %+v), want exact full compute", d, full)
	}
	if full.Cells <= 0 || full.Saved != 0 {
		t.Fatalf("full pass cells=%d saved=%d, want >0 and 0", full.Cells, full.Saved)
	}

	// A tight cutoff must settle early on one of the pruning stages, with
	// the attribution covering the whole band.
	_, cut := PreparedDistanceDetail(m, p, b, exactD*0.01, sc)
	if cut.Stage == StageFull {
		t.Fatalf("1%% cutoff still computed fully: %+v", cut)
	}
	if got := cut.Cells + cut.Saved; got != full.Cells {
		t.Errorf("abandon cells %d + saved %d = %d, want the full band %d",
			cut.Cells, cut.Saved, got, full.Cells)
	}
	if cut.Stage == StageAbandon && cut.Row <= 0 {
		t.Errorf("DP abandon without a row: %+v", cut)
	}
}

// TestOutcomeStageStrings pins the labels the ledger and funnel render.
func TestOutcomeStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageFull:    "full",
		StageLBKim:   "lb_kim",
		StageLBKeogh: "lb_keogh",
		StageAbandon: "abandon",
	}
	for s, label := range want {
		if got := s.String(); got != label {
			t.Errorf("Stage(%d).String() = %q, want %q", s, got, label)
		}
	}
	if int(NumStages) != len(want) {
		t.Errorf("NumStages = %d, want %d", NumStages, len(want))
	}
}

// TestOutcomeLBStages: degenerate flat-vs-far series trigger the cheap
// lower bounds before any DP work, and the outcome says which one fired.
func TestOutcomeLBStages(t *testing.T) {
	flat := ramp(100, 0, 5)
	far := ramp(100, 0, 500)
	m := DTW{}
	p := Prepare(m, flat)
	// First-point gap alone is 495 >> cutoff, so LB_Kim settles it.
	d, o := PreparedDistanceDetail(m, p, far, 1.0, NewScratch())
	if o.Stage != StageLBKim && o.Stage != StageLBKeogh {
		t.Fatalf("far series not settled by a lower bound: (%v, %+v)", d, o)
	}
	if o.Cells != 0 {
		t.Errorf("lower bound computed %d DP cells", o.Cells)
	}
	if o.Saved <= 0 {
		t.Errorf("lower bound saved %d cells, want the whole band", o.Saved)
	}
}
