// Package dist implements the trace-distance metrics Abagnale's optimization
// formulation is built on (§4.3 of the paper): Dynamic Time Warping (the
// primary metric, most tolerant to constant error), Euclidean, Manhattan and
// discrete Fréchet distances over congestion-window time series.
//
// Series are (time, value) pairs on arbitrary grids; every metric first
// resamples both inputs onto a common uniform grid. Values are compared in
// their native scale (packets of CWND) — the metrics must stay sensitive to
// multiplicative constant error, which is exactly what Figure 3 evaluates.
package dist

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// Package-level observability hooks, installed process-wide (metrics are
// stateless values, so there is no per-run object to hang a registry on).
// Nil counters (no registry installed) no-op.
var (
	cDTWCalls      atomic.Pointer[obs.Counter]
	cDTWCells      atomic.Pointer[obs.Counter]
	cLBPrunes      atomic.Pointer[obs.Counter]
	cEarlyAbandons atomic.Pointer[obs.Counter]
)

// Observe routes the package's instruments to the registry:
//
//	counters  dist.dtw_calls (DTW distance computations),
//	          dist.dtw_cells (DTW dynamic-programming cells filled —
//	          the metric's actual work, proportional to band width),
//	          dist.lb_prunes (bounded computations settled by a lower
//	          bound — LB_Kim/LB_Keogh — before any DP work),
//	          dist.early_abandons (bounded computations abandoned
//	          mid-scan once the running value proved >= the cutoff)
//
// Passing nil uninstalls them. Call once at tool startup.
func Observe(r *obs.Registry) {
	cDTWCalls.Store(r.Counter("dist.dtw_calls"))
	cDTWCells.Store(r.Counter("dist.dtw_cells"))
	cLBPrunes.Store(r.Counter("dist.lb_prunes"))
	cEarlyAbandons.Store(r.Counter("dist.early_abandons"))
}

// Series is a time series of observations at increasing times.
type Series struct {
	// Times are sample times in seconds, non-decreasing.
	Times []float64
	// Values are the observations (CWND in MSS units, by convention).
	Values []float64
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.Values) }

// validate reports whether the series is well-formed.
func (s Series) validate() error {
	if len(s.Times) != len(s.Values) {
		return fmt.Errorf("dist: %d times but %d values", len(s.Times), len(s.Values))
	}
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i] < s.Times[i-1] {
			return fmt.Errorf("dist: times not sorted at %d", i)
		}
	}
	return nil
}

// ResampleN is the uniform grid size every metric maps series onto.
const ResampleN = 200

// Resample linearly interpolates the series onto n uniformly spaced points
// spanning its time range. A series with fewer than 2 points yields a
// constant (or zero) vector.
func Resample(s Series, n int) []float64 {
	out := make([]float64, n)
	resampleInto(s, out)
	return out
}

// resampleInto is Resample writing into a caller-provided buffer, for
// scoring loops that reuse scratch space across candidates.
func resampleInto(s Series, out []float64) {
	n := len(out)
	if len(s.Values) == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	if len(s.Values) == 1 || s.Times[len(s.Times)-1] <= s.Times[0] {
		for i := range out {
			out[i] = s.Values[0]
		}
		return
	}
	t0, t1 := s.Times[0], s.Times[len(s.Times)-1]
	j := 0
	for i := 0; i < n; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(n-1)
		for j < len(s.Times)-2 && s.Times[j+1] < t {
			j++
		}
		// Interpolate between points j and j+1.
		ta, tb := s.Times[j], s.Times[j+1]
		va, vb := s.Values[j], s.Values[j+1]
		if tb <= ta {
			out[i] = va
			continue
		}
		frac := (t - ta) / (tb - ta)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		out[i] = va + frac*(vb-va)
	}
}

// Resampler precomputes the interpolation schedule resampleInto derives
// from a series' time vector. Scoring loops replay many candidate value
// series over one segment's fixed sample times, so the left sample index
// and fraction for each grid point can be computed once per segment and
// reused; Into then produces bit-for-bit the values resampleInto would for
// Series{Times: times, Values: values}.
type Resampler struct {
	idx   []int32
	frac  []float64 // < 0: copy values[idx] verbatim (zero-span interval)
	n     int       // required len(values)
	bcast bool      // degenerate times: broadcast values[0] (or 0 when empty)
}

// NewResampler builds the schedule for a fixed, non-decreasing time vector.
// It returns nil for unsorted times — such series always score +Inf, so
// callers fall back to the validating Series path.
func NewResampler(times []float64) *Resampler {
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			return nil
		}
	}
	r := &Resampler{n: len(times)}
	if len(times) <= 1 || times[len(times)-1] <= times[0] {
		r.bcast = true
		return r
	}
	r.idx = make([]int32, ResampleN)
	r.frac = make([]float64, ResampleN)
	t0, t1 := times[0], times[len(times)-1]
	j := 0
	for i := 0; i < ResampleN; i++ {
		t := t0 + (t1-t0)*float64(i)/float64(ResampleN-1)
		for j < len(times)-2 && times[j+1] < t {
			j++
		}
		r.idx[i] = int32(j)
		ta, tb := times[j], times[j+1]
		if tb <= ta {
			r.frac[i] = -1
			continue
		}
		frac := (t - ta) / (tb - ta)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		r.frac[i] = frac
	}
	return r
}

// Into resamples values — observed at the schedule's times — onto out.
// len(values) must match the time vector the Resampler was built from and
// len(out) must be ResampleN.
func (r *Resampler) Into(values, out []float64) {
	if len(values) != r.n || len(out) != ResampleN {
		panic("dist: Resampler length mismatch")
	}
	if r.bcast {
		v := 0.0
		if r.n > 0 {
			v = values[0]
		}
		for i := range out {
			out[i] = v
		}
		return
	}
	idx, frac := r.idx, r.frac
	for i := range out {
		j := idx[i]
		f := frac[i]
		va := values[j]
		if f < 0 {
			out[i] = va
			continue
		}
		out[i] = va + f*(values[j+1]-va)
	}
}

// Metric measures how far apart two congestion-window traces are. Lower is
// closer. Implementations return +Inf for malformed input or series
// containing non-finite values.
type Metric interface {
	// Name returns the metric's short identifier.
	Name() string
	// Distance computes the metric between two series.
	Distance(a, b Series) float64
}

// finite reports whether all values are finite.
func finite(vs []float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// prepare resamples both series onto the common grid, returning ok=false
// when either input is unusable.
func prepare(a, b Series) (x, y []float64, ok bool) {
	if a.validate() != nil || b.validate() != nil || a.Len() == 0 || b.Len() == 0 {
		return nil, nil, false
	}
	x = Resample(a, ResampleN)
	y = Resample(b, ResampleN)
	if !finite(x) || !finite(y) {
		return nil, nil, false
	}
	return x, y, true
}

// DTW is the Dynamic Time Warping distance with a Sakoe-Chiba band. Being
// alignment-based, it corrects for temporal shifts between curves — the
// property that makes it the most tolerant of the four metrics to error in
// handler constants (Figure 3), at a higher computational cost.
type DTW struct {
	// Band is the Sakoe-Chiba band half-width in grid points; 0 means
	// ResampleN/10.
	Band int
}

// Name implements Metric.
func (DTW) Name() string { return "dtw" }

// Distance implements Metric.
func (d DTW) Distance(a, b Series) float64 {
	x, y, ok := prepare(a, b)
	if !ok {
		return math.Inf(1)
	}
	band := d.Band
	if band <= 0 {
		band = ResampleN / 10
	}
	prev := make([]float64, len(y)+1)
	cur := make([]float64, len(y)+1)
	v, _ := dtwWithin(x, y, nil, band, math.Inf(1), prev, cur, 0)
	return v
}

// Euclidean is the point-wise L2 distance on the resampled grid, normalized
// by sqrt(n). Cheap, but unforgiving of temporal shifts.
type Euclidean struct{}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Distance implements Metric.
func (Euclidean) Distance(a, b Series) float64 {
	x, y, ok := prepare(a, b)
	if !ok {
		return math.Inf(1)
	}
	v, _ := euclideanWithin(x, y, math.Inf(1))
	return v
}

// Manhattan is the point-wise mean absolute difference on the resampled
// grid — the area between the curves.
type Manhattan struct{}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Distance implements Metric.
func (Manhattan) Distance(a, b Series) float64 {
	x, y, ok := prepare(a, b)
	if !ok {
		return math.Inf(1)
	}
	v, _ := manhattanWithin(x, y, math.Inf(1))
	return v
}

// Frechet is the discrete Fréchet distance: the minimax "dog leash" length
// over monotone traversals of both curves.
type Frechet struct{}

// Name implements Metric.
func (Frechet) Name() string { return "frechet" }

// Distance implements Metric.
func (Frechet) Distance(a, b Series) float64 {
	x, y, ok := prepare(a, b)
	if !ok {
		return math.Inf(1)
	}
	prev := make([]float64, len(y))
	cur := make([]float64, len(y))
	v, _ := frechetWithin(x, y, math.Inf(1), prev, cur)
	return v
}

// Metrics returns one instance of every metric, DTW first (the default).
func Metrics() []Metric {
	return []Metric{DTW{}, Euclidean{}, Manhattan{}, Frechet{}}
}

// ByName returns the named metric.
func ByName(name string) (Metric, error) {
	for _, m := range Metrics() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("dist: unknown metric %q", name)
}

// Names returns the metric names, sorted.
func Names() []string {
	var names []string
	for _, m := range Metrics() {
		names = append(names, m.Name())
	}
	sort.Strings(names)
	return names
}
