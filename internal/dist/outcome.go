package dist

// Stage identifies which rung of the elimination cascade settled a bounded
// distance computation. The global counters (dist.lb_prunes, ...) aggregate
// the same events process-wide; an Outcome attributes them to one candidate
// so callers can build per-candidate provenance (the search funnel).
type Stage uint8

const (
	// StageFull: the kernel ran to completion; the value is exact.
	StageFull Stage = iota
	// StageLBKim: the endpoint lower bound settled the computation before
	// any DP work (DTW's LB_Kim; Fréchet's endpoint minimax bound).
	StageLBKim
	// StageLBKeogh: the envelope lower bound settled the computation
	// before any DP work.
	StageLBKeogh
	// StageAbandon: the scan abandoned mid-computation — a DP row minimum
	// or running sum proved the result >= the cutoff.
	StageAbandon

	// NumStages bounds Stage values (for arrays indexed by stage).
	NumStages
)

// String names the stage the way funnels and ledgers render it.
func (s Stage) String() string {
	switch s {
	case StageFull:
		return "full"
	case StageLBKim:
		return "lb_kim"
	case StageLBKeogh:
		return "lb_keogh"
	case StageAbandon:
		return "abandon"
	}
	return "unknown"
}

// Outcome describes how one bounded computation settled: the stage, where
// the DP stopped, and the cell cost. Cells counts DP cells filled (for the
// scan metrics, points consumed); Saved is the work the cascade avoided
// relative to an unabandoned pass over the same inputs. Saved is 0 on the
// plain Distance path, where the full cost is not precomputed.
type Outcome struct {
	// Stage is the cascade rung that settled the computation.
	Stage Stage
	// Row is the 1-based DP row (or scan index) at abandonment; 0 when the
	// computation never entered the DP or ran to completion.
	Row int
	// Cells is the number of DP cells (or scan points) computed.
	Cells int
	// Saved is the number of cells a full pass would additionally have
	// computed.
	Saved int
}

// Exact reports whether the value accompanying this outcome is the exact
// distance (the computation ran to completion). It matches the boolean of
// PreparedDistanceWithin bit for bit: every non-full stage returns a lower
// bound >= cutoff.
func (o Outcome) Exact() bool { return o.Stage == StageFull }

// bandCells is the DP cell count of a full banded pass over an n x m grid —
// precomputed per PreparedSeries so abandoning kernels can report cells
// saved without an O(n) loop on the hot path.
func bandCells(n, m, band int) int {
	if band <= 0 {
		band = ResampleN / 10
	}
	total := 0
	for i := 1; i <= n; i++ {
		lo, hi := i-band, i+band
		if lo < 1 {
			lo = 1
		}
		if hi > m {
			hi = m
		}
		if hi >= lo {
			total += hi - lo + 1
		}
	}
	return total
}
