// Package core implements Abagnale's synthesis pipeline — the paper's
// primary contribution. Given trace segments of an unknown CCA and a
// curated sub-DSL, it searches the space of candidate cwnd-on-ACK handlers
// for the one whose replayed CWND series minimizes the distance to the
// observed series.
//
// The search follows Algorithm 1: the sketch space is partitioned into
// buckets keyed by operator subset; each refinement iteration samples N
// sketches per bucket, concretizes their constants from a sampled pool
// (§4.2), scores the resulting handlers (§4.3), keeps the top-k buckets,
// then multiplies N by 8, halves k, and adds trace segments — until one
// bucket remains (exhausted) or every bucket is exhausted. The best handler
// seen is retained throughout, so interrupting the loop (budget exhaustion)
// still returns a result.
package core

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Observability instruments emitted when Options.Obs is set:
//
//	counters   core.handlers_scored, core.sketches_scored,
//	           core.completions_sampled, core.worker_busy_ns,
//	           core.score_cache_hits, core.score_cache_misses
//	gauges     core.best_distance (trajectory, also a metric event),
//	           core.workers
//	phases     core.synthesize, core.iteration, core.select_segments,
//	           core.score, core.final_distance
//	records    core.iteration — one IterationReport per refinement
//	           iteration (bucket ranking included)
//
// Worker utilization for the scoring phase is
// worker_busy_ns / (workers * phases["core.score"].TotalSec * 1e9).

// Options configures a synthesis run. Zero values select the paper's
// defaults.
type Options struct {
	// DSL is the curated sub-DSL to search (required).
	DSL *dsl.DSL
	// Metric scores candidate handlers; nil means DTW (§4.3).
	Metric dist.Metric
	// InitialSamples is N in Algorithm 1: sketches sampled per bucket in
	// the first iteration. Default 16.
	InitialSamples int
	// InitialKeep is k in Algorithm 1: buckets retained after the first
	// iteration. Default 5.
	InitialKeep int
	// InitialSegments is how many trace segments score iteration 1;
	// every iteration adds two more (§4.4). Default 4.
	InitialSegments int
	// MaxCompletions bounds the constant assignments sampled per sketch
	// (§4.2). Default 24.
	MaxCompletions int
	// MaxHandlers bounds the total concrete handlers scored — the
	// stand-in for the paper's wall-clock timeout. Default 300000.
	MaxHandlers int
	// BucketCap bounds how many sketches may be drawn from one bucket
	// (guards exhaustive passes over enormous buckets). Default 20000.
	BucketCap int
	// ScanBudget bounds how many candidate roots one bucket's enumerator
	// may construct over its lifetime while looking for members — the
	// in-process analogue of the paper's wall-clock timeout (~25k
	// candidates/second/core). Default 100000.
	ScanBudget int
	// Workers sets scoring parallelism. Default GOMAXPROCS.
	Workers int
	// RandomSegments disables the paper's diverse segment selection
	// (§3.2) in favor of uniform random sampling — an ablation knob.
	RandomSegments bool
	// NoBucketPruning disables Algorithm 1's only-top-k refinement: all
	// buckets stay live every iteration — an ablation knob quantifying
	// what bucket prioritization buys.
	NoBucketPruning bool
	// ExactScoring disables the threshold-aware fast path (lower-bound
	// pruning, early abandoning, and the canonical-handler memo cache):
	// every candidate pays the full metric computation. The fast path is
	// exact — for a fixed seed both modes return the identical result —
	// so this is a debugging/differential-testing knob, not an accuracy
	// one.
	ExactScoring bool
	// ScalarScoring disables the lane-batched scoring path: completions
	// are scored one at a time through the scalar replay kernel instead
	// of replay.Lanes-wide batches. The batched path is bit-identical to
	// scalar scoring — same best handler, distances, funnel, and ledger —
	// so like ExactScoring this is a differential-testing/debugging knob,
	// not an accuracy one.
	ScalarScoring bool
	// GreedyPruning additionally lets scoring workers use the global
	// best-so-far distance (an atomic shared across buckets) as their
	// cutoff instead of only bucket-local state. This prunes deeper but
	// the extra abandons depend on cross-bucket timing, so bucket
	// rankings — and therefore which handler wins — may differ between
	// runs of the same seed. Off by default to keep runs reproducible.
	GreedyPruning bool
	// Sketches, when set, supplies the run's sketch space — typically a
	// corpus.SketchCorpus shared by every trace of a batch, so the space
	// is enumerated, canonicalized and compiled once per DSL config
	// instead of once per run. Nil enumerates per run. A shared source
	// must be configured with this run's BucketCap/ScanBudget for results
	// to be identical to the per-run enumeration.
	Sketches SketchSource
	// Programs, when set, supplies compiled register programs to the
	// iteration scorers (replay.ProgramSource), sharing compilation
	// across runs. Nil compiles per scorer.
	Programs replay.ProgramSource
	// Ledger, when set, samples scored candidates into a deterministic
	// provenance ledger (sketch, completion constants, per-segment stage
	// outcomes, final distance — dumpable as JSONL). The sample is a pure
	// function of the candidate set, so a fixed Seed yields an identical
	// ledger regardless of worker scheduling. Candidates settled by the
	// memo cache are not re-offered; it never changes search behavior.
	Ledger *replay.Ledger
	// LeaseExec, when set, delegates each iteration's bucket scoring to an
	// external executor (internal/shard's coordinator): Algorithm 1's outer
	// loop — segment selection, ranking, top-k, budget, termination — stays
	// in-process and consumes the run's rand stream exactly as a local run
	// would, while the per-bucket scoring work is leased out. Per-bucket
	// scoring is deterministic, so results match the in-process path in the
	// default and ExactScoring modes. Sketches/Programs/Gate are unused on
	// the coordinating side when set (the executor's workers hold their
	// own).
	LeaseExec LeaseExecutor
	// Gate, when set, replaces the per-run Workers semaphore with a
	// shared concurrency bound: scoring workers and the run's own
	// goroutine each hold one slot while doing CPU work, so concurrent
	// runs sharing one Gate cannot oversubscribe the host.
	Gate Gate
	// Seed drives all sampling; runs are reproducible.
	Seed int64
	// RunName labels this run on the registry's live Board (the /runs
	// view of a -serve'd process). Empty uses "synthesize". The batch
	// engine sets it to the trace name so /runs shows per-trace state.
	RunName string
	// Obs receives the run's metrics, spans, per-iteration records and
	// progress stream. Nil disables instrumentation at near-zero cost
	// (nil-receiver no-ops); it never changes search behavior.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Metric == nil {
		o.Metric = dist.DTW{}
	}
	if o.InitialSamples == 0 {
		o.InitialSamples = 16
	}
	if o.InitialKeep == 0 {
		o.InitialKeep = 5
	}
	if o.InitialSegments == 0 {
		o.InitialSegments = 4
	}
	if o.MaxCompletions == 0 {
		o.MaxCompletions = 24
	}
	if o.MaxHandlers == 0 {
		o.MaxHandlers = 300000
	}
	if o.BucketCap == 0 {
		o.BucketCap = DefaultBucketCap
	}
	if o.ScanBudget == 0 {
		o.ScanBudget = DefaultScanBudget
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// BucketRank records one bucket's score in one iteration, for the search
// accuracy analysis of §6.2 (Table 4).
type BucketRank struct {
	// Ops is the bucket key.
	Ops dsl.OpSet
	// Score is the bucket's best sampled handler distance.
	Score float64
}

// IterationStats describes one refinement iteration.
type IterationStats struct {
	// Index is the 1-based iteration number.
	Index int
	// SamplesPerBucket is N for this iteration.
	SamplesPerBucket int
	// Segments is how many trace segments scored this iteration.
	Segments int
	// HandlersScored counts concrete handlers evaluated this iteration.
	HandlersScored int
	// Ranking is every live bucket ordered best-first.
	Ranking []BucketRank
	// Kept is how many buckets advanced to the next iteration.
	Kept int
}

// RankOf returns the 1-based rank of the bucket containing ops, or 0 when
// that bucket was not in this iteration's ranking.
func (s *IterationStats) RankOf(ops dsl.OpSet) int {
	for i, r := range s.Ranking {
		if r.Ops == ops {
			return i + 1
		}
	}
	return 0
}

// IterationReport is the JSON shape of one "core.iteration" obs record. It
// is derived from IterationStats by iterationReport — the single source of
// truth for per-iteration accounting is the IterationStats value appended
// to SearchStats; the run report re-renders that same value rather than
// keeping parallel books.
type IterationReport struct {
	Index            int                `json:"index"`
	SamplesPerBucket int                `json:"samples_per_bucket"`
	Segments         int                `json:"segments"`
	HandlersScored   int                `json:"handlers_scored"`
	Kept             int                `json:"kept"`
	BestDistance     ReportFloat        `json:"best_distance"`
	Ranking          []BucketRankReport `json:"ranking"`
}

// BucketRankReport is one ranked bucket in an IterationReport, with the
// operator set rendered readably.
type BucketRankReport struct {
	Ops   string      `json:"ops"`
	Score ReportFloat `json:"score"`
}

// ReportFloat is a float64 that marshals non-finite values as JSON null.
// Bucket scores and the best distance are +Inf until a bucket scores its
// first viable handler — reachable in a report when a run is cancelled
// during its first iteration — and encoding/json rejects non-finite
// float64s outright, which would silently lose the whole report.
type ReportFloat float64

// MarshalJSON renders NaN/±Inf as null and everything else as a number.
func (f ReportFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// iterationReport renders an IterationStats for the obs record stream.
func iterationReport(it IterationStats, best float64) IterationReport {
	rep := IterationReport{
		Index:            it.Index,
		SamplesPerBucket: it.SamplesPerBucket,
		Segments:         it.Segments,
		HandlersScored:   it.HandlersScored,
		Kept:             it.Kept,
		BestDistance:     ReportFloat(best),
		Ranking:          make([]BucketRankReport, len(it.Ranking)),
	}
	for i, r := range it.Ranking {
		rep.Ranking[i] = BucketRankReport{Ops: r.Ops.String(), Score: ReportFloat(r.Score)}
	}
	return rep
}

// SearchStats aggregates a run's exploration record (§6.1).
type SearchStats struct {
	// SpaceBuckets is the number of non-empty buckets at the start.
	SpaceBuckets int
	// Iterations holds per-iteration detail.
	Iterations []IterationStats
	// Buckets holds per-bucket search telemetry, best-first — the
	// bucket-level story of Algorithm 1's convergence (-explain).
	Buckets []BucketStats
	// HandlersScored is the total number of concrete handlers evaluated.
	HandlersScored int
	// SketchesScored is the total number of sketches sampled.
	SketchesScored int
	// Funnel aggregates every bucket's elimination funnel: where the
	// run's enumerated candidates settled and what each cascade stage
	// cost in DTW cells.
	Funnel Funnel
	// BudgetExhausted reports whether MaxHandlers stopped the loop early.
	BudgetExhausted bool
	// Interrupted reports that context cancellation stopped the loop;
	// the Result still carries the best handler seen up to that point.
	Interrupted bool
}

// Merge folds another run's (or shard's) search telemetry in: funnels and
// counters sum, per-bucket rows combine by operator set, flags OR. Merge
// is associative and commutative over every field it touches, so sharded
// workers can combine partial reports in any grouping or order (up to the
// ordering of equal-Best buckets). Per-iteration detail (Iterations) is
// inherently per-shard and is left untouched on the receiver.
func (s *SearchStats) Merge(o SearchStats) {
	s.SpaceBuckets += o.SpaceBuckets
	s.HandlersScored += o.HandlersScored
	s.SketchesScored += o.SketchesScored
	s.BudgetExhausted = s.BudgetExhausted || o.BudgetExhausted
	s.Interrupted = s.Interrupted || o.Interrupted
	s.Funnel.Merge(o.Funnel)
	byOps := make(map[dsl.OpSet]int, len(s.Buckets))
	for i := range s.Buckets {
		byOps[s.Buckets[i].Ops] = i
	}
	for _, ob := range o.Buckets {
		if i, ok := byOps[ob.Ops]; ok {
			s.Buckets[i].merge(ob)
			continue
		}
		byOps[ob.Ops] = len(s.Buckets)
		ob.Trajectory = append([]float64(nil), ob.Trajectory...)
		s.Buckets = append(s.Buckets, ob)
	}
	sort.SliceStable(s.Buckets, func(i, j int) bool { return s.Buckets[i].Best < s.Buckets[j].Best })
}

// BucketStats is one bucket's cumulative search telemetry: how much of
// the candidate budget it consumed, how hard the threshold-aware fast
// path pruned it, and how its best distance moved per refinement
// iteration.
type BucketStats struct {
	// Ops is the bucket key.
	Ops dsl.OpSet
	// Iterations is how many refinement iterations the bucket stayed
	// live (was sampled and ranked).
	Iterations int
	// SketchesTaken is the enumeration prefix length the bucket reached.
	SketchesTaken int
	// HandlersScored is the candidate budget the bucket spent.
	HandlersScored int
	// Pruned counts scored candidates settled inexactly — abandoned by
	// the lower-bound/early-abandon cascade (or a dominating cache
	// entry) before the full distance was computed. Always equals
	// Funnel.Pruned().
	Pruned int
	// Funnel breaks HandlersScored down by the cascade stage that
	// settled each candidate, with per-stage DTW-cell cost attribution.
	Funnel Funnel
	// Exhausted reports the bucket's enumeration completed (cap or scan
	// budget included).
	Exhausted bool
	// Best is the bucket's best sampled handler distance (+Inf when no
	// viable candidate scored).
	Best float64
	// Trajectory is Best after each iteration the bucket was live.
	Trajectory []float64
}

// PruneRate is Pruned/HandlersScored (0 when nothing was scored).
func (b *BucketStats) PruneRate() float64 {
	if b.HandlersScored == 0 {
		return 0
	}
	return float64(b.Pruned) / float64(b.HandlersScored)
}

// merge combines two shards' views of the same bucket: additive counters
// sum, prefix-shaped counters take the max (Take returns deterministic
// enumeration prefixes, so shards see nested prefixes), bests take the
// min, and trajectories merge element-wise by min with the shorter one
// padded by +Inf. Each operation is associative and commutative.
func (b *BucketStats) merge(o BucketStats) {
	b.Iterations = max(b.Iterations, o.Iterations)
	b.SketchesTaken = max(b.SketchesTaken, o.SketchesTaken)
	b.HandlersScored += o.HandlersScored
	b.Pruned += o.Pruned
	b.Exhausted = b.Exhausted || o.Exhausted
	if o.Best < b.Best {
		b.Best = o.Best
	}
	b.Funnel.Merge(o.Funnel)
	if len(o.Trajectory) > len(b.Trajectory) {
		b.Trajectory = append(b.Trajectory, o.Trajectory[len(b.Trajectory):]...)
	}
	for i := range b.Trajectory {
		if i < len(o.Trajectory) && o.Trajectory[i] < b.Trajectory[i] {
			b.Trajectory[i] = o.Trajectory[i]
		}
	}
}

// BucketReport is the JSON shape of one "core.bucket" obs record,
// derived from BucketStats.
type BucketReport struct {
	Ops        string        `json:"ops"`
	Iterations int           `json:"iterations"`
	Sketches   int           `json:"sketches"`
	Handlers   int           `json:"handlers"`
	Pruned     int           `json:"pruned"`
	PruneRate  float64       `json:"prune_rate"`
	Exhausted  bool          `json:"exhausted"`
	Best       ReportFloat   `json:"best"`
	Trajectory []ReportFloat `json:"trajectory"`
}

// BestImprovedReport is the JSON shape of a "core.best_improved" obs
// record, emitted whenever the global best distance improves — rendered
// as an instant event (annotated with the producing bucket) on exported
// trace-event timelines.
type BestImprovedReport struct {
	Bucket   string      `json:"bucket"`
	Distance ReportFloat `json:"distance"`
	Handler  string      `json:"handler"`
}

// bucketReport renders a BucketStats for the obs record stream.
func bucketReport(b BucketStats) BucketReport {
	rep := BucketReport{
		Ops:        b.Ops.String(),
		Iterations: b.Iterations,
		Sketches:   b.SketchesTaken,
		Handlers:   b.HandlersScored,
		Pruned:     b.Pruned,
		PruneRate:  b.PruneRate(),
		Exhausted:  b.Exhausted,
		Best:       ReportFloat(b.Best),
		Trajectory: make([]ReportFloat, len(b.Trajectory)),
	}
	for i, d := range b.Trajectory {
		rep.Trajectory[i] = ReportFloat(d)
	}
	return rep
}

// Result is a completed synthesis.
type Result struct {
	// Handler is the best concrete handler found.
	Handler *dsl.Node
	// Sketch is the sketch the handler was concretized from.
	Sketch *dsl.Node
	// Distance is the handler's summed distance over all input segments
	// (comparable to Table 2's per-CCA values).
	Distance float64
	// Stats records the search's progress.
	Stats SearchStats
}

// Synthesize runs the pipeline over the given trace segments. The context
// is checked between iterations and inside the scoring workers: on
// cancellation the search winds down gracefully and still returns the
// best-so-far Result (with Stats.Interrupted set) when one exists, or
// ctx.Err() when nothing viable was found yet.
func Synthesize(ctx context.Context, segs []*trace.Segment, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if len(segs) == 0 {
		return nil, errors.New("core: no trace segments")
	}
	if opts.RunName == "" {
		if name, ok := RunNameFromContext(ctx); ok {
			opts.RunName = name
		}
	}
	run := &runState{
		ctx:    ctx,
		opts:   opts,
		segs:   segs,
		segIdx: make(map[*trace.Segment]int, len(segs)),
		rng:    rand.New(rand.NewSource(opts.Seed)),
		cache:  newScoreCache(0),
		obsv:   opts.Obs,
	}
	for i, s := range segs {
		run.segIdx[s] = i
	}
	// Hot-path handles are resolved once; each is a nil no-op when
	// observability is off.
	run.cHandlers = opts.Obs.Counter("core.handlers_scored")
	run.cSketches = opts.Obs.Counter("core.sketches_scored")
	run.cCompletions = opts.Obs.Counter("core.completions_sampled")
	run.cBusyNS = opts.Obs.Counter("core.worker_busy_ns")
	run.cCacheHits = opts.Obs.Counter("core.score_cache_hits")
	run.cCacheMisses = opts.Obs.Counter("core.score_cache_misses")
	run.cFunnelEnum = opts.Obs.Counter("core.funnel_enumerated")
	run.cFunnelNew = opts.Obs.Counter("core.funnel_new_best")
	for i := FunnelStage(0); i < NumFunnelStages; i++ {
		run.cFunnel[i] = opts.Obs.Counter(funnelCounterName(i))
	}
	run.hScore = opts.Obs.Histogram("core.score_handler_seconds")
	opts.Obs.Gauge("core.workers").Set(float64(opts.Workers))
	return run.run()
}

// runState carries one synthesis run.
type runState struct {
	ctx    context.Context
	opts   Options
	segs   []*trace.Segment
	segIdx map[*trace.Segment]int
	rng    *rand.Rand

	stats   SearchStats
	scored  int // handlers scored so far (budget)
	best    scoredHandler
	buckets []*bucket

	cache      *scoreCache
	atomicBest atomic.Uint64 // Float64bits of best.distance, for GreedyPruning readers

	src     SketchSource
	gate    Gate
	holding bool // this goroutine holds a slot of an external Gate

	live *obs.Run // this run's live Board entry (nil no-ops)

	runName string

	obsv         *obs.Registry
	cHandlers    *obs.Counter
	cSketches    *obs.Counter
	cCompletions *obs.Counter
	cBusyNS      *obs.Counter
	cCacheHits   *obs.Counter
	cCacheMisses *obs.Counter
	cFunnelEnum  *obs.Counter
	cFunnelNew   *obs.Counter
	cFunnel      [NumFunnelStages]*obs.Counter
	hScore       *obs.Histogram
}

// loadBest and storeBest shuttle the global best distance through the
// atomic (stored as IEEE bits; the value only ever decreases).
func (r *runState) loadBest() float64   { return math.Float64frombits(r.atomicBest.Load()) }
func (r *runState) storeBest(d float64) { r.atomicBest.Store(math.Float64bits(d)) }

// scoredHandler is a candidate with its score at evaluation time.
type scoredHandler struct {
	handler  *dsl.Node
	sketch   *dsl.Node
	distance float64
}

// bucket is one partition of the sketch space as one run sees it: the key,
// the latest Take result, and the bucket's best sampled handler. The sketch
// enumeration itself lives in the run's SketchSource.
type bucket struct {
	ops       dsl.OpSet
	sketches  []*dsl.Node
	taken     int // enumeration prefix length of the latest Take (remote leases carry no sketch slice)
	exhausted bool
	score     float64
	best      scoredHandler

	// Search telemetry (SearchStats.Buckets / the -explain table).
	// handlers/pruned/funnel are written by the bucket's own scoring
	// worker, iters/traj by the coordinator between iterations.
	handlers int
	pruned   int
	funnel   Funnel
	iters    int
	traj     []float64
}

// run executes Algorithm 1.
func (r *runState) run() (*Result, error) {
	root := r.obsv.StartSpan("core.synthesize")
	defer root.End()

	name := r.opts.RunName
	if name == "" {
		name = "synthesize"
	}
	r.runName = name
	r.live = r.obsv.Board().Start(name, int64(r.opts.MaxHandlers))
	r.live.SetPhase("enumerate")
	r.best.distance = math.Inf(1)
	r.storeBest(math.Inf(1))
	// Publish an (empty) funnel up front so /runs/{name}/funnel resolves
	// as soon as the run is visible, not only after the first iteration.
	r.live.SetFunnel(r.funnelReport())

	r.src = r.opts.Sketches
	if r.src == nil {
		es := newEnumSource(r.opts.DSL, r.obsv)
		r.src = es
		defer es.Close()
	}
	if r.opts.Gate != nil {
		// Gated run: hold a slot whenever this goroutine does CPU work,
		// yielding it while blocked on the scoring workers (scoreBuckets).
		r.gate = r.opts.Gate
		if !r.gate.Acquire(r.ctx) {
			return nil, r.ctx.Err()
		}
		r.holding = true
		defer func() {
			if r.holding {
				r.gate.Release()
			}
		}()
	} else {
		r.gate = NewGate(r.opts.Workers)
	}
	for _, ops := range r.src.Buckets() {
		r.buckets = append(r.buckets, &bucket{ops: ops, score: math.Inf(1)})
	}

	n := r.opts.InitialSamples
	k := r.opts.InitialKeep
	nseg := r.opts.InitialSegments
	iterIdx := 0

	live := r.buckets
	for {
		iterIdx++
		r.live.SetIteration(iterIdx)
		r.live.SetPhase("select_segments")
		isp := root.Child("core.iteration")
		ssp := isp.Child("core.select_segments")
		var segs []*trace.Segment
		if r.opts.RandomSegments {
			segs = randomSegments(r.segs, nseg, r.rng)
		} else {
			segs = trace.SelectDiverse(r.segs, nseg, r.opts.Metric, r.rng)
		}
		setID := r.segmentSetID(segs)
		ssp.End()

		r.live.SetPhase("score")
		scsp := isp.Child("core.score")
		var handlers int
		if r.opts.LeaseExec != nil {
			handlers = r.execLeased(iterIdx, n, live, segs, setID)
		} else {
			scorer := replay.NewScorer(segs, r.opts.Metric).WithPrograms(r.opts.Programs)
			if r.opts.Ledger != nil {
				// The segment-set fingerprint doubles as the ledger round
				// tag: re-scoring a candidate in a later iteration
				// (different segments) is a distinct provenance event.
				scorer.WithLedger(r.opts.Ledger, setID)
			}
			handlers = r.scoreBuckets(live, n, scorer, setID, scsp)
		}
		scsp.End()
		r.live.SetPhase("rank")

		// Drop buckets that turned out empty, then rank.
		nonEmpty := live[:0:0]
		for _, b := range live {
			if b.taken > 0 {
				nonEmpty = append(nonEmpty, b)
			}
		}
		live = nonEmpty
		if iterIdx == 1 {
			r.stats.SpaceBuckets = len(live)
		}
		if len(live) == 0 {
			if r.ctx.Err() != nil {
				// Cancellation can stop scoreBuckets before any bucket
				// was sampled; that is an interrupted run, not an empty
				// sketch space.
				r.stats.Interrupted = true
				break
			}
			err := errors.New("core: the DSL's sketch space is empty")
			r.live.Finish(err)
			return nil, err
		}
		sort.SliceStable(live, func(i, j int) bool { return live[i].score < live[j].score })

		it := IterationStats{
			Index:            iterIdx,
			SamplesPerBucket: n,
			Segments:         len(segs),
			HandlersScored:   handlers,
		}
		for _, b := range live {
			it.Ranking = append(it.Ranking, BucketRank{Ops: b.ops, Score: b.score})
			b.iters++
			b.traj = append(b.traj, b.score)
		}

		// only-top-k: keep buckets scoring no worse than the k-th (§4.4:
		// ties are retained).
		kept := live
		if r.opts.NoBucketPruning {
			k = len(live)
		}
		if len(live) > k {
			cut := live[k-1].score
			idx := k
			for idx < len(live) && live[idx].score <= cut {
				idx++
			}
			for _, b := range live[idx:] {
				r.src.Release(b.ops)
			}
			kept = live[:idx]
		}
		it.Kept = len(kept)
		r.endIteration(isp, it)
		r.live.SetFunnel(r.funnelReport())
		live = kept

		if r.ctx.Err() != nil {
			r.stats.Interrupted = true
			break
		}
		if r.scored >= r.opts.MaxHandlers {
			r.stats.BudgetExhausted = true
			break
		}
		// Termination: everything remaining already fully enumerated and
		// sampled (covers the single-bucket case).
		allDone := true
		for _, b := range live {
			if !b.exhausted || b.taken > n {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}

		n *= 8
		if k > 1 {
			k /= 2
		}
		nseg += 2
	}

	r.finishBucketStats()
	if r.best.handler == nil {
		err := r.ctx.Err()
		if err == nil {
			err = errors.New("core: no viable handler found (all candidates diverged)")
		}
		r.live.Finish(err)
		return nil, err
	}
	// Report the final handler's distance over the full segment set.
	r.live.SetPhase("final_distance")
	fsp := root.Child("core.final_distance")
	final, _ := replay.NewScorer(r.segs, r.opts.Metric).WithPrograms(r.opts.Programs).
		Score(r.best.handler, math.Inf(1))
	fsp.End()
	r.stats.HandlersScored = r.scored
	r.live.SetBest(final, r.best.handler.String())
	r.live.Finish(nil)
	return &Result{
		Handler:  r.best.handler,
		Sketch:   r.best.sketch,
		Distance: final,
		Stats:    r.stats,
	}, nil
}

// finishBucketStats freezes per-bucket telemetry into SearchStats.Buckets
// (best-first) and re-renders each row as a "core.bucket" obs record — the
// run report's bucket-level account of where Algorithm 1 spent its budget
// and why it converged where it did.
func (r *runState) finishBucketStats() {
	var bs []BucketStats
	for _, b := range r.buckets {
		if b.iters == 0 {
			continue
		}
		r.stats.Funnel.Merge(b.funnel)
		bs = append(bs, BucketStats{
			Ops:            b.ops,
			Iterations:     b.iters,
			SketchesTaken:  b.taken,
			HandlersScored: b.handlers,
			Pruned:         b.pruned,
			Funnel:         b.funnel,
			Exhausted:      b.exhausted,
			Best:           b.score,
			Trajectory:     b.traj,
		})
	}
	sort.SliceStable(bs, func(i, j int) bool { return bs[i].Best < bs[j].Best })
	r.stats.Buckets = bs
	rep := r.funnelReport()
	r.live.SetFunnel(rep)
	if r.obsv != nil {
		for i := range bs {
			r.obsv.Record("core.bucket", bucketReport(bs[i]))
		}
		// The run's provenance record: the aggregate funnel plus each
		// bucket's, for funneldiff and the run report.
		r.obsv.Record("core.funnel", rep)
	}
}

// funnelReport assembles the run-level provenance summary — aggregate
// funnel, per-bucket funnels best-first, winning handler — from buckets
// sampled at least once. Safe to call only between iterations (the
// coordinator's side of the single-writer discipline on bucket funnels).
func (r *runState) funnelReport() RunFunnelReport {
	rep := RunFunnelReport{Run: r.runName, Distance: ReportFloat(r.best.distance)}
	if r.best.handler != nil {
		rep.Handler = r.best.handler.String()
	}
	var total Funnel
	bks := make([]*bucket, 0, len(r.buckets))
	for _, b := range r.buckets {
		if b.iters == 0 && b.funnel.Enumerated == 0 {
			continue
		}
		total.Merge(b.funnel)
		bks = append(bks, b)
	}
	sort.SliceStable(bks, func(i, j int) bool { return bks[i].score < bks[j].score })
	rep.Total = total.Report()
	rep.Buckets = make([]BucketFunnelReport, len(bks))
	for i, b := range bks {
		rep.Buckets[i] = BucketFunnelReport{Ops: b.ops.String(), Funnel: b.funnel.Report()}
	}
	return rep
}

// endIteration is the one place per-iteration accounting leaves the loop:
// it appends the IterationStats to SearchStats, re-renders the same value
// as the run report's "core.iteration" record, emits the progress line, and
// closes the iteration span. SearchStats and the obs report can therefore
// never disagree.
func (r *runState) endIteration(sp *obs.Span, it IterationStats) {
	r.stats.Iterations = append(r.stats.Iterations, it)
	if r.obsv != nil {
		// Cumulative cache traffic lands in the flight recorder once per
		// iteration (per-hit notes would tax the scoring hot path).
		f := r.obsv.Flight()
		f.Note("counter", "core.score_cache_hits", float64(r.cCacheHits.Value()))
		f.Note("counter", "core.score_cache_misses", float64(r.cCacheMisses.Value()))
		r.obsv.Record("core.iteration", iterationReport(it, r.best.distance))
		r.obsv.Progressf("iteration %d: N=%d over %d segments, %d handlers, kept %d/%d buckets, best %.2f",
			it.Index, it.SamplesPerBucket, it.Segments, it.HandlersScored,
			it.Kept, len(it.Ranking), r.best.distance)
		sp.SetAttr("index", it.Index).SetAttr("handlers", it.HandlersScored)
	}
	sp.End()
}

// randomSegments draws n segments uniformly without replacement.
func randomSegments(segs []*trace.Segment, n int, rng *rand.Rand) []*trace.Segment {
	if n >= len(segs) {
		out := make([]*trace.Segment, len(segs))
		copy(out, segs)
		return out
	}
	perm := rng.Perm(len(segs))
	out := make([]*trace.Segment, n)
	for i := 0; i < n; i++ {
		out[i] = segs[perm[i]]
	}
	return out
}

// segmentSetID fingerprints an iteration's segment subset (by index into
// the run's full segment list) so memoized scores can never leak between
// different subsets.
func (r *runState) segmentSetID(segs []*trace.Segment) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, s := range segs {
		binary.LittleEndian.PutUint64(buf[:], uint64(r.segIdx[s]))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// scoreBuckets samples and scores n sketches from every live bucket in
// parallel, updating bucket scores and the global best. It returns the
// number of handlers scored.
//
// Cutoff discipline: each bucket's workers prune against bucket-local
// state only (the bucket's best score, fixed per sketch at scoreSketch
// entry) unless GreedyPruning opts into the shared atomic best. Pruned
// (inexact) scores never update bucket or global bests — the exact flag
// guards every comparison — which is what makes the fast path return the
// identical result as ExactScoring for a fixed seed: a candidate is only
// abandoned once its true score provably cannot improve the bucket, so
// the sequence of bucket-best updates is the same in both modes.
func (r *runState) scoreBuckets(live []*bucket, n int, scorer *replay.Scorer, setID uint64, parent *obs.Span) int {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		total   int
		sketchN int
		budget  = r.opts.MaxHandlers - r.scored
		perBkt  = budgetShare(budget, len(live))
	)
	// While blocked on the scoring workers this goroutine does no CPU work,
	// so an externally gated run gives its own slot back up front — with a
	// one-slot gate (single-core host) the first worker could otherwise
	// never be admitted.
	if r.holding {
		r.gate.Release()
		r.holding = false
	}
	for _, b := range live {
		// Worker admission doubles as the concurrency bound: Acquire only
		// fails on context cancellation, in which case the remaining
		// buckets keep their previous scores (the run is winding down).
		if !r.gate.Acquire(r.ctx) {
			break
		}
		wg.Add(1)
		go func(b *bucket) {
			defer wg.Done()
			defer r.gate.Release()
			// One span per scoring worker: its own lane on the exported
			// timeline, and a "core.score_bucket" phase total.
			wsp := parent.Child("core.score_bucket")
			busy := time.Now()
			b.sketches, b.exhausted = r.src.Take(b.ops, n, r.opts.BucketCap, r.opts.ScanBudget)
			b.taken = len(b.sketches)
			handlers := 0
			// One funnel and one reusable lane scratch per worker: the hot
			// path tallies into worker-local state, folded into the bucket
			// (and the obs counters, in bulk) once per iteration.
			var fl Funnel
			scr := newLaneScratch()
			for _, sk := range b.sketches {
				if handlers >= perBkt {
					break
				}
				if r.ctx.Err() != nil {
					break
				}
				h, d, exact, hn := r.scoreSketch(sk, scorer, setID, b.score, &fl, scr)
				handlers += hn
				r.live.AddHandlers(hn)
				if exact && d < b.score {
					b.score = d
					b.best = scoredHandler{handler: h, sketch: sk, distance: d}
				}
			}
			b.handlers += handlers
			b.pruned += fl.Pruned()
			b.funnel.Merge(fl)
			r.addFunnelCounters(&fl)
			r.cBusyNS.Add(time.Since(busy).Nanoseconds())
			wsp.SetAttr("ops", b.ops.String()).SetAttr("handlers", handlers)
			wsp.End()
			mu.Lock()
			total += handlers
			sketchN += b.taken
			if b.best.handler != nil && b.best.distance < r.best.distance {
				r.best = b.best
				r.storeBest(b.best.distance)
				r.obsv.Metric("core.best_distance", b.best.distance)
				if r.obsv != nil {
					// The timeline's instant event for an improvement,
					// annotated with the bucket that produced it.
					r.live.SetBest(b.best.distance, b.best.handler.String())
					r.obsv.Record("core.best_improved", BestImprovedReport{
						Bucket:   b.ops.String(),
						Distance: ReportFloat(b.best.distance),
						Handler:  b.best.handler.String(),
					})
				}
			}
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	if r.opts.Gate != nil && !r.holding {
		r.holding = r.gate.Acquire(r.ctx)
	}
	r.scored += total
	r.stats.SketchesScored += sketchN
	r.cHandlers.Add(int64(total))
	r.cSketches.Add(int64(sketchN))
	return total
}

// budgetShare splits the remaining handler budget across buckets. Ceiling
// division so every bucket — the last one included — gets a nonzero share
// whenever any budget remains, even with budget < buckets; a depleted (or
// overdrawn) budget yields 0 for everyone.
func budgetShare(budget, buckets int) int {
	if buckets <= 0 || budget <= 0 {
		return 0
	}
	return (budget + buckets - 1) / buckets
}

// cutoff adjusts a bucket-local pruning threshold for the run's mode:
// ExactScoring disables pruning outright, GreedyPruning tightens it with
// the cross-bucket atomic best.
func (r *runState) cutoff(c float64) float64 {
	if r.opts.ExactScoring {
		return math.Inf(1)
	}
	if r.opts.GreedyPruning {
		if g := r.loadBest(); g < c {
			c = g
		}
	}
	return c
}

// scoreHandler scores one concrete handler over the iteration's segment
// set, going through the canonical-handler memo cache. h is the bound tree
// (the memo key's canonical form); cs and vals are its executable form —
// the sketch's program with vals patched into the constant pool. Exact
// cache hits return the true distance; lower-bound entries may only settle
// lookups they already dominate (entry >= cutoff), otherwise the handler
// is rescored under the caller's cutoff and the cache entry improves.
func (r *runState) scoreHandler(h *dsl.Node, cs *replay.CompiledSketch, vals []float64, setID uint64, cutoff float64, fl *Funnel, co *replay.CandidateOutcome) (float64, bool) {
	if r.opts.ExactScoring {
		d, _ := r.timedScore(cs, vals, math.Inf(1), co)
		fl.observe(co)
		return d, true
	}
	key := handlerKey(h, setID)
	if e, ok := r.cache.get(key); ok {
		if e.exact {
			r.cCacheHits.Inc()
			fl.count(FunnelCanonicalDup)
			return e.d, true
		}
		if e.d >= cutoff {
			r.cCacheHits.Inc()
			fl.count(FunnelCacheLB)
			return e.d, false
		}
	}
	r.cCacheMisses.Inc()
	d, exact := r.timedScore(cs, vals, cutoff, co)
	fl.observe(co)
	r.cache.put(key, d, exact)
	return d, exact
}

// timedScore runs one replay score, feeding the per-handler latency
// histogram when one is registered. The clock reads are skipped entirely
// otherwise — benchmarks and headless runs pay nothing.
func (r *runState) timedScore(cs *replay.CompiledSketch, vals []float64, cutoff float64, co *replay.CandidateOutcome) (float64, bool) {
	if r.hScore == nil {
		return cs.ScoreDetail(vals, cutoff, co)
	}
	t0 := time.Now()
	d, exact := cs.ScoreDetail(vals, cutoff, co)
	r.hScore.Observe(time.Since(t0).Seconds())
	return d, exact
}

// addFunnelCounters bulk-adds one worker-iteration's funnel into the obs
// registry counters — a handful of atomics per bucket per iteration
// rather than one per candidate.
func (r *runState) addFunnelCounters(fl *Funnel) {
	if r.obsv == nil {
		return
	}
	r.cFunnelEnum.Add(int64(fl.Enumerated))
	if fl.NewBest > 0 {
		r.cFunnelNew.Add(int64(fl.NewBest))
	}
	for i := range fl.Stages {
		if c := fl.Stages[i].Candidates; c > 0 {
			r.cFunnel[i].Add(int64(c))
		}
	}
}

// completions returns the constant assignments to try for a sketch: the
// full cross product when small enough, otherwise a deterministic random
// sample (§4.2's approximate concretization).
func completions(sk *dsl.Node, pool []float64, holes, maxN int, seed int64) [][]float64 {
	if len(pool) == 0 {
		return nil
	}
	total := 1
	for i := 0; i < holes; i++ {
		total *= len(pool)
		if total > maxN {
			break
		}
	}
	if total <= maxN {
		// Exhaustive cross product.
		out := make([][]float64, 0, total)
		idx := make([]int, holes)
		for {
			vals := make([]float64, holes)
			for i, j := range idx {
				vals[i] = pool[j]
			}
			out = append(out, vals)
			i := holes - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < len(pool) {
					break
				}
				idx[i] = 0
			}
			if i < 0 {
				break
			}
		}
		return out
	}
	// Deterministic per-sketch random sample.
	h := fnv.New64a()
	fmt.Fprint(h, sk.Key())
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	out := make([][]float64, maxN)
	for i := range out {
		vals := make([]float64, holes)
		for j := range vals {
			vals[j] = pool[rng.Intn(len(pool))]
		}
		out[i] = vals
	}
	return out
}
