// Package core implements Abagnale's synthesis pipeline — the paper's
// primary contribution. Given trace segments of an unknown CCA and a
// curated sub-DSL, it searches the space of candidate cwnd-on-ACK handlers
// for the one whose replayed CWND series minimizes the distance to the
// observed series.
//
// The search follows Algorithm 1: the sketch space is partitioned into
// buckets keyed by operator subset; each refinement iteration samples N
// sketches per bucket, concretizes their constants from a sampled pool
// (§4.2), scores the resulting handlers (§4.3), keeps the top-k buckets,
// then multiplies N by 8, halves k, and adds trace segments — until one
// bucket remains (exhausted) or every bucket is exhausted. The best handler
// seen is retained throughout, so interrupting the loop (budget exhaustion)
// still returns a result.
package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"iter"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/enum"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Observability instruments emitted when Options.Obs is set:
//
//	counters   core.handlers_scored, core.sketches_scored,
//	           core.completions_sampled, core.worker_busy_ns
//	gauges     core.best_distance (trajectory, also a metric event),
//	           core.workers
//	phases     core.synthesize, core.iteration, core.select_segments,
//	           core.score, core.final_distance
//	records    core.iteration — one IterationReport per refinement
//	           iteration (bucket ranking included)
//
// Worker utilization for the scoring phase is
// worker_busy_ns / (workers * phases["core.score"].TotalSec * 1e9).

// Options configures a synthesis run. Zero values select the paper's
// defaults.
type Options struct {
	// DSL is the curated sub-DSL to search (required).
	DSL *dsl.DSL
	// Metric scores candidate handlers; nil means DTW (§4.3).
	Metric dist.Metric
	// InitialSamples is N in Algorithm 1: sketches sampled per bucket in
	// the first iteration. Default 16.
	InitialSamples int
	// InitialKeep is k in Algorithm 1: buckets retained after the first
	// iteration. Default 5.
	InitialKeep int
	// InitialSegments is how many trace segments score iteration 1;
	// every iteration adds two more (§4.4). Default 4.
	InitialSegments int
	// MaxCompletions bounds the constant assignments sampled per sketch
	// (§4.2). Default 24.
	MaxCompletions int
	// MaxHandlers bounds the total concrete handlers scored — the
	// stand-in for the paper's wall-clock timeout. Default 300000.
	MaxHandlers int
	// BucketCap bounds how many sketches may be drawn from one bucket
	// (guards exhaustive passes over enormous buckets). Default 20000.
	BucketCap int
	// ScanBudget bounds how many candidate roots one bucket's enumerator
	// may construct over its lifetime while looking for members — the
	// in-process analogue of the paper's wall-clock timeout (~25k
	// candidates/second/core). Default 100000.
	ScanBudget int
	// Workers sets scoring parallelism. Default GOMAXPROCS.
	Workers int
	// RandomSegments disables the paper's diverse segment selection
	// (§3.2) in favor of uniform random sampling — an ablation knob.
	RandomSegments bool
	// NoBucketPruning disables Algorithm 1's only-top-k refinement: all
	// buckets stay live every iteration — an ablation knob quantifying
	// what bucket prioritization buys.
	NoBucketPruning bool
	// Seed drives all sampling; runs are reproducible.
	Seed int64
	// Obs receives the run's metrics, spans, per-iteration records and
	// progress stream. Nil disables instrumentation at near-zero cost
	// (nil-receiver no-ops); it never changes search behavior.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Metric == nil {
		o.Metric = dist.DTW{}
	}
	if o.InitialSamples == 0 {
		o.InitialSamples = 16
	}
	if o.InitialKeep == 0 {
		o.InitialKeep = 5
	}
	if o.InitialSegments == 0 {
		o.InitialSegments = 4
	}
	if o.MaxCompletions == 0 {
		o.MaxCompletions = 24
	}
	if o.MaxHandlers == 0 {
		o.MaxHandlers = 300000
	}
	if o.BucketCap == 0 {
		o.BucketCap = 20000
	}
	if o.ScanBudget == 0 {
		o.ScanBudget = 100000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// BucketRank records one bucket's score in one iteration, for the search
// accuracy analysis of §6.2 (Table 4).
type BucketRank struct {
	// Ops is the bucket key.
	Ops dsl.OpSet
	// Score is the bucket's best sampled handler distance.
	Score float64
}

// IterationStats describes one refinement iteration.
type IterationStats struct {
	// Index is the 1-based iteration number.
	Index int
	// SamplesPerBucket is N for this iteration.
	SamplesPerBucket int
	// Segments is how many trace segments scored this iteration.
	Segments int
	// HandlersScored counts concrete handlers evaluated this iteration.
	HandlersScored int
	// Ranking is every live bucket ordered best-first.
	Ranking []BucketRank
	// Kept is how many buckets advanced to the next iteration.
	Kept int
}

// RankOf returns the 1-based rank of the bucket containing ops, or 0 when
// that bucket was not in this iteration's ranking.
func (s *IterationStats) RankOf(ops dsl.OpSet) int {
	for i, r := range s.Ranking {
		if r.Ops == ops {
			return i + 1
		}
	}
	return 0
}

// IterationReport is the JSON shape of one "core.iteration" obs record. It
// is derived from IterationStats by iterationReport — the single source of
// truth for per-iteration accounting is the IterationStats value appended
// to SearchStats; the run report re-renders that same value rather than
// keeping parallel books.
type IterationReport struct {
	Index            int                `json:"index"`
	SamplesPerBucket int                `json:"samples_per_bucket"`
	Segments         int                `json:"segments"`
	HandlersScored   int                `json:"handlers_scored"`
	Kept             int                `json:"kept"`
	BestDistance     float64            `json:"best_distance"`
	Ranking          []BucketRankReport `json:"ranking"`
}

// BucketRankReport is one ranked bucket in an IterationReport, with the
// operator set rendered readably.
type BucketRankReport struct {
	Ops   string  `json:"ops"`
	Score float64 `json:"score"`
}

// iterationReport renders an IterationStats for the obs record stream.
func iterationReport(it IterationStats, best float64) IterationReport {
	rep := IterationReport{
		Index:            it.Index,
		SamplesPerBucket: it.SamplesPerBucket,
		Segments:         it.Segments,
		HandlersScored:   it.HandlersScored,
		Kept:             it.Kept,
		BestDistance:     best,
		Ranking:          make([]BucketRankReport, len(it.Ranking)),
	}
	for i, r := range it.Ranking {
		rep.Ranking[i] = BucketRankReport{Ops: r.Ops.String(), Score: r.Score}
	}
	return rep
}

// SearchStats aggregates a run's exploration record (§6.1).
type SearchStats struct {
	// SpaceBuckets is the number of non-empty buckets at the start.
	SpaceBuckets int
	// Iterations holds per-iteration detail.
	Iterations []IterationStats
	// HandlersScored is the total number of concrete handlers evaluated.
	HandlersScored int
	// SketchesScored is the total number of sketches sampled.
	SketchesScored int
	// BudgetExhausted reports whether MaxHandlers stopped the loop early.
	BudgetExhausted bool
}

// Result is a completed synthesis.
type Result struct {
	// Handler is the best concrete handler found.
	Handler *dsl.Node
	// Sketch is the sketch the handler was concretized from.
	Sketch *dsl.Node
	// Distance is the handler's summed distance over all input segments
	// (comparable to Table 2's per-CCA values).
	Distance float64
	// Stats records the search's progress.
	Stats SearchStats
}

// Synthesize runs the pipeline over the given trace segments.
func Synthesize(segs []*trace.Segment, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.DSL == nil {
		return nil, errors.New("core: Options.DSL is required")
	}
	if len(segs) == 0 {
		return nil, errors.New("core: no trace segments")
	}
	run := &runState{
		opts: opts,
		segs: segs,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		obsv: opts.Obs,
	}
	// Hot-path handles are resolved once; each is a nil no-op when
	// observability is off.
	run.cHandlers = opts.Obs.Counter("core.handlers_scored")
	run.cSketches = opts.Obs.Counter("core.sketches_scored")
	run.cCompletions = opts.Obs.Counter("core.completions_sampled")
	run.cBusyNS = opts.Obs.Counter("core.worker_busy_ns")
	opts.Obs.Gauge("core.workers").Set(float64(opts.Workers))
	return run.run()
}

// runState carries one synthesis run.
type runState struct {
	opts Options
	segs []*trace.Segment
	rng  *rand.Rand

	stats   SearchStats
	scored  int // handlers scored so far (budget)
	best    scoredHandler
	buckets []*bucket

	obsv         *obs.Registry
	cHandlers    *obs.Counter
	cSketches    *obs.Counter
	cCompletions *obs.Counter
	cBusyNS      *obs.Counter
}

// scoredHandler is a candidate with its score at evaluation time.
type scoredHandler struct {
	handler  *dsl.Node
	sketch   *dsl.Node
	distance float64
}

// bucket is one lazily-enumerated partition of the sketch space.
type bucket struct {
	ops       dsl.OpSet
	cache     []*dsl.Node
	next      func() (*dsl.Node, bool)
	stop      func()
	exhausted bool
	score     float64
	best      scoredHandler
}

// take returns the first n sketches of the bucket, pulling from the
// enumerator as needed (bounded by capN and the scan budget).
func (b *bucket) take(n, capN, scanBudget int, e *enum.Enumerator) []*dsl.Node {
	if n > capN {
		n = capN
	}
	if b.next == nil && !b.exhausted {
		b.next, b.stop = iter.Pull(e.BucketLimited(b.ops, scanBudget))
	}
	for len(b.cache) < n && !b.exhausted {
		sk, ok := b.next()
		if !ok {
			b.exhausted = true
			b.stop()
			break
		}
		b.cache = append(b.cache, sk)
		if len(b.cache) >= capN {
			b.exhausted = true
			b.stop()
		}
	}
	if n > len(b.cache) {
		n = len(b.cache)
	}
	return b.cache[:n]
}

// release closes any live iterator.
func (b *bucket) release() {
	if b.next != nil && !b.exhausted {
		b.stop()
	}
	b.next = nil
}

// run executes Algorithm 1.
func (r *runState) run() (*Result, error) {
	root := r.obsv.StartSpan("core.synthesize")
	defer root.End()

	e := enum.New(r.opts.DSL)
	e.Obs = r.obsv
	for _, ops := range e.Buckets() {
		r.buckets = append(r.buckets, &bucket{ops: ops, score: math.Inf(1)})
	}
	defer func() {
		for _, b := range r.buckets {
			b.release()
		}
	}()
	r.best.distance = math.Inf(1)

	n := r.opts.InitialSamples
	k := r.opts.InitialKeep
	nseg := r.opts.InitialSegments
	iterIdx := 0

	live := r.buckets
	for {
		iterIdx++
		isp := root.Child("core.iteration")
		ssp := isp.Child("core.select_segments")
		var segs []*trace.Segment
		if r.opts.RandomSegments {
			segs = randomSegments(r.segs, nseg, r.rng)
		} else {
			segs = trace.SelectDiverse(r.segs, nseg, r.opts.Metric, r.rng)
		}
		prep := prepareSegments(segs)
		ssp.End()

		scsp := isp.Child("core.score")
		handlers := r.scoreBuckets(live, n, prep)
		scsp.End()

		// Drop buckets that turned out empty, then rank.
		nonEmpty := live[:0:0]
		for _, b := range live {
			if len(b.cache) > 0 {
				nonEmpty = append(nonEmpty, b)
			}
		}
		live = nonEmpty
		if iterIdx == 1 {
			r.stats.SpaceBuckets = len(live)
		}
		if len(live) == 0 {
			return nil, errors.New("core: the DSL's sketch space is empty")
		}
		sort.SliceStable(live, func(i, j int) bool { return live[i].score < live[j].score })

		it := IterationStats{
			Index:            iterIdx,
			SamplesPerBucket: n,
			Segments:         len(segs),
			HandlersScored:   handlers,
		}
		for _, b := range live {
			it.Ranking = append(it.Ranking, BucketRank{Ops: b.ops, Score: b.score})
		}

		// only-top-k: keep buckets scoring no worse than the k-th (§4.4:
		// ties are retained).
		kept := live
		if r.opts.NoBucketPruning {
			k = len(live)
		}
		if len(live) > k {
			cut := live[k-1].score
			idx := k
			for idx < len(live) && live[idx].score <= cut {
				idx++
			}
			for _, b := range live[idx:] {
				b.release()
			}
			kept = live[:idx]
		}
		it.Kept = len(kept)
		r.endIteration(isp, it)
		live = kept

		if r.scored >= r.opts.MaxHandlers {
			r.stats.BudgetExhausted = true
			break
		}
		// Termination: everything remaining already fully enumerated and
		// sampled (covers the single-bucket case).
		allDone := true
		for _, b := range live {
			if !b.exhausted || len(b.cache) > n {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}

		n *= 8
		if k > 1 {
			k /= 2
		}
		nseg += 2
	}

	if r.best.handler == nil {
		return nil, errors.New("core: no viable handler found (all candidates diverged)")
	}
	// Report the final handler's distance over the full segment set.
	fsp := root.Child("core.final_distance")
	final := replay.TotalDistance(r.best.handler, r.segs, r.opts.Metric)
	fsp.End()
	r.stats.HandlersScored = r.scored
	return &Result{
		Handler:  r.best.handler,
		Sketch:   r.best.sketch,
		Distance: final,
		Stats:    r.stats,
	}, nil
}

// endIteration is the one place per-iteration accounting leaves the loop:
// it appends the IterationStats to SearchStats, re-renders the same value
// as the run report's "core.iteration" record, emits the progress line, and
// closes the iteration span. SearchStats and the obs report can therefore
// never disagree.
func (r *runState) endIteration(sp *obs.Span, it IterationStats) {
	r.stats.Iterations = append(r.stats.Iterations, it)
	if r.obsv != nil {
		r.obsv.Record("core.iteration", iterationReport(it, r.best.distance))
		r.obsv.Progressf("iteration %d: N=%d over %d segments, %d handlers, kept %d/%d buckets, best %.2f",
			it.Index, it.SamplesPerBucket, it.Segments, it.HandlersScored,
			it.Kept, len(it.Ranking), r.best.distance)
		sp.SetAttr("index", it.Index).SetAttr("handlers", it.HandlersScored)
	}
	sp.End()
}

// randomSegments draws n segments uniformly without replacement.
func randomSegments(segs []*trace.Segment, n int, rng *rand.Rand) []*trace.Segment {
	if n >= len(segs) {
		out := make([]*trace.Segment, len(segs))
		copy(out, segs)
		return out
	}
	perm := rng.Perm(len(segs))
	out := make([]*trace.Segment, n)
	for i := 0; i < n; i++ {
		out[i] = segs[perm[i]]
	}
	return out
}

// preparedSegment caches the per-segment data scoring needs.
type preparedSegment struct {
	seg      *trace.Segment
	envs     []dsl.Env
	observed dist.Series
}

func prepareSegments(segs []*trace.Segment) []preparedSegment {
	out := make([]preparedSegment, len(segs))
	for i, s := range segs {
		out[i] = preparedSegment{seg: s, envs: replay.Envs(s), observed: s.Series()}
	}
	return out
}

// scoreBuckets samples and scores n sketches from every live bucket in
// parallel, updating bucket scores and the global best. It returns the
// number of handlers scored.
func (r *runState) scoreBuckets(live []*bucket, n int, prep []preparedSegment) int {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		total   int
		sketchN int
		sem     = make(chan struct{}, r.opts.Workers)
		budget  = r.opts.MaxHandlers - r.scored
		perBkt  = budgetShare(budget, len(live))
	)
	for _, b := range live {
		wg.Add(1)
		sem <- struct{}{}
		go func(b *bucket) {
			defer wg.Done()
			defer func() { <-sem }()
			busy := time.Now()
			en := enum.New(r.opts.DSL)
			en.Obs = r.obsv
			sketches := b.take(n, r.opts.BucketCap, r.opts.ScanBudget, en)
			handlers := 0
			for _, sk := range sketches {
				if handlers >= perBkt {
					break
				}
				h, d, hn := r.scoreSketch(sk, prep)
				handlers += hn
				if d < b.score {
					b.score = d
					b.best = scoredHandler{handler: h, sketch: sk, distance: d}
				}
			}
			r.cBusyNS.Add(time.Since(busy).Nanoseconds())
			mu.Lock()
			total += handlers
			sketchN += len(sketches)
			if b.best.handler != nil && b.best.distance < r.best.distance {
				r.best = b.best
				r.obsv.Metric("core.best_distance", b.best.distance)
			}
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	r.scored += total
	r.stats.SketchesScored += sketchN
	r.cHandlers.Add(int64(total))
	r.cSketches.Add(int64(sketchN))
	return total
}

// budgetShare splits the remaining handler budget across buckets.
func budgetShare(budget, buckets int) int {
	if buckets == 0 {
		return 0
	}
	share := budget / buckets
	if share < 1 {
		share = 1
	}
	return share
}

// scoreSketch concretizes a sketch's holes from the constant pool and
// returns the best handler, its distance, and the number of handlers
// evaluated. Sampling is deterministic per (sketch, seed).
func (r *runState) scoreSketch(sk *dsl.Node, prep []preparedSegment) (*dsl.Node, float64, int) {
	holes := sk.Holes()
	if holes == 0 {
		return sk, r.scoreHandler(sk, prep), 1
	}
	pool := r.opts.DSL.Constants
	assignments := completions(sk, pool, holes, r.opts.MaxCompletions, r.opts.Seed)
	r.cCompletions.Add(int64(len(assignments)))
	bestD := math.Inf(1)
	var bestH *dsl.Node
	for _, vals := range assignments {
		h, err := sk.Bind(vals)
		if err != nil {
			continue
		}
		if d := r.scoreHandler(h, prep); d < bestD {
			bestD = d
			bestH = h
		}
	}
	return bestH, bestD, len(assignments)
}

// scoreHandler sums the handler's distance over the prepared segments.
func (r *runState) scoreHandler(h *dsl.Node, prep []preparedSegment) float64 {
	var total float64
	for i := range prep {
		d := replay.DistanceEnvs(h, prep[i].seg, prep[i].envs, prep[i].observed, r.opts.Metric)
		if math.IsInf(d, 1) {
			return d
		}
		total += d
	}
	return total
}

// completions returns the constant assignments to try for a sketch: the
// full cross product when small enough, otherwise a deterministic random
// sample (§4.2's approximate concretization).
func completions(sk *dsl.Node, pool []float64, holes, maxN int, seed int64) [][]float64 {
	if len(pool) == 0 {
		return nil
	}
	total := 1
	for i := 0; i < holes; i++ {
		total *= len(pool)
		if total > maxN {
			break
		}
	}
	if total <= maxN {
		// Exhaustive cross product.
		out := make([][]float64, 0, total)
		idx := make([]int, holes)
		for {
			vals := make([]float64, holes)
			for i, j := range idx {
				vals[i] = pool[j]
			}
			out = append(out, vals)
			i := holes - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < len(pool) {
					break
				}
				idx[i] = 0
			}
			if i < 0 {
				break
			}
		}
		return out
	}
	// Deterministic per-sketch random sample.
	h := fnv.New64a()
	fmt.Fprint(h, sk.Key())
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	out := make([][]float64, maxN)
	for i := range out {
		vals := make([]float64, holes)
		for j := range vals {
			vals[j] = pool[rng.Intn(len(pool))]
		}
		out[i] = vals
	}
	return out
}
