package core

import (
	"repro/internal/dist"
	"repro/internal/replay"
)

// FunnelStage is one rung of the search's elimination funnel. The stages
// partition every enumerated candidate: a candidate is rejected at Bind,
// settled by the memo cache (as a canonical duplicate or by a dominating
// lower-bound entry), pruned by a metric lower bound, abandoned
// mid-computation, diverged during replay, or fully scored — exactly one
// of these per candidate, which is what makes the funnel reconcile.
type FunnelStage int

const (
	// FunnelRejected: the constant assignment failed to bind.
	FunnelRejected FunnelStage = iota
	// FunnelCanonicalDup: an exact memo entry settled the candidate — a
	// duplicate canonical handler already scored this iteration.
	FunnelCanonicalDup
	// FunnelCacheLB: a memoized lower bound >= the cutoff settled it.
	FunnelCacheLB
	// FunnelLBKim / FunnelLBKeogh: a metric lower bound pruned it before
	// any DP work.
	FunnelLBKim
	FunnelLBKeogh
	// FunnelAbandoned: the metric DP (or the cross-segment running sum)
	// abandoned it mid-computation.
	FunnelAbandoned
	// FunnelDiverged: the replay produced a non-finite window; the score
	// is exactly +Inf.
	FunnelDiverged
	// FunnelFullyScored: the full distance was computed.
	FunnelFullyScored

	// NumFunnelStages bounds FunnelStage values.
	NumFunnelStages
)

// String names the stage the way reports and /metrics render it.
func (s FunnelStage) String() string {
	switch s {
	case FunnelRejected:
		return "rejected"
	case FunnelCanonicalDup:
		return "canonical_dup"
	case FunnelCacheLB:
		return "cache_lb"
	case FunnelLBKim:
		return "lb_kim"
	case FunnelLBKeogh:
		return "lb_keogh"
	case FunnelAbandoned:
		return "abandoned"
	case FunnelDiverged:
		return "diverged"
	case FunnelFullyScored:
		return "fully_scored"
	}
	return "unknown"
}

// StageCost is one funnel stage's tally: how many candidates settled there
// and the DTW-cell cost attributed to them (cells the stage computed, cells
// its settling saved relative to full passes).
type StageCost struct {
	Candidates int   `json:"candidates"`
	Cells      int64 `json:"cells"`
	CellsSaved int64 `json:"cells_saved"`
}

// add folds another tally in.
func (c *StageCost) add(o StageCost) {
	c.Candidates += o.Candidates
	c.Cells += o.Cells
	c.CellsSaved += o.CellsSaved
}

// Funnel is the per-bucket (and, summed, per-run) elimination funnel:
// where enumerated candidates died and what the cascade's stages cost.
// NewBest counts candidates that improved their bucket's running best —
// it is an overlay, not a stage (a new best is also fully scored or a
// canonical dup).
type Funnel struct {
	// Enumerated counts candidates considered (completions attempted,
	// Bind failures included). It always equals the sum of the stage
	// candidate counts — see Reconciles.
	Enumerated int `json:"enumerated"`
	// Stages indexes StageCost by FunnelStage.
	Stages [NumFunnelStages]StageCost `json:"stages"`
	// NewBest counts candidates that improved the bucket-best running
	// minimum at the time they were scored.
	NewBest int `json:"new_best"`
}

// count tallies a candidate settled at stage with no metric work.
func (f *Funnel) count(stage FunnelStage) {
	f.Enumerated++
	f.Stages[stage].Candidates++
}

// observe tallies a scored candidate from its replay outcome.
func (f *Funnel) observe(co *replay.CandidateOutcome) {
	stage := FunnelFullyScored
	switch {
	case co.Diverged:
		stage = FunnelDiverged
	case co.Exact:
	default:
		switch co.Stage {
		case dist.StageLBKim:
			stage = FunnelLBKim
		case dist.StageLBKeogh:
			stage = FunnelLBKeogh
		default:
			stage = FunnelAbandoned
		}
	}
	f.Enumerated++
	c := &f.Stages[stage]
	c.Candidates++
	c.Cells += int64(co.Cells)
	c.CellsSaved += int64(co.Saved)
}

// Merge folds another funnel in. Merge is associative and commutative
// (every field is a sum), so sharded workers can combine partial funnels
// in any grouping or order.
func (f *Funnel) Merge(o Funnel) {
	f.Enumerated += o.Enumerated
	f.NewBest += o.NewBest
	for i := range f.Stages {
		f.Stages[i].add(o.Stages[i])
	}
}

// Pruned counts candidates settled inexactly — by a dominating cache
// entry, a lower bound, or abandonment. Equals BucketStats.Pruned.
func (f *Funnel) Pruned() int {
	return f.Stages[FunnelCacheLB].Candidates +
		f.Stages[FunnelLBKim].Candidates +
		f.Stages[FunnelLBKeogh].Candidates +
		f.Stages[FunnelAbandoned].Candidates
}

// Reconciles reports the funnel's accounting invariant: every enumerated
// candidate settled in exactly one stage.
func (f *Funnel) Reconciles() bool {
	sum := 0
	for i := range f.Stages {
		sum += f.Stages[i].Candidates
	}
	return sum == f.Enumerated
}

// FunnelStageReport is one stage row of a rendered funnel, with the share
// of enumerated candidates that settled there.
type FunnelStageReport struct {
	Stage      string  `json:"stage"`
	Candidates int     `json:"candidates"`
	Share      float64 `json:"share"`
	Cells      int64   `json:"cells"`
	CellsSaved int64   `json:"cells_saved"`
}

// FunnelReport is the JSON shape of one funnel (stage rows in cascade
// order), used by the run report, /runs/{name}/funnel, and funneldiff.
type FunnelReport struct {
	Enumerated int                 `json:"enumerated"`
	NewBest    int                 `json:"new_best"`
	Stages     []FunnelStageReport `json:"stages"`
}

// Report renders the funnel.
func (f *Funnel) Report() FunnelReport {
	rep := FunnelReport{
		Enumerated: f.Enumerated,
		NewBest:    f.NewBest,
		Stages:     make([]FunnelStageReport, NumFunnelStages),
	}
	for i := range f.Stages {
		c := f.Stages[i]
		share := 0.0
		if f.Enumerated > 0 {
			share = float64(c.Candidates) / float64(f.Enumerated)
		}
		rep.Stages[i] = FunnelStageReport{
			Stage:      FunnelStage(i).String(),
			Candidates: c.Candidates,
			Share:      share,
			Cells:      c.Cells,
			CellsSaved: c.CellsSaved,
		}
	}
	return rep
}

// BucketFunnelReport is one bucket's funnel in a RunFunnelReport.
type BucketFunnelReport struct {
	Ops    string       `json:"ops"`
	Funnel FunnelReport `json:"funnel"`
}

// RunFunnelReport is the run-level provenance summary: the aggregate
// funnel, per-bucket funnels (best-first), and the winning handler. It is
// the "core.funnel" obs record, the /runs/{name}/funnel payload, and
// funneldiff's input.
type RunFunnelReport struct {
	Run      string               `json:"run,omitempty"`
	Handler  string               `json:"handler,omitempty"`
	Distance ReportFloat          `json:"distance"`
	Total    FunnelReport         `json:"total"`
	Buckets  []BucketFunnelReport `json:"buckets"`
}

// NewRunFunnelReport assembles a RunFunnelReport from final search stats —
// the CLI's -funnel output, equivalent to the run's "core.funnel" obs
// record (Stats.Buckets are already best-first and carry their funnels).
func NewRunFunnelReport(run, handler string, distance float64, s SearchStats) RunFunnelReport {
	rep := RunFunnelReport{
		Run:      run,
		Handler:  handler,
		Distance: ReportFloat(distance),
		Total:    s.Funnel.Report(),
		Buckets:  make([]BucketFunnelReport, len(s.Buckets)),
	}
	for i, b := range s.Buckets {
		rep.Buckets[i] = BucketFunnelReport{Ops: b.Ops.String(), Funnel: b.Funnel.Report()}
	}
	return rep
}

// funnelCounterNames maps each stage to its registry counter, resolved
// once per run (bulk-added per bucket-worker per iteration so the scoring
// hot path never touches an atomic per candidate).
func funnelCounterName(s FunnelStage) string {
	return "core.funnel_" + s.String()
}
