package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dsl"
	"repro/internal/obs"
)

// TestOptionsValidate exercises every explicit rejection, one by one, and
// confirms the zero-value-means-default contract still holds.
func TestOptionsValidate(t *testing.T) {
	base := func() Options { return Options{DSL: dsl.Reno()} }
	if err := base().Validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	if err := (Options{}).Validate(); err == nil || !strings.Contains(err.Error(), "DSL") {
		t.Errorf("nil DSL accepted: %v", err)
	}

	negatives := []struct {
		name string
		set  func(*Options)
	}{
		{"InitialSamples", func(o *Options) { o.InitialSamples = -1 }},
		{"InitialKeep", func(o *Options) { o.InitialKeep = -2 }},
		{"InitialSegments", func(o *Options) { o.InitialSegments = -1 }},
		{"MaxCompletions", func(o *Options) { o.MaxCompletions = -5 }},
		{"MaxHandlers", func(o *Options) { o.MaxHandlers = -1 }},
		{"BucketCap", func(o *Options) { o.BucketCap = -100 }},
		{"ScanBudget", func(o *Options) { o.ScanBudget = -1 }},
		{"Workers", func(o *Options) { o.Workers = -4 }},
	}
	for _, tc := range negatives {
		o := base()
		tc.set(&o)
		err := o.Validate()
		if err == nil {
			t.Errorf("negative %s accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("negative %s rejected without naming the field: %v", tc.name, err)
		}
	}

	// A shared gate without a shared sketch source is a miswired batch.
	gated := base()
	gated.Gate = NewGate(1)
	if err := gated.Validate(); err == nil || !strings.Contains(err.Error(), "Gate") {
		t.Errorf("Gate without Sketches accepted: %v", err)
	}
	gated.Sketches = newEnumSource(gated.DSL, nil)
	if err := gated.Validate(); err != nil {
		t.Errorf("Gate with Sketches rejected: %v", err)
	}

	// A program source without the sketch source it is keyed by.
	spliced := base()
	spliced.Programs = progSourceStub{}
	if err := spliced.Validate(); err == nil || !strings.Contains(err.Error(), "Programs") {
		t.Errorf("Programs without Sketches accepted: %v", err)
	}

	// Synthesize routes through Validate.
	segs := segmentsFor(t, "reno")
	bad := base()
	bad.MaxHandlers = -1
	if _, err := Synthesize(context.Background(), segs, bad); err == nil {
		t.Error("Synthesize accepted invalid options")
	}
}

// progSourceStub satisfies replay.ProgramSource for validation tests.
type progSourceStub struct{}

func (progSourceStub) Program(key string, sk *dsl.Node) *dsl.Program {
	return dsl.CompileProgram(sk)
}

// TestRunNameFromContext pins the job-scoped run-name threading: a
// Synthesize whose Options.RunName is empty adopts the context's name on
// the live Board, and an explicit RunName still wins.
func TestRunNameFromContext(t *testing.T) {
	segs := segmentsFor(t, "reno")
	reg := obs.New()
	o := quickOpts(dsl.Reno())
	o.Obs = reg
	ctx := WithRunName(context.Background(), "job-ctx")
	if _, err := Synthesize(ctx, segs, o); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Board().Get("job-ctx"); !ok {
		t.Errorf("run not registered under context name; board: %+v", reg.Board().Snapshots())
	}

	reg2 := obs.New()
	o2 := quickOpts(dsl.Reno())
	o2.Obs = reg2
	o2.RunName = "explicit"
	if _, err := Synthesize(ctx, segs, o2); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg2.Board().Get("explicit"); !ok {
		t.Error("explicit RunName overridden by context")
	}
	if name, ok := RunNameFromContext(context.Background()); ok || name != "" {
		t.Errorf("bare context reported a run name %q", name)
	}
}
