package core

import (
	"context"
	"errors"
	"fmt"
)

// Validate rejects nonsensical option combinations explicitly, instead of
// the scattered implicit checks Synthesize used to make as it went. It is
// called at the top of Synthesize on the caller's options (before
// defaulting, so zero values are still "use the paper default" and only
// genuinely impossible configurations fail). Callers constructing Options
// from external input — the service's job API — validate up front to turn
// bad requests into 4xx responses rather than mid-run errors.
func (o Options) Validate() error {
	if o.DSL == nil {
		return errors.New("core: Options.DSL is required")
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"InitialSamples", o.InitialSamples},
		{"InitialKeep", o.InitialKeep},
		{"InitialSegments", o.InitialSegments},
		{"MaxCompletions", o.MaxCompletions},
		{"MaxHandlers", o.MaxHandlers},
		{"BucketCap", o.BucketCap},
		{"ScanBudget", o.ScanBudget},
		{"Workers", o.Workers},
	} {
		if f.v < 0 {
			return fmt.Errorf("core: Options.%s is negative (%d); use 0 for the default", f.name, f.v)
		}
	}
	if o.Gate != nil && o.Sketches == nil {
		// A shared gate exists to bound concurrent runs over a shared
		// sketch space; a gated run that privately re-enumerates defeats
		// that sharing and indicates a miswired batch.
		return errors.New("core: Options.Gate is set but Options.Sketches is nil; a gated run must share a SketchSource")
	}
	if o.Sketches == nil && o.Programs != nil {
		// Programs are keyed by sketches the source hands out; a program
		// source without the matching sketch source is a config splice.
		return errors.New("core: Options.Programs is set but Options.Sketches is nil; share both or neither")
	}
	return nil
}

// runNameKey carries a job-scoped run name through a context.
type runNameKey struct{}

// WithRunName returns a context carrying a run name for Synthesize calls
// that leave Options.RunName empty — how the service threads its job IDs
// into the live Board and span attributes without every intermediate
// layer forwarding a name explicitly.
func WithRunName(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, runNameKey{}, name)
}

// RunNameFromContext returns the run name carried by ctx, if any.
func RunNameFromContext(ctx context.Context) (string, bool) {
	name, ok := ctx.Value(runNameKey{}).(string)
	return name, ok && name != ""
}
