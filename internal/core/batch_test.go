package core

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/dsl"
	"repro/internal/replay"
)

// TestBatchMatchesScalarScoring is the lane-batched search's determinism
// pin: a default (batched) run must be bit-for-bit the run ScalarScoring
// produces — same winning handler, same distance bits, and a fully
// DeepEqual SearchStats, funnel stage splits included. Workers is 1 so
// bucket workers score sequentially: with a single worker the memo cache
// sees an identical candidate order in both modes, so even the
// stage-attribution split (canonical dup vs cache LB vs scored) must
// agree, not just the mode-invariant aggregates.
func TestBatchMatchesScalarScoring(t *testing.T) {
	t.Parallel()
	segs := segmentsFor(t, "reno")
	cases := []struct {
		seed  int64
		exact bool
	}{{1, false}, {42, false}, {1, true}}
	for _, tc := range cases {
		batchOpts := quickOpts(dsl.Reno())
		batchOpts.Seed = tc.seed
		batchOpts.Workers = 1
		batchOpts.ExactScoring = tc.exact
		scalarOpts := batchOpts
		scalarOpts.ScalarScoring = true

		batch, err := Synthesize(context.Background(), segs, batchOpts)
		if err != nil {
			t.Fatalf("seed %d exact=%v batch: %v", tc.seed, tc.exact, err)
		}
		scalar, err := Synthesize(context.Background(), segs, scalarOpts)
		if err != nil {
			t.Fatalf("seed %d exact=%v scalar: %v", tc.seed, tc.exact, err)
		}
		if batch.Handler.Key() != scalar.Handler.Key() {
			t.Errorf("seed %d exact=%v: batch handler %q != scalar handler %q",
				tc.seed, tc.exact, batch.Handler, scalar.Handler)
		}
		if math.Float64bits(batch.Distance) != math.Float64bits(scalar.Distance) {
			t.Errorf("seed %d exact=%v: batch distance %v != scalar distance %v",
				tc.seed, tc.exact, batch.Distance, scalar.Distance)
		}
		if !reflect.DeepEqual(batch.Stats, scalar.Stats) {
			t.Errorf("seed %d exact=%v: search stats diverged:\nbatch:  %+v\nscalar: %+v",
				tc.seed, tc.exact, batch.Stats, scalar.Stats)
		}
		if !batch.Stats.Funnel.Reconciles() {
			t.Errorf("seed %d exact=%v: batch funnel does not reconcile: %+v",
				tc.seed, tc.exact, batch.Stats.Funnel)
		}
	}
}

// TestBatchMatchesScalarScoringParallel relaxes the single-worker pin to
// the properties that survive concurrent cache timing (like the fast-vs-
// exact test): the winner, its distance, NewBest, and reconciliation must
// be scheduling-independent at any lane width.
func TestBatchMatchesScalarScoringParallel(t *testing.T) {
	t.Parallel()
	segs := segmentsFor(t, "reno")
	batchOpts := quickOpts(dsl.Reno())
	scalarOpts := batchOpts
	scalarOpts.ScalarScoring = true
	batch, err := Synthesize(context.Background(), segs, batchOpts)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := Synthesize(context.Background(), segs, scalarOpts)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Handler.Key() != scalar.Handler.Key() {
		t.Errorf("batch handler %q != scalar handler %q", batch.Handler, scalar.Handler)
	}
	if math.Float64bits(batch.Distance) != math.Float64bits(scalar.Distance) {
		t.Errorf("batch distance %v != scalar distance %v", batch.Distance, scalar.Distance)
	}
	if batch.Stats.Funnel.NewBest != scalar.Stats.Funnel.NewBest {
		t.Errorf("batch NewBest %d != scalar NewBest %d",
			batch.Stats.Funnel.NewBest, scalar.Stats.Funnel.NewBest)
	}
	for _, res := range []*Result{batch, scalar} {
		if !res.Stats.Funnel.Reconciles() {
			t.Errorf("funnel does not reconcile: %+v", res.Stats.Funnel)
		}
	}
}

// TestBatchLedgerMatchesScalar: the provenance ledger of a batched run
// dumps byte-identical JSONL to a scalar run of the same seed — lane
// packing must not change which candidates are offered or what their
// entries record.
func TestBatchLedgerMatchesScalar(t *testing.T) {
	t.Parallel()
	segs := segmentsFor(t, "reno")
	dump := func(scalarScoring bool) []byte {
		led := replay.NewLedger(48, 7)
		opts := quickOpts(dsl.Reno())
		opts.Workers = 1
		opts.ScalarScoring = scalarScoring
		opts.Ledger = led
		if _, err := Synthesize(context.Background(), segs, opts); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := led.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	scalar, batched := dump(true), dump(false)
	if len(scalar) == 0 {
		t.Fatal("scalar run offered nothing to the ledger")
	}
	if !bytes.Equal(scalar, batched) {
		t.Errorf("ledger dumps differ:\nscalar:\n%s\nbatch:\n%s", scalar, batched)
	}
}
