package core

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

// segmentsFor builds trace segments for a CCA from two testbed scenarios.
// Results are cached: simulation and analysis dominate test time.
var segCache sync.Map

func segmentsFor(t *testing.T, cca string) []*trace.Segment {
	t.Helper()
	if v, ok := segCache.Load(cca); ok {
		return v.([]*trace.Segment)
	}
	var segs []*trace.Segment
	for i, cfg := range []sim.Config{
		{CCA: cca, Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond, Duration: 20 * time.Second},
		{CCA: cca, Bandwidth: 5e6 / 8, RTT: 80 * time.Millisecond, Duration: 20 * time.Second},
	} {
		cfg.Seed = int64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.AnalyzeRecords(res.Records)
		if err != nil {
			t.Fatal(err)
		}
		tr.Label = cca
		segs = append(segs, tr.Split(16)...)
	}
	if len(segs) < 2 {
		t.Fatalf("only %d segments for %s", len(segs), cca)
	}
	segCache.Store(cca, segs)
	return segs
}

// quickOpts keeps synthesis runs fast enough for unit tests.
func quickOpts(d *dsl.DSL) Options {
	return Options{
		DSL:            d,
		InitialSamples: 8,
		MaxHandlers:    6000,
		MaxCompletions: 12,
		Seed:           1,
	}
}

func TestSynthesizeRenoFindsRenoShape(t *testing.T) {
	segs := segmentsFor(t, "reno")
	res, err := Synthesize(context.Background(), segs, quickOpts(dsl.Reno()))
	if err != nil {
		t.Fatal(err)
	}
	// The winning handler must involve reno-inc (or the equivalent
	// acked*mss/cwnd structure) and beat a constant-window handler.
	constD, _ := replay.NewScorer(segs, dist.DTW{}).Score(dsl.MustParse("cwnd"), math.Inf(1))
	if !(res.Distance < constD) {
		t.Errorf("synthesized %q distance %.1f not better than frozen window %.1f",
			res.Handler, res.Distance, constD)
	}
	if res.Handler.Depth() > dsl.Reno().MaxDepth {
		t.Errorf("handler %q exceeds DSL depth", res.Handler)
	}
	if err := dsl.Reno().Admits(res.Handler); err != nil {
		t.Errorf("handler %q outside DSL: %v", res.Handler, err)
	}
	t.Logf("reno handler: %s (distance %.2f)", res.Handler, res.Distance)
}

func TestSynthesizeDeterministic(t *testing.T) {
	segs := segmentsFor(t, "reno")
	r1, err := Synthesize(context.Background(), segs, quickOpts(dsl.Reno()))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Synthesize(context.Background(), segs, quickOpts(dsl.Reno()))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Handler.Equal(r2.Handler) {
		t.Errorf("same seed produced %q and %q", r1.Handler, r2.Handler)
	}
	if r1.Distance != r2.Distance {
		t.Errorf("distances differ: %v vs %v", r1.Distance, r2.Distance)
	}
}

func TestSynthesizeSeedChangesSampling(t *testing.T) {
	segs := segmentsFor(t, "reno")
	o1, o2 := quickOpts(dsl.Reno()), quickOpts(dsl.Reno())
	o2.Seed = 99
	r1, err := Synthesize(context.Background(), segs, o1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Synthesize(context.Background(), segs, o2)
	if err != nil {
		t.Fatal(err)
	}
	// Both runs must converge to *good* handlers even if not identical.
	if math.IsInf(r1.Distance, 1) || math.IsInf(r2.Distance, 1) {
		t.Error("a seeded run returned a diverging handler")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	segs := segmentsFor(t, "reno")
	if _, err := Synthesize(context.Background(), segs, Options{}); err == nil {
		t.Error("missing DSL accepted")
	}
	if _, err := Synthesize(context.Background(), nil, quickOpts(dsl.Reno())); err == nil {
		t.Error("empty segments accepted")
	}
}

func TestStatsAreCoherent(t *testing.T) {
	segs := segmentsFor(t, "reno")
	res, err := Synthesize(context.Background(), segs, quickOpts(dsl.Reno()))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.SpaceBuckets < 5 {
		t.Errorf("only %d non-empty buckets", st.SpaceBuckets)
	}
	if len(st.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}
	sum := 0
	for i, it := range st.Iterations {
		if it.Index != i+1 {
			t.Errorf("iteration %d has index %d", i, it.Index)
		}
		if it.Kept > len(it.Ranking) {
			t.Errorf("kept %d > ranked %d", it.Kept, len(it.Ranking))
		}
		for j := 1; j < len(it.Ranking); j++ {
			if it.Ranking[j].Score < it.Ranking[j-1].Score {
				t.Errorf("iteration %d ranking not sorted", it.Index)
			}
		}
		sum += it.HandlersScored
	}
	if sum != st.HandlersScored {
		t.Errorf("per-iteration handlers %d != total %d", sum, st.HandlersScored)
	}
	// N grows 8x, segments grow by 2 (capped by availability).
	if len(st.Iterations) >= 2 {
		it0, it1 := st.Iterations[0], st.Iterations[1]
		if it1.SamplesPerBucket != it0.SamplesPerBucket*8 {
			t.Errorf("N did not grow 8x: %d -> %d", it0.SamplesPerBucket, it1.SamplesPerBucket)
		}
		if it1.Segments < it0.Segments {
			t.Errorf("segment count shrank: %d -> %d", it0.Segments, it1.Segments)
		}
	}
}

// TestObsReportMatchesStats is the single-source-of-truth check: the obs
// run report's iteration records, counters and phase counts must agree
// exactly with the SearchStats the same run returned — both derive from the
// one bookkeeping path in endIteration.
func TestObsReportMatchesStats(t *testing.T) {
	segs := segmentsFor(t, "reno")
	reg := obs.New()
	opts := quickOpts(dsl.Reno())
	opts.Obs = reg
	res, err := Synthesize(context.Background(), segs, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := reg.Report()

	recs := rep.Records["core.iteration"]
	if len(recs) != len(res.Stats.Iterations) {
		t.Fatalf("report has %d iteration records, SearchStats has %d",
			len(recs), len(res.Stats.Iterations))
	}
	for i, raw := range recs {
		ir, ok := raw.(IterationReport)
		if !ok {
			t.Fatalf("record %d is %T, want IterationReport", i, raw)
		}
		it := res.Stats.Iterations[i]
		if ir.Index != it.Index || ir.HandlersScored != it.HandlersScored ||
			ir.Kept != it.Kept || len(ir.Ranking) != len(it.Ranking) {
			t.Errorf("iteration %d: record %+v disagrees with stats %+v", i, ir, it)
		}
		for j, r := range it.Ranking {
			if ir.Ranking[j].Ops != r.Ops.String() || float64(ir.Ranking[j].Score) != r.Score {
				t.Errorf("iteration %d rank %d: %+v vs %+v", i, j, ir.Ranking[j], r)
				break
			}
		}
	}
	if got := rep.Counters["core.handlers_scored"]; got != int64(res.Stats.HandlersScored) {
		t.Errorf("handlers counter = %d, stats = %d", got, res.Stats.HandlersScored)
	}
	if got := rep.Counters["core.sketches_scored"]; got != int64(res.Stats.SketchesScored) {
		t.Errorf("sketches counter = %d, stats = %d", got, res.Stats.SketchesScored)
	}
	if got := rep.Phases["core.iteration"].Count; got != int64(len(res.Stats.Iterations)) {
		t.Errorf("iteration phase count = %d, stats = %d", got, len(res.Stats.Iterations))
	}
	for _, phase := range []string{"core.synthesize", "core.select_segments", "core.score", "core.final_distance"} {
		if rep.Phases[phase].Count == 0 {
			t.Errorf("phase %s missing from report", phase)
		}
	}
	// The gauge tracks the best scoring-time distance (over the sampled
	// segments), so it need not equal res.Distance (full set) — but it must
	// be a positive finite trajectory endpoint.
	if g := rep.Gauges["core.best_distance"]; !(g > 0) || math.IsInf(g, 0) {
		t.Errorf("best distance gauge = %v", g)
	}
	if rep.Counters["core.completions_sampled"] == 0 {
		t.Error("completions counter empty")
	}
	if rep.Counters["core.worker_busy_ns"] == 0 {
		t.Error("worker busy-time counter empty")
	}
	if rep.Counters["enum.candidates"] == 0 || rep.Counters["enum.sketches"] == 0 {
		t.Error("enum counters empty — enumerators not threaded")
	}
}

// TestObsProgressStream checks that an attached progress sink sees one line
// per refinement iteration (the tools' -v path).
func TestObsProgressStream(t *testing.T) {
	segs := segmentsFor(t, "reno")
	reg := obs.New()
	var buf syncBuffer
	reg.Attach(obs.NewProgressSink(&buf))
	opts := quickOpts(dsl.Reno())
	opts.Obs = reg
	res, err := Synthesize(context.Background(), segs, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Count(buf.String(), "iteration ")
	if got != len(res.Stats.Iterations) {
		t.Errorf("progress lines = %d, iterations = %d:\n%s", got, len(res.Stats.Iterations), buf.String())
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for sink output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestBudgetExhaustionStillReturns(t *testing.T) {
	segs := segmentsFor(t, "reno")
	opts := quickOpts(dsl.Reno())
	opts.MaxHandlers = 300 // tiny budget: stop after iteration 1
	res, err := Synthesize(context.Background(), segs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.BudgetExhausted {
		t.Error("budget flag not set")
	}
	if res.Handler == nil || math.IsInf(res.Distance, 1) {
		t.Error("no usable handler under budget exhaustion")
	}
}

func TestRankOf(t *testing.T) {
	it := IterationStats{Ranking: []BucketRank{
		{Ops: dsl.OpSet(0).With(dsl.OpAdd)},
		{Ops: dsl.OpSet(0).With(dsl.OpMul)},
	}}
	if got := it.RankOf(dsl.OpSet(0).With(dsl.OpMul)); got != 2 {
		t.Errorf("RankOf = %d, want 2", got)
	}
	if got := it.RankOf(dsl.OpSet(0).With(dsl.OpDiv)); got != 0 {
		t.Errorf("RankOf(absent) = %d, want 0", got)
	}
}

func TestCompletionsCrossProduct(t *testing.T) {
	sk := dsl.MustParse("c1*mss")
	pool := []float64{1, 2, 3}
	got := completions(sk, pool, 1, 100, 0)
	if len(got) != 3 {
		t.Fatalf("1-hole completions = %d, want 3", len(got))
	}
	sk2 := dsl.MustParse("c1*mss + c2*acked")
	got2 := completions(sk2, pool, 2, 100, 0)
	if len(got2) != 9 {
		t.Fatalf("2-hole completions = %d, want 9", len(got2))
	}
	seen := map[[2]float64]bool{}
	for _, v := range got2 {
		seen[[2]float64{v[0], v[1]}] = true
	}
	if len(seen) != 9 {
		t.Errorf("cross product has duplicates: %d unique", len(seen))
	}
}

func TestCompletionsSampledDeterministic(t *testing.T) {
	sk := dsl.MustParse("c1*mss + c2*acked + c3*cwnd")
	pool := dsl.DefaultConstants()
	a := completions(sk, pool, 3, 20, 7)
	b := completions(sk, pool, 3, 20, 7)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("sampled completions = %d/%d, want 20", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("sampled completions not deterministic")
			}
		}
	}
	if got := completions(sk, nil, 3, 20, 7); got != nil {
		t.Error("empty pool should produce no completions")
	}
}

func TestVegasTraceGetsVegasStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis run")
	}
	segs := segmentsFor(t, "vegas")
	opts := quickOpts(dsl.Vegas())
	opts.MaxHandlers = 6000
	opts.ScanBudget = 15000 // the vegas DSL is the largest; keep the test quick
	res, err := Synthesize(context.Background(), segs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Vegas holds a near-flat window between losses; the synthesized
	// handler must track the trace far better than Reno's +1/RTT growth.
	renoD, _ := replay.NewScorer(segs, dist.DTW{}).Score(dsl.MustParse("cwnd + reno-inc"), math.Inf(1))
	if !(res.Distance < renoD) {
		t.Errorf("vegas synthesis %q (%.1f) not better than reno handler (%.1f)",
			res.Handler, res.Distance, renoD)
	}
	t.Logf("vegas handler: %s (distance %.2f)", res.Handler, res.Distance)
}

func TestBudgetShare(t *testing.T) {
	if budgetShare(100, 10) != 10 {
		t.Error("even split wrong")
	}
	if budgetShare(5, 10) != 1 {
		t.Error("floor at 1")
	}
	if budgetShare(100, 0) != 0 {
		t.Error("zero buckets")
	}
	// Regression: ceiling division — an uneven split must never round a
	// bucket's share down to a value that starves the tail of the budget,
	// and every bucket keeps a nonzero share whenever budget remains.
	if got := budgetShare(7, 3); got != 3 {
		t.Errorf("budgetShare(7,3) = %d, want 3 (ceiling)", got)
	}
	if got := budgetShare(1, 7); got != 1 {
		t.Errorf("budgetShare(1,7) = %d, want 1", got)
	}
	// Regression: a depleted or overdrawn budget must yield 0, not a
	// phantom per-bucket allowance of 1.
	if got := budgetShare(0, 5); got != 0 {
		t.Errorf("budgetShare(0,5) = %d, want 0", got)
	}
	if got := budgetShare(-3, 5); got != 0 {
		t.Errorf("budgetShare(-3,5) = %d, want 0", got)
	}
}
