package core

import (
	"errors"
	"math"
	"time"

	"repro/internal/dsl"
	"repro/internal/enum"
	"repro/internal/trace"
)

// Loss-response synthesis: the paper scopes Abagnale to the cwnd-on-ACK
// handler but argues the technique "generalizes to synthesizing expressions
// to update other known state variables for other events" (§3). This file
// exercises that claim for the loss event: given the observable window just
// before and just after each inferred loss, synthesize the expression the
// CCA applies on loss (e.g. Reno's 0.5*cwnd, Westwood's
// ack-rate*min-rtt).

// LossEvent is one observed loss reaction. Env captures the congestion
// signals at the moment of loss, with Env.Cwnd the pre-loss window; After
// is the post-loss window the CCA settled at.
type LossEvent struct {
	Env   dsl.Env
	After float64
}

// ExtractLossEvents mines a trace for loss reactions: for each inferred
// loss, the environment of the last pre-loss sample and the smallest
// in-flight estimate within the following three smoothed RTTs (the window
// the sender deflated to once recovery drained the pipe).
func ExtractLossEvents(tr *trace.Trace) []LossEvent {
	var events []LossEvent
	for _, lt := range tr.Losses {
		var before *trace.Sample
		for i := range tr.Samples {
			if tr.Samples[i].Time >= lt {
				break
			}
			before = &tr.Samples[i]
		}
		if before == nil || before.Cwnd <= 0 {
			continue
		}
		horizon := lt + 3*maxDur(before.RTT, 10*time.Millisecond)
		after := math.Inf(1)
		for i := range tr.Samples {
			s := &tr.Samples[i]
			if s.Time <= lt {
				continue
			}
			if s.Time > horizon {
				break
			}
			if s.Cwnd > 0 && s.Cwnd < after {
				after = s.Cwnd
			}
		}
		if math.IsInf(after, 1) {
			continue
		}
		rtt := before.RTT
		if rtt == 0 {
			rtt = before.MinRTT
		}
		events = append(events, LossEvent{
			Env: dsl.Env{
				Cwnd:          before.Cwnd,
				MSS:           tr.MSS,
				Acked:         before.Acked,
				TimeSinceLoss: before.TimeSinceLoss.Seconds(),
				RTT:           rtt.Seconds(),
				MinRTT:        before.MinRTT.Seconds(),
				MaxRTT:        before.MaxRTT.Seconds(),
				AckRate:       before.AckRate,
				RTTGradient:   before.RTTGradient,
				WMax:          before.WMax,
			},
			After: after,
		})
	}
	return events
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// LossResponseResult is a completed loss-handler synthesis.
type LossResponseResult struct {
	// Handler computes the post-loss window from the at-loss environment.
	Handler *dsl.Node
	// Error is the mean relative error of the handler over the events.
	Error float64
	// HandlersScored counts evaluated candidates.
	HandlersScored int
}

// lossScore is the optimization objective: mean relative deviation between
// the handler's predicted post-loss window and the observed one.
func lossScore(h *dsl.Node, events []LossEvent) float64 {
	var total float64
	for i := range events {
		env := events[i].Env
		v, err := h.Eval(&env)
		if err != nil || v <= 0 {
			return math.Inf(1)
		}
		total += math.Abs(v-events[i].After) / events[i].After
	}
	return total / float64(len(events))
}

// SynthesizeLossResponse searches the sub-DSL for the loss-reaction
// expression that best predicts the observed post-loss windows. The search
// space at loss-handler depths is small, so a budgeted scan of the whole
// enumeration replaces the bucket loop.
func SynthesizeLossResponse(events []LossEvent, opts Options) (*LossResponseResult, error) {
	opts = opts.withDefaults()
	if opts.DSL == nil {
		return nil, errors.New("core: Options.DSL is required")
	}
	if len(events) == 0 {
		return nil, errors.New("core: no loss events")
	}
	d := *opts.DSL
	if d.MaxDepth > 3 {
		d.MaxDepth = 3 // loss reactions are shallow (Table 2's betas)
	}
	e := enum.New(&d)
	best := &LossResponseResult{Error: math.Inf(1)}
	scored := 0
	for sk := range e.All() {
		holes := sk.Holes()
		var candidates []*dsl.Node
		if holes == 0 {
			candidates = []*dsl.Node{sk}
		} else {
			for _, vals := range completions(sk, d.Constants, holes, opts.MaxCompletions, opts.Seed) {
				if h, err := sk.Bind(vals); err == nil {
					candidates = append(candidates, h)
				}
			}
		}
		for _, h := range candidates {
			scored++
			if s := lossScore(h, events); s < best.Error {
				best.Handler = h
				best.Error = s
			}
		}
		if scored >= opts.MaxHandlers {
			break
		}
	}
	best.HandlersScored = scored
	if best.Handler == nil {
		return nil, errors.New("core: no viable loss handler found")
	}
	return best, nil
}
