package core

import (
	"math"
	"time"

	"repro/internal/dsl"
	"repro/internal/replay"
)

// laneResult is one completion's settled score, buffered until every lane
// of the sketch has finished so accounting can fold in assignment order.
type laneResult struct {
	d      float64
	exact  bool
	scored bool // false for completions that failed to bind
}

// laneScratch is one scoring worker's reusable state for the lane-batched
// scoreSketch path: the pending batch (assignment indices, cache keys,
// constant vectors, per-lane cutoffs) plus the buffers one flush fills.
// Everything is reused across sketches; the steady state allocates only
// what scoring itself requires.
type laneScratch struct {
	results []laneResult
	idx     []int       // assignment index per pending lane
	keys    []uint64    // handler cache key per pending lane
	valsK   [][]float64 // constant vector per pending lane
	cutoffs []float64
	ds      []float64
	exacts  []bool
	outs    []replay.CandidateOutcome
}

func newLaneScratch() *laneScratch {
	w := replay.Lanes
	return &laneScratch{
		idx:     make([]int, 0, w),
		keys:    make([]uint64, 0, w),
		valsK:   make([][]float64, 0, w),
		cutoffs: make([]float64, 0, w),
		ds:      make([]float64, w),
		exacts:  make([]bool, w),
		outs:    make([]replay.CandidateOutcome, w),
	}
}

// reset sizes the per-assignment result buffer for a new sketch and clears
// the pending batch.
func (s *laneScratch) reset(n int) []laneResult {
	if cap(s.results) < n {
		s.results = make([]laneResult, n)
	}
	s.results = s.results[:n]
	for i := range s.results {
		s.results[i] = laneResult{}
	}
	s.idx = s.idx[:0]
	s.keys = s.keys[:0]
	s.valsK = s.valsK[:0]
	s.cutoffs = s.cutoffs[:0]
	return s.results
}

// enqueue adds one completion to the pending batch.
func (s *laneScratch) enqueue(ai int, key uint64, vals []float64, cutoff float64) {
	s.idx = append(s.idx, ai)
	s.keys = append(s.keys, key)
	s.valsK = append(s.valsK, vals)
	s.cutoffs = append(s.cutoffs, cutoff)
}

// hasKey reports whether the pending batch already carries a lane with this
// cache key.
func (s *laneScratch) hasKey(key uint64) bool {
	for _, k := range s.keys {
		if k == key {
			return true
		}
	}
	return false
}

// flushLanes scores the pending batch and folds each lane into the worker
// funnel, the memo cache, and the per-assignment results. ScalarScoring
// routes the lanes one at a time through the scalar kernel instead — the
// K=1 oracle the batched path is pinned against.
func (r *runState) flushLanes(cs *replay.CompiledSketch, scr *laneScratch, fl *Funnel) {
	k := len(scr.idx)
	if k == 0 {
		return
	}
	ds, exacts, outs := scr.ds[:k], scr.exacts[:k], scr.outs[:k]
	switch {
	case r.opts.ScalarScoring:
		for l := 0; l < k; l++ {
			ds[l], exacts[l] = r.timedScore(cs, scr.valsK[l], scr.cutoffs[l], &outs[l])
		}
	case r.hScore == nil:
		cs.ScoreBatchDetail(scr.valsK, scr.cutoffs, ds, exacts, outs)
	default:
		t0 := time.Now()
		cs.ScoreBatchDetail(scr.valsK, scr.cutoffs, ds, exacts, outs)
		r.hScore.Observe(time.Since(t0).Seconds())
	}
	for l := 0; l < k; l++ {
		fl.observe(&outs[l])
		if !r.opts.ExactScoring {
			r.cache.put(scr.keys[l], ds[l], exacts[l])
		}
		scr.results[scr.idx[l]] = laneResult{d: ds[l], exact: exacts[l], scored: true}
	}
	scr.idx = scr.idx[:0]
	scr.keys = scr.keys[:0]
	scr.valsK = scr.valsK[:0]
	scr.cutoffs = scr.cutoffs[:0]
}

// scoreSketch concretizes a sketch's holes from the constant pool and
// returns the best handler, its distance (with its exactness flag), and
// the number of handlers evaluated. Completions are packed replay.Lanes
// wide and scored through the lane-batched replay kernel (ScalarScoring
// forces width 1 through the scalar kernel). Each candidate's fate lands
// in fl (the worker's funnel); scr is the worker's reusable lane state.
// Sampling is deterministic per (sketch, seed).
//
// The pruning cutoff is fixed for the whole sketch at entry (the bucket's
// best, adjusted for the run's mode) rather than tightened by exact
// results mid-sketch: every completion then scores under the same cutoff
// no matter which lanes it shares a batch with, which is what makes the
// batched path bit-identical to scalar scoring at any K. An abandoned
// candidate's true score still provably cannot improve the bucket (its
// running total reached the cutoff, which is at most the bucket best), so
// exactness — and fl.NewBest, counted in assignment order during the
// final fold — is unchanged from ExactScoring.
func (r *runState) scoreSketch(sk *dsl.Node, scorer *replay.Scorer, setID uint64, bucketBest float64, fl *Funnel, scr *laneScratch) (*dsl.Node, float64, bool, int) {
	holes := sk.Holes()
	// One register program per sketch: every completion below executes it
	// with patched constants and shares its hoisted prologue columns.
	cs := scorer.CompileSketch(sk)
	cut := r.cutoff(bucketBest)
	if holes == 0 {
		d, exact := r.scoreHandler(sk, cs, nil, setID, cut, fl, &scr.outs[0])
		if exact && d < bucketBest {
			fl.NewBest++
		}
		return sk, d, exact, 1
	}
	pool := r.opts.DSL.Constants
	assignments := completions(sk, pool, holes, r.opts.MaxCompletions, r.opts.Seed)
	r.cCompletions.Add(int64(len(assignments)))
	width := replay.Lanes
	if r.opts.ScalarScoring {
		width = 1
	}
	results := scr.reset(len(assignments))
	for ai, vals := range assignments {
		if r.opts.ExactScoring {
			// Validation without binding: completions emits pool values for
			// exactly the sketch's holes, and Bind fails only on a length
			// mismatch — the check is equivalent, and the bound tree (unused
			// without the memo cache) is not allocated until a winner is
			// known.
			if len(vals) != holes {
				fl.count(FunnelRejected)
				continue
			}
			scr.enqueue(ai, 0, vals, math.Inf(1))
		} else {
			h, err := sk.Bind(vals)
			if err != nil {
				fl.count(FunnelRejected)
				continue
			}
			key := handlerKey(h, setID)
			if scr.hasKey(key) {
				// A canonical duplicate of a lane already in the pending
				// batch: flush so that lane's score lands in the cache first,
				// and the duplicate settles below exactly as it would have in
				// scalar candidate order.
				r.flushLanes(cs, scr, fl)
			}
			if e, ok := r.cache.get(key); ok {
				if e.exact {
					r.cCacheHits.Inc()
					fl.count(FunnelCanonicalDup)
					results[ai] = laneResult{d: e.d, exact: true, scored: true}
					continue
				}
				if e.d >= cut {
					r.cCacheHits.Inc()
					fl.count(FunnelCacheLB)
					results[ai] = laneResult{d: e.d, exact: false, scored: true}
					continue
				}
			}
			r.cCacheMisses.Inc()
			scr.enqueue(ai, key, vals, cut)
		}
		if len(scr.idx) == width {
			r.flushLanes(cs, scr, fl)
		}
	}
	r.flushLanes(cs, scr, fl)

	// Accounting folds in assignment order once every lane has settled, so
	// NewBest and the sketch best are those of scalar candidate order.
	bestD := math.Inf(1)
	bestExact := false
	bestIdx := -1
	runBest := bucketBest
	for ai := range results {
		res := &results[ai]
		if !res.scored {
			continue
		}
		if res.exact && res.d < runBest {
			runBest = res.d
			fl.NewBest++
		}
		if res.d < bestD {
			bestD, bestIdx, bestExact = res.d, ai, res.exact
		}
	}
	var bestH *dsl.Node
	if bestIdx >= 0 {
		// Only the winning assignment needs its tree materialized.
		bestH, _ = sk.Bind(assignments[bestIdx])
	}
	return bestH, bestD, bestExact, len(assignments)
}
