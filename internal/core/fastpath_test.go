package core

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/replay"
)

// TestFastPathMatchesExact is the PR's central promise: with pruning, early
// abandoning, and the memo cache all live (the default), Synthesize must
// return bit-for-bit the same result as with ExactScoring for a fixed seed —
// same handler, same distance bits, same per-iteration bucket rankings.
func TestFastPathMatchesExact(t *testing.T) {
	segs := segmentsFor(t, "reno")
	for _, seed := range []int64{1, 7, 42} {
		fastOpts := quickOpts(dsl.Reno())
		fastOpts.Seed = seed
		exactOpts := fastOpts
		exactOpts.ExactScoring = true

		fast, err := Synthesize(context.Background(), segs, fastOpts)
		if err != nil {
			t.Fatalf("seed %d fast: %v", seed, err)
		}
		exact, err := Synthesize(context.Background(), segs, exactOpts)
		if err != nil {
			t.Fatalf("seed %d exact: %v", seed, err)
		}
		if fast.Handler.Key() != exact.Handler.Key() {
			t.Errorf("seed %d: fast handler %q != exact handler %q", seed, fast.Handler, exact.Handler)
		}
		if math.Float64bits(fast.Distance) != math.Float64bits(exact.Distance) {
			t.Errorf("seed %d: fast distance %v != exact distance %v", seed, fast.Distance, exact.Distance)
		}
		if !reflect.DeepEqual(stripPruneTelemetry(fast.Stats), stripPruneTelemetry(exact.Stats)) {
			t.Errorf("seed %d: search trajectories diverged:\nfast:  %+v\nexact: %+v",
				seed, fast.Stats, exact.Stats)
		}
		for _, b := range exact.Stats.Buckets {
			if b.Pruned != 0 {
				t.Errorf("seed %d: exact scoring reported %d pruned candidates in bucket %v", seed, b.Pruned, b.Ops)
			}
			if p := b.Funnel.Pruned(); p != 0 {
				t.Errorf("seed %d: exact funnel reported %d pruned candidates in bucket %v", seed, p, b.Ops)
			}
		}
		for _, res := range []*Result{fast, exact} {
			if !res.Stats.Funnel.Reconciles() {
				t.Errorf("seed %d: run funnel does not reconcile: %+v", seed, res.Stats.Funnel)
			}
			for _, b := range res.Stats.Buckets {
				if !b.Funnel.Reconciles() {
					t.Errorf("seed %d: bucket %v funnel does not reconcile: %+v", seed, b.Ops, b.Funnel)
				}
				if b.Funnel.Pruned() != b.Pruned {
					t.Errorf("seed %d: bucket %v funnel pruned %d != Pruned %d",
						seed, b.Ops, b.Funnel.Pruned(), b.Pruned)
				}
			}
		}
		// NewBest is mode-invariant: an improving candidate is never pruned
		// (the cutoff equals the running best), so both modes see the same
		// improvements even though their pruning stages differ.
		if fast.Stats.Funnel.NewBest != exact.Stats.Funnel.NewBest {
			t.Errorf("seed %d: fast NewBest %d != exact NewBest %d",
				seed, fast.Stats.Funnel.NewBest, exact.Stats.Funnel.NewBest)
		}
	}
}

// stripPruneTelemetry zeroes the per-bucket telemetry that is allowed to
// differ between the fast path and ExactScoring: Pruned and the funnel's
// stage split both describe where candidates were settled inexactly, which
// by construction never happens under exact scoring. The funnel keeps its
// mode-invariant fields — Enumerated, NewBest, Bind rejections — so a
// count drift there still fails the DeepEqual. Every other field —
// rankings, budgets, trajectories — must still match bit-for-bit.
func stripPruneTelemetry(s SearchStats) SearchStats {
	s.Buckets = append([]BucketStats(nil), s.Buckets...)
	s.Funnel = normalizeFunnel(s.Funnel)
	for i := range s.Buckets {
		s.Buckets[i].Pruned = 0
		s.Buckets[i].Funnel = normalizeFunnel(s.Buckets[i].Funnel)
	}
	return s
}

// normalizeFunnel keeps only the funnel fields that must agree between the
// fast path and ExactScoring. The stage split (cache vs lower bound vs
// abandon vs fully scored, and the cells they cost) is mode-dependent by
// design; Bind rejections happen before any scoring, so they stay.
func normalizeFunnel(f Funnel) Funnel {
	return Funnel{
		Enumerated: f.Enumerated,
		NewBest:    f.NewBest,
		Stages: [NumFunnelStages]StageCost{
			FunnelRejected: {Candidates: f.Stages[FunnelRejected].Candidates},
		},
	}
}

// TestFastPathCacheAndPruningCounters checks the instruments: a default
// run must record memo-cache hits (duplicate canonical handlers are common
// across sketches), nonzero metric-level pruning work, and — since replay
// moved to the register VM — compiled programs with prologue-column reuse
// across each sketch's completions.
func TestFastPathCacheAndPruningCounters(t *testing.T) {
	segs := segmentsFor(t, "reno")
	reg := obs.New()
	dist.Observe(reg)
	defer dist.Observe(nil)
	replay.Observe(reg)
	defer replay.Observe(nil)
	dsl.Observe(reg)
	defer dsl.Observe(nil)
	opts := quickOpts(dsl.Reno())
	opts.Obs = reg
	if _, err := Synthesize(context.Background(), segs, opts); err != nil {
		t.Fatal(err)
	}
	rep := reg.Report()
	if rep.Counters["core.score_cache_hits"] == 0 {
		t.Error("no score-cache hits recorded")
	}
	if rep.Counters["core.score_cache_misses"] == 0 {
		t.Error("no score-cache misses recorded")
	}
	if rep.Counters["dist.lb_prunes"]+rep.Counters["dist.early_abandons"] == 0 {
		t.Error("metric kernels never pruned or abandoned")
	}
	if rep.Counters["dsl.progs_compiled"] == 0 {
		t.Error("no register programs compiled")
	}
	if rep.Counters["replay.prologue_hits"] == 0 {
		t.Error("no prologue-cache hits on an end-to-end run")
	}
	if rep.Counters["replay.prologue_hits"] <= rep.Counters["replay.prologue_misses"] {
		t.Errorf("prologue hits (%d) not dominating misses (%d): completions are not sharing hoisted columns",
			rep.Counters["replay.prologue_hits"], rep.Counters["replay.prologue_misses"])
	}
	if rep.Counters["replay.instrs_executed"] == 0 {
		t.Error("no VM instructions recorded")
	}
}

// TestFastPathReducesDTWCells pins the acceptance criterion: the fast path
// must at least halve DTW cells per handler scored relative to ExactScoring.
func TestFastPathReducesDTWCells(t *testing.T) {
	segs := segmentsFor(t, "reno")
	cellsPerHandler := func(exactScoring bool) float64 {
		reg := obs.New()
		dist.Observe(reg)
		defer dist.Observe(nil)
		opts := quickOpts(dsl.Reno())
		opts.Obs = reg
		opts.ExactScoring = exactScoring
		res, err := Synthesize(context.Background(), segs, opts)
		if err != nil {
			t.Fatal(err)
		}
		rep := reg.Report()
		return float64(rep.Counters["dist.dtw_cells"]) / float64(res.Stats.HandlersScored)
	}
	exact := cellsPerHandler(true)
	fast := cellsPerHandler(false)
	t.Logf("dtw cells/handler: exact %.0f, fast %.0f (%.1fx)", exact, fast, exact/fast)
	if !(fast*2 <= exact) {
		t.Errorf("fast path cells/handler %.0f not at least 2x below exact %.0f", fast, exact)
	}
}

// TestIterationReportEncodesNonFinite: a run cancelled during its first
// iteration records +Inf bucket scores; the JSON report must render them as
// null instead of failing to encode (which silently lost the whole report).
func TestIterationReportEncodesNonFinite(t *testing.T) {
	rep := iterationReport(IterationStats{
		Index:   1,
		Ranking: []BucketRank{{Ops: dsl.OpSet(0).With(dsl.OpAdd), Score: math.Inf(1)}},
	}, math.Inf(1))
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report with +Inf scores failed to encode: %v", err)
	}
	if !strings.Contains(string(raw), `"best_distance":null`) {
		t.Errorf("non-finite best distance not rendered as null: %s", raw)
	}
}

// TestSynthesizeCancelledContext: a context cancelled before any scoring
// yields ctx.Err() — there is no best-so-far to report.
func TestSynthesizeCancelledContext(t *testing.T) {
	segs := segmentsFor(t, "reno")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Synthesize(ctx, segs, quickOpts(dsl.Reno()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("result = %+v, want nil", res)
	}
}

// cancelOnIteration is a progress sink target that cancels a context the
// first time an iteration line is emitted — a deterministic way to interrupt
// a run mid-search without racing on wall-clock.
type cancelOnIteration struct{ cancel context.CancelFunc }

func (c *cancelOnIteration) Write(p []byte) (int, error) {
	c.cancel()
	return len(p), nil
}

// TestSynthesizeMidRunCancel: cancelling after the first iteration must stop
// the loop gracefully — Stats.Interrupted set, best-so-far handler returned,
// no error.
func TestSynthesizeMidRunCancel(t *testing.T) {
	segs := segmentsFor(t, "reno")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := obs.New()
	reg.Attach(obs.NewProgressSink(&cancelOnIteration{cancel: cancel}))
	opts := quickOpts(dsl.Reno())
	opts.Obs = reg
	res, err := Synthesize(ctx, segs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Interrupted {
		t.Error("Stats.Interrupted not set")
	}
	if res.Handler == nil || math.IsInf(res.Distance, 1) {
		t.Errorf("no usable best-so-far handler: %+v", res)
	}
	if got := len(res.Stats.Iterations); got != 1 {
		t.Errorf("ran %d iterations after first-iteration cancel, want 1", got)
	}
}
