package core

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/dsl"
	"repro/internal/obs"
)

// TestSearchBucketTelemetry pins the per-bucket search accounting a run
// must leave behind: every live bucket reported best-first, candidate
// budgets that sum to the run totals, prune counts on the (default) fast
// path, and a "core.bucket" obs record per bucket.
func TestSearchBucketTelemetry(t *testing.T) {
	segs := segmentsFor(t, "reno")
	reg := obs.New()
	opts := quickOpts(dsl.Reno())
	opts.Obs = reg
	res, err := Synthesize(context.Background(), segs, opts)
	if err != nil {
		t.Fatal(err)
	}
	buckets := res.Stats.Buckets
	if len(buckets) == 0 {
		t.Fatal("no bucket telemetry recorded")
	}
	var handlers, pruned int
	for i, b := range buckets {
		if b.Iterations == 0 {
			t.Errorf("bucket %v reported with zero iterations", b.Ops)
		}
		if len(b.Trajectory) != b.Iterations {
			t.Errorf("bucket %v trajectory has %d points over %d iterations", b.Ops, len(b.Trajectory), b.Iterations)
		}
		if i > 0 && b.Best < buckets[i-1].Best {
			t.Errorf("buckets not sorted best-first: %v (%v) after %v (%v)",
				b.Ops, b.Best, buckets[i-1].Ops, buckets[i-1].Best)
		}
		if b.Pruned > b.HandlersScored {
			t.Errorf("bucket %v pruned %d of %d scored", b.Ops, b.Pruned, b.HandlersScored)
		}
		// A bucket's trajectory is monotone non-increasing: the best can
		// only improve.
		for j := 1; j < len(b.Trajectory); j++ {
			if b.Trajectory[j] > b.Trajectory[j-1] {
				t.Errorf("bucket %v best regressed at iteration %d: %v", b.Ops, j, b.Trajectory)
			}
		}
		handlers += b.HandlersScored
		pruned += b.Pruned
	}
	if handlers != res.Stats.HandlersScored {
		t.Errorf("bucket handler counts sum to %d, run scored %d", handlers, res.Stats.HandlersScored)
	}
	if pruned == 0 {
		t.Error("fast path scored a whole run without pruning a single candidate")
	}
	if math.IsInf(buckets[0].Best, 1) {
		t.Error("best bucket never scored a viable candidate")
	}

	recs := reg.Records("core.bucket")
	if len(recs) != len(buckets) {
		t.Fatalf("%d core.bucket records for %d buckets", len(recs), len(buckets))
	}
	raw, err := json.Marshal(recs[0])
	if err != nil {
		t.Fatalf("bucket record not JSON-marshalable: %v", err)
	}
	var rep BucketReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Ops != buckets[0].Ops.String() || rep.Handlers != buckets[0].HandlersScored {
		t.Errorf("record %+v does not mirror bucket %+v", rep, buckets[0])
	}
}

// TestSynthesizeUpdatesBoard: a run with a registry publishes its live
// state — named entry, terminal phase, final best — to the run board.
func TestSynthesizeUpdatesBoard(t *testing.T) {
	segs := segmentsFor(t, "reno")
	reg := obs.New()
	opts := quickOpts(dsl.Reno())
	opts.Obs = reg
	opts.RunName = "test/reno-run"
	res, err := Synthesize(context.Background(), segs, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := reg.Board().Get("test/reno-run")
	if !ok {
		t.Fatalf("run not on the board; have %+v", reg.Board().Snapshots())
	}
	if !snap.Done || snap.Phase != "done" || snap.Error != "" {
		t.Errorf("terminal snapshot = %+v", snap)
	}
	if snap.HandlersScored != int64(res.Stats.HandlersScored) {
		t.Errorf("board handlers %d, stats %d", snap.HandlersScored, res.Stats.HandlersScored)
	}
	if snap.BestDistance == nil || *snap.BestDistance != res.Distance {
		t.Errorf("board best %v, result %v", snap.BestDistance, res.Distance)
	}
	if snap.BestHandler == "" {
		t.Error("board missing best handler expression")
	}

	// Without a RunName the run publishes under the default name.
	opts2 := quickOpts(dsl.Reno())
	opts2.Obs = reg
	if _, err := Synthesize(context.Background(), segs, opts2); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Board().Get("synthesize"); !ok {
		t.Errorf("default-named run missing; board = %+v", reg.Board().Snapshots())
	}
}
