package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/dsl"
	"repro/internal/replay"
	"repro/internal/trace"
)

// Lease-scoped scoring is the seam horizontal sharding plugs into. The
// coordinator keeps Algorithm 1's outer loop — the seeded segment
// selection, bucket ranking, top-k pruning, budget accounting and
// termination all stay in one process, consuming the run's rand stream
// exactly as a single-process run would — and delegates each iteration's
// bucket scoring through a LeaseExecutor. Per-bucket scoring is
// deterministic (Take prefixes, completions, and bucket-local cutoffs are
// all pure functions of the options and seed), so the fold below yields
// bit-identical winners and distances no matter which worker scored which
// bucket. Only GreedyPruning — already documented as ranking-
// nondeterministic in process — is timing-dependent across workers.

// IterationLease describes one refinement iteration's scoring work: which
// buckets to sample, how hard, and over which segment subset.
type IterationLease struct {
	// Iteration is the 1-based refinement iteration index.
	Iteration int
	// Samples is N for this iteration: sketches to take per bucket.
	Samples int
	// PerBucket is each bucket's handler-budget share for this iteration.
	PerBucket int
	// SegmentIDs indexes this iteration's segment subset into the run's
	// full segment list (both sides hold the same list in the same order).
	SegmentIDs []int
	// SetID fingerprints the segment subset (memo-cache and ledger tag).
	SetID uint64
	// Cutoff is the run's global best-so-far distance at issue time — the
	// initial GreedyPruning floor for whoever executes the lease.
	Cutoff float64
	// Buckets lists the live buckets with their best-so-far distances.
	Buckets []LeaseBucket
}

// LeaseBucket is one bucket's slice of an IterationLease.
type LeaseBucket struct {
	// Ops is the bucket key.
	Ops dsl.OpSet
	// Best is the bucket's best sampled distance so far (+Inf initially);
	// the executor prunes against it and reports improvements below it.
	Best float64
}

// BucketOutcome is one bucket's scoring result for one lease.
type BucketOutcome struct {
	// Ops is the bucket key.
	Ops dsl.OpSet
	// Scored reports the bucket was actually sampled; a false outcome (a
	// cancelled or lost lease) leaves the coordinator's bucket untouched,
	// matching the in-process behavior of a worker that was never admitted.
	Scored bool
	// Score is the bucket's best distance after this lease (min of the
	// prior Best and any exact improvement found here).
	Score float64
	// Handler/Sketch carry the improving candidate when Score beat the
	// leased Best; nil otherwise.
	Handler *dsl.Node
	Sketch  *dsl.Node
	// Handlers counts concrete handlers evaluated by this lease.
	Handlers int
	// SketchesTaken is the enumeration prefix length Take returned.
	SketchesTaken int
	// Exhausted is Take's per-call exhaustion flag.
	Exhausted bool
	// Pruned counts candidates settled inexactly (Funnel.Pruned()).
	Pruned int
	// Funnel is the lease's elimination funnel for this bucket.
	Funnel Funnel
}

// LeaseExecutor scores one iteration's buckets on behalf of a run. The
// returned slice must align index-for-index with lease.Buckets; outcomes
// with Scored=false are skipped by the fold. Implementations may execute
// buckets anywhere (internal/shard fans them out over worker processes)
// but must preserve per-bucket determinism: same lease, same outcome.
type LeaseExecutor interface {
	ExecIteration(ctx context.Context, lease IterationLease) ([]BucketOutcome, error)
}

// execLeased is the remote counterpart of scoreBuckets: it packages the
// iteration as a lease, hands it to the executor, and folds the outcomes
// into the same bucket and global state the in-process scoring workers
// would have written — in lease order, so the fold is deterministic where
// the in-process mutex fold is arrival-ordered (the two differ only on
// exact cross-bucket ties).
func (r *runState) execLeased(iterIdx, n int, live []*bucket, segs []*trace.Segment, setID uint64) int {
	lease := IterationLease{
		Iteration:  iterIdx,
		Samples:    n,
		PerBucket:  budgetShare(r.opts.MaxHandlers-r.scored, len(live)),
		SegmentIDs: make([]int, len(segs)),
		SetID:      setID,
		Cutoff:     r.loadBest(),
		Buckets:    make([]LeaseBucket, len(live)),
	}
	for i, s := range segs {
		lease.SegmentIDs[i] = r.segIdx[s]
	}
	for i, b := range live {
		lease.Buckets[i] = LeaseBucket{Ops: b.ops, Best: b.score}
	}
	outs, err := r.opts.LeaseExec.ExecIteration(r.ctx, lease)
	if err != nil && r.obsv != nil {
		r.obsv.Flight().Note("core", "lease_exec_failed", 1)
	}
	total, sketchN := 0, 0
	for i, o := range outs {
		if i >= len(live) || !o.Scored {
			continue
		}
		b := live[i]
		b.taken = o.SketchesTaken
		b.exhausted = o.Exhausted
		b.handlers += o.Handlers
		b.pruned += o.Pruned
		b.funnel.Merge(o.Funnel)
		r.addFunnelCounters(&o.Funnel)
		r.live.AddHandlers(o.Handlers)
		total += o.Handlers
		sketchN += o.SketchesTaken
		if o.Handler != nil && o.Score < b.score {
			b.score = o.Score
			b.best = scoredHandler{handler: o.Handler, sketch: o.Sketch, distance: o.Score}
		}
		if b.best.handler != nil && b.best.distance < r.best.distance {
			r.best = b.best
			r.storeBest(b.best.distance)
			r.obsv.Metric("core.best_distance", b.best.distance)
			if r.obsv != nil {
				r.live.SetBest(b.best.distance, b.best.handler.String())
				r.obsv.Record("core.best_improved", BestImprovedReport{
					Bucket:   b.ops.String(),
					Distance: ReportFloat(b.best.distance),
					Handler:  b.best.handler.String(),
				})
			}
		}
	}
	r.scored += total
	r.stats.SketchesScored += sketchN
	r.cHandlers.Add(int64(total))
	r.cSketches.Add(int64(sketchN))
	return total
}

// LeaseRunner is the worker side of lease-scoped scoring: per-job state (a
// memo cache, the per-iteration scorer, the GreedyPruning atomic best)
// that executes IterationLeases over the job's full segment list. One
// runner serves one job; leases execute one at a time (the runner
// parallelizes across a lease's buckets internally, gate-bounded).
type LeaseRunner struct {
	r *runState

	mu          sync.Mutex // one lease at a time
	scorer      *replay.Scorer
	scorerSetID uint64
	haveScorer  bool

	// OnImprove, when set, is called (from a scoring goroutine) whenever a
	// lease finds a new global best — the worker's hook for reporting
	// improvements so the coordinator can rebroadcast the cutoff.
	OnImprove func(distance float64)

	es *enumSource // owned enumeration source when Options.Sketches is nil
}

// NewLeaseRunner prepares lease execution for one job. opts carries the
// same options the coordinating run was configured with (the coordinator's
// rand stream is not part of them — segment selection happens coordinator-
// side and arrives by index). Workers defaults to GOMAXPROCS of this
// process, not the coordinator's.
func NewLeaseRunner(segs []*trace.Segment, opts Options) (*LeaseRunner, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	r := &runState{
		ctx:    context.Background(),
		opts:   opts,
		segs:   segs,
		segIdx: make(map[*trace.Segment]int, len(segs)),
		rng:    rand.New(rand.NewSource(opts.Seed)), // unused: selection is coordinator-side
		cache:  newScoreCache(0),
		obsv:   opts.Obs,
	}
	for i, s := range segs {
		r.segIdx[s] = i
	}
	r.cHandlers = opts.Obs.Counter("core.handlers_scored")
	r.cSketches = opts.Obs.Counter("core.sketches_scored")
	r.cCompletions = opts.Obs.Counter("core.completions_sampled")
	r.cBusyNS = opts.Obs.Counter("core.worker_busy_ns")
	r.cCacheHits = opts.Obs.Counter("core.score_cache_hits")
	r.cCacheMisses = opts.Obs.Counter("core.score_cache_misses")
	r.cFunnelEnum = opts.Obs.Counter("core.funnel_enumerated")
	r.cFunnelNew = opts.Obs.Counter("core.funnel_new_best")
	for i := FunnelStage(0); i < NumFunnelStages; i++ {
		r.cFunnel[i] = opts.Obs.Counter(funnelCounterName(i))
	}
	r.hScore = opts.Obs.Histogram("core.score_handler_seconds")
	r.best.distance = math.Inf(1)
	r.storeBest(math.Inf(1))
	r.src = opts.Sketches
	lr := &LeaseRunner{r: r}
	if r.src == nil {
		lr.es = newEnumSource(opts.DSL, opts.Obs)
		r.src = lr.es
	}
	if opts.Gate != nil {
		r.gate = opts.Gate
	} else {
		r.gate = NewGate(opts.Workers)
	}
	return lr, nil
}

// Close stops an owned enumeration source (no-op with a shared corpus).
func (lr *LeaseRunner) Close() {
	if lr.es != nil {
		lr.es.Close()
	}
}

// Broadcast folds a remotely-discovered best distance into the runner's
// GreedyPruning floor, returning whether it tightened the local bound. In
// the default (non-greedy) and ExactScoring modes the floor is never read,
// so broadcasts cannot change results there — the exactness argument for
// cluster-wide cutoff broadcast is that it only ever tightens a valid
// global bound, and only GreedyPruning consults it.
func (lr *LeaseRunner) Broadcast(d float64) bool {
	return lr.r.tightenBest(d)
}

// tightenBest CAS-lowers the atomic best (store-min). Unlike storeBest —
// a plain store valid under the coordinator's fold lock — tighten races
// with concurrent lease scoring and remote broadcasts.
func (r *runState) tightenBest(d float64) bool {
	for {
		cur := r.atomicBest.Load()
		if math.Float64frombits(cur) <= d {
			return false
		}
		if r.atomicBest.CompareAndSwap(cur, math.Float64bits(d)) {
			return true
		}
	}
}

// Exec scores one lease and returns its outcomes, aligned with
// lease.Buckets. The per-bucket loop mirrors scoreBuckets exactly: Take
// the iteration's prefix, score sketches under the bucket-local best
// (updated as the lease's own exact improvements land), stop at the
// per-bucket budget or on cancellation. ctx cancellation yields partial
// outcomes (unstarted buckets report Scored=false).
//
// Outcomes are a pure function of the lease: the memo cache is reset per
// call (buckets partition canonical handlers, so a fresh cache loses no
// intra-lease hits — only cross-iteration ones, which depend on which
// worker scored the bucket last time and would make outcomes depend on
// lease placement). Work-stealing, worker death and duplicate reissue
// therefore cannot change what any lease returns.
func (lr *LeaseRunner) Exec(ctx context.Context, lease IterationLease) []BucketOutcome {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	r := lr.r
	r.cache = newScoreCache(0)
	if !lr.haveScorer || lr.scorerSetID != lease.SetID {
		segs := make([]*trace.Segment, len(lease.SegmentIDs))
		for i, id := range lease.SegmentIDs {
			segs[i] = r.segs[id]
		}
		lr.scorer = replay.NewScorer(segs, r.opts.Metric).WithPrograms(r.opts.Programs)
		if r.opts.Ledger != nil {
			lr.scorer.WithLedger(r.opts.Ledger, lease.SetID)
		}
		lr.scorerSetID = lease.SetID
		lr.haveScorer = true
	}
	r.tightenBest(lease.Cutoff)

	outs := make([]BucketOutcome, len(lease.Buckets))
	var wg sync.WaitGroup
	for i := range lease.Buckets {
		if !r.gate.Acquire(ctx) {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer r.gate.Release()
			lb := lease.Buckets[i]
			busy := time.Now()
			sketches, exhausted := r.src.Take(lb.Ops, lease.Samples, r.opts.BucketCap, r.opts.ScanBudget)
			out := BucketOutcome{
				Ops:           lb.Ops,
				Scored:        true,
				Score:         lb.Best,
				SketchesTaken: len(sketches),
				Exhausted:     exhausted,
			}
			var fl Funnel
			scr := newLaneScratch()
			var best scoredHandler
			for _, sk := range sketches {
				if out.Handlers >= lease.PerBucket {
					break
				}
				if ctx.Err() != nil {
					break
				}
				h, d, exact, hn := r.scoreSketch(sk, lr.scorer, lease.SetID, out.Score, &fl, scr)
				out.Handlers += hn
				if exact && d < out.Score {
					out.Score = d
					best = scoredHandler{handler: h, sketch: sk, distance: d}
				}
			}
			out.Pruned = fl.Pruned()
			out.Funnel = fl
			if best.handler != nil {
				out.Handler = best.handler
				out.Sketch = best.sketch
			}
			r.addFunnelCounters(&fl)
			r.cBusyNS.Add(time.Since(busy).Nanoseconds())
			outs[i] = out
			if best.handler != nil && r.tightenBest(best.distance) && lr.OnImprove != nil {
				lr.OnImprove(best.distance)
			}
		}(i)
	}
	wg.Wait()
	total, sketchN := 0, 0
	for i := range outs {
		if outs[i].Scored {
			total += outs[i].Handlers
			sketchN += outs[i].SketchesTaken
		}
	}
	r.cHandlers.Add(int64(total))
	r.cSketches.Add(int64(sketchN))
	return outs
}
