package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/dsl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// renoLossEvents mines a long Reno trace for loss reactions.
func renoLossEvents(t *testing.T) []LossEvent {
	t.Helper()
	res, err := sim.Run(sim.Config{
		CCA:       "reno",
		Bandwidth: 10e6 / 8,
		RTT:       40 * time.Millisecond,
		Duration:  60 * time.Second,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.AnalyzeRecords(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	events := ExtractLossEvents(tr)
	if len(events) < 3 {
		t.Fatalf("only %d loss events extracted", len(events))
	}
	return events
}

func TestExtractLossEventsShape(t *testing.T) {
	events := renoLossEvents(t)
	for i, ev := range events {
		if ev.Env.Cwnd <= 0 || ev.After <= 0 {
			t.Fatalf("event %d has non-positive windows: %+v", i, ev)
		}
		if ev.After >= ev.Env.Cwnd {
			t.Errorf("event %d: post-loss window %.0f not below pre-loss %.0f",
				i, ev.After, ev.Env.Cwnd)
		}
	}
}

func TestRenoLossResponseIsMultiplicativeDecrease(t *testing.T) {
	events := renoLossEvents(t)
	// Ground truth: Reno halves. The observed ratio is measured through
	// recovery noise, so accept a band around 0.5.
	var ratioSum float64
	for _, ev := range events {
		ratioSum += ev.After / ev.Env.Cwnd
	}
	mean := ratioSum / float64(len(events))
	if mean < 0.25 || mean > 0.8 {
		t.Errorf("mean post/pre loss ratio = %.2f, want near 0.5", mean)
	}

	res, err := SynthesizeLossResponse(events, Options{
		DSL:         dsl.Reno(),
		MaxHandlers: 30000,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Error > 0.35 {
		t.Errorf("loss handler %q error %.2f too high", res.Handler, res.Error)
	}
	// The handler must reference the pre-loss window (a multiplicative
	// decrease), not a constant.
	if !strings.Contains(res.Handler.String(), "cwnd") {
		t.Errorf("loss handler %q does not scale the window", res.Handler)
	}
	t.Logf("reno loss response: %s (mean rel. error %.3f, %d candidates)",
		res.Handler, res.Error, res.HandlersScored)
}

func TestSynthesizeLossResponseValidation(t *testing.T) {
	if _, err := SynthesizeLossResponse(nil, Options{DSL: dsl.Reno()}); err == nil {
		t.Error("empty events accepted")
	}
	events := []LossEvent{{Env: dsl.Env{Cwnd: 100, MSS: 1}, After: 50}}
	if _, err := SynthesizeLossResponse(events, Options{}); err == nil {
		t.Error("missing DSL accepted")
	}
}

func TestLossScoreGuards(t *testing.T) {
	events := []LossEvent{{Env: dsl.Env{Cwnd: 100, MSS: 1, Acked: 1}, After: 50}}
	if s := lossScore(dsl.MustParse("0.5*cwnd"), events); s != 0 {
		t.Errorf("exact handler score = %v, want 0", s)
	}
	if s := lossScore(dsl.MustParse("cwnd - cwnd"), events); !math.IsInf(s, 1) {
		t.Errorf("zero-window handler score = %v, want +Inf", s)
	}
}
