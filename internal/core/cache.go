package core

import (
	"encoding/binary"
	"hash/fnv"
	"sync"

	"repro/internal/dsl"
)

// scoreCacheCap bounds the memo cache; at ~50 bytes per entry the default
// stays in the tens of megabytes even when MaxHandlers is at the paper's
// 300k budget.
const scoreCacheCap = 1 << 18

// cacheEntry is a memoized score. exact entries hold the true distance;
// inexact entries hold a lower bound (the value an abandoned computation
// returned) and may only settle a lookup whose cutoff they already exceed.
type cacheEntry struct {
	d     float64
	exact bool
}

// scoreCache memoizes handler scores across the scoring workers of a run.
// Duplicate completions — different sketches or assignments canonicalizing
// to the same expression — are scored once per segment set and served from
// memory afterwards. Exact hits return the true distance, so cache timing
// can never change what the search keeps; lower-bound entries only ever
// answer "provably worse than your cutoff", which is equally trajectory-
// neutral (see scoreHandler).
type scoreCache struct {
	mu  sync.Mutex
	m   map[uint64]cacheEntry
	cap int
}

func newScoreCache(capn int) *scoreCache {
	if capn <= 0 {
		capn = scoreCacheCap
	}
	return &scoreCache{m: make(map[uint64]cacheEntry), cap: capn}
}

func (c *scoreCache) get(k uint64) (cacheEntry, bool) {
	c.mu.Lock()
	e, ok := c.m[k]
	c.mu.Unlock()
	return e, ok
}

// put records a score. Exact values always win over lower bounds; between
// two lower bounds the larger (tighter) one is kept. When full, one
// arbitrary entry is evicted per insert, keeping the map bounded without
// bookkeeping on the hit path.
func (c *scoreCache) put(k uint64, d float64, exact bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.m[k]; ok {
		if cur.exact || (!exact && cur.d >= d) {
			return
		}
	} else if len(c.m) >= c.cap {
		for victim := range c.m {
			delete(c.m, victim)
			break
		}
	}
	c.m[k] = cacheEntry{d: d, exact: exact}
}

// handlerKey is FNV-64a over the handler's canonical serialization
// (dsl.Node.Key) plus the segment-set ID, so a score memoized for one
// iteration's segment subset can never answer for another's. Keys are
// 64-bit hashes, not the canonical strings themselves: at the default
// budget the birthday-collision probability is ~1e-9, far below the
// search's other sources of approximation.
func handlerKey(h *dsl.Node, setID uint64) uint64 {
	hash := fnv.New64a()
	hash.Write([]byte(h.Key()))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], setID)
	hash.Write(buf[:])
	return hash.Sum64()
}
