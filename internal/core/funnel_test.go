package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dsl"
	"repro/internal/replay"
)

// randFunnel fills a funnel with bounded random tallies.
func randFunnel(rng *rand.Rand) Funnel {
	var f Funnel
	for i := range f.Stages {
		f.Stages[i] = StageCost{
			Candidates: rng.Intn(1000),
			Cells:      int64(rng.Intn(100000)),
			CellsSaved: int64(rng.Intn(100000)),
		}
		f.Enumerated += f.Stages[i].Candidates
	}
	f.NewBest = rng.Intn(50)
	return f
}

// TestFunnelMergeAssociativeCommutative pins the algebra sharded workers
// rely on: partial funnels can be combined in any grouping or order.
func TestFunnelMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a, b, c := randFunnel(rng), randFunnel(rng), randFunnel(rng)

		// (a+b)+c == a+(b+c)
		left := a
		left.Merge(b)
		left.Merge(c)
		bc := b
		bc.Merge(c)
		right := a
		right.Merge(bc)
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: Merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", trial, left, right)
		}

		// a+b == b+a
		ab := a
		ab.Merge(b)
		ba := b
		ba.Merge(a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: Merge not commutative:\na+b = %+v\nb+a = %+v", trial, ab, ba)
		}
	}
}

// TestFunnelMergeIdentity: merging a zero funnel changes nothing, and a
// merge of reconciling funnels reconciles.
func TestFunnelMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := randFunnel(rng)
	got := f
	got.Merge(Funnel{})
	if !reflect.DeepEqual(got, f) {
		t.Errorf("zero merge changed the funnel: %+v != %+v", got, f)
	}
	g := randFunnel(rng)
	if !f.Reconciles() || !g.Reconciles() {
		t.Fatal("randFunnel should reconcile by construction")
	}
	f.Merge(g)
	if !f.Reconciles() {
		t.Errorf("merge of reconciling funnels does not reconcile: %+v", f)
	}
}

// TestFunnelCountObservePruned exercises the tallying paths directly:
// count and observe keep the partition invariant, and Pruned matches the
// inexact stages.
func TestFunnelCountObservePruned(t *testing.T) {
	var f Funnel
	f.count(FunnelRejected)
	f.count(FunnelCanonicalDup)
	f.count(FunnelCacheLB)
	f.observe(&replay.CandidateOutcome{Exact: true, Cells: 100})
	f.observe(&replay.CandidateOutcome{Diverged: true})
	f.observe(&replay.CandidateOutcome{Stage: 1, Saved: 500}) // dist.StageLBKim
	f.observe(&replay.CandidateOutcome{Stage: 3, Cells: 40, Saved: 60})
	if f.Enumerated != 7 {
		t.Errorf("Enumerated = %d, want 7", f.Enumerated)
	}
	if !f.Reconciles() {
		t.Errorf("funnel does not reconcile: %+v", f)
	}
	if got := f.Pruned(); got != 3 { // cache_lb + lb_kim + abandoned
		t.Errorf("Pruned = %d, want 3", got)
	}
	if f.Stages[FunnelFullyScored].Cells != 100 {
		t.Errorf("fully-scored cells = %d, want 100", f.Stages[FunnelFullyScored].Cells)
	}
	if f.Stages[FunnelLBKim].CellsSaved != 500 {
		t.Errorf("lb_kim cells saved = %d, want 500", f.Stages[FunnelLBKim].CellsSaved)
	}
}

// TestFunnelReportShares: Report renders one row per stage with shares
// summing to 1 for a reconciling funnel.
func TestFunnelReportShares(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randFunnel(rng)
	rep := f.Report()
	if len(rep.Stages) != int(NumFunnelStages) {
		t.Fatalf("report has %d stages, want %d", len(rep.Stages), NumFunnelStages)
	}
	sum := 0.0
	for _, s := range rep.Stages {
		sum += s.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("stage shares sum to %v, want 1", sum)
	}
}

// TestSearchStatsMerge: merging per-shard stats sums the funnels and
// combines same-ops buckets; the result still reconciles.
func TestSearchStatsMerge(t *testing.T) {
	ops := dsl.OpSet(0).With(dsl.OpAdd)
	mk := func(enumerated, scored int, best float64) SearchStats {
		var f Funnel
		for i := 0; i < enumerated-scored; i++ {
			f.count(FunnelRejected)
		}
		for i := 0; i < scored; i++ {
			f.observe(&replay.CandidateOutcome{Exact: true, Cells: 10})
		}
		return SearchStats{
			SpaceBuckets:   1,
			HandlersScored: scored,
			Funnel:         f,
			Buckets: []BucketStats{{
				Ops:            ops,
				Iterations:     1,
				HandlersScored: scored,
				Funnel:         f,
				Best:           best,
				Trajectory:     []float64{best},
			}},
		}
	}
	a := mk(10, 7, 3.5)
	b := mk(6, 6, 2.0)
	a.Merge(b)
	if a.HandlersScored != 13 {
		t.Errorf("merged HandlersScored = %d, want 13", a.HandlersScored)
	}
	if a.Funnel.Enumerated != 16 {
		t.Errorf("merged Enumerated = %d, want 16", a.Funnel.Enumerated)
	}
	if !a.Funnel.Reconciles() {
		t.Errorf("merged funnel does not reconcile: %+v", a.Funnel)
	}
	if len(a.Buckets) != 1 {
		t.Fatalf("same-ops buckets not combined: %d buckets", len(a.Buckets))
	}
	bkt := a.Buckets[0]
	if bkt.Best != 2.0 {
		t.Errorf("merged bucket best = %v, want 2.0 (min)", bkt.Best)
	}
	if bkt.Funnel.Enumerated != 16 {
		t.Errorf("merged bucket funnel enumerated = %d, want 16", bkt.Funnel.Enumerated)
	}
}

// TestRunFunnelReconciles drives real searches in both scoring modes and
// checks the acceptance invariant end to end: per-bucket stage counts sum
// to candidates considered, the run funnel is the bucket sum, and the
// report builder agrees with the stats.
func TestRunFunnelReconciles(t *testing.T) {
	segs := segmentsFor(t, "reno")
	for _, exact := range []bool{false, true} {
		opts := quickOpts(dsl.Reno())
		opts.ExactScoring = exact
		res, err := Synthesize(context.Background(), segs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Funnel.Enumerated == 0 {
			t.Fatalf("exact=%v: empty run funnel", exact)
		}
		if !res.Stats.Funnel.Reconciles() {
			t.Errorf("exact=%v: run funnel does not reconcile: %+v", exact, res.Stats.Funnel)
		}
		var sum Funnel
		for _, b := range res.Stats.Buckets {
			if !b.Funnel.Reconciles() {
				t.Errorf("exact=%v: bucket %v does not reconcile: %+v", exact, b.Ops, b.Funnel)
			}
			sum.Merge(b.Funnel)
		}
		if !reflect.DeepEqual(sum, res.Stats.Funnel) {
			t.Errorf("exact=%v: run funnel != sum of bucket funnels:\nrun: %+v\nsum: %+v",
				exact, res.Stats.Funnel, sum)
		}
		if exact {
			if p := res.Stats.Funnel.Pruned(); p != 0 {
				t.Errorf("exact scoring pruned %d candidates", p)
			}
		}
		rep := NewRunFunnelReport("t", res.Handler.String(), res.Distance, res.Stats)
		if rep.Total.Enumerated != res.Stats.Funnel.Enumerated {
			t.Errorf("report enumerated %d != stats %d", rep.Total.Enumerated, res.Stats.Funnel.Enumerated)
		}
		if len(rep.Buckets) != len(res.Stats.Buckets) {
			t.Errorf("report has %d buckets, stats %d", len(rep.Buckets), len(res.Stats.Buckets))
		}
	}
}

// TestSynthesizeLedger: a run with a ledger samples real candidates,
// deterministically for a fixed seed.
func TestSynthesizeLedger(t *testing.T) {
	segs := segmentsFor(t, "reno")
	run := func() []replay.LedgerEntry {
		opts := quickOpts(dsl.Reno())
		opts.Ledger = replay.NewLedger(64, opts.Seed)
		if _, err := Synthesize(context.Background(), segs, opts); err != nil {
			t.Fatal(err)
		}
		return opts.Ledger.Entries()
	}
	a := run()
	b := run()
	if len(a) == 0 {
		t.Fatal("ledger sampled no candidates")
	}
	if len(a) > 64 {
		t.Fatalf("ledger overflowed its capacity: %d", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("ledger not deterministic across identical runs:\na: %+v\nb: %+v", a[:3], b[:3])
	}
	for _, e := range a {
		if e.Sketch == "" || e.Handler == "" || e.Stage == "" {
			t.Fatalf("incomplete ledger entry: %+v", e)
		}
	}
}
