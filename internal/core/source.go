package core

import (
	"context"
	"iter"

	"repro/internal/dsl"
	"repro/internal/enum"
	"repro/internal/obs"
)

// Paper-default search bounds, exported so a shared sketch source
// (corpus.SketchCorpus) can be configured to match a run that uses the
// zero-value Options.
const (
	// DefaultBucketCap is the Options.BucketCap default.
	DefaultBucketCap = 20000
	// DefaultScanBudget is the Options.ScanBudget default.
	DefaultScanBudget = 100000
)

// SketchSource supplies a synthesis run's sketch space. Take returns the
// first n canonical sketches of the bucket in enumeration order — always
// the same prefix for the same bucket, so results do not depend on which
// run forced the enumeration — plus whether the bucket is exhausted at
// that size (no further Take can return more). capN and scanBudget carry
// the run's BucketCap and ScanBudget; a shared source may have been built
// with its own bounds, in which case the tighter one applies and runs
// configured differently from the source may see a different prefix.
//
// Release hints that this run will not Take from the bucket again; a
// per-run source frees the bucket's enumerator, a shared one ignores it.
// Implementations must be safe for concurrent use by one run's scoring
// workers (distinct buckets in parallel); shared sources must additionally
// tolerate concurrent Takes on the same bucket from different runs.
type SketchSource interface {
	Buckets() []dsl.OpSet
	Take(ops dsl.OpSet, n, capN, scanBudget int) (sketches []*dsl.Node, exhausted bool)
	Release(ops dsl.OpSet)
}

// enumSource is the default per-run SketchSource: one lazily-pulled
// enumerator per bucket, exactly the pre-corpus behavior. Distinct buckets
// are used by distinct scoring workers, and each bucket's state is touched
// by one worker at a time, so srcBucket needs no lock.
type enumSource struct {
	d       *dsl.DSL
	obsv    *obs.Registry
	keys    []dsl.OpSet
	buckets map[dsl.OpSet]*srcBucket
}

// srcBucket is one bucket's enumeration state.
type srcBucket struct {
	ops       dsl.OpSet
	cache     []*dsl.Node
	next      func() (*dsl.Node, bool)
	stop      func()
	exhausted bool
}

// newEnumSource enumerates bucket keys for the DSL and prepares per-bucket
// state.
func newEnumSource(d *dsl.DSL, obsv *obs.Registry) *enumSource {
	e := enum.New(d)
	e.Obs = obsv
	s := &enumSource{d: d, obsv: obsv, keys: e.Buckets()}
	s.buckets = make(map[dsl.OpSet]*srcBucket, len(s.keys))
	for _, ops := range s.keys {
		s.buckets[ops] = &srcBucket{ops: ops}
	}
	return s
}

// Buckets implements SketchSource.
func (s *enumSource) Buckets() []dsl.OpSet { return s.keys }

// Take implements SketchSource: it extends the bucket's cache from the
// enumerator as needed (bounded by capN and the bucket-lifetime scan
// budget) and returns the prefix.
func (s *enumSource) Take(ops dsl.OpSet, n, capN, scanBudget int) ([]*dsl.Node, bool) {
	b := s.buckets[ops]
	if n > capN {
		n = capN
	}
	if b.next == nil && !b.exhausted {
		e := enum.New(s.d)
		e.Obs = s.obsv
		b.next, b.stop = iter.Pull(e.BucketLimited(b.ops, scanBudget))
	}
	for len(b.cache) < n && !b.exhausted {
		sk, ok := b.next()
		if !ok {
			b.exhausted = true
			b.stop()
			break
		}
		b.cache = append(b.cache, sk)
		if len(b.cache) >= capN {
			b.exhausted = true
			b.stop()
		}
	}
	if n > len(b.cache) {
		n = len(b.cache)
	}
	return b.cache[:n], b.exhausted
}

// Release implements SketchSource: it closes the bucket's live iterator.
func (s *enumSource) Release(ops dsl.OpSet) {
	b := s.buckets[ops]
	if b.next != nil && !b.exhausted {
		b.stop()
		b.exhausted = true
	}
	b.next = nil
}

// Close releases every bucket.
func (s *enumSource) Close() {
	for _, ops := range s.keys {
		s.Release(ops)
	}
}

// Gate bounds concurrent CPU work across one or more synthesis runs.
// Acquire blocks until a slot frees or the context is done (returning
// false); every successful Acquire must be paired with a Release. The
// batch engine shares one Gate across all trace jobs so their combined
// worker count never exceeds the host's cores.
type Gate interface {
	Acquire(ctx context.Context) bool
	Release()
}

// chanGate is a counting semaphore over a buffered channel.
type chanGate chan struct{}

// NewGate returns a Gate admitting up to n concurrent holders (minimum 1).
func NewGate(n int) Gate {
	if n < 1 {
		n = 1
	}
	return make(chanGate, n)
}

// Acquire implements Gate.
func (g chanGate) Acquire(ctx context.Context) bool {
	select {
	case g <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// Release implements Gate.
func (g chanGate) Release() { <-g }
