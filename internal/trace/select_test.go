package trace

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/dist"
)

// flatSegment builds a synthetic segment whose cwnd sits at level MSS
// units for count samples — distances between flat segments are then
// simple functions of their levels, which makes the farthest-segment
// phase of SelectDiverse checkable.
func flatSegment(level float64, count int) *Segment {
	g := &Segment{MSS: 1448}
	for i := 0; i < count; i++ {
		g.Samples = append(g.Samples, Sample{
			Time: time.Duration(i) * 10 * time.Millisecond,
			Cwnd: level * g.MSS,
		})
	}
	return g
}

func TestSelectDiverseEdgeCases(t *testing.T) {
	segs := []*Segment{flatSegment(10, 8), flatSegment(20, 8)}
	rng := rand.New(rand.NewSource(1))
	if got := SelectDiverse(segs, 0, dist.DTW{}, rng); got != nil {
		t.Errorf("n=0: got %d segments, want nil", len(got))
	}
	if got := SelectDiverse(nil, 4, dist.DTW{}, rng); got != nil {
		t.Errorf("empty input: got %d segments, want nil", len(got))
	}
	// n >= len returns every segment, as a copy.
	got := SelectDiverse(segs, 5, dist.DTW{}, rng)
	if len(got) != len(segs) {
		t.Fatalf("n>len: got %d segments, want %d", len(got), len(segs))
	}
	got[0] = nil
	if segs[0] == nil {
		t.Error("n>len result aliases the input slice")
	}
}

func TestSelectDiverseCountAndUniqueness(t *testing.T) {
	var segs []*Segment
	for i := 0; i < 12; i++ {
		segs = append(segs, flatSegment(float64(5+i), 8))
	}
	for n := 1; n <= 11; n++ {
		rng := rand.New(rand.NewSource(3))
		got := SelectDiverse(segs, n, dist.DTW{}, rng)
		if len(got) != n {
			t.Fatalf("n=%d: got %d segments", n, len(got))
		}
		seen := map[*Segment]bool{}
		for _, g := range got {
			if seen[g] {
				t.Fatalf("n=%d: segment picked twice", n)
			}
			seen[g] = true
		}
	}
}

func TestSelectDiversePicksOutlier(t *testing.T) {
	// Eleven near-identical segments plus one far outlier: phase 2 adds,
	// for each random seed, the farthest unpicked segment — which is the
	// outlier whenever it wasn't already drawn. So for n >= 2 the outlier
	// must always be selected, whatever the rng state.
	for seed := int64(0); seed < 20; seed++ {
		segs := []*Segment{}
		for i := 0; i < 11; i++ {
			segs = append(segs, flatSegment(10+0.1*float64(i), 8))
		}
		outlier := flatSegment(500, 8)
		segs = append(segs, outlier)
		got := SelectDiverse(segs, 4, dist.DTW{}, rand.New(rand.NewSource(seed)))
		found := false
		for _, g := range got {
			found = found || g == outlier
		}
		if !found {
			t.Fatalf("seed %d: outlier segment not selected", seed)
		}
	}
}

func TestSelectDiverseDeterministic(t *testing.T) {
	var segs []*Segment
	for i := 0; i < 10; i++ {
		segs = append(segs, flatSegment(float64(2*i+3), 8))
	}
	a := SelectDiverse(segs, 5, dist.DTW{}, rand.New(rand.NewSource(9)))
	b := SelectDiverse(segs, 5, dist.DTW{}, rand.New(rand.NewSource(9)))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selection differs at %d for identical rng state", i)
		}
	}
}
