package trace

import (
	"math/rand"

	"repro/internal/dist"
)

// SelectDiverse implements the paper's trace-segment selection strategy
// (§3.2): to pick n segments, first draw n/2 uniformly at random; then, for
// each drawn segment, add the not-yet-picked segment at the greatest
// distance from it. The result favors a diverse set of network conditions
// and guards against handlers that over-fit one segment.
//
// The metric m scores segment dissimilarity (the paper uses its primary
// DTW distance). Selection is deterministic for a given rng state.
func SelectDiverse(segs []*Segment, n int, m dist.Metric, rng *rand.Rand) []*Segment {
	if n <= 0 || len(segs) == 0 {
		return nil
	}
	if n >= len(segs) {
		out := make([]*Segment, len(segs))
		copy(out, segs)
		return out
	}
	picked := make([]bool, len(segs))
	var out []*Segment
	take := func(i int) {
		picked[i] = true
		out = append(out, segs[i])
	}

	// Phase 1: uniform random half.
	half := (n + 1) / 2
	perm := rng.Perm(len(segs))
	seeds := perm[:half]
	for _, i := range seeds {
		take(i)
	}

	// Phase 2: for each seed, the farthest unpicked segment.
	series := make([]dist.Series, len(segs))
	for i, g := range segs {
		series[i] = g.Series()
	}
	for _, si := range seeds {
		if len(out) >= n {
			break
		}
		best, bestD := -1, -1.0
		for j := range segs {
			if picked[j] {
				continue
			}
			d := m.Distance(series[si], series[j])
			if d > bestD {
				best, bestD = j, d
			}
		}
		if best >= 0 {
			take(best)
		}
	}

	// Top up with random unpicked segments if rounding left us short.
	for _, i := range perm {
		if len(out) >= n {
			break
		}
		if !picked[i] {
			take(i)
		}
	}
	return out
}
