package trace

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/wire"
)

// renoCapture runs a short Reno simulation and returns its capture plus
// ground truth.
func renoCapture(t *testing.T, dur time.Duration) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		CCA:       "reno",
		Bandwidth: 10e6 / 8,
		RTT:       40 * time.Millisecond,
		Duration:  dur,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func analyze(t *testing.T, res *sim.Result) *Trace {
	t.Helper()
	tr, err := AnalyzeRecords(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAnalyzeInfersMSS(t *testing.T) {
	tr := analyze(t, renoCapture(t, 3*time.Second))
	if tr.MSS != 1448 {
		t.Errorf("inferred MSS = %v, want 1448", tr.MSS)
	}
}

func TestAnalyzeProducesSamples(t *testing.T) {
	tr := analyze(t, renoCapture(t, 3*time.Second))
	if len(tr.Samples) < 100 {
		t.Fatalf("only %d samples from 3s capture", len(tr.Samples))
	}
	for i, s := range tr.Samples {
		if s.Cwnd < 0 || math.IsNaN(s.Cwnd) {
			t.Fatalf("sample %d has bad cwnd %v", i, s.Cwnd)
		}
		if i > 0 && s.Time < tr.Samples[i-1].Time {
			t.Fatalf("sample %d time goes backwards", i)
		}
	}
}

func TestEstimatedCwndTracksGroundTruth(t *testing.T) {
	res := renoCapture(t, 10*time.Second)
	tr := analyze(t, res)
	// Compare the analyzer's inflight estimate to the sender's true cwnd
	// at matching times (skip slow start). They differ transiently (the
	// window isn't always full), so compare time averages.
	var estSum, truthSum float64
	var estN, truthN int
	for _, s := range tr.Samples {
		if s.Time > 2*time.Second {
			estSum += s.Cwnd
			estN++
		}
	}
	for _, tp := range res.Truth {
		if tp.Time > 2*time.Second {
			truthSum += tp.Cwnd
			truthN++
		}
	}
	est := estSum / float64(estN)
	truth := truthSum / float64(truthN)
	if ratio := est / truth; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("estimated mean cwnd %.0f vs truth %.0f (ratio %.2f)", est, truth, ratio)
	}
}

func TestRTTEstimation(t *testing.T) {
	tr := analyze(t, renoCapture(t, 5*time.Second))
	if tr.Samples[len(tr.Samples)-1].MinRTT < 40*time.Millisecond {
		t.Errorf("min RTT %v below propagation floor", tr.Samples[len(tr.Samples)-1].MinRTT)
	}
	if tr.Samples[len(tr.Samples)-1].MinRTT > 60*time.Millisecond {
		t.Errorf("min RTT %v too far above 40ms floor", tr.Samples[len(tr.Samples)-1].MinRTT)
	}
	// Max RTT should reflect queueing above the floor.
	if tr.Samples[len(tr.Samples)-1].MaxRTT <= tr.Samples[len(tr.Samples)-1].MinRTT {
		t.Error("max RTT not above min RTT despite a filling queue")
	}
}

func TestLossInference(t *testing.T) {
	res := renoCapture(t, 30*time.Second)
	tr := analyze(t, res)
	if len(tr.Losses) == 0 {
		t.Fatal("no losses inferred from a Reno trace with drops")
	}
	// Loss count should be in the ballpark of actual fast retransmit
	// episodes (not each drop: a burst maps to one event).
	if len(tr.Losses) < res.Stats.FastRetransmits/2 || len(tr.Losses) > res.Stats.FastRetransmits*3+3 {
		t.Errorf("inferred %d losses vs %d fast retransmits", len(tr.Losses), res.Stats.FastRetransmits)
	}
}

func TestAckRateApproximatesBandwidth(t *testing.T) {
	tr := analyze(t, renoCapture(t, 10*time.Second))
	// In steady state the delivery rate should be near the bottleneck
	// (10 Mbit/s = 1.25 MB/s).
	var sum float64
	var n int
	for _, s := range tr.Samples {
		if s.Time > 3*time.Second && s.AckRate > 0 {
			sum += s.AckRate
			n++
		}
	}
	avg := sum / float64(n)
	if avg < 0.6*1.25e6 || avg > 1.4*1.25e6 {
		t.Errorf("mean ack rate = %.0f B/s, want ~1.25e6", avg)
	}
}

func TestTimeSinceLossResets(t *testing.T) {
	tr := analyze(t, renoCapture(t, 30*time.Second))
	if len(tr.Losses) == 0 {
		t.Skip("no losses in capture")
	}
	// After each loss, TimeSinceLoss must restart below its prior value.
	var resets int
	for i := 1; i < len(tr.Samples); i++ {
		if tr.Samples[i].TimeSinceLoss < tr.Samples[i-1].TimeSinceLoss {
			resets++
		}
	}
	if resets < len(tr.Losses)/2 {
		t.Errorf("TimeSinceLoss reset %d times for %d losses", resets, len(tr.Losses))
	}
}

func TestSplitSegments(t *testing.T) {
	tr := analyze(t, renoCapture(t, 30*time.Second))
	segs := tr.Split(8)
	if len(segs) < 2 {
		t.Fatalf("only %d segments from a sawtooth trace", len(segs))
	}
	var total int
	for _, g := range segs {
		if len(g.Samples) < 8 {
			t.Errorf("segment has %d samples, below minimum", len(g.Samples))
		}
		total += len(g.Samples)
		if g.MSS != tr.MSS {
			t.Error("segment MSS not inherited")
		}
	}
	if total > len(tr.Samples) {
		t.Error("segments overlap")
	}
}

func TestSplitNoLosses(t *testing.T) {
	tr := &Trace{MSS: 1448}
	for i := 0; i < 100; i++ {
		tr.Samples = append(tr.Samples, Sample{Time: time.Duration(i) * time.Millisecond, Cwnd: 1448})
	}
	segs := tr.Split(8)
	if len(segs) != 1 || len(segs[0].Samples) != 100 {
		t.Errorf("lossless split = %d segments", len(segs))
	}
}

func TestSegmentSeries(t *testing.T) {
	g := &Segment{MSS: 1448}
	for i := 0; i < 10; i++ {
		g.Samples = append(g.Samples, Sample{Time: time.Duration(i) * time.Second, Cwnd: float64(i) * 1448})
	}
	s := g.Series()
	if s.Len() != 10 || s.Values[5] != 5 || s.Times[5] != 5 {
		t.Errorf("series = %+v", s)
	}
	if g.Duration() != 9*time.Second {
		t.Errorf("duration = %v", g.Duration())
	}
}

func TestAnalyzeRejectsEmpty(t *testing.T) {
	if _, err := AnalyzeRecords(nil); err == nil {
		t.Error("AnalyzeRecords accepted empty capture")
	}
	if _, err := AnalyzeBytes([]byte("garbage")); err == nil {
		t.Error("AnalyzeBytes accepted garbage")
	}
}

func TestAnalyzeToleratesCorruptPackets(t *testing.T) {
	res := renoCapture(t, 2*time.Second)
	recs := append([]wire.PcapRecord{}, res.Records...)
	// Corrupt every 10th packet.
	for i := 0; i < len(recs); i += 10 {
		bad := append([]byte{}, recs[i].Data...)
		bad[len(bad)-1] ^= 0xff
		recs[i] = wire.PcapRecord{Time: recs[i].Time, Data: bad}
	}
	tr, err := AnalyzeRecords(recs)
	if err != nil {
		t.Fatalf("analyzer failed on noisy capture: %v", err)
	}
	if len(tr.Samples) < 50 {
		t.Errorf("only %d samples from noisy capture", len(tr.Samples))
	}
}

func TestAnalyzePcapRoundTrip(t *testing.T) {
	res := renoCapture(t, 2*time.Second)
	raw, err := res.WritePcap()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := AnalyzeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := AnalyzeRecords(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != len(tr2.Samples) {
		t.Errorf("pcap path %d samples vs records path %d", len(tr.Samples), len(tr2.Samples))
	}
}

func mkSegment(level float64, n int) *Segment {
	g := &Segment{MSS: 1}
	for i := 0; i < n; i++ {
		g.Samples = append(g.Samples, Sample{Time: time.Duration(i) * time.Millisecond, Cwnd: level})
	}
	return g
}

func TestSelectDiverse(t *testing.T) {
	// 10 near-identical segments at level 10, one outlier at level 100:
	// diverse selection should almost always include the outlier.
	var segs []*Segment
	for i := 0; i < 10; i++ {
		segs = append(segs, mkSegment(10+float64(i)/10, 50))
	}
	outlier := mkSegment(100, 50)
	segs = append(segs, outlier)
	rng := rand.New(rand.NewSource(3))
	got := SelectDiverse(segs, 4, dist.DTW{}, rng)
	if len(got) != 4 {
		t.Fatalf("selected %d segments, want 4", len(got))
	}
	found := false
	for _, g := range got {
		if g == outlier {
			found = true
		}
	}
	if !found {
		t.Error("diverse selection missed the outlier segment")
	}
}

func TestSelectDiverseBounds(t *testing.T) {
	segs := []*Segment{mkSegment(1, 10), mkSegment(2, 10)}
	rng := rand.New(rand.NewSource(1))
	if got := SelectDiverse(segs, 10, dist.DTW{}, rng); len(got) != 2 {
		t.Errorf("over-request returned %d", len(got))
	}
	if got := SelectDiverse(segs, 0, dist.DTW{}, rng); got != nil {
		t.Errorf("zero-request returned %v", got)
	}
	if got := SelectDiverse(nil, 3, dist.DTW{}, rng); got != nil {
		t.Errorf("empty input returned %v", got)
	}
	if got := SelectDiverse(segs, 1, dist.DTW{}, rng); len(got) != 1 {
		t.Errorf("n=1 returned %d", len(got))
	}
}

func TestSelectDiverseNoDuplicates(t *testing.T) {
	var segs []*Segment
	for i := 0; i < 20; i++ {
		segs = append(segs, mkSegment(float64(i), 30))
	}
	rng := rand.New(rand.NewSource(9))
	got := SelectDiverse(segs, 10, dist.DTW{}, rng)
	seen := map[*Segment]bool{}
	for _, g := range got {
		if seen[g] {
			t.Fatal("duplicate segment selected")
		}
		seen[g] = true
	}
}
