// Package trace turns raw packet captures into the observable signal
// streams the Abagnale pipeline synthesizes against: the visible congestion
// window over time plus the congestion signals of the DSL (RTT, min/max
// RTT, ACK rate, RTT gradient, time since loss). It mirrors what a CCA
// classifier measures from a sender-side tcpdump (§3.1-3.2 of the paper):
// no ground-truth CWND is ever read — everything is inferred from seq/ack
// numbers and TCP timestamps.
package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/dist"
	"repro/internal/wire"
)

// Sample is one per-ACK observation of the connection.
type Sample struct {
	// Time is the capture timestamp of the ACK.
	Time time.Duration
	// Acked is the number of newly acknowledged bytes.
	Acked float64
	// Cwnd is the estimated visible congestion window: bytes in flight
	// (highest sequence sent minus cumulative ACK) at this instant.
	Cwnd float64
	// RTT is the instantaneous RTT sample from the timestamp echo; zero
	// when unavailable.
	RTT time.Duration
	// MinRTT and MaxRTT are running extremes up to this sample.
	MinRTT time.Duration
	MaxRTT time.Duration
	// AckRate is the delivery rate estimate in bytes/second.
	AckRate float64
	// RTTGradient is the smoothed d(RTT)/dt (seconds per second).
	RTTGradient float64
	// TimeSinceLoss is the time since the last inferred loss event (or
	// since the connection start before any loss).
	TimeSinceLoss time.Duration
	// WMax is the estimated window at the last inferred loss event.
	WMax float64
}

// Trace is the analyzed observable record of one connection.
type Trace struct {
	// Samples are per-ACK observations in time order.
	Samples []Sample
	// MSS is the inferred maximum segment size in bytes.
	MSS float64
	// Losses are the times of inferred loss events (triple duplicate ACK).
	Losses []time.Duration
	// Label optionally records the ground-truth CCA name for bookkeeping
	// in experiments; the synthesis pipeline never reads it.
	Label string
}

// Series converts the trace's CWND estimates (in MSS units) to a
// dist.Series for distance computation.
func (t *Trace) Series() dist.Series {
	s := dist.Series{Times: make([]float64, len(t.Samples)), Values: make([]float64, len(t.Samples))}
	for i, smp := range t.Samples {
		s.Times[i] = smp.Time.Seconds()
		s.Values[i] = smp.Cwnd / t.MSS
	}
	return s
}

// Segment is a run of samples between inferred loss events (§3.2): the unit
// Abagnale scores candidate handlers on.
type Segment struct {
	// Samples are the segment's observations.
	Samples []Sample
	// MSS is copied from the parent trace.
	MSS float64
	// Label is copied from the parent trace.
	Label string
}

// Series converts the segment's CWND estimates (MSS units) to a
// dist.Series.
func (g *Segment) Series() dist.Series {
	s := dist.Series{Times: make([]float64, len(g.Samples)), Values: make([]float64, len(g.Samples))}
	for i, smp := range g.Samples {
		s.Times[i] = smp.Time.Seconds()
		s.Values[i] = smp.Cwnd / g.MSS
	}
	return s
}

// Duration returns the segment's time span.
func (g *Segment) Duration() time.Duration {
	if len(g.Samples) == 0 {
		return 0
	}
	return g.Samples[len(g.Samples)-1].Time - g.Samples[0].Time
}

// dupThresh is the duplicate-ACK count that infers a loss (the paper's
// triple-duplicate-ACK rule).
const dupThresh = 3

// Analyze parses a pcap stream and extracts the observable trace of the
// single data-bearing TCP flow it contains. Both raw-IP and Ethernet
// (default tcpdump) link types are supported.
func Analyze(r io.Reader) (*Trace, error) {
	return NewExtractor().Analyze(r)
}

// AnalyzeBytes is Analyze over an in-memory pcap file.
func AnalyzeBytes(pcap []byte) (*Trace, error) {
	return Analyze(bytes.NewReader(pcap))
}

// AnalyzeRecords extracts the observable trace from decoded raw-IP pcap
// records. Records must be in time order, captured at the sender's vantage
// point (outgoing data segments, incoming ACKs).
func AnalyzeRecords(recs []wire.PcapRecord) (*Trace, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty capture")
	}
	a := newAnalyzer()
	var pkt wire.Packet
	for _, rec := range recs {
		if err := wire.DecodePacketLinkInto(wire.LinkTypeRaw, rec.Data, &pkt); err != nil {
			// Tolerate occasional corrupt packets: real captures
			// contain them.
			continue
		}
		a.observe(rec.Time, &pkt)
	}
	return a.finish()
}

// Extractor analyzes pcap streams while reusing all per-file scratch state
// — the pcap record buffer, the decoded packet's layer structs, and the
// analyzer's maps — so batch ingestion of a trace directory allocates only
// what escapes into each returned Trace (its samples and losses). Not safe
// for concurrent use; batch jobs give each ingestion goroutine its own.
type Extractor struct {
	pr  *wire.PcapReader
	rec wire.PcapRecord
	pkt wire.Packet
	a   analyzer
}

// NewExtractor returns an Extractor ready for its first Analyze call.
func NewExtractor() *Extractor {
	return &Extractor{
		pr: wire.NewPcapReader(nil),
		a:  analyzer{tsSent: map[uint32]time.Duration{}, mssCounts: map[int]int{}},
	}
}

// Analyze parses one pcap stream under the same contract as the package
// Analyze function.
func (x *Extractor) Analyze(r io.Reader) (*Trace, error) {
	x.pr.Reset(r)
	x.a.reset()
	records := 0
	for {
		err := x.pr.NextInto(&x.rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		records++
		if err := wire.DecodePacketLinkInto(x.pr.LinkType, x.rec.Data, &x.pkt); err != nil {
			// Tolerate occasional corrupt packets: real captures
			// contain them.
			continue
		}
		x.a.observe(x.rec.Time, &x.pkt)
	}
	if records == 0 {
		return nil, fmt.Errorf("trace: empty capture")
	}
	return x.a.finish()
}

// AnalyzeFile is Analyze over a pcap file on disk.
func (x *Extractor) AnalyzeFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := x.Analyze(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// analyzer is the streaming trace reconstruction state machine.
type analyzer struct {
	dataFlow   wire.Flow
	haveFlow   bool
	maxSeqSent uint32
	curAck     uint32
	haveAck    bool
	dupAcks    int

	// tsSent maps TCP timestamp values to first send time for RTT
	// estimation via the timestamp echo.
	tsSent map[uint32]time.Duration

	minRTT, maxRTT time.Duration
	prevRTT        time.Duration
	prevRTTTime    time.Duration
	gradient       float64

	rate rateWindow

	lastLoss  time.Duration
	losses    []time.Duration
	wmax      float64
	mssCounts map[int]int

	samples []Sample
}

func newAnalyzer() *analyzer {
	return &analyzer{
		tsSent:    map[uint32]time.Duration{},
		mssCounts: map[int]int{},
	}
}

// reset readies the analyzer for a new capture, keeping its maps and the
// rate window's backing array. samples and losses escape into the returned
// Trace, so those start nil rather than being reused.
func (a *analyzer) reset() {
	clear(a.tsSent)
	clear(a.mssCounts)
	rateBuf := a.rate.samples[:0]
	*a = analyzer{tsSent: a.tsSent, mssCounts: a.mssCounts}
	a.rate.samples = rateBuf
}

// observe processes one captured packet.
func (a *analyzer) observe(ts time.Duration, pkt *wire.Packet) {
	if pkt.PayloadLen() > 0 {
		a.observeData(ts, pkt)
		return
	}
	a.observeAck(ts, pkt)
}

// observeData handles an outgoing data segment.
func (a *analyzer) observeData(ts time.Duration, pkt *wire.Packet) {
	if !a.haveFlow {
		a.dataFlow = pkt.IP.NetworkFlow()
		a.haveFlow = true
	}
	a.mssCounts[pkt.PayloadLen()]++
	end := pkt.TCP.Seq + uint32(pkt.PayloadLen())
	if end > a.maxSeqSent {
		a.maxSeqSent = end
	}
	if pkt.TCP.HasTimestamps {
		if _, dup := a.tsSent[pkt.TCP.TSVal]; !dup {
			a.tsSent[pkt.TCP.TSVal] = ts
		}
	}
}

// observeAck handles an incoming ACK.
func (a *analyzer) observeAck(ts time.Duration, pkt *wire.Packet) {
	ack := pkt.TCP.Ack
	if !a.haveAck {
		a.haveAck = true
		a.curAck = ack
		return
	}
	if ack == a.curAck {
		a.dupAcks++
		if a.dupAcks == dupThresh {
			a.inferLoss(ts)
		}
		return
	}
	if ack < a.curAck {
		return // reordered stale ACK
	}
	acked := float64(ack - a.curAck)
	a.curAck = ack
	a.dupAcks = 0

	// RTT from the timestamp echo.
	var rtt time.Duration
	if pkt.TCP.HasTimestamps {
		if sent, ok := a.tsSent[pkt.TCP.TSEcr]; ok {
			rtt = ts - sent
			delete(a.tsSent, pkt.TCP.TSEcr)
		}
	}
	if rtt > 0 {
		a.rate.observeRTT(rtt)
		if a.minRTT == 0 || rtt < a.minRTT {
			a.minRTT = rtt
		}
		if rtt > a.maxRTT {
			a.maxRTT = rtt
		}
		if a.prevRTT > 0 && ts > a.prevRTTTime {
			g := (rtt - a.prevRTT).Seconds() / (ts - a.prevRTTTime).Seconds()
			a.gradient = 0.9*a.gradient + 0.1*g
		}
		a.prevRTT, a.prevRTTTime = rtt, ts
	}

	rate := a.rate.add(ts, acked, a.mss())

	cwnd := float64(a.maxSeqSent - a.curAck)
	sinceLoss := ts - a.lastLoss
	a.samples = append(a.samples, Sample{
		Time:          ts,
		Acked:         acked,
		Cwnd:          cwnd,
		RTT:           rtt,
		MinRTT:        a.minRTT,
		MaxRTT:        a.maxRTT,
		AckRate:       rate,
		RTTGradient:   a.gradient,
		TimeSinceLoss: sinceLoss,
		WMax:          a.wmax,
	})
}

// inferLoss records a triple-duplicate-ACK loss event.
func (a *analyzer) inferLoss(ts time.Duration) {
	a.lastLoss = ts
	a.losses = append(a.losses, ts)
	a.wmax = float64(a.maxSeqSent - a.curAck)
}

// mss returns the most frequent payload size seen so far.
func (a *analyzer) mss() float64 {
	best, bestN := 0, 0
	for sz, n := range a.mssCounts {
		if n > bestN {
			best, bestN = sz, n
		}
	}
	if best == 0 {
		return 1448
	}
	return float64(best)
}

// finish assembles the Trace.
func (a *analyzer) finish() (*Trace, error) {
	if len(a.samples) == 0 {
		return nil, fmt.Errorf("trace: no ACK samples found")
	}
	return &Trace{Samples: a.samples, MSS: a.mss(), Losses: a.losses}, nil
}

// rateWindow estimates delivery rate over a sliding 2x-smoothed-RTT-ish
// window; like the paper's measurement tooling it works purely from the
// observed ACK stream. A per-sample cap defuses cumulative-ACK jumps.
type rateWindow struct {
	samples []rateSample
	srtt    time.Duration
}

type rateSample struct {
	t     time.Duration
	bytes float64
}

// add records acked bytes at time t and returns the current rate estimate.
func (w *rateWindow) add(t time.Duration, bytes, mss float64) float64 {
	if limit := 8 * mss; bytes > limit {
		bytes = limit
	}
	w.samples = append(w.samples, rateSample{t: t, bytes: bytes})
	win := 2 * w.srtt
	if win < 20*time.Millisecond {
		win = 20 * time.Millisecond
	}
	cutoff := t - win
	i := 0
	for i < len(w.samples) && w.samples[i].t < cutoff {
		i++
	}
	w.samples = w.samples[i:]
	if len(w.samples) < 2 {
		return 0
	}
	span := (t - w.samples[0].t).Seconds()
	if floor := win.Seconds() / 2; span < floor {
		span = floor
	}
	var total float64
	for _, s := range w.samples {
		total += s.bytes
	}
	return total / span
}

// observeRTT lets the analyzer keep the window sized to the path RTT.
func (w *rateWindow) observeRTT(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if w.srtt == 0 {
		w.srtt = rtt
		return
	}
	w.srtt = (7*w.srtt + rtt) / 8
}

// maxSegmentSamples chunks very long loss-free runs: evaluating the
// distance function costs a fixed amount of work per packet (§3.2's
// data-volume concern), so a CCA that never loses (Vegas in a deep buffer)
// must not produce one enormous segment.
const maxSegmentSamples = 2500

// Split cuts the trace into segments at inferred loss events, dropping
// segments shorter than minSamples (§3.2: Abagnale scores candidate
// handlers per between-loss segment). Loss-free runs longer than
// maxSegmentSamples are chunked.
func (t *Trace) Split(minSamples int) []*Segment {
	if minSamples <= 0 {
		minSamples = 8
	}
	var segs []*Segment
	emit := func(lo, hi int) {
		for lo < hi {
			end := lo + maxSegmentSamples
			if end > hi {
				end = hi
			}
			if end-lo >= minSamples {
				segs = append(segs, &Segment{Samples: t.Samples[lo:end], MSS: t.MSS, Label: t.Label})
			}
			lo = end
		}
	}
	start := 0
	ci := 0
	for i, smp := range t.Samples {
		for ci < len(t.Losses) && smp.Time >= t.Losses[ci] {
			emit(start, i)
			start = i
			ci++
		}
	}
	emit(start, len(t.Samples))
	return segs
}
