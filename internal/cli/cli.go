// Package cli centralizes the command-line surface and lifecycle that
// every cmd/* tool used to repeat by hand: registering the shared
// observability/profiling flags (-v, -events, -metrics-json, -serve,
// -trace-out, -cpuprofile, -memprofile, -version), turning them into a
// live obs.Registry, and the exit etiquette around failures. Tools keep
// their own domain flags; this package owns only the common ones, so a
// new flag added here appears in every binary at once.
package cli

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

// Common is one tool's shared flag surface. Register (or
// RegisterVersion) constructs it before flag parsing; Setup finishes it
// after.
type Common struct {
	// Obs is the underlying observability flag bundle. Callers may adjust
	// it between Parse and Setup (the daemon attaches its API mounts and
	// defaults the listen address here).
	Obs obs.Flags

	tool string
	fs   *flag.FlagSet
}

// Register declares the full common flag set on fs for the named tool.
// Call before fs.Parse.
func Register(tool string, fs *flag.FlagSet) *Common {
	c := &Common{tool: tool, fs: fs}
	c.Obs.Register(fs)
	return c
}

// RegisterVersion declares only -version — the reduced surface for tools
// with no run-time observability (tracegen, traceplot, benchdiff,
// funneldiff).
func RegisterVersion(tool string, fs *flag.FlagSet) *Common {
	c := &Common{tool: tool, fs: fs}
	fs.BoolVar(&c.Obs.ShowVersion, "version", false, "print build information (module version, VCS revision) and exit")
	return c
}

// ShowVersion reports whether -version was passed; tools check it before
// rejecting an otherwise-empty argument list.
func (c *Common) ShowVersion() bool { return c.Obs.ShowVersion }

// Setup builds whatever the common flags asked for: -version prints
// build info and exits 0; otherwise profiling starts, the live server
// binds, and the returned registry (nil when no observability flag is
// set — every consumer is nil-safe) is ready. The returned done func
// flushes reports/profiles and must run even on error paths. A setup
// failure (unwritable profile path, busy listen address) exits 1.
func (c *Common) Setup() (*obs.Registry, func() error) {
	reg, done, err := c.Obs.Setup()
	if err != nil {
		c.Fatal(err)
	}
	return reg, done
}

// Fatal prints "tool: err" to stderr and exits 1.
func (c *Common) Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", c.tool, err)
	os.Exit(1)
}

// UsageExit prints "tool: msg", the flag usage, and exits 2 — the shape
// every tool used for bad invocations.
func (c *Common) UsageExit(msg string) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", c.tool, msg)
	c.fs.Usage()
	os.Exit(2)
}

// Finish runs the observability teardown and folds its error into the
// run's own: the run error wins, a teardown error surfaces only when the
// run itself succeeded. Exits 1 on either.
func (c *Common) Finish(runErr error, done func() error) {
	if err := done(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", c.tool, runErr)
		os.Exit(1)
	}
}
