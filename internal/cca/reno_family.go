package cca

import (
	"math"
	"time"
)

func init() {
	Register("reno", func() Algorithm { return &Reno{} })
	Register("westwood", func() Algorithm { return &Westwood{} })
	Register("scalable", func() Algorithm { return &Scalable{} })
	Register("lp", func() Algorithm { return &LP{} })
	Register("hybla", func() Algorithm { return &Hybla{} })
}

// Reno is classic TCP NewReno: additive increase of one MSS per RTT,
// multiplicative decrease of one half on loss.
type Reno struct{}

// Name implements Algorithm.
func (*Reno) Name() string { return "reno" }

// Reset implements Algorithm.
func (*Reno) Reset(*State) {}

// OnAck implements Algorithm.
func (*Reno) OnAck(s *State, acked float64) {
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	RenoIncrease(s, acked)
}

// OnLoss implements Algorithm.
func (*Reno) OnLoss(s *State, timeout bool) {
	MultiplicativeDecrease(s, 0.5, timeout)
}

// Westwood performs Reno's increase but sets the post-loss window from a
// bandwidth estimate: ssthresh = bw_est * RTTmin, the estimated BDP at the
// time of loss [Mascolo et al., MobiCom '01].
type Westwood struct {
	bwEst float64 // bytes/sec, EWMA of the delivery rate
}

// Name implements Algorithm.
func (*Westwood) Name() string { return "westwood" }

// Reset implements Algorithm.
func (w *Westwood) Reset(*State) { w.bwEst = 0 }

// OnAck implements Algorithm.
func (w *Westwood) OnAck(s *State, acked float64) {
	// Low-pass the connection's delivery-rate estimate, mimicking
	// Westwood+'s once-per-RTT bandwidth filter.
	const alpha = 0.9
	if w.bwEst == 0 {
		w.bwEst = s.AckRate
	} else {
		w.bwEst = alpha*w.bwEst + (1-alpha)*s.AckRate
	}
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	RenoIncrease(s, acked)
}

// OnLoss implements Algorithm.
func (w *Westwood) OnLoss(s *State, timeout bool) {
	bdp := w.bwEst * s.MinRTT.Seconds()
	s.Ssthresh = math.Max(bdp, 2*s.MSS)
	if timeout {
		s.Cwnd = 2 * s.MSS
	} else {
		s.Cwnd = math.Min(s.Cwnd, s.Ssthresh)
	}
}

// Scalable grows the window by one MSS per 100 bytes-of-MSS acknowledged
// once the window exceeds 100 packets (below that it behaves like Reno,
// as in the kernel's tcp_scalable), and backs off by only 1/8 on loss
// [Kelly, CCR '03].
type Scalable struct{}

// scalableAICnt is the kernel's TCP_SCALABLE_AI_CNT: above this many
// packets of window, growth becomes proportional (0.01/ACK).
const scalableAICnt = 100

// Name implements Algorithm.
func (*Scalable) Name() string { return "scalable" }

// Reset implements Algorithm.
func (*Scalable) Reset(*State) {}

// OnAck implements Algorithm.
func (*Scalable) OnAck(s *State, acked float64) {
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	div := math.Min(s.Cwnd, scalableAICnt*s.MSS)
	s.Cwnd += s.MSS * acked / div
}

// OnLoss implements Algorithm.
func (*Scalable) OnLoss(s *State, timeout bool) {
	MultiplicativeDecrease(s, 0.875, timeout)
}

// LP is TCP-LP, a low-priority CCA: Reno dynamics plus an early delay-based
// backoff when the smoothed one-way-delay proxy exceeds a threshold between
// the observed delay extremes [Kuzmanovic & Knightly, ToN '06].
type LP struct {
	sowd     float64 // smoothed queueing-delay proxy, seconds
	lastBack time.Duration
}

// lpDelayThresh is TCP-LP's delta: back off when the smoothed delay exceeds
// min + delta*(max-min).
const lpDelayThresh = 0.15

// Name implements Algorithm.
func (*LP) Name() string { return "lp" }

// Reset implements Algorithm.
func (l *LP) Reset(*State) { l.sowd, l.lastBack = 0, 0 }

// OnAck implements Algorithm.
func (l *LP) OnAck(s *State, acked float64) {
	owd := (s.LastRTT - s.MinRTT).Seconds()
	const gamma = 1.0 / 8
	l.sowd = (1-gamma)*l.sowd + gamma*owd
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	spread := (s.MaxRTT - s.MinRTT).Seconds()
	if spread > 0 && l.sowd > lpDelayThresh*spread && s.Now-l.lastBack > s.SRTT {
		// Early congestion indication: halve, at most once per RTT.
		l.lastBack = s.Now
		s.Cwnd = math.Max(s.Cwnd/2, 2*s.MSS)
		return
	}
	RenoIncrease(s, acked)
}

// OnLoss implements Algorithm.
func (*LP) OnLoss(s *State, timeout bool) {
	MultiplicativeDecrease(s, 0.5, timeout)
}

// Hybla scales Reno's increase by rho = RTT/RTT0 (RTT0 = 25ms) so that
// long-RTT paths grow their windows at the same wall-clock rate as a
// reference 25ms connection [Caini & Firrincieli, '04].
type Hybla struct {
	rho float64
}

// hyblaRTT0 is the reference round-trip time.
const hyblaRTT0 = 25 * time.Millisecond

// Name implements Algorithm.
func (*Hybla) Name() string { return "hybla" }

// Reset implements Algorithm.
func (h *Hybla) Reset(*State) { h.rho = 1 }

// OnAck implements Algorithm.
func (h *Hybla) OnAck(s *State, acked float64) {
	if s.SRTT > 0 {
		h.rho = math.Max(s.SRTT.Seconds()/hyblaRTT0.Seconds(), 1)
	}
	if s.InSlowStart {
		// cwnd += (2^rho - 1) per segment acked.
		s.Cwnd += (math.Pow(2, h.rho) - 1) * acked
		if s.Cwnd > s.Ssthresh {
			s.Cwnd = s.Ssthresh + acked
		}
		return
	}
	// cwnd += rho^2 / cwnd per segment acked.
	s.Cwnd += h.rho * h.rho * s.MSS * acked / s.Cwnd
}

// OnLoss implements Algorithm.
func (*Hybla) OnLoss(s *State, timeout bool) {
	MultiplicativeDecrease(s, 0.5, timeout)
}
