package cca

import (
	"math"
	"time"
)

func init() {
	Register("bbr", func() Algorithm { return &BBR{} })
}

// BBR is a simplified, window-driven model of BBRv1 [Cardwell et al., ACM
// Queue '16]: it estimates the bottleneck bandwidth (windowed max of the
// delivery rate) and the round-trip propagation time (windowed min RTT) and
// sets cwnd to a gain multiple of the estimated BDP. The PROBE_BW gain cycle
// produces the periodic pulses the paper's §5.2 studies; because this model
// is ACK-clocked rather than paced, the cycle gains are applied directly to
// the window: 2.6×BDP during the probe phase, a drain phase below cruise,
// and 2.05×BDP cruise otherwise (the "CWND gain" the fine-tuned handler in
// Table 2 captures).
type BBR struct {
	mode bbrMode

	// btlbw filter: windowed max of delivery-rate samples.
	bwSamples []bwSample
	// rtprop filter: windowed min of RTT samples.
	rtSamples []rtSample

	fullBWCount int
	fullBW      float64
	nextBWCheck time.Duration

	cycleIndex int
	cycleStamp time.Duration

	probeRTTDone time.Duration
	lastRTProbe  time.Duration
}

type bbrMode int

const (
	bbrStartup bbrMode = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

type bwSample struct {
	t  time.Duration
	bw float64
}

type rtSample struct {
	t   time.Duration
	rtt time.Duration
}

// BBR parameters.
const (
	bbrHighGain     = 2.885 // 2/ln(2), startup gain
	bbrCruiseGain   = 2.05  // steady cwnd gain over BDP
	bbrProbeGain    = 2.6   // pulse-up gain (1 of 8 phases)
	bbrDrainGain    = 1.55  // pulse-down gain (1 of 8 phases)
	bbrCycleLen     = 8
	bbrBWWindowRTTs = 10
	bbrRTWindow     = 10 * time.Second
	bbrProbeRTTTime = 200 * time.Millisecond
)

// Name implements Algorithm.
func (*BBR) Name() string { return "bbr" }

// Reset implements Algorithm.
func (b *BBR) Reset(s *State) {
	*b = BBR{mode: bbrStartup}
	// BBR ignores ssthresh; park it out of the way so the connection
	// never believes it is in slow start on BBR's behalf.
	s.Ssthresh = math.Inf(1)
}

// updateFilters feeds the windowed max-bandwidth and min-RTT estimators.
func (b *BBR) updateFilters(s *State) {
	if s.AckRate > 0 {
		b.bwSamples = append(b.bwSamples, bwSample{t: s.Now, bw: s.AckRate})
	}
	if s.LastRTT > 0 {
		b.rtSamples = append(b.rtSamples, rtSample{t: s.Now, rtt: s.LastRTT})
	}
	bwHorizon := time.Duration(float64(bbrBWWindowRTTs) * float64(b.rtprop()))
	if bwHorizon <= 0 {
		bwHorizon = time.Second
	}
	for len(b.bwSamples) > 1 && s.Now-b.bwSamples[0].t > bwHorizon {
		b.bwSamples = b.bwSamples[1:]
	}
	for len(b.rtSamples) > 1 && s.Now-b.rtSamples[0].t > bbrRTWindow {
		b.rtSamples = b.rtSamples[1:]
	}
}

// btlbw returns the current bottleneck-bandwidth estimate in bytes/sec.
func (b *BBR) btlbw() float64 {
	var mx float64
	for _, smp := range b.bwSamples {
		if smp.bw > mx {
			mx = smp.bw
		}
	}
	return mx
}

// rtprop returns the current propagation-delay estimate.
func (b *BBR) rtprop() time.Duration {
	var mn time.Duration
	for _, smp := range b.rtSamples {
		if mn == 0 || smp.rtt < mn {
			mn = smp.rtt
		}
	}
	return mn
}

// bdp returns the estimated bandwidth-delay product in bytes.
func (b *BBR) bdp() float64 {
	return b.btlbw() * b.rtprop().Seconds()
}

// OnAck implements Algorithm.
func (b *BBR) OnAck(s *State, acked float64) {
	b.updateFilters(s)
	bdp := b.bdp()
	if bdp <= 0 {
		SlowStart(s, acked)
		return
	}
	switch b.mode {
	case bbrStartup:
		s.Cwnd += acked // exponential growth while probing for bandwidth
		// Evaluate the bandwidth-plateau exit once per RTT: three
		// consecutive rounds without 25% growth means the pipe is full.
		if s.Now >= b.nextBWCheck {
			b.nextBWCheck = s.Now + b.rtprop()
			bw := b.btlbw()
			if bw > b.fullBW*1.25 {
				b.fullBW = bw
				b.fullBWCount = 0
			} else {
				b.fullBWCount++
				if b.fullBWCount >= 3 {
					b.mode = bbrDrain
				}
			}
		}
	case bbrDrain:
		target := bbrCruiseGain * bdp
		if s.InFlight <= target || s.Cwnd <= target {
			b.mode = bbrProbeBW
			b.cycleIndex = 0
			b.cycleStamp = s.Now
		}
		s.Cwnd = math.Max(target, 4*s.MSS)
	case bbrProbeBW:
		if s.Now-b.cycleStamp > b.rtprop() {
			b.cycleStamp = s.Now
			b.cycleIndex = (b.cycleIndex + 1) % bbrCycleLen
		}
		gain := bbrCruiseGain
		switch b.cycleIndex {
		case 0:
			gain = bbrProbeGain
		case 1:
			gain = bbrDrainGain
		}
		s.Cwnd = math.Max(gain*bdp, 4*s.MSS)
		// Enter PROBE_RTT if the rtprop estimate has gone stale.
		if b.lastRTProbe == 0 {
			b.lastRTProbe = s.Now
		}
		if s.Now-b.lastRTProbe > bbrRTWindow {
			b.mode = bbrProbeRTT
			b.probeRTTDone = s.Now + bbrProbeRTTTime
		}
	case bbrProbeRTT:
		s.Cwnd = 4 * s.MSS
		if s.Now >= b.probeRTTDone {
			b.lastRTProbe = s.Now
			b.mode = bbrProbeBW
			b.cycleStamp = s.Now
		}
	}
	s.InSlowStart = false
}

// OnLoss implements Algorithm.
func (b *BBR) OnLoss(s *State, timeout bool) {
	// BBRv1 does not react to individual losses with a multiplicative
	// decrease; on timeout it conservatively restarts.
	if timeout {
		s.Cwnd = 4 * s.MSS
	}
	s.Ssthresh = math.Inf(1)
}
