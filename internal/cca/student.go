package cca

import (
	"math"
	"time"
)

// The "student" CCAs stand in for the paper's graduate-networking-class
// dataset of 7 novel UDP-transport algorithms (50-150 lines of C++ each).
// Each is deliberately naive in a different way — constant windows, hard
// resets, rate trackers, delay dividers — so that, like the originals, they
// are Unknown to the classifier yet mostly land in Vegas/delay-DSL
// territory when synthesized (Table 2, Table 3, Figure 6).

func init() {
	Register("student1", func() Algorithm { return &StudentAIAD{} })
	Register("student2", func() Algorithm { return &StudentReset{} })
	Register("student3", func() Algorithm { return &StudentRate{} })
	Register("student4", func() Algorithm { return &StudentFixed{Pkts: 4} })
	Register("student5", func() Algorithm { return &StudentFixed{Pkts: 8} })
	Register("student6", func() Algorithm { return &StudentGradient{} })
	Register("student7", func() Algorithm { return &StudentAggressive{} })
}

// StudentAIAD increases additively until its queue estimate crosses a
// threshold, then decreases additively — producing the triangular pattern
// Figure 6a shows for student CCA #1.
type StudentAIAD struct {
	rising     bool
	nextUpdate time.Duration
}

// Name implements Algorithm.
func (*StudentAIAD) Name() string { return "student1" }

// Reset implements Algorithm.
func (a *StudentAIAD) Reset(*State) { a.rising = true; a.nextUpdate = 0 }

// OnAck implements Algorithm.
func (a *StudentAIAD) OnAck(s *State, acked float64) {
	if s.Now < a.nextUpdate {
		return
	}
	a.nextUpdate = s.Now + s.SRTT/4
	q := backlogPkts(s, s.LastRTT)
	if q > 12 {
		a.rising = false
	} else if q < 2 {
		a.rising = true
	}
	if a.rising {
		s.Cwnd += 2 * s.MSS
	} else {
		s.Cwnd = math.Max(s.Cwnd-2*s.MSS, 2*s.MSS)
	}
	s.InSlowStart = false
}

// OnLoss implements Algorithm.
func (a *StudentAIAD) OnLoss(s *State, timeout bool) {
	a.rising = false
	MultiplicativeDecrease(s, 0.8, timeout)
}

// StudentReset grows one MSS per ACK while the path looks uncongested and
// collapses to one MSS the moment its delay estimate crosses a threshold —
// the synthesized handler for student #2 captures exactly this
// grow-or-reset conditional.
type StudentReset struct{}

// Name implements Algorithm.
func (*StudentReset) Name() string { return "student2" }

// Reset implements Algorithm.
func (*StudentReset) Reset(*State) {}

// OnAck implements Algorithm.
func (*StudentReset) OnAck(s *State, acked float64) {
	if backlogPkts(s, s.LastRTT) < 5 {
		s.Cwnd += s.MSS * acked / s.MSS / 4 // 1 MSS per 4 ACKs
	} else {
		s.Cwnd = 2 * s.MSS
	}
	s.InSlowStart = false
}

// OnLoss implements Algorithm.
func (*StudentReset) OnLoss(s *State, timeout bool) {
	s.Ssthresh = math.Max(s.Cwnd/2, 2*s.MSS)
	s.Cwnd = 2 * s.MSS
}

// StudentRate pins the window to a fraction of the measured
// bandwidth-delay product: cwnd = 0.8 * ack-rate * minRTT, a crude
// delay-based rate tracker (student #3).
type StudentRate struct{}

// Name implements Algorithm.
func (*StudentRate) Name() string { return "student3" }

// Reset implements Algorithm.
func (*StudentRate) Reset(*State) {}

// OnAck implements Algorithm.
func (*StudentRate) OnAck(s *State, acked float64) {
	bdp := s.AckRate * s.MinRTT.Seconds()
	if bdp > 0 {
		s.Cwnd = math.Max(0.8*bdp, 2*s.MSS)
		s.InSlowStart = false
	} else {
		SlowStart(s, acked)
	}
}

// OnLoss implements Algorithm.
func (*StudentRate) OnLoss(s *State, timeout bool) {
	if timeout {
		s.Cwnd = 2 * s.MSS
	}
}

// StudentFixed holds a constant window of Pkts segments regardless of
// network feedback (students #4 and #5).
type StudentFixed struct {
	Pkts float64
}

// Name implements Algorithm.
func (f *StudentFixed) Name() string {
	if f.Pkts <= 4 {
		return "student4"
	}
	return "student5"
}

// Reset implements Algorithm.
func (*StudentFixed) Reset(*State) {}

// OnAck implements Algorithm.
func (f *StudentFixed) OnAck(s *State, acked float64) {
	s.Cwnd = f.Pkts * s.MSS
	s.InSlowStart = false
}

// OnLoss implements Algorithm.
func (f *StudentFixed) OnLoss(s *State, timeout bool) {
	s.Cwnd = f.Pkts * s.MSS
}

// StudentGradient divides an inflated window by a smoothed delay-gradient
// factor — growth while delay shrinks, sharp cuts while it grows
// (student #6, whose synthesized handler divides by the delay gradient).
type StudentGradient struct {
	factor     float64
	nextUpdate time.Duration
}

// Name implements Algorithm.
func (*StudentGradient) Name() string { return "student6" }

// Reset implements Algorithm.
func (g *StudentGradient) Reset(*State) { g.factor = 1; g.nextUpdate = 0 }

// OnAck implements Algorithm.
func (g *StudentGradient) OnAck(s *State, acked float64) {
	if s.Now < g.nextUpdate {
		return
	}
	g.nextUpdate = s.Now + s.SRTT/2
	if s.MinRTT > 0 {
		ratio := s.LastRTT.Seconds() / s.MinRTT.Seconds()
		g.factor = 0.75*g.factor + 0.25*ratio
	}
	div := math.Max(g.factor, 1)
	s.Cwnd = math.Max((s.Cwnd+6*s.MSS)/div, 2*s.MSS)
	s.InSlowStart = false
}

// OnLoss implements Algorithm.
func (g *StudentGradient) OnLoss(s *State, timeout bool) {
	MultiplicativeDecrease(s, 0.5, timeout)
}

// StudentAggressive is Reno at double speed — two MSS of growth per RTT —
// with a shallow 0.75 backoff (student #7, synthesized as
// CWND + 2*ACKed/RTT).
type StudentAggressive struct{}

// Name implements Algorithm.
func (*StudentAggressive) Name() string { return "student7" }

// Reset implements Algorithm.
func (*StudentAggressive) Reset(*State) {}

// OnAck implements Algorithm.
func (*StudentAggressive) OnAck(s *State, acked float64) {
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	s.Cwnd += 2 * s.MSS * acked / s.Cwnd
}

// OnLoss implements Algorithm.
func (*StudentAggressive) OnLoss(s *State, timeout bool) {
	MultiplicativeDecrease(s, 0.75, timeout)
}
