package cca

import (
	"math"
	"time"
)

func init() {
	Register("vegas", func() Algorithm { return &Vegas{} })
	Register("veno", func() Algorithm { return &Veno{} })
	Register("nv", func() Algorithm { return &NV{} })
	Register("yeah", func() Algorithm { return &YeAH{} })
	Register("illinois", func() Algorithm { return &Illinois{} })
}

// backlogPkts estimates the number of this flow's packets sitting in the
// bottleneck queue, Vegas's "diff": cwnd * (rtt - baseRTT) / rtt in packets.
func backlogPkts(s *State, rtt time.Duration) float64 {
	if rtt <= 0 || s.MinRTT <= 0 {
		return 0
	}
	return s.CwndPkts() * (rtt - s.MinRTT).Seconds() / rtt.Seconds()
}

// Vegas adjusts its window once per RTT by comparing the expected and actual
// sending rate: fewer than alpha packets queued -> +1 MSS/RTT, more than
// beta -> -1 MSS/RTT, else hold [Brakmo et al., SIGCOMM '94].
type Vegas struct {
	alpha, beta float64
	nextUpdate  time.Duration
	minRTTEpoch time.Duration // freshest RTT sample within the epoch
}

// Name implements Algorithm.
func (*Vegas) Name() string { return "vegas" }

// Reset implements Algorithm.
func (v *Vegas) Reset(*State) {
	v.alpha, v.beta = 2, 4
	v.nextUpdate = 0
	v.minRTTEpoch = 0
}

// OnAck implements Algorithm.
func (v *Vegas) OnAck(s *State, acked float64) {
	// Track the minimum RTT observed within this update epoch; Vegas uses
	// it as the per-RTT congestion estimate.
	if v.minRTTEpoch == 0 || s.LastRTT < v.minRTTEpoch {
		v.minRTTEpoch = s.LastRTT
	}
	if s.InSlowStart {
		// Vegas exits slow start early once a queue builds.
		if backlogPkts(s, s.LastRTT) > 1 {
			s.Ssthresh = math.Min(s.Ssthresh, s.Cwnd)
			s.InSlowStart = false
		} else {
			SlowStart(s, acked)
			return
		}
	}
	if s.Now < v.nextUpdate {
		return
	}
	v.nextUpdate = s.Now + s.SRTT
	diff := backlogPkts(s, v.minRTTEpoch)
	v.minRTTEpoch = 0
	switch {
	case diff < v.alpha:
		s.Cwnd += s.MSS
	case diff > v.beta:
		s.Cwnd = math.Max(s.Cwnd-s.MSS, 2*s.MSS)
	}
}

// OnLoss implements Algorithm.
func (*Vegas) OnLoss(s *State, timeout bool) {
	MultiplicativeDecrease(s, 0.5, timeout)
}

// Veno modulates Reno by the Vegas backlog estimate N: when the network is
// congested (N >= beta) the increase slows to every other ACK, and a loss
// with a small backlog is treated as random (gentler 0.8 decrease)
// [Fu & Liew, JSAC '03].
type Veno struct {
	beta    float64
	ackFlip bool
}

// Name implements Algorithm.
func (*Veno) Name() string { return "veno" }

// Reset implements Algorithm.
func (v *Veno) Reset(*State) { v.beta, v.ackFlip = 3, false }

// OnAck implements Algorithm.
func (v *Veno) OnAck(s *State, acked float64) {
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	if backlogPkts(s, s.LastRTT) < v.beta {
		RenoIncrease(s, acked)
		return
	}
	// Congestive region: half-rate additive increase.
	v.ackFlip = !v.ackFlip
	if v.ackFlip {
		RenoIncrease(s, acked)
	}
}

// OnLoss implements Algorithm.
func (v *Veno) OnLoss(s *State, timeout bool) {
	beta := 0.5
	if backlogPkts(s, s.LastRTT) < v.beta {
		beta = 0.8 // loss deemed random, not congestive
	}
	MultiplicativeDecrease(s, beta, timeout)
}

// NV ("New Vegas") uses the same fundamental logic as Vegas but measures
// congestion with an exponentially-weighted moving average of the RTT and
// updates at half the cadence [Brakmo, LPC '10]. The paper notes Abagnale
// synthesizes identical handlers for Vegas and NV.
type NV struct {
	alpha, beta float64
	avgRTT      time.Duration
	nextUpdate  time.Duration
}

// Name implements Algorithm.
func (*NV) Name() string { return "nv" }

// Reset implements Algorithm.
func (n *NV) Reset(*State) {
	n.alpha, n.beta = 2, 4
	n.avgRTT, n.nextUpdate = 0, 0
}

// OnAck implements Algorithm.
func (n *NV) OnAck(s *State, acked float64) {
	if n.avgRTT == 0 {
		n.avgRTT = s.LastRTT
	} else {
		n.avgRTT = (7*n.avgRTT + s.LastRTT) / 8
	}
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	if s.Now < n.nextUpdate {
		return
	}
	n.nextUpdate = s.Now + 2*s.SRTT // half Vegas's cadence
	diff := backlogPkts(s, n.avgRTT)
	switch {
	case diff < n.alpha:
		s.Cwnd += s.MSS
	case diff > n.beta:
		s.Cwnd = math.Max(s.Cwnd-s.MSS, 2*s.MSS)
	}
}

// OnLoss implements Algorithm.
func (*NV) OnLoss(s *State, timeout bool) {
	MultiplicativeDecrease(s, 0.5, timeout)
}

// YeAH runs in a "fast" Scalable-style mode while the estimated queue is
// small and falls back to Reno (with precautionary decongestion) once the
// queue exceeds its budget [Baiocchi et al., PFLDnet '07].
type YeAH struct {
	qMax       float64 // packets of queue tolerated before decongestion
	nextDecong time.Duration
}

// Name implements Algorithm.
func (*YeAH) Name() string { return "yeah" }

// Reset implements Algorithm.
func (y *YeAH) Reset(*State) { y.qMax, y.nextDecong = 8, 0 }

// OnAck implements Algorithm.
func (y *YeAH) OnAck(s *State, acked float64) {
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	q := backlogPkts(s, s.LastRTT)
	if q < y.qMax {
		// Fast mode: Scalable-style increase.
		div := math.Min(s.Cwnd, scalableAICnt*s.MSS)
		s.Cwnd += s.MSS * acked / div
		return
	}
	// Slow mode: Reno increase plus once-per-RTT precautionary
	// decongestion that drains the excess queue.
	RenoIncrease(s, acked)
	if s.Now >= y.nextDecong {
		y.nextDecong = s.Now + s.SRTT
		s.Cwnd = math.Max(s.Cwnd-(q-y.qMax/2)*s.MSS, 2*s.MSS)
	}
}

// OnLoss implements Algorithm.
func (y *YeAH) OnLoss(s *State, timeout bool) {
	// Decrease by the measured queue when meaningful, else by 1/2.
	q := backlogPkts(s, s.LastRTT)
	beta := 0.5
	if q > 0 && q*s.MSS < s.Cwnd/2 {
		beta = 1 - q*s.MSS/s.Cwnd
		beta = math.Min(math.Max(beta, 0.5), 0.875)
	}
	MultiplicativeDecrease(s, beta, timeout)
}

// Illinois scales both the additive increase alpha and the multiplicative
// decrease beta with the average queueing delay: large alpha/small beta when
// the path looks empty, small alpha/large beta near congestion
// [Liu, Basar & Srikant, '08].
type Illinois struct {
	da float64 // smoothed queueing delay, seconds
}

// Illinois parameters (defaults from the paper/kernel).
const (
	illAlphaMax = 10.0
	illAlphaMin = 0.3
	illBetaMin  = 0.125
	illBetaMax  = 0.5
)

// Name implements Algorithm.
func (*Illinois) Name() string { return "illinois" }

// Reset implements Algorithm.
func (il *Illinois) Reset(*State) { il.da = 0 }

// alphaBeta derives the AIMD parameters from current delay measurements.
func (il *Illinois) alphaBeta(s *State) (alpha, beta float64) {
	dm := (s.MaxRTT - s.MinRTT).Seconds()
	if dm <= 0 {
		return illAlphaMax, illBetaMin
	}
	d1 := 0.01 * dm
	da := il.da
	if da <= d1 {
		alpha = illAlphaMax
	} else {
		// Concave decrease k1/(k2+da) fitted to pass through
		// (d1, alphaMax) and (dm, alphaMin).
		k1 := (dm - d1) * illAlphaMin * illAlphaMax / (illAlphaMax - illAlphaMin)
		k2 := (dm-d1)*illAlphaMin/(illAlphaMax-illAlphaMin) - d1
		alpha = k1 / (k2 + da)
	}
	// Beta rises linearly from betaMin at 0.1dm to betaMax at 0.8dm.
	d2, d3 := 0.1*dm, 0.8*dm
	switch {
	case da <= d2:
		beta = illBetaMin
	case da >= d3:
		beta = illBetaMax
	default:
		beta = illBetaMin + (illBetaMax-illBetaMin)*(da-d2)/(d3-d2)
	}
	return alpha, beta
}

// OnAck implements Algorithm.
func (il *Illinois) OnAck(s *State, acked float64) {
	qd := (s.LastRTT - s.MinRTT).Seconds()
	il.da = 0.9*il.da + 0.1*qd
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	alpha, _ := il.alphaBeta(s)
	s.Cwnd += alpha * s.MSS * acked / s.Cwnd
}

// OnLoss implements Algorithm.
func (il *Illinois) OnLoss(s *State, timeout bool) {
	_, beta := il.alphaBeta(s)
	MultiplicativeDecrease(s, 1-beta, timeout)
}
