// Package cca implements the congestion control algorithms whose traces the
// Abagnale pipeline reverse-engineers: the 16 CCAs distributed with the Linux
// kernel plus 7 bespoke "student" CCAs standing in for the paper's
// graduate-networking-class dataset.
//
// Each algorithm manipulates a State owned by the simulated connection.
// Only window dynamics are modeled — the congestion-avoidance increase on
// ACK and the window/threshold reaction to loss — mirroring the paper's
// scope (the cwnd-on-ACK handler). Slow start, fast recovery bookkeeping,
// retransmission and RTT measurement live in the connection (internal/sim).
package cca

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// State is the congestion control state shared between the connection and
// the algorithm. The connection refreshes the measurement fields before each
// callback; the algorithm owns Cwnd and Ssthresh.
type State struct {
	// Cwnd is the congestion window in bytes.
	Cwnd float64
	// Ssthresh is the slow start threshold in bytes.
	Ssthresh float64
	// MSS is the maximum segment size in bytes.
	MSS float64

	// Now is the connection-relative current time.
	Now time.Duration
	// LastRTT is the most recent RTT sample.
	LastRTT time.Duration
	// SRTT is the smoothed RTT estimate.
	SRTT time.Duration
	// MinRTT and MaxRTT are the extreme RTT samples seen so far.
	MinRTT time.Duration
	MaxRTT time.Duration
	// AckRate is the recent delivery rate estimate in bytes/second.
	AckRate float64
	// InFlight is the number of un-ACKed bytes outstanding.
	InFlight float64
	// LastLoss is the time of the most recent loss event (zero before any
	// loss).
	LastLoss time.Duration
	// LossCount counts loss events so far.
	LossCount int
	// InSlowStart reports whether the connection considers itself in slow
	// start (Cwnd < Ssthresh).
	InSlowStart bool
}

// TimeSinceLoss returns the elapsed time since the last loss event, or the
// connection age if no loss has occurred.
func (s *State) TimeSinceLoss() time.Duration {
	return s.Now - s.LastLoss
}

// CwndPkts returns the window in MSS units.
func (s *State) CwndPkts() float64 { return s.Cwnd / s.MSS }

// SetCwndPkts sets the window from MSS units, clamped to at least 2 MSS.
func (s *State) SetCwndPkts(pkts float64) {
	if pkts < 2 {
		pkts = 2
	}
	s.Cwnd = pkts * s.MSS
}

// Algorithm is a pluggable congestion control algorithm.
type Algorithm interface {
	// Name returns the algorithm's canonical (lower-case) name.
	Name() string
	// Reset initializes algorithm-private state at connection start.
	Reset(s *State)
	// OnAck is invoked for every ACK that newly acknowledges acked bytes,
	// during both slow start and congestion avoidance. Implementations
	// typically call SlowStart when s.InSlowStart and otherwise run their
	// congestion-avoidance increase.
	OnAck(s *State, acked float64)
	// OnLoss is invoked once per loss event (triple-dup-ACK when
	// timeout=false, retransmission timeout when timeout=true). It must
	// update Ssthresh and Cwnd.
	OnLoss(s *State, timeout bool)
}

// SlowStart performs the standard exponential increase: one MSS of window
// per MSS acknowledged, never growing past Ssthresh by more than acked.
func SlowStart(s *State, acked float64) {
	s.Cwnd += acked
	if s.Cwnd > s.Ssthresh {
		s.Cwnd = s.Ssthresh + acked
	}
}

// RenoIncrease performs Reno's congestion-avoidance increase: cwnd grows by
// one MSS per RTT, i.e. mss*acked/cwnd per ACK.
func RenoIncrease(s *State, acked float64) {
	s.Cwnd += s.MSS * acked / s.Cwnd
}

// MultiplicativeDecrease applies the classic loss reaction: ssthresh =
// beta*cwnd (floored at 2 MSS); on timeout the window restarts at 2 MSS,
// otherwise it deflates to ssthresh (fast recovery).
func MultiplicativeDecrease(s *State, beta float64, timeout bool) {
	s.Ssthresh = math.Max(beta*s.Cwnd, 2*s.MSS)
	if timeout {
		s.Cwnd = 2 * s.MSS
	} else {
		s.Cwnd = s.Ssthresh
	}
}

// factories maps registered algorithm names to constructors.
var factories = map[string]func() Algorithm{}

// Register makes a constructor available to New. It panics on duplicate
// names (a programming error).
func Register(name string, f func() Algorithm) {
	if _, dup := factories[name]; dup {
		panic("cca: duplicate registration of " + name)
	}
	factories[name] = f
}

// New constructs a fresh instance of the named algorithm.
func New(name string) (Algorithm, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("cca: unknown algorithm %q", name)
	}
	return f(), nil
}

// Names returns all registered algorithm names, sorted.
func Names() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// KernelNames returns the names of the 16 Linux-kernel CCAs, in the order
// the paper lists them.
func KernelNames() []string {
	return []string{
		"bbr", "cubic", "vegas", "reno", "bic", "cdg", "highspeed", "htcp",
		"hybla", "illinois", "lp", "nv", "scalable", "veno", "westwood", "yeah",
	}
}

// StudentNames returns the names of the 7 bespoke class-project CCAs.
func StudentNames() []string {
	return []string{
		"student1", "student2", "student3", "student4", "student5",
		"student6", "student7",
	}
}
