package cca

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

const mss = 1448.0

// newState builds a congestion-avoidance state with sane measurements.
func newState() *State {
	return &State{
		Cwnd:     20 * mss,
		Ssthresh: 10 * mss, // below cwnd: congestion avoidance
		MSS:      mss,
		Now:      5 * time.Second,
		LastRTT:  50 * time.Millisecond,
		SRTT:     50 * time.Millisecond,
		MinRTT:   40 * time.Millisecond,
		MaxRTT:   80 * time.Millisecond,
		AckRate:  1e6,
		InFlight: 18 * mss,
		LastLoss: 2 * time.Second,
	}
}

func TestRegistryHasAllAlgorithms(t *testing.T) {
	want := append(KernelNames(), StudentNames()...)
	if len(want) != 23 {
		t.Fatalf("expected 23 algorithm names, got %d", len(want))
	}
	for _, name := range want {
		a, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if a.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
	}
	if len(Names()) != 23 {
		t.Errorf("Names() has %d entries, want 23", len(Names()))
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("quantum-tcp"); err == nil {
		t.Error("New accepted an unknown algorithm")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("reno", func() Algorithm { return &Reno{} })
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	s := newState()
	s.Cwnd = 4 * mss
	s.Ssthresh = 100 * mss
	s.InSlowStart = true
	a, _ := New("reno")
	a.Reset(s)
	// One window's worth of ACKs should double the window.
	for i := 0; i < 4; i++ {
		a.OnAck(s, mss)
	}
	if got := s.Cwnd / mss; math.Abs(got-8) > 0.01 {
		t.Errorf("after 1 RTT of slow start cwnd = %.2f pkts, want 8", got)
	}
}

func TestRenoAdditiveIncrease(t *testing.T) {
	s := newState()
	a, _ := New("reno")
	a.Reset(s)
	start := s.Cwnd
	// One full window of ACKs = one RTT => +1 MSS.
	n := int(s.Cwnd / mss)
	for i := 0; i < n; i++ {
		a.OnAck(s, mss)
	}
	if got := (s.Cwnd - start) / mss; math.Abs(got-1) > 0.05 {
		t.Errorf("Reno grew %.3f MSS per RTT, want 1", got)
	}
}

func TestRenoHalvesOnLoss(t *testing.T) {
	s := newState()
	a, _ := New("reno")
	a.Reset(s)
	a.OnLoss(s, false)
	if math.Abs(s.Cwnd-10*mss) > 1 {
		t.Errorf("cwnd after loss = %.0f, want %.0f", s.Cwnd, 10*mss)
	}
	if s.Ssthresh != s.Cwnd {
		t.Errorf("ssthresh = %.0f, want = cwnd", s.Ssthresh)
	}
}

func TestTimeoutResetsWindow(t *testing.T) {
	for _, name := range []string{"reno", "cubic", "westwood", "vegas", "htcp"} {
		s := newState()
		a, _ := New(name)
		a.Reset(s)
		a.OnLoss(s, true)
		if s.Cwnd > 2*mss+1 {
			t.Errorf("%s: cwnd after timeout = %.0f, want <= 2 MSS", name, s.Cwnd)
		}
	}
}

func TestScalableMatchesRenoAtSmallWindows(t *testing.T) {
	s1, s2 := newState(), newState()
	r, _ := New("reno")
	sc, _ := New("scalable")
	r.Reset(s1)
	sc.Reset(s2)
	r.OnAck(s1, mss)
	sc.OnAck(s2, mss)
	if math.Abs(s1.Cwnd-s2.Cwnd) > 0.001 {
		t.Errorf("below 100 pkts Scalable (%.3f) != Reno (%.3f)", s2.Cwnd, s1.Cwnd)
	}
}

func TestScalableProportionalAtLargeWindows(t *testing.T) {
	s := newState()
	s.Cwnd = 400 * mss
	sc, _ := New("scalable")
	sc.Reset(s)
	before := s.Cwnd
	sc.OnAck(s, mss)
	// Growth divisor capped at 100 packets: increase = mss/100 per MSS acked.
	want := mss / 100
	if got := s.Cwnd - before; math.Abs(got-want) > 0.001 {
		t.Errorf("scalable increase = %.3f, want %.3f", got, want)
	}
}

func TestScalableGentleDecrease(t *testing.T) {
	s := newState()
	sc, _ := New("scalable")
	sc.Reset(s)
	sc.OnLoss(s, false)
	if math.Abs(s.Cwnd-0.875*20*mss) > 1 {
		t.Errorf("scalable post-loss cwnd = %.0f, want 7/8 of 20 MSS", s.Cwnd)
	}
}

func TestWestwoodSetsBDPOnLoss(t *testing.T) {
	s := newState()
	w, _ := New("westwood")
	w.Reset(s)
	// Feed acks so the bandwidth filter converges to AckRate = 1e6 B/s.
	for i := 0; i < 200; i++ {
		w.OnAck(s, mss)
	}
	w.OnLoss(s, false)
	bdp := 1e6 * s.MinRTT.Seconds()
	if math.Abs(s.Ssthresh-bdp)/bdp > 0.05 {
		t.Errorf("westwood ssthresh = %.0f, want ~BDP %.0f", s.Ssthresh, bdp)
	}
}

func TestHyblaScalesWithRTT(t *testing.T) {
	grow := func(rtt time.Duration) float64 {
		s := newState()
		s.SRTT, s.LastRTT = rtt, rtt
		h, _ := New("hybla")
		h.Reset(s)
		before := s.Cwnd
		h.OnAck(s, mss)
		return s.Cwnd - before
	}
	fast := grow(25 * time.Millisecond)
	slow := grow(100 * time.Millisecond)
	if slow <= fast {
		t.Errorf("hybla growth at 100ms (%.2f) not larger than at 25ms (%.2f)", slow, fast)
	}
	// rho=4 at 100ms: per-ack increase should be ~16x the reference.
	if ratio := slow / fast; math.Abs(ratio-16) > 0.5 {
		t.Errorf("hybla growth ratio = %.1f, want ~16", ratio)
	}
}

func TestHTCPAlphaGrowsWithTimeSinceLoss(t *testing.T) {
	if a := htcpAlpha(0.5); a != 1 {
		t.Errorf("alpha(0.5s) = %v, want 1 (low-speed regime)", a)
	}
	a2, a5 := htcpAlpha(2), htcpAlpha(5)
	if !(a2 > 1 && a5 > a2) {
		t.Errorf("alpha not increasing: alpha(2)=%v alpha(5)=%v", a2, a5)
	}
	if want := 1 + 10*1 + 0.25*1; math.Abs(a2-want) > 1e-9 {
		t.Errorf("alpha(2) = %v, want %v", a2, want)
	}
}

func TestHTCPAdaptiveBeta(t *testing.T) {
	s := newState()
	s.MinRTT, s.MaxRTT = 40*time.Millisecond, 60*time.Millisecond
	h, _ := New("htcp")
	h.Reset(s)
	h.OnLoss(s, false)
	// beta = 40/60 = 0.667 within [0.5, 0.8]
	if got := s.Cwnd / (20 * mss); math.Abs(got-2.0/3) > 0.01 {
		t.Errorf("htcp beta = %.3f, want 0.667", got)
	}
}

func TestVegasHoldsInBand(t *testing.T) {
	s := newState()
	v, _ := New("vegas")
	v.Reset(s)
	// backlog = cwnd_pkts*(rtt-min)/rtt = 20*(10/50) = 4 -> within [2,4]: hold
	before := s.Cwnd
	v.OnAck(s, mss)
	if s.Cwnd != before {
		t.Errorf("vegas changed cwnd inside band: %.1f -> %.1f", before, s.Cwnd)
	}
}

func TestVegasIncreasesWhenQueueEmpty(t *testing.T) {
	s := newState()
	s.LastRTT = 41 * time.Millisecond // backlog ~0.5 pkt < alpha
	v, _ := New("vegas")
	v.Reset(s)
	before := s.Cwnd
	v.OnAck(s, mss)
	if s.Cwnd != before+mss {
		t.Errorf("vegas increase = %.1f, want +1 MSS", s.Cwnd-before)
	}
}

func TestVegasDecreasesWhenQueueFull(t *testing.T) {
	s := newState()
	s.LastRTT = 80 * time.Millisecond // backlog = 20*40/80 = 10 > beta
	v, _ := New("vegas")
	v.Reset(s)
	before := s.Cwnd
	v.OnAck(s, mss)
	if s.Cwnd != before-mss {
		t.Errorf("vegas decrease = %.1f, want -1 MSS", s.Cwnd-before)
	}
}

func TestVegasOncePerRTT(t *testing.T) {
	s := newState()
	s.LastRTT = 41 * time.Millisecond
	v, _ := New("vegas")
	v.Reset(s)
	v.OnAck(s, mss)
	after := s.Cwnd
	v.OnAck(s, mss) // same instant: epoch not elapsed
	if s.Cwnd != after {
		t.Error("vegas updated twice within one RTT")
	}
}

func TestVenoSlowsWhenCongested(t *testing.T) {
	// Uncongested: full Reno rate.
	s := newState()
	s.LastRTT = 41 * time.Millisecond
	v, _ := New("veno")
	v.Reset(s)
	before := s.Cwnd
	v.OnAck(s, mss)
	v.OnAck(s, mss)
	uncongested := s.Cwnd - before

	// Congested: half rate.
	s2 := newState()
	s2.LastRTT = 80 * time.Millisecond
	v2, _ := New("veno")
	v2.Reset(s2)
	before2 := s2.Cwnd
	v2.OnAck(s2, mss)
	v2.OnAck(s2, mss)
	congested := s2.Cwnd - before2
	if congested >= uncongested {
		t.Errorf("veno congested growth %.2f >= uncongested %.2f", congested, uncongested)
	}
}

func TestVenoRandomLossGentle(t *testing.T) {
	s := newState()
	s.LastRTT = 41 * time.Millisecond // small backlog: random loss
	v, _ := New("veno")
	v.Reset(s)
	v.OnLoss(s, false)
	if math.Abs(s.Cwnd-0.8*20*mss) > 1 {
		t.Errorf("veno random-loss cwnd = %.0f, want 0.8x", s.Cwnd)
	}
}

func TestCubicConvergesToWmax(t *testing.T) {
	s := newState()
	c := &Cubic{}
	c.Reset(s)
	c.OnLoss(s, false) // wmax = 20 pkts, cwnd -> 14
	// Run 4 simulated seconds of ACK clocking.
	for now := s.Now; s.Now < now+4*time.Second; s.Now += 10 * time.Millisecond {
		c.OnAck(s, mss)
	}
	// Should have recovered to (and passed) wmax.
	if s.CwndPkts() < 20 {
		t.Errorf("cubic cwnd = %.1f pkts after 4s, want >= wmax 20", s.CwndPkts())
	}
}

func TestCubicDecrease(t *testing.T) {
	s := newState()
	c := &Cubic{}
	c.Reset(s)
	c.OnLoss(s, false)
	if math.Abs(s.Cwnd-cubicBeta*20*mss) > 1 {
		t.Errorf("cubic post-loss cwnd = %.0f, want 0.7x", s.Cwnd)
	}
}

func TestBICBinarySearchFastThenSlow(t *testing.T) {
	s := newState()
	b := &BIC{}
	b.Reset(s)
	b.OnLoss(s, false) // wmax=20, cwnd=16
	// First ACK: far from wmax -> big increment; as cwnd nears wmax the
	// per-ack increment shrinks.
	before := s.Cwnd
	b.OnAck(s, mss)
	firstInc := s.Cwnd - before
	s.Cwnd = 19.9 * mss
	before = s.Cwnd
	b.OnAck(s, mss)
	lateInc := s.Cwnd - before
	if lateInc >= firstInc {
		t.Errorf("BIC increment did not shrink near wmax: %.2f -> %.2f", firstInc, lateInc)
	}
}

func TestHighSpeedResponseFunction(t *testing.T) {
	if a := hsA(30); a != 1 {
		t.Errorf("a(30) = %v, want 1 (Reno regime)", a)
	}
	if b := hsB(30); b != 0.5 {
		t.Errorf("b(30) = %v, want 0.5", b)
	}
	// a grows with w, b falls with w.
	if !(hsA(1000) > hsA(100)) {
		t.Error("a(w) not increasing")
	}
	if !(hsB(1000) < hsB(100)) {
		t.Error("b(w) not decreasing")
	}
	// At the calibration point w=83000, b = 0.1.
	if b := hsB(hsHighWindow); math.Abs(b-0.1) > 1e-9 {
		t.Errorf("b(83000) = %v, want 0.1", b)
	}
}

func TestIllinoisAlphaBetaBounds(t *testing.T) {
	s := newState()
	il := &Illinois{}
	il.Reset(s)
	// No queueing delay -> max alpha, min beta.
	il.da = 0
	a, b := il.alphaBeta(s)
	if a != illAlphaMax || b != illBetaMin {
		t.Errorf("empty-queue alpha,beta = %v,%v", a, b)
	}
	// Saturated delay -> min alpha, max beta.
	il.da = (s.MaxRTT - s.MinRTT).Seconds()
	a, b = il.alphaBeta(s)
	if a > illAlphaMin*1.05 || math.Abs(b-illBetaMax) > 1e-9 {
		t.Errorf("full-queue alpha,beta = %v,%v", a, b)
	}
}

func TestLPBacksOffOnDelay(t *testing.T) {
	s := newState()
	lp := &LP{}
	lp.Reset(s)
	s.LastRTT = 80 * time.Millisecond // persistent high delay
	for i := 0; i < 50; i++ {
		s.Now += time.Millisecond
		lp.OnAck(s, mss)
	}
	if s.Cwnd >= 20*mss {
		t.Errorf("LP never backed off under high delay: cwnd = %.1f pkts", s.CwndPkts())
	}
}

func TestBBRConvergesToCruiseGain(t *testing.T) {
	s := newState()
	b := &BBR{}
	b.Reset(s)
	if !math.IsInf(s.Ssthresh, 1) {
		t.Fatal("BBR did not park ssthresh")
	}
	// Feed steady samples: 1e6 B/s, 40ms floor.
	for i := 0; i < 3000; i++ {
		s.Now += 5 * time.Millisecond
		s.LastRTT = 40 * time.Millisecond
		s.AckRate = 1e6
		s.InFlight = s.Cwnd * 0.9
		b.OnAck(s, mss)
	}
	bdp := 1e6 * 0.040
	gain := s.Cwnd / bdp
	if gain < 1.5 || gain > 2.7 {
		t.Errorf("BBR cwnd gain over BDP = %.2f, want within [1.55, 2.6] cycle", gain)
	}
}

func TestBBRPulses(t *testing.T) {
	s := newState()
	b := &BBR{}
	b.Reset(s)
	seen := map[int]bool{}
	var lo, hi float64 = math.Inf(1), 0
	for i := 0; i < 4000; i++ {
		s.Now += 5 * time.Millisecond
		s.LastRTT = 40 * time.Millisecond
		s.AckRate = 1e6
		s.InFlight = s.Cwnd * 0.9
		b.OnAck(s, mss)
		if b.mode == bbrProbeBW {
			seen[b.cycleIndex] = true
			if s.Cwnd < lo {
				lo = s.Cwnd
			}
			if s.Cwnd > hi {
				hi = s.Cwnd
			}
		}
	}
	if len(seen) != bbrCycleLen {
		t.Errorf("BBR visited %d cycle phases, want %d", len(seen), bbrCycleLen)
	}
	if hi/lo < 1.3 {
		t.Errorf("BBR pulse ratio = %.2f, want >= 2.6/1.55", hi/lo)
	}
}

func TestStudentFixedHoldsWindow(t *testing.T) {
	for name, want := range map[string]float64{"student4": 4, "student5": 8} {
		s := newState()
		a, _ := New(name)
		a.Reset(s)
		a.OnAck(s, mss)
		if s.CwndPkts() != want {
			t.Errorf("%s cwnd = %.0f pkts, want %.0f", name, s.CwndPkts(), want)
		}
		a.OnLoss(s, true)
		if s.CwndPkts() != want {
			t.Errorf("%s post-loss cwnd = %.0f pkts, want %.0f", name, s.CwndPkts(), want)
		}
	}
}

func TestStudentResetCollapses(t *testing.T) {
	s := newState()
	s.LastRTT = 80 * time.Millisecond // backlog 10 >= 5
	a, _ := New("student2")
	a.Reset(s)
	a.OnAck(s, mss)
	if s.Cwnd != 2*mss {
		t.Errorf("student2 did not reset: cwnd = %.1f pkts", s.CwndPkts())
	}
}

func TestStudentRateTracksBDP(t *testing.T) {
	s := newState()
	a, _ := New("student3")
	a.Reset(s)
	a.OnAck(s, mss)
	want := 0.8 * 1e6 * 0.040
	if math.Abs(s.Cwnd-want) > 1 {
		t.Errorf("student3 cwnd = %.0f, want %.0f", s.Cwnd, want)
	}
}

func TestStudentAIADTriangle(t *testing.T) {
	s := newState()
	a, _ := New("student1")
	a.Reset(s)
	var dirChanges int
	prevDelta := 0.0
	for i := 0; i < 400; i++ {
		s.Now += 15 * time.Millisecond
		// Queue estimate follows the window (bigger window -> more queue).
		queueFrac := (s.CwndPkts() - 10) / 20
		s.LastRTT = s.MinRTT + time.Duration(math.Max(queueFrac, 0)*float64(60*time.Millisecond))
		before := s.Cwnd
		a.OnAck(s, mss)
		delta := s.Cwnd - before
		if delta != 0 && prevDelta != 0 && math.Signbit(delta) != math.Signbit(prevDelta) {
			dirChanges++
		}
		if delta != 0 {
			prevDelta = delta
		}
	}
	if dirChanges < 3 {
		t.Errorf("student1 direction changes = %d, want oscillation (>= 3)", dirChanges)
	}
}

func TestCDGDeterministicWithSeed(t *testing.T) {
	run := func() float64 {
		s := newState()
		c := NewCDG(7)
		c.Reset(s)
		for i := 0; i < 500; i++ {
			s.Now += 10 * time.Millisecond
			s.LastRTT = s.MinRTT + time.Duration(i%40)*time.Millisecond
			c.OnAck(s, mss)
		}
		return s.Cwnd
	}
	if run() != run() {
		t.Error("CDG with identical seeds diverged")
	}
}

func TestCDGBacksOffOnRisingDelay(t *testing.T) {
	s := newState()
	c := NewCDG(42)
	c.Reset(s)
	var reno float64
	{
		s2 := newState()
		r, _ := New("reno")
		r.Reset(s2)
		for i := 0; i < 400; i++ {
			s2.Now += 10 * time.Millisecond
			r.OnAck(s2, mss)
		}
		reno = s2.Cwnd
	}
	for i := 0; i < 400; i++ {
		s.Now += 10 * time.Millisecond
		s.LastRTT = s.MinRTT + time.Duration(i)*time.Millisecond/2 // steadily rising
		c.OnAck(s, mss)
	}
	if s.Cwnd >= reno {
		t.Errorf("CDG under rising delay (%.0f) >= Reno (%.0f)", s.Cwnd, reno)
	}
}

// Property: a single loss event never shrinks the window below the 2-MSS
// floor — algorithms that back off clamp there, and algorithms that leave
// the window alone on fast loss (BBR, Westwood's min, rate-based student3)
// cannot be forced under it by a degenerate sub-floor starting window —
// and ssthresh lands at a finite positive value or +Inf (BBR).
func TestQuickLossLeavesUsableWindow(t *testing.T) {
	names := append(KernelNames(), StudentNames()...)
	f := func(cwndPkts uint8, timeout bool, nameIdx uint8) bool {
		name := names[int(nameIdx)%len(names)]
		s := newState()
		s.Cwnd = math.Max(float64(cwndPkts), 1) * mss
		floor := math.Min(2*mss, s.Cwnd)
		a, _ := New(name)
		a.Reset(s)
		a.OnLoss(s, timeout)
		if s.Cwnd < floor-1e-9 || math.IsNaN(s.Cwnd) {
			return false
		}
		return s.Ssthresh >= 2*mss-1e-9 || math.IsInf(s.Ssthresh, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: one ACK never moves the window by more than the slow-start
// bound (acked bytes) for the loss-based family in congestion avoidance.
func TestQuickBoundedPerAckGrowth(t *testing.T) {
	f := func(cwndPkts uint8) bool {
		pkts := math.Max(float64(cwndPkts), 4)
		for _, name := range []string{"reno", "scalable", "westwood", "veno"} {
			s := newState()
			s.Cwnd = pkts * mss
			a, _ := New(name)
			a.Reset(s)
			before := s.Cwnd
			a.OnAck(s, mss)
			if s.Cwnd-before > mss+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeSinceLoss(t *testing.T) {
	s := newState()
	if got := s.TimeSinceLoss(); got != 3*time.Second {
		t.Errorf("TimeSinceLoss = %v, want 3s", got)
	}
}

func TestSetCwndPktsClamps(t *testing.T) {
	s := newState()
	s.SetCwndPkts(0.5)
	if s.CwndPkts() != 2 {
		t.Errorf("SetCwndPkts(0.5) -> %v pkts, want clamp to 2", s.CwndPkts())
	}
}
