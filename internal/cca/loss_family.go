package cca

import (
	"math"
	"math/rand"
	"time"
)

func init() {
	Register("cubic", func() Algorithm { return &Cubic{} })
	Register("bic", func() Algorithm { return &BIC{} })
	Register("htcp", func() Algorithm { return &HTCP{} })
	Register("highspeed", func() Algorithm { return &HighSpeed{} })
	Register("cdg", func() Algorithm { return NewCDG(1) })
}

// Cubic grows the window as a cubic function of the time since the last
// loss, with the plateau anchored at the pre-loss window wmax
// [Ha, Rhee & Xu, '08].
type Cubic struct {
	wmax       float64 // window (packets) at last loss
	epochStart time.Duration
	k          float64 // seconds to return to wmax
	wEst       float64 // Reno-friendly estimate, packets
}

// Cubic constants: C in packets/sec^3 and the multiplicative decrease.
const (
	cubicC    = 0.4
	cubicBeta = 0.7 // kernel's 717/1024
)

// Name implements Algorithm.
func (*Cubic) Name() string { return "cubic" }

// Reset implements Algorithm.
func (c *Cubic) Reset(*State) {
	c.wmax, c.epochStart, c.k, c.wEst = 0, -1, 0, 0
}

// OnAck implements Algorithm.
func (c *Cubic) OnAck(s *State, acked float64) {
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	if c.epochStart < 0 {
		// First congestion-avoidance ACK of this epoch.
		c.epochStart = s.Now
		cw := s.CwndPkts()
		if c.wmax < cw {
			c.wmax = cw
		}
		c.k = math.Cbrt(c.wmax * (1 - cubicBeta) / cubicC)
		c.wEst = cw
	}
	t := (s.Now - c.epochStart).Seconds()
	target := c.wmax + cubicC*math.Pow(t-c.k, 3)
	cw := s.CwndPkts()
	if target > cw {
		s.Cwnd += (target - cw) / cw * s.MSS * (acked / s.MSS)
	} else {
		s.Cwnd += 0.01 * s.MSS * acked / s.Cwnd // minimal growth near plateau
	}
	// TCP friendliness: never slower than an equivalent Reno flow.
	c.friendly(s, acked)
}

// friendly tracks the window an AIMD(1, 0.5)-equivalent flow would have and
// floors cubic's window at it.
func (c *Cubic) friendly(s *State, acked float64) {
	// Reno-equivalent growth with cubic's beta: alpha = 3(1-b)/(1+b).
	alpha := 3 * (1 - cubicBeta) / (1 + cubicBeta)
	c.wEst += alpha * (acked / s.MSS) / c.wEst
	if c.wEst*s.MSS > s.Cwnd {
		s.Cwnd = c.wEst * s.MSS
	}
}

// OnLoss implements Algorithm.
func (c *Cubic) OnLoss(s *State, timeout bool) {
	cw := s.CwndPkts()
	if cw < c.wmax {
		// Fast convergence: release bandwidth faster when the loss
		// happened below the previous plateau.
		c.wmax = cw * (2 - cubicBeta) / 2
	} else {
		c.wmax = cw
	}
	c.epochStart = -1
	MultiplicativeDecrease(s, cubicBeta, timeout)
}

// BIC performs a binary search between the current window and the window at
// the last loss, switching to linear "max probing" above it
// [Xu, Harfoush & Rhee, INFOCOM '04].
type BIC struct {
	wmax float64 // packets
}

// BIC parameters (kernel defaults, packets).
const (
	bicSMax = 16.0 // max increment per RTT
	bicSMin = 0.01 // min increment per RTT
	bicBeta = 0.8  // 819/1024
)

// Name implements Algorithm.
func (*BIC) Name() string { return "bic" }

// Reset implements Algorithm.
func (b *BIC) Reset(*State) { b.wmax = 0 }

// OnAck implements Algorithm.
func (b *BIC) OnAck(s *State, acked float64) {
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	cw := s.CwndPkts()
	if b.wmax == 0 {
		b.wmax = cw
	}
	var inc float64 // packets per RTT
	if cw < b.wmax {
		// Binary search toward the midpoint.
		inc = (b.wmax - cw) / 2
	} else {
		// Max probing: slow-start-like departure from wmax.
		inc = cw - b.wmax + 1
	}
	inc = math.Min(math.Max(inc, bicSMin), bicSMax)
	s.Cwnd += inc * s.MSS * acked / s.Cwnd
}

// OnLoss implements Algorithm.
func (b *BIC) OnLoss(s *State, timeout bool) {
	cw := s.CwndPkts()
	if cw < b.wmax {
		b.wmax = cw * (2 - (1 - bicBeta)) / 2 // fast convergence
	} else {
		b.wmax = cw
	}
	MultiplicativeDecrease(s, bicBeta, timeout)
}

// HTCP scales its additive increase with the time elapsed since the last
// loss and adapts its backoff to the RTT spread [Leith & Shorten, '04].
type HTCP struct{}

// htcpDeltaL is H-TCP's low-speed threshold: below one second since the
// last loss the increase is Reno's.
const htcpDeltaL = 1.0 // seconds

// Name implements Algorithm.
func (*HTCP) Name() string { return "htcp" }

// Reset implements Algorithm.
func (*HTCP) Reset(*State) {}

// alpha returns H-TCP's increase factor for delta seconds since last loss.
func htcpAlpha(delta float64) float64 {
	if delta <= htcpDeltaL {
		return 1
	}
	d := delta - htcpDeltaL
	return 1 + 10*d + 0.25*d*d
}

// OnAck implements Algorithm.
func (*HTCP) OnAck(s *State, acked float64) {
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	alpha := htcpAlpha(s.TimeSinceLoss().Seconds())
	s.Cwnd += alpha * s.MSS * acked / s.Cwnd
}

// OnLoss implements Algorithm.
func (*HTCP) OnLoss(s *State, timeout bool) {
	// Adaptive backoff: beta = minRTT/maxRTT clamped to [0.5, 0.8].
	beta := 0.5
	if s.MaxRTT > 0 {
		beta = s.MinRTT.Seconds() / s.MaxRTT.Seconds()
		beta = math.Min(math.Max(beta, 0.5), 0.8)
	}
	MultiplicativeDecrease(s, beta, timeout)
}

// HighSpeed implements RFC 3649's HighSpeed response function. Rather than
// embedding the kernel's 73-row lookup table we evaluate the RFC's defining
// formulas directly: the same a(w)/b(w) values the table discretizes.
type HighSpeed struct{}

// RFC 3649 parameters.
const (
	hsLowWindow  = 38.0    // packets: below this, behave as Reno
	hsHighWindow = 83000.0 // packets at the high end of the response curve
	hsHighP      = 1e-7    // drop rate at HighWindow
	hsHighDecr   = 0.1     // b(HighWindow)
)

// Name implements Algorithm.
func (*HighSpeed) Name() string { return "highspeed" }

// Reset implements Algorithm.
func (*HighSpeed) Reset(*State) {}

// hsB computes RFC 3649's b(w) by log-linear interpolation between
// (LowWindow, 0.5) and (HighWindow, HighDecrease).
func hsB(w float64) float64 {
	if w <= hsLowWindow {
		return 0.5
	}
	frac := (math.Log(w) - math.Log(hsLowWindow)) /
		(math.Log(hsHighWindow) - math.Log(hsLowWindow))
	return (hsHighDecr-0.5)*frac + 0.5
}

// hsA computes RFC 3649's a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w)), with
// the response function p(w) = 0.078 / w^1.2.
func hsA(w float64) float64 {
	if w <= hsLowWindow {
		return 1
	}
	p := 0.078 / math.Pow(w, 1.2)
	b := hsB(w)
	return math.Max(w*w*p*2*b/(2-b), 1)
}

// OnAck implements Algorithm.
func (*HighSpeed) OnAck(s *State, acked float64) {
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	a := hsA(s.CwndPkts())
	s.Cwnd += a * s.MSS * acked / s.Cwnd
}

// OnLoss implements Algorithm.
func (*HighSpeed) OnLoss(s *State, timeout bool) {
	b := hsB(s.CwndPkts())
	MultiplicativeDecrease(s, 1-b, timeout)
}

// CDG backs off probabilistically on positive delay gradients: the larger
// the RTT growth per RTT, the more likely a 0.7 multiplicative decrease
// [Hayes & Armitage, '11]. CDG's use of randomness puts it outside
// Abagnale's DSL — it exists here as a trace-generating substrate only.
type CDG struct {
	rng      *rand.Rand
	prevMin  time.Duration
	gradient float64 // smoothed d(minRTT)/dRTT, seconds
	nextEval time.Duration
	epochMin time.Duration
	lastDecr time.Duration
}

// cdgG is the scaling parameter G in the backoff probability
// 1 - exp(-gradient/G).
const cdgG = 3 * time.Millisecond

// NewCDG builds a CDG instance with a deterministic seed (CDG is the one
// randomized CCA; seeding keeps simulations reproducible).
func NewCDG(seed int64) *CDG {
	return &CDG{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Algorithm.
func (*CDG) Name() string { return "cdg" }

// Reset implements Algorithm.
func (c *CDG) Reset(*State) {
	c.prevMin, c.gradient, c.nextEval, c.epochMin, c.lastDecr = 0, 0, 0, 0, 0
}

// OnAck implements Algorithm.
func (c *CDG) OnAck(s *State, acked float64) {
	if c.epochMin == 0 || s.LastRTT < c.epochMin {
		c.epochMin = s.LastRTT
	}
	if s.InSlowStart {
		SlowStart(s, acked)
		return
	}
	if s.Now >= c.nextEval {
		c.nextEval = s.Now + s.SRTT
		if c.prevMin > 0 {
			g := (c.epochMin - c.prevMin).Seconds()
			c.gradient = 0.875*c.gradient + 0.125*g
		}
		c.prevMin = c.epochMin
		c.epochMin = 0
		if c.gradient > 0 && s.Now-c.lastDecr > s.SRTT {
			p := 1 - math.Exp(-c.gradient/cdgG.Seconds())
			if c.rng.Float64() < p {
				c.lastDecr = s.Now
				s.Cwnd = math.Max(0.7*s.Cwnd, 2*s.MSS)
				return
			}
		}
	}
	RenoIncrease(s, acked)
}

// OnLoss implements Algorithm.
func (*CDG) OnLoss(s *State, timeout bool) {
	MultiplicativeDecrease(s, 0.7, timeout)
}
