package expr

import (
	"testing"

	"repro/internal/dsl"
)

func TestAllFineTunedHandlersParse(t *testing.T) {
	for _, name := range Names() {
		f, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		h := f.Handler() // panics on parse error
		if h == nil || h.Holes() != 0 {
			t.Errorf("%s: handler %q has holes", name, f.Source)
		}
		if f.DSL() == nil {
			t.Errorf("%s: nil DSL", name)
		}
	}
}

func TestFineTunedHandlersEvaluate(t *testing.T) {
	env := &dsl.Env{
		Cwnd: 20 * 1448, MSS: 1448, Acked: 1448, TimeSinceLoss: 2,
		RTT: 0.05, MinRTT: 0.04, MaxRTT: 0.08, AckRate: 1e6,
		RTTGradient: 0.01, WMax: 25 * 1448,
	}
	for _, name := range Names() {
		f, _ := Lookup(name)
		v, err := f.Handler().Eval(env)
		if err != nil {
			t.Errorf("%s: eval failed: %v", name, err)
			continue
		}
		if v <= 0 {
			t.Errorf("%s: handler produced non-positive window %v", name, v)
		}
	}
}

func TestFineTunedCoverage(t *testing.T) {
	// The paper writes fine-tuned handlers for the kernel CCAs except CDG
	// and HighSpeed (out of scope, §5.5); 14 entries total.
	if got := len(Names()); got != 14 {
		t.Errorf("fine-tuned handlers = %d, want 14", got)
	}
	for _, absent := range []string{"cdg", "highspeed", "student1"} {
		if _, err := Lookup(absent); err == nil {
			t.Errorf("unexpected fine-tuned handler for %q", absent)
		}
	}
}

func TestMostHandlersWithinTheirDSL(t *testing.T) {
	// Every fine-tuned handler except BIC's fits its sub-DSL's budget.
	// BIC is the paper's documented failure case: its handler is too deep
	// for any tractable bound (§5.5).
	for _, name := range Names() {
		f, _ := Lookup(name)
		err := f.DSL().Admits(f.Handler())
		if name == "bic" {
			if err == nil {
				t.Error("bic's handler unexpectedly fits the DSL — the paper's depth argument no longer holds")
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: fine-tuned handler outside its DSL: %v", name, err)
		}
	}
}

func TestDSLHint(t *testing.T) {
	if DSLHint("reno") != "reno" {
		t.Error("reno hint wrong")
	}
	if DSLHint("bbr") != "delay" {
		t.Error("bbr hint wrong")
	}
	if DSLHint("student3") != "vegas" {
		t.Error("student default hint wrong")
	}
}
