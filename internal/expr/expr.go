// Package expr is the library of domain-expert handler expressions from
// Table 2 of the paper: for each kernel CCA, the fine-tuned cwnd-on-ACK
// handler a human wrote from the CCA's source code, within the same DSL
// and depth budget as the synthesized output. The accuracy evaluation
// (§6.2, Table 4) measures how far Abagnale's search got from these.
package expr

import (
	"fmt"
	"sort"

	"repro/internal/dsl"
)

// FineTuned holds one CCA's expert handler and the sub-DSL it lives in.
type FineTuned struct {
	// CCA is the ground-truth algorithm name.
	CCA string
	// DSLName is the sub-DSL the handler (and synthesis for this CCA)
	// uses — the classifier-derived hint of §3.3.
	DSLName string
	// Source is the handler in the paper's notation.
	Source string
}

// Handler parses the source expression.
func (f FineTuned) Handler() *dsl.Node { return dsl.MustParse(f.Source) }

// DSL returns the sub-DSL instance.
func (f FineTuned) DSL() *dsl.DSL {
	d, err := dsl.Named(f.DSLName)
	if err != nil {
		panic(err)
	}
	return d
}

// fineTuned lists Table 2's third column. CDG and HighSpeed have no entry:
// the paper does not run Abagnale on them (randomness / out-of-DSL
// operators, §5.5). BIC's handler exceeds every tractable depth bound, so
// like the paper we record its closest expressible form.
var fineTuned = map[string]FineTuned{
	"bbr": {
		CCA: "bbr", DSLName: "delay",
		Source: "min-rtt*ack-rate*({rtts-since-loss % 8 = 0} ? 2.6 : 2.05)",
	},
	"reno": {
		CCA: "reno", DSLName: "reno",
		Source: "cwnd + 0.7*reno-inc",
	},
	"westwood": {
		CCA: "westwood", DSLName: "reno",
		Source: "cwnd + 0.68*reno-inc",
	},
	"scalable": {
		CCA: "scalable", DSLName: "reno",
		Source: "cwnd + 0.37*reno-inc",
	},
	"lp": {
		CCA: "lp", DSLName: "vegas",
		Source: "cwnd*({htcp-diff > 0.5} ? 0.5 : 1) + 0.68*reno-inc",
	},
	"hybla": {
		CCA: "hybla", DSLName: "delay",
		Source: "cwnd + 8*rtt*reno-inc", // Table 2: the RTT-scaled Reno increase
	},
	"htcp": {
		CCA: "htcp", DSLName: "vegas",
		Source: "cwnd + reno-inc*({htcp-diff < 0.25} ? 1 : 0.2)",
	},
	"illinois": {
		CCA: "illinois", DSLName: "vegas",
		Source: "cwnd + 0.3*reno-inc + 5*reno-inc*htcp-diff",
	},
	"vegas": {
		CCA: "vegas", DSLName: "vegas",
		Source: "cwnd + ({vegas-diff < 1} ? 0.7*reno-inc : {vegas-diff > 5} ? -0.7*reno-inc : 0)",
	},
	"veno": {
		CCA: "veno", DSLName: "vegas",
		Source: "cwnd + reno-inc*({vegas-diff < 0.7} ? 0.35 : 0.16)",
	},
	"nv": {
		CCA: "nv", DSLName: "vegas",
		Source: "cwnd + ({vegas-diff > 1} ? 0.7*reno-inc : {vegas-diff > 5} ? -0.7*reno-inc : 0)",
	},
	"yeah": {
		CCA: "yeah", DSLName: "vegas",
		Source: "cwnd + reno-inc*({vegas-diff > 5} ? 0.3 : 1)",
	},
	"cubic": {
		CCA: "cubic", DSLName: "cubic",
		// Table 2 writes wmax + (8*t - cbrt(24*wmax))^3 with windows in
		// packets; our windows are bytes, so the constants are re-fitted
		// to byte scale (same shape: a plateau at wmax reached K seconds
		// after the loss, cubic on both sides).
		Source: "wmax + cube(11*time-since-loss - cbrt(0.3*wmax))",
	},
	"bic": {
		CCA: "bic", DSLName: "cubic",
		Source: "cwnd + ({cwnd < wmax} ? 0.5*(wmax - cwnd)/cwnd*mss : reno-inc)",
	},
}

// Lookup returns the fine-tuned entry for a CCA.
func Lookup(cca string) (FineTuned, error) {
	f, ok := fineTuned[cca]
	if !ok {
		return FineTuned{}, fmt.Errorf("expr: no fine-tuned handler for %q", cca)
	}
	return f, nil
}

// Names lists the CCAs with fine-tuned handlers, sorted.
func Names() []string {
	var names []string
	for n := range fineTuned {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DSLHint returns the sub-DSL name used for a CCA's synthesis — the
// classifier-derived mapping of §3.3/Table 3. CCAs without a fine-tuned
// entry (students, CDG, HighSpeed) default to the vegas DSL, matching the
// paper's CCAnalyzer hints for the student dataset.
func DSLHint(cca string) string {
	if f, ok := fineTuned[cca]; ok {
		return f.DSLName
	}
	return "vegas"
}
