package shard

import (
	"os"
	"testing"
)

// TestMain lets the test binary serve as its own worker fleet: SpawnWorkers
// re-execs this binary with the join environment set, and MaybeRunWorker
// detours those copies into RunWorker before any test runs.
func TestMain(m *testing.M) {
	MaybeRunWorker()
	os.Exit(m.Run())
}
