package shard

import (
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is the fleet telemetry plane. Workers flush instrument
// *deltas* — not absolute snapshots — on every heartbeat and every lease
// completion; the coordinator folds each delta exactly once into labeled
// per-worker series (`core.handlers_scored{worker="2"}`) plus a cluster
// aggregate (`{worker="fleet"}`), so one /metrics scrape shows the whole
// fleet and the invariant fleet == Σ workers holds unconditionally.
// Because heartbeats and completions drain the same telescoping stream,
// duplicate lease completions (reissue races) cannot double-count: the
// duplicate's *result* is dropped by the lease logic, but its telemetry
// reflects work that genuinely happened and folds exactly once.

// defaultHeartbeat is the worker telemetry cadence. Off the scoring hot
// path: one goroutine, one wire frame per tick.
const defaultHeartbeat = 500 * time.Millisecond

// beatFlightTail bounds the flight-ring tail piggybacked on each beat;
// shipFlightTail is the deeper tail shipped on error/SIGQUIT/exit.
const (
	beatFlightTail = 32
	shipFlightTail = 256
)

// reporter tracks what a worker has already shipped so every counter and
// histogram increment reaches the coordinator exactly once.
type reporter struct {
	mu       sync.Mutex
	obsv     *obs.Registry
	counters map[string]int64
	hists    map[string]obs.HistSnapshot
}

func newReporter(obsv *obs.Registry) *reporter {
	return &reporter{
		obsv:     obsv,
		counters: map[string]int64{},
		hists:    map[string]obs.HistSnapshot{},
	}
}

// flush returns the increments since the previous flush plus the absolute
// counter snapshot the deltas telescope to, both read in one critical
// section — so a lease completion's Counters and Telemetry agree exactly.
// The returned telemetry is nil when nothing moved.
func (t *reporter) flush() (*telemetryMsg, map[string]int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.obsv.CounterValues("")
	tm := &telemetryMsg{Counters: map[string]int64{}, Hists: map[string]obs.HistSnapshot{}}
	for k, v := range cur {
		if d := v - t.counters[k]; d != 0 {
			tm.Counters[k] = d
		}
	}
	t.counters = cur
	for k, s := range t.obsv.HistogramValues("") {
		if d := s.Delta(t.hists[k]); d.Count != 0 {
			tm.Hists[k] = d
		}
		t.hists[k] = s
	}
	tm.Gauges = t.obsv.GaugeValues("")
	if len(tm.Counters) == 0 && len(tm.Hists) == 0 && len(tm.Gauges) == 0 {
		return nil, cur
	}
	return tm, cur
}

// clockSync is the worker's NTP-style offset estimator. Each beat/ack pair
// yields the classic two-way sample — RTT = (T4−T1)−(T3−T2), offset =
// ((T2−T1)+(T3−T4))/2 — and the estimate from the lowest-RTT exchange wins
// (least queuing delay, tightest bound on asymmetry error).
type clockSync struct {
	mu      sync.Mutex
	has     bool
	lastRTT int64
	bestRTT int64
	offset  int64 // coordinator clock minus worker clock, nanos
}

// sample folds one completed exchange (all unix nanos; T1/T4 worker
// clock, T2/T3 coordinator clock).
func (c *clockSync) sample(t1, t2, t3, t4 int64) {
	rtt := (t4 - t1) - (t3 - t2)
	if rtt < 0 {
		rtt = 0
	}
	off := ((t2 - t1) + (t3 - t4)) / 2
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastRTT = rtt
	if !c.has || rtt <= c.bestRTT {
		c.has = true
		c.bestRTT = rtt
		c.offset = off
	}
}

// estimate returns the last sample's RTT and the best offset estimate.
func (c *clockSync) estimate() (lastRTT, offset int64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastRTT, c.offset, c.has
}

// correctedSec maps a worker-clock timestamp onto the coordinator
// registry's timeline: apply the estimated offset, then rebase onto
// seconds since the registry's start (the scale TraceSpan and Event.T
// share).
func correctedSec(workerUnixNanos, offsetNanos int64, start time.Time) float64 {
	return float64(workerUnixNanos+offsetNanos-start.UnixNano()) / 1e9
}

// foldTelemetry applies one worker's shipped deltas to the coordinator's
// registry — per-worker labeled series plus the fleet aggregate — and to
// the worker's federated running totals. Frames from one worker arrive on
// its single connection goroutine, so each delta folds exactly once.
func (co *Coordinator) foldTelemetry(wc *workerConn, tm *telemetryMsg) {
	if tm == nil {
		return
	}
	id := strconv.Itoa(wc.id)
	for k, d := range tm.Counters {
		co.obsv.Counter(obs.Labeled(k, "worker", id)).Add(d)
		co.obsv.Counter(obs.Labeled(k, "worker", "fleet")).Add(d)
	}
	for k, v := range tm.Gauges {
		// Non-finite gauges would poison the JSON report; skip them.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		co.obsv.Gauge(obs.Labeled(k, "worker", id)).Set(v)
	}
	for k, d := range tm.Hists {
		co.obsv.Histogram(obs.Labeled(k, "worker", id)).Merge(d)
		co.obsv.Histogram(obs.Labeled(k, "worker", "fleet")).Merge(d)
	}
	co.mu.Lock()
	for k, d := range tm.Counters {
		wc.fedTotals[k] += d
	}
	co.mu.Unlock()
	// Per-worker candidates/sec on the /runs board comes from the same
	// delta stream, so worker rows tick at heartbeat cadence instead of
	// jumping at lease completions.
	if h := tm.Counters["core.handlers_scored"]; h > 0 {
		wc.live.AddHandlers(int(h))
	}
}
