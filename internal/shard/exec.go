package shard

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Local workers are self-exec'd: the coordinator re-runs its own binary
// with ABAGNALE_SHARD_JOIN set, and MaybeRunWorker — called first thing in
// every participating main (and test main) — detours that process into
// RunWorker before any flag parsing. This keeps `abagnale -shard-workers
// N` a single-binary affair: no separate worker executable to build,
// install, or version-skew against.
const (
	envJoin      = "ABAGNALE_SHARD_JOIN"
	envSnapshots = "ABAGNALE_SHARD_SNAPSHOTS"
	envProcs     = "ABAGNALE_SHARD_PROCS"
	envBeatMS    = "ABAGNALE_SHARD_BEAT_MS" // heartbeat cadence; <0 disables
)

// MaybeRunWorker turns the current process into a shard worker when the
// join environment is set, never returning in that case (the process
// exits when the coordinator disconnects). A no-op otherwise. Call it at
// the very top of main.
func MaybeRunWorker() {
	addr := os.Getenv(envJoin)
	if addr == "" {
		return
	}
	procs, _ := strconv.Atoi(os.Getenv(envProcs))
	beatMS, _ := strconv.Atoi(os.Getenv(envBeatMS))
	cfg := WorkerConfig{
		SnapshotDir: os.Getenv(envSnapshots),
		Procs:       procs,
		Heartbeat:   time.Duration(beatMS) * time.Millisecond,
		Obs:         obs.New(),
	}
	if err := RunWorker(context.Background(), addr, cfg); err != nil && err != context.Canceled {
		fmt.Fprintf(os.Stderr, "shard worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// SpawnWorkers execs n copies of the current binary as workers joined to
// addr. procs > 0 pins each worker's GOMAXPROCS (used by benchmarks to
// compare core-for-core against an in-process baseline); beat sets the
// heartbeat cadence (0 default, negative disables). The returned commands
// expose Process for fault injection; kill them (or cancel ctx) to stop
// the fleet — workers also exit on their own when the coordinator closes.
func SpawnWorkers(ctx context.Context, n int, addr, snapshotDir string, procs int, beat time.Duration) ([]*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("shard: resolving own binary: %w", err)
	}
	env := append(os.Environ(),
		envJoin+"="+addr,
		envSnapshots+"="+snapshotDir,
	)
	if beat != 0 {
		env = append(env, envBeatMS+"="+strconv.Itoa(int(beat/time.Millisecond)))
	}
	if procs > 0 {
		env = append(env,
			envProcs+"="+strconv.Itoa(procs),
			"GOMAXPROCS="+strconv.Itoa(procs),
		)
	}
	var cmds []*exec.Cmd
	for i := 0; i < n; i++ {
		cmd := exec.CommandContext(ctx, self)
		cmd.Env = env
		cmd.Stdout = os.Stderr // a worker's stray prints must not corrupt the coordinator's stdout report
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds {
				c.Process.Kill()
			}
			return nil, fmt.Errorf("shard: spawning worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

// pid is the worker's own process ID (for the coordinator's report).
func pid() int { return os.Getpid() }
