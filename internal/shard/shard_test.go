package shard

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
)

// segmentsFor builds trace segments for a CCA from two testbed scenarios
// (mirrors the core package's fixture; helpers don't cross packages).
// Results are cached: simulation and analysis dominate test time.
var segCache sync.Map

func segmentsFor(t *testing.T, cca string) []*trace.Segment {
	t.Helper()
	if v, ok := segCache.Load(cca); ok {
		return v.([]*trace.Segment)
	}
	var segs []*trace.Segment
	for i, cfg := range []sim.Config{
		{CCA: cca, Bandwidth: 10e6 / 8, RTT: 40 * time.Millisecond, Duration: 20 * time.Second},
		{CCA: cca, Bandwidth: 5e6 / 8, RTT: 80 * time.Millisecond, Duration: 20 * time.Second},
	} {
		cfg.Seed = int64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.AnalyzeRecords(res.Records)
		if err != nil {
			t.Fatal(err)
		}
		tr.Label = cca
		segs = append(segs, tr.Split(16)...)
	}
	if len(segs) < 2 {
		t.Fatalf("only %d segments for %s", len(segs), cca)
	}
	segCache.Store(cca, segs)
	return segs
}

// quickOpts keeps synthesis runs fast enough for unit tests.
func quickOpts(d *dsl.DSL) core.Options {
	return core.Options{
		DSL:            d,
		InitialSamples: 8,
		MaxHandlers:    4000,
		MaxCompletions: 12,
		Seed:           1,
	}
}

// ledgerBytes renders a ledger's JSONL dump for byte-stability checks.
func ledgerBytes(t *testing.T, l *replay.Ledger) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedMatchesSingleProcess is the exactness pin: for several seeds,
// in both the default (lower-bound cascade) and ExactScoring modes, 2- and
// 3-worker sharded runs must reproduce the single-process run bit for bit
// — same winner, same distance, DeepEqual search stats — with a merged
// cross-worker funnel that reconciles against it, and a merged provenance
// ledger whose JSONL dump is byte-stable across worker counts.
//
// The DeepEqual on stats is deliberately the strongest form: it holds
// because at these corpus sizes no canonical duplicate spans a lease
// boundary, so the lease-scoped memo (LeaseRunner.Exec resets its cache
// per call) settles exactly what the run-scoped single-process memo does.
// At much larger budgets cross-lease duplicates re-score instead of
// memo-settling — winner/distance/enumeration stay invariant but funnel
// stage placement shifts (see DESIGN.md §7, lease purity); if this test
// ever grows such a workload, relax the stats check to those invariants
// rather than shrinking the corpus.
func TestShardedMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker fleets")
	}
	segs := segmentsFor(t, "reno")
	for _, mode := range []struct {
		name  string
		exact bool
	}{{"pruned", false}, {"exact", true}} {
		for _, seed := range []int64{1, 7, 42} {
			mode, seed := mode, seed
			t.Run(fmt.Sprintf("%s/seed%d", mode.name, seed), func(t *testing.T) {
				opts := quickOpts(dsl.Reno())
				opts.Seed = seed
				opts.ExactScoring = mode.exact

				sopts := opts
				sopts.Ledger = replay.NewLedger(64, seed)
				single, err := core.Synthesize(context.Background(), segs, sopts)
				if err != nil {
					t.Fatal(err)
				}
				singleLedger := ledgerBytes(t, sopts.Ledger)

				var prevLedger []byte
				for _, workers := range []int{2, 3} {
					wopts := opts
					wopts.Ledger = replay.NewLedger(64, seed)
					res, rep, err := Synthesize(context.Background(), segs, Options{
						Workers: workers,
						Core:    wopts,
					})
					if err != nil {
						t.Fatalf("%d workers: %v", workers, err)
					}
					if got, want := res.Handler.String(), single.Handler.String(); got != want {
						t.Errorf("%d workers: handler %q, single-process %q", workers, got, want)
					}
					if got, want := res.Sketch.String(), single.Sketch.String(); got != want {
						t.Errorf("%d workers: sketch %q, single-process %q", workers, got, want)
					}
					if math.Float64bits(res.Distance) != math.Float64bits(single.Distance) {
						t.Errorf("%d workers: distance %v, single-process %v", workers, res.Distance, single.Distance)
					}
					if !reflect.DeepEqual(res.Stats, single.Stats) {
						t.Errorf("%d workers: search stats diverge from single-process run", workers)
					}
					if !rep.Merged.Funnel.Reconciles() {
						t.Errorf("%d workers: merged worker funnel does not reconcile", workers)
					}
					if rep.Merged.Funnel != single.Stats.Funnel {
						t.Errorf("%d workers: merged worker funnel %+v, single-process %+v",
							workers, rep.Merged.Funnel, single.Stats.Funnel)
					}
					if len(rep.Workers) != workers {
						t.Errorf("%d workers: report has %d rows", workers, len(rep.Workers))
					}
					if rep.Counters["shard.leases_issued"] == 0 {
						t.Errorf("%d workers: no leases issued", workers)
					}
					lb := ledgerBytes(t, wopts.Ledger)
					if !bytes.Equal(lb, singleLedger) {
						t.Errorf("%d workers: merged ledger differs from single-process ledger", workers)
					}
					if prevLedger != nil && !bytes.Equal(lb, prevLedger) {
						t.Errorf("%d workers: merged ledger not byte-stable across worker counts", workers)
					}
					prevLedger = lb
				}
			})
		}
	}
}

// TestShardedBatchMatchesCorpusRun pins the whole-trace mode: a sharded
// batch answer equals corpus.Run's for every trace.
func TestShardedBatchMatchesCorpusRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker fleets")
	}
	jobs := []corpus.Job{
		{Name: "reno", Segments: segmentsFor(t, "reno")},
		{Name: "cubic", Segments: segmentsFor(t, "cubic")},
	}
	opts := quickOpts(dsl.Reno())
	base, err := corpus.Run(context.Background(), jobs, corpus.RunOptions{Core: opts})
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := Run(context.Background(), jobs, Options{Workers: 2, Core: opts})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != len(base.Traces) {
		t.Fatalf("sharded batch has %d traces, corpus.Run %d", len(res.Traces), len(base.Traces))
	}
	for i, tr := range res.Traces {
		want := base.Traces[i]
		if tr.Err != nil || want.Err != nil {
			t.Fatalf("trace %s errs: sharded %v, corpus %v", tr.Name, tr.Err, want.Err)
		}
		if tr.Handler != want.Handler {
			t.Errorf("trace %s: handler %q, corpus.Run %q", tr.Name, tr.Handler, want.Handler)
		}
		if math.Float64bits(tr.Distance) != math.Float64bits(want.Distance) {
			t.Errorf("trace %s: distance %v, corpus.Run %v", tr.Name, tr.Distance, want.Distance)
		}
	}
	if rep.Counters["shard.leases_issued"] != int64(len(jobs)) {
		t.Errorf("whole-trace leases issued = %d, want %d", rep.Counters["shard.leases_issued"], len(jobs))
	}
}

// TestShardedWarmStart pins the fan-out economics: workers pointed at a
// prewarmed shared snapshot dir load the sketch space instead of
// re-enumerating it (per-worker enum.candidates stays 0).
func TestShardedWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker fleets")
	}
	segs := segmentsFor(t, "reno")
	opts := quickOpts(dsl.Reno())
	dir := t.TempDir()
	res, rep, err := Synthesize(context.Background(), segs, Options{
		Workers:     2,
		SnapshotDir: dir,
		Prewarm:     true,
		Core:        opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Handler == nil {
		t.Fatal("no handler")
	}
	for _, w := range rep.Workers {
		if w.Counters["enum.candidates"] != 0 {
			t.Errorf("worker %d enumerated %d candidates despite warm start", w.ID, w.Counters["enum.candidates"])
		}
		if w.Counters["corpus.registry_snapshot_loads"] != 1 {
			t.Errorf("worker %d snapshot loads = %d, want 1", w.ID, w.Counters["corpus.registry_snapshot_loads"])
		}
	}
}

// TestShardedObsCounters sanity-checks the shard.* instrument surface on a
// plain 2-worker run.
func TestShardedObsCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker fleets")
	}
	segs := segmentsFor(t, "reno")
	obsv := obs.New()
	_, rep, err := Synthesize(context.Background(), segs, Options{
		Workers: 2,
		Core:    quickOpts(dsl.Reno()),
		Obs:     obsv,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := obsv.CounterValues("shard.")
	if c["shard.leases_issued"] == 0 {
		t.Error("shard.leases_issued = 0")
	}
	if c["shard.worker_deaths"] != 0 {
		t.Errorf("shard.worker_deaths = %d on a healthy run", c["shard.worker_deaths"])
	}
	if got := rep.Counters["shard.leases_issued"]; got != c["shard.leases_issued"] {
		t.Errorf("report counters diverge from registry: %d vs %d", got, c["shard.leases_issued"])
	}
	var leases int
	for _, w := range rep.Workers {
		leases += w.Leases
	}
	if int64(leases) != c["shard.leases_issued"] {
		t.Errorf("per-worker lease counts sum to %d, issued %d", leases, c["shard.leases_issued"])
	}
}
