package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Options configures a sharded run.
type Options struct {
	// Workers is how many local worker processes to spawn (self-exec).
	// 0 spawns none — the run then waits for WaitWorkers external joins
	// (abagnaled -worker -join).
	Workers int
	// WaitWorkers is how many joined workers to wait for before searching.
	// Default: Workers (when spawning) or 1.
	WaitWorkers int
	// Listen is the coordinator's address. Default 127.0.0.1:0 (local
	// ephemeral); bind a routable address for multi-machine fan-out.
	Listen string
	// SnapshotDir, when set, is the shared corpus snapshot directory
	// workers warm-start from.
	SnapshotDir string
	// Prewarm materializes and snapshots the sketch space before spawning
	// workers, so every worker loads instead of enumerating. Requires
	// SnapshotDir.
	Prewarm bool
	// WorkerProcs pins each spawned worker's parallelism (GOMAXPROCS and
	// core Workers). 0 leaves workers at their own GOMAXPROCS.
	WorkerProcs int
	// LeaseDeadline, when positive, reissues leases not completed within
	// it (straggler backstop). Worker death always reissues.
	LeaseDeadline time.Duration
	// Heartbeat is the worker telemetry cadence (delta federation, clock
	// exchange, flight tails). 0 means the 500ms default; negative disables
	// heartbeats entirely (telemetry then rides lease completions only).
	Heartbeat time.Duration
	// PostmortemDir, when set, receives one JSONL bundle (meta header +
	// last flight tail) per worker lost mid-run.
	PostmortemDir string
	// Core is the synthesis configuration, exactly as a single-process
	// run would use it.
	Core core.Options
	// Obs receives coordinator instruments (shard.* counters, per-worker
	// board rows). Default: Core.Obs, else a private registry.
	Obs *obs.Registry
}

// resolve fills defaults and returns the obs registry to use.
func (o Options) resolve() (Options, *obs.Registry) {
	obsv := o.Obs
	if obsv == nil {
		obsv = o.Core.Obs
	}
	if obsv == nil {
		obsv = obs.New()
	}
	o.Obs = obsv
	if o.WaitWorkers == 0 {
		if o.Workers > 0 {
			o.WaitWorkers = o.Workers
		} else {
			o.WaitWorkers = 1
		}
	}
	if o.Core.BucketCap <= 0 {
		o.Core.BucketCap = core.DefaultBucketCap
	}
	if o.Core.ScanBudget <= 0 {
		o.Core.ScanBudget = core.DefaultScanBudget
	}
	return o, obsv
}

// wireOptions renders the job's core options for the wire.
func wireOptions(o core.Options) WireOptions {
	wo := WireOptions{
		InitialSamples:  o.InitialSamples,
		InitialKeep:     o.InitialKeep,
		InitialSegments: o.InitialSegments,
		MaxCompletions:  o.MaxCompletions,
		MaxHandlers:     o.MaxHandlers,
		BucketCap:       o.BucketCap,
		ScanBudget:      o.ScanBudget,
		RandomSegments:  o.RandomSegments,
		NoBucketPruning: o.NoBucketPruning,
		ExactScoring:    o.ExactScoring,
		ScalarScoring:   o.ScalarScoring,
		GreedyPruning:   o.GreedyPruning,
		Seed:            o.Seed,
	}
	if o.Ledger != nil {
		wo.Ledger = true
		wo.LedgerCap, wo.LedgerSeed = o.Ledger.Config()
	}
	return wo
}

// metricName renders the metric for the wire (nil is the DTW default).
func metricName(o core.Options) string {
	if o.Metric == nil {
		return "dtw"
	}
	return o.Metric.Name()
}

// cluster is a started coordinator + spawned local workers.
type cluster struct {
	co   *Coordinator
	obsv *obs.Registry
}

// startCluster brings up the coordinator, optionally prewarms the shared
// snapshot dir, spawns local workers, and waits for the quorum.
func startCluster(ctx context.Context, o Options, obsv *obs.Registry) (*cluster, error) {
	if o.Prewarm {
		if o.SnapshotDir == "" {
			return nil, errors.New("shard: Prewarm requires SnapshotDir")
		}
		reg := corpus.NewRegistry(o.SnapshotDir, obsv)
		_, err := reg.Prewarm(ctx, corpus.Options{
			DSL:        o.Core.DSL,
			BucketCap:  o.Core.BucketCap,
			ScanBudget: o.Core.ScanBudget,
		}, 0)
		reg.Close()
		if err != nil {
			return nil, fmt.Errorf("shard: prewarming snapshot dir: %w", err)
		}
	}
	co, err := NewCoordinator(o.Listen, obsv, o.LeaseDeadline)
	if err != nil {
		return nil, err
	}
	co.PostmortemDir = o.PostmortemDir
	if o.Workers > 0 {
		if _, err := SpawnWorkers(ctx, o.Workers, co.Addr(), o.SnapshotDir, o.WorkerProcs, o.Heartbeat); err != nil {
			co.Close()
			return nil, err
		}
	}
	if err := co.AwaitWorkers(ctx, o.WaitWorkers); err != nil {
		co.Close()
		return nil, err
	}
	return &cluster{co: co, obsv: obsv}, nil
}

// Synthesize runs one sharded synthesis: the coordinator executes
// Algorithm 1's outer loop in-process (core.Synthesize with a lease
// executor) while the cluster scores each iteration's buckets. In the
// default and ExactScoring modes the Result is bit-identical to a
// single-process core.Synthesize with o.Core; the Report carries
// per-worker accounting and the merged cross-worker telemetry.
func Synthesize(ctx context.Context, segs []*trace.Segment, o Options) (*core.Result, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o, obsv := o.resolve()
	cl, err := startCluster(ctx, o, obsv)
	if err != nil {
		return nil, nil, err
	}
	defer cl.co.Close()

	name := o.Core.RunName
	if name == "" {
		name = "synthesize"
	}
	jm := &jobMsg{
		ID:       "job-1",
		Name:     name,
		DSL:      o.Core.DSL,
		Metric:   metricName(o.Core),
		Segments: segs,
		Opts:     wireOptions(o.Core),
	}
	j := cl.co.NewJob(jm.ID, jm, o.Core.Ledger)
	copts := o.Core
	copts.LeaseExec = j
	copts.Obs = obsv
	res, err := core.Synthesize(ctx, segs, copts)
	cl.co.EndJob(j)
	rep := cl.co.Report()
	if err != nil {
		return nil, rep, err
	}
	return res, rep, nil
}

// Run executes a batch of trace jobs across the cluster as whole-trace
// leases — the coarse-grained mode where each worker runs entire
// syntheses and the coordinator only schedules, reissues, and merges.
// Results are deterministic per seed: a sharded batch answer equals
// corpus.Run's (workers share the same snapshot-warmed sketch space and
// every trace runs with the same options).
func Run(ctx context.Context, jobs []corpus.Job, o Options) (*corpus.BatchResult, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o, obsv := o.resolve()
	cl, err := startCluster(ctx, o, obsv)
	if err != nil {
		return nil, nil, err
	}
	defer cl.co.Close()

	start := time.Now()
	res := &corpus.BatchResult{Traces: make([]corpus.TraceResult, len(jobs))}
	type pend struct {
		i int
		j *job
		c chan outcomeErr
	}
	var pends []pend
	for i, jb := range jobs {
		jm := &jobMsg{
			ID:       fmt.Sprintf("job-%d", i+1),
			Name:     jb.Name,
			DSL:      o.Core.DSL,
			Metric:   metricName(o.Core),
			Segments: jb.Segments,
			Opts:     wireOptions(o.Core),
		}
		j := cl.co.NewJob(jm.ID, jm, nil)
		c := make(chan outcomeErr, 1)
		go func(j *job) {
			to, err := j.ExecTrace(ctx)
			c <- outcomeErr{to, err}
		}(j)
		pends = append(pends, pend{i: i, j: j, c: c})
	}
	for _, p := range pends {
		oe := <-p.c
		tr := corpus.TraceResult{Name: jobs[p.i].Name}
		switch {
		case oe.err != nil:
			tr.Err = oe.err
		case oe.to == nil:
			tr.Err = errors.New("shard: trace lease lost")
		default:
			tr.Handler = oe.to.Handler
			tr.Sketch = oe.to.Sketch
			tr.Distance = oe.to.Distance
			tr.Stats = oe.to.Stats
			tr.Duration = time.Duration(oe.to.DurationNS)
			if oe.to.Err != "" {
				tr.Err = errors.New(oe.to.Err)
			}
		}
		res.Traces[p.i] = tr
		cl.co.EndJob(p.j)
	}
	res.Wall = time.Since(start)
	res.Corpus = obsv.CounterValues("corpus.")
	res.Interrupted = ctx.Err() != nil
	for i := range res.Traces {
		res.Interrupted = res.Interrupted || res.Traces[i].Stats.Interrupted
	}
	return res, cl.co.Report(), nil
}

// outcomeErr pairs a whole-trace outcome with its transport error.
type outcomeErr struct {
	to  *traceOutcome
	err error
}
