package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
)

// ClusterWorker is one worker's row in the fleet snapshot (/cluster, the
// -fleet table, Report.Cluster).
type ClusterWorker struct {
	ID        int    `json:"id"`
	PID       int    `json:"pid"`
	Connected bool   `json:"connected"`
	Lost      bool   `json:"lost,omitempty"`
	Phase     string `json:"phase,omitempty"`
	// LastBeatSec is the age of the newest heartbeat (-1 before any).
	LastBeatSec float64 `json:"last_beat_sec"`
	// RTTMs/ClockOffsetMs come from the worker's NTP-style exchange
	// (zero until the first ack round-trips).
	RTTMs         float64 `json:"rtt_ms,omitempty"`
	ClockOffsetMs float64 `json:"clock_offset_ms,omitempty"`
	// Inflight lists the lease IDs currently executing on the worker.
	Inflight []int64 `json:"inflight,omitempty"`
	Leases   int     `json:"leases"`
	Stolen   int     `json:"stolen,omitempty"`
	Reissued int     `json:"reissued,omitempty"`
	// Handlers is the federated core.handlers_scored total;
	// CandidatesPerSec is its rate over the worker's connected lifetime.
	Handlers         int64   `json:"handlers"`
	CandidatesPerSec float64 `json:"candidates_per_sec"`
	// Enumeration is the worker's sketch-space provenance: "warm" when it
	// loaded the shared snapshot, "enumerated" when it built the space
	// itself, "pending" before either.
	Enumeration string `json:"enumeration"`
}

// ClusterSnapshot is the coordinator's fleet view, served at /cluster.
type ClusterSnapshot struct {
	Workers      []ClusterWorker  `json:"workers"`
	QueuedLeases int              `json:"queued_leases"`
	Counters     map[string]int64 `json:"counters"`
}

// ClusterSnapshot captures the current fleet state.
func (co *Coordinator) ClusterSnapshot() *ClusterSnapshot {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.clusterLocked()
}

// clusterLocked builds the snapshot; caller holds co.mu.
func (co *Coordinator) clusterLocked() *ClusterSnapshot {
	snap := &ClusterSnapshot{
		QueuedLeases: len(co.queue),
		Counters:     map[string]int64{},
	}
	snap.Counters["shard.leases_issued"] = co.cIssued.Value()
	snap.Counters["shard.leases_stolen"] = co.cStolen.Value()
	snap.Counters["shard.leases_reissued"] = co.cReissued.Value()
	snap.Counters["shard.worker_deaths"] = co.cDeaths.Value()
	snap.Counters["shard.cutoff_broadcasts"] = co.cBroadcasts.Value()
	for _, wc := range co.workers {
		snap.Workers = append(snap.Workers, clusterRow(wc, true))
	}
	for _, wc := range co.dead {
		snap.Workers = append(snap.Workers, clusterRow(wc, false))
	}
	sortWorkers(snap.Workers)
	return snap
}

// clusterRow renders one worker's cluster view; caller holds co.mu.
func clusterRow(wc *workerConn, connected bool) ClusterWorker {
	row := ClusterWorker{
		ID:            wc.id,
		PID:           wc.pid,
		Connected:     connected,
		Lost:          wc.lost,
		LastBeatSec:   -1,
		RTTMs:         float64(wc.rttNanos) / 1e6,
		ClockOffsetMs: float64(wc.offsetNanos) / 1e6,
		Leases:        wc.leases,
		Stolen:        wc.stolen,
		Reissued:      wc.reissued,
		Handlers:      wc.fedTotals["core.handlers_scored"],
		Enumeration:   enumerationState(wc.fedTotals),
	}
	if !wc.lastBeat.IsZero() {
		row.LastBeatSec = time.Since(wc.lastBeat).Seconds()
	}
	for id := range wc.inflight {
		row.Inflight = append(row.Inflight, id)
	}
	sortInt64s(row.Inflight)
	end := time.Now()
	if !connected && !wc.diedAt.IsZero() {
		end = wc.diedAt
	}
	if life := end.Sub(wc.joined).Seconds(); life > 0 {
		row.CandidatesPerSec = float64(row.Handlers) / life
	}
	if snap, ok := bphase(wc); ok {
		row.Phase = snap
	}
	return row
}

// bphase reads the worker's live board phase.
func bphase(wc *workerConn) (string, bool) {
	if wc.live == nil {
		return "", false
	}
	return wc.live.Phase(), true
}

// enumerationState derives where a worker's sketch space came from.
func enumerationState(fed map[string]int64) string {
	switch {
	case fed["corpus.registry_snapshot_loads"] > 0:
		return "warm"
	case fed["enum.candidates"] > 0 || fed["corpus.sketches_enumerated"] > 0:
		return "enumerated"
	default:
		return "pending"
	}
}

func sortWorkers(ws []ClusterWorker) {
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
}

func sortInt64s(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// postmortemMeta is the header line of a postmortem bundle.
type postmortemMeta struct {
	Postmortem  string           `json:"postmortem"` // "worker-NN"
	Worker      int              `json:"worker"`
	PID         int              `json:"pid"`
	Cause       string           `json:"cause"`
	LastBeatSec float64          `json:"last_beat_sec"` // -1: never beat
	Inflight    []int64          `json:"inflight,omitempty"`
	Counters    map[string]int64 `json:"counters,omitempty"`
	FlightLen   int              `json:"flight_events"`
}

// writePostmortem emits one JSONL bundle for a lost worker: a meta header
// line, then the worker's last known flight-ring tail (shipped on its
// heartbeats), oldest first. Write failures degrade to a record on the
// registry — a postmortem must never take the coordinator down.
func (co *Coordinator) writePostmortem(dir string, meta postmortemMeta, tail []obs.FlightEvent) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		co.obsv.Record("shard.postmortem_error", map[string]any{"error": err.Error()})
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("postmortem-worker-%02d.jsonl", meta.Worker))
	f, err := os.Create(path)
	if err != nil {
		co.obsv.Record("shard.postmortem_error", map[string]any{"error": err.Error()})
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	meta.FlightLen = len(tail)
	if err := enc.Encode(meta); err != nil {
		return
	}
	for _, ev := range tail {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
}

// workerTrackSpan renders one completed lease as a clock-corrected span on
// the worker's fleet-trace lane. Caller holds co.mu (reads wc clock
// state).
func workerTrackSpan(wc *workerConn, pl *pendingLease, d *leaseDoneMsg, start time.Time) obs.TrackSpan {
	name := fmt.Sprintf("lease %d", d.ID)
	if pl != nil {
		switch {
		case pl.msg.Iter != nil:
			name = fmt.Sprintf("lease %d: iter %d (%d buckets)", d.ID, pl.msg.Iter.Iteration, len(pl.msg.Iter.Buckets))
		case pl.msg.Trace:
			name = fmt.Sprintf("lease %d: trace %s", d.ID, pl.job.msg.Name)
		}
	}
	s := correctedSec(d.StartNanos, wc.offsetNanos, start)
	e := correctedSec(d.EndNanos, wc.offsetNanos, start)
	return obs.TrackSpan{
		Track:    fmt.Sprintf("shard worker-%02d", wc.id),
		Name:     name,
		StartSec: s,
		DurSec:   e - s,
		Args: map[string]any{
			"worker": wc.id,
			"lease":  d.ID,
			"job":    d.JobID,
		},
	}
}
