package shard

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

// WorkerConfig configures a worker process.
type WorkerConfig struct {
	// SnapshotDir is the shared corpus.Registry snapshot directory. A
	// worker pointed at the coordinator's prewarmed dir loads the sketch
	// space instead of re-enumerating it (enum.candidates stays 0).
	SnapshotDir string
	// Procs bounds the worker's scoring parallelism (core Workers).
	// Default GOMAXPROCS.
	Procs int
	// DialTimeout bounds how long the worker retries the initial dial —
	// workers typically start concurrently with the coordinator's
	// listener. Default 10s.
	DialTimeout time.Duration
	// Heartbeat is the telemetry cadence: instrument deltas, the NTP-style
	// clock exchange, and a flight-ring tail ship to the coordinator this
	// often. 0 means the 500ms default; negative disables heartbeats
	// (telemetry then rides lease completions only).
	Heartbeat time.Duration
	// Obs receives the worker's instruments; its counter values ship to
	// the coordinator with every lease result, and its deltas federate at
	// heartbeat cadence. Default: a private registry.
	Obs *obs.Registry
}

// wjob is a worker's per-job state.
type wjob struct {
	id     string
	name   string
	segs   []*trace.Segment
	opts   core.Options
	ledger *replay.Ledger

	runner  *core.LeaseRunner
	applied atomic.Int64 // cutoff broadcasts that tightened the bound
}

// RunWorker joins the coordinator at addr and executes leases until the
// connection closes (the coordinator's shutdown is the worker's exit
// signal) or ctx is cancelled. Worker processes are stateless between
// jobs: everything a lease needs arrives in its job definition, and the
// sketch space comes from the shared snapshot dir (or local enumeration
// as the cold fallback).
func RunWorker(ctx context.Context, addr string, cfg WorkerConfig) error {
	obsv := cfg.Obs
	if obsv == nil {
		obsv = obs.New()
	}
	procs := cfg.Procs
	if procs < 1 {
		procs = runtime.GOMAXPROCS(0)
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	beat := cfg.Heartbeat
	if beat == 0 {
		beat = defaultHeartbeat
	}
	w, err := dialRetry(ctx, addr, dialTimeout)
	if err != nil {
		return err
	}
	defer w.close()
	if err := w.write(&frame{Hello: &helloMsg{PID: pid(), Procs: procs}}); err != nil {
		return err
	}

	registry := corpus.NewRegistry(cfg.SnapshotDir, obsv)
	defer registry.Close()

	// The telemetry plane: a reporter tracking what already shipped, the
	// NTP-style clock estimator, and the lease the worker is executing
	// right now (for the cluster view's inflight column).
	obsv.EnableFlight(0)
	rep := newReporter(obsv)
	clock := &clockSync{}
	var currentLease atomic.Int64
	hWireRTT := obsv.Histogram("shard.wire_rtt_seconds")
	hCutProp := obsv.Histogram("shard.cutoff_propagation_seconds")

	sendBeat := func(final bool) error {
		tm, _ := rep.flush()
		lastRTT, offset, has := clock.estimate()
		return w.write(&frame{Beat: &beatMsg{
			T1:           time.Now().UnixNano(),
			LastRTTNanos: lastRTT,
			OffsetNanos:  offset,
			HasClock:     has,
			Lease:        currentLease.Load(),
			Telemetry:    tm,
			Flight:       obsv.Flight().Tail(beatFlightTail),
			Final:        final,
		}})
	}
	shipFlight := func(reason string) {
		w.write(&frame{Flight: &flightMsg{Reason: reason, Events: obsv.Flight().Tail(shipFlightTail)}})
	}
	// Final beat on every exit path: best-effort (the connection may
	// already be down), carrying whatever deltas have not shipped yet.
	// Registered after the close defers, so it runs while w is still open.
	beatStop := make(chan struct{})
	defer func() {
		close(beatStop)
		sendBeat(true)
	}()
	if beat > 0 {
		go func() {
			// First beat immediately: even a worker SIGKILLed moments after
			// joining leaves the coordinator a flight tail to postmortem.
			if sendBeat(false) != nil {
				return
			}
			tick := time.NewTicker(beat)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if sendBeat(false) != nil {
						return
					}
				case <-beatStop:
					return
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	// On SIGQUIT, ship the deep flight tail instead of dying with a stack
	// dump — the operator's "what is that worker doing" probe.
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	defer signal.Stop(sigq)
	go func() {
		for {
			select {
			case <-sigq:
				shipFlight("sigquit")
			case <-beatStop:
				return
			}
		}
	}()

	var (
		mu   sync.Mutex
		jobs = map[string]*wjob{}
	)
	// The reader goroutine applies cutoff broadcasts the moment they
	// arrive — mid-lease, from any scoring goroutine's perspective — and
	// answers the clock exchange inline (acks must not queue behind lease
	// execution); everything else forwards to the main loop. That immediacy
	// is the point of the broadcast: a remote improvement tightens this
	// worker's early-abandon cascade now, not at the next lease boundary.
	frames := make(chan *frame, 16)
	readErr := make(chan error, 1)
	go func() {
		defer close(frames)
		for {
			fr, err := w.read()
			if err != nil {
				readErr <- err
				return
			}
			if fr.BeatAck != nil {
				a := fr.BeatAck
				t4 := time.Now().UnixNano()
				rtt := (t4 - a.T1) - (a.T3 - a.T2)
				if rtt < 0 {
					rtt = 0
				}
				hWireRTT.Observe(float64(rtt) / 1e9)
				clock.sample(a.T1, a.T2, a.T3, t4)
				continue
			}
			if fr.Cutoff != nil {
				mu.Lock()
				j := jobs[fr.Cutoff.JobID]
				mu.Unlock()
				if j != nil && j.runner != nil && j.runner.Broadcast(fr.Cutoff.Distance) {
					j.applied.Add(1)
					// Propagation latency is only measurable once the clock
					// offset is estimated, and only meaningful when the
					// broadcast actually tightened this worker's bound.
					if _, off, ok := clock.estimate(); ok && fr.Cutoff.SentNanos > 0 {
						d := float64(time.Now().UnixNano()+off-fr.Cutoff.SentNanos) / 1e9
						if d < 0 {
							d = 0
						}
						hCutProp.Observe(d)
					}
				}
				continue
			}
			select {
			case frames <- fr:
			case <-ctx.Done():
				return
			}
		}
	}()

	for {
		if err := w.write(&frame{Want: &wantMsg{}}); err != nil {
			return nil // coordinator gone: clean exit
		}
		var lease *leaseMsg
		for lease == nil {
			var fr *frame
			select {
			case fr = <-frames:
			case <-ctx.Done():
				return ctx.Err()
			}
			if fr == nil {
				return nil // connection closed: coordinator shut down
			}
			switch {
			case fr.Job != nil:
				j, err := newWorkerJob(fr.Job, registry, obsv, procs)
				if err != nil {
					shipFlight("error: " + err.Error())
					return fmt.Errorf("shard: job %s: %w", fr.Job.ID, err)
				}
				mu.Lock()
				jobs[fr.Job.ID] = j
				mu.Unlock()
			case fr.JobEnd != nil:
				mu.Lock()
				if j := jobs[fr.JobEnd.ID]; j != nil && j.runner != nil {
					j.runner.Close()
				}
				delete(jobs, fr.JobEnd.ID)
				mu.Unlock()
			case fr.Lease != nil:
				lease = fr.Lease
			}
		}
		mu.Lock()
		j := jobs[lease.JobID]
		mu.Unlock()
		if j == nil {
			return fmt.Errorf("shard: lease %d for unknown job %s", lease.ID, lease.JobID)
		}
		currentLease.Store(lease.ID)
		startNanos := time.Now().UnixNano()
		done, err := executeLease(ctx, j, lease, func(d float64) {
			w.write(&frame{Improve: &improveMsg{JobID: lease.JobID, Distance: d}})
		})
		currentLease.Store(0)
		if err != nil {
			shipFlight("error: " + err.Error())
			return err
		}
		done.StartNanos = startNanos
		done.EndNanos = time.Now().UnixNano()
		// One flush serves both fields: the shipped deltas telescope to
		// exactly the absolute counters riding the same frame.
		done.Telemetry, done.Counters = rep.flush()
		if err := w.write(&frame{Done: done}); err != nil {
			return nil
		}
	}
}

// executeLease runs one lease. onImprove fires when an iteration lease
// finds a new global best (whole-trace leases are self-contained runs —
// their distances are not comparable across traces, so no broadcast).
func executeLease(ctx context.Context, j *wjob, lease *leaseMsg, onImprove func(float64)) (*leaseDoneMsg, error) {
	done := &leaseDoneMsg{ID: lease.ID, JobID: j.id}
	switch {
	case lease.Iter != nil:
		if j.runner == nil {
			r, err := core.NewLeaseRunner(j.segs, j.opts)
			if err != nil {
				return nil, err
			}
			j.runner = r
		}
		j.runner.OnImprove = onImprove
		done.Outcomes = j.runner.Exec(ctx, *lease.Iter)
	case lease.Trace:
		o := j.opts
		o.RunName = j.name
		t0 := time.Now()
		res, err := core.Synthesize(ctx, j.segs, o)
		to := &traceOutcome{DurationNS: time.Since(t0).Nanoseconds()}
		if err != nil {
			to.Err = err.Error()
		}
		if res != nil {
			to.Handler = res.Handler.String()
			to.Sketch = res.Sketch.String()
			to.Distance = res.Distance
			to.Stats = res.Stats
		}
		done.Trace = to
	default:
		return nil, fmt.Errorf("shard: lease %d has no work", lease.ID)
	}
	done.CutoffApplied = j.applied.Swap(0)
	if j.ledger != nil {
		done.Ledger = j.ledger.Export()
	}
	return done, nil
}

// newWorkerJob materializes a job definition: metric by name, the sketch
// corpus from the shared registry (snapshot-warmed when available), and
// the job's core options rebuilt from the wire scalars.
func newWorkerJob(jm *jobMsg, registry *corpus.Registry, obsv *obs.Registry, procs int) (*wjob, error) {
	metric, err := dist.ByName(jm.Metric)
	if err != nil {
		return nil, err
	}
	c, err := registry.Get(corpus.Options{
		DSL:        jm.DSL,
		BucketCap:  jm.Opts.BucketCap,
		ScanBudget: jm.Opts.ScanBudget,
	})
	if err != nil {
		return nil, err
	}
	wo := jm.Opts
	j := &wjob{
		id:   jm.ID,
		name: jm.Name,
		segs: jm.Segments,
		opts: core.Options{
			DSL:             jm.DSL,
			Metric:          metric,
			InitialSamples:  wo.InitialSamples,
			InitialKeep:     wo.InitialKeep,
			InitialSegments: wo.InitialSegments,
			MaxCompletions:  wo.MaxCompletions,
			MaxHandlers:     wo.MaxHandlers,
			BucketCap:       wo.BucketCap,
			ScanBudget:      wo.ScanBudget,
			Workers:         procs,
			RandomSegments:  wo.RandomSegments,
			NoBucketPruning: wo.NoBucketPruning,
			ExactScoring:    wo.ExactScoring,
			ScalarScoring:   wo.ScalarScoring,
			GreedyPruning:   wo.GreedyPruning,
			Sketches:        c,
			Programs:        c,
			Seed:            wo.Seed,
			Obs:             obsv,
		},
	}
	if wo.Ledger {
		j.ledger = replay.NewLedger(wo.LedgerCap, wo.LedgerSeed)
		j.opts.Ledger = j.ledger
	}
	return j, nil
}

// dialRetry dials the coordinator, retrying briefly: workers are spawned
// concurrently with (or before) the listener coming up.
func dialRetry(ctx context.Context, addr string, timeout time.Duration) (*wire, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return newWire(c), nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shard: joining %s: %w", addr, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
