package shard

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestClockSyncSample pins the NTP-style two-way math: RTT excludes the
// coordinator's hold time, the offset splits the residual symmetrically,
// and the lowest-RTT exchange's estimate wins.
func TestClockSyncSample(t *testing.T) {
	c := &clockSync{}
	if _, _, ok := c.estimate(); ok {
		t.Fatal("estimate available before any sample")
	}

	// Worker sends at 0, coordinator (clock +1000) receives at 1050 and
	// replies at 1060, worker hears back at 110: RTT = 110 − (1060−1050) =
	// 100, offset = ((1050−0)+(1060−110))/2 = 1000.
	c.sample(0, 1050, 1060, 110)
	rtt, off, ok := c.estimate()
	if !ok || rtt != 100 || off != 1000 {
		t.Fatalf("first sample: rtt=%d off=%d ok=%v, want 100, 1000, true", rtt, off, ok)
	}

	// A higher-RTT exchange updates lastRTT but not the offset estimate.
	c.sample(200, 1450, 1460, 510)
	rtt, off, _ = c.estimate()
	if rtt != 300 || off != 1000 {
		t.Errorf("after noisy sample: rtt=%d off=%d, want 300, 1000", rtt, off)
	}

	// A tighter exchange takes over the estimate.
	c.sample(600, 1622, 1624, 650)
	rtt, off, _ = c.estimate()
	if rtt != 48 || off != 1000+(-2) {
		// offset = ((1622−600)+(1624−650))/2 = (1022+974)/2 = 998
		t.Errorf("after tight sample: rtt=%d off=%d, want 48, 998", rtt, off)
	}

	// Negative apparent RTT (clock jitter) clamps to zero rather than
	// going backwards.
	c.sample(0, 1000, 1010, 5)
	rtt, _, _ = c.estimate()
	if rtt != 0 {
		t.Errorf("negative RTT not clamped: %d", rtt)
	}
}

// TestCorrectedSec pins the worker-to-registry timeline mapping the fleet
// trace uses.
func TestCorrectedSec(t *testing.T) {
	start := time.Unix(100, 0)
	// Worker clock runs 2s behind the coordinator: offset = +2s.
	workerNanos := time.Unix(101, 500e6).UnixNano()
	if got := correctedSec(workerNanos, 2e9, start); got != 3.5 {
		t.Errorf("correctedSec = %v, want 3.5", got)
	}
}

// TestReporterFlushTelescopes pins the delta stream's core property: the
// sum of all flushed deltas equals the absolute counters the final flush
// reports, no matter how flushes interleave with increments — the
// invariant that makes heartbeat and lease-completion shipping paths safe
// to mix.
func TestReporterFlushTelescopes(t *testing.T) {
	obsv := obs.New()
	rep := newReporter(obsv)

	obsv.Counter("core.a").Add(5)
	obsv.Histogram("lat").Observe(1)
	tm, abs := rep.flush()
	if tm == nil || tm.Counters["core.a"] != 5 || abs["core.a"] != 5 {
		t.Fatalf("first flush: tm=%+v abs=%v", tm, abs)
	}
	if tm.Hists["lat"].Count != 1 {
		t.Errorf("first flush hist delta = %+v", tm.Hists["lat"])
	}

	// Nothing moved: telemetry is nil, absolutes unchanged.
	tm, abs = rep.flush()
	if tm != nil {
		t.Errorf("idle flush produced telemetry: %+v", tm)
	}
	if abs["core.a"] != 5 {
		t.Errorf("idle flush absolutes = %v", abs)
	}

	obsv.Counter("core.a").Add(3)
	obsv.Counter("core.b").Add(2)
	obsv.Gauge("g").Set(7)
	tm, abs = rep.flush()
	if tm.Counters["core.a"] != 3 || tm.Counters["core.b"] != 2 {
		t.Errorf("second flush deltas = %v", tm.Counters)
	}
	if abs["core.a"] != 5+3 {
		t.Errorf("second flush absolutes = %v", abs)
	}
	if tm.Gauges["g"] != 7 {
		t.Errorf("gauges are absolutes, got %v", tm.Gauges)
	}
}
