package shard

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/obs"
)

// checkFederation asserts the telemetry plane's core invariant: for every
// federated counter family, the {worker="fleet"} aggregate equals the sum
// of the per-worker labeled series — regardless of reissues, duplicate
// completions, or worker deaths (each shipped delta folds exactly once).
func checkFederation(t *testing.T, obsv *obs.Registry, rep *Report) {
	t.Helper()
	all := obsv.CounterValues("")
	families := 0
	for k, fleet := range all {
		base, ok := strings.CutSuffix(k, `{worker="fleet"}`)
		if !ok {
			continue
		}
		families++
		var sum int64
		for _, w := range rep.Workers {
			sum += all[obs.Labeled(base, "worker", strconv.Itoa(w.ID))]
		}
		if sum != fleet {
			t.Errorf("federation: %s fleet=%d, sum over workers=%d", base, fleet, sum)
		}
	}
	if families == 0 {
		t.Error("no {worker=\"fleet\"} counter series federated")
	}
}

// TestShardedWorkerDeathConverges is the fault-injection pin: SIGKILL one
// of two workers mid-search, the coordinator requeues its inflight leases
// for the survivor, and the run still converges to the single-process
// winner (lease outcomes are pure functions of the lease, so re-execution
// cannot change the answer).
func TestShardedWorkerDeathConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker fleets")
	}
	segs := segmentsFor(t, "reno")
	opts := quickOpts(dsl.Reno())

	single, err := core.Synthesize(context.Background(), segs, opts)
	if err != nil {
		t.Fatal(err)
	}

	obsv := obs.New()
	co, err := NewCoordinator("", obsv, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	// SHARD_POSTMORTEM_DIR lets CI keep the bundle as an artifact; tests
	// default to a scratch dir.
	pmDir := os.Getenv("SHARD_POSTMORTEM_DIR")
	if pmDir == "" {
		pmDir = t.TempDir()
	}
	co.PostmortemDir = pmDir
	ctx := context.Background()
	cmds, err := SpawnWorkers(ctx, 2, co.Addr(), "", 0, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
	}()
	if err := co.AwaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	jm := &jobMsg{
		ID:       "job-1",
		Name:     "fault",
		DSL:      opts.DSL,
		Metric:   metricName(opts),
		Segments: segs,
		Opts:     wireOptions(opts),
	}
	j := co.NewJob(jm.ID, jm, nil)

	// Kill one worker while every worker holds an inflight lease — then the
	// victim's lease is lost with near-certainty and the coordinator must
	// reissue it to the survivor.
	go func() {
		for {
			co.mu.Lock()
			busy := len(co.workers) == 2
			for _, wc := range co.workers {
				if len(wc.inflight) == 0 {
					busy = false
				}
			}
			co.mu.Unlock()
			if busy {
				cmds[0].Process.Kill()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	copts := opts
	copts.LeaseExec = j
	copts.Obs = obsv
	res, err := core.Synthesize(ctx, segs, copts)
	if err != nil {
		t.Fatal(err)
	}
	co.EndJob(j)
	rep := co.Report()

	if got, want := res.Handler.String(), single.Handler.String(); got != want {
		t.Errorf("handler after worker death %q, single-process %q", got, want)
	}
	if math.Float64bits(res.Distance) != math.Float64bits(single.Distance) {
		t.Errorf("distance after worker death %v, single-process %v", res.Distance, single.Distance)
	}
	if rep.Counters["shard.worker_deaths"] != 1 {
		t.Errorf("shard.worker_deaths = %d, want 1", rep.Counters["shard.worker_deaths"])
	}
	if rep.Counters["shard.leases_reissued"] == 0 {
		t.Error("no leases reissued after SIGKILL")
	}
	if !rep.Merged.Funnel.Reconciles() {
		t.Error("merged funnel does not reconcile after worker death")
	}
	var lost int
	for _, w := range rep.Workers {
		if w.Lost {
			lost++
		}
	}
	if lost != 1 {
		t.Errorf("report marks %d workers lost, want 1", lost)
	}
	// Federation stays exact across the death: the victim's folded deltas
	// are retained, only its unshipped tail is lost from both sides of the
	// equation equally.
	checkFederation(t, obsv, rep)

	// The death must have produced exactly one postmortem bundle with a
	// parseable meta header naming the lost worker.
	bundles, err := filepath.Glob(filepath.Join(pmDir, "postmortem-worker-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("found %d postmortem bundles, want 1 (%v)", len(bundles), bundles)
	}
	f, err := os.Open(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("postmortem bundle is empty")
	}
	var meta postmortemMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		t.Fatalf("postmortem meta line: %v", err)
	}
	if !strings.HasPrefix(meta.Postmortem, "worker-") || meta.Worker == 0 {
		t.Errorf("postmortem meta names %q (worker %d)", meta.Postmortem, meta.Worker)
	}
	if meta.Cause == "" {
		t.Error("postmortem meta has no cause")
	}
	var want *WorkerReport
	for i := range rep.Workers {
		if rep.Workers[i].Lost {
			want = &rep.Workers[i]
		}
	}
	if want != nil && meta.Worker != want.ID {
		t.Errorf("postmortem for worker %d, report lost worker %d", meta.Worker, want.ID)
	}
	// Every subsequent line must parse as a flight event (tail may be
	// empty if the worker died before its first beat carried one).
	events := 0
	for sc.Scan() {
		var ev obs.FlightEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("postmortem flight line %d: %v", events+1, err)
		}
		events++
	}
	if events != meta.FlightLen {
		t.Errorf("postmortem has %d flight lines, meta says %d", events, meta.FlightLen)
	}
}

// TestShardedFederationNoDoubleCount pins the healthy-path federation
// contract on a 2-worker run with a fast heartbeat: the fleet aggregate
// equals the per-worker sum for every federated family, and — because
// every lease executed exactly once — the fleet's core.handlers_scored
// (counted at score time on the workers, shipped as deltas over two
// interleaved paths) equals the outcome-derived merge the coordinator
// computes independently from lease results.
func TestShardedFederationNoDoubleCount(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker fleets")
	}
	segs := segmentsFor(t, "reno")
	obsv := obs.New()
	_, rep, err := Synthesize(context.Background(), segs, Options{
		Workers:   2,
		Heartbeat: 25 * time.Millisecond,
		Core:      quickOpts(dsl.Reno()),
		Obs:       obsv,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFederation(t, obsv, rep)

	all := obsv.CounterValues("")
	fleet := all[obs.Labeled("core.handlers_scored", "worker", "fleet")]
	if fleet == 0 {
		t.Fatal("fleet core.handlers_scored = 0")
	}
	var merged int64
	for _, w := range rep.Workers {
		merged += int64(w.Handlers)
		if got := w.Federated["core.handlers_scored"]; got != all[obs.Labeled("core.handlers_scored", "worker", strconv.Itoa(w.ID))] {
			t.Errorf("worker %d federated totals diverge from labeled series", w.ID)
		}
	}
	if fleet != merged {
		t.Errorf("fleet core.handlers_scored = %d, outcome-derived merge = %d (healthy run: must agree exactly)", fleet, merged)
	}

	if rep.Cluster == nil {
		t.Fatal("report has no cluster snapshot")
	}
	if len(rep.Cluster.Workers) != 2 {
		t.Fatalf("cluster snapshot has %d workers, want 2", len(rep.Cluster.Workers))
	}
	for _, cw := range rep.Cluster.Workers {
		if cw.LastBeatSec < 0 {
			t.Errorf("worker %d never heartbeat", cw.ID)
		}
		if cw.Handlers > 0 && cw.CandidatesPerSec <= 0 {
			t.Errorf("worker %d: %d handlers but candidates/sec = %v", cw.ID, cw.Handlers, cw.CandidatesPerSec)
		}
	}
}

// TestShardedFederationUnderReissue forces duplicate completions with an
// aggressive lease deadline: leases outliving 1ms are reissued while the
// original executor keeps running, so multiple workers complete the same
// lease. The duplicate's *result* is dropped (winner invariance below) but
// its telemetry is real work and must fold exactly once — fleet still
// equals the per-worker sum.
func TestShardedFederationUnderReissue(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker fleets")
	}
	segs := segmentsFor(t, "reno")
	opts := quickOpts(dsl.Reno())
	single, err := core.Synthesize(context.Background(), segs, opts)
	if err != nil {
		t.Fatal(err)
	}

	obsv := obs.New()
	res, rep, err := Synthesize(context.Background(), segs, Options{
		Workers:       2,
		LeaseDeadline: time.Millisecond,
		Heartbeat:     25 * time.Millisecond,
		Core:          opts,
		Obs:           obsv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters["shard.leases_reissued"] == 0 {
		t.Error("1ms deadline reissued no leases — test exercised nothing")
	}
	if got, want := res.Handler.String(), single.Handler.String(); got != want {
		t.Errorf("handler under reissue races %q, single-process %q", got, want)
	}
	if math.Float64bits(res.Distance) != math.Float64bits(single.Distance) {
		t.Errorf("distance under reissue races %v, single-process %v", res.Distance, single.Distance)
	}
	checkFederation(t, obsv, rep)
}
