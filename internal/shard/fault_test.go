package shard

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/obs"
)

// TestShardedWorkerDeathConverges is the fault-injection pin: SIGKILL one
// of two workers mid-search, the coordinator requeues its inflight leases
// for the survivor, and the run still converges to the single-process
// winner (lease outcomes are pure functions of the lease, so re-execution
// cannot change the answer).
func TestShardedWorkerDeathConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker fleets")
	}
	segs := segmentsFor(t, "reno")
	opts := quickOpts(dsl.Reno())

	single, err := core.Synthesize(context.Background(), segs, opts)
	if err != nil {
		t.Fatal(err)
	}

	obsv := obs.New()
	co, err := NewCoordinator("", obsv, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ctx := context.Background()
	cmds, err := SpawnWorkers(ctx, 2, co.Addr(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range cmds {
			c.Process.Kill()
			c.Wait()
		}
	}()
	if err := co.AwaitWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	jm := &jobMsg{
		ID:       "job-1",
		Name:     "fault",
		DSL:      opts.DSL,
		Metric:   metricName(opts),
		Segments: segs,
		Opts:     wireOptions(opts),
	}
	j := co.NewJob(jm.ID, jm, nil)

	// Kill one worker while every worker holds an inflight lease — then the
	// victim's lease is lost with near-certainty and the coordinator must
	// reissue it to the survivor.
	go func() {
		for {
			co.mu.Lock()
			busy := len(co.workers) == 2
			for _, wc := range co.workers {
				if len(wc.inflight) == 0 {
					busy = false
				}
			}
			co.mu.Unlock()
			if busy {
				cmds[0].Process.Kill()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	copts := opts
	copts.LeaseExec = j
	copts.Obs = obsv
	res, err := core.Synthesize(ctx, segs, copts)
	if err != nil {
		t.Fatal(err)
	}
	co.EndJob(j)
	rep := co.Report()

	if got, want := res.Handler.String(), single.Handler.String(); got != want {
		t.Errorf("handler after worker death %q, single-process %q", got, want)
	}
	if math.Float64bits(res.Distance) != math.Float64bits(single.Distance) {
		t.Errorf("distance after worker death %v, single-process %v", res.Distance, single.Distance)
	}
	if rep.Counters["shard.worker_deaths"] != 1 {
		t.Errorf("shard.worker_deaths = %d, want 1", rep.Counters["shard.worker_deaths"])
	}
	if rep.Counters["shard.leases_reissued"] == 0 {
		t.Error("no leases reissued after SIGKILL")
	}
	if !rep.Merged.Funnel.Reconciles() {
		t.Error("merged funnel does not reconcile after worker death")
	}
	var lost int
	for _, w := range rep.Workers {
		if w.Lost {
			lost++
		}
	}
	if lost != 1 {
		t.Errorf("report marks %d workers lost, want 1", lost)
	}
}
