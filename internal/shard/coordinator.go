package shard

import (
	"context"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/replay"
)

// Observability instruments (on the coordinator's obs.Registry):
//
//	counters  shard.leases_issued, shard.leases_stolen,
//	          shard.leases_reissued, shard.cutoff_broadcasts,
//	          shard.cutoff_applied, shard.worker_deaths
//	gauges    shard.workers
//	hists     shard.heartbeat_rtt_seconds (wire latency, from the beat
//	          exchange); federated per-worker copies of every worker
//	          instrument under {worker="N"} labels plus a {worker="fleet"}
//	          aggregate — including shard.cutoff_propagation_seconds,
//	          measured worker-side from tighten-broadcast to CAS.
//	board     one "shard/worker-NN" row per connected worker, with the
//	          current lease as its phase and handler progress at heartbeat
//	          cadence — the /runs view of a sharded run.
//	records   shard.worker_joined / shard.worker_died (retained, on the
//	          SSE feed); shard.lease_stolen as transient SSE-only events.

// Coordinator accepts worker connections and hands out leases. Workers
// pull (Want → Lease); each lease is tracked until its first Done — a
// worker death or an expired deadline puts it back on the queue, and a
// late duplicate completion is ignored (lease outcomes are pure functions
// of the lease, so whichever copy lands first is THE result).
type Coordinator struct {
	obsv          *obs.Registry
	ln            net.Listener
	leaseDeadline time.Duration

	// PostmortemDir, when set before workers join, receives one JSONL
	// bundle per worker lost mid-run (meta header + last flight tail).
	PostmortemDir string

	mu       sync.Mutex
	cond     *sync.Cond // signals queue growth, worker joins, and close
	workers  map[int]*workerConn
	jobs     map[string]*job
	queue    []*pendingLease
	pending  map[int64]*pendingLease // issued or queued, not yet completed
	nextWID  int
	nextLID  int64
	nextPref int           // round-robin preferred-worker assignment cursor
	dead     []*workerConn // lost (or shutdown-released) workers, accounting retained
	spans    []obs.TrackSpan
	closed   bool

	gWorkers    *obs.Gauge
	cDeaths     *obs.Counter
	cIssued     *obs.Counter
	cStolen     *obs.Counter
	cReissued   *obs.Counter
	cBroadcasts *obs.Counter
	cApplied    *obs.Counter
	hBeatRTT    *obs.Histogram
}

// workerConn is the coordinator's view of one connected worker.
type workerConn struct {
	id       int
	pid      int
	w        *wire
	sent     map[string]bool // job definitions already shipped
	inflight map[int64]*pendingLease
	live     *obs.Run
	joined   time.Time

	leases   int
	stolen   int
	reissued int // leases taken back from this worker (death or straggle)
	handlers int
	counters map[string]int64
	applied  int64
	stats    core.SearchStats

	// Telemetry-plane state (under co.mu unless noted).
	fedTotals   map[string]int64 // federated counter running totals
	lastBeat    time.Time        // zero until the first heartbeat
	rttNanos    int64            // last reported beat RTT
	offsetNanos int64            // best clock-offset estimate (coord − worker)
	lastFlight  []obs.FlightEvent
	lost        bool
	diedAt      time.Time
}

// job is one synthesis job being sharded.
type job struct {
	co  *Coordinator
	msg *jobMsg

	mu     sync.Mutex
	best   float64        // best-so-far distance, the broadcast cutoff
	ledger *replay.Ledger // merged sample (nil when the job has none)
	ended  bool
}

// pendingLease is one lease from enqueue to first completion.
type pendingLease struct {
	id        int64
	job       *job
	msg       *leaseMsg
	preferred int         // worker the round-robin planner assigned it to
	holder    *workerConn // worker currently executing it (nil when queued)
	issuedAt  time.Time   // zero until first issue
	requeued  bool        // currently back on the queue after a loss
	done      bool

	// Iteration leases: where this chunk's outcomes land.
	call    *iterCall
	offsets []int // chunk position i → call.outs index

	// Whole-trace leases: the waiter's result slot.
	tcall *traceCall
}

// iterCall collects one ExecIteration's chunk results.
type iterCall struct {
	mu        sync.Mutex
	remaining int
	outs      []core.BucketOutcome
	donec     chan struct{}
}

// traceCall collects one whole-trace lease result.
type traceCall struct {
	out   *traceOutcome
	donec chan struct{}
}

// NewCoordinator listens on addr ("127.0.0.1:0" for an ephemeral port)
// and starts accepting workers. leaseDeadline > 0 additionally reissues
// leases that stay uncompleted that long — the straggler/livelock
// backstop; worker death always triggers reissue regardless.
func NewCoordinator(addr string, obsv *obs.Registry, leaseDeadline time.Duration) (*Coordinator, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		obsv:          obsv,
		ln:            ln,
		leaseDeadline: leaseDeadline,
		workers:       map[int]*workerConn{},
		jobs:          map[string]*job{},
		pending:       map[int64]*pendingLease{},
		gWorkers:      obsv.Gauge("shard.workers"),
		cDeaths:       obsv.Counter("shard.worker_deaths"),
		cIssued:       obsv.Counter("shard.leases_issued"),
		cStolen:       obsv.Counter("shard.leases_stolen"),
		cReissued:     obsv.Counter("shard.leases_reissued"),
		cBroadcasts:   obsv.Counter("shard.cutoff_broadcasts"),
		cApplied:      obsv.Counter("shard.cutoff_applied"),
		hBeatRTT:      obsv.Histogram("shard.heartbeat_rtt_seconds"),
	}
	co.cond = sync.NewCond(&co.mu)
	obsv.SetCluster(func() any { return co.ClusterSnapshot() })
	go co.accept()
	if leaseDeadline > 0 {
		go co.reapLoop()
	}
	return co, nil
}

// Addr is the coordinator's listen address, for workers to join.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// accept admits workers until the listener closes.
func (co *Coordinator) accept() {
	for {
		c, err := co.ln.Accept()
		if err != nil {
			return
		}
		go co.serveConn(newWire(c))
	}
}

// serveConn runs one worker's connection: handshake, then the pull loop.
func (co *Coordinator) serveConn(w *wire) {
	fr, err := w.read()
	if err != nil || fr.Hello == nil {
		w.close()
		return
	}
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		w.close()
		return
	}
	co.nextWID++
	wc := &workerConn{
		id:        co.nextWID,
		pid:       fr.Hello.PID,
		w:         w,
		sent:      map[string]bool{},
		inflight:  map[int64]*pendingLease{},
		counters:  map[string]int64{},
		fedTotals: map[string]int64{},
		joined:    time.Now(),
	}
	co.workers[wc.id] = wc
	co.gWorkers.Set(float64(len(co.workers)))
	co.cond.Broadcast() // wake AwaitWorkers
	co.mu.Unlock()
	wc.live = co.obsv.Board().Start(fmt.Sprintf("shard/worker-%02d", wc.id), 0)
	wc.live.SetPhase("idle")
	co.obsv.Record("shard.worker_joined", map[string]any{"worker": wc.id, "pid": wc.pid})

	for {
		fr, err := w.read()
		if err != nil {
			co.dropWorker(wc, err)
			return
		}
		switch {
		case fr.Want != nil:
			if !co.issueNext(wc) {
				co.dropWorker(wc, nil)
				return
			}
		case fr.Done != nil:
			co.handleDone(wc, fr.Done)
		case fr.Improve != nil:
			co.handleImprove(wc, fr.Improve)
		case fr.Beat != nil:
			co.handleBeat(wc, fr.Beat)
		case fr.Flight != nil:
			co.handleFlight(wc, fr.Flight)
		}
	}
}

// handleBeat answers the NTP exchange and folds the heartbeat's payload:
// telemetry deltas, clock estimates, liveness, and the piggybacked flight
// tail. Acks go out before the fold so queueing behind federation work
// never inflates the RTT samples.
func (co *Coordinator) handleBeat(wc *workerConn, b *beatMsg) {
	recv := time.Now()
	_ = wc.w.write(&frame{BeatAck: &beatAckMsg{T1: b.T1, T2: recv.UnixNano(), T3: time.Now().UnixNano()}})
	co.foldTelemetry(wc, b.Telemetry)
	if b.LastRTTNanos > 0 {
		co.hBeatRTT.Observe(float64(b.LastRTTNanos) / 1e9)
	}
	co.mu.Lock()
	wc.lastBeat = recv
	if b.HasClock {
		wc.rttNanos = b.LastRTTNanos
		wc.offsetNanos = b.OffsetNanos
	}
	if len(b.Flight) > 0 {
		wc.lastFlight = b.Flight
	}
	co.mu.Unlock()
}

// handleFlight retains a worker-shipped flight tail (error, SIGQUIT, or
// exit) and surfaces the shipment on the event feed.
func (co *Coordinator) handleFlight(wc *workerConn, f *flightMsg) {
	co.mu.Lock()
	if len(f.Events) > 0 {
		wc.lastFlight = f.Events
	}
	co.mu.Unlock()
	co.obsv.Transient("shard.worker_flight", map[string]any{
		"worker": wc.id, "reason": f.Reason, "events": len(f.Events),
	})
}

// issueNext blocks until a lease is available and sends it (preceded by
// the job definition when this worker has not seen it). Returns false
// when the coordinator closed or the send failed.
func (co *Coordinator) issueNext(wc *workerConn) bool {
	wc.live.SetPhase("idle")
	co.mu.Lock()
	var pl *pendingLease
	for {
		if co.closed {
			co.mu.Unlock()
			return false
		}
		if pl = co.popLocked(wc.id); pl != nil {
			break
		}
		co.cond.Wait()
	}
	pl.issuedAt = time.Now()
	pl.requeued = false
	pl.holder = wc
	wc.inflight[pl.id] = pl
	wc.leases++
	stolen := pl.preferred != wc.id
	if stolen {
		wc.stolen++
		co.cStolen.Inc()
	}
	co.cIssued.Inc()
	needJob := !wc.sent[pl.job.msg.ID]
	if needJob {
		wc.sent[pl.job.msg.ID] = true
	}
	co.mu.Unlock()
	if stolen {
		co.obsv.Transient("shard.lease_stolen", map[string]any{
			"lease": pl.id, "worker": wc.id, "from": pl.preferred,
		})
	}

	if needJob {
		if err := wc.w.write(&frame{Job: pl.job.msg}); err != nil {
			return false
		}
	}
	if pl.msg.Iter != nil {
		wc.live.SetPhase(fmt.Sprintf("lease %d: iter %d, %d buckets",
			pl.id, pl.msg.Iter.Iteration, len(pl.msg.Iter.Buckets)))
	} else {
		wc.live.SetPhase(fmt.Sprintf("lease %d: trace %s", pl.id, pl.job.msg.Name))
	}
	return wc.w.write(&frame{Lease: pl.msg}) == nil
}

// popLocked removes the next lease from the queue, preferring one the
// round-robin planner assigned to this worker; taking another worker's
// lease is a steal. Caller holds co.mu.
func (co *Coordinator) popLocked(workerID int) *pendingLease {
	if len(co.queue) == 0 {
		return nil
	}
	idx := 0
	for i, pl := range co.queue {
		if pl.preferred == workerID {
			idx = i
			break
		}
	}
	pl := co.queue[idx]
	co.queue = append(co.queue[:idx], co.queue[idx+1:]...)
	return pl
}

// handleDone completes a lease: the first result wins, duplicates (from a
// reissued lease whose original executor survived) are dropped. Worker
// telemetry folds into the per-worker report state.
func (co *Coordinator) handleDone(wc *workerConn, d *leaseDoneMsg) {
	// Telemetry folds exactly once per Done — even a duplicate completion
	// (reissue race) carries deltas for work that genuinely ran, and its
	// flush drained the same telescoping stream the heartbeats use, so
	// dropping the result below never drops or double-counts instrument
	// increments. (/runs board rows advance here too, via the fold.)
	co.foldTelemetry(wc, d.Telemetry)
	co.mu.Lock()
	executed := wc.inflight[d.ID]
	delete(wc.inflight, d.ID)
	if d.EndNanos > d.StartNanos {
		// The fleet trace records every execution, winner or duplicate:
		// the lane shows what the worker actually spent its time on.
		co.spans = append(co.spans, workerTrackSpan(wc, executed, d, co.obsv.StartTime()))
	}
	pl, ok := co.pending[d.ID]
	if !ok || pl.done {
		co.mu.Unlock()
		return
	}
	pl.done = true
	delete(co.pending, d.ID)
	if pl.requeued {
		// The loser copy is still queued; drop it so no worker re-executes
		// a completed lease.
		for i, q := range co.queue {
			if q.id == pl.id {
				co.queue = append(co.queue[:i], co.queue[i+1:]...)
				break
			}
		}
		pl.requeued = false
	}
	wc.applied += d.CutoffApplied
	if d.CutoffApplied > 0 {
		co.cApplied.Add(d.CutoffApplied)
	}
	for k, v := range d.Counters {
		wc.counters[k] = v
	}
	part := outcomesStats(d)
	wc.handlers += part.HandlersScored
	wc.stats.Merge(part)
	co.mu.Unlock()

	if len(d.Ledger) > 0 {
		pl.job.mu.Lock()
		if pl.job.ledger != nil {
			pl.job.ledger.Absorb(d.Ledger)
		}
		pl.job.mu.Unlock()
	}

	if pl.call != nil {
		pl.call.mu.Lock()
		for i, o := range d.Outcomes {
			if i < len(pl.offsets) {
				pl.call.outs[pl.offsets[i]] = o
			}
		}
		pl.call.remaining--
		if pl.call.remaining == 0 {
			close(pl.call.donec)
		}
		pl.call.mu.Unlock()
	}
	if pl.tcall != nil && d.Trace != nil {
		pl.tcall.out = d.Trace
		close(pl.tcall.donec)
	}
}

// outcomesStats renders one Done's outcomes as a partial SearchStats so
// per-worker telemetry merges through the one Merge everybody else uses.
func outcomesStats(d *leaseDoneMsg) core.SearchStats {
	if d.Trace != nil {
		return d.Trace.Stats
	}
	var s core.SearchStats
	for _, o := range d.Outcomes {
		if !o.Scored {
			continue
		}
		s.HandlersScored += o.Handlers
		s.SketchesScored += o.SketchesTaken
		s.Funnel.Merge(o.Funnel)
		s.Buckets = append(s.Buckets, core.BucketStats{
			Ops:            o.Ops,
			Iterations:     1,
			SketchesTaken:  o.SketchesTaken,
			HandlersScored: o.Handlers,
			Pruned:         o.Pruned,
			Funnel:         o.Funnel,
			Exhausted:      o.Exhausted,
			Best:           o.Score,
		})
	}
	return s
}

// handleImprove folds a worker-reported improvement into the job's best
// and rebroadcasts the tightened cutoff to every other worker — the
// cluster-wide GreedyPruning bound.
func (co *Coordinator) handleImprove(from *workerConn, im *improveMsg) {
	co.mu.Lock()
	j := co.jobs[im.JobID]
	co.mu.Unlock()
	if j == nil {
		return
	}
	j.mu.Lock()
	improved := im.Distance < j.best
	if improved {
		j.best = im.Distance
	}
	j.mu.Unlock()
	if !improved {
		return
	}
	co.broadcastCutoff(im.JobID, im.Distance, from.id)
}

// broadcastCutoff sends the job's best-so-far to every worker except the
// one it came from (who already has it).
func (co *Coordinator) broadcastCutoff(jobID string, d float64, exceptID int) {
	co.mu.Lock()
	targets := make([]*workerConn, 0, len(co.workers))
	for _, wc := range co.workers {
		if wc.id != exceptID && wc.sent[jobID] {
			targets = append(targets, wc)
		}
	}
	co.mu.Unlock()
	for _, wc := range targets {
		if wc.w.write(&frame{Cutoff: &cutoffMsg{JobID: jobID, Distance: d, SentNanos: time.Now().UnixNano()}}) == nil {
			co.cBroadcasts.Inc()
		}
	}
}

// dropWorker removes a dead worker and requeues its inflight leases so
// the survivors pick them up (work re-issue on failure).
func (co *Coordinator) dropWorker(wc *workerConn, err error) {
	co.mu.Lock()
	if _, ok := co.workers[wc.id]; !ok {
		co.mu.Unlock()
		return
	}
	delete(co.workers, wc.id)
	co.gWorkers.Set(float64(len(co.workers)))
	// A dead worker's completed leases already merged into its stats; keep
	// the conn so Report's cross-worker aggregate (and the cluster view)
	// stays a full accounting.
	wc.lost = !co.closed
	wc.diedAt = time.Now()
	co.dead = append(co.dead, wc)
	// Gather the postmortem while the inflight map is still intact.
	meta := postmortemMeta{
		Postmortem:  fmt.Sprintf("worker-%02d", wc.id),
		Worker:      wc.id,
		PID:         wc.pid,
		LastBeatSec: -1,
		Counters:    wc.fedTotals,
	}
	if err != nil {
		meta.Cause = err.Error()
	} else if !co.closed {
		// Noticed via a failed send rather than the read loop (e.g. a lease
		// write to a SIGKILLed worker) — there is no read error to quote.
		meta.Cause = "connection lost"
	}
	if !wc.lastBeat.IsZero() {
		meta.LastBeatSec = time.Since(wc.lastBeat).Seconds()
	}
	tail := wc.lastFlight
	requeued := 0
	for id, pl := range wc.inflight {
		delete(wc.inflight, id)
		if pl.done || pl.requeued {
			continue
		}
		meta.Inflight = append(meta.Inflight, pl.id)
		pl.requeued = true
		co.queue = append([]*pendingLease{pl}, co.queue...)
		requeued++
	}
	sortInt64s(meta.Inflight)
	wc.reissued += requeued
	if requeued > 0 {
		co.cReissued.Add(int64(requeued))
		co.cond.Broadcast()
	}
	closed := co.closed
	pmDir := co.PostmortemDir
	co.mu.Unlock()
	wc.w.close()
	if !closed {
		co.cDeaths.Inc()
		wc.live.Finish(fmt.Errorf("shard: worker %d (pid %d) lost: %v", wc.id, wc.pid, err))
		co.obsv.Record("shard.worker_died", map[string]any{
			"worker": wc.id, "pid": wc.pid, "cause": meta.Cause,
			"reissued": requeued,
		})
		if pmDir != "" {
			co.writePostmortem(pmDir, meta, tail)
		}
	} else {
		wc.live.Finish(nil)
	}
}

// reapLoop reissues leases that outlive the deadline — stragglers and
// silent losses. The original stays tracked: whichever copy finishes
// first wins, by outcome purity both are identical anyway.
func (co *Coordinator) reapLoop() {
	tick := time.NewTicker(co.leaseDeadline / 2)
	defer tick.Stop()
	for range tick.C {
		co.mu.Lock()
		if co.closed {
			co.mu.Unlock()
			return
		}
		n := 0
		for _, pl := range co.pending {
			if pl.done || pl.requeued || pl.issuedAt.IsZero() {
				continue
			}
			if time.Since(pl.issuedAt) > co.leaseDeadline {
				pl.requeued = true
				if pl.holder != nil {
					pl.holder.reissued++
				}
				co.queue = append(co.queue, pl)
				n++
			}
		}
		if n > 0 {
			co.cReissued.Add(int64(n))
			co.cond.Broadcast()
		}
		co.mu.Unlock()
	}
}

// AwaitWorkers blocks until n workers are connected (or ctx ends).
func (co *Coordinator) AwaitWorkers(ctx context.Context, n int) error {
	stop := context.AfterFunc(ctx, func() {
		co.mu.Lock()
		co.cond.Broadcast()
		co.mu.Unlock()
	})
	defer stop()
	co.mu.Lock()
	defer co.mu.Unlock()
	for len(co.workers) < n && !co.closed && ctx.Err() == nil {
		co.cond.Wait()
	}
	if len(co.workers) >= n {
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("shard: coordinator closed before %d workers joined", n)
}

// Workers returns the number of currently connected workers.
func (co *Coordinator) Workers() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.workers)
}

// NewJob registers a synthesis job with the coordinator. ledger, when
// non-nil, receives the priority-deduplicating union of every worker's
// sample.
func (co *Coordinator) NewJob(id string, msg *jobMsg, ledger *replay.Ledger) *job {
	j := &job{co: co, msg: msg, best: math.Inf(1), ledger: ledger}
	co.mu.Lock()
	co.jobs[id] = j
	co.mu.Unlock()
	return j
}

// EndJob broadcasts the job's teardown so workers free its state.
func (co *Coordinator) EndJob(j *job) {
	j.mu.Lock()
	j.ended = true
	j.mu.Unlock()
	co.mu.Lock()
	delete(co.jobs, j.msg.ID)
	targets := make([]*workerConn, 0, len(co.workers))
	for _, wc := range co.workers {
		if wc.sent[j.msg.ID] {
			targets = append(targets, wc)
		}
	}
	co.mu.Unlock()
	for _, wc := range targets {
		wc.w.write(&frame{JobEnd: &jobEndMsg{ID: j.msg.ID}})
	}
}

// enqueue registers and queues a lease, assigning it a preferred worker
// round-robin (the baseline plan work-stealing deviates from).
func (co *Coordinator) enqueue(pl *pendingLease) {
	co.mu.Lock()
	co.nextLID++
	pl.id = co.nextLID
	pl.msg.ID = pl.id
	ids := make([]int, 0, len(co.workers))
	for id := range co.workers {
		ids = append(ids, id)
	}
	if len(ids) > 0 {
		pl.preferred = ids[co.nextPref%len(ids)]
		co.nextPref++
	}
	co.pending[pl.id] = pl
	co.queue = append(co.queue, pl)
	co.cond.Broadcast()
	co.mu.Unlock()
}

// ExecIteration implements core.LeaseExecutor: it chunks the iteration's
// buckets into small leases (guided-self-scheduling-style tails so a
// straggling worker strands little work), queues them, and waits for all
// chunks. Blocks until every chunk completes — lost leases are reissued
// on worker death or deadline — or ctx is cancelled, in which case
// incomplete buckets return Scored=false and the search winds down as an
// interrupted run.
func (j *job) ExecIteration(ctx context.Context, lease core.IterationLease) ([]core.BucketOutcome, error) {
	co := j.co
	j.mu.Lock()
	if lease.Cutoff < j.best {
		j.best = lease.Cutoff
	} else if j.best < lease.Cutoff {
		lease.Cutoff = j.best
	}
	j.mu.Unlock()

	w := co.Workers()
	if w < 1 {
		w = 1
	}
	chunk := (len(lease.Buckets) + 2*w - 1) / (2 * w)
	if chunk < 1 {
		chunk = 1
	}
	call := &iterCall{
		outs:  make([]core.BucketOutcome, len(lease.Buckets)),
		donec: make(chan struct{}),
	}
	var pls []*pendingLease
	for start := 0; start < len(lease.Buckets); start += chunk {
		end := start + chunk
		if end > len(lease.Buckets) {
			end = len(lease.Buckets)
		}
		sub := lease
		sub.Buckets = lease.Buckets[start:end]
		offsets := make([]int, end-start)
		for i := range offsets {
			offsets[i] = start + i
		}
		pls = append(pls, &pendingLease{
			job:     j,
			msg:     &leaseMsg{JobID: j.msg.ID, Iter: &sub},
			call:    call,
			offsets: offsets,
		})
	}
	call.remaining = len(pls)
	for _, pl := range pls {
		co.enqueue(pl)
	}
	select {
	case <-call.donec:
		return call.outs, nil
	case <-ctx.Done():
		co.abandon(pls)
		// Give any just-completed chunks their outcomes; the rest stay
		// unscored, matching an in-process run whose workers were not
		// admitted after cancellation.
		call.mu.Lock()
		outs := call.outs
		call.mu.Unlock()
		return outs, ctx.Err()
	}
}

// ExecTrace queues a whole-trace lease and waits for its result.
func (j *job) ExecTrace(ctx context.Context) (*traceOutcome, error) {
	tc := &traceCall{donec: make(chan struct{})}
	pl := &pendingLease{
		job:   j,
		msg:   &leaseMsg{JobID: j.msg.ID, Trace: true},
		tcall: tc,
	}
	j.co.enqueue(pl)
	select {
	case <-tc.donec:
		return tc.out, nil
	case <-ctx.Done():
		j.co.abandon([]*pendingLease{pl})
		return nil, ctx.Err()
	}
}

// abandon forgets leases after their waiter gave up, so a late completion
// does not touch freed state and queued copies stop being issued.
func (co *Coordinator) abandon(pls []*pendingLease) {
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, pl := range pls {
		if pl.id == 0 || pl.done {
			continue
		}
		pl.done = true
		delete(co.pending, pl.id)
		for i := 0; i < len(co.queue); {
			if co.queue[i].id == pl.id {
				co.queue = append(co.queue[:i], co.queue[i+1:]...)
				continue
			}
			i++
		}
	}
}

// WorkerReport is one worker's row in the shard report.
type WorkerReport struct {
	ID       int              `json:"id"`
	PID      int              `json:"pid"`
	Leases   int              `json:"leases"`
	Stolen   int              `json:"stolen,omitempty"`
	Handlers int              `json:"handlers"`
	Applied  int64            `json:"cutoffs_applied,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	// Federated is the worker's counter totals as accumulated from its
	// shipped telemetry deltas (heartbeats + lease completions) — the
	// per-worker values behind the {worker="N"} series on /metrics.
	Federated map[string]int64 `json:"federated,omitempty"`
	// Lost marks a worker that died mid-run (its completed leases remain
	// in the merged stats; its inflight ones were reissued).
	Lost bool `json:"lost,omitempty"`
	// Stats is the worker's merged partial SearchStats (not JSON-rendered:
	// bucket bests can be +Inf; MergedFunnel carries the JSON view).
	Stats core.SearchStats `json:"-"`
}

// workerReportRow snapshots one connection's accounting (callers hold
// co.mu).
func workerReportRow(wc *workerConn) WorkerReport {
	return WorkerReport{
		ID:        wc.id,
		PID:       wc.pid,
		Leases:    wc.leases,
		Stolen:    wc.stolen,
		Handlers:  wc.handlers,
		Applied:   wc.applied,
		Counters:  wc.counters,
		Federated: wc.fedTotals,
		Lost:      wc.lost,
		Stats:     wc.stats,
	}
}

// Report summarizes a sharded run: per-worker accounting, the merged
// cross-worker SearchStats (via core.SearchStats.Merge), the shard.*
// counters, and the final cluster snapshot.
type Report struct {
	Workers []WorkerReport `json:"workers"`
	// Merged is every worker's partial stats folded together — the
	// cross-worker aggregate the coordinator's own run report reconciles
	// against.
	Merged core.SearchStats `json:"-"`
	// MergedFunnel is Merged.Funnel rendered for JSON consumers.
	MergedFunnel core.FunnelReport `json:"merged_funnel"`
	Counters     map[string]int64  `json:"counters"`
	// Cluster is the fleet view at report time (heartbeat ages, clock
	// estimates, per-worker rates) — what /cluster served live.
	Cluster *ClusterSnapshot `json:"cluster,omitempty"`
}

// Report snapshots the coordinator's accounting. Live workers and dead
// ones both get per-worker rows (dead rows carry Lost); a lost worker's
// completed leases stay in the merge — only its inflight ones were
// reissued to survivors.
func (co *Coordinator) Report() *Report {
	co.mu.Lock()
	defer co.mu.Unlock()
	rep := &Report{Counters: co.obsv.CounterValues("shard.")}
	for _, wc := range co.dead {
		rep.Workers = append(rep.Workers, workerReportRow(wc))
	}
	for _, wc := range co.workers {
		rep.Workers = append(rep.Workers, workerReportRow(wc))
	}
	for i := range rep.Workers {
		rep.Merged.Merge(rep.Workers[i].Stats)
	}
	// Map iteration is random; report rows by worker ID.
	sort.Slice(rep.Workers, func(i, k int) bool { return rep.Workers[i].ID < rep.Workers[k].ID })
	rep.MergedFunnel = rep.Merged.Funnel.Report()
	rep.Cluster = co.clusterLocked()
	return rep
}

// Close stops the coordinator: the listener closes, blocked pulls return,
// every worker connection is torn down, and the buffered fleet-trace
// spans flush into the registry's trace sinks (before the CLI closes
// them — coordinator teardown precedes registry teardown everywhere).
func (co *Coordinator) Close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	workers := make([]*workerConn, 0, len(co.workers))
	for _, wc := range co.workers {
		workers = append(workers, wc)
	}
	spans := co.spans
	co.spans = nil
	co.cond.Broadcast()
	co.mu.Unlock()
	co.obsv.AddTrackSpans(spans)
	co.ln.Close()
	for _, wc := range workers {
		wc.w.close()
	}
}
