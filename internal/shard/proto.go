// Package shard scales synthesis horizontally: a coordinator keeps
// Algorithm 1's outer loop in-process and leases per-iteration bucket
// scoring (or, in batch mode, whole traces) to worker processes over a
// dependency-free localhost RPC. Workers pull leases (work-stealing for
// stragglers), the coordinator rebroadcasts best-so-far improvements so
// every worker's GreedyPruning cutoff tightens from remote progress, and
// per-worker telemetry merges through core.SearchStats.Merge into one
// report. Workers warm-start from a shared corpus.Registry snapshot dir,
// so fan-out cost is process spawn, not re-enumeration.
//
// Exactness: lease outcomes are pure functions of the lease
// (core.LeaseRunner resets its memo cache per lease), so which worker
// executes a lease — original assignee, thief, or a reissue after a crash
// — cannot change the result, and the default/ExactScoring modes return
// bit-identical winners and distances to a single-process run. Cutoff
// broadcasts only ever tighten a valid global lower bound, and only the
// (already scheduling-nondeterministic) GreedyPruning mode reads it.
package shard

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/trace"
)

// maxFrame bounds a single wire frame. Snapshot-warmed corpora never ship
// over the wire (only lease outcomes and job definitions do), so this is
// generous headroom, not a working limit.
const maxFrame = 1 << 28

// frame is the single wire envelope: exactly one field is set per frame.
// One self-describing gob stream per frame keeps the protocol stateless —
// a frame can be decoded in isolation, and a torn connection never leaves
// a decoder mid-stream.
type frame struct {
	Hello   *helloMsg
	Want    *wantMsg
	Job     *jobMsg
	Lease   *leaseMsg
	Done    *leaseDoneMsg
	Improve *improveMsg
	Cutoff  *cutoffMsg
	JobEnd  *jobEndMsg
	Beat    *beatMsg
	BeatAck *beatAckMsg
	Flight  *flightMsg
}

// helloMsg introduces a worker.
type helloMsg struct {
	PID   int
	Procs int
}

// wantMsg is a worker's pull request: send me one lease when you have one.
type wantMsg struct{}

// jobMsg defines a synthesis job. Sent to a worker once, before its first
// lease of the job; Segments is the job's full segment list (iteration
// leases reference subsets by index).
type jobMsg struct {
	ID       string
	Name     string
	DSL      *dsl.DSL
	Metric   string
	Segments []*trace.Segment
	Opts     WireOptions
}

// WireOptions is the scalar subset of core.Options a job ships to its
// workers. BucketCap and ScanBudget are sent post-default, so worker
// corpora hash to the same config as the coordinator's.
type WireOptions struct {
	InitialSamples  int
	InitialKeep     int
	InitialSegments int
	MaxCompletions  int
	MaxHandlers     int
	BucketCap       int
	ScanBudget      int
	RandomSegments  bool
	NoBucketPruning bool
	ExactScoring    bool
	ScalarScoring   bool
	GreedyPruning   bool
	Seed            int64
	// Ledger asks workers to sample candidate provenance into a ledger
	// compatible with the coordinator's (equal seeds assign equal
	// priorities), shipped back with each lease result and merged by
	// priority-deduplicating union.
	Ledger     bool
	LedgerCap  int
	LedgerSeed int64
}

// leaseMsg grants one lease. Exactly one of Iter/Trace is set: a bucket-
// range iteration lease (single-trace sharding) or a whole-trace lease
// (batch sharding).
type leaseMsg struct {
	ID    int64
	JobID string
	Iter  *core.IterationLease
	Trace bool
}

// leaseDoneMsg reports a completed lease.
type leaseDoneMsg struct {
	ID    int64
	JobID string
	// Outcomes aligns with the lease's Iter.Buckets.
	Outcomes []core.BucketOutcome
	// Trace is the whole-trace result.
	Trace *traceOutcome
	// CutoffApplied counts coordinator cutoff broadcasts that actually
	// tightened this worker's bound since the last report (delta).
	CutoffApplied int64
	// Ledger is the worker's current ledger sample for this job (full
	// export; the coordinator's priority-deduplicating Absorb makes
	// repeated shipment idempotent).
	Ledger []replay.LedgerItem
	// Counters snapshots the worker's obs counters (absolute values) —
	// how warm-start claims like "zero enumeration on workers" become
	// assertable from the coordinator's report. Captured in the same
	// critical section as Telemetry, so the shipped deltas telescope to
	// exactly these values.
	Counters map[string]int64
	// Telemetry carries the instrument increments since the previous
	// flush (heartbeat or completion — both drain the same stream, so
	// nothing is ever counted twice, even when the lease result itself is
	// a dropped duplicate).
	Telemetry *telemetryMsg
	// StartNanos/EndNanos stamp the lease's execution span on the
	// worker's clock (unix nanos); the coordinator corrects them by the
	// estimated clock offset when merging the fleet trace.
	StartNanos int64
	EndNanos   int64
}

// telemetryMsg is one worker's instrument increments since its previous
// telemetry flush. Counters and histogram Count/Sum/Buckets are deltas
// (consecutive flushes telescope to the absolute instrument values);
// gauges are absolutes (last write wins). Shipped on every heartbeat and
// every lease completion.
type telemetryMsg struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Hists    map[string]obs.HistSnapshot
}

// beatMsg is a worker heartbeat: liveness, telemetry deltas, the NTP-style
// clock exchange, and a small flight-ring tail so the coordinator always
// holds a recent postmortem candidate even if the worker dies without a
// goodbye (SIGKILL).
type beatMsg struct {
	// T1 is the worker's send time (unix nanos, worker clock); the
	// coordinator echoes it in the ack.
	T1 int64
	// LastRTTNanos is the round-trip measured by the previous beat's ack
	// (0 until one completes); feeds shard.heartbeat_rtt_seconds.
	LastRTTNanos int64
	// OffsetNanos is the worker's best estimate of coordinator-clock
	// minus worker-clock, from the lowest-RTT exchange so far.
	OffsetNanos int64
	// HasClock reports whether OffsetNanos is a real estimate yet.
	HasClock bool
	// Lease is the lease ID currently executing (0 when idle).
	Lease int64
	// Telemetry is the delta flush riding this beat (nil when idle and
	// nothing moved).
	Telemetry *telemetryMsg
	// Flight is a short tail of the worker's flight ring.
	Flight []obs.FlightEvent
	// Final marks the last beat before a clean exit.
	Final bool
}

// beatAckMsg answers a heartbeat with the two coordinator-side timestamps
// of the NTP exchange: T2 receive, T3 send (coordinator clock); T1 echoes
// the worker's send time.
type beatAckMsg struct {
	T1 int64
	T2 int64
	T3 int64
}

// flightMsg ships a worker's flight-ring tail out of band: on lease
// error, on SIGQUIT, and in the final frame before exit.
type flightMsg struct {
	// Reason is why the tail shipped ("error: ...", "sigquit", "exit").
	Reason string
	Events []obs.FlightEvent
}

// traceOutcome is one whole-trace lease's synthesis result, mirroring
// corpus.TraceResult.
type traceOutcome struct {
	Handler    string
	Sketch     string
	Distance   float64
	Stats      core.SearchStats
	DurationNS int64
	Err        string
}

// improveMsg is a worker's report of a new global best for a job.
type improveMsg struct {
	JobID    string
	Distance float64
}

// cutoffMsg is the coordinator's cluster-wide best-so-far rebroadcast.
type cutoffMsg struct {
	JobID    string
	Distance float64
	// SentNanos stamps the broadcast on the coordinator's clock; a worker
	// whose bound actually tightens measures propagation latency against
	// it (clock-offset-corrected).
	SentNanos int64
}

// jobEndMsg tells a worker to release a job's state.
type jobEndMsg struct {
	ID string
}

// wire frames a net.Conn: 4-byte big-endian length prefix, then one gob
// stream per frame. Writes are serialized (cutoff broadcasts come from
// other workers' connection goroutines); reads have a single owner.
type wire struct {
	c   net.Conn
	r   *bufio.Reader
	wmu sync.Mutex
}

func newWire(c net.Conn) *wire {
	return &wire{c: c, r: bufio.NewReaderSize(c, 1<<16)}
}

func (w *wire) write(fr *frame) error {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(fr); err != nil {
		return fmt.Errorf("shard: encoding frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	w.wmu.Lock()
	defer w.wmu.Unlock()
	_, err := w.c.Write(b)
	return err
}

func (w *wire) read() (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(w.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("shard: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(w.r, body); err != nil {
		return nil, err
	}
	var fr frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&fr); err != nil {
		return nil, fmt.Errorf("shard: decoding frame: %w", err)
	}
	return &fr, nil
}

func (w *wire) close() error { return w.c.Close() }
