package wire

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodePacket exercises the IPv4/TCP decoder against arbitrary bytes:
// it must never panic, and anything it accepts must re-encode to an
// equivalent header.
func FuzzDecodePacket(f *testing.F) {
	ip := &IPv4{TTL: 64, SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}}
	tcp := &TCP{SrcPort: 33000, DstPort: 80, Seq: 1000, Ack: 2000,
		Flags: FlagACK, HasTimestamps: true, TSVal: 1, TSEcr: 2,
		SACKBlocks: [][2]uint32{{3000, 4448}}}
	valid, _ := EncodePacket(ip, tcp, []byte("payload"))
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(bytes.Repeat([]byte{0xff}, 60))

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := DecodePacket(data)
		if err != nil {
			return
		}
		// Accepted packets must survive a re-encode with the same fields.
		reIP := &IPv4{TOS: pkt.IP.TOS, ID: pkt.IP.ID, TTL: pkt.IP.TTL,
			SrcIP: pkt.IP.SrcIP, DstIP: pkt.IP.DstIP}
		reTCP := &TCP{SrcPort: pkt.TCP.SrcPort, DstPort: pkt.TCP.DstPort,
			Seq: pkt.TCP.Seq, Ack: pkt.TCP.Ack, Flags: pkt.TCP.Flags,
			Window: pkt.TCP.Window, HasTimestamps: pkt.TCP.HasTimestamps,
			TSVal: pkt.TCP.TSVal, TSEcr: pkt.TCP.TSEcr,
			SACKBlocks: pkt.TCP.SACKBlocks}
		raw, err := EncodePacket(reIP, reTCP, pkt.TCP.LayerPayload())
		if err != nil {
			t.Fatalf("re-encode of accepted packet failed: %v", err)
		}
		back, err := DecodePacket(raw)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.TCP.Seq != pkt.TCP.Seq || back.TCP.Ack != pkt.TCP.Ack {
			t.Fatal("fields drifted through re-encode")
		}
	})
}

// FuzzPcapReader feeds arbitrary bytes to the pcap reader: no panics, no
// unbounded allocations.
func FuzzPcapReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	ip := &IPv4{TTL: 64, SrcIP: [4]byte{1, 2, 3, 4}, DstIP: [4]byte{5, 6, 7, 8}}
	tcp := &TCP{SrcPort: 1, DstPort: 2, Flags: FlagACK}
	raw, _ := EncodePacket(ip, tcp, nil)
	_ = w.WritePacket(time.Second, raw)
	f.Add(buf.Bytes())
	f.Add([]byte("not a pcap"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewPcapReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			if _, err := r.Read(); err != nil {
				return
			}
		}
	})
}

// FuzzDecodeEthernet covers the frame decoder including VLAN skipping.
func FuzzDecodeEthernet(f *testing.F) {
	eth := &Ethernet{EtherType: EtherTypeIPv4}
	f.Add(eth.Encode([]byte{1, 2, 3}))
	vlan := &Ethernet{EtherType: EtherTypeIPv4, HasVLAN: true, VLAN: 7}
	f.Add(vlan.Encode([]byte{4}))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEthernet(data)
		if err != nil {
			return
		}
		if len(e.LayerContents())+len(e.LayerPayload()) != len(data) {
			t.Fatal("frame split lost bytes")
		}
	})
}
