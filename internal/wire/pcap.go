package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Classic libpcap file format (not pcapng): a 24-byte global header followed
// by 16-byte per-record headers. We write microsecond timestamps with the
// LINKTYPE_RAW (101) link type, i.e. records start directly at the IPv4
// header.

const (
	pcapMagic   = 0xa1b2c3d4
	pcapVersMaj = 2
	pcapVersMin = 4
	// LinkTypeRaw is the pcap link type for raw IP packets.
	LinkTypeRaw = 101
	// DefaultSnapLen is the snapshot length written to pcap headers.
	DefaultSnapLen = 65535
)

// PcapWriter writes packets to a classic pcap stream.
type PcapWriter struct {
	w       io.Writer
	wroteHd bool
}

// NewPcapWriter returns a writer that will emit a pcap global header before
// the first packet.
func NewPcapWriter(w io.Writer) *PcapWriter { return &PcapWriter{w: w} }

// writeHeader emits the pcap global header.
func (pw *PcapWriter) writeHeader() error {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(h[4:6], pcapVersMaj)
	binary.LittleEndian.PutUint16(h[6:8], pcapVersMin)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(h[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(h[20:24], LinkTypeRaw)
	_, err := pw.w.Write(h[:])
	return err
}

// WritePacket appends one packet with the given capture timestamp.
func (pw *PcapWriter) WritePacket(ts time.Duration, data []byte) error {
	if !pw.wroteHd {
		if err := pw.writeHeader(); err != nil {
			return err
		}
		pw.wroteHd = true
	}
	if len(data) > DefaultSnapLen {
		return fmt.Errorf("wire: packet longer than snaplen (%d bytes)", len(data))
	}
	var h [16]byte
	sec := uint32(ts / time.Second)
	usec := uint32((ts % time.Second) / time.Microsecond)
	binary.LittleEndian.PutUint32(h[0:4], sec)
	binary.LittleEndian.PutUint32(h[4:8], usec)
	binary.LittleEndian.PutUint32(h[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(h[12:16], uint32(len(data)))
	if _, err := pw.w.Write(h[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(data)
	return err
}

// PcapRecord is one captured packet with its timestamp.
type PcapRecord struct {
	Time time.Duration
	Data []byte
}

// PcapReader reads packets from a classic pcap stream.
type PcapReader struct {
	r      io.Reader
	readHd bool
	// bigEndian is set when the file was written on a big-endian machine.
	bigEndian bool
	order     binary.ByteOrder
	// LinkType is the link type from the global header, valid after the
	// first Read.
	LinkType uint32
	// hdr is the header read scratch. Passing a stack array through the
	// io.Reader interface would force a heap escape per record; a struct
	// field keeps NextInto allocation-free.
	hdr [24]byte
}

// NewPcapReader returns a reader over a pcap stream.
func NewPcapReader(r io.Reader) *PcapReader { return &PcapReader{r: r} }

// Reset rewinds the reader onto a new stream, keeping no state from the
// previous one. It lets one PcapReader ingest many files without
// reallocating.
func (pr *PcapReader) Reset(r io.Reader) {
	pr.r = r
	pr.readHd = false
	pr.bigEndian = false
	pr.order = nil
	pr.LinkType = 0
}

// readHeader consumes and validates the global header.
func (pr *PcapReader) readHeader() error {
	h := pr.hdr[:24]
	if _, err := io.ReadFull(pr.r, h); err != nil {
		return fmt.Errorf("wire: reading pcap header: %w", err)
	}
	switch binary.LittleEndian.Uint32(h[0:4]) {
	case pcapMagic:
		pr.order = binary.LittleEndian
	case 0xd4c3b2a1:
		pr.order = binary.BigEndian
		pr.bigEndian = true
	default:
		return fmt.Errorf("wire: not a pcap file (magic %x)", h[0:4])
	}
	pr.LinkType = pr.order.Uint32(h[20:24])
	return nil
}

// Read returns the next record, or io.EOF at end of stream. Each call
// allocates a fresh Data buffer; streaming callers that can reuse one
// buffer should use NextInto instead.
func (pr *PcapReader) Read() (PcapRecord, error) {
	var rec PcapRecord
	if err := pr.NextInto(&rec); err != nil {
		return PcapRecord{}, err
	}
	return rec, nil
}

// NextInto reads the next record into rec, reusing rec.Data's capacity, and
// returns io.EOF at end of stream. The record body is only valid until the
// next NextInto call on the same rec; callers that retain it must copy.
func (pr *PcapReader) NextInto(rec *PcapRecord) error {
	if !pr.readHd {
		if err := pr.readHeader(); err != nil {
			return err
		}
		pr.readHd = true
	}
	h := pr.hdr[:16]
	if _, err := io.ReadFull(pr.r, h); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("wire: reading pcap record header: %w", err)
	}
	sec := pr.order.Uint32(h[0:4])
	usec := pr.order.Uint32(h[4:8])
	capLen := pr.order.Uint32(h[8:12])
	if capLen > DefaultSnapLen {
		return fmt.Errorf("wire: pcap record too large (%d bytes)", capLen)
	}
	if cap(rec.Data) < int(capLen) {
		rec.Data = make([]byte, capLen)
	}
	rec.Data = rec.Data[:capLen]
	if _, err := io.ReadFull(pr.r, rec.Data); err != nil {
		return fmt.Errorf("wire: reading pcap record body: %w", err)
	}
	rec.Time = time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond
	return nil
}

// ReadAll drains the stream into a slice of records.
func (pr *PcapReader) ReadAll() ([]PcapRecord, error) {
	var recs []PcapRecord
	for {
		rec, err := pr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
