package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func testIP() *IPv4 {
	return &IPv4{
		TTL:      64,
		Protocol: ProtoTCP,
		SrcIP:    [4]byte{10, 0, 0, 1},
		DstIP:    [4]byte{10, 0, 0, 2},
	}
}

func TestChecksumZeroOverValidHeader(t *testing.T) {
	ip := testIP()
	b, err := ip.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Checksum(b[:IPv4HeaderLen]); got != 0 {
		t.Errorf("checksum over encoded header = %#x, want 0", got)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 worked example header.
	h := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	if got := Checksum(h); got != 0xb861 {
		t.Errorf("Checksum = %#x, want 0xb861", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0x01, 0x02, 0x03}
	// Manual: 0x0102 + 0x0300 = 0x0402 -> ^0x0402 = 0xfbfd
	if got := Checksum(data); got != 0xfbfd {
		t.Errorf("Checksum(odd) = %#x, want 0xfbfd", got)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := testIP()
	ip.ID = 4242
	ip.TOS = 0x10
	payload := []byte("hello world")
	b, err := ip.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 4242 || got.TOS != 0x10 || got.TTL != 64 || got.Protocol != ProtoTCP {
		t.Errorf("decoded header fields mismatch: %+v", got)
	}
	if got.SrcIP != ip.SrcIP || got.DstIP != ip.DstIP {
		t.Errorf("addresses mismatch: %v -> %v", got.SrcIP, got.DstIP)
	}
	if !bytes.Equal(got.LayerPayload(), payload) {
		t.Errorf("payload mismatch: %q", got.LayerPayload())
	}
}

func TestDecodeIPv4Truncated(t *testing.T) {
	ip := testIP()
	b, _ := ip.Encode([]byte("data"))
	for _, n := range []int{0, 5, 19} {
		if _, err := DecodeIPv4(b[:n]); err != ErrTruncated {
			t.Errorf("DecodeIPv4(len=%d) err = %v, want ErrTruncated", n, err)
		}
	}
}

func TestDecodeIPv4BadVersion(t *testing.T) {
	ip := testIP()
	b, _ := ip.Encode(nil)
	b[0] = 0x65 // version 6
	if _, err := DecodeIPv4(b); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeIPv4CorruptChecksum(t *testing.T) {
	ip := testIP()
	b, _ := ip.Encode(nil)
	b[8] ^= 0xff // flip TTL without fixing checksum
	if _, err := DecodeIPv4(b); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestTCPRoundTripNoOptions(t *testing.T) {
	tcp := &TCP{SrcPort: 5001, DstPort: 443, Seq: 1000, Ack: 2000, Flags: FlagACK | FlagPSH, Window: 65535}
	src, dst := [4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8}
	payload := bytes.Repeat([]byte{0xab}, 100)
	b, err := tcp.Encode(src, dst, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTCP(b, src, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 5001 || got.DstPort != 443 || got.Seq != 1000 || got.Ack != 2000 {
		t.Errorf("fields mismatch: %+v", got)
	}
	if got.Flags != FlagACK|FlagPSH {
		t.Errorf("flags = %#x", got.Flags)
	}
	if got.HasTimestamps {
		t.Error("unexpected timestamps option")
	}
	if !bytes.Equal(got.LayerPayload(), payload) {
		t.Error("payload mismatch")
	}
}

func TestTCPRoundTripTimestamps(t *testing.T) {
	tcp := &TCP{SrcPort: 1, DstPort: 2, Seq: 7, Ack: 9, Flags: FlagACK, Window: 100,
		HasTimestamps: true, TSVal: 123456, TSEcr: 654321}
	src, dst := [4]byte{9, 9, 9, 9}, [4]byte{8, 8, 8, 8}
	b, err := tcp.Encode(src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTCP(b, src, dst, true)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasTimestamps || got.TSVal != 123456 || got.TSEcr != 654321 {
		t.Errorf("timestamps mismatch: %+v", got)
	}
}

func TestTCPChecksumDetectsCorruption(t *testing.T) {
	tcp := &TCP{SrcPort: 1, DstPort: 2, Seq: 7, Flags: FlagACK}
	src, dst := [4]byte{9, 9, 9, 9}, [4]byte{8, 8, 8, 8}
	b, _ := tcp.Encode(src, dst, []byte("payload"))
	b[len(b)-1] ^= 0x01
	if _, err := DecodeTCP(b, src, dst, true); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
	// Skipping verification should succeed.
	if _, err := DecodeTCP(b, src, dst, false); err != nil {
		t.Errorf("unverified decode err = %v", err)
	}
}

func TestTCPSkipsUnknownOptions(t *testing.T) {
	// Build a header with an MSS option (kind 2 len 4) by hand, then a
	// timestamps option.
	tcp := &TCP{SrcPort: 1, DstPort: 2, HasTimestamps: true, TSVal: 11, TSEcr: 22}
	src, dst := [4]byte{}, [4]byte{}
	b, _ := tcp.Encode(src, dst, nil)
	// Replace the two leading NOPs with nothing harmful: keep as is, then
	// verify option parsing over a synthetic options slice directly.
	var parsed TCP
	opts := []byte{2, 4, 0x05, 0xb4, 1, 1, 8, 10, 0, 0, 0, 1, 0, 0, 0, 2}
	if err := parsed.parseOptions(opts); err != nil {
		t.Fatal(err)
	}
	if !parsed.HasTimestamps || parsed.TSVal != 1 || parsed.TSEcr != 2 {
		t.Errorf("parsed = %+v", parsed)
	}
	_ = b
}

func TestTCPMalformedOptions(t *testing.T) {
	var parsed TCP
	for _, opts := range [][]byte{
		{8, 10, 0, 0},               // truncated timestamps
		{8, 9, 0, 0, 0, 0, 0, 0, 0}, // wrong length byte
		{2},                         // option kind with no length
		{2, 0},                      // zero length
		{2, 40, 0},                  // length beyond buffer
	} {
		if err := parsed.parseOptions(opts); err == nil {
			t.Errorf("parseOptions(%v) succeeded, want error", opts)
		}
	}
}

func TestPacketEncodeDecode(t *testing.T) {
	ip := testIP()
	tcp := &TCP{SrcPort: 33000, DstPort: 80, Seq: 1, Ack: 1, Flags: FlagACK,
		HasTimestamps: true, TSVal: 5, TSEcr: 6}
	raw, err := EncodePacket(ip, tcp, bytes.Repeat([]byte{1}, 1448))
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := DecodePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.PayloadLen() != 1448 {
		t.Errorf("payload len = %d, want 1448", pkt.PayloadLen())
	}
	if got := pkt.TCP.TransportFlow().String(); got != "33000->80" {
		t.Errorf("transport flow = %q", got)
	}
	if got := pkt.IP.NetworkFlow().String(); got != "10.0.0.1->10.0.0.2" {
		t.Errorf("network flow = %q", got)
	}
	if len(pkt.Layers()) != 2 {
		t.Errorf("layers = %d, want 2", len(pkt.Layers()))
	}
}

func TestDecodePacketRejectsUDP(t *testing.T) {
	ip := testIP()
	ip.Protocol = ProtoUDP
	b, _ := ip.Encode(make([]byte, 8))
	if _, err := DecodePacket(b); err == nil {
		t.Error("DecodePacket accepted UDP")
	}
}

func TestFlowReverse(t *testing.T) {
	f := NewFlow(NewEndpoint(LayerTypeIPv4, []byte{1, 1, 1, 1}), NewEndpoint(LayerTypeIPv4, []byte{2, 2, 2, 2}))
	r := f.Reverse()
	if r.Src() != f.Dst() || r.Dst() != f.Src() {
		t.Error("Reverse did not swap endpoints")
	}
	if r.Reverse() != f {
		t.Error("double Reverse != identity")
	}
	if f.String() != "1.1.1.1->2.2.2.2" {
		t.Errorf("flow string = %q", f.String())
	}
}

func TestEndpointAsMapKey(t *testing.T) {
	m := map[Endpoint]int{}
	e1 := NewEndpoint(LayerTypeTCP, []byte{0x1f, 0x90})
	e2 := NewEndpoint(LayerTypeTCP, []byte{0x1f, 0x90})
	m[e1] = 1
	if m[e2] != 1 {
		t.Error("equal endpoints do not hash equal")
	}
	if e1.String() != "8080" {
		t.Errorf("endpoint string = %q", e1.String())
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	ip := testIP()
	var want []PcapRecord
	for i := 0; i < 10; i++ {
		tcp := &TCP{SrcPort: 1000, DstPort: 80, Seq: uint32(i * 1448), Flags: FlagACK}
		raw, err := EncodePacket(ip, tcp, make([]byte, i*10))
		if err != nil {
			t.Fatal(err)
		}
		ts := time.Duration(i) * 123 * time.Millisecond
		if err := w.WritePacket(ts, raw); err != nil {
			t.Fatal(err)
		}
		want = append(want, PcapRecord{Time: ts, Data: raw})
	}
	r := NewPcapReader(bytes.NewReader(buf.Bytes()))
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeRaw {
		t.Errorf("link type = %d, want %d", r.LinkType, LinkTypeRaw)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Time != want[i].Time {
			t.Errorf("record %d time = %v, want %v", i, got[i].Time, want[i].Time)
		}
		if !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("record %d data mismatch", i)
		}
	}
}

func TestPcapReaderBigEndian(t *testing.T) {
	// Hand-build a big-endian pcap with one empty-payload record.
	var buf bytes.Buffer
	var h [24]byte
	binary.BigEndian.PutUint32(h[0:4], pcapMagic)
	binary.BigEndian.PutUint16(h[4:6], pcapVersMaj)
	binary.BigEndian.PutUint16(h[6:8], pcapVersMin)
	binary.BigEndian.PutUint32(h[16:20], DefaultSnapLen)
	binary.BigEndian.PutUint32(h[20:24], LinkTypeRaw)
	buf.Write(h[:])
	var rh [16]byte
	binary.BigEndian.PutUint32(rh[0:4], 3)      // 3 s
	binary.BigEndian.PutUint32(rh[4:8], 500000) // .5 s
	binary.BigEndian.PutUint32(rh[8:12], 4)
	binary.BigEndian.PutUint32(rh[12:16], 4)
	buf.Write(rh[:])
	buf.Write([]byte{1, 2, 3, 4})
	r := NewPcapReader(&buf)
	rec, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Time != 3*time.Second+500*time.Millisecond {
		t.Errorf("time = %v", rec.Time)
	}
	if !bytes.Equal(rec.Data, []byte{1, 2, 3, 4}) {
		t.Errorf("data = %v", rec.Data)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("second read err = %v, want EOF", err)
	}
}

func TestPcapReaderRejectsGarbage(t *testing.T) {
	r := NewPcapReader(bytes.NewReader([]byte("this is not a pcap file at all!!")))
	if _, err := r.Read(); err == nil {
		t.Error("Read accepted garbage magic")
	}
}

// Property: encode→decode is the identity on header fields for arbitrary
// field values and payload sizes.
func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, window uint16, plen uint8, tsval, tsecr uint32, hasTS bool) bool {
		tcp := &TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack,
			Flags: FlagACK, Window: window, HasTimestamps: hasTS, TSVal: tsval, TSEcr: tsecr}
		src, dst := [4]byte{1, 2, 3, 4}, [4]byte{4, 3, 2, 1}
		payload := make([]byte, int(plen))
		rand.New(rand.NewSource(int64(seq))).Read(payload)
		b, err := tcp.Encode(src, dst, payload)
		if err != nil {
			return false
		}
		got, err := DecodeTCP(b, src, dst, true)
		if err != nil {
			return false
		}
		ok := got.SrcPort == srcPort && got.DstPort == dstPort && got.Seq == seq &&
			got.Ack == ack && got.Window == window && got.HasTimestamps == hasTS &&
			bytes.Equal(got.LayerPayload(), payload)
		if hasTS {
			ok = ok && got.TSVal == tsval && got.TSEcr == tsecr
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the Internet checksum of any buffer with its own checksum
// appended at the right spot verifies to zero (self-inverse under fold-in).
func TestQuickChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		sum := Checksum(data)
		buf := append(append([]byte{}, data...), byte(sum>>8), byte(sum))
		return Checksum(buf) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	eth := &Ethernet{
		Src:       [6]byte{2, 0, 0, 0, 0, 1},
		Dst:       [6]byte{2, 0, 0, 0, 0, 2},
		EtherType: EtherTypeIPv4,
	}
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	frame := eth.Encode(payload)
	got, err := DecodeEthernet(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != eth.Src || got.Dst != eth.Dst || got.EtherType != EtherTypeIPv4 {
		t.Errorf("fields mismatch: %+v", got)
	}
	if !bytes.Equal(got.LayerPayload(), payload) {
		t.Error("payload mismatch")
	}
}

func TestEthernetVLAN(t *testing.T) {
	eth := &Ethernet{EtherType: EtherTypeIPv4, HasVLAN: true, VLAN: 42}
	frame := eth.Encode([]byte{1})
	got, err := DecodeEthernet(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasVLAN || got.VLAN != 42 || got.EtherType != EtherTypeIPv4 {
		t.Errorf("vlan decode: %+v", got)
	}
}

func TestEthernetTruncated(t *testing.T) {
	if _, err := DecodeEthernet(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("err = %v", err)
	}
	// VLAN tag promised but missing.
	short := make([]byte, 14)
	binary.BigEndian.PutUint16(short[12:14], EtherTypeVLAN)
	if _, err := DecodeEthernet(short); err != ErrTruncated {
		t.Errorf("vlan err = %v", err)
	}
}

func TestDecodePacketLink(t *testing.T) {
	ip := testIP()
	tcp := &TCP{SrcPort: 1, DstPort: 2, Flags: FlagACK}
	raw, err := EncodePacket(ip, tcp, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	// Raw link type: bytes as-is.
	if _, err := DecodePacketLink(LinkTypeRaw, raw); err != nil {
		t.Errorf("raw link decode: %v", err)
	}
	// Ethernet link type: framed.
	eth := &Ethernet{EtherType: EtherTypeIPv4}
	framed := eth.Encode(raw)
	pkt, err := DecodePacketLink(LinkTypeEthernet, framed)
	if err != nil {
		t.Fatalf("ethernet link decode: %v", err)
	}
	if pkt.TCP.SrcPort != 1 {
		t.Error("inner TCP lost")
	}
	// Non-IPv4 ethertype rejected.
	arp := &Ethernet{EtherType: 0x0806}
	if _, err := DecodePacketLink(LinkTypeEthernet, arp.Encode(raw)); err == nil {
		t.Error("ARP ethertype accepted")
	}
	// Unknown link type rejected.
	if _, err := DecodePacketLink(999, raw); err == nil {
		t.Error("unknown link type accepted")
	}
}
