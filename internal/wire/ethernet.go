package wire

import (
	"encoding/binary"
	"fmt"
)

// EthernetHeaderLen is the length of an untagged Ethernet II header.
const EthernetHeaderLen = 14

// EtherType values this package understands.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeVLAN = 0x8100
)

// LinkTypeEthernet is the pcap link type for Ethernet frames (EN10MB) —
// what a default tcpdump capture uses.
const LinkTypeEthernet = 1

// Ethernet is a decoded Ethernet II header. 802.1Q VLAN tags are skipped
// transparently on decode.
type Ethernet struct {
	Src, Dst  [6]byte
	EtherType uint16
	// VLAN is the 802.1Q tag value when one was present.
	VLAN    uint16
	HasVLAN bool

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// LayerContents implements Layer.
func (e *Ethernet) LayerContents() []byte { return e.contents }

// LayerPayload implements Layer.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// DecodeEthernet parses an Ethernet II frame, skipping one optional 802.1Q
// tag.
func DecodeEthernet(data []byte) (*Ethernet, error) {
	if len(data) < EthernetHeaderLen {
		return nil, ErrTruncated
	}
	e := &Ethernet{}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	off := EthernetHeaderLen
	if e.EtherType == EtherTypeVLAN {
		if len(data) < off+4 {
			return nil, ErrTruncated
		}
		e.HasVLAN = true
		e.VLAN = binary.BigEndian.Uint16(data[off:off+2]) & 0x0fff
		e.EtherType = binary.BigEndian.Uint16(data[off+2 : off+4])
		off += 4
	}
	e.contents = data[:off]
	e.payload = data[off:]
	return e, nil
}

// Encode serializes the frame around a payload.
func (e *Ethernet) Encode(payload []byte) []byte {
	n := EthernetHeaderLen
	if e.HasVLAN {
		n += 4
	}
	b := make([]byte, n+len(payload))
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	if e.HasVLAN {
		binary.BigEndian.PutUint16(b[12:14], EtherTypeVLAN)
		binary.BigEndian.PutUint16(b[14:16], e.VLAN)
		binary.BigEndian.PutUint16(b[16:18], e.EtherType)
	} else {
		binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	}
	copy(b[n:], payload)
	e.contents = b[:n]
	e.payload = b[n:]
	return b
}

// DecodePacketLink decodes a packet captured at the given pcap link type:
// LinkTypeRaw records start at the IPv4 header; LinkTypeEthernet records
// carry an Ethernet frame around it (the default for real tcpdump
// captures).
func DecodePacketLink(linkType uint32, data []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodePacketLinkInto(linkType, data, p); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodePacketLinkInto is DecodePacketLink into a reused Packet (see
// DecodePacketInto): the link-layer framing is stripped without decoding
// the full Ethernet struct, so the per-packet path stays allocation-free.
func DecodePacketLinkInto(linkType uint32, data []byte, pkt *Packet) error {
	switch linkType {
	case LinkTypeRaw:
		return DecodePacketInto(data, pkt)
	case LinkTypeEthernet:
		if len(data) < EthernetHeaderLen {
			return ErrTruncated
		}
		etherType := binary.BigEndian.Uint16(data[12:14])
		off := EthernetHeaderLen
		if etherType == EtherTypeVLAN {
			if len(data) < off+4 {
				return ErrTruncated
			}
			etherType = binary.BigEndian.Uint16(data[off+2 : off+4])
			off += 4
		}
		if etherType != EtherTypeIPv4 {
			return fmt.Errorf("wire: non-IPv4 ethertype %#04x", etherType)
		}
		return DecodePacketInto(data[off:], pkt)
	default:
		return fmt.Errorf("wire: unsupported pcap link type %d", linkType)
	}
}
