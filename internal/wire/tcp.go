package wire

import (
	"encoding/binary"
	"fmt"
)

// TCP header flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP is a decoded (or to-be-encoded) TCP segment header. The only option
// supported is Timestamps (kind 8), which the trace analyzer uses for RTT
// estimation; all other options are skipped on decode.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16

	// HasTimestamps reports whether the Timestamps option is present.
	HasTimestamps bool
	// TSVal and TSEcr are the Timestamps option values, valid when
	// HasTimestamps is true.
	TSVal uint32
	TSEcr uint32

	// SACKBlocks carries up to 4 selective-acknowledgment ranges
	// [start, end) when the SACK option (kind 5) is present.
	SACKBlocks [][2]uint32

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// LayerContents implements Layer.
func (t *TCP) LayerContents() []byte { return t.contents }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// TransportFlow returns the (src, dst) port flow.
func (t *TCP) TransportFlow() Flow {
	var s, d [2]byte
	binary.BigEndian.PutUint16(s[:], t.SrcPort)
	binary.BigEndian.PutUint16(d[:], t.DstPort)
	return NewFlow(NewEndpoint(LayerTypeTCP, s[:]), NewEndpoint(LayerTypeTCP, d[:]))
}

// headerLen returns the encoded header length including options and padding.
func (t *TCP) headerLen() int {
	n := TCPHeaderLen
	if t.HasTimestamps {
		n += 12 // NOP NOP + 10-byte timestamps option
	}
	if len(t.SACKBlocks) > 0 {
		n += 2 + 2 + 8*len(t.SACKBlocks) // NOP NOP + kind/len + blocks
	}
	return n
}

// Encode serializes the segment with payload. src and dst are the IPv4
// addresses used for the pseudo-header checksum.
func (t *TCP) Encode(src, dst [4]byte, payload []byte) ([]byte, error) {
	hl := t.headerLen()
	if hl > 60 {
		return nil, fmt.Errorf("wire: TCP options exceed header limit (%d bytes)", hl)
	}
	total := hl + len(payload)
	if total > 0xffff-IPv4HeaderLen {
		return nil, fmt.Errorf("wire: TCP segment too large (%d bytes)", total)
	}
	b := make([]byte, total)
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = uint8(hl/4) << 4
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	off := TCPHeaderLen
	if t.HasTimestamps {
		b[off] = 1   // NOP
		b[off+1] = 1 // NOP
		b[off+2] = 8 // kind: timestamps
		b[off+3] = 10
		binary.BigEndian.PutUint32(b[off+4:off+8], t.TSVal)
		binary.BigEndian.PutUint32(b[off+8:off+12], t.TSEcr)
		off += 12
	}
	if n := len(t.SACKBlocks); n > 0 {
		b[off] = 1   // NOP
		b[off+1] = 1 // NOP
		b[off+2] = 5 // kind: SACK
		b[off+3] = uint8(2 + 8*n)
		off += 4
		for _, blk := range t.SACKBlocks {
			binary.BigEndian.PutUint32(b[off:off+4], blk[0])
			binary.BigEndian.PutUint32(b[off+4:off+8], blk[1])
			off += 8
		}
	}
	copy(b[hl:], payload)
	pseudo := pseudoHeaderSum(src, dst, ProtoTCP, total)
	binary.BigEndian.PutUint16(b[16:18], checksumWithPseudo(pseudo, b))
	t.contents = b[:hl]
	t.payload = b[hl:]
	return b, nil
}

// DecodeTCP parses a TCP segment. src and dst are the enclosing IPv4
// addresses; pass verifyChecksum=false to skip checksum validation (useful
// for deliberately corrupted test inputs).
func DecodeTCP(data []byte, src, dst [4]byte, verifyChecksum bool) (*TCP, error) {
	t := &TCP{}
	if err := decodeTCPInto(data, src, dst, verifyChecksum, t); err != nil {
		return nil, err
	}
	return t, nil
}

// decodeTCPInto parses a TCP segment into t, overwriting every field
// (SACKBlocks keeps its backing array) so the struct can be reused across
// packets without allocation.
func decodeTCPInto(data []byte, src, dst [4]byte, verifyChecksum bool, t *TCP) error {
	if len(data) < TCPHeaderLen {
		return ErrTruncated
	}
	hl := int(data[12]>>4) * 4
	if hl < TCPHeaderLen || len(data) < hl {
		return ErrTruncated
	}
	if verifyChecksum {
		pseudo := pseudoHeaderSum(src, dst, ProtoTCP, len(data))
		if checksumWithPseudo(pseudo, data) != 0 {
			return ErrBadChecksum
		}
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.HasTimestamps = false
	t.TSVal, t.TSEcr = 0, 0
	t.SACKBlocks = t.SACKBlocks[:0]
	t.contents = data[:hl]
	t.payload = data[hl:]
	return t.parseOptions(data[TCPHeaderLen:hl])
}

// parseOptions walks the options area, extracting Timestamps and skipping
// everything else.
func (t *TCP) parseOptions(opts []byte) error {
	for i := 0; i < len(opts); {
		switch opts[i] {
		case 0: // end of options
			return nil
		case 1: // NOP
			i++
		case 8: // timestamps
			if i+10 > len(opts) || opts[i+1] != 10 {
				return fmt.Errorf("wire: malformed timestamps option")
			}
			t.HasTimestamps = true
			t.TSVal = binary.BigEndian.Uint32(opts[i+2 : i+6])
			t.TSEcr = binary.BigEndian.Uint32(opts[i+6 : i+10])
			i += 10
		case 5: // SACK
			if i+1 >= len(opts) {
				return fmt.Errorf("wire: truncated SACK option")
			}
			l := int(opts[i+1])
			if l < 2 || (l-2)%8 != 0 || i+l > len(opts) {
				return fmt.Errorf("wire: malformed SACK option")
			}
			for j := i + 2; j+8 <= i+l; j += 8 {
				t.SACKBlocks = append(t.SACKBlocks, [2]uint32{
					binary.BigEndian.Uint32(opts[j : j+4]),
					binary.BigEndian.Uint32(opts[j+4 : j+8]),
				})
			}
			i += l
		default:
			if i+1 >= len(opts) || opts[i+1] < 2 || i+int(opts[i+1]) > len(opts) {
				return fmt.Errorf("wire: malformed TCP option %d", opts[i])
			}
			i += int(opts[i+1])
		}
	}
	return nil
}

// Packet is a fully decoded IPv4/TCP packet.
type Packet struct {
	IP  *IPv4
	TCP *TCP
	raw []byte
}

// Raw returns the packet's original bytes.
func (p *Packet) Raw() []byte { return p.raw }

// Layers returns the decoded layers in outermost-first order.
func (p *Packet) Layers() []Layer {
	return []Layer{p.IP, p.TCP}
}

// PayloadLen returns the TCP payload length in bytes.
func (p *Packet) PayloadLen() int { return len(p.TCP.LayerPayload()) }

// DecodePacket decodes an IPv4/TCP packet from raw bytes, verifying both
// checksums.
func DecodePacket(data []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodePacketInto(data, p); err != nil {
		return nil, err
	}
	return p, nil
}

// DecodePacketInto decodes an IPv4/TCP packet into pkt, reusing its layer
// structs across calls: after the first decode no allocation happens (the
// SACK-block slice grows once to the stream's maximum). The decoded layers
// alias data and stay valid only as long as the caller's buffer does.
func DecodePacketInto(data []byte, pkt *Packet) error {
	if pkt.IP == nil {
		pkt.IP = &IPv4{}
	}
	if pkt.TCP == nil {
		pkt.TCP = &TCP{}
	}
	pkt.raw = data
	if err := decodeIPv4Into(data, pkt.IP); err != nil {
		return err
	}
	if pkt.IP.Protocol != ProtoTCP {
		return fmt.Errorf("wire: unsupported IP protocol %d", pkt.IP.Protocol)
	}
	return decodeTCPInto(pkt.IP.LayerPayload(), pkt.IP.SrcIP, pkt.IP.DstIP, true, pkt.TCP)
}

// EncodePacket builds raw bytes for an IPv4/TCP packet with the given
// payload. The IPv4 ID field is taken from ip; length and checksums are
// computed.
func EncodePacket(ip *IPv4, tcp *TCP, payload []byte) ([]byte, error) {
	ip.Protocol = ProtoTCP
	if ip.TTL == 0 {
		ip.TTL = 64
	}
	seg, err := tcp.Encode(ip.SrcIP, ip.DstIP, payload)
	if err != nil {
		return nil, err
	}
	return ip.Encode(seg)
}
