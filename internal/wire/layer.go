// Package wire implements a minimal packet layer model — Ethernet, IPv4 and
// TCP encoding and decoding plus pcap file I/O — sufficient for the traffic
// the Abagnale pipeline captures and analyzes.
//
// The design follows the layered decoding model popularized by gopacket:
// each protocol is a Layer with typed contents and an opaque payload, and a
// Packet is decoded top-down from raw bytes. Only the features needed by a
// single-bottleneck TCP flow are implemented; there is no fragmentation,
// no IPv6 and no TCP option beyond Timestamps.
package wire

import "fmt"

// LayerType identifies a protocol layer within a packet.
type LayerType int

// Known layer types.
const (
	LayerTypeEthernet LayerType = iota + 1
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypePayload
)

// String returns the conventional protocol name.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypePayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// Layer is one protocol layer of a decoded packet.
type Layer interface {
	// LayerType reports which protocol this layer holds.
	LayerType() LayerType
	// LayerContents returns the bytes that make up this layer's header.
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries above itself.
	LayerPayload() []byte
}

// Endpoint is a hashable representation of one side of a Flow, e.g. an IPv4
// address or a TCP port. Endpoints of the same type compare with ==.
type Endpoint struct {
	typ LayerType
	raw string
}

// NewEndpoint builds an endpoint of the given layer type from raw bytes.
func NewEndpoint(t LayerType, raw []byte) Endpoint {
	return Endpoint{typ: t, raw: string(raw)}
}

// Type reports the layer type the endpoint belongs to.
func (e Endpoint) Type() LayerType { return e.typ }

// Raw returns the endpoint's raw byte representation.
func (e Endpoint) Raw() []byte { return []byte(e.raw) }

// String renders the endpoint; IPv4 endpoints render dotted-quad, TCP
// endpoints render the port number.
func (e Endpoint) String() string {
	switch e.typ {
	case LayerTypeIPv4:
		if len(e.raw) == 4 {
			return fmt.Sprintf("%d.%d.%d.%d", e.raw[0], e.raw[1], e.raw[2], e.raw[3])
		}
	case LayerTypeTCP:
		if len(e.raw) == 2 {
			return fmt.Sprintf("%d", uint16(e.raw[0])<<8|uint16(e.raw[1]))
		}
	}
	return fmt.Sprintf("%x", e.raw)
}

// Flow is a directed (src, dst) endpoint pair. Flows are comparable and can
// be used as map keys to group packets of one conversation direction.
type Flow struct {
	src, dst Endpoint
}

// NewFlow builds a flow from two endpoints of the same type.
func NewFlow(src, dst Endpoint) Flow { return Flow{src: src, dst: dst} }

// Endpoints returns the flow's source and destination.
func (f Flow) Endpoints() (src, dst Endpoint) { return f.src, f.dst }

// Src returns the flow's source endpoint.
func (f Flow) Src() Endpoint { return f.src }

// Dst returns the flow's destination endpoint.
func (f Flow) Dst() Endpoint { return f.dst }

// Reverse returns the same flow in the opposite direction.
func (f Flow) Reverse() Flow { return Flow{src: f.dst, dst: f.src} }

// String renders "src->dst".
func (f Flow) String() string { return f.src.String() + "->" + f.dst.String() }
