package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 is a decoded (or to-be-encoded) IPv4 header. Options are not
// supported; IHL is always 5.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	SrcIP    [4]byte
	DstIP    [4]byte

	contents []byte
	payload  []byte
}

// IP protocol numbers used by this package.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// LayerContents implements Layer.
func (ip *IPv4) LayerContents() []byte { return ip.contents }

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// NetworkFlow returns the (src, dst) IPv4 address flow.
func (ip *IPv4) NetworkFlow() Flow {
	return NewFlow(NewEndpoint(LayerTypeIPv4, ip.SrcIP[:]), NewEndpoint(LayerTypeIPv4, ip.DstIP[:]))
}

// Encode serializes the header followed by payload, computing length and
// checksum fields.
func (ip *IPv4) Encode(payload []byte) ([]byte, error) {
	total := IPv4HeaderLen + len(payload)
	if total > 0xffff {
		return nil, fmt.Errorf("wire: IPv4 datagram too large (%d bytes)", total)
	}
	b := make([]byte, total)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	// flags+fragment offset zero (DF not set; we never fragment).
	b[8] = ip.TTL
	b[9] = ip.Protocol
	copy(b[12:16], ip.SrcIP[:])
	copy(b[16:20], ip.DstIP[:])
	binary.BigEndian.PutUint16(b[10:12], Checksum(b[:IPv4HeaderLen]))
	copy(b[IPv4HeaderLen:], payload)
	ip.contents = b[:IPv4HeaderLen]
	ip.payload = b[IPv4HeaderLen:]
	return b, nil
}

// Errors returned by decoders.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrBadVersion  = errors.New("wire: not an IPv4 packet")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
)

// DecodeIPv4 parses an IPv4 header from data. It validates the header
// checksum and total length.
func DecodeIPv4(data []byte) (*IPv4, error) {
	ip := &IPv4{}
	if err := decodeIPv4Into(data, ip); err != nil {
		return nil, err
	}
	return ip, nil
}

// decodeIPv4Into parses an IPv4 header into ip, overwriting every field so
// the struct can be reused across packets without allocation.
func decodeIPv4Into(data []byte, ip *IPv4) error {
	if len(data) < IPv4HeaderLen {
		return ErrTruncated
	}
	if data[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(data) < ihl {
		return ErrTruncated
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl || total > len(data) {
		return ErrTruncated
	}
	if Checksum(data[:ihl]) != 0 {
		return ErrBadChecksum
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.contents = data[:ihl]
	ip.payload = data[ihl:total]
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	return nil
}

// Checksum computes the RFC 1071 Internet checksum over data. Computing it
// over a buffer that already contains a correct checksum yields zero.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the TCP pseudo-header partial sum used in the TCP
// checksum computation.
func pseudoHeaderSum(src, dst [4]byte, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// checksumWithPseudo folds a data checksum together with a pseudo-header sum.
func checksumWithPseudo(pseudo uint32, data []byte) uint16 {
	sum := pseudo
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
