package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultFlightEvents is the flight-recorder capacity Flags.Setup enables:
// large enough to hold the last several iterations of a batch run, small
// enough (~64 B/event) to forget about.
const DefaultFlightEvents = 8192

// flightStripes is the number of independently locked rings. Power of two
// so the stripe pick is a mask. Sixteen stripes keep uncontended appends
// uncontended even with a scoring worker per core.
const flightStripes = 16

// FlightEvent is one entry of the flight recorder: a compact, fixed-shape
// record cheap enough to append on hot-ish paths (span ends, metric
// updates, iteration records). Seq is a global order across stripes.
type FlightEvent struct {
	Seq   uint64  `json:"seq"`
	T     float64 `json:"t"`
	Kind  string  `json:"kind"`
	Name  string  `json:"name,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// FlightRecorder is a fixed-size, lock-striped ring buffer of recent
// structured events — the "what just happened" answer when a run stalls or
// dies. It is designed to stay always-on: Note is one atomic increment,
// one atomic load of the coarse flight clock and one uncontended striped
// mutex (tens of nanoseconds, pinned by BenchmarkObsFlightNote), and the
// buffer never grows. A nil *FlightRecorder no-ops everywhere, matching
// the package's nil-receiver convention.
type FlightRecorder struct {
	startNanos int64
	seq        atomic.Uint64
	stripes    [flightStripes]flightStripe
}

// flightClock is a process-wide coarse monotonic clock: a ~1 kHz ticker
// goroutine caches elapsed nanoseconds in an atomic, so Note pays an
// atomic load instead of a clock_gettime (45 ns on the bench box — more
// than half the per-event budget). Event timestamps are therefore ~1 ms
// granular, which is plenty for a crash-dump timeline; cross-stripe order
// comes from the sequence number, not T. The goroutine starts on first
// recorder construction and is never stopped — one sleeping goroutine per
// process beats a syscall-path clock read on every event.
var flightClock struct {
	once  sync.Once
	nanos atomic.Int64
}

func flightClockStart() {
	flightClock.once.Do(func() {
		start := time.Now()
		go func() {
			for range time.Tick(time.Millisecond) {
				flightClock.nanos.Store(int64(time.Since(start)))
			}
		}()
	})
}

// flightStripe is one independently locked ring. The pad spaces stripes
// apart so concurrent writers on different stripes do not false-share.
type flightStripe struct {
	mu  sync.Mutex
	buf []FlightEvent
	w   int
	n   uint64
	_   [64]byte
}

// NewFlightRecorder returns a recorder retaining the last capacity events
// (rounded up to a multiple of the stripe count; minimum one per stripe).
func NewFlightRecorder(capacity int) *FlightRecorder {
	per := (capacity + flightStripes - 1) / flightStripes
	if per < 1 {
		per = 1
	}
	flightClockStart()
	f := &FlightRecorder{startNanos: flightClock.nanos.Load()}
	for i := range f.stripes {
		f.stripes[i].buf = make([]FlightEvent, per)
	}
	return f
}

// Note appends one event, overwriting the stripe's oldest entry when the
// ring is full. Safe for concurrent use; never allocates.
func (f *FlightRecorder) Note(kind, name string, value float64) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1)
	t := float64(flightClock.nanos.Load()-f.startNanos) / 1e9
	s := &f.stripes[seq&(flightStripes-1)]
	s.mu.Lock()
	s.buf[s.w] = FlightEvent{Seq: seq, T: t, Kind: kind, Name: name, Value: value}
	s.w++
	if s.w == len(s.buf) {
		s.w = 0
	}
	s.n++
	s.mu.Unlock()
}

// Snapshot returns the retained events ordered by sequence number. It
// locks stripes one at a time, so a snapshot taken during a run is a
// near-consistent view, not a stop-the-world one.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	var out []FlightEvent
	for i := range f.stripes {
		s := &f.stripes[i]
		s.mu.Lock()
		kept := s.n
		if kept > uint64(len(s.buf)) {
			kept = uint64(len(s.buf))
		}
		for j := uint64(0); j < kept; j++ {
			out = append(out, s.buf[(uint64(s.w)+uint64(len(s.buf))-1-j)%uint64(len(s.buf))])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Tail returns the most recent n events in sequence order.
func (f *FlightRecorder) Tail(n int) []FlightEvent {
	all := f.Snapshot()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// WriteJSONL dumps the retained events as one JSON object per line,
// oldest first — the /flight endpoint's and the SIGQUIT handler's format.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range f.Snapshot() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
