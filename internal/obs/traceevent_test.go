package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// decodeTrace parses a sink's output and indexes the structural pieces a
// Perfetto load depends on.
func decodeTrace(t *testing.T, raw []byte) (file traceEventFile, threadNames map[int]string) {
	t.Helper()
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace output not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	threadNames = map[int]string{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "B", "E", "M", "i", "X":
		default:
			t.Errorf("unknown phase %q in %+v", ev.Ph, ev)
		}
		if ev.Pid != 1 {
			t.Errorf("event off the single process: %+v", ev)
		}
		if ev.Ph == "M" && ev.Name == "thread_name" {
			threadNames[ev.Tid] = ev.Args["name"].(string)
		}
		if ev.Ph == "i" && ev.S != "g" {
			t.Errorf("instant event without global scope: %+v", ev)
		}
	}
	return file, threadNames
}

// TestTraceEventStructure runs a nested span tree with metrics and records
// through the sink and validates the output is structurally a Chrome
// trace-event file: named process, named tracks, balanced B/E pairs per
// track, instant events for improvements.
func TestTraceEventStructure(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.Attach(NewTraceEventSink(&buf))

	root := r.StartSpan("synthesize")
	it := root.Child("core.iteration")
	w := it.Child("core.score_bucket")
	w.SetAttr("ops", "add|mul").End()
	it.End()
	r.Metric("core.best_distance", 9.5)
	r.Record("core.best_improved", map[string]any{"bucket": "add|mul", "distance": 9.5})
	root.End()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	file, threadNames := decodeTrace(t, buf.Bytes())

	var processNamed bool
	depth := map[int]int{} // per-track open B count
	var instants []traceEvent
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" && ev.Args["name"] == "abagnale" {
				processNamed = true
			}
		case "B":
			depth[ev.Tid]++
		case "E":
			depth[ev.Tid]--
			if depth[ev.Tid] < 0 {
				t.Fatalf("E without matching B on tid %d: %+v", ev.Tid, ev)
			}
			if ev.Name == "core.score_bucket" && ev.Args["ops"] != "add|mul" {
				t.Errorf("span attrs not forwarded: %+v", ev)
			}
		case "i":
			instants = append(instants, ev)
		}
	}
	if !processNamed {
		t.Error("process_name metadata missing")
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("track %d has %d unbalanced B events", tid, d)
		}
	}
	// The root span opened its own named track; the scoring worker its lane.
	names := map[string]bool{}
	for _, n := range threadNames {
		names[n] = true
	}
	if !names["synthesize"] || !names["core.score_bucket lane 1"] {
		t.Errorf("track names = %v", threadNames)
	}
	// Both the metric update and the best-improvement record became instant
	// events, the record carrying its bucket annotation.
	var sawMetric, sawImproved bool
	for _, ev := range instants {
		switch ev.Name {
		case "core.best_distance":
			sawMetric = ev.Args["value"] == 9.5
		case "core.best_improved":
			data, _ := ev.Args["data"].(map[string]any)
			sawImproved = data["bucket"] == "add|mul"
		}
	}
	if !sawMetric || !sawImproved {
		t.Errorf("instant events incomplete (metric %v, improved %v): %+v", sawMetric, sawImproved, instants)
	}
}

// TestTraceEventLanePooling pins the worker-track strategy: concurrent
// track-opening spans occupy distinct lanes; sequential ones reuse the
// freed lane.
func TestTraceEventLanePooling(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.Attach(NewTraceEventSink(&buf))

	a := r.StartSpan("core.score_bucket")
	b := r.StartSpan("core.score_bucket") // concurrent with a: new lane
	a.End()
	b.End()
	c := r.StartSpan("core.score_bucket") // after both ended: reuses a lane
	c.End()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	file, threadNames := decodeTrace(t, buf.Bytes())
	lanes := map[int]bool{}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "B" {
			lanes[ev.Tid] = true
		}
	}
	if len(lanes) != 2 {
		t.Errorf("three sequentialish workers used %d lanes, want 2 (pool reuse)", len(lanes))
	}
	laneNames := 0
	for _, n := range threadNames {
		if n == "core.score_bucket lane 1" || n == "core.score_bucket lane 2" {
			laneNames++
		}
	}
	if laneNames != 2 {
		t.Errorf("lane names = %v", threadNames)
	}
}

// TestTraceEventConcurrentEmit drives the sink from several goroutines
// (-race coverage) and checks the result still decodes and balances.
func TestTraceEventConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.Attach(NewTraceEventSink(&buf))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := r.StartSpan("core.score_bucket")
				sp.Child("replay.score").End()
				sp.End()
				r.Metric("core.best_distance", float64(i))
			}
		}()
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	file, _ := decodeTrace(t, buf.Bytes())
	depth := map[int]int{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "B":
			depth[ev.Tid]++
		case "E":
			depth[ev.Tid]--
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("track %d unbalanced by %d after concurrent emit", tid, d)
		}
	}
}

// TestTraceEventTrackSpans pins the fleet-trace merge surface: externally
// timed spans land as complete ("X") events on named reusable tracks, two
// spans naming the same track share one lane, and the registry fan-out
// reaches the sink through the TrackSpanSink interface.
func TestTraceEventTrackSpans(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.Attach(NewTraceEventSink(&buf))

	r.AddTrackSpans([]TrackSpan{
		{Track: "shard worker-01", Name: "lease 1: iter 1 (4 buckets)", StartSec: 0.5, DurSec: 0.25, Args: map[string]any{"worker": 1, "lease": 1}},
		{Track: "shard worker-02", Name: "lease 2: iter 1 (4 buckets)", StartSec: 0.5, DurSec: 0.30},
		{Track: "shard worker-01", Name: "lease 3: iter 2 (2 buckets)", StartSec: 1.0, DurSec: 0.10},
	})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	file, threadNames := decodeTrace(t, buf.Bytes())
	tidOf := map[string]int{}
	for tid, name := range threadNames {
		tidOf[name] = tid
	}
	if tidOf["shard worker-01"] == 0 || tidOf["shard worker-02"] == 0 {
		t.Fatalf("worker tracks missing from thread names: %v", threadNames)
	}
	var xs []traceEvent
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			xs = append(xs, ev)
		}
	}
	if len(xs) != 3 {
		t.Fatalf("got %d X events, want 3", len(xs))
	}
	if xs[0].Tid != tidOf["shard worker-01"] || xs[2].Tid != tidOf["shard worker-01"] {
		t.Error("spans naming the same track landed on different lanes")
	}
	if xs[0].Tid == xs[1].Tid {
		t.Error("distinct worker tracks share a lane")
	}
	if xs[0].Ts != 0.5e6 || xs[0].Dur != 0.25e6 {
		t.Errorf("span timing Ts=%v Dur=%v, want microseconds (5e5, 2.5e5)", xs[0].Ts, xs[0].Dur)
	}
	if xs[0].Args["worker"] == nil {
		t.Error("span args dropped")
	}

	// A nil registry and an empty batch both no-op.
	var nilReg *Registry
	nilReg.AddTrackSpans([]TrackSpan{{Track: "t", Name: "n"}})
	New().AddTrackSpans(nil)
}
