package obs

import (
	"encoding/json"
	"io"
	"os"
	"time"
)

// PhaseStats is the wall-clock aggregate of one span name.
type PhaseStats struct {
	// Count is how many spans of this name completed.
	Count int64 `json:"count"`
	// TotalSec is the summed wall-clock across those spans. Nested spans
	// overlap their parents, so phase totals are per-name, not a partition
	// of the run.
	TotalSec float64 `json:"total_sec"`
}

// Report is the end-of-run snapshot of everything a registry accumulated —
// the run-report.json artifact future perf PRs diff against.
type Report struct {
	// Build stamps the producing binary (module version + VCS revision)
	// so archived reports stay attributable to a commit.
	Build *BuildInfo `json:"build,omitempty"`
	// DurationSec is wall-clock from registry creation to snapshot.
	DurationSec float64 `json:"duration_sec"`
	// Counters, Gauges and Histograms hold every named instrument.
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]HistStats `json:"histograms,omitempty"`
	// Phases is wall-clock per span name.
	Phases map[string]PhaseStats `json:"phases,omitempty"`
	// Records holds the structured payloads retained via Record, in
	// emission order per name (e.g. "core.iteration" ranking detail).
	Records map[string][]any `json:"records,omitempty"`
}

// Report snapshots the registry. Instruments updated after the snapshot are
// not reflected. A nil registry returns nil.
func (r *Registry) Report() *Report {
	if r == nil {
		return nil
	}
	rep := &Report{DurationSec: time.Since(r.start).Seconds()}
	if b := ReadBuild(); b != (BuildInfo{}) {
		rep.Build = &b
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		rep.Counters = make(map[string]int64, len(r.counters))
		for _, k := range sortedKeys(r.counters) {
			rep.Counters[k] = r.counters[k].Value()
		}
	}
	if len(r.gauges) > 0 {
		rep.Gauges = make(map[string]float64, len(r.gauges))
		for _, k := range sortedKeys(r.gauges) {
			rep.Gauges[k] = r.gauges[k].Value()
		}
	}
	if len(r.hists) > 0 {
		rep.Histograms = make(map[string]HistStats, len(r.hists))
		for _, k := range sortedKeys(r.hists) {
			rep.Histograms[k] = r.hists[k].Stats()
		}
	}
	if len(r.phases) > 0 {
		rep.Phases = make(map[string]PhaseStats, len(r.phases))
		for _, k := range sortedKeys(r.phases) {
			p := r.phases[k]
			rep.Phases[k] = PhaseStats{
				Count:    p.count.Load(),
				TotalSec: time.Duration(p.totalNS.Load()).Seconds(),
			}
		}
	}
	if len(r.records) > 0 {
		rep.Records = make(map[string][]any, len(r.records))
		for _, k := range r.recOrder {
			rep.Records[k] = append([]any(nil), r.records[k]...)
		}
	}
	return rep
}

// Encode writes the report as indented JSON.
func (rep *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile writes the report to path, replacing any existing file.
func (rep *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
