package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceEventSink converts the registry's span/metric/record stream into
// Chrome trace-event JSON — the -trace-out format, openable directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing. The whole run renders as
// a timeline:
//
//   - every root span opens its own track (a batch run's corpus.job spans
//     become one track per trace job);
//   - spans whose names are registered as track-opening (by default
//     core.score_bucket, so scoring workers get their own lanes) check a
//     track out of a per-name lane pool while running and return it when
//     they end — concurrent workers occupy distinct lanes, sequential ones
//     reuse them;
//   - all other spans nest on their parent's track as B/E duration events;
//   - metric updates (e.g. core.best_distance) and records (e.g.
//     core.best_improved, carrying the bucket ID) render as instant
//     events.
//
// Events buffer in memory and are written as one JSON object on Close
// (idempotent), so the output is always structurally complete.
type TraceEventSink struct {
	mu      sync.Mutex
	w       io.Writer
	c       io.Closer
	events  []traceEvent
	tids    map[uint64]int    // live span id → tid
	spanVia map[uint64]string // span id → lane-pool name (track-opening spans)
	tnames  map[int]string    // tid → thread_name
	free    map[string][]int  // lane pool: track name → returned tids
	laneN   map[string]int    // lane pool: track name → lanes created
	tracks  map[string]bool   // span names that open their own track
	named   map[string]int    // AddTrackSpans: track name → tid
	nextTid int
	closed  bool
}

// traceEvent is one trace_event-format entry. Ts/Dur are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceEventFile is the on-disk shape: the JSON Object Format of the
// trace-event spec.
type traceEventFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// NewTraceEventSink buffers trace events and writes them to w on Close
// (closing w too when it is an io.Closer). trackNames lists additional
// span names that open their own pooled track; the defaults cover the
// repository's batch-job and scoring-worker spans.
func NewTraceEventSink(w io.Writer, trackNames ...string) *TraceEventSink {
	s := &TraceEventSink{
		w:       w,
		tids:    map[uint64]int{},
		spanVia: map[uint64]string{},
		tnames:  map[int]string{},
		free:    map[string][]int{},
		laneN:   map[string]int{},
		tracks:  map[string]bool{"corpus.job": true, "core.score_bucket": true},
		named:   map[string]int{},
	}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	for _, n := range trackNames {
		s.tracks[n] = true
	}
	return s
}

// Emit implements Sink.
func (s *TraceEventSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	ts := ev.T * 1e6
	switch ev.Kind {
	case KindSpanStart:
		tid := s.assignTid(ev)
		s.events = append(s.events, traceEvent{Name: ev.Name, Ph: "B", Ts: ts, Pid: 1, Tid: tid})
	case KindSpanEnd:
		tid, ok := s.tids[ev.Span]
		if !ok {
			// The span started before this sink attached; drop it rather
			// than invent an unbalanced E event.
			return
		}
		delete(s.tids, ev.Span)
		s.events = append(s.events, traceEvent{Name: ev.Name, Ph: "E", Ts: ts, Pid: 1, Tid: tid, Args: ev.Attrs})
		if lane, ok := s.spanVia[ev.Span]; ok {
			delete(s.spanVia, ev.Span)
			s.free[lane] = append(s.free[lane], tid)
		}
		// A root span that learned a better label at End time (corpus.job
		// sets a "trace" attr) renames its track.
		if name, ok := ev.Attrs["trace"].(string); ok && ev.Parent == 0 {
			s.tnames[tid] = name
		}
	case KindMetric:
		s.events = append(s.events, traceEvent{
			Name: ev.Name, Ph: "i", Ts: ts, Pid: 1, S: "g",
			Args: map[string]any{"value": ev.Value},
		})
	case KindRecord:
		args := map[string]any{}
		if ev.Data != nil {
			args["data"] = ev.Data
		}
		s.events = append(s.events, traceEvent{Name: ev.Name, Ph: "i", Ts: ts, Pid: 1, S: "g", Args: args})
	}
}

// assignTid picks the track for a starting span: an inherited parent
// track for ordinary children, a pooled lane for track-opening names, a
// fresh track for roots.
func (s *TraceEventSink) assignTid(ev Event) int {
	var tid int
	switch {
	case s.tracks[ev.Name]:
		if lanes := s.free[ev.Name]; len(lanes) > 0 {
			tid = lanes[len(lanes)-1]
			s.free[ev.Name] = lanes[:len(lanes)-1]
		} else {
			s.laneN[ev.Name]++
			tid = s.newTrack(fmt.Sprintf("%s lane %d", ev.Name, s.laneN[ev.Name]))
		}
		s.spanVia[ev.Span] = ev.Name
	case ev.Parent == 0:
		tid = s.newTrack(ev.Name)
	default:
		tid = s.tids[ev.Parent] // 0 (the root track) when unknown
	}
	s.tids[ev.Span] = tid
	return tid
}

// newTrack allocates the next tid and names it.
func (s *TraceEventSink) newTrack(name string) int {
	s.nextTid++
	s.tnames[s.nextTid] = name
	return s.nextTid
}

// TrackSpan is an externally timed complete span injected onto a named
// track — how the shard coordinator merges clock-offset-corrected worker
// lease spans into one fleet trace. StartSec is seconds relative to the
// owning registry's StartTime (the same timeline Event.T uses).
type TrackSpan struct {
	Track    string // track (lane) name, e.g. "shard worker-02"
	Name     string // span label, e.g. "lease 17: iter 3 (4 buckets)"
	StartSec float64
	DurSec   float64
	Args     map[string]any
}

// TrackSpanSink is implemented by sinks that can absorb externally timed
// spans. The Registry fans AddTrackSpans out to every attached sink that
// implements it.
type TrackSpanSink interface {
	AddTrackSpans([]TrackSpan)
}

// AddTrackSpans appends complete ("X") events on named reusable tracks.
// Equal Track strings share one lane, so a worker's leases line up on a
// single timeline row. No-op after Close.
func (s *TraceEventSink) AddTrackSpans(spans []TrackSpan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for _, sp := range spans {
		tid, ok := s.named[sp.Track]
		if !ok {
			tid = s.newTrack(sp.Track)
			s.named[sp.Track] = tid
		}
		s.events = append(s.events, traceEvent{
			Name: sp.Name, Ph: "X", Ts: sp.StartSec * 1e6, Dur: sp.DurSec * 1e6,
			Pid: 1, Tid: tid, Args: sp.Args,
		})
	}
}

// AddTrackSpans forwards externally timed spans to every attached sink
// implementing TrackSpanSink (the trace-event sink). Other sinks ignore
// them. A nil registry or empty batch no-ops.
func (r *Registry) AddTrackSpans(spans []TrackSpan) {
	if r == nil || len(spans) == 0 {
		return
	}
	for _, s := range r.sinks.Load().([]Sink) {
		if ts, ok := s.(TrackSpanSink); ok {
			ts.AddTrackSpans(spans)
		}
	}
}

// Close writes the buffered timeline as trace-event JSON and closes the
// underlying writer. Subsequent Emits and Closes no-op.
func (s *TraceEventSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	file := traceEventFile{DisplayTimeUnit: "ms"}
	file.TraceEvents = append(file.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "abagnale"},
	})
	for tid := 1; tid <= s.nextTid; tid++ {
		name, ok := s.tnames[tid]
		if !ok {
			continue
		}
		file.TraceEvents = append(file.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	file.TraceEvents = append(file.TraceEvents, s.events...)
	enc := json.NewEncoder(s.w)
	err := enc.Encode(file)
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
