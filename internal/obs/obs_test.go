package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryNoOps exercises the entire disabled surface: every call on
// a nil registry, nil handles, and nil spans must be safe and free of
// side effects.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	r.Gauge("g").Set(3)
	r.Gauge("g").Max(9)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge value = %v", got)
	}
	r.Histogram("h").Observe(1)
	if s := r.Histogram("h").Stats(); s.Count != 0 {
		t.Errorf("nil histogram count = %d", s.Count)
	}
	sp := r.StartSpan("root")
	child := sp.Child("child").SetAttr("k", "v")
	if d := child.End(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	sp.End()
	r.Metric("m", 1)
	r.Progressf("unseen %d", 1)
	r.Record("rec", 42)
	if got := r.Records("rec"); got != nil {
		t.Errorf("nil records = %v", got)
	}
	r.Attach(NewProgressSink(&bytes.Buffer{}))
	if rep := r.Report(); rep != nil {
		t.Errorf("nil report = %+v", rep)
	}
	if err := r.Close(); err != nil {
		t.Errorf("nil close = %v", err)
	}
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Handles resolved inside the goroutine: registry maps must
			// tolerate concurrent get-or-create too.
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Max(float64(w*perWorker + i))
				h.Observe(float64(i%100) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker-1 {
		t.Errorf("gauge max = %v, want %v", got, workers*perWorker-1)
	}
	hs := r.Histogram("h").Stats()
	if hs.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", hs.Count, workers*perWorker)
	}
	if hs.Min != 0.5 || hs.Max != 99.5 {
		t.Errorf("histogram min/max = %v/%v, want 0.5/99.5", hs.Min, hs.Max)
	}
	wantSum := float64(workers*perWorker) * 50 // mean of (i%100)+0.5 over full centuries
	if math.Abs(hs.Sum-wantSum)/wantSum > 1e-9 {
		t.Errorf("histogram sum = %v, want %v", hs.Sum, wantSum)
	}
}

// TestConcurrentSpansAndRecords drives the span/record/emit paths from many
// goroutines with a sink attached (race coverage of the emit path).
func TestConcurrentSpansAndRecords(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	sink := NewJSONLSink(&safeWriter{w: &buf})
	r.Attach(sink)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := r.StartSpan("work")
				sp.Child("inner").End()
				sp.End()
				r.Record("item", w)
				r.Metric("val", float64(i))
				r.Progressf("worker %d step %d", w, i)
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Records("item")); got != 8*200 {
		t.Errorf("records = %d, want %d", got, 8*200)
	}
	rep := r.Report()
	if rep.Phases["work"].Count != 8*200 || rep.Phases["inner"].Count != 8*200 {
		t.Errorf("phase counts = %+v", rep.Phases)
	}
}

// safeWriter serializes writes: bytes.Buffer is not itself goroutine-safe
// and the JSONL sink only guards its encoder.
type safeWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *safeWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestJSONLRoundTrip checks every event kind survives encoding/json both
// ways through the JSONL sink.
func TestJSONLRoundTrip(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.Attach(NewJSONLSink(&buf))

	sp := r.StartSpan("phase")
	child := sp.Child("sub")
	time.Sleep(time.Millisecond)
	child.SetAttr("n", 3).End()
	sp.End()
	r.Metric("best", 41.5)
	r.Progressf("step %d of %d", 2, 7)
	r.Record("ranking", map[string]any{"ops": "add", "score": 1.25})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantKinds := []string{
		KindSpanStart, KindSpanStart, KindSpanEnd, KindSpanEnd,
		KindMetric, KindProgress, KindRecord,
	}
	if len(lines) != len(wantKinds) {
		t.Fatalf("got %d events, want %d: %v", len(lines), len(wantKinds), lines)
	}
	var events []Event
	for i, ln := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %q, want %q", i, ev.Kind, wantKinds[i])
		}
		if ev.T < 0 {
			t.Errorf("event %d has negative timestamp", i)
		}
		events = append(events, ev)
	}
	// The child's end event precedes the parent's and carries its attr,
	// duration and parent linkage.
	childEnd := events[2]
	if childEnd.Name != "sub" || childEnd.Parent == 0 || childEnd.DurMS <= 0 {
		t.Errorf("child end event malformed: %+v", childEnd)
	}
	if got := childEnd.Attrs["n"]; got != float64(3) {
		t.Errorf("child attr n = %v", got)
	}
	if events[3].Name != "phase" || events[3].Parent != 0 {
		t.Errorf("root end event malformed: %+v", events[3])
	}
	if events[4].Value != 41.5 {
		t.Errorf("metric value = %v", events[4].Value)
	}
	if events[5].Msg != "step 2 of 7" {
		t.Errorf("progress msg = %q", events[5].Msg)
	}
	if data, ok := events[6].Data.(map[string]any); !ok || data["score"] != 1.25 {
		t.Errorf("record data = %#v", events[6].Data)
	}
}

// TestReportRoundTrip builds a populated registry and round-trips the
// report through encoding/json.
func TestReportRoundTrip(t *testing.T) {
	r := New()
	r.Counter("core.handlers_scored").Add(123)
	r.Gauge("core.best_distance").Set(7.5)
	r.Histogram("lat").Observe(0.5)
	r.Histogram("lat").Observe(2.0)
	sp := r.StartSpan("core.iteration")
	time.Sleep(time.Millisecond)
	sp.End()
	r.Record("core.iteration", map[string]any{"index": 1})

	var buf bytes.Buffer
	if err := r.Report().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if back.Counters["core.handlers_scored"] != 123 {
		t.Errorf("counter = %d", back.Counters["core.handlers_scored"])
	}
	if back.Gauges["core.best_distance"] != 7.5 {
		t.Errorf("gauge = %v", back.Gauges["core.best_distance"])
	}
	if back.Histograms["lat"].Count != 2 || back.Histograms["lat"].Sum != 2.5 {
		t.Errorf("histogram = %+v", back.Histograms["lat"])
	}
	ph := back.Phases["core.iteration"]
	if ph.Count != 1 || ph.TotalSec <= 0 {
		t.Errorf("phase = %+v", ph)
	}
	if len(back.Records["core.iteration"]) != 1 {
		t.Errorf("records = %+v", back.Records)
	}
	if back.DurationSec <= 0 {
		t.Error("duration missing")
	}
}

// TestProgressSinkOutput checks the -v rendering and that non-progress
// events stay out of the stream.
func TestProgressSinkOutput(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.Attach(NewProgressSink(&buf))
	sp := r.StartSpan("noise")
	sp.End()
	r.Metric("noise", 1)
	r.Progressf("iteration %d: best %.2f", 3, 1.5)
	out := buf.String()
	if !strings.Contains(out, "iteration 3: best 1.50") {
		t.Errorf("progress line missing: %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Errorf("non-progress events leaked into progress stream: %q", out)
	}
}

// TestHistogramQuantiles sanity-checks the bucketed quantile estimates:
// each estimate must be an upper bound within 2x of the true quantile.
func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("q")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Stats()
	checks := []struct {
		got, exact float64
	}{{s.P50, 500}, {s.P90, 900}, {s.P99, 990}}
	for _, c := range checks {
		if c.got < c.exact || c.got > 2*c.exact {
			t.Errorf("quantile estimate %v outside [%v, %v]", c.got, c.exact, 2*c.exact)
		}
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

// TestBucketOf pins the bucket mapping's edge cases.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {math.NaN(), 0},
		{1, 33}, {1.5, 33}, {2, 34}, {0.5, 32},
		{math.MaxFloat64, histBuckets - 1},
		{math.SmallestNonzeroFloat64, 0},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestAttachDuringRun ensures events emitted before any sink is attached
// are simply unobserved, and sinks attached later see subsequent events.
func TestAttachDuringRun(t *testing.T) {
	r := New()
	r.Progressf("before") // no sink: dropped
	var buf bytes.Buffer
	r.Attach(NewProgressSink(&buf))
	r.Progressf("after")
	if out := buf.String(); strings.Contains(out, "before") || !strings.Contains(out, "after") {
		t.Errorf("sink saw %q", out)
	}
}
