// Package obs is the repository's observability layer: a concurrency-safe
// metrics registry (counters, gauges, histograms), hierarchical timed spans,
// and pluggable sinks (human-readable progress, JSONL event stream, an
// end-of-run JSON report). It has no dependencies beyond the standard
// library and is designed around one invariant: when observability is off,
// instrumented code pays almost nothing.
//
// The disabled fast path is the nil receiver. A nil *Registry hands out nil
// metric handles and nil spans, and every method on every type no-ops on a
// nil receiver — so call sites never branch themselves:
//
//	var reg *obs.Registry // nil: observability off
//	c := reg.Counter("core.handlers_scored")
//	c.Add(17)                          // a predictable-branch no-op
//	sp := reg.StartSpan("core.score")  // nil span
//	defer sp.End()                     // no-op
//
// With a live registry, counters and gauges update via atomics (no locks on
// the hot path); spans cost two time.Now calls plus an atomic phase
// accumulation; events reach sinks only when sinks are attached.
//
// Metric names are dotted lowercase ("package.metric"). The conventional
// instrument names emitted by this repository are documented on the
// packages that emit them (core, enum, replay, dist, sim).
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the root of one run's instruments: metrics, spans, records
// and sinks. The zero value is not usable; call New. A nil *Registry is the
// disabled mode — every method no-ops.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	phases   map[string]*phaseStat
	records  map[string][]any
	recOrder []string

	// sinks is a copy-on-write []Sink kept in an atomic.Value so the
	// emit path never takes the registry lock.
	sinks  atomic.Value
	spanID atomic.Uint64

	// flight is the optional always-on flight recorder (EnableFlight);
	// nil means span/metric/record paths skip the note at the cost of one
	// predictable branch.
	flight atomic.Pointer[FlightRecorder]
	// board is the live run board, created lazily by Board().
	board *Board
	// cluster is an opaque snapshot hook served at /cluster (SetCluster);
	// the shard coordinator attaches one without obs importing shard.
	cluster atomic.Pointer[func() any]
}

// New returns an empty registry whose clock starts now.
func New() *Registry {
	r := &Registry{
		start:    time.Now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		phases:   map[string]*phaseStat{},
		records:  map[string][]any{},
	}
	r.sinks.Store([]Sink(nil))
	return r
}

// Attach adds a sink. Sinks receive every subsequent event; attach them
// before the instrumented run starts.
func (r *Registry) Attach(s Sink) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.sinks.Load().([]Sink)
	next := make([]Sink, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = s
	r.sinks.Store(next)
}

// Close closes every attached sink, returning the first error.
func (r *Registry) Close() error {
	if r == nil {
		return nil
	}
	var first error
	for _, s := range r.sinks.Load().([]Sink) {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// EnableFlight attaches a flight recorder retaining the last capacity
// events (DefaultFlightEvents when capacity <= 0) and returns it. Span
// ends, metric updates and records note into it from then on. Enabling is
// idempotent: an existing recorder is kept.
func (r *Registry) EnableFlight(capacity int) *FlightRecorder {
	if r == nil {
		return nil
	}
	if f := r.flight.Load(); f != nil {
		return f
	}
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	f := NewFlightRecorder(capacity)
	if !r.flight.CompareAndSwap(nil, f) {
		return r.flight.Load()
	}
	return f
}

// Flight returns the registry's flight recorder (nil when not enabled; a
// nil recorder no-ops, so callers may Note unconditionally).
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.flight.Load()
}

// flightNote appends to the flight recorder when one is enabled.
func (r *Registry) flightNote(kind, name string, v float64) {
	if r == nil {
		return
	}
	r.flight.Load().Note(kind, name, v)
}

// hasSinks reports whether emitting an event would reach anyone.
func (r *Registry) hasSinks() bool {
	return r != nil && len(r.sinks.Load().([]Sink)) > 0
}

// emit fans an event out to every sink.
func (r *Registry) emit(ev Event) {
	for _, s := range r.sinks.Load().([]Sink) {
		s.Emit(ev)
	}
}

// since returns seconds since the registry's start.
func (r *Registry) since() float64 { return time.Since(r.start).Seconds() }

// StartTime returns the instant the registry's clock started (zero on a nil
// registry). Externally timed data merged into this registry's timeline —
// e.g. clock-corrected worker lease spans — is expressed relative to it.
func (r *Registry) StartTime() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// SetCluster installs a snapshot hook served at the /cluster endpoint. The
// payload is opaque to obs (it is JSON-encoded as-is), which keeps the
// dependency arrow pointing at obs: the shard coordinator registers a
// closure over its own state, the same way Run.SetFunnel works.
func (r *Registry) SetCluster(fn func() any) {
	if r == nil {
		return
	}
	if fn == nil {
		r.cluster.Store(nil)
		return
	}
	r.cluster.Store(&fn)
}

// ClusterSnapshot invokes the installed cluster hook. ok is false when no
// hook is attached (single-process runs).
func (r *Registry) ClusterSnapshot() (any, bool) {
	if r == nil {
		return nil, false
	}
	fn := r.cluster.Load()
	if fn == nil {
		return nil, false
	}
	return (*fn)(), true
}

// --- Counter ------------------------------------------------------------

// Counter is a monotonically increasing int64. Methods on a nil *Counter
// no-op, so handles from a nil registry are free to use.
type Counter struct {
	v atomic.Int64
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// CounterValues snapshots every counter whose name starts with prefix
// (every counter when prefix is empty). Batch reports use it to embed one
// subsystem's counters — e.g. the corpus cache hit rates — without
// dragging in the whole Report. A nil registry returns nil.
func (r *Registry) CounterValues(prefix string) map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64)
	for name, c := range r.counters {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out[name] = c.Value()
		}
	}
	return out
}

// GaugeValues snapshots every gauge whose name starts with prefix (every
// gauge when prefix is empty). A nil registry returns nil.
func (r *Registry) GaugeValues(prefix string) map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for name, g := range r.gauges {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out[name] = g.Value()
		}
	}
	return out
}

// --- Gauge --------------------------------------------------------------

// Gauge is a float64 that can be set, or raised towards a maximum. Methods
// on a nil *Gauge no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Gauge returns the named gauge, creating it on first use (initial value 0).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Max raises the gauge to v if v exceeds the current value.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// --- Histogram ----------------------------------------------------------

// histBuckets is the fixed number of base-2 exponential buckets. Bucket i
// (i >= 1) covers [2^(i-33), 2^(i-32)); bucket 0 holds non-positive values
// and underflow. The range spans roughly 1e-10 .. 2e9, plenty for both
// durations in seconds and raw counts.
const histBuckets = 64

// Histogram accumulates float64 observations into exponential buckets with
// lock-free updates. Methods on a nil *Histogram no-op.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Int64
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		h.minBits.Store(math.Float64bits(math.Inf(1)))
		h.maxBits.Store(math.Float64bits(math.Inf(-1)))
		r.hists[name] = h
	}
	return h
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	idx := math.Ilogb(v) + 33
	if idx < 0 {
		return 0
	}
	if idx > histBuckets-1 {
		return histBuckets - 1
	}
	return idx
}

// bucketUpper returns the upper bound of bucket i, used for quantile
// estimates.
func bucketUpper(i int) float64 {
	if i == 0 {
		return 0
	}
	return math.Ldexp(1, i-32)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	casFloat(&h.sumBits, func(cur float64) float64 { return cur + v })
	casFloat(&h.minBits, func(cur float64) float64 { return math.Min(cur, v) })
	casFloat(&h.maxBits, func(cur float64) float64 { return math.Max(cur, v) })
	h.buckets[bucketOf(v)].Add(1)
}

// casFloat applies f to the float64 stored in bits until the swap wins.
func casFloat(bits *atomic.Uint64, f func(float64) float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(f(math.Float64frombits(old)))
		if next == old || bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistStats is a histogram summary. Quantiles are upper-bound estimates
// from the exponential buckets (within a factor of 2 of the true value).
type HistStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Stats summarizes the histogram (zero value on a nil handle).
func (h *Histogram) Stats() HistStats {
	if h == nil {
		return HistStats{}
	}
	s := HistStats{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
	}
	if s.Count == 0 {
		return HistStats{}
	}
	s.Mean = s.Sum / float64(s.Count)
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	s.P50 = h.quantile(0.50, s.Count)
	s.P90 = h.quantile(0.90, s.Count)
	s.P99 = h.quantile(0.99, s.Count)
	return s
}

// HistSnapshot is a histogram's raw state in a wire-friendly form: exported
// fields only, fixed-size bucket array, gob- and JSON-encodable. Two
// snapshots of the same histogram subtract into a delta (Delta) that merges
// losslessly into another histogram (Merge) — the substrate of cross-process
// histogram federation, where workers ship increments and the coordinator
// folds them into per-worker and fleet-aggregate instruments.
type HistSnapshot struct {
	Count   int64
	Sum     float64
	Min     float64 // absolute, not a delta (±Inf when Count == 0)
	Max     float64 // absolute, not a delta
	Buckets [histBuckets]int64
}

// Snapshot captures the histogram's current state (zero value on nil).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
		Min:   math.Float64frombits(h.minBits.Load()),
		Max:   math.Float64frombits(h.maxBits.Load()),
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Delta returns the increments from prev to s. Count, Sum and Buckets
// subtract; Min and Max stay absolute (the running extremes fold correctly
// through Merge's min/max, so no information is lost by not differencing
// them).
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	d := s
	d.Count -= prev.Count
	d.Sum -= prev.Sum
	for i := range d.Buckets {
		d.Buckets[i] -= prev.Buckets[i]
	}
	return d
}

// Merge folds a snapshot delta into the histogram. An empty delta
// (Count == 0) is a no-op so ±Inf extremes from empty snapshots never
// contaminate the fold.
func (h *Histogram) Merge(d HistSnapshot) {
	if h == nil || d.Count == 0 {
		return
	}
	h.count.Add(d.Count)
	casFloat(&h.sumBits, func(cur float64) float64 { return cur + d.Sum })
	casFloat(&h.minBits, func(cur float64) float64 { return math.Min(cur, d.Min) })
	casFloat(&h.maxBits, func(cur float64) float64 { return math.Max(cur, d.Max) })
	for i, n := range d.Buckets {
		if n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// HistogramValues snapshots every histogram whose name starts with prefix
// (every histogram when prefix is empty). A nil registry returns nil.
func (r *Registry) HistogramValues(prefix string) map[string]HistSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistSnapshot)
	for name, h := range r.hists {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out[name] = h.Snapshot()
		}
	}
	return out
}

// quantile estimates the q-th quantile from the bucket counts.
func (h *Histogram) quantile(q float64, total int64) float64 {
	target := int64(math.Ceil(q * float64(total)))
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= target {
			return bucketUpper(i)
		}
	}
	return math.Float64frombits(h.maxBits.Load())
}

// --- Phase accounting ---------------------------------------------------

// phaseStat aggregates the wall-clock spent under one span name.
type phaseStat struct {
	count   atomic.Int64
	totalNS atomic.Int64
}

// phase returns (creating if needed) the aggregate for a span name.
func (r *Registry) phase(name string) *phaseStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.phases[name]
	if !ok {
		p = &phaseStat{}
		r.phases[name] = p
	}
	return p
}

// --- Records ------------------------------------------------------------

// Record retains a structured payload under a name (appended in order) and
// emits it to sinks as a "record" event. Records surface in the final
// report — core uses them for per-iteration search detail. Payloads must be
// JSON-marshalable.
func (r *Registry) Record(name string, payload any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.records[name]; !ok {
		r.recOrder = append(r.recOrder, name)
	}
	r.records[name] = append(r.records[name], payload)
	r.mu.Unlock()
	r.flightNote("record", name, 0)
	if r.hasSinks() {
		r.emit(Event{T: r.since(), Kind: KindRecord, Name: name, Data: payload})
	}
}

// Transient emits a record event to sinks (SSE /events, JSONL streams)
// without retaining the payload in the registry. It is the right shape for
// high-rate lifecycle events — lease steals, reissues — that operators want
// on the live event feed but that would bloat the end-of-run report if
// every occurrence were retained the way Record retains.
func (r *Registry) Transient(name string, payload any) {
	if r == nil {
		return
	}
	r.flightNote("record", name, 0)
	if r.hasSinks() {
		r.emit(Event{T: r.since(), Kind: KindRecord, Name: name, Data: payload})
	}
}

// Records returns the retained payloads for a name (nil when absent).
func (r *Registry) Records(name string) []any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.records[name]
}

// counterNames returns sorted counter names (for deterministic reports).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
