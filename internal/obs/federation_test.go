package obs

import (
	"math"
	"reflect"
	"testing"
)

// TestHistSnapshotDeltaMerge pins the histogram federation substrate:
// snapshots subtract into deltas, deltas merge losslessly into another
// histogram, and replaying a snapshot plus a later delta reproduces the
// source state exactly — the roundtrip worker heartbeats perform.
func TestHistSnapshotDeltaMerge(t *testing.T) {
	r := New()
	h := r.Histogram("x")
	h.Observe(1)
	h.Observe(4)
	prev := h.Snapshot()
	h.Observe(0.25)
	h.Observe(16)
	cur := h.Snapshot()

	d := cur.Delta(prev)
	if d.Count != 2 || d.Sum != 16.25 {
		t.Errorf("delta count=%d sum=%v, want 2, 16.25", d.Count, d.Sum)
	}
	// Min/Max are absolutes, not differences.
	if d.Min != 0.25 || d.Max != 16 {
		t.Errorf("delta min=%v max=%v, want absolutes 0.25, 16", d.Min, d.Max)
	}

	m := New().Histogram("y")
	m.Merge(prev.Delta(HistSnapshot{}))
	m.Merge(d)
	if got := m.Snapshot(); !reflect.DeepEqual(got, cur) {
		t.Errorf("merge roundtrip diverged:\ngot  %+v\nwant %+v", got, cur)
	}
	if st := m.Stats(); st.Count != 4 || st.Min != 0.25 || st.Max != 16 {
		t.Errorf("merged stats = %+v", st)
	}

	// An empty delta must not contaminate the fold with its ±Inf extremes.
	before := m.Snapshot()
	m.Merge(New().Histogram("z").Snapshot())
	if got := m.Snapshot(); !reflect.DeepEqual(got, before) {
		t.Errorf("empty-delta merge mutated the histogram:\ngot  %+v\nwant %+v", got, before)
	}

	// Empty snapshots carry ±Inf extremes by construction (Observe's
	// running min/max start there) — the contract the Count==0 guard
	// exists for.
	empty := New().Histogram("w").Snapshot()
	if !math.IsInf(empty.Min, 1) || !math.IsInf(empty.Max, -1) {
		t.Errorf("empty snapshot extremes = %v, %v", empty.Min, empty.Max)
	}

	// Nil handles no-op.
	var nilH *Histogram
	if got := nilH.Snapshot(); got != (HistSnapshot{}) {
		t.Errorf("nil snapshot = %+v", got)
	}
	nilH.Merge(d)
}

// TestValuesSnapshots covers the prefix-filtered bulk snapshots the worker
// reporter flushes from.
func TestValuesSnapshots(t *testing.T) {
	r := New()
	r.Counter("core.a").Add(1)
	r.Gauge("core.g").Set(2.5)
	r.Gauge("other.g").Set(9)
	r.Histogram("core.h").Observe(1)

	if got := r.GaugeValues("core."); len(got) != 1 || got["core.g"] != 2.5 {
		t.Errorf("GaugeValues(core.) = %v", got)
	}
	if got := r.GaugeValues(""); len(got) != 2 {
		t.Errorf("GaugeValues() = %v", got)
	}
	hv := r.HistogramValues("")
	if len(hv) != 1 || hv["core.h"].Count != 1 {
		t.Errorf("HistogramValues() = %v", hv)
	}
	var nilReg *Registry
	if nilReg.GaugeValues("") != nil || nilReg.HistogramValues("") != nil {
		t.Error("nil registry snapshots should be nil")
	}
}
