package obs

import (
	"runtime/metrics"
	"strings"
	"testing"
)

// TestPromRuntimeName pins the path-to-gauge-name mapping.
func TestPromRuntimeName(t *testing.T) {
	for path, want := range map[string]string{
		"/sched/goroutines:goroutines": "go_sched_goroutines_goroutines",
		"/gc/cycles/total:gc-cycles":   "go_gc_cycles_total_gc_cycles",
		"/sched/latencies:seconds":     "go_sched_latencies_seconds",
	} {
		if got := promRuntimeName(path); got != want {
			t.Errorf("promRuntimeName(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestWriteRuntimeMetrics renders the curated set and checks shape: every
// sample becomes a typed line, histograms expose count and quantiles, and
// values parse (no Inf leaking into the exposition).
func TestWriteRuntimeMetrics(t *testing.T) {
	var sb strings.Builder
	if err := WriteRuntimeMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"go_sched_goroutines_goroutines ",
		"go_memory_classes_total_bytes ",
		"go_gc_pauses_seconds_count ",
		"go_gc_pauses_seconds_p50 ",
		"go_sched_latencies_seconds_p90 ",
		"go_sched_latencies_seconds_p99 ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("runtime exposition missing %q:\n%s", want, body)
		}
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, "Inf") || strings.Contains(line, "NaN") {
			t.Errorf("non-finite value in exposition: %q", line)
		}
	}
}

// TestHistogramQuantile covers the empty and tail-bucket edge cases.
func TestHistogramQuantile(t *testing.T) {
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := histogramQuantile(empty, 0, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{0, 1, 2, 3},
	}
	if got := histogramQuantile(h, 100, 0.5); got != 2 {
		t.Errorf("p50 = %v, want 2 (upper edge of the median bucket)", got)
	}
	if got := histogramQuantile(h, 100, 0.99); got != 3 {
		t.Errorf("p99 = %v, want 3", got)
	}
}
