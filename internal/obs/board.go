package obs

import (
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Board is the live view of a run (or batch of runs): one Run entry per
// synthesis job, updated with lock-free atomics from the search hot path
// and snapshotted by the /runs endpoints. A nil *Board (from a nil
// registry) hands out nil Runs, and every method no-ops on nil receivers.
type Board struct {
	mu    sync.Mutex
	order []string
	runs  map[string]*Run
}

// Board returns the registry's live run board, creating it on first use.
// A nil registry returns a nil board.
func (r *Registry) Board() *Board {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.board == nil {
		r.board = &Board{runs: map[string]*Run{}}
	}
	return r.board
}

// Run is one job's live state. All fields update atomically so scoring
// workers publish without locks; snapshots are read-mostly.
type Run struct {
	name     string
	start    time.Time
	budget   atomic.Int64
	phase    atomic.Pointer[string]
	iter     atomic.Int64
	handlers atomic.Int64
	bestBits atomic.Uint64
	bestExpr atomic.Pointer[string]
	done     atomic.Bool
	errMsg   atomic.Pointer[string]
	endNS    atomic.Int64
	funnel   atomic.Pointer[any]
}

// SetFunnel publishes the run's latest provenance funnel (an opaque,
// JSON-marshalable value — obs never imports the core types). Served by
// /runs/{name}/funnel.
func (r *Run) SetFunnel(v any) {
	if r == nil {
		return
	}
	r.funnel.Store(&v)
}

// Funnel returns the latest published funnel, if any.
func (r *Run) Funnel() (any, bool) {
	if r == nil {
		return nil, false
	}
	p := r.funnel.Load()
	if p == nil {
		return nil, false
	}
	return *p, true
}

// Start returns the named run entry, creating it (phase "starting", best
// +Inf) when new. Re-starting an existing name reuses the entry — the
// batch engine registers jobs as "queued" before the core search adopts
// them — and updates its budget when one is given.
func (b *Board) Start(name string, budget int64) *Run {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	run, ok := b.runs[name]
	if !ok {
		run = &Run{name: name, start: time.Now()}
		run.bestBits.Store(math.Float64bits(math.Inf(1)))
		phase := "starting"
		run.phase.Store(&phase)
		b.runs[name] = run
		b.order = append(b.order, name)
	}
	if budget > 0 {
		run.budget.Store(budget)
	}
	return run
}

// SetPhase labels what the run is doing right now.
func (r *Run) SetPhase(phase string) {
	if r == nil {
		return
	}
	r.phase.Store(&phase)
}

// Phase returns the run's current phase label ("" on a nil run).
func (r *Run) Phase() string {
	if r == nil {
		return ""
	}
	if p := r.phase.Load(); p != nil {
		return *p
	}
	return ""
}

// SetIteration publishes the current refinement iteration (1-based).
func (r *Run) SetIteration(n int) {
	if r == nil {
		return
	}
	r.iter.Store(int64(n))
}

// AddHandlers adds n to the run's scored-candidate count — the live
// counter candidates/sec and the ETA derive from.
func (r *Run) AddHandlers(n int) {
	if r == nil || n == 0 {
		return
	}
	r.handlers.Add(int64(n))
}

// SetBest publishes a best-so-far improvement: the distance and the
// handler expression it belongs to.
func (r *Run) SetBest(distance float64, handler string) {
	if r == nil {
		return
	}
	r.bestBits.Store(math.Float64bits(distance))
	r.bestExpr.Store(&handler)
}

// Finish marks the run done (recording the failure, when there was one).
func (r *Run) Finish(err error) {
	if r == nil {
		return
	}
	if err != nil {
		msg := err.Error()
		r.errMsg.Store(&msg)
		r.SetPhase("failed")
	} else {
		r.SetPhase("done")
	}
	r.endNS.Store(time.Since(r.start).Nanoseconds())
	r.done.Store(true)
}

// RunSnapshot is the JSON shape of one live run, served by /runs.
// BestDistance is null until the run scores its first viable handler.
// ETASec extrapolates the remaining candidate budget at the observed
// scoring rate; it is absent once the run is done or before any candidate
// has been scored.
type RunSnapshot struct {
	Name             string   `json:"name"`
	Phase            string   `json:"phase"`
	Iteration        int      `json:"iteration"`
	HandlersScored   int64    `json:"handlers_scored"`
	Budget           int64    `json:"budget,omitempty"`
	BestDistance     *float64 `json:"best_distance"`
	BestHandler      string   `json:"best_handler,omitempty"`
	CandidatesPerSec float64  `json:"candidates_per_sec"`
	ETASec           *float64 `json:"eta_sec,omitempty"`
	ElapsedSec       float64  `json:"elapsed_sec"`
	Done             bool     `json:"done"`
	Error            string   `json:"error,omitempty"`
}

// snapshot renders the run's current state.
func (r *Run) snapshot() RunSnapshot {
	s := RunSnapshot{
		Name:           r.name,
		Iteration:      int(r.iter.Load()),
		HandlersScored: r.handlers.Load(),
		Budget:         r.budget.Load(),
		Done:           r.done.Load(),
	}
	if p := r.phase.Load(); p != nil {
		s.Phase = *p
	}
	if e := r.errMsg.Load(); e != nil {
		s.Error = *e
	}
	if h := r.bestExpr.Load(); h != nil {
		s.BestHandler = *h
	}
	if d := math.Float64frombits(r.bestBits.Load()); !math.IsInf(d, 0) && !math.IsNaN(d) {
		s.BestDistance = &d
	}
	elapsed := time.Since(r.start).Seconds()
	if s.Done {
		elapsed = time.Duration(r.endNS.Load()).Seconds()
	}
	s.ElapsedSec = elapsed
	if elapsed > 0 && s.HandlersScored > 0 {
		s.CandidatesPerSec = float64(s.HandlersScored) / elapsed
		if !s.Done && s.Budget > s.HandlersScored {
			eta := float64(s.Budget-s.HandlersScored) / s.CandidatesPerSec
			s.ETASec = &eta
		}
	}
	return s
}

// Snapshots renders every run in registration order.
func (b *Board) Snapshots() []RunSnapshot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]RunSnapshot, 0, len(b.order))
	for _, name := range b.order {
		out = append(out, b.runs[name].snapshot())
	}
	return out
}

// Get returns the snapshot for name, matching either the full registered
// name or its final path element (so /runs/reno-01.pcap finds the job
// registered as traces/reno-01.pcap).
func (b *Board) Get(name string) (RunSnapshot, bool) {
	if run := b.find(name); run != nil {
		return run.snapshot(), true
	}
	return RunSnapshot{}, false
}

// FunnelOf returns the latest funnel published by the named run, with the
// same full-or-base-name matching as Get. The second result is false when
// the run is unknown or has not published a funnel yet.
func (b *Board) FunnelOf(name string) (any, bool) {
	run := b.find(name)
	if run == nil {
		return nil, false
	}
	return run.Funnel()
}

// find resolves a run by full registered name or final path element.
func (b *Board) find(name string) *Run {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if run, ok := b.runs[name]; ok {
		return run
	}
	for _, full := range b.order {
		if filepath.Base(full) == name {
			return b.runs[full]
		}
	}
	return nil
}
