package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestBoardNilSafety: the nil board/run chain (observability off) no-ops.
func TestBoardNilSafety(t *testing.T) {
	var r *Registry
	b := r.Board()
	if b != nil {
		t.Fatal("nil registry returned a live board")
	}
	run := b.Start("x", 10)
	if run != nil {
		t.Fatal("nil board handed out a live run")
	}
	run.SetPhase("score")
	run.SetIteration(1)
	run.AddHandlers(5)
	run.SetBest(1.5, "cwnd")
	run.Finish(nil)
	if got := b.Snapshots(); got != nil {
		t.Errorf("nil board snapshots = %v", got)
	}
	if _, ok := b.Get("x"); ok {
		t.Error("nil board found a run")
	}
}

// TestBoardLifecycle walks one run from queued to done and checks the
// snapshot JSON at each stage.
func TestBoardLifecycle(t *testing.T) {
	r := New()
	b := r.Board()
	if b != r.Board() {
		t.Fatal("Board not cached")
	}

	run := b.Start("traces/cubic-03.pcap", 0)
	run.SetPhase("queued")
	s, ok := b.Get("traces/cubic-03.pcap")
	if !ok || s.Phase != "queued" || s.Done || s.BestDistance != nil {
		t.Errorf("queued snapshot = %+v", s)
	}

	// The core search adopts the queued entry: same Run, budget filled in.
	adopted := b.Start("traces/cubic-03.pcap", 50000)
	if adopted != run {
		t.Error("re-Start created a second entry instead of adopting")
	}
	adopted.SetPhase("score")
	adopted.SetIteration(2)
	adopted.AddHandlers(800)
	adopted.SetBest(4.25, "cwnd + 1/cwnd")

	s, _ = b.Get("cubic-03.pcap") // base-name match
	if s.Budget != 50000 || s.Iteration != 2 || s.HandlersScored != 800 {
		t.Errorf("live snapshot = %+v", s)
	}
	if s.BestDistance == nil || *s.BestDistance != 4.25 {
		t.Errorf("best distance = %v", s.BestDistance)
	}

	// Snapshot JSON: best_distance must be an explicit null pre-viability,
	// a number afterwards.
	pre := b.Start("other", 0)
	raw, err := json.Marshal(mustSnap(t, b, "other"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"best_distance":null`) {
		t.Errorf("pre-viability best not null: %s", raw)
	}
	pre.SetBest(math.Inf(1), "") // +Inf stays null
	if s, _ := b.Get("other"); s.BestDistance != nil {
		t.Error("+Inf best rendered as a number")
	}

	adopted.Finish(nil)
	s, _ = b.Get("traces/cubic-03.pcap")
	if !s.Done || s.Phase != "done" || s.Error != "" || s.ETASec != nil {
		t.Errorf("done snapshot = %+v", s)
	}

	if snaps := b.Snapshots(); len(snaps) != 2 || snaps[0].Name != "traces/cubic-03.pcap" || snaps[1].Name != "other" {
		t.Errorf("snapshot order = %+v", snaps)
	}
}

func mustSnap(t *testing.T, b *Board, name string) RunSnapshot {
	t.Helper()
	s, ok := b.Get(name)
	if !ok {
		t.Fatalf("run %q missing", name)
	}
	return s
}

// TestBoardFailedRun: Finish(err) records the failure.
func TestBoardFailedRun(t *testing.T) {
	r := New()
	run := r.Board().Start("bad", 10)
	run.Finish(errSentinel{})
	s := mustSnap(t, r.Board(), "bad")
	if !s.Done || s.Phase != "failed" || s.Error != "sketch space empty" {
		t.Errorf("failed snapshot = %+v", s)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sketch space empty" }

// TestBuildInfo: ReadBuild is cached and self-consistent, and its stamp
// lands in the run report (the satellite contract: every archived report
// names the binary that produced it).
func TestBuildInfo(t *testing.T) {
	b := ReadBuild()
	if b == (BuildInfo{}) {
		t.Skip("no build info in this test binary")
	}
	if b.GoVersion == "" {
		t.Errorf("build info missing Go version: %+v", b)
	}
	if again := ReadBuild(); again != b {
		t.Error("ReadBuild not stable")
	}
	if s := b.String(); s == "" || !strings.Contains(s, b.GoVersion) {
		t.Errorf("String() = %q", s)
	}
	rep := New().Report()
	if rep.Build == nil || *rep.Build != b {
		t.Errorf("report build stamp = %+v, want %+v", rep.Build, b)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"go_version"`) {
		t.Errorf("report JSON missing build info: %s", raw)
	}
}
