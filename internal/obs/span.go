package obs

import (
	"fmt"
	"time"
)

// Event kinds emitted to sinks.
const (
	KindSpanStart = "span_start"
	KindSpanEnd   = "span_end"
	KindMetric    = "metric"
	KindProgress  = "progress"
	KindRecord    = "record"
)

// Event is one observation streamed to sinks. T is seconds since the
// registry's start; fields beyond Kind/T are kind-specific.
type Event struct {
	T      float64        `json:"t"`
	Kind   string         `json:"kind"`
	Name   string         `json:"name,omitempty"`
	Span   uint64         `json:"span,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	DurMS  float64        `json:"dur_ms,omitempty"`
	Value  float64        `json:"value,omitempty"`
	Msg    string         `json:"msg,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	Data   any            `json:"data,omitempty"`
}

// Span is one timed region of a run. Spans nest via Child, stream
// start/end events to sinks, and accumulate into the registry's per-name
// phase totals (the "wall-clock per phase" section of the report). A nil
// *Span (from a nil registry) no-ops everywhere.
type Span struct {
	r      *Registry
	name   string
	id     uint64
	parent uint64
	start  time.Time
	attrs  map[string]any
}

// StartSpan opens a root span. Nil registries return nil spans.
func (r *Registry) StartSpan(name string) *Span {
	return r.startSpan(name, 0)
}

func (r *Registry) startSpan(name string, parent uint64) *Span {
	if r == nil {
		return nil
	}
	s := &Span{r: r, name: name, id: r.spanID.Add(1), parent: parent, start: time.Now()}
	if r.hasSinks() {
		r.emit(Event{T: r.since(), Kind: KindSpanStart, Name: name, Span: s.id, Parent: parent})
	}
	return s
}

// Child opens a sub-span of s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.r.startSpan(name, s.id)
}

// SetAttr attaches a key/value to the span's end event. Not safe for
// concurrent use on one span; returns s for chaining.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
	return s
}

// End closes the span, folds its duration into the per-name phase totals,
// and emits the end event. It returns the span's duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	p := s.r.phase(s.name)
	p.count.Add(1)
	p.totalNS.Add(int64(d))
	s.r.flightNote("span", s.name, float64(d)/float64(time.Millisecond))
	if s.r.hasSinks() {
		s.r.emit(Event{
			T: s.r.since(), Kind: KindSpanEnd, Name: s.name,
			Span: s.id, Parent: s.parent,
			DurMS: float64(d) / float64(time.Millisecond),
			Attrs: s.attrs,
		})
	}
	return d
}

// Metric emits a named scalar observation to sinks and mirrors it into the
// registry's gauge of the same name — use it for trajectories (best score
// over time) where both the stream and the final value matter.
func (r *Registry) Metric(name string, v float64) {
	if r == nil {
		return
	}
	r.Gauge(name).Set(v)
	r.flightNote("metric", name, v)
	if r.hasSinks() {
		r.emit(Event{T: r.since(), Kind: KindMetric, Name: name, Value: v})
	}
}

// Progressf emits a human-oriented progress line. The format step is
// skipped entirely when no sink is attached, so verbose-style callers may
// leave Progressf calls unconditionally in place.
func (r *Registry) Progressf(format string, args ...any) {
	if r == nil || !r.hasSinks() {
		return
	}
	r.emit(Event{T: r.since(), Kind: KindProgress, Msg: fmt.Sprintf(format, args...)})
}
