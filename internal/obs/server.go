package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strings"
	"sync"
	"time"
)

// EventHub fans the registry's event stream out to live subscribers (the
// /events SSE endpoint). Emit never blocks: a subscriber that falls
// behind its buffer drops events rather than stalling the run — the
// observability layer must never apply backpressure to the search.
type EventHub struct {
	mu     sync.Mutex
	subs   map[chan Event]struct{}
	closed bool
}

// NewEventHub returns an empty hub.
func NewEventHub() *EventHub {
	return &EventHub{subs: map[chan Event]struct{}{}}
}

// Emit implements Sink.
func (h *EventHub) Emit(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop
		}
	}
}

// Subscribe registers a listener with the given buffer size. The cancel
// func unregisters it and closes the channel.
func (h *EventHub) Subscribe(buf int) (<-chan Event, func()) {
	ch := make(chan Event, buf)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// Close implements Sink: it unregisters and closes every subscriber.
func (h *EventHub) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
	return nil
}

// Mount attaches an extra handler subtree to the observability mux —
// how the synthesis service exposes its /api/v1 job endpoints on the
// same port as /metrics and /runs without obs importing the service.
type Mount struct {
	// Pattern is a ServeMux pattern ("/api/v1/" mounts a subtree).
	Pattern string
	// Handler serves the subtree.
	Handler http.Handler
}

// Handler builds the live observability mux for the registry:
//
//	/            endpoint index
//	/metrics     Prometheus text exposition of the registry
//	/runs        JSON array of live per-trace run state (the Board)
//	/runs/{name} one run, matched by full name or base name
//	/cluster     shard fleet snapshot (404 on single-process runs)
//	/events      Server-Sent Events stream of the registry's event flow
//	/flight      flight-recorder dump (JSONL, oldest first)
//	/debug/pprof the standard pprof surface
//
// hub may be nil, in which case /events reports 503; callers that want a
// live stream attach the hub to the registry themselves (Flags.Setup
// does). The handler is safe to serve during a run — every view is a
// lock-light snapshot.
func (r *Registry) Handler(hub *EventHub, mounts ...Mount) http.Handler {
	mux := http.NewServeMux()
	var extra strings.Builder
	for _, m := range mounts {
		fmt.Fprintf(&extra, "%-21s mounted subtree\n", m.Pattern)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "abagnale live observability\n\n"+
			"/metrics             Prometheus text exposition (+ Go runtime)\n"+
			"/healthz             readiness + build info (JSON)\n"+
			"/runs                live batch state (JSON)\n"+
			"/runs/{name}         one trace's live state\n"+
			"/runs/{name}/funnel  one trace's pruning funnel (JSON)\n"+
			"/cluster             shard fleet snapshot (JSON; sharded runs)\n"+
			"/events              SSE event stream\n"+
			"/flight              flight-recorder dump (JSONL)\n"+
			"/debug/pprof         pprof\n"+
			extra.String())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
		_ = WriteRuntimeMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, healthSnapshot(r))
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Board().Snapshots())
	})
	mux.HandleFunc("/runs/", func(w http.ResponseWriter, req *http.Request) {
		name := strings.TrimPrefix(req.URL.Path, "/runs/")
		if un, err := url.PathUnescape(name); err == nil {
			name = un
		}
		if base, ok := strings.CutSuffix(name, "/funnel"); ok {
			funnel, ok := r.Board().FunnelOf(base)
			if !ok {
				http.NotFound(w, req)
				return
			}
			writeJSON(w, funnel)
			return
		}
		snap, ok := r.Board().Get(name)
		if !ok {
			http.NotFound(w, req)
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, req *http.Request) {
		snap, ok := r.ClusterSnapshot()
		if !ok {
			http.Error(w, "no cluster attached (not a sharded run)", http.StatusNotFound)
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = r.Flight().WriteJSONL(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		serveSSE(w, req, hub)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, m := range mounts {
		mux.Handle(m.Pattern, m.Handler)
	}
	return mux
}

// procStart anchors the /healthz uptime to process start (package init).
var procStart = time.Now()

// Health is the /healthz payload: a readiness flag plus enough identity —
// build info, uptime, run counts — for a smoke test or orchestrator probe
// to tell which binary it reached and whether work is progressing.
type Health struct {
	Status     string    `json:"status"`
	Build      BuildInfo `json:"build"`
	UptimeSec  float64   `json:"uptime_sec"`
	Runs       int       `json:"runs"`
	ActiveRuns int       `json:"active_runs"`
}

// healthSnapshot assembles the current health view. The server answers as
// soon as its listener is bound, so Status is unconditionally "ok" — the
// probe's signal is reaching the endpoint at all.
func healthSnapshot(r *Registry) Health {
	h := Health{
		Status:    "ok",
		Build:     ReadBuild(),
		UptimeSec: time.Since(procStart).Seconds(),
	}
	for _, snap := range r.Board().Snapshots() {
		h.Runs++
		if !snap.Done {
			h.ActiveRuns++
		}
	}
	return h
}

// writeJSON renders v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// serveSSE streams hub events to one subscriber until it disconnects or
// the hub closes.
func serveSSE(w http.ResponseWriter, req *http.Request, hub *EventHub) {
	if hub == nil {
		http.Error(w, "event hub not attached", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	fmt.Fprint(w, ": abagnale event stream\n\n")
	fl.Flush()
	ch, cancel := hub.Subscribe(256)
	defer cancel()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
				return
			}
			fl.Flush()
		case <-req.Context().Done():
			return
		}
	}
}

// Server is a live observability HTTP server bound to one registry.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the registry's observability server on addr (host:port;
// ":0" picks a free port — read the result's Addr). It returns once the
// listener is bound; serving continues in a background goroutine until
// Close.
func Serve(addr string, r *Registry, hub *EventHub, mounts ...Mount) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: r.Handler(hub, mounts...)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, giving in-flight requests (including open
// SSE streams) a short grace period before forcing the close.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
