package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// liveFixture builds a registry resembling a mid-flight batch run: live
// metrics, two board entries, and a flight recorder with history.
func liveFixture() *Registry {
	r := New()
	r.EnableFlight(128)
	r.Counter("core.handlers_scored").Add(4096)
	r.Gauge("core.best_distance").Set(12.75)
	r.Histogram("replay.score_ms").Observe(1.5)
	run := r.Board().Start("traces/reno-01.pcap", 120000)
	run.SetPhase("score")
	run.SetIteration(3)
	run.AddHandlers(4096)
	run.SetBest(12.75, "cwnd + 1/cwnd")
	r.Board().Start("traces/reno-02.pcap", 120000).SetPhase("queued")
	r.StartSpan("core.iteration").End()
	return r
}

// TestServerEndpoints drives every non-streaming endpoint through the real
// mux: content types, JSON shapes, name matching, 404s.
func TestServerEndpoints(t *testing.T) {
	r := liveFixture()
	srv := httptest.NewServer(r.Handler(nil))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var sb strings.Builder
		if _, err := bufio.NewReader(resp.Body).WriteTo(&sb); err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		resp.Body.Close()
		return resp, sb.String()
	}

	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "core_handlers_scored 4096") ||
		!strings.Contains(body, "core_best_distance 12.75") ||
		!strings.Contains(body, "replay_score_ms_count 1") {
		t.Errorf("/metrics missing instruments:\n%s", body)
	}
	if !strings.Contains(body, "go_sched_goroutines_goroutines") ||
		!strings.Contains(body, "go_memory_classes_heap_objects_bytes") ||
		!strings.Contains(body, "go_gc_pauses_seconds_count") ||
		!strings.Contains(body, "go_sched_latencies_seconds_p99") {
		t.Errorf("/metrics missing Go runtime telemetry:\n%s", body)
	}

	resp, body = get("/healthz")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/healthz content type = %q", ct)
	}
	var health Health
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" {
		t.Errorf("/healthz status = %q, want ok", health.Status)
	}
	if health.Build.GoVersion == "" {
		t.Errorf("/healthz missing build info: %+v", health)
	}
	if health.Runs != 2 || health.ActiveRuns != 2 {
		t.Errorf("/healthz run counts = %d/%d, want 2/2", health.ActiveRuns, health.Runs)
	}

	resp, body = get("/runs")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/runs content type = %q", ct)
	}
	var runs []RunSnapshot
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs not JSON: %v\n%s", err, body)
	}
	if len(runs) != 2 || runs[0].Name != "traces/reno-01.pcap" || runs[1].Phase != "queued" {
		t.Errorf("/runs = %+v", runs)
	}
	if runs[0].Phase != "score" || runs[0].Iteration != 3 || runs[0].HandlersScored != 4096 {
		t.Errorf("live run snapshot = %+v", runs[0])
	}
	if runs[0].BestDistance == nil || *runs[0].BestDistance != 12.75 || runs[0].BestHandler != "cwnd + 1/cwnd" {
		t.Errorf("best not published: %+v", runs[0])
	}
	if runs[0].CandidatesPerSec <= 0 || runs[0].ETASec == nil || *runs[0].ETASec <= 0 {
		t.Errorf("rate/ETA not derived: %+v", runs[0])
	}

	// One run by base name (the registered name is a path).
	_, body = get("/runs/reno-01.pcap")
	var one RunSnapshot
	if err := json.Unmarshal([]byte(body), &one); err != nil || one.Name != "traces/reno-01.pcap" {
		t.Errorf("/runs/{name} = %+v (%v)", one, err)
	}
	if resp, _ = get("/runs/nope.pcap"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("/runs/nope.pcap status = %d, want 404", resp.StatusCode)
	}

	// The funnel endpoint 404s until the run publishes, then serves the
	// published value verbatim (by full or base name).
	if resp, _ = get("/runs/reno-01.pcap/funnel"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("funnel before publish status = %d, want 404", resp.StatusCode)
	}
	r.Board().Start("traces/reno-01.pcap", 0).SetFunnel(map[string]any{"enumerated": 42.0})
	_, body = get("/runs/reno-01.pcap/funnel")
	var funnel map[string]any
	if err := json.Unmarshal([]byte(body), &funnel); err != nil || funnel["enumerated"] != 42.0 {
		t.Errorf("/runs/{name}/funnel = %v (%v)", funnel, err)
	}
	if resp, _ = get("/runs/nope.pcap/funnel"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("funnel for unknown run status = %d, want 404", resp.StatusCode)
	}

	_, body = get("/flight")
	var ev FlightEvent
	if err := json.Unmarshal([]byte(strings.Split(strings.TrimSpace(body), "\n")[0]), &ev); err != nil {
		t.Errorf("/flight first line not a flight event: %v\n%s", err, body)
	}

	// /cluster 404s until a coordinator attaches its snapshot hook, then
	// serves whatever the hook returns as JSON.
	if resp, _ = get("/cluster"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("/cluster without hook status = %d, want 404", resp.StatusCode)
	}
	r.SetCluster(func() any {
		return map[string]any{"workers": []any{map[string]any{"id": 1, "last_beat_sec": 0.1}}}
	})
	resp, body = get("/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/cluster with hook status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/cluster content type = %q", ct)
	}
	var cluster struct {
		Workers []struct {
			ID int `json:"id"`
		} `json:"workers"`
	}
	if err := json.Unmarshal([]byte(body), &cluster); err != nil || len(cluster.Workers) != 1 || cluster.Workers[0].ID != 1 {
		t.Errorf("/cluster = %+v (%v)\n%s", cluster, err, body)
	}

	if resp, _ = get("/events"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/events without hub status = %d, want 503", resp.StatusCode)
	}

	_, body = get("/")
	if !strings.Contains(body, "/metrics") || !strings.Contains(body, "/flight") {
		t.Errorf("index missing endpoint listing:\n%s", body)
	}
	if resp, _ = get("/not-a-page"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", resp.StatusCode)
	}

	if resp, _ = get("/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline status = %d", resp.StatusCode)
	}
}

// TestServerSSE is the live-stream smoke test: subscribe over real HTTP,
// emit an event through the hub, and read it back as an SSE data frame.
func TestServerSSE(t *testing.T) {
	r := liveFixture()
	hub := NewEventHub()
	r.Attach(hub)
	srv, err := Serve("127.0.0.1:0", r, hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// The emitting side races the subscriber registration; keep emitting
	// until the frame arrives.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				r.Metric("core.best_distance", 11.5)
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	deadline := time.After(5 * time.Second)
	got := make(chan string, 1)
	go func() {
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				got <- strings.TrimPrefix(line, "data: ")
				return
			}
		}
	}()
	select {
	case frame := <-got:
		var ev Event
		if err := json.Unmarshal([]byte(frame), &ev); err != nil {
			t.Fatalf("SSE frame not JSON: %v\n%s", err, frame)
		}
		if ev.Kind != KindMetric || ev.Name != "core.best_distance" || ev.Value != 11.5 {
			t.Errorf("SSE event = %+v", ev)
		}
	case <-deadline:
		t.Fatal("no SSE data frame within 5s")
	}
}

// TestEventHubDropsSlowSubscriber pins the no-backpressure contract: a full
// subscriber buffer drops events instead of blocking Emit.
func TestEventHubDropsSlowSubscriber(t *testing.T) {
	hub := NewEventHub()
	ch, cancel := hub.Subscribe(2)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			hub.Emit(Event{Kind: KindMetric, Value: float64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Emit blocked on a slow subscriber")
	}
	if n := len(ch); n != 2 {
		t.Errorf("buffered %d events, want the 2 that fit", n)
	}
	cancel()
	cancel() // idempotent
	if err := hub.Close(); err != nil {
		t.Errorf("hub close: %v", err)
	}
	// Subscribing after close yields a closed channel, not a hang.
	ch2, cancel2 := hub.Subscribe(1)
	defer cancel2()
	if _, ok := <-ch2; ok {
		t.Error("subscribe after close returned a live channel")
	}
}

// TestEventHubSlowSubscriberDoesNotStarveFast: drops are per-subscriber —
// a stalled listener loses its own events while a draining one sees all
// of them.
func TestEventHubSlowSubscriberDoesNotStarveFast(t *testing.T) {
	hub := NewEventHub()
	defer hub.Close()
	slow, cancelSlow := hub.Subscribe(1)
	defer cancelSlow()
	fast, cancelFast := hub.Subscribe(128)
	defer cancelFast()

	const n = 100
	received := make(chan int, 1)
	go func() {
		got := 0
		for range fast {
			if got++; got == n {
				received <- got
				return
			}
		}
		received <- got
	}()
	for i := 0; i < n; i++ {
		hub.Emit(Event{Kind: KindMetric, Value: float64(i)})
	}
	select {
	case got := <-received:
		if got != n {
			t.Errorf("fast subscriber saw %d/%d events", got, n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fast subscriber starved behind a stalled one")
	}
	if len(slow) != 1 {
		t.Errorf("slow subscriber buffered %d events, want its 1-slot fill", len(slow))
	}
}
