package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Instruments may carry Prometheus labels encoded directly in the registry
// key: `family{k="v",...}` as produced by Labeled. The registry itself is
// label-blind — a labeled key is just another instrument — but the text
// exposition groups all series of one family under a single # TYPE line,
// which is how cross-process federation surfaces per-worker series
// (`core.handlers_scored{worker="2"}`) next to the fleet aggregate
// (`{worker="fleet"}`) on one scrape.

// labelEscaper escapes label values per the exposition grammar.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// Labeled renders an instrument name plus label pairs in the canonical
// `name{k="v",...}` form. Keys are sorted, so equal label sets always map
// to the same registry key regardless of argument order. kv is alternating
// key, value; a trailing odd key is ignored.
func Labeled(name string, kv ...string) string {
	n := len(kv) / 2
	if n == 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{kv[2*i], kv[2*i+1]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.Grow(len(name) + 16*n)
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// splitLabels splits a canonical instrument key into its family name and
// label body ("" when unlabeled).
func splitLabels(key string) (family, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// promSeries is one instrument key resolved to exposition terms.
type promSeries struct {
	fam    string // sanitized family name
	labels string // raw label body, "" when unlabeled
	key    string // original registry key
}

// promSeriesOf sorts keys into exposition order: by family, unlabeled
// series first, then labeled series in label order — so every family's
// samples are consecutive and a single # TYPE line can head the group.
func promSeriesOf[V any](m map[string]V) []promSeries {
	out := make([]promSeries, 0, len(m))
	for k := range m {
		fam, labels := splitLabels(k)
		out = append(out, promSeries{fam: promName(fam), labels: labels, key: k})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].fam != out[j].fam {
			return out[i].fam < out[j].fam
		}
		if out[i].labels != out[j].labels {
			return out[i].labels < out[j].labels
		}
		return out[i].key < out[j].key
	})
	return out
}

// promLabels renders a label body as a sample suffix.
func promLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// promLabelsLE renders a label body with the histogram le bound merged in.
func promLabelsLE(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("{%s,le=%q}", labels, le)
}

// WritePrometheus renders the registry's instruments in Prometheus text
// exposition format (version 0.0.4): counters first, then gauges, then
// histograms, each family sorted by name with its label sets in sorted
// order — byte-for-byte deterministic for a given set of instrument
// values, so two exposures of identical state diff cleanly (pinned by
// TestPrometheusDeterministic and the golden tests).
//
// Dotted metric names are sanitized to the Prometheus grammar
// ("core.handlers_scored" → "core_handlers_scored"); labeled keys from
// Labeled keep their label body verbatim. Histograms emit the standard
// cumulative _bucket/_sum/_count series over the package's base-2 buckets
// (zero-delta buckets are elided; cumulative counts stay monotone) plus
// _p50/_p90/_p99 gauge estimates so dashboards without PromQL
// histogram_quantile still see tail latencies. A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	prev := ""
	for _, s := range promSeriesOf(counters) {
		if s.fam != prev {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", s.fam); err != nil {
				return err
			}
			prev = s.fam
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", s.fam, promLabels(s.labels), counters[s.key].Value()); err != nil {
			return err
		}
	}
	prev = ""
	for _, s := range promSeriesOf(gauges) {
		if s.fam != prev {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", s.fam); err != nil {
				return err
			}
			prev = s.fam
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", s.fam, promLabels(s.labels), promFloat(gauges[s.key].Value())); err != nil {
			return err
		}
	}
	series := promSeriesOf(hists)
	for i := 0; i < len(series); {
		j := i
		for j < len(series) && series[j].fam == series[i].fam {
			j++
		}
		if err := writePromHistogramFamily(w, series[i:j], hists); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// writePromHistogramFamily renders every label set of one histogram family:
// first all _bucket/_sum/_count samples (one consecutive run per family, as
// the exposition format requires), then the _p50/_p90/_p99 quantile gauge
// families across the same label sets.
func writePromHistogramFamily(w io.Writer, group []promSeries, hists map[string]*Histogram) error {
	name := group[0].fam
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	for _, s := range group {
		h := hists[s.key]
		st := h.Stats()
		var cum int64
		for i := 0; i < histBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabelsLE(s.labels, promFloat(bucketUpper(i))), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %s\n%s_count%s %d\n",
			name, promLabelsLE(s.labels, "+Inf"), cum,
			name, promLabels(s.labels), promFloat(st.Sum),
			name, promLabels(s.labels), st.Count); err != nil {
			return err
		}
	}
	for _, q := range []struct {
		suffix string
		pick   func(HistStats) float64
	}{
		{"_p50", func(s HistStats) float64 { return s.P50 }},
		{"_p90", func(s HistStats) float64 { return s.P90 }},
		{"_p99", func(s HistStats) float64 { return s.P99 }},
	} {
		wroteType := false
		for _, s := range group {
			st := hists[s.key].Stats()
			if st.Count == 0 {
				continue
			}
			if !wroteType {
				if _, err := fmt.Fprintf(w, "# TYPE %s%s gauge\n", name, q.suffix); err != nil {
					return err
				}
				wroteType = true
			}
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", name, q.suffix, promLabels(s.labels), promFloat(q.pick(st))); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName maps a dotted instrument name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects: the shortest
// round-trippable form ("+Inf"/"-Inf"/"NaN" are FormatFloat's own
// spellings, which match the exposition grammar).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
