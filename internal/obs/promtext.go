package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry's instruments in Prometheus text
// exposition format (version 0.0.4): counters first, then gauges, then
// histograms, each family sorted by name — byte-for-byte deterministic for
// a given set of instrument values, so two exposures of identical state
// diff cleanly (pinned by TestPrometheusDeterministic).
//
// Dotted metric names are sanitized to the Prometheus grammar
// ("core.handlers_scored" → "core_handlers_scored"). Histograms emit the
// standard cumulative _bucket/_sum/_count series over the package's
// base-2 buckets (zero-delta buckets are elided; cumulative counts stay
// monotone) plus _p50/_p90/_p99 gauge estimates so dashboards without
// PromQL histogram_quantile still see tail latencies. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for _, k := range sortedKeys(counters) {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(gauges) {
		name := promName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(gauges[k].Value())); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(hists) {
		if err := writePromHistogram(w, promName(k), hists[k]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram family.
func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	s := h.Stats()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bucketUpper(i)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, cum, name, promFloat(s.Sum), name, s.Count); err != nil {
		return err
	}
	if s.Count == 0 {
		return nil
	}
	for _, q := range []struct {
		suffix string
		v      float64
	}{{"_p50", s.P50}, {"_p90", s.P90}, {"_p99", s.P99}} {
		if _, err := fmt.Fprintf(w, "# TYPE %s%s gauge\n%s%s %s\n",
			name, q.suffix, name, q.suffix, promFloat(q.v)); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted instrument name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects: the shortest
// round-trippable form ("+Inf"/"-Inf"/"NaN" are FormatFloat's own
// spellings, which match the exposition grammar).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
