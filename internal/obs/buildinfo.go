package obs

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the binary a report or benchmark snapshot came
// from: module version plus VCS state from debug.ReadBuildInfo. Archived
// run reports and bench/BENCH_*.json files embed it so results stay
// attributable to a commit.
type BuildInfo struct {
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

var buildOnce = sync.OnceValue(func() BuildInfo {
	var b BuildInfo
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	b.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
})

// ReadBuild returns the running binary's build info (cached after the
// first call). Binaries built outside a module ("go test" of old
// toolchains) return a zero value.
func ReadBuild() BuildInfo {
	return buildOnce()
}

// String renders the one-line -version output.
func (b BuildInfo) String() string {
	mod := b.Module
	if mod == "" {
		mod = "(unknown module)"
	}
	ver := b.Version
	if ver == "" {
		ver = "(devel)"
	}
	s := fmt.Sprintf("%s %s", mod, ver)
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if b.Modified {
			s += " (modified)"
		}
	}
	if b.Time != "" {
		s += " built " + b.Time
	}
	if b.GoVersion != "" {
		s += " with " + b.GoVersion
	}
	return s
}
