package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestFlightNilNoOps: the nil recorder (observability off, or flight never
// enabled) must be safe everywhere.
func TestFlightNilNoOps(t *testing.T) {
	var f *FlightRecorder
	f.Note("metric", "x", 1)
	if got := f.Snapshot(); got != nil {
		t.Errorf("nil snapshot = %v", got)
	}
	if got := f.Tail(10); got != nil {
		t.Errorf("nil tail = %v", got)
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil dump wrote %q, %v", buf.String(), err)
	}
	var r *Registry
	if r.EnableFlight(16) != nil || r.Flight() != nil {
		t.Error("nil registry handed out a live recorder")
	}
}

// TestFlightOrderAndWraparound fills the recorder past capacity and checks
// the snapshot is the most recent events in strict sequence order.
func TestFlightOrderAndWraparound(t *testing.T) {
	const capacity = 64
	f := NewFlightRecorder(capacity)
	const total = capacity * 3
	for i := 0; i < total; i++ {
		f.Note("metric", "m", float64(i))
	}
	snap := f.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("snapshot kept %d events, want %d", len(snap), capacity)
	}
	for i, ev := range snap {
		if i > 0 && ev.Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: seq %d after %d", i, ev.Seq, snap[i-1].Seq)
		}
		// The retained window is exactly the newest `capacity` notes: values
		// total-capacity .. total-1.
		if want := float64(total - capacity + i); ev.Value != want {
			t.Errorf("snapshot[%d].Value = %v, want %v", i, ev.Value, want)
		}
	}
	tail := f.Tail(5)
	if len(tail) != 5 || tail[4].Value != float64(total-1) {
		t.Errorf("tail = %+v", tail)
	}
}

// TestFlightConcurrentNoteAndSnapshot races many writers against snapshot
// readers — the -race proof that striped appends and stripe-at-a-time
// snapshots coexist. Every snapshotted event must be internally consistent
// (Seq and Value agree, fields intact).
func TestFlightConcurrentNoteAndSnapshot(t *testing.T) {
	f := NewFlightRecorder(256)
	const workers, perWorker = 8, 2000
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				f.Note("span", "core.score_bucket", float64(i))
			}
		}()
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i, ev := range f.Snapshot() {
				if ev.Seq == 0 || ev.Kind != "span" || ev.Name != "core.score_bucket" {
					t.Errorf("torn event at %d: %+v", i, ev)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone

	if got := f.seq.Load(); got != workers*perWorker {
		t.Errorf("recorded %d notes, want %d", got, workers*perWorker)
	}
}

// TestFlightWriteJSONL checks the dump format: one valid JSON object per
// line, oldest first.
func TestFlightWriteJSONL(t *testing.T) {
	f := NewFlightRecorder(32)
	f.Note("span", "core.iteration", 12.5)
	f.Note("record", "core.bucket", 0)
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dumped %d lines, want 2: %q", len(lines), buf.String())
	}
	var first, second FlightEvent
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.Name != "core.iteration" || first.Value != 12.5 || second.Name != "core.bucket" {
		t.Errorf("dump = %+v, %+v", first, second)
	}
	if second.Seq <= first.Seq {
		t.Error("dump not oldest-first")
	}
}

// TestRegistryFlightIntegration: once EnableFlight is on, span ends, metric
// updates and records all land in the recorder — with no sink attached,
// which is exactly the black-box-recorder configuration.
func TestRegistryFlightIntegration(t *testing.T) {
	r := New()
	if r.Flight() != nil {
		t.Fatal("flight recorder on before EnableFlight")
	}
	f := r.EnableFlight(128)
	if f == nil || r.Flight() != f {
		t.Fatal("EnableFlight did not install the recorder")
	}
	if again := r.EnableFlight(4096); again != f {
		t.Error("EnableFlight not idempotent")
	}
	r.StartSpan("core.iteration").End()
	r.Metric("core.best_distance", 3.25)
	r.Record("core.bucket", map[string]any{"ops": "add"})
	kinds := map[string]int{}
	for _, ev := range f.Snapshot() {
		kinds[ev.Kind]++
	}
	if kinds["span"] != 1 || kinds["metric"] != 1 || kinds["record"] != 1 {
		t.Errorf("recorded kinds = %v, want one span, one metric, one record", kinds)
	}
}
