package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the /metrics exposition byte-for-byte for a
// small fixture registry: counters, gauges, then histograms with cumulative
// buckets, sum, count and the quantile-estimate gauges.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("dist.dtw_cells").Add(42)
	r.Gauge("core.best_distance").Set(2.5)
	h := r.Histogram("score.ms")
	h.Observe(0.5)
	h.Observe(1.0)
	h.Observe(2.0)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dist_dtw_cells counter
dist_dtw_cells 42
# TYPE core_best_distance gauge
core_best_distance 2.5
# TYPE score_ms histogram
score_ms_bucket{le="1"} 1
score_ms_bucket{le="2"} 2
score_ms_bucket{le="4"} 3
score_ms_bucket{le="+Inf"} 3
score_ms_sum 3.5
score_ms_count 3
# TYPE score_ms_p50 gauge
score_ms_p50 2
# TYPE score_ms_p90 gauge
score_ms_p90 4
# TYPE score_ms_p99 gauge
score_ms_p99 4
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// promLine matches the exposition grammar this package emits: a comment, or
// metric-name[{le="bound"}] value.
var promLine = regexp.MustCompile(`^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? ([+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN))$`)

// TestPrometheusGrammar renders a registry with awkward names and values
// and checks every line against the exposition grammar: sanitized names,
// monotone cumulative buckets, count consistency.
func TestPrometheusGrammar(t *testing.T) {
	r := New()
	r.Counter("replay.2nd-pass/cells").Add(7) // needs sanitizing
	r.Gauge("g").Set(-1.25e-9)
	h := r.Histogram("lat")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 10)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "replay_2nd_pass_cells 7") {
		t.Errorf("name not sanitized:\n%s", out)
	}
	var lastCum, bucketSeries int64 = -1, 0
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("line violates exposition grammar: %q", line)
		}
		if strings.HasPrefix(line, "lat_bucket{") {
			bucketSeries++
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < lastCum {
				t.Errorf("cumulative bucket counts not monotone at %q", line)
			}
			lastCum = v
		}
	}
	if bucketSeries == 0 {
		t.Fatal("no bucket series emitted")
	}
	if lastCum != 1000 {
		t.Errorf("final cumulative bucket = %d, want 1000 (the count)", lastCum)
	}
	if !strings.Contains(out, "lat_count 1000") {
		t.Errorf("histogram count missing:\n%s", out)
	}
}

// TestPrometheusDeterministic is the rendering-determinism regression test:
// two exposures of the same registry state — and two encodings of the same
// report — must be byte-identical, regardless of map iteration order.
func TestPrometheusDeterministic(t *testing.T) {
	r := New()
	// Enough instruments that map-order leakage would be caught with
	// overwhelming probability.
	for i := 0; i < 40; i++ {
		r.Counter(fmt.Sprintf("c.%02d", i)).Add(int64(i))
		r.Gauge(fmt.Sprintf("g.%02d", i)).Set(float64(i) / 3)
		r.Histogram(fmt.Sprintf("h.%02d", i)).Observe(float64(i + 1))
	}
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exposures of identical state differ")
	}

	var ra, rb bytes.Buffer
	if err := r.Report().Encode(&ra); err != nil {
		t.Fatal(err)
	}
	if err := r.Report().Encode(&rb); err != nil {
		t.Fatal(err)
	}
	// Reports embed wall-clock duration; strip the one volatile line.
	strip := func(s string) string {
		return regexp.MustCompile(`"duration_sec":[^,\n]*`).ReplaceAllString(s, `"duration_sec":0`)
	}
	if strip(ra.String()) != strip(rb.String()) {
		t.Errorf("two report encodings of identical state differ:\n%s\n---\n%s", ra.String(), rb.String())
	}

	// A nil registry writes nothing and does not error.
	var nilReg *Registry
	var n bytes.Buffer
	if err := nilReg.WritePrometheus(&n); err != nil || n.Len() != 0 {
		t.Errorf("nil registry exposition = %q, %v", n.String(), err)
	}
}

// TestLabeledCanonical pins the labeled-key form federation depends on:
// sorted keys, escaped values, order-insensitive construction.
func TestLabeledCanonical(t *testing.T) {
	if got := Labeled("core.handlers_scored", "worker", "2"); got != `core.handlers_scored{worker="2"}` {
		t.Errorf("Labeled = %q", got)
	}
	a := Labeled("x", "b", "2", "a", "1")
	b := Labeled("x", "a", "1", "b", "2")
	if a != b || a != `x{a="1",b="2"}` {
		t.Errorf("label order not canonical: %q vs %q", a, b)
	}
	if got := Labeled("x"); got != "x" {
		t.Errorf("no labels should return the bare name, got %q", got)
	}
	if got := Labeled("x", "k", "a\\b\"c\nd"); got != `x{k="a\\b\"c\nd"}` {
		t.Errorf("escaping = %q", got)
	}
}

// TestPrometheusLabeledGolden pins the federated exposition byte-for-byte:
// one # TYPE line per family with unlabeled and labeled series grouped
// under it, histogram label bodies merged with the le bound, and quantile
// gauges per label set.
func TestPrometheusLabeledGolden(t *testing.T) {
	r := New()
	r.Counter("core.handlers_scored").Add(3)
	r.Counter(Labeled("core.handlers_scored", "worker", "1")).Add(5)
	r.Counter(Labeled("core.handlers_scored", "worker", "2")).Add(7)
	r.Counter(Labeled("core.handlers_scored", "worker", "fleet")).Add(12)
	r.Gauge(Labeled("core.best_distance", "worker", "1")).Set(2.5)
	r.Histogram(Labeled("score.ms", "worker", "1")).Observe(0.5)
	r.Histogram(Labeled("score.ms", "worker", "2")).Observe(1.0)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE core_handlers_scored counter
core_handlers_scored 3
core_handlers_scored{worker="1"} 5
core_handlers_scored{worker="2"} 7
core_handlers_scored{worker="fleet"} 12
# TYPE core_best_distance gauge
core_best_distance{worker="1"} 2.5
# TYPE score_ms histogram
score_ms_bucket{worker="1",le="1"} 1
score_ms_bucket{worker="1",le="+Inf"} 1
score_ms_sum{worker="1"} 0.5
score_ms_count{worker="1"} 1
score_ms_bucket{worker="2",le="2"} 1
score_ms_bucket{worker="2",le="+Inf"} 1
score_ms_sum{worker="2"} 1
score_ms_count{worker="2"} 1
# TYPE score_ms_p50 gauge
score_ms_p50{worker="1"} 1
score_ms_p50{worker="2"} 2
# TYPE score_ms_p90 gauge
score_ms_p90{worker="1"} 1
score_ms_p90{worker="2"} 2
# TYPE score_ms_p99 gauge
score_ms_p99{worker="1"} 1
score_ms_p99{worker="2"} 2
`
	if got := buf.String(); got != want {
		t.Errorf("labeled exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
