package obs

import (
	"fmt"
	"io"
	"runtime/metrics"
	"strings"
)

// runtimeSamples is the curated runtime/metrics set exported on /metrics:
// heap footprint, GC activity, scheduler shape. A fixed list (rather than
// metrics.All) keeps the exposition stable across Go releases and its
// order deterministic.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/sched/gomaxprocs:threads",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/allocs:bytes",
}

// runtimeHistograms are exported as a cumulative count plus p50/p90/p99
// gauges — pause and scheduling latency distributions are what the live
// dashboards actually read, and full bucket expositions would dwarf the
// rest of /metrics.
var runtimeHistograms = []string{
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// WriteRuntimeMetrics renders the curated Go runtime telemetry in
// Prometheus text exposition, gauge names derived from the runtime/metrics
// path ("/sched/goroutines:goroutines" -> "go_sched_goroutines_goroutines").
// Metrics the running Go version does not support are skipped silently.
func WriteRuntimeMetrics(w io.Writer) error {
	names := make([]string, 0, len(runtimeSamples)+len(runtimeHistograms))
	names = append(names, runtimeSamples...)
	names = append(names, runtimeHistograms...)
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	metrics.Read(samples)
	for _, s := range samples {
		name := promRuntimeName(s.Name)
		switch s.Value.Kind() {
		case metrics.KindUint64:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Value.Uint64()); err != nil {
				return err
			}
		case metrics.KindFloat64:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, s.Value.Float64()); err != nil {
				return err
			}
		case metrics.KindFloat64Histogram:
			if err := writeRuntimeHistogram(w, name, s.Value.Float64Histogram()); err != nil {
				return err
			}
		}
	}
	return nil
}

// promRuntimeName maps a runtime/metrics path to a Prometheus-safe gauge
// name under the go_ prefix.
func promRuntimeName(path string) string {
	name := strings.TrimPrefix(path, "/")
	name = strings.NewReplacer("/", "_", ":", "_", "-", "_").Replace(name)
	return "go_" + name
}

// writeRuntimeHistogram renders a runtime histogram as its total count and
// interpolation-free p50/p90/p99 quantiles (the upper edge of the bucket
// the quantile falls in).
func writeRuntimeHistogram(w io.Writer, name string, h *metrics.Float64Histogram) error {
	if h == nil {
		return nil
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s_count counter\n%s_count %d\n", name, name, total); err != nil {
		return err
	}
	for _, q := range []struct {
		label string
		frac  float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
		v := histogramQuantile(h, total, q.frac)
		if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %g\n", name, q.label, name, q.label, v); err != nil {
			return err
		}
	}
	return nil
}

// histogramQuantile returns the upper bucket boundary containing the given
// quantile (0 when the histogram is empty). Infinite edges fall back to
// the nearest finite boundary so the exposition stays parseable.
func histogramQuantile(h *metrics.Float64Histogram, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Buckets[i+1] is this bucket's upper edge.
			edge := h.Buckets[i+1]
			if edge > 1e300 { // +Inf tail: report the finite lower edge
				edge = h.Buckets[i]
			}
			if edge < -1e300 {
				edge = 0
			}
			return edge
		}
	}
	return 0
}
