package obs

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
)

// Flags bundles the observability command-line surface shared by every
// tool: -v (live progress), -events (JSONL event stream), -metrics-json
// (end-of-run report), -serve (live HTTP server: /metrics, /runs,
// /events, /flight, /debug/pprof), -trace-out (Perfetto/Chrome
// trace-event timeline), -cpuprofile and -memprofile (pprof), and
// -version (print build info and exit).
//
// Usage:
//
//	var of obs.Flags
//	of.Register(flag.CommandLine)
//	flag.Parse()
//	reg, done, err := of.Setup()
//	// ... run with reg (possibly nil) ...
//	err = done()
type Flags struct {
	// MetricsJSON is the path the final Report is written to ("" = off).
	MetricsJSON string
	// Events is the path the JSONL event stream is written to ("" = off).
	Events string
	// Serve is the listen address of the live observability server
	// ("" = off; ":0" picks a free port, printed to stderr).
	Serve string
	// TraceOut is the path the trace-event (Perfetto) timeline is written
	// to on exit ("" = off).
	TraceOut string
	// CPUProfile and MemProfile are pprof output paths ("" = off).
	CPUProfile string
	MemProfile string
	// Verbose attaches a progress sink on stderr.
	Verbose bool
	// ShowVersion prints build info and exits (handled inside Setup).
	ShowVersion bool
	// Mounts attaches extra handler subtrees to the -serve mux — set
	// programmatically (not a flag) by callers that co-host an API on
	// the observability server, like the synthesis daemon's /api/v1.
	Mounts []Mount
}

// Register declares the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsJSON, "metrics-json", "", "write the end-of-run metrics report (JSON) to this `file`")
	fs.StringVar(&f.Events, "events", "", "stream span/metric events (JSONL) to this `file`")
	fs.StringVar(&f.Serve, "serve", "", "serve live observability (/metrics, /runs, /events, /flight, /debug/pprof) on this `addr`")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write a Perfetto/Chrome trace-event timeline (JSON) to this `file`")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this `file`")
	fs.BoolVar(&f.Verbose, "v", false, "print live progress to stderr")
	fs.BoolVar(&f.ShowVersion, "version", false, "print build information (module version, VCS revision) and exit")
}

// Setup builds the registry the flags ask for and starts profiling, the
// live server, and the SIGQUIT flight-dump handler. The registry is nil
// (observability fully disabled) when no metric-consuming flag is set;
// when it is live, a flight recorder is always enabled — it is cheap
// enough to leave on, and it is exactly the thing you want after a run
// wedges. -version short-circuits: Setup prints build info to stdout and
// exits 0. The returned done func stops profiles, shuts the server down,
// writes the report, and closes sinks; it must be called even on error
// paths.
func (f *Flags) Setup() (*Registry, func() error, error) {
	if f.ShowVersion {
		fmt.Println(ReadBuild().String())
		os.Exit(0)
	}
	var (
		reg     *Registry
		cpuOn   bool
		closers []func() error
	)
	fail := func(err error) (*Registry, func() error, error) {
		if cpuOn {
			pprof.StopCPUProfile()
		}
		return nil, func() error { return nil }, err
	}

	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return fail(err)
		}
		cpuOn = true
		closers = append(closers, func() error {
			pprof.StopCPUProfile()
			return cf.Close()
		})
	}

	if f.MetricsJSON != "" || f.Events != "" || f.Verbose || f.Serve != "" || f.TraceOut != "" {
		reg = New()
		reg.EnableFlight(DefaultFlightEvents)
	}
	if f.Verbose {
		reg.Attach(NewProgressSink(os.Stderr))
	}
	if f.Events != "" {
		ef, err := os.Create(f.Events)
		if err != nil {
			return fail(err)
		}
		reg.Attach(NewJSONLSink(ef))
	}
	if f.TraceOut != "" {
		tf, err := os.Create(f.TraceOut)
		if err != nil {
			return fail(err)
		}
		// The sink buffers and writes the complete timeline when the
		// registry closes it (idempotent Close).
		reg.Attach(NewTraceEventSink(tf))
	}
	if f.Serve != "" {
		hub := NewEventHub()
		reg.Attach(hub)
		srv, err := Serve(f.Serve, reg, hub, f.Mounts...)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "obs: live observability on http://%s (/metrics /runs /events /flight /debug/pprof)\n", srv.Addr())
		closers = append(closers, srv.Close)
	}
	if reg != nil {
		// SIGQUIT (ctrl-\) dumps the flight recorder without killing the
		// run — the "what just happened" lever when a batch job stalls.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		stopped := make(chan struct{})
		go func() {
			for {
				select {
				case <-quit:
					fmt.Fprintln(os.Stderr, "obs: SIGQUIT — flight recorder dump:")
					_ = reg.Flight().WriteJSONL(os.Stderr)
				case <-stopped:
					return
				}
			}
		}()
		closers = append(closers, func() error {
			signal.Stop(quit)
			close(stopped)
			return nil
		})
	}
	// The report file is opened up front so a bad path fails before the
	// run rather than after it.
	var reportFile *os.File
	if f.MetricsJSON != "" {
		rf, err := os.Create(f.MetricsJSON)
		if err != nil {
			return fail(err)
		}
		reportFile = rf
	}

	done := func() error {
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = err
			}
		}
		for _, c := range closers {
			keep(c())
		}
		if reportFile != nil {
			keep(reg.Report().Encode(reportFile))
			keep(reportFile.Close())
		}
		keep(reg.Close())
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				keep(err)
			} else {
				runtime.GC() // settle allocations before the heap snapshot
				keep(pprof.WriteHeapProfile(mf))
				keep(mf.Close())
			}
		}
		if first != nil {
			return fmt.Errorf("obs: %w", first)
		}
		return nil
	}
	return reg, done, nil
}
