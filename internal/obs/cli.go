package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags bundles the observability command-line surface shared by every
// tool: -v (live progress), -events (JSONL event stream), -metrics-json
// (end-of-run report), -cpuprofile and -memprofile (pprof).
//
// Usage:
//
//	var of obs.Flags
//	of.Register(flag.CommandLine)
//	flag.Parse()
//	reg, done, err := of.Setup()
//	// ... run with reg (possibly nil) ...
//	err = done()
type Flags struct {
	// MetricsJSON is the path the final Report is written to ("" = off).
	MetricsJSON string
	// Events is the path the JSONL event stream is written to ("" = off).
	Events string
	// CPUProfile and MemProfile are pprof output paths ("" = off).
	CPUProfile string
	MemProfile string
	// Verbose attaches a progress sink on stderr.
	Verbose bool
}

// Register declares the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsJSON, "metrics-json", "", "write the end-of-run metrics report (JSON) to this `file`")
	fs.StringVar(&f.Events, "events", "", "stream span/metric events (JSONL) to this `file`")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this `file`")
	fs.BoolVar(&f.Verbose, "v", false, "print live progress to stderr")
}

// Setup builds the registry the flags ask for and starts profiling. The
// registry is nil (observability fully disabled) when no metric-consuming
// flag is set. The returned done func stops profiles, writes the report,
// and closes sinks; it must be called even on error paths.
func (f *Flags) Setup() (*Registry, func() error, error) {
	var (
		reg     *Registry
		cpuOn   bool
		closers []func() error
	)
	fail := func(err error) (*Registry, func() error, error) {
		if cpuOn {
			pprof.StopCPUProfile()
		}
		return nil, func() error { return nil }, err
	}

	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return fail(err)
		}
		cpuOn = true
		closers = append(closers, func() error {
			pprof.StopCPUProfile()
			return cf.Close()
		})
	}

	if f.MetricsJSON != "" || f.Events != "" || f.Verbose {
		reg = New()
	}
	if f.Verbose {
		reg.Attach(NewProgressSink(os.Stderr))
	}
	if f.Events != "" {
		ef, err := os.Create(f.Events)
		if err != nil {
			return fail(err)
		}
		reg.Attach(NewJSONLSink(ef))
	}
	// The report file is opened up front so a bad path fails before the
	// run rather than after it.
	var reportFile *os.File
	if f.MetricsJSON != "" {
		rf, err := os.Create(f.MetricsJSON)
		if err != nil {
			return fail(err)
		}
		reportFile = rf
	}

	done := func() error {
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = err
			}
		}
		for _, c := range closers {
			keep(c())
		}
		if reportFile != nil {
			keep(reg.Report().Encode(reportFile))
			keep(reportFile.Close())
		}
		keep(reg.Close())
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				keep(err)
			} else {
				runtime.GC() // settle allocations before the heap snapshot
				keep(pprof.WriteHeapProfile(mf))
				keep(mf.Close())
			}
		}
		if first != nil {
			return fmt.Errorf("obs: %w", first)
		}
		return nil
	}
	return reg, done, nil
}
