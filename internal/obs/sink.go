package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sink receives the registry's event stream. Implementations must be safe
// for concurrent Emit calls.
type Sink interface {
	// Emit delivers one event.
	Emit(Event)
	// Close flushes and releases the sink.
	Close() error
}

// ProgressSink renders progress events as human-readable lines — the layer
// every tool's -v flag is built on. Other event kinds are ignored, so a
// progress stream stays readable even when span/metric events are flowing
// to a JSONL sink at the same time.
type ProgressSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewProgressSink writes progress lines to w (conventionally os.Stderr, so
// -v output never corrupts a tool's stdout results).
func NewProgressSink(w io.Writer) *ProgressSink { return &ProgressSink{w: w} }

// Emit implements Sink.
func (s *ProgressSink) Emit(ev Event) {
	if ev.Kind != KindProgress {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "[%8.3fs] %s\n", ev.T, ev.Msg)
}

// Close implements Sink.
func (s *ProgressSink) Close() error { return nil }

// LineSink serializes whole text blocks onto one writer — the funnel
// concurrent jobs print results through so multi-line blocks from
// different goroutines never interleave mid-line (cmd/experiments -jobs
// streams Table 2 rows through one of these). It is also a Sink: progress
// events render as plain lines on the same writer, under the same lock,
// so streamed results and progress output cannot corrupt each other.
type LineSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLineSink writes atomically serialized blocks to w.
func NewLineSink(w io.Writer) *LineSink { return &LineSink{w: w} }

// Print writes one block atomically with respect to other Print/Printf/
// Emit calls on this sink.
func (s *LineSink) Print(block string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprint(s.w, block)
}

// Printf formats and writes one block atomically.
func (s *LineSink) Printf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, format, args...)
}

// Emit implements Sink: progress events become plain lines.
func (s *LineSink) Emit(ev Event) {
	if ev.Kind != KindProgress {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintln(s.w, ev.Msg)
}

// Close implements Sink.
func (s *LineSink) Close() error { return nil }

// JSONLSink streams every event as one JSON object per line — the -events
// format, suitable for jq pipelines and for replaying a run's timeline.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	c   io.Closer
}

// NewJSONLSink streams events to w. When w is also an io.Closer (a file),
// Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{enc: json.NewEncoder(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink. Encoding errors are dropped: observability must
// never fail the run it observes.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(ev)
}

// Close implements Sink.
func (s *JSONLSink) Close() error {
	if s.c != nil {
		return s.c.Close()
	}
	return nil
}
