// Command abagnaled is the synthesis daemon: a long-running service that
// accepts trace-synthesis jobs over a versioned HTTP API (/api/v1),
// schedules them through a bounded multi-tenant queue, and keeps the
// enumerated sketch corpora warm across jobs — and, via disk snapshots,
// across restarts. The live observability surface (/metrics, /runs,
// /events, /flight) shares the same port, so a submitted job can be
// watched end to end with curl.
//
// Serve (the default mode):
//
//	abagnaled -listen :8080 -snapshots ~/.abagnale/corpora -prewarm reno
//	abagnaled -queue 128 -workers 4 -v
//
// Client subcommands drive a running daemon:
//
//	abagnaled submit -dsl reno trace.pcap        # upload, print job ID
//	abagnaled submit -path -wait trace.pcap      # by path, poll to result
//	abagnaled status job-000001
//	abagnaled result -wait job-000001
//	abagnaled jobs
//
// Worker mode joins a shard coordinator (abagnale -shard-wait N) and
// executes scoring leases until the coordinator disconnects — how a run is
// fanned out across machines or across processes started by hand:
//
//	abagnaled -worker -join 10.0.0.5:7400 -snapshots ~/.abagnale/corpora
//
// See DESIGN.md §6 for the API schema and the snapshot format, §7 for the
// sharding protocol.
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/shard"
)

func main() {
	// A copy of this binary exec'd as a local shard worker detours here.
	shard.MaybeRunWorker()
	// Client subcommands peel off before daemon flag parsing.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "submit", "status", "result", "jobs":
			if err := runClient(os.Args[1], os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "abagnaled:", err)
				os.Exit(1)
			}
			return
		}
	}

	var (
		listen    = flag.String("listen", service.DefaultListen, "HTTP bind address (:0 picks a free port)")
		snapshots = flag.String("snapshots", "", "corpus snapshot directory (empty disables warm restarts)")
		queue     = flag.Int("queue", 64, "max queued jobs across all tenants (admission bound)")
		workers   = flag.Int("workers", 2, "concurrent jobs (CPU is gated to GOMAXPROCS overall)")
		prewarm   = flag.String("prewarm", "", "comma-separated sub-DSLs to materialize and persist at startup")
		verbose   = flag.Bool("v", false, "print live progress to stderr")
		worker    = flag.Bool("worker", false, "run as a shard worker instead of a daemon (requires -join)")
		join      = flag.String("join", "", "worker mode: shard coordinator address (host:port)")
		procs     = flag.Int("procs", 0, "worker mode: scoring parallelism (default GOMAXPROCS)")
		serve     = flag.String("serve", "", "worker mode: expose this worker's own obs surface (/metrics, /healthz, /flight) on host:port")
	)
	c := cli.RegisterVersion("abagnaled", flag.CommandLine)
	flag.Parse()
	_, done := c.Setup() // handles -version
	if flag.NArg() > 0 {
		c.UsageExit(fmt.Sprintf("unknown subcommand %q (want submit, status, result, or jobs)", flag.Arg(0)))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *worker {
		if *join == "" {
			c.UsageExit("-worker requires -join host:port")
		}
		reg := obs.New()
		if *serve != "" {
			// A remote worker has no coordinator-side HTTP surface, so it can
			// serve its own: local metrics/flight before federation folds them.
			hub := obs.NewEventHub()
			reg.Attach(hub)
			srv, err := obs.Serve(*serve, reg, hub)
			if err != nil {
				c.Finish(err, done)
				return
			}
			fmt.Fprintf(os.Stderr, "abagnaled: worker obs on http://%s/ (/metrics /flight /events)\n", srv.Addr())
			defer srv.Close()
		}
		err := shard.RunWorker(ctx, *join, shard.WorkerConfig{
			SnapshotDir: *snapshots,
			Procs:       *procs,
			Obs:         reg,
		})
		c.Finish(err, done)
		return
	}
	err := service.RunDaemon(ctx, service.Config{
		QueueDepth:  *queue,
		Workers:     *workers,
		SnapshotDir: *snapshots,
	}, service.DaemonOptions{
		Listen:  *listen,
		Prewarm: service.ParsePrewarm(*prewarm),
		Verbose: *verbose,
	})
	c.Finish(err, done)
}

// runClient executes one client subcommand against a running daemon.
func runClient(cmd string, args []string) error {
	fs := flag.NewFlagSet("abagnaled "+cmd, flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "daemon base URL")
	var (
		dslName = fs.String("dsl", "", "sub-DSL to search (reno|cubic|delay|vegas)")
		hintCCA = fs.String("hint-cca", "", "pick the sub-DSL from this CCA's family")
		metric  = fs.String("metric", "", "distance metric (daemon default: dtw)")
		budget  = fs.Int("budget", 0, "max concrete handlers to score (daemon default: 120000)")
		minSeg  = fs.Int("min-segment", 0, "minimum ACK samples per segment (daemon default: 16)")
		seed    = fs.Int64("seed", 0, "random seed (daemon default: 1)")
		tenant  = fs.String("tenant", "", "fairness key (daemon default: anonymous)")
		name    = fs.String("name", "", "job label on the live board")
		byPath  = fs.Bool("path", false, "submit the pcap path (daemon-readable) instead of uploading")
		wait    = fs.Bool("wait", false, "poll until the job finishes and print its result")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl := &client{base: *addr}
	switch cmd {
	case "submit":
		if fs.NArg() != 1 {
			return fmt.Errorf("submit wants exactly one pcap file, got %d", fs.NArg())
		}
		spec := service.JobSpec{
			DSL: *dslName, HintCCA: *hintCCA, Metric: *metric,
			Budget: *budget, MinSegment: *minSeg, Seed: *seed,
			Tenant: *tenant, Name: *name,
		}
		file := fs.Arg(0)
		if *byPath {
			abs, err := filepath.Abs(file)
			if err != nil {
				return err
			}
			spec.TracePath = abs
		} else {
			b, err := os.ReadFile(file)
			if err != nil {
				return err
			}
			spec.TraceB64 = base64.StdEncoding.EncodeToString(b)
			if spec.Name == "" {
				spec.Name = filepath.Base(file)
			}
		}
		st, err := cl.submit(spec)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "submitted %s (tenant %s, state %s)\n", st.ID, st.Tenant, st.State)
		if !*wait {
			fmt.Println(st.ID)
			return nil
		}
		return cl.waitResult(st.ID)
	case "status":
		if fs.NArg() != 1 {
			return fmt.Errorf("status wants exactly one job ID")
		}
		var st service.JobStatus
		if err := cl.getJSON("/jobs/"+fs.Arg(0), &st, http.StatusOK); err != nil {
			return err
		}
		return printJSON(st)
	case "result":
		if fs.NArg() != 1 {
			return fmt.Errorf("result wants exactly one job ID")
		}
		if *wait {
			return cl.waitResult(fs.Arg(0))
		}
		var res service.JobResult
		if err := cl.getJSON("/jobs/"+fs.Arg(0)+"/result", &res, http.StatusOK); err != nil {
			return err
		}
		return printJSON(res)
	case "jobs":
		var list []service.JobStatus
		if err := cl.getJSON("/jobs", &list, http.StatusOK); err != nil {
			return err
		}
		return printJSON(list)
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// client is a minimal /api/v1 consumer.
type client struct {
	base string
	http http.Client
}

// submit POSTs a spec, retrying on 429 backpressure per Retry-After.
func (c *client) submit(spec service.JobSpec) (service.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return service.JobStatus{}, err
	}
	for {
		resp, err := c.http.Post(c.base+service.APIPrefix+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return service.JobStatus{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			delay := time.Second
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if d, err := time.ParseDuration(ra + "s"); err == nil {
					delay = d
				}
			}
			fmt.Fprintf(os.Stderr, "queue full, retrying in %v\n", delay)
			time.Sleep(delay)
			continue
		}
		var st service.JobStatus
		err = decodeAs(resp, &st, http.StatusAccepted)
		return st, err
	}
}

// waitResult polls a job until done, printing its result JSON.
func (c *client) waitResult(id string) error {
	for {
		resp, err := c.http.Get(c.base + service.APIPrefix + "/jobs/" + id + "/result")
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusAccepted {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(200 * time.Millisecond)
			continue
		}
		var res service.JobResult
		if err := decodeAs(resp, &res, http.StatusOK); err != nil {
			return err
		}
		return printJSON(res)
	}
}

// getJSON GETs an API path into v, expecting the given status.
func (c *client) getJSON(path string, v any, want int) error {
	resp, err := c.http.Get(c.base + service.APIPrefix + path)
	if err != nil {
		return err
	}
	return decodeAs(resp, v, want)
}

// decodeAs closes resp and decodes its body into v, surfacing API error
// bodies as errors.
func decodeAs(resp *http.Response, v any, want int) error {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, apiErr.Error)
		}
		return fmt.Errorf("unexpected status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// printJSON renders v indented on stdout.
func printJSON(v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(out))
	return err
}
