// Command benchdiff turns `go test -bench` text output into a JSON
// snapshot under bench/ and diffs it against the previous snapshot,
// failing loudly on performance regressions. It is the checker behind
// `make bench-compare`.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchdiff -record
//	benchdiff bench/BENCH_20260801-120000.txt   # re-parse an old text file
//
// Flags:
//
//	-dir d         snapshot directory (default "bench")
//	-record        write the parsed run as bench/BENCH_<utc-ts>.json
//	-threshold f   regression tolerance as a fraction (default 0.20)
//
// Every benchmark present in both runs is compared on the cost metrics
// (ns/op, B/op, allocs/op, cells/op); a metric worse by more than the
// threshold is a regression and the exit status is 1. Sub-nanosecond
// ns/op movements are ignored as timer noise (nsNoiseFloor) so that the
// ~1-cycle fast-path benchmarks don't fail builds on code-alignment
// jitter. Other b.ReportMetric
// values (distances, ranks) are recorded but not judged — they are
// reproduction results, not costs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
)

// snapshot is the JSON shape of one recorded bench run. Build stamps the
// recording binary (module version + VCS revision) so archived snapshots
// stay attributable to a commit.
type snapshot struct {
	Timestamp  string                        `json:"timestamp"`
	Build      *obs.BuildInfo                `json:"build,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// costMetrics are the judged dimensions; everything else is informational.
var costMetrics = []string{"ns/op", "B/op", "allocs/op", "cells/op"}

// nsNoiseFloor is the minimum absolute ns/op movement for a regression.
// Percentage thresholds are meaningless at timer granularity: the obs
// nil-handle no-ops run in ~1 cycle, where code alignment or turbo state
// alone moves ns/op by half a nanosecond (a +90% "regression" on a 0.4 ns
// benchmark). Real kernels here cost microseconds; 2 ns is far below any
// regression worth failing a build over.
const nsNoiseFloor = 2.0

func main() {
	var (
		dir       = flag.String("dir", "bench", "snapshot directory")
		record    = flag.Bool("record", false, "write this run as a new JSON snapshot")
		threshold = flag.Float64("threshold", 0.20, "regression tolerance (fraction)")
	)
	c := cli.RegisterVersion("benchdiff", flag.CommandLine)
	flag.Parse()
	_, done := c.Setup() // handles -version
	defer func() { _ = done() }()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cur, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	prev, prevName, err := latestSnapshot(*dir)
	if err != nil {
		fatal(err)
	}

	if *record {
		if err := writeSnapshot(*dir, cur); err != nil {
			fatal(err)
		}
	}

	if prev == nil {
		fmt.Printf("benchdiff: no previous snapshot in %s — nothing to compare (baseline %srecorded)\n",
			*dir, map[bool]string{true: "", false: "not "}[*record])
		return
	}

	regressions := diff(os.Stdout, prev, cur, prevName, *threshold)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: FAIL — %d metric(s) regressed by more than %.0f%%\n",
			regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: OK — no cost metric regressed by more than %.0f%%\n", *threshold*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// parseBench extracts per-benchmark metrics from `go test -bench` output.
// Lines look like:
//
//	BenchmarkName-8   120   9735 ns/op   112 B/op   3 allocs/op   52 cells/op
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBench(r io.Reader) (*snapshot, error) {
	s := &snapshot{
		Timestamp:  time.Now().UTC().Format("20060102-150405"),
		Benchmarks: map[string]map[string]float64{},
	}
	if b := obs.ReadBuild(); b != (obs.BuildInfo{}) {
		s.Build = &b
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -GOMAXPROCS suffix so runs on different core counts
		// still line up.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			s.Benchmarks[name] = metrics
		}
	}
	return s, sc.Err()
}

// latestSnapshot loads the newest BENCH_*.json in dir (timestamped names
// sort lexicographically), or nil when none exists yet.
func latestSnapshot(dir string) (*snapshot, string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, "", err
	}
	if len(names) == 0 {
		return nil, "", nil
	}
	sort.Strings(names)
	name := names[len(names)-1]
	raw, err := os.ReadFile(name)
	if err != nil {
		return nil, "", err
	}
	var s snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, "", fmt.Errorf("%s: %w", name, err)
	}
	return &s, filepath.Base(name), nil
}

// writeSnapshot records the run under dir with its own timestamp.
func writeSnapshot(dir string, s *snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	name := filepath.Join(dir, "BENCH_"+s.Timestamp+".json")
	if err := os.WriteFile(name, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchdiff: recorded %s\n", name)
	return nil
}

// diff prints the old-vs-new table for benchmarks present in both runs and
// returns how many cost metrics regressed beyond the threshold.
func diff(w io.Writer, prev, cur *snapshot, prevName string, threshold float64) int {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := prev.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "comparing against %s (%d shared benchmarks)\n\n", prevName, len(names))
	fmt.Fprintf(w, "%-34s %-10s %14s %14s %8s\n", "benchmark", "metric", "old", "new", "delta")
	regressions := 0
	for _, name := range names {
		old, new := prev.Benchmarks[name], cur.Benchmarks[name]
		for _, metric := range costMetrics {
			ov, okOld := old[metric]
			nv, okNew := new[metric]
			if !okOld || !okNew {
				continue
			}
			mark := ""
			if ov > 0 {
				delta := (nv - ov) / ov
				if delta > threshold && !(metric == "ns/op" && nv-ov < nsNoiseFloor) {
					mark = "  << REGRESSION"
					regressions++
				}
				fmt.Fprintf(w, "%-34s %-10s %14.1f %14.1f %+7.1f%%%s\n",
					name, metric, ov, nv, delta*100, mark)
			} else if nv > 0 {
				fmt.Fprintf(w, "%-34s %-10s %14.1f %14.1f     new\n", name, metric, ov, nv)
			}
		}
	}
	return regressions
}
