// Command traceplot renders a capture's congestion-window trajectory as an
// ASCII chart, optionally overlaying the replayed trajectories of handler
// expressions — a terminal rendition of the paper's figure style (observed
// trace vs synthesized vs fine-tuned handler).
//
// Usage:
//
//	traceplot trace.pcap
//	traceplot -handler 'cwnd + 0.7*reno-inc' -handler 'cwnd + reno-inc' \
//	          -segment 2 trace.pcap
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/dsl"
	"repro/internal/plot"
	"repro/internal/replay"
	"repro/internal/trace"
)

// handlerList collects repeated -handler flags.
type handlerList []string

func (h *handlerList) String() string { return strings.Join(*h, "; ") }

func (h *handlerList) Set(v string) error {
	*h = append(*h, v)
	return nil
}

func main() {
	var handlers handlerList
	var (
		segment = flag.Int("segment", -1, "plot one between-loss segment (default: whole trace)")
		minSeg  = flag.Int("min-segment", 16, "minimum ACK samples per segment")
		width   = flag.Int("width", 72, "chart width")
		height  = flag.Int("height", 18, "chart height")
	)
	flag.Var(&handlers, "handler", "DSL expression to replay over the trace (repeatable)")
	c := cli.RegisterVersion("traceplot", flag.CommandLine)
	flag.Parse()
	_, done := c.Setup() // handles -version
	defer func() { _ = done() }()
	if flag.NArg() != 1 {
		c.UsageExit("exactly one pcap file expected")
	}
	if err := run(flag.Arg(0), handlers, *segment, *minSeg, *width, *height); err != nil {
		c.Fatal(err)
	}
}

func run(file string, handlers []string, segment, minSeg, width, height int) error {
	raw, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	tr, err := trace.AnalyzeBytes(raw)
	if err != nil {
		return err
	}

	var seg *trace.Segment
	title := fmt.Sprintf("%s (%d samples, %d losses)", file, len(tr.Samples), len(tr.Losses))
	if segment >= 0 {
		segs := tr.Split(minSeg)
		if segment >= len(segs) {
			return fmt.Errorf("segment %d out of range (trace has %d)", segment, len(segs))
		}
		seg = segs[segment]
		title = fmt.Sprintf("%s segment %d/%d", file, segment, len(segs))
	} else {
		seg = &trace.Segment{Samples: tr.Samples, MSS: tr.MSS}
	}

	c := plot.New(title)
	c.Width, c.Height = width, height
	c.Add("observed", seg.Series())
	for _, src := range handlers {
		h, err := dsl.Parse(src)
		if err != nil {
			return fmt.Errorf("handler %q: %w", src, err)
		}
		s, err := replay.Synthesize(h, seg)
		if err != nil {
			return fmt.Errorf("handler %q diverged on this trace", src)
		}
		c.Add(src, s)
	}
	fmt.Print(c.Render())
	return nil
}
