package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// report builds a two-stage funnel report with the given candidate split.
func report(handler string, fully, pruned int) core.RunFunnelReport {
	total := fully + pruned
	share := func(n int) float64 {
		if total == 0 {
			return 0
		}
		return float64(n) / float64(total)
	}
	return core.RunFunnelReport{
		Handler: handler,
		Total: core.FunnelReport{
			Enumerated: total,
			Stages: []core.FunnelStageReport{
				{Stage: "lb_kim", Candidates: pruned, Share: share(pruned)},
				{Stage: "fully_scored", Candidates: fully, Share: share(fully)},
			},
		},
	}
}

func TestDiffNoDrift(t *testing.T) {
	a := report("cwnd + 1", 50, 50)
	b := report("cwnd + 1", 52, 48) // 2pp shift, under the 5% default
	d := diff(a, b, 0.05)
	if d.Drifted() {
		t.Errorf("2pp shift flagged as drift: %+v", d)
	}
	if len(d.Stages) != 2 {
		t.Errorf("diffed %d stages, want 2", len(d.Stages))
	}
}

func TestDiffShareDrift(t *testing.T) {
	a := report("cwnd + 1", 50, 50)
	b := report("cwnd + 1", 80, 20)
	d := diff(a, b, 0.05)
	if !d.Drifted() {
		t.Error("30pp share shift not flagged")
	}
	if d.WinnerChanged {
		t.Error("winner change flagged for identical handlers")
	}
	for _, s := range d.Stages {
		if !s.OverThreshold {
			t.Errorf("stage %s not over threshold: %+v", s.Stage, s)
		}
	}
}

func TestDiffWinnerChange(t *testing.T) {
	a := report("cwnd + 1", 50, 50)
	b := report("cwnd * 2", 50, 50)
	d := diff(a, b, 0.05)
	if !d.WinnerChanged || !d.Drifted() {
		t.Errorf("winner change not flagged: %+v", d)
	}
}

func TestDiffStageAppears(t *testing.T) {
	a := report("h", 100, 0)
	b := report("h", 50, 50)
	d := diff(a, b, 0.05)
	found := false
	for _, s := range d.Stages {
		if s.Stage == "lb_kim" && s.OverThreshold && s.CandA == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("newly appearing stage not flagged: %+v", d.Stages)
	}
}

// TestLoadFunnelShapes: both accepted input shapes — a bare -funnel report
// and a -metrics-json run report wrapping core.funnel records (last wins).
func TestLoadFunnelShapes(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	bare := write("bare.json", `{
		"handler": "cwnd + 1",
		"distance": 3.5,
		"total": {"enumerated": 10, "stages": [{"stage": "fully_scored", "candidates": 10, "share": 1}]},
		"buckets": []
	}`)
	rep, err := loadFunnel(bare)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Handler != "cwnd + 1" || rep.Total.Enumerated != 10 {
		t.Errorf("bare report = %+v", rep)
	}

	wrapped := write("wrapped.json", `{
		"counters": {"core.handlers_scored": 99},
		"records": {"core.funnel": [
			{"handler": "old", "total": {"enumerated": 1, "stages": []}},
			{"handler": "new", "total": {"enumerated": 20, "stages": [{"stage": "fully_scored", "candidates": 20, "share": 1}]}}
		]}
	}`)
	rep, err = loadFunnel(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Handler != "new" || rep.Total.Enumerated != 20 {
		t.Errorf("wrapped report did not take the last record: %+v", rep)
	}

	empty := write("empty.json", `{"counters": {}}`)
	if _, err := loadFunnel(empty); err == nil {
		t.Error("funnel-less file accepted")
	}
	if _, err := loadFunnel(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestPrintDiffRendering smoke-checks the human output.
func TestPrintDiffRendering(t *testing.T) {
	a := report("cwnd + 1", 50, 50)
	b := report("cwnd * 2", 80, 20)
	d := diff(a, b, 0.05)
	var sb strings.Builder
	printDiff(&sb, "a.json", "b.json", a, b, d)
	out := sb.String()
	for _, want := range []string{"DRIFT", "WINNER CHANGED", "lb_kim", "fully_scored"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
